(* Benchmark harness: regenerates every table and figure of the paper
   (on the scaled-down default topology; pass `--paper` for the full
   Table 3 sizes) and runs Bechamel micro-benchmarks of the core
   primitives.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig5a tab4 # selected targets
     dune exec bench/main.exe micro      # primitive benchmarks only *)

module Fig5 = Experiments.Fig5

let scale : Experiments.Setup.scale ref = ref `Small

let time_it name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "\n[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)

let fig5 kind () = Fig5.print (Fig5.run ~scale:!scale kind)

let fig5c_with_controller () =
  (* The paper evaluates the Controller on WebSearch only. *)
  Fig5.print
    (Fig5.run ~scale:!scale ~cache_pcts:[ 1; 10; 50; 200 ] ~with_controller:true
       Fig5.Websearch)

let fig7_8 () = Experiments.Fig7_8.print (Experiments.Fig7_8.run ~scale:!scale ())
let fig9 () = Experiments.Fig9.print (Experiments.Fig9.run ~scale:!scale ())
let fig10 () = Experiments.Fig10.print (Experiments.Fig10.run ())
let tab4 () = Experiments.Tab4.print (Experiments.Tab4.run ~scale:!scale ())
let tab5 () = Experiments.Tab5.print (Experiments.Tab5.run ~scale:!scale ())
let tab6 () = Experiments.Tab6.print (Experiments.Tab6.run ())
let app_a2 () = Experiments.App_a2.print (Experiments.App_a2.run ~scale:!scale ())

let ablation () =
  Experiments.Ablation.print (Experiments.Ablation.run ~scale:!scale ())

let multitenant () =
  Experiments.Multitenant.print (Experiments.Multitenant.run ~scale:!scale ())

let datasets () =
  Experiments.Datasets.print (Experiments.Datasets.run ~scale:!scale ())

let resilience () =
  Experiments.Resilience.print (Experiments.Resilience.run ~scale:!scale ())

let dht () = Experiments.Dht_compare.print (Experiments.Dht_compare.run ~scale:!scale ())

let cachegeo () =
  Experiments.Cache_geometry.print (Experiments.Cache_geometry.run ~scale:!scale ())

(* --- Bechamel micro-benchmarks of the primitives ------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let cache_lookup =
    let cache = Switchv2p.Cache.create ~slots:4096 in
    for i = 0 to 4095 do
      ignore
        (Switchv2p.Cache.insert cache ~admission:`All
           (Netcore.Addr.Vip.of_int i)
           (Netcore.Addr.Pip.of_int i))
    done;
    let i = ref 0 in
    Test.make ~name:"cache lookup"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Switchv2p.Cache.lookup cache
                (Netcore.Addr.Vip.of_int (!i land 4095)))))
  in
  let cache_insert =
    let cache = Switchv2p.Cache.create ~slots:4096 in
    let i = ref 0 in
    Test.make ~name:"cache insert"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Switchv2p.Cache.insert cache ~admission:`All
                (Netcore.Addr.Vip.of_int (!i land 16383))
                (Netcore.Addr.Pip.of_int !i))))
  in
  let heap_ops =
    let h = Dessim.Heap.create () in
    let rng = Dessim.Rng.create 5 in
    for _ = 1 to 1024 do
      Dessim.Heap.push h (Dessim.Rng.int rng 1_000_000) ()
    done;
    Test.make ~name:"heap push+pop"
      (Staged.stage (fun () ->
           Dessim.Heap.push h (Dessim.Rng.int rng 1_000_000) ();
           ignore (Dessim.Heap.pop h)))
  in
  let ecmp =
    let t =
      Topo.Topology.build
        (Topo.Params.scaled ~pods:8 ~racks_per_pod:4 ~hosts_per_rack:2
           ~vms_per_host:2 ())
    in
    let hosts = Topo.Topology.hosts t in
    let i = ref 0 in
    Test.make ~name:"ecmp full path"
      (Staged.stage (fun () ->
           incr i;
           let src = hosts.(!i mod Array.length hosts) in
           let dst = hosts.(((!i * 7) + 13) mod Array.length hosts) in
           if src <> dst then ignore (Topo.Routing.path t ~src ~dst ~salt:!i)))
  in
  let rng_bench =
    let rng = Dessim.Rng.create 7 in
    Test.make ~name:"rng int"
      (Staged.stage (fun () -> ignore (Dessim.Rng.int rng 1_000_000)))
  in
  let tests =
    Test.make_grouped ~name:"primitives"
      [ cache_lookup; cache_insert; heap_ops; ecmp; rng_bench ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_newline ();
  print_endline "== micro: primitive costs (ns/op) ==";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-36s %8.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
    results;
  flush stdout

let targets =
  [
    ("fig5a", ("Figure 5a (Hadoop)", fig5 Fig5.Hadoop));
    ("fig5b", ("Figure 5b (Microbursts)", fig5 Fig5.Microbursts));
    ("fig5c", ("Figure 5c (WebSearch + Controller)", fig5c_with_controller));
    ("fig5d", ("Figure 5d (Video)", fig5 Fig5.Video));
    ("fig6", ("Figure 6 (Alibaba, FT16)", fig5 Fig5.Alibaba));
    ("fig7", ("Figures 7/8 (bandwidth heatmaps)", fig7_8));
    ("fig8", ("Figures 7/8 (bandwidth heatmaps)", fig7_8));
    ("fig9", ("Figure 9 (fewer gateways)", fig9));
    ("fig10", ("Figure 10 (topology scaling)", fig10));
    ("tab4", ("Table 4 (VM migration)", tab4));
    ("tab5", ("Table 5 (hit distribution)", tab5));
    ("tab6", ("Table 6 (switch resources)", tab6));
    ("appA2", ("Appendix A.2 (Controller)", app_a2));
    ("ablation", ("Ablation (design features)", ablation));
    ("multitenant", ("Multitenant partitions (§4)", multitenant));
    ("datasets", ("Dataset characterization (§5)", datasets));
    ("resilience", ("Switch-failure resilience (§2)", resilience));
    ("dht", ("DHT-store alternative (§2.4)", dht));
    ("cachegeo", ("Cache geometry study (§3.2)", cachegeo));
    ("micro", ("Micro-benchmarks", micro));
  ]

(* fig7 and fig8 share one runner; run it once in the full sweep. *)
let default_order =
  [
    "datasets"; "fig5a"; "fig5b"; "fig5c"; "fig5d"; "fig6"; "fig7"; "fig9";
    "fig10"; "tab4"; "tab5"; "tab6"; "appA2"; "ablation"; "multitenant";
    "resilience"; "dht"; "cachegeo"; "micro";
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec strip_flags acc = function
    | [] -> List.rev acc
    | "--paper" :: rest ->
        scale := `Paper;
        strip_flags acc rest
    | "--tiny" :: rest ->
        scale := `Tiny;
        strip_flags acc rest
    | "--csv" :: dir :: rest ->
        Experiments.Report.set_csv_dir (Some dir);
        strip_flags acc rest
    | a :: rest -> strip_flags (a :: acc) rest
  in
  let args = strip_flags [] args in
  let selected = if args = [] then default_order else args in
  List.iter
    (fun key ->
      match List.assoc_opt key targets with
      | Some (title, f) -> time_it title f
      | None ->
          Printf.eprintf "unknown target %S; available: %s\n" key
            (String.concat ", " (List.map fst targets));
          exit 1)
    selected
