(* Integration tests: full network simulations on a small FatTree,
   exercising every scheme end-to-end, plus migration correctness and
   metric invariants. *)

module Network = Netsim.Network
module Metrics = Netsim.Metrics
module Time_ns = Dessim.Time_ns
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Topology = Topo.Topology

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let topo () =
  Topology.build
    (Topo.Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2
       ~vms_per_host:4 ())

(* A TCP flow between VMs on different hosts (placement: vip/4). *)
let cross_host_flow ?(id = 0) ?(start = 0) ?(packets = 10) ~src ~dst () =
  Flow.make ~id ~src_vip:(Vip.of_int src) ~dst_vip:(Vip.of_int dst)
    ~size_bytes:(packets * Netcore.Packet.mtu)
    ~start Flow.Tcpish

let run_flows ?config ?(migrations = []) ~scheme flows =
  let t = topo () in
  let net = Network.create ?config t ~scheme in
  Network.run net flows ~migrations ~until:(Time_ns.of_ms 100);
  net

let test_nocache_end_to_end () =
  let net = run_flows ~scheme:(Schemes.Baselines.nocache ())
      [ cross_host_flow ~src:0 ~dst:8 () ]
  in
  let m = Network.metrics net in
  checki "flow completed" 1 (Metrics.flows_completed m);
  checkb "all packets via gateway" true (Metrics.hit_rate m = 0.0);
  checkb "gateway packets observed" true (Metrics.gateway_packets m > 0);
  checki "no drops" 0 (Metrics.packets_dropped m);
  checkb "fct positive" true (Metrics.mean_fct m > 0.0)

let test_direct_bypasses_gateway () =
  let net = run_flows ~scheme:(Schemes.Baselines.direct ())
      [ cross_host_flow ~src:0 ~dst:8 () ]
  in
  let m = Network.metrics net in
  checki "flow completed" 1 (Metrics.flows_completed m);
  checki "no gateway packets" 0 (Metrics.gateway_packets m);
  checkb "hit rate 1" true (Metrics.hit_rate m = 1.0)

let test_direct_faster_than_nocache () =
  let flows = [ cross_host_flow ~src:0 ~dst:8 () ] in
  let nc = run_flows ~scheme:(Schemes.Baselines.nocache ()) flows in
  let d = run_flows ~scheme:(Schemes.Baselines.direct ()) flows in
  checkb "direct FCT < nocache FCT" true
    (Metrics.mean_fct (Network.metrics d) < Metrics.mean_fct (Network.metrics nc));
  checkb "direct stretch < nocache stretch" true
    (Metrics.mean_stretch (Network.metrics d)
    < Metrics.mean_stretch (Network.metrics nc))

let test_ondemand_penalty_only_first () =
  (* Two sequential flows to the same destination: only the first pays
     the resolution penalty. *)
  let flows =
    [
      cross_host_flow ~id:0 ~src:0 ~dst:8 ();
      cross_host_flow ~id:1 ~start:(Time_ns.of_ms 10) ~src:0 ~dst:8 ();
    ]
  in
  let scheme = Schemes.Baselines.ondemand () in
  let net = run_flows ~scheme flows in
  let m = Network.metrics net in
  checki "both complete" 2 (Metrics.flows_completed m);
  checki "never via gateway" 0 (Metrics.gateway_packets m);
  (* Exactly one host-cache miss: the first packet of the first flow.
     The reverse (ACK) direction misses once at the receiver too. *)
  match List.assoc_opt "host_cache_misses" (scheme.Netsim.Scheme.stats ()) with
  | Some misses -> checkb "at most two misses" true (misses <= 2.0)
  | None -> Alcotest.fail "ondemand must report misses"

let test_switchv2p_learns_across_flows () =
  let t = topo () in
  let slots = 16 * Array.length (Topology.switches t) in
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane t ~total_cache_slots:slots
  in
  let net = Network.create t ~scheme in
  let flows =
    [
      cross_host_flow ~id:0 ~src:0 ~dst:8 ();
      cross_host_flow ~id:1 ~start:(Time_ns.of_ms 10) ~src:4 ~dst:8 ();
    ]
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 100);
  let m = Network.metrics net in
  checki "both complete" 2 (Metrics.flows_completed m);
  checkb "some in-network hits" true (Metrics.hit_rate m > 0.0);
  (* The destination mapping must be cached somewhere in the fabric. *)
  let cached_somewhere =
    Array.exists
      (fun sw ->
        Switchv2p.Cache.peek (Switchv2p.Dataplane.cache dp ~switch:sw)
          (Vip.of_int 8)
        <> None)
      (Topology.switches t)
  in
  checkb "mapping cached in fabric" true cached_somewhere

let test_switchv2p_beats_nocache_on_reuse () =
  (* Many flows to a handful of destinations: cross-flow reuse. *)
  let flows =
    List.init 20 (fun i ->
        cross_host_flow ~id:i
          ~start:(i * Time_ns.of_us 300)
          ~src:(4 * (i mod 4))
          ~dst:(8 + (i mod 2))
          ())
  in
  let t = topo () in
  let slots = 16 * Array.length (Topology.switches t) in
  let v2p =
    run_flows ~scheme:(Schemes.Switchv2p_scheme.make t ~total_cache_slots:slots)
      flows
  in
  let nc = run_flows ~scheme:(Schemes.Baselines.nocache ()) flows in
  let m_v2p = Network.metrics v2p and m_nc = Network.metrics nc in
  checki "all complete (v2p)" 20 (Metrics.flows_completed m_v2p);
  checki "all complete (nocache)" 20 (Metrics.flows_completed m_nc);
  checkb "hit rate high" true (Metrics.hit_rate m_v2p > 0.5);
  checkb "fct improves" true (Metrics.mean_fct m_v2p < Metrics.mean_fct m_nc);
  checkb "fewer gateway packets" true
    (Metrics.gateway_packets m_v2p < Metrics.gateway_packets m_nc)

let test_loopback_delivery () =
  (* VMs 0 and 1 share host 0: the hypervisor switches locally. *)
  let net = run_flows ~scheme:(Schemes.Baselines.nocache ())
      [ cross_host_flow ~src:0 ~dst:1 () ]
  in
  let m = Network.metrics net in
  checki "flow completed" 1 (Metrics.flows_completed m);
  checki "no gateway traffic" 0 (Metrics.gateway_packets m);
  checki "loopback excluded from sent" 0 (Metrics.packets_sent m);
  checkb "tiny fct" true (Metrics.mean_fct m < 1e-4)

let test_migration_follow_me_delivers () =
  (* NoCache + follow-me: packets in flight at migration time reach
     the new host via the old one. *)
  let flows = [ cross_host_flow ~packets:200 ~src:0 ~dst:8 () ] in
  let migrations =
    [ { Network.at = Time_ns.of_us 100; vip = Vip.of_int 8; to_host = -1 } ]
  in
  (* Resolve the actual node id for "some other host": host of vip 16. *)
  let t = topo () in
  let net = Network.create t ~scheme:(Schemes.Baselines.nocache ()) in
  let new_host = Network.vm_host net (Vip.of_int 16) in
  let migrations =
    List.map (fun m -> { m with Network.to_host = new_host }) migrations
  in
  Network.run net flows ~migrations ~until:(Time_ns.of_ms 100);
  let m = Network.metrics net in
  checki "flow still completes" 1 (Metrics.flows_completed m);
  checki "vip moved" new_host (Network.vm_host net (Vip.of_int 8));
  checkb "mapping store updated" true
    (Netcore.Mapping.lookup (Network.mapping net) (Vip.of_int 8)
    = Topology.pip t new_host)

let test_migration_switchv2p_invalidates () =
  let t = topo () in
  let slots = 16 * Array.length (Topology.switches t) in
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane t ~total_cache_slots:slots
  in
  let net = Network.create t ~scheme in
  let new_host = Network.vm_host net (Vip.of_int 16) in
  let flows =
    [
      (* Warm the caches... *)
      cross_host_flow ~id:0 ~packets:50 ~src:0 ~dst:8 ();
      (* ...migrate mid-trace, then traffic re-learns. *)
      cross_host_flow ~id:1 ~start:(Time_ns.of_ms 5) ~packets:50 ~src:4 ~dst:8 ();
    ]
  in
  Network.run net flows
    ~migrations:
      [ { Network.at = Time_ns.of_ms 4; vip = Vip.of_int 8; to_host = new_host } ]
    ~until:(Time_ns.of_ms 200);
  let m = Network.metrics net in
  checki "both flows complete despite migration" 2 (Metrics.flows_completed m);
  (* The caches that served flow 2's packets must hold the new
     location (stale entries off the active paths may linger; the
     protocol only guarantees eventual correct delivery). *)
  let fresh = ref 0 and stale = ref 0 in
  Array.iter
    (fun sw ->
      match
        Switchv2p.Cache.peek (Switchv2p.Dataplane.cache dp ~switch:sw) (Vip.of_int 8)
      with
      | Some pip ->
          if Netcore.Addr.Pip.to_int pip = new_host then incr fresh
          else incr stale
      | None -> ())
    (Topology.switches t);
  checkb "new location learned somewhere" true (!fresh > 0);
  checkb "invalidation machinery ran" true
    (Switchv2p.Dataplane.misdelivery_tags dp > 0
    || Metrics.misdelivered_packets m > 0
    || !stale = 0)

let test_cache_failure_is_safe () =
  (* Wiping caches mid-run never breaks forwarding (the paper's
     resilience claim): flows still complete, packets just miss. *)
  let t = topo () in
  let slots = 16 * Array.length (Topology.switches t) in
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane t ~total_cache_slots:slots
  in
  let net = Network.create t ~scheme in
  let flows =
    List.init 10 (fun i ->
        cross_host_flow ~id:i ~packets:30
          ~start:(i * Time_ns.of_us 200)
          ~src:(i mod 8) ~dst:(8 + (i mod 4)) ())
  in
  Dessim.Engine.schedule (Network.engine net) ~at:(Time_ns.of_ms 1) (fun () ->
      Array.iter
        (fun sw -> Switchv2p.Dataplane.fail_switch dp ~switch:sw)
        (Topology.switches t));
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 100);
  let m = Network.metrics net in
  checki "all flows complete despite the wipe" 10 (Metrics.flows_completed m)

let test_dctcp_reduces_queueing_under_incast () =
  (* Many senders into one receiver: the DCTCP control law backs off
     at the marked queue and completes with less queueing delay than
     the blind windowed sender. *)
  let mk mode =
    let t = topo () in
    let flows =
      List.init 6 (fun i ->
          cross_host_flow ~id:i ~packets:300 ~src:(4 * i mod 24) ~dst:8 ())
    in
    let config =
      { Network.default_config with transport_mode = mode; window = 128 }
    in
    let net = Network.create ~config t ~scheme:(Schemes.Baselines.direct ()) in
    Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 200);
    Network.metrics net
  in
  let windowed = mk Netsim.Transport.Windowed in
  let dctcp = mk Netsim.Transport.Dctcp in
  checki "windowed completes" 6 (Metrics.flows_completed windowed);
  checki "dctcp completes" 6 (Metrics.flows_completed dctcp);
  checkb "dctcp keeps packet latency lower" true
    (Metrics.mean_packet_latency dctcp
    <= Metrics.mean_packet_latency windowed +. 1e-9)

let test_determinism () =
  let mk () =
    let flows =
      List.init 10 (fun i ->
          cross_host_flow ~id:i ~start:(i * Time_ns.of_us 100)
            ~src:(i mod 8) ~dst:(8 + (i mod 4)) ())
    in
    let t = topo () in
    let slots = 8 * Array.length (Topology.switches t) in
    let net =
      Network.create t
        ~scheme:(Schemes.Switchv2p_scheme.make t ~total_cache_slots:slots)
    in
    Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 50);
    let m = Network.metrics net in
    ( Metrics.packets_sent m,
      Metrics.gateway_packets m,
      Metrics.mean_fct m,
      Metrics.hit_rate m )
  in
  checkb "two runs identical" true (mk () = mk ())

let test_gateways_used_validation () =
  let t = topo () in
  Alcotest.check_raises "zero gateways"
    (Invalid_argument "Network.create: gateways_used out of range") (fun () ->
      ignore
        (Network.create
           ~config:{ Network.default_config with gateways_used = Some 0 }
           t ~scheme:(Schemes.Baselines.nocache ())))

let test_gateway_subset_respected () =
  let t = topo () in
  let net =
    Network.create
      ~config:{ Network.default_config with gateways_used = Some 1 }
      t ~scheme:(Schemes.Baselines.nocache ())
  in
  let gw0 = (Topology.gateways t).(0) in
  for flow_id = 0 to 50 do
    checki "always the single gateway" gw0 (Network.gateway_for_flow net flow_id)
  done

let test_udp_flow_latency () =
  let f =
    Flow.make ~id:0 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 8)
      ~size_bytes:(5 * Netcore.Packet.mtu) ~start:0
      (Flow.Udp { rate_bps = 1e9 })
  in
  let net = run_flows ~scheme:(Schemes.Baselines.nocache ()) [ f ] in
  let m = Network.metrics net in
  checki "udp completes" 1 (Metrics.flows_completed m);
  checkb "latency measured" true (Metrics.mean_packet_latency m > 0.0)

let test_metrics_bytes_conservation () =
  let flows = [ cross_host_flow ~src:0 ~dst:8 () ] in
  let net = run_flows ~scheme:(Schemes.Baselines.nocache ()) flows in
  let m = Network.metrics net in
  let t = Network.topo net in
  let pods = (Topology.params t).Topo.Params.pods in
  let pod_sum =
    List.fold_left ( + ) 0 (List.init pods (Metrics.bytes_of_pod m))
  in
  let core_bytes =
    Array.fold_left
      (fun acc sw -> acc + Metrics.bytes_of_switch m sw)
      0 (Topology.cores t)
  in
  checki "pod bytes + core bytes = total" (Metrics.total_switch_bytes m)
    (pod_sum + core_bytes)

let test_ecn_marks_under_congestion () =
  (* A heavy incast overflows the receiver's host link queue past the
     ECN threshold: some packets must carry CE marks end to end. *)
  let t = topo () in
  let flows =
    List.init 8 (fun i ->
        cross_host_flow ~id:i ~packets:400 ~src:((4 * i) mod 24) ~dst:8 ())
  in
  let config = { Network.default_config with window = 128 } in
  let net = Network.create ~config t ~scheme:(Schemes.Baselines.direct ()) in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 200);
  let marked = ref 0 in
  Topology.iter_links t (fun l -> marked := !marked + l.Topo.Link.marked);
  checkb "links marked packets" true (!marked > 0);
  checki "flows complete regardless" 8
    (Metrics.flows_completed (Network.metrics net))

(* Property: every scheme delivers every flow on random small traces
   (forwarding correctness is scheme-independent). *)
let delivery_qcheck =
  QCheck.Test.make ~name:"all schemes complete random traces" ~count:15
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, scheme_idx) ->
      let t = topo () in
      let rng = Dessim.Rng.create seed in
      let flows =
        List.init 8 (fun i ->
            let src = Dessim.Rng.int rng 24 in
            let dst = (src + 4 + Dessim.Rng.int rng 16) mod 24 in
            cross_host_flow ~id:i
              ~start:(i * Time_ns.of_us 100)
              ~packets:(1 + Dessim.Rng.int rng 20)
              ~src ~dst ())
      in
      let slots = 8 * Array.length (Topology.switches t) in
      let scheme =
        match scheme_idx with
        | 0 -> Schemes.Baselines.nocache ()
        | 1 -> Schemes.Baselines.gwcache ~topo:t ~total_slots:slots
        | 2 -> Schemes.Switchv2p_scheme.make t ~total_cache_slots:slots
        | _ -> Schemes.Baselines.direct ()
      in
      let net = Network.create t ~scheme in
      Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 100);
      let m = Network.metrics net in
      Metrics.flows_completed m = 8
      && Metrics.hit_rate m >= 0.0
      && Metrics.hit_rate m <= 1.0)

let () =
  Alcotest.run "network"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "nocache" `Quick test_nocache_end_to_end;
          Alcotest.test_case "direct bypasses gateways" `Quick test_direct_bypasses_gateway;
          Alcotest.test_case "direct faster than nocache" `Quick test_direct_faster_than_nocache;
          Alcotest.test_case "ondemand penalty" `Quick test_ondemand_penalty_only_first;
          Alcotest.test_case "switchv2p learns across flows" `Quick test_switchv2p_learns_across_flows;
          Alcotest.test_case "switchv2p beats nocache on reuse" `Quick test_switchv2p_beats_nocache_on_reuse;
          Alcotest.test_case "loopback delivery" `Quick test_loopback_delivery;
          Alcotest.test_case "udp latency" `Quick test_udp_flow_latency;
        ] );
      ( "migration",
        [
          Alcotest.test_case "follow-me delivers" `Quick test_migration_follow_me_delivers;
          Alcotest.test_case "switchv2p invalidates stale" `Quick test_migration_switchv2p_invalidates;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "cache failure is safe" `Quick test_cache_failure_is_safe;
          Alcotest.test_case "dctcp reduces queueing" `Quick test_dctcp_reduces_queueing_under_incast;
          Alcotest.test_case "ecn marks under congestion" `Quick test_ecn_marks_under_congestion;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "gateways_used validated" `Quick test_gateways_used_validation;
          Alcotest.test_case "gateway subset respected" `Quick test_gateway_subset_respected;
          Alcotest.test_case "bytes conservation" `Quick test_metrics_bytes_conservation;
          QCheck_alcotest.to_alcotest delivery_qcheck;
        ] );
    ]
