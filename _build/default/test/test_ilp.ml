(* Tests for the cache-allocation optimizer: exact branch-and-bound on
   small instances, the greedy heuristic, and their relationship. *)

module A = Ilp.Allocation

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* A linear "path" instance: senders 0..n-1 each want one item; switch
   [s] is on sender [s]'s path with cached cost 1; default cost 10. *)
let path_instance ~n ~capacity =
  {
    A.num_items = n;
    num_switches = n;
    capacity = Array.make n capacity;
    demands =
      Array.init n (fun i -> { A.src = i; dst = i; weight = 1.0 });
    default_cost = (fun _ -> 10.0);
    cached_cost =
      (fun d s -> if s = d.A.src then Some 1.0 else None);
  }

let test_greedy_saturates_path_instance () =
  let inst = path_instance ~n:4 ~capacity:1 in
  let a = A.solve_greedy inst in
  for s = 0 to 3 do
    checkb "each switch caches its item" true (A.holds a ~switch:s ~item:s)
  done;
  checkf "optimal cost" 4.0 (A.cost inst a)

let test_exact_matches_greedy_on_separable () =
  let inst = path_instance ~n:3 ~capacity:1 in
  let g = A.solve_greedy inst in
  let e = A.solve_exact inst in
  checkf "same objective" (A.cost inst g) (A.cost inst e)

let test_empty_assignment_cost_is_default () =
  let inst = path_instance ~n:3 ~capacity:0 in
  let a = A.solve_greedy inst in
  checkf "all defaults" 30.0 (A.cost inst a);
  for s = 0 to 2 do
    checki "nothing installed" 0 (List.length (A.items_of a ~switch:s))
  done

let test_capacity_respected () =
  (* One switch on everyone's path, capacity 1, two items. *)
  let inst =
    {
      A.num_items = 2;
      num_switches = 1;
      capacity = [| 1 |];
      demands =
        [|
          { A.src = 0; dst = 0; weight = 5.0 };
          { A.src = 1; dst = 1; weight = 1.0 };
        |];
      default_cost = (fun _ -> 10.0);
      cached_cost = (fun _ _ -> Some 1.0);
    }
  in
  let a = A.solve_greedy inst in
  checki "one entry only" 1 (List.length (A.items_of a ~switch:0));
  (* The heavier demand wins the slot. *)
  checkb "heavy item cached" true (A.holds a ~switch:0 ~item:0);
  checkf "cost" ((5.0 *. 1.0) +. (1.0 *. 10.0)) (A.cost inst a)

let test_greedy_prefers_shared_placement () =
  (* Two senders, one common "core" switch (cost 3 for both) and two
     private ToRs (cost 1 each, but capacity lives at one switch
     only). With capacity 1 per switch and one item, placing at ToRs
     beats the core per sender; but with ToR capacity 0 the core must
     be used. *)
  let inst =
    {
      A.num_items = 1;
      num_switches = 3;
      (* switch 0 = core, 1,2 = tors *)
      capacity = [| 1; 0; 0 |];
      demands =
        [|
          { A.src = 1; dst = 0; weight = 1.0 };
          { A.src = 2; dst = 0; weight = 1.0 };
        |];
      default_cost = (fun _ -> 10.0);
      cached_cost =
        (fun d s ->
          if s = 0 then Some 3.0 else if s = d.A.src then Some 1.0 else None);
    }
  in
  let a = A.solve_greedy inst in
  checkb "core used when tors are full" true (A.holds a ~switch:0 ~item:0);
  checkf "cost" 6.0 (A.cost inst a)

let test_exact_beats_or_ties_greedy_on_tricky_instance () =
  (* Greedy can be myopic: a switch that helps two demands a little
     versus two switches that help one demand a lot each. *)
  let inst =
    {
      A.num_items = 2;
      num_switches = 2;
      capacity = [| 1; 1 |];
      demands =
        [|
          { A.src = 0; dst = 0; weight = 3.0 };
          { A.src = 0; dst = 1; weight = 2.0 };
          { A.src = 1; dst = 0; weight = 2.0 };
        |];
      default_cost = (fun _ -> 10.0);
      cached_cost =
        (fun d s ->
          if s = 0 && d.A.src = 0 then Some 2.0
          else if s = 1 then Some 4.0
          else None);
    }
  in
  let g = A.solve_greedy inst in
  let e = A.solve_exact inst in
  checkb "exact no worse than greedy" true
    (A.cost inst e <= A.cost inst g +. 1e-9)

let test_exact_rejects_large () =
  let inst = path_instance ~n:30 ~capacity:1 in
  Alcotest.check_raises "too many variables"
    (Invalid_argument "Allocation.solve_exact: instance too large") (fun () ->
      ignore (A.solve_exact inst))

let test_validation () =
  let bad =
    { (path_instance ~n:2 ~capacity:1) with A.capacity = [| 1 |] }
  in
  Alcotest.check_raises "capacity length"
    (Invalid_argument "Allocation.validate: capacity array length mismatch")
    (fun () -> A.validate bad);
  let neg =
    {
      (path_instance ~n:2 ~capacity:1) with
      A.demands = [| { A.src = 0; dst = 0; weight = -1.0 } |];
    }
  in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Allocation.validate: negative weight") (fun () ->
      A.validate neg)

(* QCheck: on random small instances the exact solution is never worse
   than greedy, and both respect capacity. *)
let random_instance (sw, items, seed) =
  let sw = 1 + (sw mod 3) and items = 1 + (items mod 3) in
  let rng = Dessim.Rng.create seed in
  let demands =
    Array.init (sw * items) (fun i ->
        {
          A.src = i mod sw;
          dst = i mod items;
          weight = float_of_int (1 + Dessim.Rng.int rng 5);
        })
  in
  {
    A.num_items = items;
    num_switches = sw;
    capacity = Array.init sw (fun _ -> Dessim.Rng.int rng 2);
    demands;
    default_cost = (fun _ -> 20.0);
    cached_cost =
      (fun d s ->
        if (d.A.src + s) mod 2 = 0 then Some (float_of_int (1 + s)) else None);
  }

let exact_vs_greedy_qcheck =
  QCheck.Test.make ~name:"exact <= greedy on random instances" ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun params ->
      let inst = random_instance params in
      let g = A.solve_greedy inst in
      let e = A.solve_exact inst in
      A.cost inst e <= A.cost inst g +. 1e-9)

let capacity_qcheck =
  QCheck.Test.make ~name:"greedy respects capacities" ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun params ->
      let inst = random_instance params in
      let a = A.solve_greedy inst in
      let ok = ref true in
      for s = 0 to inst.A.num_switches - 1 do
        if List.length (A.items_of a ~switch:s) > inst.A.capacity.(s) then
          ok := false
      done;
      !ok)

let greedy_improves_qcheck =
  QCheck.Test.make ~name:"greedy never increases cost" ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun params ->
      let inst = random_instance params in
      let empty_cost =
        Array.fold_left
          (fun acc d -> acc +. (d.A.weight *. inst.A.default_cost d))
          0.0 inst.A.demands
      in
      A.cost inst (A.solve_greedy inst) <= empty_cost +. 1e-9)

let () =
  Alcotest.run "ilp"
    [
      ( "allocation",
        [
          Alcotest.test_case "greedy saturates path instance" `Quick
            test_greedy_saturates_path_instance;
          Alcotest.test_case "exact = greedy on separable" `Quick
            test_exact_matches_greedy_on_separable;
          Alcotest.test_case "zero capacity" `Quick test_empty_assignment_cost_is_default;
          Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
          Alcotest.test_case "fallback to shared switch" `Quick
            test_greedy_prefers_shared_placement;
          Alcotest.test_case "exact no worse than greedy" `Quick
            test_exact_beats_or_ties_greedy_on_tricky_instance;
          Alcotest.test_case "exact size guard" `Quick test_exact_rejects_large;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest exact_vs_greedy_qcheck;
          QCheck_alcotest.to_alcotest capacity_qcheck;
          QCheck_alcotest.to_alcotest greedy_improves_qcheck;
        ] );
    ]
