(* Tests for the Tofino resource model (Table 6). *)

module R = P4model.Resources

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 0.05)

let test_reproduces_table6 () =
  let u = R.estimate ~entries_per_switch:R.paper_config_entries in
  checkf "match crossbar" 7.2 u.R.match_crossbar;
  checkf "meter alu" 17.5 u.R.meter_alu;
  checkf "gateway" 25.0 u.R.gateway;
  checkf "tcam" 1.7 u.R.tcam;
  checkf "vliw" 10.0 u.R.vliw;
  (* Size-dependent resources within tolerance of the paper. *)
  checkb "sram close to 3.9%" true (Float.abs (u.R.sram -. 3.9) < 0.3);
  checkb "hash bits close to 4.7%" true (Float.abs (u.R.hash_bits -. 4.7) < 1.0)

let test_sram_monotone_in_entries () =
  let a = R.estimate ~entries_per_switch:1_000 in
  let b = R.estimate ~entries_per_switch:100_000 in
  checkb "more entries, more sram" true (b.R.sram > a.R.sram);
  checkb "more entries, more hash bits" true (b.R.hash_bits >= a.R.hash_bits)

let test_constants_independent_of_entries () =
  let a = R.estimate ~entries_per_switch:100 in
  let b = R.estimate ~entries_per_switch:100_000 in
  checkf "crossbar constant" a.R.match_crossbar b.R.match_crossbar;
  checkf "gateway constant" a.R.gateway b.R.gateway;
  checkf "vliw constant" a.R.vliw b.R.vliw

let test_bounds () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Resources.estimate: negative entries") (fun () ->
      ignore (R.estimate ~entries_per_switch:(-1)));
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "Resources.estimate: exceeds per-switch capacity")
    (fun () -> ignore (R.estimate ~entries_per_switch:(R.max_entries + 1)))

let test_max_entries_fit () =
  let u = R.estimate ~entries_per_switch:R.max_entries in
  checkb "sram under 100%" true (u.R.sram < 100.0);
  checkb "hash under 100%" true (u.R.hash_bits < 100.0)

let test_rows_layout () =
  let u = R.estimate ~entries_per_switch:1024 in
  let rows = R.rows u in
  Alcotest.check (Alcotest.list Alcotest.string) "table 6 row order"
    [
      "Match Crossbar";
      "Meter ALU";
      "Gateway";
      "SRAM";
      "TCAM";
      "VLIW Instruction";
      "Hash Bits";
    ]
    (List.map fst rows)

let () =
  Alcotest.run "p4model"
    [
      ( "resources",
        [
          Alcotest.test_case "reproduces Table 6" `Quick test_reproduces_table6;
          Alcotest.test_case "monotone in entries" `Quick test_sram_monotone_in_entries;
          Alcotest.test_case "structure constants" `Quick test_constants_independent_of_entries;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "max entries fit" `Quick test_max_entries_fit;
          Alcotest.test_case "row layout" `Quick test_rows_layout;
        ] );
    ]
