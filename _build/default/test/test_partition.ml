(* Tests for per-tenant cache partitioning (§4 multitenancy), the
   role-weighted memory allocation, and gateway-migration role
   reassignment. *)

module Partition = Switchv2p.Partition
module Config = Switchv2p.Config
module Dataplane = Switchv2p.Dataplane
module Cache = Switchv2p.Cache
module Topology = Topo.Topology
module Node = Topo.Node
module Vip = Netcore.Addr.Vip

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let vip = Vip.of_int

let topo () =
  Topology.build
    (Topo.Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2
       ~vms_per_host:4 ())

(* --- Partition --- *)

let test_single_partition () =
  checki "one tenant" 1 (Partition.num_tenants Partition.single);
  checki "owns everything" 0 (Partition.tenant_of Partition.single (vip 0));
  checki "owns large vips" 0
    (Partition.tenant_of Partition.single (vip 1_000_000))

let test_range_partition () =
  let p = Partition.create ~bounds:[| 10; 30; 100 |] ~shares:[| 1.; 1.; 2. |] in
  checki "tenants" 3 (Partition.num_tenants p);
  checki "first range" 0 (Partition.tenant_of p (vip 0));
  checki "boundary belongs to next" 1 (Partition.tenant_of p (vip 10));
  checki "second range" 1 (Partition.tenant_of p (vip 29));
  checki "third range" 2 (Partition.tenant_of p (vip 30));
  checki "overflow goes to last" 2 (Partition.tenant_of p (vip 5000))

let test_fn_partition () =
  let p =
    Partition.create_fn ~num_tenants:2 ~shares:[| 1.0; 1.0 |] (fun v ->
        Vip.to_int v land 1)
  in
  checki "even -> 0" 0 (Partition.tenant_of p (vip 4));
  checki "odd -> 1" 1 (Partition.tenant_of p (vip 5))

let test_fn_partition_out_of_range () =
  let p = Partition.create_fn ~num_tenants:2 ~shares:[| 1.0; 1.0 |] (fun _ -> 7) in
  Alcotest.check_raises "bad assignment"
    (Invalid_argument "Partition.tenant_of: assignment out of range") (fun () ->
      ignore (Partition.tenant_of p (vip 0)))

let test_partition_validation () =
  Alcotest.check_raises "no tenants"
    (Invalid_argument "Partition.create: no tenants") (fun () ->
      ignore (Partition.create ~bounds:[||] ~shares:[||]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Partition.create: bounds/shares length mismatch")
    (fun () -> ignore (Partition.create ~bounds:[| 1 |] ~shares:[| 1.; 2. |]));
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Partition.create: bounds not strictly increasing")
    (fun () ->
      ignore (Partition.create ~bounds:[| 5; 5 |] ~shares:[| 1.; 1. |]));
  Alcotest.check_raises "bad share"
    (Invalid_argument "Partition.create: non-positive share") (fun () ->
      ignore (Partition.create ~bounds:[| 1; 2 |] ~shares:[| 1.; 0. |]))

let test_split_slots_conserved () =
  let p = Partition.create ~bounds:[| 10; 20 |] ~shares:[| 9.0; 1.0 |] in
  let split = Partition.split_slots p ~slots:100 in
  checki "tenant 0 gets 90" 90 split.(0);
  checki "tenant 1 gets 10" 10 split.(1);
  (* Odd totals conserve too. *)
  let split2 = Partition.split_slots p ~slots:7 in
  checki "total conserved" 7 (Array.fold_left ( + ) 0 split2)

let split_qcheck =
  QCheck.Test.make ~name:"split_slots conserves totals" ~count:200
    QCheck.(pair (int_bound 1000) (pair small_nat small_nat))
    (fun (slots, (a, b)) ->
      let p =
        Partition.create ~bounds:[| 10; 20 |]
          ~shares:[| float_of_int (a + 1); float_of_int (b + 1) |]
      in
      Array.fold_left ( + ) 0 (Partition.split_slots p ~slots) = slots)

(* --- Dataplane with partitions --- *)

let test_dataplane_partitioned_caches () =
  let t = topo () in
  let part = Partition.create ~bounds:[| 8; 16 |] ~shares:[| 1.0; 1.0 |] in
  let n = Array.length (Topology.switches t) in
  let dp =
    Dataplane.create ~partition:part Config.default t
      ~total_cache_slots:(8 * n)
  in
  let sw = (Topology.switches t).(0) in
  let c0 = Dataplane.cache_of_tenant dp ~switch:sw ~tenant:0 in
  let c1 = Dataplane.cache_of_tenant dp ~switch:sw ~tenant:1 in
  checki "tenant 0 slots" 4 (Cache.slots c0);
  checki "tenant 1 slots" 4 (Cache.slots c1);
  checki "total per switch" 8 (Dataplane.slots_of dp ~switch:sw);
  Alcotest.check_raises "tenant out of range"
    (Invalid_argument "Dataplane.cache_of_tenant: tenant out of range")
    (fun () -> ignore (Dataplane.cache_of_tenant dp ~switch:sw ~tenant:2))

let test_partition_isolates_insertions () =
  (* Mappings learned for tenant 1 never occupy tenant 0's lines. *)
  let t = topo () in
  let part = Partition.create ~bounds:[| 8; 10_000 |] ~shares:[| 1.0; 1.0 |] in
  let n = Array.length (Topology.switches t) in
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane ~partition:part t
      ~total_cache_slots:(16 * n)
  in
  let net = Netsim.Network.create t ~scheme in
  (* vip 12 belongs to tenant 1; send traffic to it. *)
  let flow =
    Netcore.Flow.make ~id:0 ~src_vip:(vip 9) ~dst_vip:(vip 12)
      ~size_bytes:30_000 ~start:0 Netcore.Flow.Tcpish
  in
  Netsim.Network.run net [ flow ] ~migrations:[]
    ~until:(Dessim.Time_ns.of_ms 20);
  Array.iter
    (fun sw ->
      let c0 = Dataplane.cache_of_tenant dp ~switch:sw ~tenant:0 in
      checkb "tenant-0 partition untouched by dst learning" true
        (Cache.peek c0 (vip 12) = None))
    (Topology.switches t)

(* --- role-weighted allocation --- *)

let test_weighted_allocation () =
  let t = topo () in
  let cfg =
    Config.make
      ~allocation:
        (Config.Weighted
           { tor = 2.0; spine = 1.0; core = 0.0; gw_tor = 2.0; gw_spine = 1.0 })
      ()
  in
  let dp = Dataplane.create cfg t ~total_cache_slots:200 in
  let total = ref 0 in
  Array.iter
    (fun sw ->
      let slots = Dataplane.slots_of dp ~switch:sw in
      total := !total + slots;
      match Topology.role t sw with
      | Node.Core_switch -> checki "cores empty" 0 slots
      | Node.Regular_tor | Node.Gateway_tor ->
          checkb "tors get the double share" true (slots >= 30)
      | Node.Regular_spine | Node.Gateway_spine ->
          checkb "spines get the single share" true (slots >= 15 && slots < 30))
    (Topology.switches t);
  checki "budget conserved" 200 !total

let test_negative_weight_rejected () =
  let t = topo () in
  let cfg =
    Config.make
      ~allocation:
        (Config.Weighted
           { tor = -1.0; spine = 1.0; core = 1.0; gw_tor = 1.0; gw_spine = 1.0 })
      ()
  in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dataplane.create: negative role weight") (fun () ->
      ignore (Dataplane.create cfg t ~total_cache_slots:10))

let test_tor_only_via_allocation () =
  let t = topo () in
  let dp =
    Dataplane.create (Config.make ~allocation:Config.Tor_only ()) t
      ~total_cache_slots:64
  in
  Array.iter
    (fun sw ->
      match Topology.role t sw with
      | Node.Regular_tor | Node.Gateway_tor ->
          checkb "tor nonempty" true (Dataplane.slots_of dp ~switch:sw > 0)
      | Node.Regular_spine | Node.Gateway_spine | Node.Core_switch ->
          checki "others empty" 0 (Dataplane.slots_of dp ~switch:sw))
    (Topology.switches t)

(* --- gateway migration (role reassignment) --- *)

let test_reassign_tor_roles () =
  let t = topo () in
  let dp = Dataplane.create Config.default t ~total_cache_slots:64 in
  let gw_tor =
    Array.to_list (Topology.tors t)
    |> List.find (fun sw -> Topology.role t sw = Node.Gateway_tor)
  in
  let reg_tor =
    Array.to_list (Topology.tors t)
    |> List.find (fun sw -> Topology.role t sw = Node.Regular_tor)
  in
  (* Swap the roles, as gateway migration does. *)
  Dataplane.reassign_role dp ~switch:gw_tor Node.Regular_tor;
  Dataplane.reassign_role dp ~switch:reg_tor Node.Gateway_tor;
  checkb "old gateway ToR demoted" true
    (Dataplane.role_of dp ~switch:gw_tor = Node.Regular_tor);
  checkb "new gateway ToR promoted" true
    (Dataplane.role_of dp ~switch:reg_tor = Node.Gateway_tor);
  (* Cache state survives the transition. *)
  ignore
    (Cache.insert (Dataplane.cache dp ~switch:gw_tor) ~admission:`All (vip 3)
       (Netcore.Addr.Pip.of_int 1));
  Dataplane.reassign_role dp ~switch:gw_tor Node.Gateway_tor;
  checkb "cache state kept" true
    (Cache.peek (Dataplane.cache dp ~switch:gw_tor) (vip 3) <> None)

let test_reassign_cross_tier_rejected () =
  let t = topo () in
  let dp = Dataplane.create Config.default t ~total_cache_slots:64 in
  let tor = (Topology.tors t).(0) in
  Alcotest.check_raises "tor cannot become core"
    (Invalid_argument "Dataplane.reassign_role: incompatible tier") (fun () ->
      Dataplane.reassign_role dp ~switch:tor Node.Core_switch)

let test_reassigned_tor_changes_learning () =
  (* After demotion, a former gateway ToR source-learns like a regular
     ToR. *)
  let t = topo () in
  let dp = Dataplane.create Config.default t ~total_cache_slots:(16 * 12) in
  let gw_tor =
    Array.to_list (Topology.tors t)
    |> List.find (fun sw -> Topology.role t sw = Node.Gateway_tor)
  in
  Dataplane.reassign_role dp ~switch:gw_tor Node.Regular_tor;
  let env =
    {
      Dataplane.now = (fun () -> 0);
      emit = (fun ~src_switch:_ _ -> ());
      fresh_packet_id = (fun () -> 0);
      rng = Dessim.Rng.create 3;
    }
  in
  let host = (Topology.hosts t).(0) in
  let pkt =
    Netcore.Packet.make_data ~id:1 ~flow_id:1 ~seq:0 ~size:1500
      ~src_vip:(vip 99) ~dst_vip:(vip 98)
      ~src_pip:(Topology.pip t host)
      ~dst_pip:(Topology.pip t (Topology.gateways t).(0))
      ~now:0
  in
  ignore (Dataplane.process dp env ~switch:gw_tor ~from:(Topology.spines t).(0) pkt);
  checkb "source learning active after demotion" true
    (Cache.peek (Dataplane.cache dp ~switch:gw_tor) (vip 99) <> None)

(* --- per-class metrics --- *)

let test_class_hit_rates () =
  let t = topo () in
  let n = Array.length (Topology.switches t) in
  let scheme = Schemes.Switchv2p_scheme.make t ~total_cache_slots:(32 * n) in
  let classify (pkt : Netcore.Packet.t) =
    Vip.to_int pkt.Netcore.Packet.dst_vip land 1
  in
  let config =
    { Netsim.Network.default_config with classify = Some classify }
  in
  let net = Netsim.Network.create ~config t ~scheme in
  let flow id dst start =
    Netcore.Flow.make ~id ~src_vip:(vip 0) ~dst_vip:(vip dst)
      ~size_bytes:15_000 ~start Netcore.Flow.Tcpish
  in
  Netsim.Network.run net
    [ flow 0 8 0; flow 1 9 0; flow 2 8 (Dessim.Time_ns.of_ms 5) ]
    ~migrations:[] ~until:(Dessim.Time_ns.of_ms 50);
  let m = Netsim.Network.metrics net in
  checkb "class 0 counted" true (Netsim.Metrics.class_packets_sent m 0 > 0);
  checkb "class 1 counted" true (Netsim.Metrics.class_packets_sent m 1 > 0);
  checkb "unknown class empty" true (Netsim.Metrics.class_packets_sent m 9 = 0);
  Alcotest.check (Alcotest.float 1e-9) "unknown class rate" 0.0
    (Netsim.Metrics.class_hit_rate m 9)

let test_multitenant_experiment_shape () =
  let t = Experiments.Multitenant.run ~scale:`Tiny () in
  checki "three configs" 3 (List.length t.Experiments.Multitenant.rows);
  let row name =
    List.find
      (fun r -> r.Experiments.Multitenant.config = name)
      t.Experiments.Multitenant.rows
  in
  let shared = row "shared" in
  let weighted = row "partitioned 90/10" in
  (* The operator policy must protect tenant A from the churner. *)
  checkb "weighted partition protects tenant A" true
    (weighted.Experiments.Multitenant.tenant_a_hit
    >= shared.Experiments.Multitenant.tenant_a_hit -. 0.02);
  checkb "churner capped" true
    (weighted.Experiments.Multitenant.tenant_b_hit
    <= shared.Experiments.Multitenant.tenant_b_hit)

let () =
  Alcotest.run "partition"
    [
      ( "partition",
        [
          Alcotest.test_case "single" `Quick test_single_partition;
          Alcotest.test_case "ranges" `Quick test_range_partition;
          Alcotest.test_case "function assignment" `Quick test_fn_partition;
          Alcotest.test_case "fn out of range" `Quick test_fn_partition_out_of_range;
          Alcotest.test_case "validation" `Quick test_partition_validation;
          Alcotest.test_case "slot split" `Quick test_split_slots_conserved;
          QCheck_alcotest.to_alcotest split_qcheck;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "partitioned caches" `Quick test_dataplane_partitioned_caches;
          Alcotest.test_case "insertion isolation" `Quick test_partition_isolates_insertions;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "weighted" `Quick test_weighted_allocation;
          Alcotest.test_case "negative weight" `Quick test_negative_weight_rejected;
          Alcotest.test_case "tor-only" `Quick test_tor_only_via_allocation;
        ] );
      ( "gateway migration",
        [
          Alcotest.test_case "reassign tor roles" `Quick test_reassign_tor_roles;
          Alcotest.test_case "cross-tier rejected" `Quick test_reassign_cross_tier_rejected;
          Alcotest.test_case "learning follows role" `Quick test_reassigned_tor_changes_learning;
        ] );
      ( "multitenancy",
        [
          Alcotest.test_case "class hit rates" `Quick test_class_hit_rates;
          Alcotest.test_case "experiment shape" `Slow test_multitenant_experiment_shape;
        ] );
    ]
