test/test_cache.ml: Alcotest Dessim Hashtbl Int64 List Netcore Option QCheck QCheck_alcotest Switchv2p Test
