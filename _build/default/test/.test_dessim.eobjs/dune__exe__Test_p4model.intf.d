test/test_p4model.mli:
