test/test_netcore.ml: Alcotest Bytes Format List Netcore QCheck QCheck_alcotest
