test/test_schemes.ml: Alcotest Array Dessim List Netcore Netsim Schemes Switchv2p Topo
