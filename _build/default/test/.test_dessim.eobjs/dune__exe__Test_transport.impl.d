test/test_transport.ml: Alcotest Dessim List Netcore Netsim Option
