test/test_dataplane.ml: Alcotest Array Dessim List Netcore Switchv2p Topo
