test/test_network.ml: Alcotest Array Dessim List Netcore Netsim QCheck QCheck_alcotest Schemes Switchv2p Topo
