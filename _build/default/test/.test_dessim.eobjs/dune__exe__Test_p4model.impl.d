test/test_p4model.ml: Alcotest Float List P4model
