test/test_experiments.ml: Alcotest Array Experiments Float List P4model Printf Workloads
