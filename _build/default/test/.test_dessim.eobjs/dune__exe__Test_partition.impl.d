test/test_partition.ml: Alcotest Array Dessim Experiments List Netcore Netsim QCheck QCheck_alcotest Schemes Switchv2p Topo
