test/test_ilp.ml: Alcotest Array Dessim Ilp List QCheck QCheck_alcotest
