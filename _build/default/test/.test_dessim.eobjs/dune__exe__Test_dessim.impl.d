test/test_dessim.ml: Alcotest Array Dessim Float Fun List QCheck QCheck_alcotest
