test/test_workloads.ml: Alcotest Dessim Filename Float Fun Hashtbl List Netcore Option QCheck QCheck_alcotest String Sys Workloads
