test/test_topo.ml: Alcotest Array Dessim Hashtbl List QCheck QCheck_alcotest Topo
