(** Analytical model of the Tofino resource footprint of the SwitchV2P
    P4 program (§3.4, Table 6).

    We have no Tofino compiler in this environment, so per-stage
    utilization is computed from the program structure the paper
    describes: three register arrays (keys, values, access bits), the
    role/admission logic as if-else gateways, and the option-header
    parsing. Program-structure costs (crossbar, ALUs, gateways, VLIW,
    TCAM) are constants of the pipeline; SRAM and hash bits scale with
    the per-switch entry count. Constants are calibrated so that the
    paper's 50%-cache configuration (96K entries — half of the 192K a
    switch can hold [Bluebird]) reproduces Table 6. *)

type usage = {
  match_crossbar : float;  (** percent, average per stage *)
  meter_alu : float;
  gateway : float;
  sram : float;
  tcam : float;
  vliw : float;
  hash_bits : float;
}

(** Tofino-1 per-stage capacities used by the model. *)
val stages : int

val sram_bytes_per_stage : int
val hash_bits_per_stage : int

(** [estimate ~entries_per_switch] — per-stage average utilization for
    a direct-mapped cache of that many lines.
    Raises [Invalid_argument] if negative or beyond the 192K capacity
    the paper cites. *)
val estimate : entries_per_switch:int -> usage

(** [paper_config_entries] is 96K: the 50%-cache point of Table 6. *)
val paper_config_entries : int

(** [max_entries] is the 192K per-switch capacity from Bluebird. *)
val max_entries : int

val pp : Format.formatter -> usage -> unit

(** [rows u] renders the Table 6 layout as (resource, percent) rows. *)
val rows : usage -> (string * float) list
