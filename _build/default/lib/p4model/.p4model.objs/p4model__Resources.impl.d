lib/p4model/resources.ml: Float Format List
