lib/p4model/resources.mli: Format
