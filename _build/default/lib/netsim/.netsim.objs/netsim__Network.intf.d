lib/netsim/network.mli: Dessim Metrics Netcore Scheme Topo Transport
