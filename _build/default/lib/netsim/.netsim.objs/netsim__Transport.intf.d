lib/netsim/transport.mli: Dessim Netcore
