lib/netsim/metrics.ml: Array Dessim Float Hashtbl Netcore Topo
