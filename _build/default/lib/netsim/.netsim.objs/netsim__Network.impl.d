lib/netsim/network.ml: Array Dessim Hashtbl List Metrics Netcore Scheme Topo Transport
