lib/netsim/metrics.mli: Dessim Netcore Topo
