lib/netsim/transport.ml: Bytes Dessim Float Hashtbl Netcore
