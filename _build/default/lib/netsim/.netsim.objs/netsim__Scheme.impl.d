lib/netsim/scheme.ml: Dessim Netcore Topo
