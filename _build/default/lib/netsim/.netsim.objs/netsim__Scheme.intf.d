lib/netsim/scheme.mli: Dessim Netcore Topo
