(** Random distributions used by the workload generators. *)

(** [exponential rng ~mean] samples an exponential with the given mean.
    Used for Poisson inter-arrival times. *)
val exponential : Rng.t -> mean:float -> float

(** [zipf rng ~n ~alpha] samples from a Zipf distribution over ranks
    [1..n] with skew [alpha] (inverse-CDF over precomputed weights is
    exposed through {!Zipf}). This direct form rebuilds the CDF per
    call and is only for one-off draws; use {!Zipf.create} in loops. *)
val zipf : Rng.t -> n:int -> alpha:float -> int

module Zipf : sig
  type t

  (** [create ~n ~alpha] precomputes the CDF over ranks [1..n]. *)
  val create : n:int -> alpha:float -> t

  (** [sample t rng] draws a rank in [1..n], rank 1 most popular. *)
  val sample : t -> Rng.t -> int
end

module Empirical : sig
  (** Empirical CDF given as [(value, cumulative_probability)] knots,
      sampled with linear interpolation between knots — the standard
      way flow-size distributions from published papers are replayed. *)

  type t

  (** [create knots] builds the distribution. [knots] must be
      non-empty, sorted by cumulative probability, and end at 1.0.
      Raises [Invalid_argument] otherwise. *)
  val create : (float * float) list -> t

  (** [sample t rng] draws a value. *)
  val sample : t -> Rng.t -> float

  (** [mean t] is the analytic mean of the interpolated distribution. *)
  val mean : t -> float
end
