(** Simulation time as integer nanoseconds.

    All simulator timestamps are 63-bit integers counting nanoseconds
    since the start of the simulation, which keeps the event queue free
    of floating-point accumulation error and makes runs bit-reproducible. *)

type t = int

val zero : t

val of_ns : int -> t
val of_us : int -> t
val of_ms : int -> t
val of_sec : float -> t

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int

(** [of_rate_bytes ~bits_per_sec bytes] is the serialization time of
    [bytes] bytes on a link of the given rate, rounded up to 1 ns. *)
val of_rate_bytes : bits_per_sec:float -> int -> t

val pp : Format.formatter -> t -> unit
