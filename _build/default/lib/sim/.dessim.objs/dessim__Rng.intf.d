lib/sim/rng.mli:
