lib/sim/engine.ml: Heap Time_ns
