lib/sim/stats.ml: Array Float Hashtbl List Rng Stdlib String
