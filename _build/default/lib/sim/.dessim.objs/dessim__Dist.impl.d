lib/sim/dist.ml: Array Float List Rng
