lib/sim/heap.mli:
