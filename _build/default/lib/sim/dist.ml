let exponential rng ~mean =
  let u = 1.0 -. Rng.float rng in
  -.mean *. log u

module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~alpha =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let cdf = Array.make n 0.0 in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) alpha);
      cdf.(i) <- !total
    done;
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. !total
    done;
    { cdf }

  let sample t rng =
    let u = Rng.float rng in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo + 1
end

let zipf rng ~n ~alpha = Zipf.sample (Zipf.create ~n ~alpha) rng

module Empirical = struct
  type t = { values : float array; probs : float array }

  let create knots =
    if knots = [] then invalid_arg "Empirical.create: empty knots";
    let values = Array.of_list (List.map fst knots) in
    let probs = Array.of_list (List.map snd knots) in
    let n = Array.length probs in
    for i = 1 to n - 1 do
      if probs.(i) < probs.(i - 1) then
        invalid_arg "Empirical.create: probabilities not sorted"
    done;
    if Float.abs (probs.(n - 1) -. 1.0) > 1e-9 then
      invalid_arg "Empirical.create: last probability must be 1.0";
    { values; probs }

  let sample t rng =
    let u = Rng.float rng in
    let n = Array.length t.probs in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.probs.(mid) >= u then hi := mid else lo := mid + 1
    done;
    let i = !lo in
    if i = 0 then t.values.(0)
    else begin
      let p0 = t.probs.(i - 1) and p1 = t.probs.(i) in
      let v0 = t.values.(i - 1) and v1 = t.values.(i) in
      if p1 -. p0 <= 0.0 then v1
      else v0 +. ((v1 -. v0) *. (u -. p0) /. (p1 -. p0))
    end

  let mean t =
    let n = Array.length t.probs in
    let acc = ref (t.values.(0) *. t.probs.(0)) in
    for i = 1 to n - 1 do
      let w = t.probs.(i) -. t.probs.(i - 1) in
      acc := !acc +. (w *. (t.values.(i) +. t.values.(i - 1)) /. 2.0)
    done;
    !acc
end
