(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible from a single seed and
    independent components can be given independent streams via
    {!split}. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [split t] is a new generator whose stream is statistically
    independent of subsequent draws from [t]. *)
val split : t -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int64 t] is a uniform 64-bit value. *)
val int64 : t -> int64

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly random element of [a].
    Requires [a] non-empty. *)
val choose : t -> 'a array -> 'a
