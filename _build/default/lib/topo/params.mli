(** Topology parameters and the paper's presets (Table 3).

    A generalized FatTree: [pods] pods, each with [racks_per_pod] ToRs
    and [spines_per_pod] spine switches (full bipartite inside the
    pod); core switches come in [spines_per_pod] groups of
    [cores_per_group], group [g] connecting to spine [g] of every pod.
    Gateways live in the last rack of each pod listed in
    [gateway_pods]; that rack's ToR is the {e gateway ToR} and hosts
    only gateways. *)

type t = {
  pods : int;
  racks_per_pod : int;
  spines_per_pod : int;
  cores_per_group : int;
  hosts_per_rack : int;
  vms_per_host : int;
  gateway_pods : int list;  (** pod indices hosting gateways *)
  gateways_per_gateway_pod : int;
  host_link_bps : float;
  fabric_link_bps : float;
  prop_delay : Dessim.Time_ns.t;
  buffer_bytes : int;  (** per-port drop-tail buffer *)
  ecn_threshold_bytes : int option;
      (** per-port ECN step-marking threshold; defaults to ~65 MTUs,
          the DCTCP guideline for high-speed links *)
}

(** [validate t] raises [Invalid_argument] on inconsistent parameters
    (e.g. a gateway pod index out of range, or gateways requested but
    no gateway pods). *)
val validate : t -> unit

(** FT8-10K from Table 3: 8 pods, 4 racks/pod, 4 spines/pod, 16 cores,
    gateways in pods 0,2,5,7 (the paper's pods 1,3,6,8), 10 gateways
    per gateway pod, 100G host links, 400G fabric links, 1 us
    propagation delay, 32 MB buffers. *)
val ft8_10k : unit -> t

(** FT16-400K from Table 3: 50 pods, 8 racks/pod, 16 cores, 250
    gateways, 32 hosts/rack, 32 VMs per host. *)
val ft16_400k : unit -> t

(** [scaled ~pods ~racks_per_pod ~hosts_per_rack ~vms_per_host ()] is a
    small topology for tests and quick benches; gateways are placed in
    every other pod (at least one pod). Optional arguments default to
    the FT8 link parameters. *)
val scaled :
  ?spines_per_pod:int ->
  ?cores_per_group:int ->
  ?gateways_per_gateway_pod:int ->
  ?host_link_bps:float ->
  ?fabric_link_bps:float ->
  ?buffer_bytes:int ->
  pods:int ->
  racks_per_pod:int ->
  hosts_per_rack:int ->
  vms_per_host:int ->
  unit ->
  t

(** [num_switches t] is the total switch count (ToRs + spines + cores). *)
val num_switches : t -> int

(** [num_hosts t] counts regular (non-gateway) servers. *)
val num_hosts : t -> int

(** [num_vms t] is [num_hosts t * vms_per_host]. *)
val num_vms : t -> int

(** [base_rtt t] is the round-trip propagation time of the longest
    intra-fabric path (host-ToR-spine-core-spine-ToR-host and back),
    used by the invalidation timestamp vector. *)
val base_rtt : t -> Dessim.Time_ns.t
