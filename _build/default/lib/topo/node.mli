(** Network node kinds and placement.

    Node ids are dense integers; a node's PIP is its id (see
    {!Netcore.Addr.Pip}). Switch classification into the paper's five
    categories (gateway ToR, gateway spine, ToR, spine, core — Table 1)
    is structural: a gateway ToR is a ToR with at least one gateway
    attached, and a gateway spine is a spine in a pod containing a
    gateway ToR. *)

type kind =
  | Host of { pod : int; rack : int; idx : int }
  | Gateway of { pod : int; rack : int; idx : int }
  | Tor of { pod : int; rack : int; gateway_tor : bool }
  | Spine of { pod : int; group : int; gateway_spine : bool }
  | Core of { group : int; idx : int }

type t = { id : int; kind : kind }

(** Switch categories from Table 1 of the paper. *)
type role = Gateway_tor | Gateway_spine | Regular_tor | Regular_spine | Core_switch

(** [role_of_kind k] is the switch category, or [None] for hosts and
    gateways. *)
val role_of_kind : kind -> role option

val is_switch : kind -> bool
val is_endpoint : kind -> bool

(** [pod_of k] is the pod index, or [-1] for core switches. *)
val pod_of : kind -> int

val pp_role : Format.formatter -> role -> unit
val pp : Format.formatter -> t -> unit
