type t = {
  pods : int;
  racks_per_pod : int;
  spines_per_pod : int;
  cores_per_group : int;
  hosts_per_rack : int;
  vms_per_host : int;
  gateway_pods : int list;
  gateways_per_gateway_pod : int;
  host_link_bps : float;
  fabric_link_bps : float;
  prop_delay : Dessim.Time_ns.t;
  buffer_bytes : int;
  ecn_threshold_bytes : int option;
}

let validate t =
  let fail msg = invalid_arg ("Params.validate: " ^ msg) in
  if t.pods <= 0 then fail "pods must be positive";
  if t.racks_per_pod <= 0 then fail "racks_per_pod must be positive";
  if t.spines_per_pod <= 0 then fail "spines_per_pod must be positive";
  if t.pods > 1 && t.cores_per_group <= 0 then
    fail "multi-pod topology needs core switches";
  if t.hosts_per_rack <= 0 then fail "hosts_per_rack must be positive";
  if t.vms_per_host <= 0 then fail "vms_per_host must be positive";
  List.iter
    (fun p -> if p < 0 || p >= t.pods then fail "gateway pod out of range")
    t.gateway_pods;
  if t.gateway_pods <> [] && t.gateways_per_gateway_pod <= 0 then
    fail "gateways_per_gateway_pod must be positive";
  if t.gateway_pods = [] then fail "at least one gateway pod is required";
  let sorted = List.sort_uniq compare t.gateway_pods in
  if List.length sorted <> List.length t.gateway_pods then
    fail "duplicate gateway pods"

let ft8_10k () =
  {
    pods = 8;
    racks_per_pod = 4;
    spines_per_pod = 4;
    cores_per_group = 4;
    hosts_per_rack = 4;
    vms_per_host = 80;
    gateway_pods = [ 0; 2; 5; 7 ];
    gateways_per_gateway_pod = 10;
    host_link_bps = 100e9;
    fabric_link_bps = 400e9;
    prop_delay = Dessim.Time_ns.of_us 1;
    buffer_bytes = 32 * 1024 * 1024;
    ecn_threshold_bytes = Some (65 * 1500);
  }

let ft16_400k () =
  {
    pods = 50;
    racks_per_pod = 8;
    spines_per_pod = 4;
    cores_per_group = 4;
    hosts_per_rack = 32;
    vms_per_host = 32;
    gateway_pods = List.init 25 (fun i -> 2 * i);
    gateways_per_gateway_pod = 10;
    host_link_bps = 100e9;
    fabric_link_bps = 400e9;
    prop_delay = Dessim.Time_ns.of_us 1;
    buffer_bytes = 32 * 1024 * 1024;
    ecn_threshold_bytes = Some (65 * 1500);
  }

let scaled ?(spines_per_pod = 2) ?(cores_per_group = 2)
    ?(gateways_per_gateway_pod = 2) ?(host_link_bps = 100e9)
    ?(fabric_link_bps = 400e9) ?(buffer_bytes = 32 * 1024 * 1024) ~pods
    ~racks_per_pod ~hosts_per_rack ~vms_per_host () =
  let gateway_pods =
    if pods = 1 then [ 0 ]
    else List.filter (fun p -> p mod 2 = 0) (List.init pods Fun.id)
  in
  let t =
    {
      pods;
      racks_per_pod;
      spines_per_pod;
      cores_per_group = (if pods > 1 then cores_per_group else 0);
      hosts_per_rack;
      vms_per_host;
      gateway_pods;
      gateways_per_gateway_pod;
      host_link_bps;
      fabric_link_bps;
      prop_delay = Dessim.Time_ns.of_us 1;
      buffer_bytes;
      ecn_threshold_bytes = Some (65 * 1500);
    }
  in
  validate t;
  t

let gateway_pod_count t = List.length t.gateway_pods

let num_switches t =
  (t.pods * t.racks_per_pod)
  + (t.pods * t.spines_per_pod)
  + (t.spines_per_pod * t.cores_per_group)

let num_hosts t =
  (* Gateway pods sacrifice one rack to gateways. *)
  let gw_pods = gateway_pod_count t in
  ((t.pods * t.racks_per_pod) - gw_pods) * t.hosts_per_rack

let num_vms t = num_hosts t * t.vms_per_host

let base_rtt t =
  let hops_one_way = if t.pods > 1 then 6 else 4 in
  Dessim.Time_ns.of_ns (2 * hops_one_way * Dessim.Time_ns.to_ns t.prop_delay)
