type t = {
  src : int;
  dst : int;
  rate_bps : float;
  prop_delay : Dessim.Time_ns.t;
  buffer_bytes : int;
  ecn_threshold : int option;
  mutable busy_until : Dessim.Time_ns.t;
  mutable queued_bytes : int;
  mutable tx_bytes : int;
  mutable tx_packets : int;
  mutable drops : int;
  mutable marked : int;
}

type tx = { arrival : Dessim.Time_ns.t; ce_marked : bool }

let make ~ecn_threshold ~src ~dst ~rate_bps ~prop_delay ~buffer_bytes =
  {
    src;
    dst;
    rate_bps;
    prop_delay;
    buffer_bytes;
    ecn_threshold;
    busy_until = Dessim.Time_ns.zero;
    queued_bytes = 0;
    tx_bytes = 0;
    tx_packets = 0;
    drops = 0;
    marked = 0;
  }

let transmit t ~now ~bytes =
  if t.queued_bytes + bytes > t.buffer_bytes then begin
    t.drops <- t.drops + 1;
    None
  end
  else begin
    (* DCTCP step marking: judge the queue as seen on enqueue. *)
    let ce_marked =
      match t.ecn_threshold with
      | Some k when t.queued_bytes > k ->
          t.marked <- t.marked + 1;
          true
      | Some _ | None -> false
    in
    let start = Dessim.Time_ns.max now t.busy_until in
    let ser = Dessim.Time_ns.of_rate_bytes ~bits_per_sec:t.rate_bps bytes in
    let done_ser = Dessim.Time_ns.add start ser in
    t.busy_until <- done_ser;
    t.queued_bytes <- t.queued_bytes + bytes;
    t.tx_bytes <- t.tx_bytes + bytes;
    t.tx_packets <- t.tx_packets + 1;
    Some { arrival = Dessim.Time_ns.add done_ser t.prop_delay; ce_marked }
  end

let delivered t ~bytes = t.queued_bytes <- t.queued_bytes - bytes

let reset t =
  t.busy_until <- Dessim.Time_ns.zero;
  t.queued_bytes <- 0;
  t.tx_bytes <- 0;
  t.tx_packets <- 0;
  t.drops <- 0;
  t.marked <- 0

let queueing_delay t ~now =
  if Dessim.Time_ns.compare t.busy_until now > 0 then
    Dessim.Time_ns.sub t.busy_until now
  else Dessim.Time_ns.zero
