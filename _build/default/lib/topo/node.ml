type kind =
  | Host of { pod : int; rack : int; idx : int }
  | Gateway of { pod : int; rack : int; idx : int }
  | Tor of { pod : int; rack : int; gateway_tor : bool }
  | Spine of { pod : int; group : int; gateway_spine : bool }
  | Core of { group : int; idx : int }

type t = { id : int; kind : kind }
type role = Gateway_tor | Gateway_spine | Regular_tor | Regular_spine | Core_switch

let role_of_kind = function
  | Host _ | Gateway _ -> None
  | Tor { gateway_tor = true; _ } -> Some Gateway_tor
  | Tor _ -> Some Regular_tor
  | Spine { gateway_spine = true; _ } -> Some Gateway_spine
  | Spine _ -> Some Regular_spine
  | Core _ -> Some Core_switch

let is_switch = function
  | Tor _ | Spine _ | Core _ -> true
  | Host _ | Gateway _ -> false

let is_endpoint = function
  | Host _ | Gateway _ -> true
  | Tor _ | Spine _ | Core _ -> false

let pod_of = function
  | Host { pod; _ } | Gateway { pod; _ } | Tor { pod; _ } | Spine { pod; _ } ->
      pod
  | Core _ -> -1

let pp_role ppf r =
  Format.pp_print_string ppf
    (match r with
    | Gateway_tor -> "gateway-tor"
    | Gateway_spine -> "gateway-spine"
    | Regular_tor -> "tor"
    | Regular_spine -> "spine"
    | Core_switch -> "core")

let pp ppf t =
  match t.kind with
  | Host { pod; rack; idx } -> Format.fprintf ppf "host%d(p%d.r%d.%d)" t.id pod rack idx
  | Gateway { pod; rack; idx } -> Format.fprintf ppf "gw%d(p%d.r%d.%d)" t.id pod rack idx
  | Tor { pod; rack; gateway_tor } ->
      Format.fprintf ppf "%stor%d(p%d.r%d)" (if gateway_tor then "gw-" else "") t.id pod rack
  | Spine { pod; group; gateway_spine } ->
      Format.fprintf ppf "%sspine%d(p%d.g%d)" (if gateway_spine then "gw-" else "") t.id pod group
  | Core { group; idx } -> Format.fprintf ppf "core%d(g%d.%d)" t.id group idx
