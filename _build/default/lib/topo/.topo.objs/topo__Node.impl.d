lib/topo/node.ml: Format
