lib/topo/routing.mli: Topology
