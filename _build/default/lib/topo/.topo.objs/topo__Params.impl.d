lib/topo/params.ml: Dessim Fun List
