lib/topo/params.mli: Dessim
