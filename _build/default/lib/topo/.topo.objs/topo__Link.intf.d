lib/topo/link.mli: Dessim
