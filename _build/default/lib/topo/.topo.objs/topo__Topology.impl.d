lib/topo/topology.ml: Array Hashtbl Link List Netcore Node Params
