lib/topo/topology.mli: Link Netcore Node Params
