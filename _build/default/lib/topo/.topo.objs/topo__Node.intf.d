lib/topo/node.mli: Format
