lib/topo/routing.ml: Array Int64 List Node Params Topology
