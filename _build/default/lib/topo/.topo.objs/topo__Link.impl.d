lib/topo/link.ml: Dessim
