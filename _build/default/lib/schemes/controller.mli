(** The Controller baseline (§5, Appendix A.2): a centralized
    allocator that periodically collects the traffic matrix, solves
    the cache-placement problem of Appendix A.1 and installs the
    chosen mappings into the switches. Switches only look up — they
    never learn.

    The paper stresses this is {e not} a practical design (it assumes
    an exact, instantaneous traffic matrix); it serves as a
    theoretical reference point. *)

(** [make topo ~total_slots ~interval ()] — [interval] is the
    controller invocation period (the paper evaluates 150 and 300 us);
    [gw_cost_hops] converts gateway processing time into path-hop
    units for the objective (default 40.0, i.e. 40 us at 1 us/hop). *)
val make :
  ?gw_cost_hops:float ->
  topo:Topo.Topology.t ->
  total_slots:int ->
  interval:Dessim.Time_ns.t ->
  unit ->
  Netsim.Scheme.t
