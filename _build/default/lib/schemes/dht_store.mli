(** The §2.4 design alternative the paper dismissed: store the {e
    whole} V2P database across the switches as a one-hop DHT (SEATTLE
    style). Every mapping has a {e home switch} — [hash(vip) mod
    #switches] — holding it authoritatively; a sender's ToR redirects
    unresolved packets to the destination's home switch, which rewrites
    and forwards them (triangle routing).

    We build it to reproduce the paper's argument for dismissing it:

    - {b switch failures are critical}: losing a switch loses its
      partition of the database, and traffic must fall back to the
      gateways until the control plane repopulates it ({!fail_switch});
    - {b path stretch}: the detour through the home switch lengthens
      paths that SwitchV2P serves en route;
    - {b hotspots}: popular destinations concentrate load on one home
      switch. *)

(** [make topo] builds the scheme; partitions materialize lazily from
    the ground-truth store on first use and follow mapping updates
    instantly (the alternative's update path is not the paper's
    concern). *)
val make : Topo.Topology.t -> Netsim.Scheme.t

(** [make_with_control topo] also returns a control handle. *)
type control

val make_with_control : Topo.Topology.t -> Netsim.Scheme.t * control

(** [fail_switch c ~switch] drops the switch's partition; packets
    homed there fall back to the gateways until {!repopulate}. *)
val fail_switch : control -> switch:int -> unit

(** [repopulate c ~switch] — the control plane reinstalls the lost
    partition (idempotent). *)
val repopulate : control -> switch:int -> unit

(** [home_of c vip] — the home switch node id (tests). *)
val home_of : control -> Netcore.Addr.Vip.t -> int

(** [fallbacks c] counts packets sent to the gateways because their
    home switch had lost its partition. *)
val fallbacks : control -> int
