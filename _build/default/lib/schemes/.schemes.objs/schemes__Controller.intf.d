lib/schemes/controller.mli: Dessim Netsim Topo
