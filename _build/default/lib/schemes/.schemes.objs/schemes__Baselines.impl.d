lib/schemes/baselines.ml: Array Dessim Hashtbl Learning_cache List Netcore Netsim Switchv2p Topo
