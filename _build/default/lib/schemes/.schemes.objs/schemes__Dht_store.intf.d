lib/schemes/dht_store.mli: Netcore Netsim Topo
