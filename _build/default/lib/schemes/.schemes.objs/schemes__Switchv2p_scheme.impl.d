lib/schemes/switchv2p_scheme.ml: Dessim Netsim Switchv2p
