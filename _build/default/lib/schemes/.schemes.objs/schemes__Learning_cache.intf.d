lib/schemes/learning_cache.mli: Netcore Switchv2p
