lib/schemes/learning_cache.ml: Array Netcore Switchv2p
