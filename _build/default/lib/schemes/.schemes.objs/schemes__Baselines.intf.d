lib/schemes/baselines.mli: Dessim Netsim Topo
