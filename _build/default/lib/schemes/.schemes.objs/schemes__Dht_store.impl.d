lib/schemes/dht_store.ml: Array Netcore Netsim Topo
