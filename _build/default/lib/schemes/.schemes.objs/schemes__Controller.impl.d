lib/schemes/controller.ml: Array Dessim Hashtbl Ilp List Netcore Netsim Topo
