lib/schemes/switchv2p_scheme.mli: Netsim Switchv2p Topo
