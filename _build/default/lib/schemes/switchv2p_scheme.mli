(** SwitchV2P as a {!Netsim.Scheme.t}: wires the
    {!Switchv2p.Dataplane} pipeline into the network engine. *)

(** [make ?config ?partition topo ~total_cache_slots] —
    [total_cache_slots] is the aggregate in-switch memory (the paper's
    cache-size axis); [partition] enables per-tenant private cache
    partitions (§4 multitenancy). *)
val make :
  ?config:Switchv2p.Config.t ->
  ?partition:Switchv2p.Partition.t ->
  Topo.Topology.t ->
  total_cache_slots:int ->
  Netsim.Scheme.t

(** [make_with_dataplane ?config ?partition topo ~total_cache_slots]
    also returns the dataplane for direct inspection (tests,
    per-switch metrics). *)
val make_with_dataplane :
  ?config:Switchv2p.Config.t ->
  ?partition:Switchv2p.Partition.t ->
  Topo.Topology.t ->
  total_cache_slots:int ->
  Netsim.Scheme.t * Switchv2p.Dataplane.t
