(** Shared skeleton for the "flat" caching baselines (LocalLearning and
    GwCache): destination learning with admit-all at a designated set
    of switches, lookup for unresolved packets, and conservative
    handling of host-tagged misdelivered packets (invalidate matching
    stale entries, never serve a tagged packet from cache). *)

type t

(** [create ~switches ~total_slots ~num_nodes] splits [total_slots]
    equally (remainder round-robin) across [switches]. *)
val create : switches:int array -> total_slots:int -> num_nodes:int -> t

(** [on_switch t ~switch pkt] runs lookup + destination learning if
    [switch] is one of the caching switches; otherwise does nothing.
    Always forwards. *)
val on_switch : t -> switch:int -> Netcore.Packet.t -> unit

(** [cache t ~switch] — the switch's cache, or [None] for non-caching
    switches. *)
val cache : t -> switch:int -> Switchv2p.Cache.t option

(** Aggregate hits/misses over all caches. *)
val total_hits : t -> int

val total_misses : t -> int
