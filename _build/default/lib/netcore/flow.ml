type proto = Tcpish | Udp of { rate_bps : float }

type t = {
  id : int;
  src_vip : Addr.Vip.t;
  dst_vip : Addr.Vip.t;
  size_bytes : int;
  start : Dessim.Time_ns.t;
  proto : proto;
  pkt_bytes : int;
}

let make ?(pkt_bytes = Packet.mtu) ~id ~src_vip ~dst_vip ~size_bytes ~start
    proto =
  if size_bytes <= 0 then invalid_arg "Flow.make: size must be positive";
  if pkt_bytes <= 0 then invalid_arg "Flow.make: pkt_bytes must be positive";
  { id; src_vip; dst_vip; size_bytes; start; proto; pkt_bytes }

let packet_count t = max 1 ((t.size_bytes + t.pkt_bytes - 1) / t.pkt_bytes)

let pp ppf t =
  Format.fprintf ppf "flow %d: %a -> %a, %dB @ %a" t.id Addr.Vip.pp t.src_vip
    Addr.Vip.pp t.dst_vip t.size_bytes Dessim.Time_ns.pp t.start
