lib/netcore/addr.ml: Format Stdlib
