lib/netcore/packet.ml: Addr Dessim Format
