lib/netcore/packet.mli: Addr Dessim Format
