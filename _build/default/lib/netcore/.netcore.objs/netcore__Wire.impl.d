lib/netcore/wire.ml: Addr Buffer Bytes Char List Packet Printf
