lib/netcore/flow.mli: Addr Dessim Format
