lib/netcore/mapping.ml: Addr Hashtbl
