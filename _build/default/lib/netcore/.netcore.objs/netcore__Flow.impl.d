lib/netcore/flow.ml: Addr Dessim Format Packet
