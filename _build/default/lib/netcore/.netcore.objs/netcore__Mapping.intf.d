lib/netcore/mapping.mli: Addr
