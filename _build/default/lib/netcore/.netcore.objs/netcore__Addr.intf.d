lib/netcore/addr.mli: Format
