(** Wire format for SwitchV2P tunneled packets.

    The paper carries its protocol metadata in tunnel-header option
    fields (Geneve options, RFC 8926, over an IP-in-IP encapsulation).
    This module defines a concrete binary layout and
    encoders/decoders, so that the in-memory {!Packet.t} used by the
    simulator corresponds to real bytes a switch would parse:

    {v
    outer IPv4 (20B: src/dst PIP, protocol = 4)
    option block:
      flags      (1B: resolved | misdelivery | gw_visited | retransmit)
      kind       (1B: data | ack | learning | invalidation)
      hit_switch (4B, 0xffffffff = none)
      TLVs: each 1B type, 1B length, payload
        0x01 misdelivery stale PIP (4B)
        0x02 spilled entry (8B: vip, pip)
        0x03 promotion (8B)
        0x04 mapping payload (8B)
    inner IPv4 (20B: src/dst VIP)
    payload length (4B) — payload bytes themselves are not materialized
    seq (4B), flow id (4B), packet id (4B)
    v}

    Learning/invalidation state that is semantically per-hop
    ([hops]) or simulator-only ([sent_at]) is {e not} encoded; decoded
    packets have those fields zeroed. *)

(** [encode pkt] serializes the packet's headers and options. *)
val encode : Packet.t -> bytes

(** [decode b] parses a packet back. [sent_at] is restored as zero and
    [hops] as 0 (not wire state). Raises [Invalid_argument] on
    malformed input (truncation, unknown kind or TLV, bad lengths). *)
val decode : bytes -> Packet.t

(** [header_bytes pkt] is the encoded size — the tunnel overhead the
    packet would add on a real wire. *)
val header_bytes : Packet.t -> int
