(** Virtual and physical addresses.

    A virtual IP (VIP) is a tenant-visible identifier with no location
    information; a physical IP (PIP) identifies a physical endpoint
    (server, gateway, or switch — switches are addressable so that
    learning and invalidation packets can be delivered to them, cf.
    §3.3 of the paper). Both are represented as dense integers so that
    caches and routing tables are plain arrays. *)

module Vip : sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  (** [pp] renders as a dotted quad in 10.128.0.0/9 for readability. *)
  val pp : Format.formatter -> t -> unit
end

module Pip : sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  (** [none] is a sentinel for "no physical address yet" (packets not
      yet resolved carry the gateway address instead; [none] is only
      used for optional-free fast paths). *)
  val none : t

  val is_none : t -> bool

  (** [pp] renders as a dotted quad in 192.0.0.0/8 for readability. *)
  val pp : Format.formatter -> t -> unit
end
