(** Flow descriptors produced by workload generators and consumed by
    the transport layer. *)

type proto =
  | Tcpish  (** windowed reliable transport; FCT is measured *)
  | Udp of { rate_bps : float }
      (** constant-rate unreliable stream; per-packet latency is
          measured *)

type t = {
  id : int;
  src_vip : Addr.Vip.t;
  dst_vip : Addr.Vip.t;
  size_bytes : int;  (** total payload bytes to transfer *)
  start : Dessim.Time_ns.t;
  proto : proto;
  pkt_bytes : int;  (** data packet size on the wire; default MTU *)
}

(** [make ... proto] — the protocol is the final positional argument
    so that [?pkt_bytes] stays erasable. *)
val make :
  ?pkt_bytes:int ->
  id:int ->
  src_vip:Addr.Vip.t ->
  dst_vip:Addr.Vip.t ->
  size_bytes:int ->
  start:Dessim.Time_ns.t ->
  proto ->
  t

(** [packet_count t] is the number of [pkt_bytes]-sized data packets
    needed (at least 1). *)
val packet_count : t -> int

val pp : Format.formatter -> t -> unit
