type entry = { mutable pip : Addr.Pip.t; mutable version : int }
type t = (Addr.Vip.t, entry) Hashtbl.t

let create () : t = Hashtbl.create 1024

let install t vip pip =
  match Hashtbl.find_opt t vip with
  | Some e ->
      e.pip <- pip;
      e.version <- e.version + 1
  | None -> Hashtbl.add t vip { pip; version = 1 }

let lookup t vip =
  match Hashtbl.find_opt t vip with
  | Some e -> e.pip
  | None -> raise Not_found

let lookup_opt t vip =
  match Hashtbl.find_opt t vip with Some e -> Some e.pip | None -> None

let version t vip =
  match Hashtbl.find_opt t vip with Some e -> e.version | None -> 0

let migrate t vip pip =
  match Hashtbl.find_opt t vip with
  | Some e ->
      e.pip <- pip;
      e.version <- e.version + 1
  | None -> raise Not_found

let size t = Hashtbl.length t
let iter t f = Hashtbl.iter (fun vip e -> f vip e.pip) t
