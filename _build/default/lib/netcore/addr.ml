let pp_quad ~base ppf i =
  Format.fprintf ppf "%d.%d.%d.%d" base
    ((i lsr 16) land 0xff)
    ((i lsr 8) land 0xff)
    (i land 0xff)

module Vip = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg "Vip.of_int: negative";
    i

  let to_int t = t
  let equal (a : t) b = a = b
  let compare (a : t) (b : t) = Stdlib.compare a b
  let hash (t : t) = t
  let pp = pp_quad ~base:10
end

module Pip = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg "Pip.of_int: negative";
    i

  let to_int t = t
  let equal (a : t) b = a = b
  let compare (a : t) (b : t) = Stdlib.compare a b
  let hash (t : t) = t
  let none = max_int
  let is_none t = t = max_int
  let pp ppf t = if is_none t then Format.pp_print_string ppf "<none>" else pp_quad ~base:192 ppf t
end
