module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

type line = { mutable key : int; mutable value : int; mutable stamp : int }

type t = {
  sets : line array array;
  ways : int;
  n : int;
  mutable clock : int;
  mutable occupancy : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~ways ~slots =
  if ways <= 0 then invalid_arg "Assoc_cache.create: ways must be positive";
  if slots < 0 then invalid_arg "Assoc_cache.create: negative slots";
  if slots mod ways <> 0 then
    invalid_arg "Assoc_cache.create: ways must divide slots";
  let num_sets = slots / ways in
  {
    sets =
      Array.init num_sets (fun _ ->
          Array.init ways (fun _ -> { key = -1; value = -1; stamp = 0 }));
    ways;
    n = slots;
    clock = 0;
    occupancy = 0;
    hits = 0;
    misses = 0;
  }

let slots t = t.n
let ways t = t.ways

(* Same mix hash as the direct-mapped cache, for comparability. *)
let set_of t vip =
  let v = Vip.to_int vip in
  let z = Int64.of_int (v * 0x9E3779B9) in
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let h = Int64.to_int (Int64.shift_right_logical z 33) in
  h mod Array.length t.sets

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t vip =
  if t.n = 0 then begin
    t.misses <- t.misses + 1;
    None
  end
  else begin
    let set = t.sets.(set_of t vip) in
    let k = Vip.to_int vip in
    let rec find i =
      if i >= t.ways then None
      else if set.(i).key = k then Some set.(i)
      else find (i + 1)
    in
    match find 0 with
    | Some line ->
        t.hits <- t.hits + 1;
        line.stamp <- tick t;
        Some (Pip.of_int line.value)
    | None ->
        t.misses <- t.misses + 1;
        None
  end

let insert t vip pip =
  if t.n = 0 then ()
  else begin
    let set = t.sets.(set_of t vip) in
    let k = Vip.to_int vip in
    (* Existing key, else an empty line, else the LRU victim. *)
    let target = ref set.(0) in
    let found = ref false in
    Array.iter (fun l -> if l.key = k then begin target := l; found := true end) set;
    if not !found then begin
      let empty = Array.fold_left (fun acc l -> if acc = None && l.key < 0 then Some l else acc) None set in
      match empty with
      | Some l ->
          target := l;
          t.occupancy <- t.occupancy + 1
      | None ->
          Array.iter (fun l -> if l.stamp < !target.stamp then target := l) set
    end;
    !target.key <- k;
    !target.value <- Pip.to_int pip;
    !target.stamp <- tick t
  end

let occupancy t = t.occupancy
let hits t = t.hits
let misses t = t.misses
