lib/core/cache.mli: Netcore
