lib/core/config.ml:
