lib/core/ts_vector.mli: Dessim
