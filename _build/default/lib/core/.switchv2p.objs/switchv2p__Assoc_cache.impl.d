lib/core/assoc_cache.ml: Array Int64 Netcore
