lib/core/cache.ml: Array Bytes Int64 Netcore
