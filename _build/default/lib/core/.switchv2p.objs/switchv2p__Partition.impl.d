lib/core/partition.ml: Array Netcore
