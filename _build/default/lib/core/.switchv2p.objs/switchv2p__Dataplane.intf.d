lib/core/dataplane.mli: Cache Config Dessim Netcore Partition Topo
