lib/core/partition.mli: Netcore
