lib/core/assoc_cache.mli: Netcore
