lib/core/config.mli:
