lib/core/ts_vector.ml: Array Dessim
