lib/core/dataplane.ml: Array Cache Config Dessim Hashtbl Netcore Partition Topo Ts_vector
