(** Per-tenant (VPC) cache partitioning (§4, "Multitenancy support").

    Tenants own disjoint VIP ranges — VPC address spaces do not
    overlap, so a mapping's tenant is derivable from its VIP. Each
    switch then maintains one private cache partition per tenant,
    sized by the tenant's share of the switch's memory, so tenants
    cannot evict each other's entries. *)

type t

(** [single] is the default: one tenant owning the whole VIP space. *)
val single : t

(** [create ~bounds ~shares] — tenant [i] owns VIPs in
    [[b_(i-1), b_i)] where [bounds] are the exclusive upper bounds
    (strictly increasing); [shares] are relative memory weights
    (positive). VIPs at or above the last bound belong to the last
    tenant. Raises [Invalid_argument] on inconsistent inputs. *)
val create : bounds:int array -> shares:float array -> t

(** [create_fn ~num_tenants ~shares f] — arbitrary VIP-to-tenant
    assignment (e.g. interleaved VPCs colocated on every server).
    [f] must return values in [0, num_tenants); out-of-range values
    raise at lookup time. *)
val create_fn :
  num_tenants:int -> shares:float array -> (Netcore.Addr.Vip.t -> int) -> t

val num_tenants : t -> int

(** [tenant_of t vip] — the owning tenant index. *)
val tenant_of : t -> Netcore.Addr.Vip.t -> int

(** [split_slots t ~slots] — per-tenant slot counts for a switch with
    [slots] lines, proportional to shares, total conserved. *)
val split_slots : t -> slots:int -> int array
