type t = {
  last : Dessim.Time_ns.t array;
  base_rtt : Dessim.Time_ns.t;
  mutable suppressed : int;
}

let create ~num_switches ~base_rtt =
  { last = Array.make num_switches min_int; base_rtt; suppressed = 0 }

let should_send t ~switch ~now =
  let last = t.last.(switch) in
  if last <> min_int && Dessim.Time_ns.sub now last < t.base_rtt then begin
    t.suppressed <- t.suppressed + 1;
    false
  end
  else begin
    t.last.(switch) <- now;
    true
  end

let suppressed t = t.suppressed
