type demand = { src : int; dst : int; weight : float }

type instance = {
  num_items : int;
  num_switches : int;
  capacity : int array;
  demands : demand array;
  default_cost : demand -> float;
  cached_cost : demand -> int -> float option;
}

type assignment = {
  by_switch : (int, int list) Hashtbl.t;
  members : (int * int, unit) Hashtbl.t; (* (switch, item) *)
}

let empty_assignment () =
  { by_switch = Hashtbl.create 16; members = Hashtbl.create 64 }

let add_entry a ~switch ~item =
  if not (Hashtbl.mem a.members (switch, item)) then begin
    Hashtbl.replace a.members (switch, item) ();
    let cur =
      match Hashtbl.find_opt a.by_switch switch with Some l -> l | None -> []
    in
    Hashtbl.replace a.by_switch switch (item :: cur)
  end

let items_of a ~switch =
  match Hashtbl.find_opt a.by_switch switch with Some l -> l | None -> []

let holds a ~switch ~item = Hashtbl.mem a.members (switch, item)

let validate t =
  let fail msg = invalid_arg ("Allocation.validate: " ^ msg) in
  if t.num_items < 0 then fail "negative num_items";
  if t.num_switches < 0 then fail "negative num_switches";
  if Array.length t.capacity <> t.num_switches then
    fail "capacity array length mismatch";
  Array.iter (fun c -> if c < 0 then fail "negative capacity") t.capacity;
  Array.iter
    (fun d ->
      if d.weight < 0.0 then fail "negative weight";
      if d.dst < 0 || d.dst >= t.num_items then fail "item out of range")
    t.demands

let demand_cost t a d =
  let best = ref (t.default_cost d) in
  for s = 0 to t.num_switches - 1 do
    if holds a ~switch:s ~item:d.dst then
      match t.cached_cost d s with
      | Some c when c < !best -> best := c
      | Some _ | None -> ()
  done;
  !best

let cost t a =
  Array.fold_left (fun acc d -> acc +. (d.weight *. demand_cost t a d)) 0.0
    t.demands

let solve_greedy t =
  validate t;
  let a = empty_assignment () in
  let used = Array.make t.num_switches 0 in
  (* Current best cost per demand, updated as entries are installed. *)
  let cur = Array.map (fun d -> t.default_cost d) t.demands in
  (* Demands grouped by item to score candidates quickly. *)
  let by_item = Array.make t.num_items [] in
  Array.iteri
    (fun idx d -> by_item.(d.dst) <- (idx, d) :: by_item.(d.dst))
    t.demands;
  let gain ~switch ~item =
    List.fold_left
      (fun acc (idx, d) ->
        match t.cached_cost d switch with
        | Some c when c < cur.(idx) -> acc +. (d.weight *. (cur.(idx) -. c))
        | Some _ | None -> acc)
      0.0 by_item.(item)
  in
  let continue = ref true in
  while !continue do
    let best = ref None in
    for s = 0 to t.num_switches - 1 do
      if used.(s) < t.capacity.(s) then
        for item = 0 to t.num_items - 1 do
          if not (holds a ~switch:s ~item) then begin
            let g = gain ~switch:s ~item in
            match !best with
            | Some (_, _, bg) when bg >= g -> ()
            | _ -> if g > 0.0 then best := Some (s, item, g)
          end
        done
    done;
    match !best with
    | None -> continue := false
    | Some (s, item, _) ->
        add_entry a ~switch:s ~item;
        used.(s) <- used.(s) + 1;
        List.iter
          (fun (idx, d) ->
            match t.cached_cost d s with
            | Some c when c < cur.(idx) -> cur.(idx) <- c
            | Some _ | None -> ())
          by_item.(item)
  done;
  a

let solve_exact ?(max_vars = 24) t =
  validate t;
  (* Decision variables: useful (switch, item) pairs — those that help
     at least one demand. *)
  let useful = ref [] in
  for s = 0 to t.num_switches - 1 do
    for item = 0 to t.num_items - 1 do
      let helps =
        Array.exists
          (fun d ->
            d.dst = item
            &&
            match t.cached_cost d s with
            | Some c -> c < t.default_cost d
            | None -> false)
          t.demands
      in
      if helps then useful := (s, item) :: !useful
    done
  done;
  let vars = Array.of_list (List.rev !useful) in
  let n = Array.length vars in
  if n > max_vars then
    invalid_arg "Allocation.solve_exact: instance too large";
  let best_cost = ref infinity in
  let best = ref (empty_assignment ()) in
  let used = Array.make t.num_switches 0 in
  let chosen = Array.make n false in
  let copy_current () =
    let a = empty_assignment () in
    Array.iteri
      (fun i (s, item) -> if chosen.(i) then add_entry a ~switch:s ~item)
      vars;
    a
  in
  let rec go i =
    if i = n then begin
      let a = copy_current () in
      let c = cost t a in
      if c < !best_cost then begin
        best_cost := c;
        best := a
      end
    end
    else begin
      let s, _ = vars.(i) in
      (* Branch: include if capacity permits. *)
      if used.(s) < t.capacity.(s) then begin
        chosen.(i) <- true;
        used.(s) <- used.(s) + 1;
        go (i + 1);
        used.(s) <- used.(s) - 1;
        chosen.(i) <- false
      end;
      go (i + 1)
    end
  in
  go 0;
  !best
