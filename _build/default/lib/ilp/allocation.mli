(** Centralized cache-allocation optimization (Appendix A.1).

    Decide which V2P mappings to install in which switches so that the
    traffic-weighted per-packet latency is minimized, subject to
    per-switch capacity. The paper solves this 0/1 program with Z3; we
    provide an exact branch-and-bound for small instances (used by the
    tests to validate the heuristic) and a greedy marginal-gain
    heuristic with the classic (1 - 1/e) guarantee shape for the
    simulation-scale instances.

    Items are abstract integers (VIPs); switches are positions
    [0 .. num_switches-1] in the instance arrays. *)

type demand = {
  src : int;  (** an opaque sender identifier (e.g. host node id) *)
  dst : int;  (** item (VIP) requested *)
  weight : float;  (** packet count over the measurement window *)
}

type instance = {
  num_items : int;  (** items are [0 .. num_items-1] *)
  num_switches : int;
  capacity : int array;  (** per switch *)
  demands : demand array;
  default_cost : demand -> float;
      (** latency when no switch on the path holds the mapping
          (via-gateway path + gateway processing) *)
  cached_cost : demand -> int -> float option;
      (** latency when switch [s] holds the mapping; [None] when [s]
          is not on the demand's path to the gateway *)
}

(** An assignment maps each switch to the set of items it caches. *)
type assignment

val items_of : assignment -> switch:int -> int list
val holds : assignment -> switch:int -> item:int -> bool

(** [cost instance assignment] is the objective value: each demand
    contributes [weight * min(default, min over holding switches)]. *)
val cost : instance -> assignment -> float

(** [solve_greedy instance] repeatedly installs the
    (switch, item) pair with the largest marginal gain until no
    positive gain remains or capacity is exhausted. *)
val solve_greedy : instance -> assignment

(** [solve_exact instance] explores all feasible assignments with
    branch-and-bound pruning. Exponential — intended for instances
    with at most ~20 (switch, item) decision variables; raises
    [Invalid_argument] beyond [max_vars] (default 24). *)
val solve_exact : ?max_vars:int -> instance -> assignment

(** [validate instance] raises [Invalid_argument] on negative
    capacities/weights or out-of-range items. *)
val validate : instance -> unit
