lib/ilp/allocation.mli:
