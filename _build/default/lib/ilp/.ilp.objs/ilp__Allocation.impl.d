lib/ilp/allocation.ml: Array Hashtbl List
