(** Cache-geometry study: how much hit rate does the paper's
    direct-mapped single-access-bit design (§3.2, citing Hill) give up
    versus set-associative LRU organizations at the same capacity?

    A per-ToR destination reference stream is derived from the Hadoop
    trace (each flow contributes one reference per data packet at its
    sender's ToR) and replayed through each geometry. *)

type row = {
  geometry : string;  (** "direct-mapped", "2-way LRU", ... *)
  hit_rates : (int * float option) list;
      (** (cache %, hit rate); [None] when the organization does not
          fit in the per-ToR capacity at that size *)
}

type t = { cache_pcts : int list; rows : row list }

val run : ?scale:Setup.scale -> ?cache_pcts:int list -> unit -> t
val print : t -> unit
