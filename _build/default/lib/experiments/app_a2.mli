(** Appendix A.2: the centralized Controller versus SwitchV2P on
    WebSearch. The Controller gets the full traffic matrix and solves
    the Appendix A.1 allocation every 150 or 300 us; it should win at
    small cache sizes and lose its edge as the cache grows (stale
    placements). *)

type cell = { hit : float; fct_x : float }

type t = {
  cache_pcts : int list;
  series : (string * cell array) list;
}

val run : ?scale:Setup.scale -> ?cache_pcts:int list -> unit -> t
val print : t -> unit
