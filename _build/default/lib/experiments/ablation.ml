type row = { variant : string; hit : float; fct_x : float; fpl_x : float }
type t = { rows : row list }

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let slots = Setup.cache_slots setup ~pct:cache_pct in
  let flows = Setup.hadoop_trace setup in
  let until = Setup.horizon flows in
  let exec scheme = Runner.run setup ~scheme ~flows ~migrations:[] ~until in
  let base = exec (Schemes.Baselines.nocache ()) in
  let variants =
    [
      ("full", Switchv2p.Config.default);
      ("no learning packets", Switchv2p.Config.make ~learning_packets:false ());
      ("no spillover", Switchv2p.Config.make ~spillover:false ());
      ("no promotion", Switchv2p.Config.make ~promotion:false ());
      ("no source learning", Switchv2p.Config.make ~source_learning:false ());
      ("ToR-only cache", Switchv2p.Config.make ~tor_only:true ());
    ]
  in
  let rows =
    List.map
      (fun (variant, cfg) ->
        let r =
          exec
            (Schemes.Switchv2p_scheme.make ~config:cfg topo
               ~total_cache_slots:slots)
        in
        {
          variant;
          hit = r.Runner.hit_rate;
          fct_x =
            Runner.improvement ~baseline:base.Runner.mean_fct
              ~v:r.Runner.mean_fct;
          fpl_x =
            Runner.improvement ~baseline:base.Runner.mean_fpl
              ~v:r.Runner.mean_fpl;
        })
      variants
  in
  { rows }

let print t =
  Report.table ~title:"Ablation: SwitchV2P feature contributions (Hadoop)"
    ~header:[ "variant"; "hit rate"; "FCT x"; "FPL x" ]
    (List.map
       (fun r ->
         [ r.variant; Report.fpct r.hit; Report.fx r.fct_x; Report.fx r.fpl_x ])
       t.rows)
