(** The §2.4 design-space comparison: SwitchV2P's opportunistic caching
    versus storing the whole V2P database in the switches as a one-hop
    DHT ({!Schemes.Dht_store}). Reproduces the paper's reasons for
    dismissing the DHT: triangle-routing stretch, and criticality of
    switch failures (a failed partition sends traffic back to the
    gateways, while SwitchV2P merely re-learns). *)

type row = {
  scheme : string;
  fct_x : float;  (** improvement over NoCache *)
  stretch : float;
  gw_packets : int;
  extra : (string * float) list;
}

type t = { healthy : row list; under_failure : row list }

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t
val print : t -> unit
