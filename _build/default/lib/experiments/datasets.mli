(** The §5 "Address reuse characteristics" table: characterize each of
    the five traces the way the paper does, to show the generators
    reproduce the published reuse profiles (Hadoop/Alibaba/Microbursts
    reuse-heavy; WebSearch/Video reuse-free). *)

type row = { trace : string; stats : Workloads.Trace_stats.t }

type t = { rows : row list }

val run : ?scale:Setup.scale -> unit -> t
val print : t -> unit
