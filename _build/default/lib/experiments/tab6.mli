(** Table 6: per-stage Tofino resource utilization of the SwitchV2P
    pipeline, from the analytical {!P4model.Resources} model. *)

type t = { entries : int; usage : P4model.Resources.usage }

(** [run ()] evaluates the model at the paper's 50%-cache point. *)
val run : ?entries_per_switch:int -> unit -> t

val print : t -> unit
