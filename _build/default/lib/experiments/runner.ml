module Time_ns = Dessim.Time_ns

type result = {
  scheme : string;
  hit_rate : float;
  mean_fct : float;
  mean_fpl : float;
  mean_pkt_latency : float;
  gw_packets : int;
  packets_sent : int;
  packets_dropped : int;
  misdelivered : int;
  flows_started : int;
  flows_completed : int;
  stretch : float;
  layer_hits : int * int * int * int * int;
  fp_layer_hits : int * int * int * int * int;
  last_misdelivered_arrival : Time_ns.t option;
  reordering_events : int;
  extra : (string * float) list;
  bytes_by_pod : (int * int) array;
  bytes_by_switch : (int * int) array;
}

let run ?net_config (setup : Setup.t) ~scheme ~flows ~migrations ~until =
  let net = Netsim.Network.create ?config:net_config setup.Setup.topo ~scheme in
  Netsim.Network.run net flows ~migrations ~until;
  let m = Netsim.Network.metrics net in
  let topo = setup.Setup.topo in
  let pods = (Topo.Topology.params topo).Topo.Params.pods in
  {
    scheme = scheme.Netsim.Scheme.name;
    hit_rate = Netsim.Metrics.hit_rate m;
    mean_fct = Netsim.Metrics.mean_fct m;
    mean_fpl = Netsim.Metrics.mean_first_packet_latency m;
    mean_pkt_latency = Netsim.Metrics.mean_packet_latency m;
    gw_packets = Netsim.Metrics.gateway_packets m;
    packets_sent = Netsim.Metrics.packets_sent m;
    packets_dropped = Netsim.Metrics.packets_dropped m;
    misdelivered = Netsim.Metrics.misdelivered_packets m;
    flows_started = Netsim.Metrics.flows_started m;
    flows_completed = Netsim.Metrics.flows_completed m;
    stretch = Netsim.Metrics.mean_stretch m;
    layer_hits = Netsim.Metrics.layer_hits m;
    fp_layer_hits = Netsim.Metrics.first_packet_layer_hits m;
    last_misdelivered_arrival = Netsim.Metrics.last_misdelivered_arrival m;
    reordering_events =
      Netsim.Transport.reordering_events (Netsim.Network.transport net);
    extra = scheme.Netsim.Scheme.stats ();
    bytes_by_pod =
      Array.init pods (fun pod -> (pod, Netsim.Metrics.bytes_of_pod m pod));
    bytes_by_switch =
      Array.map
        (fun sw -> (sw, Netsim.Metrics.bytes_of_switch m sw))
        (Topo.Topology.switches topo);
  }

let improvement ~baseline ~v =
  if baseline <= 0.0 || v <= 0.0 then 1.0 else baseline /. v
