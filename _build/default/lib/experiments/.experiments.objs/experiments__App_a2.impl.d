lib/experiments/app_a2.ml: Array Dessim List Report Runner Schemes Setup
