lib/experiments/resilience.mli: Setup
