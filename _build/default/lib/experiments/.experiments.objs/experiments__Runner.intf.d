lib/experiments/runner.mli: Dessim Netcore Netsim Setup
