lib/experiments/ablation.mli: Setup
