lib/experiments/ablation.ml: List Report Runner Schemes Setup Switchv2p
