lib/experiments/fig10.ml: Array List Report Runner Schemes Setup Topo
