lib/experiments/app_a2.mli: Setup
