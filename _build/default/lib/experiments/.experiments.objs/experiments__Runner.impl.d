lib/experiments/runner.ml: Array Dessim Netsim Setup Topo
