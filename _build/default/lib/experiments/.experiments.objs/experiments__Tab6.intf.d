lib/experiments/tab6.mli: P4model
