lib/experiments/fig5.mli: Runner Setup
