lib/experiments/tab5.mli: Setup
