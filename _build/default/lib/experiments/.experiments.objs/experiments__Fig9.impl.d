lib/experiments/fig9.ml: Array List Netsim Report Runner Schemes Setup Topo
