lib/experiments/fig7_8.ml: Array List Printf Report Runner Schemes Setup Topo
