lib/experiments/datasets.mli: Setup Workloads
