lib/experiments/report.mli:
