lib/experiments/dht_compare.ml: Array Dessim List Netcore Netsim Printf Report Runner Schemes Setup Switchv2p Topo
