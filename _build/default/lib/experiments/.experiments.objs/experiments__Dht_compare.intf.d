lib/experiments/dht_compare.mli: Setup
