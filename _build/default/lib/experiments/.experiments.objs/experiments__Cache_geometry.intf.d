lib/experiments/cache_geometry.mli: Setup
