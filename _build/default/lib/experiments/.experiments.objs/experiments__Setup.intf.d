lib/experiments/setup.mli: Dessim Netcore Topo
