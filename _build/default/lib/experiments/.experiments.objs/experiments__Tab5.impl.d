lib/experiments/tab5.ml: Fig5 List Report Runner Schemes Setup
