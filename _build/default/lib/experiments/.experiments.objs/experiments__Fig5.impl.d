lib/experiments/fig5.ml: Array Dessim List Report Runner Schemes Setup
