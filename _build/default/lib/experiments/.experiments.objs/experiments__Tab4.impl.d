lib/experiments/tab4.ml: Array Dessim Fun List Netcore Netsim Printf Report Runner Schemes Setup Switchv2p Topo
