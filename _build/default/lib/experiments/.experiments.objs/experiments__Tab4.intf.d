lib/experiments/tab4.mli: Setup
