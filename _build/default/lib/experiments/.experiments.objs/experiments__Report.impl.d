lib/experiments/report.ml: Buffer Char Filename Fun List Printf String Sys
