lib/experiments/resilience.ml: Array Dessim List Netcore Netsim Printf Report Runner Schemes Setup Switchv2p Topo
