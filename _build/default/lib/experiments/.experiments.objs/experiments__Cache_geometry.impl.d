lib/experiments/cache_geometry.ml: Array Dessim Hashtbl List Netcore Option Report Setup Switchv2p Topo
