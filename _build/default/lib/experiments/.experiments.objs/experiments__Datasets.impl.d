lib/experiments/datasets.ml: Fig5 List Printf Report Setup Workloads
