lib/experiments/tab6.ml: List P4model Printf Report
