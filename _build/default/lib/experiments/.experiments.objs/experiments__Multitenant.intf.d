lib/experiments/multitenant.mli: Setup
