lib/experiments/fig7_8.mli: Runner Setup
