lib/experiments/multitenant.ml: Dessim List Netcore Netsim Report Schemes Setup Switchv2p Workloads
