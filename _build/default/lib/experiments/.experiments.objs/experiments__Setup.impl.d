lib/experiments/setup.ml: Array Dessim List Netcore Topo Workloads
