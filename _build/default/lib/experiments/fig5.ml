module Time_ns = Dessim.Time_ns

type trace_kind = Hadoop | Microbursts | Websearch | Video | Alibaba

type cell = { hit : float; fct_x : float; fpl_x : float }

type t = {
  kind : trace_kind;
  cache_pcts : int list;
  nocache : Runner.result;
  series : (string * cell array) list;
}

let trace_name = function
  | Hadoop -> "Hadoop"
  | Microbursts -> "Microbursts"
  | Websearch -> "WebSearch"
  | Video -> "Video"
  | Alibaba -> "Alibaba"

let trace_of setup = function
  | Hadoop -> Setup.hadoop_trace setup
  | Microbursts -> Setup.microbursts_trace setup
  | Websearch -> Setup.websearch_trace setup
  | Video -> Setup.video_trace setup
  | Alibaba -> Setup.alibaba_trace setup

(* UDP traces have no flow-completion semantics comparable to TCP's;
   use mean packet latency as the paper's FCT proxy there. *)
let fct_metric kind (r : Runner.result) =
  match kind with
  | Hadoop | Websearch | Alibaba -> r.Runner.mean_fct
  | Microbursts | Video -> r.Runner.mean_pkt_latency

let cell_of kind ~(nocache : Runner.result) (r : Runner.result) =
  {
    hit = r.Runner.hit_rate;
    fct_x =
      Runner.improvement
        ~baseline:(fct_metric kind nocache)
        ~v:(fct_metric kind r);
    fpl_x =
      Runner.improvement ~baseline:nocache.Runner.mean_fpl
        ~v:r.Runner.mean_fpl;
  }

let run ?(scale = `Small) ?(cache_pcts = [ 1; 10; 50; 200; 1500 ])
    ?(with_controller = false) kind =
  let setup =
    match kind with Alibaba -> Setup.ft16 scale | _ -> Setup.ft8 scale
  in
  let topo = setup.Setup.topo in
  let flows = trace_of setup kind in
  let until = Setup.horizon flows in
  let exec scheme = Runner.run setup ~scheme ~flows ~migrations:[] ~until in
  let nocache = exec (Schemes.Baselines.nocache ()) in
  let fixed name scheme =
    let r = exec scheme in
    ( name,
      Array.of_list
        (List.map (fun _ -> cell_of kind ~nocache r) cache_pcts) )
  in
  let swept name make =
    ( name,
      Array.of_list
        (List.map
           (fun pct ->
             let slots = Setup.cache_slots setup ~pct in
             cell_of kind ~nocache (exec (make slots)))
           cache_pcts) )
  in
  let series =
    [
      swept "LocalLearning" (fun slots ->
          Schemes.Baselines.locallearning ~topo ~total_slots:slots);
      swept "GwCache" (fun slots ->
          Schemes.Baselines.gwcache ~topo ~total_slots:slots);
      swept "Bluebird" (fun slots ->
          Schemes.Baselines.bluebird ~topo ~total_slots:slots ());
      fixed "OnDemand" (Schemes.Baselines.ondemand ());
      fixed "Direct" (Schemes.Baselines.direct ());
      swept "SwitchV2P" (fun slots ->
          Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots);
    ]
  in
  let series =
    if with_controller then
      series
      @ [
          swept "Controller" (fun slots ->
              Schemes.Controller.make ~topo ~total_slots:slots
                ~interval:(Time_ns.of_us 300) ());
        ]
    else series
  in
  { kind; cache_pcts; nocache; series }

let print t =
  let name = trace_name t.kind in
  let header =
    "scheme" :: List.map (fun p -> string_of_int p ^ "%") t.cache_pcts
  in
  let metric title f omit =
    let rows =
      List.filter_map
        (fun (scheme, cells) ->
          if List.mem scheme omit then None
          else Some (scheme :: Array.to_list (Array.map f cells)))
        t.series
    in
    Report.table ~title:(name ^ ": " ^ title ^ " vs cache size") ~header rows
  in
  (* The paper omits hit rates for schemes that never touch gateways. *)
  metric "cache hit rate"
    (fun c -> Report.fpct c.hit)
    [ "Bluebird"; "Direct"; "OnDemand" ];
  metric "FCT improvement over NoCache" (fun c -> Report.fx c.fct_x) [];
  metric "first-packet latency improvement over NoCache"
    (fun c -> Report.fx c.fpl_x)
    []
