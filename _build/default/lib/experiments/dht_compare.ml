module Time_ns = Dessim.Time_ns

type row = {
  scheme : string;
  fct_x : float;
  stretch : float;
  gw_packets : int;
  extra : (string * float) list;
}

type t = { healthy : row list; under_failure : row list }

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let slots = Setup.cache_slots setup ~pct:cache_pct in
  let flows = Setup.hadoop_trace setup in
  let until = Setup.horizon flows in
  let last_start =
    List.fold_left
      (fun acc (f : Netcore.Flow.t) ->
        max acc (Time_ns.to_ns f.Netcore.Flow.start))
      0 flows
  in
  let base = Runner.run setup ~scheme:(Schemes.Baselines.nocache ()) ~flows ~migrations:[] ~until in
  let row (r : Runner.result) =
    {
      scheme = r.Runner.scheme;
      fct_x = Runner.improvement ~baseline:base.Runner.mean_fct ~v:r.Runner.mean_fct;
      stretch = r.Runner.stretch;
      gw_packets = r.Runner.gw_packets;
      extra = r.Runner.extra;
    }
  in
  let run_v2p ~fail =
    let scheme, dp =
      Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:slots
    in
    let net = Netsim.Network.create topo ~scheme in
    if fail then
      Dessim.Engine.schedule (Netsim.Network.engine net)
        ~at:(Time_ns.of_ns (last_start / 2))
        (fun () ->
          Array.iter
            (fun sw -> Switchv2p.Dataplane.fail_switch dp ~switch:sw)
            (Topo.Topology.spines topo));
    Netsim.Network.run net flows ~migrations:[] ~until;
    let m = Netsim.Network.metrics net in
    {
      scheme = "SwitchV2P";
      fct_x =
        Runner.improvement ~baseline:base.Runner.mean_fct
          ~v:(Netsim.Metrics.mean_fct m);
      stretch = Netsim.Metrics.mean_stretch m;
      gw_packets = Netsim.Metrics.gateway_packets m;
      extra = scheme.Netsim.Scheme.stats ();
    }
  in
  let run_dht ~fail =
    let scheme, control = Schemes.Dht_store.make_with_control topo in
    let net = Netsim.Network.create topo ~scheme in
    if fail then
      Dessim.Engine.schedule (Netsim.Network.engine net)
        ~at:(Time_ns.of_ns (last_start / 2))
        (fun () ->
          Array.iter
            (fun sw -> Schemes.Dht_store.fail_switch control ~switch:sw)
            (Topo.Topology.spines topo));
    Netsim.Network.run net flows ~migrations:[] ~until;
    let m = Netsim.Network.metrics net in
    {
      scheme = "DhtStore";
      fct_x =
        Runner.improvement ~baseline:base.Runner.mean_fct
          ~v:(Netsim.Metrics.mean_fct m);
      stretch = Netsim.Metrics.mean_stretch m;
      gw_packets = Netsim.Metrics.gateway_packets m;
      extra = scheme.Netsim.Scheme.stats ();
    }
  in
  {
    healthy = [ row base; run_dht ~fail:false; run_v2p ~fail:false ];
    under_failure = [ run_dht ~fail:true; run_v2p ~fail:true ];
  }

let fmt_rows rows =
  List.map
    (fun r ->
      let fallbacks =
        match List.assoc_opt "dht_fallbacks" r.extra with
        | Some v -> Printf.sprintf "%.0f" v
        | None -> "-"
      in
      [
        r.scheme;
        Report.fx r.fct_x;
        Printf.sprintf "%.2f" r.stretch;
        string_of_int r.gw_packets;
        fallbacks;
      ])
    rows

let print t =
  let header = [ "scheme"; "FCT x"; "stretch"; "gw pkts"; "dht fallbacks" ] in
  Report.table ~title:"§2.4 alternative: DHT store vs SwitchV2P (healthy fabric)"
    ~header (fmt_rows t.healthy);
  Report.table
    ~title:
      "§2.4 alternative: all spine state lost mid-trace (DHT partitions vs \
       SwitchV2P caches)"
    ~header (fmt_rows t.under_failure)
