type point = { gateways : int; fct_x : float; fpl_x : float; drops : int }

type t = {
  gateway_counts : int list;
  series : (string * point array) list;
}

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let slots = Setup.cache_slots setup ~pct:cache_pct in
  let flows = Setup.hadoop_trace setup in
  let until = Setup.horizon flows in
  let total_gw = Array.length (Topo.Topology.gateways topo) in
  let gateway_counts =
    List.sort_uniq compare
      (List.filter
         (fun k -> k >= 1)
         [ total_gw; total_gw / 2; total_gw / 4; max 1 (total_gw / 10) ])
    |> List.rev
  in
  let exec ~k scheme =
    let config =
      { Netsim.Network.default_config with gateways_used = Some k }
    in
    Runner.run ~net_config:config setup ~scheme ~flows ~migrations:[] ~until
  in
  (* Baseline: NoCache with the full gateway fleet. *)
  let base = exec ~k:total_gw (Schemes.Baselines.nocache ()) in
  let series_of name make =
    ( name,
      Array.of_list
        (List.map
           (fun k ->
             let r = exec ~k (make ()) in
             {
               gateways = k;
               fct_x =
                 Runner.improvement ~baseline:base.Runner.mean_fct
                   ~v:r.Runner.mean_fct;
               fpl_x =
                 Runner.improvement ~baseline:base.Runner.mean_fpl
                   ~v:r.Runner.mean_fpl;
               drops = r.Runner.packets_dropped;
             })
           gateway_counts) )
  in
  let series =
    [
      series_of "NoCache" (fun () -> Schemes.Baselines.nocache ());
      series_of "LocalLearning" (fun () ->
          Schemes.Baselines.locallearning ~topo ~total_slots:slots);
      series_of "GwCache" (fun () ->
          Schemes.Baselines.gwcache ~topo ~total_slots:slots);
      series_of "SwitchV2P" (fun () ->
          Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots);
    ]
  in
  { gateway_counts; series }

let print t =
  let header =
    "scheme"
    :: List.map (fun k -> string_of_int k ^ "gw") t.gateway_counts
  in
  let metric title f =
    let rows =
      List.map
        (fun (scheme, points) ->
          scheme :: Array.to_list (Array.map f points))
        t.series
    in
    Report.table ~title:("Fig 9: " ^ title ^ " vs number of gateways") ~header
      rows
  in
  metric "FCT improvement (vs NoCache, all gateways)" (fun p ->
      Report.fx p.fct_x);
  metric "first-packet latency improvement" (fun p -> Report.fx p.fpl_x);
  metric "dropped packets" (fun p -> Report.fint p.drops)
