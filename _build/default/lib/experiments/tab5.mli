(** Table 5: where in the topology SwitchV2P cache hits happen, for
    every trace, at 50% cache — split into all packets and first
    packets of flows. Percentages are of in-network hits (core + spine
    + ToR = 100%), as in the paper. *)

type dist = { core : float; spine : float; tor : float }

type row = { trace : string; total : dist; first : dist }

type t = { rows : row list }

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t
val print : t -> unit

(** [dist_of ~core ~spine ~tor] normalizes raw hit counts; all zeros
    yield zeros. *)
val dist_of : core:int -> spine:int -> tor:int -> dist
