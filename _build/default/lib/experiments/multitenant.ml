module Rng = Dessim.Rng
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip

type row = {
  config : string;
  tenant_a_hit : float;
  tenant_b_hit : float;
  tenant_a_fct : float;
  overall_hit : float;
}

type t = { rows : row list }

(* Tenants are interleaved by VIP parity — both VPCs have VMs on every
   server, as colocated tenants do. [remap] stretches a flow generated
   over [0, half) onto even (tenant A) or odd (tenant B) VIPs. *)
let remap ~parity ~id_base (f : Flow.t) =
  Flow.make ~pkt_bytes:f.Flow.pkt_bytes ~id:(id_base + f.Flow.id)
    ~src_vip:(Vip.of_int ((2 * Vip.to_int f.Flow.src_vip) + parity))
    ~dst_vip:(Vip.of_int ((2 * Vip.to_int f.Flow.dst_vip) + parity))
    ~size_bytes:f.Flow.size_bytes ~start:f.Flow.start f.Flow.proto

let tenant_b_id_base = 1_000_000

let run ?(scale = `Small) ?(cache_pct = 100) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let num_vms = setup.Setup.num_vms in
  let half = num_vms / 2 in
  let slots = Setup.cache_slots setup ~pct:cache_pct in
  (* Tenant A: steady, reuse-heavy workload over VIPs [0, half). *)
  let tenant_a =
    Workloads.Tracegen.hadoop (Rng.create setup.Setup.seed) ~num_vms:half
      ~num_flows:(4 * half) ~load:0.15 ~agg_bps:setup.Setup.agg_bps
    |> List.map (remap ~parity:0 ~id_base:0)
  in
  (* Tenant B: aggressive churn over [half, num_vms) — an order of
     magnitude more flows than its fair share of traffic, constantly
     rotating destinations. In a shared cache its insertions evict
     tenant A's entries on every hash collision; a 50/50 partition
     caps the damage. *)
  let tenant_b =
    Workloads.Tracegen.microbursts
      (Rng.create (setup.Setup.seed + 1))
      ~zipf_alpha:0.01 (* near-uniform: no reuse, maximal churn *)
      ~num_vms:half ~num_flows:(40 * half)
      ~horizon:(Dessim.Time_ns.of_ms 2)
    |> List.map (remap ~parity:1 ~id_base:tenant_b_id_base)
  in
  let flows =
    List.sort
      (fun (a : Flow.t) b -> compare a.Flow.start b.Flow.start)
      (tenant_a @ tenant_b)
  in
  let until = Setup.horizon flows in
  let tenant_of (pkt : Netcore.Packet.t) =
    Vip.to_int pkt.Netcore.Packet.dst_vip land 1
  in
  let run_config name partition =
    let scheme =
      Schemes.Switchv2p_scheme.make ?partition topo ~total_cache_slots:slots
    in
    let net_config =
      { Netsim.Network.default_config with classify = Some tenant_of }
    in
    let net = Netsim.Network.create ~config:net_config topo ~scheme in
    Netsim.Network.run net flows ~migrations:[] ~until;
    let m = Netsim.Network.metrics net in
    (* Tenant A's FCT: recompute over its flows only via a per-class
       proxy is not tracked; use the class hit rate (the decisive
       isolation signal) and the global mean FCT for context. *)
    {
      config = name;
      tenant_a_hit = Netsim.Metrics.class_hit_rate m 0;
      tenant_b_hit = Netsim.Metrics.class_hit_rate m 1;
      tenant_a_fct = Netsim.Metrics.mean_fct m;
      overall_hit = Netsim.Metrics.hit_rate m;
    }
  in
  let partition shares =
    Switchv2p.Partition.create_fn ~num_tenants:2 ~shares (fun vip ->
        Vip.to_int vip land 1)
  in
  {
    rows =
      [
        run_config "shared" None;
        run_config "partitioned 50/50" (Some (partition [| 1.0; 1.0 |]));
        run_config "partitioned 90/10" (Some (partition [| 9.0; 1.0 |]));
      ];
  }

let print t =
  Report.table
    ~title:
      "Multitenant partitions: tenant A (steady) vs tenant B (churn); the \
       operator policy caps B's footprint"
    ~header:
      [ "config"; "tenant-A hit"; "tenant-B hit"; "overall hit"; "mean FCT" ]
    (List.map
       (fun r ->
         [
           r.config;
           Report.fpct r.tenant_a_hit;
           Report.fpct r.tenant_b_hit;
           Report.fpct r.overall_hit;
           Report.fus r.tenant_a_fct;
         ])
       t.rows)
