module Time_ns = Dessim.Time_ns

type cell = { hit : float; fct_x : float }
type t = { cache_pcts : int list; series : (string * cell array) list }

let run ?(scale = `Small) ?(cache_pcts = [ 1; 10; 50; 200 ]) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let flows = Setup.websearch_trace setup in
  let until = Setup.horizon flows in
  let exec scheme = Runner.run setup ~scheme ~flows ~migrations:[] ~until in
  let base = exec (Schemes.Baselines.nocache ()) in
  let swept name make =
    ( name,
      Array.of_list
        (List.map
           (fun pct ->
             let slots = Setup.cache_slots setup ~pct in
             let r = exec (make slots) in
             {
               hit = r.Runner.hit_rate;
               fct_x =
                 Runner.improvement ~baseline:base.Runner.mean_fct
                   ~v:r.Runner.mean_fct;
             })
           cache_pcts) )
  in
  let series =
    [
      swept "Controller-150us" (fun slots ->
          Schemes.Controller.make ~topo ~total_slots:slots
            ~interval:(Time_ns.of_us 150) ());
      swept "Controller-300us" (fun slots ->
          Schemes.Controller.make ~topo ~total_slots:slots
            ~interval:(Time_ns.of_us 300) ());
      swept "SwitchV2P" (fun slots ->
          Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots);
      swept "GwCache" (fun slots ->
          Schemes.Baselines.gwcache ~topo ~total_slots:slots);
    ]
  in
  { cache_pcts; series }

let print t =
  let header =
    "scheme" :: List.map (fun p -> string_of_int p ^ "%") t.cache_pcts
  in
  Report.table ~title:"Appendix A.2: hit rate vs cache size (WebSearch)"
    ~header
    (List.map
       (fun (s, cells) ->
         s :: Array.to_list (Array.map (fun c -> Report.fpct c.hit) cells))
       t.series);
  Report.table ~title:"Appendix A.2: FCT improvement vs cache size (WebSearch)"
    ~header
    (List.map
       (fun (s, cells) ->
         s :: Array.to_list (Array.map (fun c -> Report.fx c.fct_x) cells))
       t.series)
