type t = { entries : int; usage : P4model.Resources.usage }

let run ?(entries_per_switch = P4model.Resources.paper_config_entries) () =
  {
    entries = entries_per_switch;
    usage = P4model.Resources.estimate ~entries_per_switch;
  }

let print t =
  Report.table
    ~title:
      (Printf.sprintf
         "Table 6: per-stage switch resource utilization (%d entries)"
         t.entries)
    ~header:[ "resource"; "utilization" ]
    (List.map
       (fun (name, pct) -> [ name; Printf.sprintf "%.1f%%" pct ])
       (P4model.Resources.rows t.usage))
