(** Table 4: VM migration under an incast UDP load.

    Senders on distinct servers blast one destination VM; mid-trace
    the VM migrates to a different rack. We compare NoCache, OnDemand
    and three SwitchV2P variants (no invalidations / invalidations
    without the timestamp vector / full protocol), reporting the same
    five columns the paper does, normalized by NoCache. *)

type row = {
  variant : string;
  gateway_pkt_share : float;  (** fraction of packets via gateways *)
  latency_x : float;  (** mean packet latency relative to NoCache *)
  last_misdelivery_us : float;  (** arrival of last misdelivered packet *)
  misdelivered_x : float;  (** misdeliveries relative to NoCache *)
  invalidation_packets : int;
}

type t = { rows : row list }

val run : ?scale:Setup.scale -> ?cache_pct:int -> ?senders:int -> unit -> t
val print : t -> unit
