(** CSV import/export of flow traces, so externally captured traces
    (or traces generated here) can be replayed and shared.

    Format, one flow per line, with a header:

    {v
    id,src_vip,dst_vip,size_bytes,start_ns,proto,rate_bps,pkt_bytes
    0,17,93,30000,125000,tcp,,1500
    1,4,93,1500000,250000,udp,48000000,1500
    v}

    [rate_bps] is empty for TCP flows. *)

(** [to_string flows] renders the CSV. *)
val to_string : Netcore.Flow.t list -> string

(** [of_string s] parses it back. Raises [Failure] with a line number
    on malformed input. *)
val of_string : string -> Netcore.Flow.t list

(** [save flows path] / [load path] — file variants. *)
val save : Netcore.Flow.t list -> string -> unit

val load : string -> Netcore.Flow.t list
