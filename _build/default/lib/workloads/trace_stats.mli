(** Trace characterization, mirroring the paper's "Address reuse
    characteristics" analysis (§5): how many VMs serve as
    destinations, how much cross-flow destination reuse exists, and
    the temporal reuse distance — the properties that decide whether
    in-network caching can help a workload at all. *)

type t = {
  flows : int;
  distinct_sources : int;
  distinct_destinations : int;
  destinations_with_2_flows : int;  (** VIPs that are a destination in ≥2 flows *)
  destinations_with_10_flows : int;
  mean_reuse_distance : float;
      (** mean seconds between consecutive flows to the same
          destination; 0 if no destination repeats *)
  mean_flow_bytes : float;
  total_bytes : int;
}

(** [analyze flows] computes the characterization. *)
val analyze : Netcore.Flow.t list -> t

(** [reuse_fraction t] is the fraction of flows whose destination was
    already targeted by an earlier flow — the upper bound on
    cross-flow cache hits for first packets. *)
val reuse_fraction : t -> float

val pp : Format.formatter -> t -> unit
