lib/workloads/trace_io.mli: Netcore
