lib/workloads/trace_stats.mli: Format Netcore
