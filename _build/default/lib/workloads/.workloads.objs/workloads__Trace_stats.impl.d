lib/workloads/trace_stats.ml: Dessim Format Hashtbl List Netcore
