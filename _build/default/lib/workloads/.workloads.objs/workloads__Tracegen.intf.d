lib/workloads/tracegen.mli: Dessim Netcore
