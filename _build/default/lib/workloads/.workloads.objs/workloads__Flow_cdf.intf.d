lib/workloads/flow_cdf.mli: Dessim
