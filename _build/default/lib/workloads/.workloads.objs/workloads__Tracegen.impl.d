lib/workloads/tracegen.ml: Array Dessim Flow_cdf Fun List Netcore
