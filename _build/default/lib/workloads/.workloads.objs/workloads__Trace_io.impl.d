lib/workloads/trace_io.ml: Dessim Fun List Netcore Printf String
