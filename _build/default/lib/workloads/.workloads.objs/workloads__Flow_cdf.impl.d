lib/workloads/flow_cdf.ml: Dessim
