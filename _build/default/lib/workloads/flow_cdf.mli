(** Published flow-size distributions used by the paper's traces.

    The Hadoop CDF follows the Facebook datacenter measurement
    (Roy et al., SIGCOMM'15) — dominated by short flows; the WebSearch
    CDF follows the DCTCP workload (Alizadeh et al., SIGCOMM'10) —
    dominated by heavy flows. Values are bytes. *)

val hadoop : Dessim.Dist.Empirical.t
val websearch : Dessim.Dist.Empirical.t

(** [sample_size cdf rng] draws a flow size in bytes (at least 1). *)
val sample_size : Dessim.Dist.Empirical.t -> Dessim.Rng.t -> int

(** [mean_bytes cdf] — analytic mean of the distribution. *)
val mean_bytes : Dessim.Dist.Empirical.t -> float
