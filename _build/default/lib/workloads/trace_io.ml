module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip

let header = "id,src_vip,dst_vip,size_bytes,start_ns,proto,rate_bps,pkt_bytes"

let flow_line (f : Flow.t) =
  let proto, rate =
    match f.Flow.proto with
    | Flow.Tcpish -> ("tcp", "")
    | Flow.Udp { rate_bps } -> ("udp", Printf.sprintf "%.0f" rate_bps)
  in
  Printf.sprintf "%d,%d,%d,%d,%d,%s,%s,%d" f.Flow.id
    (Vip.to_int f.Flow.src_vip)
    (Vip.to_int f.Flow.dst_vip)
    f.Flow.size_bytes
    (Dessim.Time_ns.to_ns f.Flow.start)
    proto rate f.Flow.pkt_bytes

let to_string flows =
  String.concat "\n" (header :: List.map flow_line flows) ^ "\n"

let parse_line ~lineno line =
  let fail msg = failwith (Printf.sprintf "Trace_io: line %d: %s" lineno msg) in
  match String.split_on_char ',' line with
  | [ id; src; dst; size; start; proto; rate; pkt ] -> (
      let int_of name s =
        match int_of_string_opt (String.trim s) with
        | Some v -> v
        | None -> fail (Printf.sprintf "bad %s %S" name s)
      in
      let proto =
        match String.trim proto with
        | "tcp" -> Flow.Tcpish
        | "udp" -> (
            match float_of_string_opt (String.trim rate) with
            | Some rate_bps when rate_bps > 0.0 -> Flow.Udp { rate_bps }
            | Some _ | None -> fail "udp flow needs a positive rate_bps")
        | p -> fail (Printf.sprintf "unknown proto %S" p)
      in
      try
        Flow.make
          ~pkt_bytes:(int_of "pkt_bytes" pkt)
          ~id:(int_of "id" id)
          ~src_vip:(Vip.of_int (int_of "src_vip" src))
          ~dst_vip:(Vip.of_int (int_of "dst_vip" dst))
          ~size_bytes:(int_of "size_bytes" size)
          ~start:(Dessim.Time_ns.of_ns (int_of "start_ns" start))
          proto
      with Invalid_argument msg -> fail msg)
  | _ -> fail "expected 8 comma-separated fields"

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | [] -> []
  | hd :: rest ->
      if String.trim hd <> header then
        failwith "Trace_io: missing or wrong CSV header";
      List.filteri (fun _ l -> String.trim l <> "") rest
      |> List.mapi (fun i line -> parse_line ~lineno:(i + 2) line)

let save flows path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string flows))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = really_input_string ic n in
      of_string b)
