(* Knots are (bytes, cumulative probability). *)

let hadoop =
  Dessim.Dist.Empirical.create
    [
      (250.0, 0.15);
      (500.0, 0.25);
      (1_000.0, 0.40);
      (2_000.0, 0.50);
      (5_000.0, 0.60);
      (10_000.0, 0.70);
      (30_000.0, 0.80);
      (100_000.0, 0.90);
      (300_000.0, 0.96);
      (1_000_000.0, 1.0);
    ]

let websearch =
  Dessim.Dist.Empirical.create
    [
      (6_000.0, 0.15);
      (13_000.0, 0.20);
      (19_000.0, 0.30);
      (33_000.0, 0.40);
      (53_000.0, 0.53);
      (133_000.0, 0.60);
      (667_000.0, 0.70);
      (1_333_000.0, 0.80);
      (3_333_000.0, 0.90);
      (6_667_000.0, 0.97);
      (20_000_000.0, 1.0);
    ]

let sample_size cdf rng =
  max 1 (int_of_float (Dessim.Dist.Empirical.sample cdf rng))

let mean_bytes = Dessim.Dist.Empirical.mean
