module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Time_ns = Dessim.Time_ns

type t = {
  flows : int;
  distinct_sources : int;
  distinct_destinations : int;
  destinations_with_2_flows : int;
  destinations_with_10_flows : int;
  mean_reuse_distance : float;
  mean_flow_bytes : float;
  total_bytes : int;
}

let analyze flows =
  let sorted =
    List.sort (fun (a : Flow.t) b -> compare a.Flow.start b.Flow.start) flows
  in
  let sources = Hashtbl.create 256 in
  let dst_counts : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  let last_seen : (int, Time_ns.t) Hashtbl.t = Hashtbl.create 256 in
  let reuse_gaps = ref 0.0 and reuse_count = ref 0 in
  let total_bytes = ref 0 in
  List.iter
    (fun (f : Flow.t) ->
      Hashtbl.replace sources (Vip.to_int f.Flow.src_vip) ();
      total_bytes := !total_bytes + f.Flow.size_bytes;
      let d = Vip.to_int f.Flow.dst_vip in
      (match Hashtbl.find_opt dst_counts d with
      | Some r -> incr r
      | None -> Hashtbl.add dst_counts d (ref 1));
      (match Hashtbl.find_opt last_seen d with
      | Some prev ->
          reuse_gaps :=
            !reuse_gaps +. Time_ns.to_sec (Time_ns.sub f.Flow.start prev);
          incr reuse_count
      | None -> ());
      Hashtbl.replace last_seen d f.Flow.start)
    sorted;
  let count_ge n =
    Hashtbl.fold (fun _ r acc -> if !r >= n then acc + 1 else acc) dst_counts 0
  in
  let flows = List.length sorted in
  {
    flows;
    distinct_sources = Hashtbl.length sources;
    distinct_destinations = Hashtbl.length dst_counts;
    destinations_with_2_flows = count_ge 2;
    destinations_with_10_flows = count_ge 10;
    mean_reuse_distance =
      (if !reuse_count = 0 then 0.0
       else !reuse_gaps /. float_of_int !reuse_count);
    mean_flow_bytes =
      (if flows = 0 then 0.0 else float_of_int !total_bytes /. float_of_int flows);
    total_bytes = !total_bytes;
  }

let reuse_fraction t =
  if t.flows = 0 then 0.0
  else
    float_of_int (t.flows - t.distinct_destinations) /. float_of_int t.flows

let pp ppf t =
  Format.fprintf ppf
    "@[<v>flows                 %d@,\
     distinct sources      %d@,\
     distinct destinations %d@,\
     dests in >=2 flows    %d@,\
     dests in >=10 flows   %d@,\
     mean reuse distance   %.3f ms@,\
     mean flow size        %.0f B@,\
     total bytes           %d@]"
    t.flows t.distinct_sources t.distinct_destinations
    t.destinations_with_2_flows t.destinations_with_10_flows
    (t.mean_reuse_distance *. 1e3)
    t.mean_flow_bytes t.total_bytes
