module Rng = Dessim.Rng
module Dist = Dessim.Dist
module Time_ns = Dessim.Time_ns
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip

type t = Flow.t list

let check_vms num_vms =
  if num_vms < 2 then invalid_arg "Tracegen: need at least two VMs"

(* Poisson arrival schedule targeting [load] of [agg_bps], given the
   mean flow size. Returns an infinite-ish stamp generator. *)
let arrival_gen rng ~load ~agg_bps ~mean_size_bytes =
  if load <= 0.0 || load > 1.0 then invalid_arg "Tracegen: load out of (0,1]";
  let flows_per_sec = load *. agg_bps /. (mean_size_bytes *. 8.0) in
  let mean_gap = 1e9 /. flows_per_sec (* ns *) in
  let clock = ref 0.0 in
  fun () ->
    clock := !clock +. Dist.exponential rng ~mean:mean_gap;
    Time_ns.of_ns (int_of_float !clock)

let draw_pair rng ~num_vms ~draw_dst =
  let rec go () =
    let src = Rng.int rng num_vms in
    let dst = draw_dst () in
    if src = dst then go () else (src, dst)
  in
  go ()

let tcp_flows rng ~num_vms ~num_flows ~load ~agg_bps ~cdf ~draw_dst =
  check_vms num_vms;
  let next_start =
    arrival_gen rng ~load ~agg_bps
      ~mean_size_bytes:(Flow_cdf.mean_bytes cdf)
  in
  List.init num_flows (fun id ->
      let src, dst = draw_pair rng ~num_vms ~draw_dst in
      Flow.make ~id ~src_vip:(Vip.of_int src) ~dst_vip:(Vip.of_int dst)
        ~size_bytes:(Flow_cdf.sample_size cdf rng)
        ~start:(next_start ()) Flow.Tcpish)

let hadoop rng ~num_vms ~num_flows ~load ~agg_bps =
  tcp_flows rng ~num_vms ~num_flows ~load ~agg_bps ~cdf:Flow_cdf.hadoop
    ~draw_dst:(fun () -> Rng.int rng num_vms)

let websearch rng ~num_vms ~num_flows ~load ~agg_bps =
  check_vms num_vms;
  (* Destinations without replacement while the pool lasts: minimal
     cross-flow sharing, as the paper observes in this trace. *)
  let pool = Array.init num_vms Fun.id in
  Rng.shuffle rng pool;
  let cursor = ref 0 in
  let draw_dst () =
    if !cursor < num_vms then begin
      let d = pool.(!cursor) in
      incr cursor;
      d
    end
    else Rng.int rng num_vms
  in
  tcp_flows rng ~num_vms ~num_flows ~load ~agg_bps ~cdf:Flow_cdf.websearch
    ~draw_dst

let alibaba ?(callee_fraction = 0.24) ?(zipf_alpha = 1.2) rng ~num_vms
    ~num_rpcs ~load ~agg_bps =
  check_vms num_vms;
  if callee_fraction <= 0.0 || callee_fraction > 1.0 then
    invalid_arg "Tracegen.alibaba: callee_fraction out of (0,1]";
  let request_bytes = 2_000 and response_bytes = 8_000 in
  let mean_size_bytes =
    float_of_int (request_bytes + response_bytes) /. 2.0
  in
  let next_start = arrival_gen rng ~load ~agg_bps ~mean_size_bytes in
  (* Callee pool with Zipf popularity: a few hot microservices absorb
     most requests. *)
  let pool_size = max 1 (int_of_float (callee_fraction *. float_of_int num_vms)) in
  let pool = Array.init num_vms Fun.id in
  Rng.shuffle rng pool;
  let callees = Array.sub pool 0 pool_size in
  let zipf = Dist.Zipf.create ~n:pool_size ~alpha:zipf_alpha in
  let flows = ref [] in
  for i = 0 to num_rpcs - 1 do
    let callee = callees.(Dist.Zipf.sample zipf rng - 1) in
    let rec caller () =
      let c = Rng.int rng num_vms in
      if c = callee then caller () else c
    in
    let caller = caller () in
    let start = next_start () in
    let req =
      Flow.make ~id:(2 * i) ~src_vip:(Vip.of_int caller)
        ~dst_vip:(Vip.of_int callee) ~size_bytes:request_bytes ~start
        Flow.Tcpish
    in
    (* The response starts once the request would have been served. *)
    let resp =
      Flow.make ~id:((2 * i) + 1) ~src_vip:(Vip.of_int callee)
        ~dst_vip:(Vip.of_int caller) ~size_bytes:response_bytes
        ~start:(Time_ns.add start (Time_ns.of_us 100))
        Flow.Tcpish
    in
    flows := resp :: req :: !flows
  done;
  List.sort (fun (a : Flow.t) b -> compare a.Flow.start b.Flow.start) !flows

let microbursts ?(zipf_alpha = 1.0) ?(burst_rate_bps = 100e9) rng ~num_vms
    ~num_flows ~horizon =
  check_vms num_vms;
  let zipf = Dist.Zipf.create ~n:num_vms ~alpha:zipf_alpha in
  (* Zipf ranks permuted so hot destinations are arbitrary VIPs. *)
  let perm = Array.init num_vms Fun.id in
  Rng.shuffle rng perm;
  let draw_dst () = perm.(Dist.Zipf.sample zipf rng - 1) in
  let horizon_ns = Time_ns.to_ns horizon in
  let flows =
    List.init num_flows (fun id ->
        let src, dst = draw_pair rng ~num_vms ~draw_dst in
        (* 3-20 MTU packets per burst: ~40-250 us at line rate. *)
        let packets = 3 + Rng.int rng 18 in
        Flow.make ~id ~src_vip:(Vip.of_int src) ~dst_vip:(Vip.of_int dst)
          ~size_bytes:(packets * Netcore.Packet.mtu)
          ~start:(Time_ns.of_ns (Rng.int rng horizon_ns))
          (Flow.Udp { rate_bps = burst_rate_bps }))
  in
  List.sort (fun (a : Flow.t) b -> compare a.Flow.start b.Flow.start) flows

let video ?(rate_bps = 48e6) rng ~num_vms ~senders ~duration =
  check_vms num_vms;
  if 2 * senders > num_vms then
    invalid_arg "Tracegen.video: not enough VMs for disjoint pairs";
  let pool = Array.init num_vms Fun.id in
  Rng.shuffle rng pool;
  let size_bytes =
    max Netcore.Packet.mtu
      (int_of_float (rate_bps *. Time_ns.to_sec duration /. 8.0))
  in
  List.init senders (fun id ->
      Flow.make ~id
        ~src_vip:(Vip.of_int pool.(2 * id))
        ~dst_vip:(Vip.of_int pool.((2 * id) + 1))
        ~size_bytes ~start:Time_ns.zero
        (Flow.Udp { rate_bps }))

let incast rng ~num_vms ~senders ~dst_vip ~packets_per_sender ~packet_bytes
    ~duration =
  check_vms num_vms;
  if senders >= num_vms then invalid_arg "Tracegen.incast: too many senders";
  let pool =
    Array.of_list
      (List.filter
         (fun v -> v <> Vip.to_int dst_vip)
         (List.init num_vms Fun.id))
  in
  Rng.shuffle rng pool;
  let size_bytes = packets_per_sender * packet_bytes in
  let rate_bps =
    float_of_int (size_bytes * 8) /. Time_ns.to_sec duration
  in
  List.init senders (fun id ->
      Flow.make ~pkt_bytes:packet_bytes ~id
        ~src_vip:(Vip.of_int pool.(id))
        ~dst_vip ~size_bytes ~start:Time_ns.zero
        (Flow.Udp { rate_bps }))

let mean_size_bytes flows =
  match flows with
  | [] -> 0.0
  | _ ->
      let sum =
        List.fold_left (fun acc (f : Flow.t) -> acc + f.Flow.size_bytes) 0 flows
      in
      float_of_int sum /. float_of_int (List.length flows)
