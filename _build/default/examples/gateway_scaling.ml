(* Gateway fleet scaling (the Figure 9 scenario): shrink the number of
   translation gateway replicas and watch SwitchV2P hold its
   performance while the pure gateway design collapses — in-network
   caching absorbs the load the gateways would have served.

   Run with: dune exec examples/gateway_scaling.exe *)

module Topology = Topo.Topology

let () =
  let setup = Experiments.Setup.ft8 `Tiny in
  let topo = setup.Experiments.Setup.topo in
  let flows = Experiments.Setup.hadoop_trace setup in
  let until = Experiments.Setup.horizon flows in
  let total_gw = Array.length (Topology.gateways topo) in
  let slots = Experiments.Setup.cache_slots setup ~pct:100 in
  Printf.printf
    "Hadoop-like trace (%d flows); gateway fleet shrinking from %d to 1\n\n"
    (List.length flows) total_gw;
  Printf.printf "%-10s %-12s %10s %10s %8s\n" "gateways" "scheme" "mean-FCT"
    "gw-pkts" "drops";
  List.iter
    (fun k ->
      if k >= 1 then begin
        List.iter
          (fun (name, make_scheme) ->
            let net_config =
              { Netsim.Network.default_config with gateways_used = Some k }
            in
            let r =
              Experiments.Runner.run ~net_config setup ~scheme:(make_scheme ())
                ~flows ~migrations:[] ~until
            in
            Printf.printf "%-10d %-12s %8.1fus %10d %8d\n" k name
              (r.Experiments.Runner.mean_fct *. 1e6)
              r.Experiments.Runner.gw_packets
              r.Experiments.Runner.packets_dropped)
          [
            ("NoCache", fun () -> Schemes.Baselines.nocache ());
            ( "SwitchV2P",
              fun () -> Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots );
          ];
        print_newline ()
      end)
    [ total_gw; total_gw / 2; 1 ]
