examples/vm_migration.mli:
