examples/trace_replay.ml: Array Experiments List Printf Schemes Topo
