examples/quickstart.ml: Array Dessim Format Netcore Netsim Printf Schemes Switchv2p Topo
