examples/wire_capture.mli:
