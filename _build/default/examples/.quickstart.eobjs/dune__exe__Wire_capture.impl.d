examples/wire_capture.ml: Bytes Char Dessim Format List Netcore Printf String Workloads
