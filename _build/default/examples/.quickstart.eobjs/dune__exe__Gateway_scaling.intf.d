examples/gateway_scaling.mli:
