examples/quickstart.mli:
