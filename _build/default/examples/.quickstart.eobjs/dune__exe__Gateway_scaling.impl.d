examples/gateway_scaling.ml: Array Experiments List Netsim Printf Schemes Topo
