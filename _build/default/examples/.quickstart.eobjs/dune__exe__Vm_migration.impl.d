examples/vm_migration.ml: Array Dessim Experiments List Netcore Netsim Printf Schemes Topo Workloads
