(* Quickstart: build a tiny FatTree, send a few flows between VMs, and
   watch SwitchV2P learn the mappings so that later flows bypass the
   translation gateways entirely.

   Run with: dune exec examples/quickstart.exe *)

module Time_ns = Dessim.Time_ns
module Vip = Netcore.Addr.Vip
module Flow = Netcore.Flow
module Topology = Topo.Topology

let () =
  (* A 2-pod FatTree: pod 0 hosts the translation gateways. *)
  let params =
    Topo.Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2
      ~vms_per_host:4 ()
  in
  let topo = Topology.build params in
  Printf.printf "Topology: %d hosts, %d gateways, %d switches, %d VMs\n"
    (Array.length (Topology.hosts topo))
    (Array.length (Topology.gateways topo))
    (Array.length (Topology.switches topo))
    (Topo.Params.num_vms params);

  (* SwitchV2P with an aggregate cache of 16 entries per switch. *)
  let slots = 16 * Array.length (Topology.switches topo) in
  let scheme, dataplane =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:slots
  in
  let net = Netsim.Network.create topo ~scheme in

  (* Three flows to the same destination VM (vip 8), from different
     senders, spaced 5 ms apart. The first must go through a gateway;
     the others should hit in-network caches. *)
  let flow id src start =
    Flow.make ~id ~src_vip:(Vip.of_int src) ~dst_vip:(Vip.of_int 8)
      ~size_bytes:30_000 ~start Flow.Tcpish
  in
  let flows = [ flow 0 0 Time_ns.zero; flow 1 4 (Time_ns.of_ms 5); flow 2 0 (Time_ns.of_ms 10) ] in
  Netsim.Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 50);

  let m = Netsim.Network.metrics net in
  Printf.printf "\nFlows completed : %d / %d\n"
    (Netsim.Metrics.flows_completed m)
    (Netsim.Metrics.flows_started m);
  Printf.printf "Cache hit rate  : %.1f%% of packets never reached a gateway\n"
    (100.0 *. Netsim.Metrics.hit_rate m);
  Printf.printf "Gateway packets : %d of %d sent\n"
    (Netsim.Metrics.gateway_packets m)
    (Netsim.Metrics.packets_sent m);
  Printf.printf "Mean FCT        : %.1f us\n" (Netsim.Metrics.mean_fct m *. 1e6);
  Printf.printf "Packet stretch  : %.2f switches per packet\n"
    (Netsim.Metrics.mean_stretch m);

  (* Peek inside the fabric: where did vip 8's mapping end up? *)
  print_endline "\nSwitches now caching the destination mapping (vip 8):";
  Array.iter
    (fun sw ->
      match
        Switchv2p.Cache.peek
          (Switchv2p.Dataplane.cache dataplane ~switch:sw)
          (Vip.of_int 8)
      with
      | Some pip ->
          Format.printf "  %a -> %a@." Topo.Node.pp (Topology.node topo sw)
            Netcore.Addr.Pip.pp pip
      | None -> ())
    (Topology.switches topo);
  Printf.printf "\nLearning packets sent: %d\n"
    (Switchv2p.Dataplane.learning_packets_sent dataplane)
