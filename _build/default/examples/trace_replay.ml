(* Trace replay: generate an Alibaba-like microservice RPC trace (hot
   callees, request/response pairs) and replay it under every
   translation scheme, printing a comparison table — the experiment
   that motivates in-network caching for east-west RPC traffic.

   Run with: dune exec examples/trace_replay.exe *)

module Topology = Topo.Topology

let () =
  let setup = Experiments.Setup.ft16 `Tiny in
  let topo = setup.Experiments.Setup.topo in
  let flows = Experiments.Setup.alibaba_trace setup in
  Printf.printf "Replaying %d RPC flows over %d VMs on %d switches\n\n"
    (List.length flows) setup.Experiments.Setup.num_vms
    (Array.length (Topology.switches topo));
  let until = Experiments.Setup.horizon flows in
  (* Two cache regimes: at small caches, fewer-but-larger caches
     (GwCache) can edge out the distributed design; at larger caches
     SwitchV2P pulls ahead — the crossover the paper describes. *)
  List.iter
    (fun pct ->
      let slots = Experiments.Setup.cache_slots setup ~pct in
      Printf.printf "--- aggregate cache = %d%% of VIP space (%d entries) ---\n"
        pct slots;
      Printf.printf "%-14s %9s %10s %10s %9s\n" "scheme" "hit-rate" "mean-FCT"
        "mean-FPL" "stretch";
      List.iter
        (fun (name, scheme) ->
          let r =
            Experiments.Runner.run setup ~scheme ~flows ~migrations:[] ~until
          in
          Printf.printf "%-14s %8.1f%% %8.1fus %8.1fus %9.2f\n" name
            (100.0 *. r.Experiments.Runner.hit_rate)
            (r.Experiments.Runner.mean_fct *. 1e6)
            (r.Experiments.Runner.mean_fpl *. 1e6)
            r.Experiments.Runner.stretch)
        [
          ("NoCache", Schemes.Baselines.nocache ());
          ("OnDemand", Schemes.Baselines.ondemand ());
          ("GwCache", Schemes.Baselines.gwcache ~topo ~total_slots:slots);
          ( "LocalLearning",
            Schemes.Baselines.locallearning ~topo ~total_slots:slots );
          ( "SwitchV2P",
            Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots );
          ("Direct", Schemes.Baselines.direct ());
        ];
      print_newline ())
    [ 50; 400 ]
