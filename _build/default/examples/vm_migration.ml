(* VM migration under load (the §5.2 scenario): an incast of UDP
   senders targets one VM; mid-trace the VM migrates to another rack.
   We compare how NoCache (follow-me) and SwitchV2P (misdelivery tags +
   invalidation packets) cope with the stale state.

   Run with: dune exec examples/vm_migration.exe *)

module Time_ns = Dessim.Time_ns
module Vip = Netcore.Addr.Vip
module Topology = Topo.Topology

let () =
  let setup = Experiments.Setup.ft8 `Tiny in
  let topo = setup.Experiments.Setup.topo in
  let hosts = Topology.hosts topo in
  let dst_vip = Vip.of_int 0 in

  (* 16 senders on distinct servers, 1000 small packets each over 1ms. *)
  let rng = Dessim.Rng.create 7 in
  let flows =
    Workloads.Tracegen.incast rng ~num_vms:setup.Experiments.Setup.num_vms
      ~senders:(min 16 (Array.length hosts - 1))
      ~dst_vip ~packets_per_sender:1000 ~packet_bytes:128
      ~duration:(Time_ns.of_ms 1)
  in

  let run name scheme =
    let net = Netsim.Network.create topo ~scheme in
    (* Migrate the victim to a host in another rack at t = 500us. *)
    let old_host = Netsim.Network.vm_host net dst_vip in
    let old_tor = Topology.tor_of topo old_host in
    let new_host =
      Array.to_list hosts
      |> List.find (fun h -> Topology.tor_of topo h <> old_tor)
    in
    Netsim.Network.run net flows
      ~migrations:
        [ { Netsim.Network.at = Time_ns.of_us 500; vip = dst_vip; to_host = new_host } ]
      ~until:(Time_ns.of_ms 3);
    let m = Netsim.Network.metrics net in
    Printf.printf
      "%-10s gateway-pkts %6d  misdelivered %4d  mean-latency %6.1fus  last-misdelivery %s\n"
      name
      (Netsim.Metrics.gateway_packets m)
      (Netsim.Metrics.misdelivered_packets m)
      (Netsim.Metrics.mean_packet_latency m *. 1e6)
      (match Netsim.Metrics.last_misdelivered_arrival m with
      | Some t -> Printf.sprintf "%.0fus" (Time_ns.to_us t)
      | None -> "-");
    scheme.Netsim.Scheme.stats ()
  in

  print_endline "Incast + VM migration at t=500us (trace ends at 1ms):\n";
  ignore (run "NoCache" (Schemes.Baselines.nocache ()));
  ignore (run "OnDemand" (Schemes.Baselines.ondemand ()));
  let slots = Experiments.Setup.cache_slots setup ~pct:50 in
  let stats =
    run "SwitchV2P" (Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots)
  in
  print_endline "\nSwitchV2P protocol counters:";
  List.iter (fun (k, v) -> Printf.printf "  %-26s %.0f\n" k v) stats
