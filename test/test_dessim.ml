(* Tests for the discrete-event simulation substrate: RNG, heap,
   engine, distributions, statistics, time. *)

module Rng = Dessim.Rng
module Heap = Dessim.Heap
module Engine = Dessim.Engine
module Dist = Dessim.Dist
module Stats = Dessim.Stats
module Time_ns = Dessim.Time_ns

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Time --- *)

let test_time_units () =
  checki "us" 1_000 (Time_ns.of_us 1);
  checki "ms" 1_000_000 (Time_ns.of_ms 1);
  checki "sec" 1_000_000_000 (Time_ns.of_sec 1.0);
  check (Alcotest.float 1e-9) "roundtrip" 1.5 (Time_ns.to_sec (Time_ns.of_sec 1.5))

let test_time_rate () =
  (* 1500 B at 100 Gb/s = 120 ns. *)
  checki "mtu at 100G" 120 (Time_ns.of_rate_bytes ~bits_per_sec:100e9 1500);
  (* Tiny packets still take at least 1 ns. *)
  checki "minimum" 1 (Time_ns.of_rate_bytes ~bits_per_sec:1e15 1)

let test_time_arith () =
  checki "add" 5 (Time_ns.add 2 3);
  checki "sub" 2 (Time_ns.sub 5 3);
  checki "max" 5 (Time_ns.max 5 3);
  checki "min" 3 (Time_ns.min 5 3)

(* --- RNG --- *)

let test_rng_deterministic () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  checkb "different streams" true (xs <> ys)

let test_rng_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    checkb "in range" true (v >= 0 && v < 7)
  done

let test_rng_float_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    checkb "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    checkb "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create 6 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "close to 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  checkb "split streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 8 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation"
    (Array.init 100 Fun.id) sorted

let test_rng_invalid () =
  let rng = Rng.create 9 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  let rng = Rng.create 10 in
  let keys = List.init 1000 (fun _ -> Rng.int rng 10_000) in
  List.iter (fun k -> Heap.push h k k) keys;
  let out = ref [] in
  while not (Heap.is_empty h) do
    let k, _ = Heap.pop h in
    out := k :: !out
  done;
  check
    (Alcotest.list Alcotest.int)
    "sorted ascending"
    (List.sort compare keys)
    (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 5 "a";
  Heap.push h 5 "b";
  Heap.push h 5 "c";
  let _, x = Heap.pop h in
  let _, y = Heap.pop h in
  let _, z = Heap.pop h in
  check (Alcotest.list Alcotest.string) "insertion order among ties"
    [ "a"; "b"; "c" ] [ x; y; z ]

let test_heap_empty () =
  let h = Heap.create () in
  checkb "is_empty" true (Heap.is_empty h);
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h));
  Alcotest.check_raises "peek empty" Not_found (fun () ->
      ignore (Heap.peek_key h))

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 3 3;
  Heap.push h 1 1;
  checki "peek min" 1 (Heap.peek_key h);
  let k1, _ = Heap.pop h in
  checki "pop 1" 1 k1;
  Heap.push h 2 2;
  let k2, _ = Heap.pop h in
  checki "pop 2" 2 k2;
  let k3, _ = Heap.pop h in
  checki "pop 3" 3 k3

let test_heap_clear_resets_ties () =
  let h = Heap.create () in
  Heap.push h 5 "x";
  Heap.push h 5 "y";
  Heap.clear h;
  checkb "cleared" true (Heap.is_empty h);
  (* clear resets the insertion-order counter, so FIFO tie-breaking
     after a clear matches a freshly created heap exactly. *)
  Heap.push h 7 "a";
  Heap.push h 7 "b";
  Heap.push h 7 "c";
  let _, x = Heap.pop h in
  let _, y = Heap.pop h in
  let _, z = Heap.pop h in
  check (Alcotest.list Alcotest.string) "FIFO order restarts"
    [ "a"; "b"; "c" ] [ x; y; z ]

let test_heap_reserve () =
  (* reserve on an empty heap: pushes up to the hint must not shrink
     behaviour; contents stay sorted. *)
  let h = Heap.create () in
  Heap.reserve h 512;
  for i = 511 downto 0 do
    Heap.push h i i
  done;
  checki "size after pushes" 512 (Heap.length h);
  for i = 0 to 511 do
    let k, _ = Heap.pop h in
    checki "sorted" i k
  done;
  (* reserve on a non-empty heap keeps existing elements. *)
  let h2 = Heap.create () in
  Heap.push h2 2 "b";
  Heap.push h2 1 "a";
  Heap.reserve h2 1024;
  let _, a = Heap.pop h2 in
  let _, b = Heap.pop h2 in
  check (Alcotest.list Alcotest.string) "survives reserve" [ "a"; "b" ] [ a; b ]

let heap_qcheck =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (int_bound 100_000))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        if Heap.is_empty h then List.rev acc
        else
          let k, () = Heap.pop h in
          drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* Pops must equal a *stable* sort by key: payloads tag each push with
   its position, so any tie broken out of insertion order shows up as a
   payload mismatch even though the key sequence looks fine. *)
let heap_qcheck_stable =
  QCheck.Test.make ~name:"heap pop order = stable sort by key" ~count:200
    QCheck.(list (int_bound 50))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        if Heap.is_empty h then List.rev acc
        else
          let kv = Heap.pop h in
          drain (kv :: acc)
      in
      let expected =
        List.stable_sort
          (fun (k1, _) (k2, _) -> compare k1 k2)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      drain [] = expected)

let heap_qcheck_fifo_ties =
  QCheck.Test.make ~name:"heap FIFO among equal keys" ~count:200
    QCheck.(pair (int_bound 1000) small_nat)
    (fun (key, n) ->
      let h = Heap.create () in
      for i = 0 to n - 1 do
        Heap.push h key i
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        let k, v = Heap.pop h in
        if k <> key || v <> i then ok := false
      done;
      !ok && Heap.is_empty h)

(* Model-checked interleaving: run a random sequence of
   push/pop/reserve/clear against a sorted-list reference queue with
   the same (key, insertion seq) order. [reserve] must never change
   observable behaviour; [clear] must reset both contents and the
   FIFO tie counter. *)
let heap_qcheck_interleaved =
  let op =
    QCheck.(
      oneof
        [
          map (fun k -> `Push k) (int_bound 20);
          always `Pop;
          map (fun n -> `Reserve n) (int_bound 64);
          (* clear is rare so runs usually accumulate state *)
          frequency [ (1, always `Clear); (6, always `Pop) ];
        ])
  in
  QCheck.Test.make ~name:"heap interleaved push/pop/reserve/clear" ~count:300
    (QCheck.list op)
    (fun ops ->
      let h = Heap.create () in
      (* model: sorted (key, seq) list + next insertion seq *)
      let model = ref [] and next = ref 0 in
      let ok = ref true in
      List.iter
        (fun o ->
          match o with
          | `Push k ->
              Heap.push h k !next;
              let seq = !next in
              incr next;
              model :=
                List.stable_sort
                  (fun (k1, s1) (k2, s2) -> compare (k1, s1) (k2, s2))
                  ((k, seq) :: !model)
          | `Pop -> (
              match (!model, Heap.is_empty h) with
              | [], true -> ()
              | [], false -> ok := false
              | (mk, ms) :: rest, _ ->
                  (match Heap.pop h with
                  | k, v -> if k <> mk || v <> ms then ok := false
                  | exception Not_found -> ok := false);
                  model := rest)
          | `Reserve n -> Heap.reserve h n
          | `Clear ->
              Heap.clear h;
              model := [];
              next := 0)
        ops;
      (* drain the tail: remaining contents must match the model *)
      List.iter
        (fun (mk, ms) ->
          match Heap.pop h with
          | k, v -> if k <> mk || v <> ms then ok := false
          | exception Not_found -> ok := false)
        !model;
      !ok && Heap.is_empty h)

(* --- Engine --- *)

(* Every engine test runs on both scheduler backends: the heap is the
   reference oracle, the calendar wheel must be indistinguishable. *)

let test_engine_order sched () =
  let eng = Engine.create ~sched () in
  let log = ref [] in
  Engine.schedule eng ~at:30 (fun () -> log := 30 :: !log);
  Engine.schedule eng ~at:10 (fun () -> log := 10 :: !log);
  Engine.schedule eng ~at:20 (fun () -> log := 20 :: !log);
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "timestamp order" [ 10; 20; 30 ]
    (List.rev !log);
  checki "clock at last event" 30 (Engine.now eng)

let test_engine_nested_scheduling sched () =
  let eng = Engine.create ~sched () in
  let log = ref [] in
  Engine.schedule eng ~at:10 (fun () ->
      log := `A :: !log;
      Engine.schedule_after eng ~delay:5 (fun () -> log := `B :: !log));
  Engine.schedule eng ~at:12 (fun () -> log := `C :: !log);
  Engine.run eng;
  checkb "nested event runs in order" true (List.rev !log = [ `A; `C; `B ])

let test_engine_past_rejected sched () =
  let eng = Engine.create ~sched () in
  Engine.schedule eng ~at:10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: event in the past")
        (fun () -> Engine.schedule eng ~at:5 (fun () -> ())));
  Engine.run eng

let test_engine_run_until sched () =
  let eng = Engine.create ~sched () in
  let log = ref [] in
  List.iter
    (fun t -> Engine.schedule eng ~at:t (fun () -> log := t :: !log))
    [ 10; 20; 30; 40 ];
  Engine.run_until eng ~limit:25;
  check (Alcotest.list Alcotest.int) "only events <= limit" [ 10; 20 ]
    (List.rev !log);
  checki "clock advanced to limit" 25 (Engine.now eng);
  checki "pending remain" 2 (Engine.pending eng);
  Engine.run_until eng ~limit:100;
  checki "drained" 0 (Engine.pending eng);
  checki "executed total" 4 (Engine.executed eng)

(* Differential test: drive both backends through the same random
   schedule and require byte-identical traces. The delay table is
   chosen to hit every wheel path — 0-delay FIFO ties, sub-quantum
   deltas that land in the current batch (the side heap), in-window
   deltas across bucket boundaries, and multi-ms deltas far beyond the
   wheel window (the overflow heap and its lazy demotion). Handler
   respawns exercise mid-drain enqueues; thunk ops interleave the
   closure lane with typed events; draining happens through several
   run_until windows before the final run, exercising parking and
   clock-advance-to-limit on a non-empty queue. *)
let engine_differential =
  let delays =
    [|
      0; 1; 3; 12; 900; 1_024; 16_383; 16_384; 65_537; 1_000_000; 5_000_000;
      12_345_678;
    |]
  in
  QCheck.Test.make ~name:"engine wheel trace = heap trace" ~count:150
    QCheck.(list (triple (int_bound (Array.length delays - 1)) (int_bound 3) small_nat))
    (fun ops ->
      let run sched =
        let eng = Engine.create ~sched () in
        let b = Buffer.create 1024 in
        let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
        Engine.set_handler eng (fun ~code ~a ~b:gen ->
            addf "e t=%d c=%d a=%d\n" (Engine.now eng) code a;
            (* First-generation events respawn once from inside the
               handler: delay [a land 15] keeps most respawns inside
               the batch being drained. *)
            if gen = 0 then
              Engine.schedule_event_after eng ~delay:(a land 15) ~code ~a ~b:1);
        List.iter
          (fun (d, code, a) ->
            let delay = delays.(d) in
            if code = 3 then
              Engine.schedule_after eng ~delay (fun () ->
                  addf "f t=%d a=%d\n" (Engine.now eng) a;
                  Engine.schedule_event_after eng ~delay:0 ~code:9 ~a ~b:1)
            else Engine.schedule_event_after eng ~delay ~code ~a ~b:0)
          ops;
        for _ = 1 to 3 do
          Engine.run_until eng
            ~limit:(Time_ns.add (Engine.now eng) 100_000)
        done;
        Engine.run eng;
        addf "now=%d executed=%d pending=%d\n" (Engine.now eng)
          (Engine.executed eng) (Engine.pending eng);
        Buffer.contents b
      in
      String.equal (run Engine.Heap) (run Engine.Wheel))

(* --- Distributions --- *)

let test_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential rng ~mean:42.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean close to 42" true (Float.abs (mean -. 42.0) < 1.0)

let test_zipf_skew () =
  let rng = Rng.create 12 in
  let z = Dist.Zipf.create ~n:100 ~alpha:1.2 in
  let counts = Array.make 101 0 in
  for _ = 1 to 50_000 do
    let r = Dist.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  checkb "rank 1 most popular" true (counts.(1) > counts.(2));
  checkb "rank 2 beats rank 50" true (counts.(2) > counts.(50));
  checkb "all in range" true
    (Array.for_all (fun c -> c >= 0) counts)

let test_empirical_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Empirical.create: empty knots")
    (fun () -> ignore (Dist.Empirical.create []));
  Alcotest.check_raises "not ending at 1"
    (Invalid_argument "Empirical.create: last probability must be 1.0")
    (fun () -> ignore (Dist.Empirical.create [ (1.0, 0.5) ]));
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Empirical.create: probabilities not sorted") (fun () ->
      ignore (Dist.Empirical.create [ (1.0, 0.7); (2.0, 0.3); (3.0, 1.0) ]))

let test_empirical_bounds () =
  let rng = Rng.create 13 in
  let d = Dist.Empirical.create [ (10.0, 0.2); (100.0, 0.8); (1000.0, 1.0) ] in
  for _ = 1 to 10_000 do
    let v = Dist.Empirical.sample d rng in
    checkb "within knot range" true (v >= 10.0 && v <= 1000.0)
  done

let test_empirical_mean_close_to_sample_mean () =
  let rng = Rng.create 14 in
  let d = Dist.Empirical.create [ (10.0, 0.3); (100.0, 0.9); (500.0, 1.0) ] in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.Empirical.sample d rng
  done;
  let sample_mean = !sum /. float_of_int n in
  let analytic = Dist.Empirical.mean d in
  checkb "analytic ~ sampled" true
    (Float.abs (sample_mean -. analytic) /. analytic < 0.05)

(* --- Stats --- *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.Summary.max s);
  check (Alcotest.float 1e-9) "sum" 10.0 (Stats.Summary.sum s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (Stats.Summary.mean s);
  Alcotest.check_raises "min of empty" Not_found (fun () ->
      ignore (Stats.Summary.min s))

let test_reservoir_percentiles () =
  let r = Stats.Reservoir.create (Rng.create 15) in
  for i = 1 to 100 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.Reservoir.percentile r 50.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.Reservoir.percentile r 99.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.Reservoir.percentile r 100.0);
  check (Alcotest.float 1e-9) "mean" 50.5 (Stats.Reservoir.mean r)

let test_reservoir_capacity () =
  let r = Stats.Reservoir.create ~capacity:10 (Rng.create 16) in
  for i = 1 to 1000 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  checki "sees all" 1000 (Stats.Reservoir.count r);
  (* Percentile still answerable from the sample. *)
  let p50 = Stats.Reservoir.percentile r 50.0 in
  checkb "p50 plausible" true (p50 > 0.0 && p50 <= 1000.0)

let test_reservoir_empty () =
  let r = Stats.Reservoir.create (Rng.create 17) in
  Alcotest.check_raises "empty percentile" Not_found (fun () ->
      ignore (Stats.Reservoir.percentile r 50.0));
  Alcotest.check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.Reservoir.mean r)

let test_rng_copy_divergence () =
  let a = Rng.create 21 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  (* Copies continue the same stream... *)
  checki "same next draw" (Rng.int (Rng.copy a) 1_000_000) (Rng.int b 1_000_000)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a" 2;
  Stats.Counter.incr c "a" 3;
  Stats.Counter.incr c "b" 1;
  checki "a" 5 (Stats.Counter.get c "a");
  checki "b" 1 (Stats.Counter.get c "b");
  checki "absent" 0 (Stats.Counter.get c "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "to_list sorted"
    [ ("a", 5); ("b", 1) ]
    (Stats.Counter.to_list c)

let () =
  Alcotest.run "dessim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "serialization time" `Quick test_time_rate;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid;
          Alcotest.test_case "copy continues stream" `Quick test_rng_copy_divergence;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO among ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty behavior" `Quick test_heap_empty;
          Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
          Alcotest.test_case "clear resets tie order" `Quick
            test_heap_clear_resets_ties;
          Alcotest.test_case "reserve" `Quick test_heap_reserve;
          QCheck_alcotest.to_alcotest heap_qcheck;
          QCheck_alcotest.to_alcotest heap_qcheck_stable;
          QCheck_alcotest.to_alcotest heap_qcheck_fifo_ties;
          QCheck_alcotest.to_alcotest heap_qcheck_interleaved;
        ] );
      ( "engine",
        (List.concat_map
           (fun sched ->
             let s = Engine.sched_name sched in
             List.map
               (fun (name, f) ->
                 Alcotest.test_case
                   (Printf.sprintf "%s (%s)" name s)
                   `Quick (f sched))
               [
                 ("event order", test_engine_order);
                 ("nested scheduling", test_engine_nested_scheduling);
                 ("past events rejected", test_engine_past_rejected);
                 ("run_until", test_engine_run_until);
               ])
           [ Engine.Heap; Engine.Wheel ])
        @ [ QCheck_alcotest.to_alcotest engine_differential ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "empirical validation" `Quick test_empirical_validation;
          Alcotest.test_case "empirical bounds" `Quick test_empirical_bounds;
          Alcotest.test_case "empirical mean" `Quick test_empirical_mean_close_to_sample_mean;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "reservoir percentiles" `Quick test_reservoir_percentiles;
          Alcotest.test_case "reservoir capacity" `Quick test_reservoir_capacity;
          Alcotest.test_case "reservoir empty" `Quick test_reservoir_empty;
          Alcotest.test_case "counter" `Quick test_counter;
        ] );
    ]
