(* Tests for the windowed transport and UDP sender, driven through a
   fake "network" that we control packet-by-packet. *)

module Transport = Netsim.Transport
module Engine = Dessim.Engine
module Time_ns = Dessim.Time_ns
module Flow = Netcore.Flow
module Packet = Netcore.Packet
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

type world = {
  eng : Engine.t;
  tr : Transport.t;
  data_sent : (int * int * bool) list ref; (* flow, seq, retransmit *)
  acks_sent : (int * int) list ref;
  completed : (int * Time_ns.t) list ref;
  firsts : (int * Time_ns.t) list ref;
}

(* Build a transport whose send callbacks just log; the test decides
   when packets "arrive" by calling [deliver_data]/[deliver_ack]. *)
let make_world ?mode () =
  let eng = Engine.create () in
  let data_sent = ref [] and acks_sent = ref [] in
  let completed = ref [] and firsts = ref [] in
  let cb =
    {
      Transport.now = (fun () -> Engine.now eng);
      schedule = (fun delay f -> Engine.schedule_after eng ~delay f);
      send_data =
        (fun flow ~seq ~size:_ ~retransmit ->
          data_sent := (flow.Flow.id, seq, retransmit) :: !data_sent);
      send_ack =
        (fun flow ~seq ~ecn_echo:_ ->
          acks_sent := (flow.Flow.id, seq) :: !acks_sent);
      flow_done =
        (fun flow ~fct -> completed := (flow.Flow.id, fct) :: !completed);
      first_packet =
        (fun flow ~latency -> firsts := (flow.Flow.id, latency) :: !firsts);
    }
  in
  let tr = Transport.create ?mode ~window:4 ~rto:(Time_ns.of_us 100) cb in
  { eng; tr; data_sent; acks_sent; completed; firsts }

let flow ?(id = 1) ~packets () =
  Flow.make ~id ~src_vip:(Vip.of_int 1) ~dst_vip:(Vip.of_int 2)
    ~size_bytes:(packets * Packet.mtu) ~start:0 Flow.Tcpish

let mk_pkt ~kind ~flow_id ~seq =
  match kind with
  | `Data ->
      Packet.make_data ~id:0 ~flow_id ~seq ~size:Packet.mtu
        ~src_vip:(Vip.of_int 1) ~dst_vip:(Vip.of_int 2)
        ~src_pip:(Pip.of_int 0) ~dst_pip:(Pip.of_int 1) ~now:0
  | `Ack ->
      Packet.make_ack ~id:0 ~flow_id ~seq ~src_vip:(Vip.of_int 2)
        ~dst_vip:(Vip.of_int 1) ~src_pip:(Pip.of_int 1)
        ~dst_pip:(Pip.of_int 0) ~now:0

let test_initial_window () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:10 ());
  (* window=4 caps the initial burst below IW10. *)
  checki "initial burst" 4 (List.length !(w.data_sent))

let test_ack_clocking () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:10 ());
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq:0);
  checki "one more sent" 5 (List.length !(w.data_sent));
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq:1);
  checki "and another" 6 (List.length !(w.data_sent))

let test_duplicate_ack_ignored () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:10 ());
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq:0);
  let n = List.length !(w.data_sent) in
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq:0);
  checki "dup ack sends nothing" n (List.length !(w.data_sent))

let test_receiver_acks_and_completes () =
  let w = make_world () in
  let f = flow ~packets:3 () in
  Transport.start w.tr f;
  for seq = 0 to 2 do
    Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq)
  done;
  checki "acks per data packet" 3 (List.length !(w.acks_sent));
  checki "flow completed" 1 (List.length !(w.completed));
  checki "one first-packet record" 1 (List.length !(w.firsts));
  checki "completed counter" 1 (Transport.flows_completed w.tr)

let test_duplicate_data_acked_but_not_recounted () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:2 ());
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:0);
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:0);
  checki "both acked" 2 (List.length !(w.acks_sent));
  checki "not complete" 0 (List.length !(w.completed));
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:1);
  checki "now complete" 1 (List.length !(w.completed))

let test_reordering_detected () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:3 ());
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:2);
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:0);
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:1);
  checki "two reordered arrivals" 2 (Transport.reordering_events w.tr);
  checki "still completes" 1 (List.length !(w.completed))

let test_rto_retransmits () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:4 ());
  checki "initial burst" 4 (List.length !(w.data_sent));
  (* No acks arrive; let two RTOs elapse (the first timeout check sees
     progress_stamp = n_acked = 0 and fires). *)
  Engine.run_until w.eng ~limit:(Time_ns.of_us 250);
  let retransmits =
    List.filter (fun (_, _, r) -> r) !(w.data_sent) |> List.length
  in
  checkb "retransmitted unacked packets" true (retransmits >= 4)

let test_no_rto_after_completion () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:2 ());
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq:0);
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq:1);
  Engine.run_until w.eng ~limit:(Time_ns.of_ms 10);
  let retransmits =
    List.filter (fun (_, _, r) -> r) !(w.data_sent) |> List.length
  in
  checki "no retransmissions after full ack" 0 retransmits;
  checki "timers drained" 0 (Engine.pending w.eng)

let test_first_packet_latency_measured () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:2 ());
  Engine.schedule w.eng ~at:(Time_ns.of_us 7) (fun () ->
      Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:1));
  Engine.run_until w.eng ~limit:(Time_ns.of_us 7);
  (match !(w.firsts) with
  | [ (1, lat) ] -> checki "latency = arrival - start" (Time_ns.of_us 7) lat
  | _ -> Alcotest.fail "expected one first-packet record");
  checkb "any seq counts as first" true (Transport.has_received_any w.tr ~flow_id:1)

let test_udp_paced_sending () =
  let w = make_world () in
  (* 2 packets at a rate of one MTU per 12 us. *)
  let f =
    Flow.make ~id:3 ~src_vip:(Vip.of_int 1) ~dst_vip:(Vip.of_int 2)
      ~size_bytes:(2 * Packet.mtu) ~start:0
      (Flow.Udp { rate_bps = float_of_int (Packet.mtu * 8) /. 12e-6 })
  in
  Transport.start w.tr f;
  checki "first packet immediately" 1 (List.length !(w.data_sent));
  Engine.run_until w.eng ~limit:(Time_ns.of_us 13);
  checki "second packet after interval" 2 (List.length !(w.data_sent));
  Engine.run_until w.eng ~limit:(Time_ns.of_ms 1);
  checki "no extra packets" 2 (List.length !(w.data_sent))

let test_udp_no_acks () =
  let w = make_world () in
  let f =
    Flow.make ~id:3 ~src_vip:(Vip.of_int 1) ~dst_vip:(Vip.of_int 2)
      ~size_bytes:Packet.mtu ~start:0 (Flow.Udp { rate_bps = 1e9 })
  in
  Transport.start w.tr f;
  Transport.on_data w.tr
    (Packet.make_data ~id:0 ~flow_id:3 ~seq:0 ~size:Packet.mtu
       ~src_vip:(Vip.of_int 1) ~dst_vip:(Vip.of_int 2) ~src_pip:(Pip.of_int 0)
       ~dst_pip:(Pip.of_int 1) ~now:0);
  checki "no acks for UDP" 0 (List.length !(w.acks_sent));
  checki "completes when all data arrives" 1 (List.length !(w.completed))

(* --- DCTCP --- *)

let ack ?(ecn = false) ~flow_id ~seq () =
  let p = mk_pkt ~kind:`Ack ~flow_id ~seq in
  p.Packet.ecn <- ecn;
  p

let test_dctcp_clean_acks_grow_window () =
  let w = make_world ~mode:Transport.Dctcp () in
  Transport.start w.tr (flow ~packets:20 ());
  let c0 = Option.get (Transport.cwnd w.tr ~flow_id:1) in
  Transport.on_ack w.tr (ack ~flow_id:1 ~seq:0 ());
  Transport.on_ack w.tr (ack ~flow_id:1 ~seq:1 ());
  let c1 = Option.get (Transport.cwnd w.tr ~flow_id:1) in
  checkb "slow start grows cwnd" true (c1 >= c0)

let test_dctcp_mark_exits_slow_start () =
  let w = make_world ~mode:Transport.Dctcp () in
  Transport.start w.tr (flow ~packets:40 ());
  let before = Option.get (Transport.cwnd w.tr ~flow_id:1) in
  Transport.on_ack w.tr (ack ~ecn:true ~flow_id:1 ~seq:0 ());
  let after = Option.get (Transport.cwnd w.tr ~flow_id:1) in
  checkb "marked ack halves cwnd" true (after < before || before = 1)

let test_dctcp_alpha_tracks_marking () =
  let w = make_world ~mode:Transport.Dctcp () in
  Transport.start w.tr (flow ~packets:4000 ());
  (* All acks marked: alpha stays pinned near 1 and cwnd collapses to
     the floor. *)
  for seq = 0 to 199 do
    Transport.on_ack w.tr (ack ~ecn:true ~flow_id:1 ~seq ())
  done;
  let alpha = Option.get (Transport.alpha w.tr ~flow_id:1) in
  checkb "alpha saturates high" true (alpha > 0.8);
  checkb "cwnd at floor" true (Option.get (Transport.cwnd w.tr ~flow_id:1) <= 2)

let test_dctcp_alpha_decays_without_marks () =
  let w = make_world ~mode:Transport.Dctcp () in
  Transport.start w.tr (flow ~packets:4000 ());
  (* One marked window, then many clean windows: alpha decays. *)
  Transport.on_ack w.tr (ack ~ecn:true ~flow_id:1 ~seq:0 ());
  for seq = 1 to 300 do
    Transport.on_ack w.tr (ack ~flow_id:1 ~seq ())
  done;
  let alpha = Option.get (Transport.alpha w.tr ~flow_id:1) in
  checkb "alpha decays toward 0" true (alpha < 0.3)

let test_windowed_ignores_marks () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:20 ());
  let before = Option.get (Transport.cwnd w.tr ~flow_id:1) in
  Transport.on_ack w.tr (ack ~ecn:true ~flow_id:1 ~seq:0 ());
  let after = Option.get (Transport.cwnd w.tr ~flow_id:1) in
  checkb "windowed mode never shrinks" true (after >= before)

let test_unknown_flow_ignored () =
  let w = make_world () in
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:77 ~seq:0);
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:77 ~seq:0);
  checki "nothing happens" 0 (List.length !(w.acks_sent))

(* Regression: a sequence number outside [0, total) used to index the
   receive/ack bitmaps unchecked and raise [Invalid_argument], killing
   the event loop. Such packets must be ignored, and the flow must
   still complete normally afterwards. *)
let test_out_of_range_seq_ignored () =
  let w = make_world () in
  Transport.start w.tr (flow ~packets:2 ());
  List.iter
    (fun seq ->
      Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq);
      Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:1 ~seq))
    [ -1; 2; 1_000_000; min_int; max_int ];
  checki "no acks for garbage data" 0 (List.length !(w.acks_sent));
  checki "no completion" 0 (List.length !(w.completed));
  (* The flow still works. *)
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:0);
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:1 ~seq:1);
  checki "valid data acked" 2 (List.length !(w.acks_sent));
  checki "flow completes" 1 (List.length !(w.completed))

(* --- lossy channels ------------------------------------------------- *)

(* A closed loop: data and ACKs traverse a lossy channel with a fixed
   propagation delay, the loss decisions coming from
   [Fault.step_packed] — exactly the channel models the network layer
   installs on links. The transport must complete the flow under loss
   (liveness) with a retransmit count in a sane band (no retransmit
   storms). Fixed seeds keep the assertions exact. *)
let run_lossy ~packets ~model ~seed =
  let eng = Engine.create () in
  let rng = Dessim.Rng.create seed in
  let state = ref 0 in
  let drop () =
    let packed = Dessim.Fault.step_packed model ~state:!state rng in
    state := packed lsr 1;
    packed land 1 = 1
  in
  let delay = Time_ns.of_us 5 in
  let retransmits = ref 0 and completed = ref 0 in
  let tr_ref = ref None in
  let tr () = Option.get !tr_ref in
  let cb =
    {
      Transport.now = (fun () -> Engine.now eng);
      schedule = (fun d f -> Engine.schedule_after eng ~delay:d f);
      send_data =
        (fun f ~seq ~size:_ ~retransmit ->
          if retransmit then incr retransmits;
          if not (drop ()) then
            Engine.schedule_after eng ~delay (fun () ->
                Transport.on_data (tr ())
                  (mk_pkt ~kind:`Data ~flow_id:f.Flow.id ~seq)));
      send_ack =
        (fun f ~seq ~ecn_echo:_ ->
          if not (drop ()) then
            Engine.schedule_after eng ~delay (fun () ->
                Transport.on_ack (tr ())
                  (mk_pkt ~kind:`Ack ~flow_id:f.Flow.id ~seq)));
      flow_done = (fun _f ~fct:_ -> incr completed);
      first_packet = (fun _f ~latency:_ -> ());
    }
  in
  tr_ref := Some (Transport.create ~window:4 ~rto:(Time_ns.of_us 100) cb);
  Transport.start (tr ()) (flow ~packets ());
  Engine.run_until eng ~limit:(Time_ns.of_ms 100);
  (!completed, !retransmits)

let check_lossy ~name ~model ~seed ~max_retx =
  let completed, retx = run_lossy ~packets:30 ~model ~seed in
  checki (name ^ ": flow completes under loss") 1 completed;
  if retx > max_retx then
    Alcotest.failf "%s: %d retransmits exceeds the %d bound" name retx max_retx

let test_loss_1pct () =
  check_lossy ~name:"bernoulli 1%" ~model:(Dessim.Fault.Bernoulli 0.01) ~seed:5
    ~max_retx:20

let test_loss_10pct () =
  let model = Dessim.Fault.Bernoulli 0.1 in
  check_lossy ~name:"bernoulli 10%" ~model ~seed:6 ~max_retx:120;
  let _, retx = run_lossy ~packets:30 ~model ~seed:6 in
  checkb "10% loss actually forces retransmissions" true (retx > 0)

let test_loss_gilbert_elliott () =
  let model =
    Dessim.Fault.Gilbert_elliott
      {
        Dessim.Fault.p_enter_bad = 0.05;
        p_exit_bad = 0.3;
        loss_good = 0.0;
        loss_bad = 0.5;
      }
  in
  check_lossy ~name:"gilbert-elliott" ~model ~seed:7 ~max_retx:150

(* --- flow-store growth policy ------------------------------------- *)

(* Regression: a single sparse flow id used to double the dense lane
   all the way to dense_cap = 2^20 option slots (~8 MB per lane, all
   boxed). Growth is now population-gated, so one sparse id spills to
   the hashtable and the lanes stay at their initial size. *)
let test_sparse_flow_id_spills () =
  let w = make_world () in
  Transport.start w.tr (flow ~id:900_000 ~packets:2 ());
  let sd, rd = Transport.dense_capacities w.tr in
  checki "sender lane unchanged" 256 sd;
  checki "receiver lane unchanged" 256 rd;
  (* The spilled flow is fully functional. *)
  checkb "sender addressable" true (Transport.cwnd w.tr ~flow_id:900_000 <> None);
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:900_000 ~seq:0);
  checkb "receiver saw data" true
    (Transport.has_received_any w.tr ~flow_id:900_000);
  Transport.on_ack w.tr (mk_pkt ~kind:`Ack ~flow_id:900_000 ~seq:0);
  checkb "ack landed" true (Transport.cwnd w.tr ~flow_id:900_000 <> None)

let test_dense_growth_resumes_and_migrates () =
  let w = make_world () in
  (* One sparse id spills without growing the lane... *)
  Transport.start w.tr (flow ~id:2000 ~packets:1 ());
  let sd0, _ = Transport.dense_capacities w.tr in
  checki "sparse id did not grow lane" 256 sd0;
  (* ...a genuinely dense population still doubles as before, and the
     growth that first covers id 2000 re-homes it out of the spill
     table (store_find never probes the hashtable for in-range ids). *)
  for id = 0 to 1199 do
    Transport.start w.tr (flow ~id ~packets:1 ())
  done;
  let sd1, rd1 = Transport.dense_capacities w.tr in
  checki "sender lane grew for dense ids" 2048 sd1;
  checki "receiver lane grew for dense ids" 2048 rd1;
  checkb "migrated sender addressable" true
    (Transport.cwnd w.tr ~flow_id:2000 <> None);
  Transport.on_data w.tr (mk_pkt ~kind:`Data ~flow_id:2000 ~seq:0);
  checkb "migrated receiver completes" true
    (Transport.receiver_done w.tr ~flow_id:2000)

let () =
  Alcotest.run "transport"
    [
      ( "reliable",
        [
          Alcotest.test_case "initial window" `Quick test_initial_window;
          Alcotest.test_case "ack clocking" `Quick test_ack_clocking;
          Alcotest.test_case "duplicate acks" `Quick test_duplicate_ack_ignored;
          Alcotest.test_case "receiver completion" `Quick test_receiver_acks_and_completes;
          Alcotest.test_case "duplicate data" `Quick test_duplicate_data_acked_but_not_recounted;
          Alcotest.test_case "reordering detection" `Quick test_reordering_detected;
          Alcotest.test_case "RTO retransmission" `Quick test_rto_retransmits;
          Alcotest.test_case "timers stop after completion" `Quick test_no_rto_after_completion;
          Alcotest.test_case "first-packet latency" `Quick test_first_packet_latency_measured;
        ] );
      ( "udp",
        [
          Alcotest.test_case "paced sending" `Quick test_udp_paced_sending;
          Alcotest.test_case "no acks" `Quick test_udp_no_acks;
        ] );
      ( "dctcp",
        [
          Alcotest.test_case "clean acks grow window" `Quick test_dctcp_clean_acks_grow_window;
          Alcotest.test_case "mark exits slow start" `Quick test_dctcp_mark_exits_slow_start;
          Alcotest.test_case "alpha tracks marking" `Quick test_dctcp_alpha_tracks_marking;
          Alcotest.test_case "alpha decays" `Quick test_dctcp_alpha_decays_without_marks;
          Alcotest.test_case "windowed ignores marks" `Quick test_windowed_ignores_marks;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "unknown flow" `Quick test_unknown_flow_ignored;
          Alcotest.test_case "out-of-range seq" `Quick
            test_out_of_range_seq_ignored;
        ] );
      ( "flow-store",
        [
          Alcotest.test_case "sparse id spills" `Quick
            test_sparse_flow_id_spills;
          Alcotest.test_case "dense growth resumes and migrates" `Quick
            test_dense_growth_resumes_and_migrates;
        ] );
      ( "loss",
        [
          Alcotest.test_case "1% bernoulli" `Quick test_loss_1pct;
          Alcotest.test_case "10% bernoulli" `Quick test_loss_10pct;
          Alcotest.test_case "gilbert-elliott bursts" `Quick
            test_loss_gilbert_elliott;
        ] );
    ]
