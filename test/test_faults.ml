(* Property and unit tests for the fault-injection subsystem:
   loss-channel models, fault-aware ECMP fallback/recovery, plan text
   round-trips, the pipeline reset hook, and packet conservation under
   randomized fault plans (via the DST harness). *)

module Fault = Dessim.Fault
module Rng = Dessim.Rng
module Time_ns = Dessim.Time_ns
module Params = Topo.Params
module Topology = Topo.Topology
module Routing = Topo.Routing
module Link = Topo.Link
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Network = Netsim.Network
module Faultplan = Netsim.Faultplan
module Pipeline = Netsim.Pipeline
module Dst = Experiments.Dst

let params =
  Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2 ~vms_per_host:2 ()

(* ---------------------------------------------------------------- *)
(* Loss-channel models.                                             *)

let drop_rate model ~draws ~seed =
  let rng = Rng.create seed in
  let state = ref 0 and drops = ref 0 in
  for _ = 1 to draws do
    let packed = Fault.step_packed model ~state:!state rng in
    state := packed lsr 1;
    if packed land 1 = 1 then incr drops
  done;
  float_of_int !drops /. float_of_int draws

let test_bernoulli_rate () =
  let r = drop_rate (Fault.Bernoulli 0.1) ~draws:20_000 ~seed:42 in
  if r < 0.08 || r > 0.12 then
    Alcotest.failf "Bernoulli(0.1) measured loss rate %f outside [0.08,0.12]" r

let test_gilbert_elliott_rate () =
  (* Stationary bad fraction = p_enter/(p_enter+p_exit) = 1/6, so the
     long-run loss rate is ~ loss_bad/6 ~ 0.083. *)
  let ge =
    Fault.Gilbert_elliott
      { Fault.p_enter_bad = 0.1; p_exit_bad = 0.5; loss_good = 0.0; loss_bad = 0.5 }
  in
  let r = drop_rate ge ~draws:20_000 ~seed:7 in
  if r < 0.05 || r > 0.12 then
    Alcotest.failf "GE measured loss rate %f outside [0.05,0.12]" r

(* No_loss must not consume RNG draws: installing the fault layer with
   no active loss channel leaves every other stream byte-identical. *)
let test_no_loss_draws_nothing () =
  let rng = Rng.create 99 in
  let shadow = Rng.copy rng in
  let state = ref 0 in
  for _ = 1 to 100 do
    let packed = Fault.step_packed Fault.No_loss ~state:!state rng in
    state := packed lsr 1;
    Alcotest.(check bool) "No_loss never drops" false (packed land 1 = 1)
  done;
  Alcotest.(check int) "rng untouched by No_loss" (Rng.int shadow 1_000_000)
    (Rng.int rng 1_000_000)

let test_corrupt_one_shot () =
  let topo = Topology.build params in
  let src, dst = (Faultplan.fabric_pairs topo).(0) in
  let link = Topology.link topo ~src ~dst in
  Alcotest.(check bool) "no corruption armed" false (Link.take_corrupt link);
  link.Link.corrupt_next <- 2;
  Alcotest.(check bool) "first armed shot" true (Link.take_corrupt link);
  Alcotest.(check bool) "second armed shot" true (Link.take_corrupt link);
  Alcotest.(check bool) "disarmed after budget" false (Link.take_corrupt link)

(* ---------------------------------------------------------------- *)
(* Fault-aware ECMP routing.                                        *)

(* Every (at, dst, salt) with a defined next hop, with the oracle's
   answer. Unreachable pairs (core-to-core) are skipped. *)
let sample_table topo =
  let n = Topology.num_nodes topo in
  let acc = ref [] in
  for at = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if at <> dst then
        for salt = 0 to 2 do
          match Routing.next_hop_oracle topo ~at ~dst ~salt with
          | hop -> acc := (at, dst, salt, hop) :: !acc
          | exception Invalid_argument _ -> ()
        done
    done
  done;
  !acc

let check_matches_oracle ~what topo samples =
  List.iter
    (fun (at, dst, salt, hop) ->
      let got = Routing.next_hop_alive topo ~at ~dst ~salt in
      if got <> hop then
        QCheck.Test.fail_reportf
          "%s: next_hop_alive(at=%d,dst=%d,salt=%d) = %d, oracle says %d" what
          at dst salt got hop)
    samples

(* Downing fabric links never routes onto a dead link, and restoring
   them recovers the exact pre-failure ECMP table. *)
let ecmp_restore_qcheck =
  QCheck.Test.make ~name:"link down/up restores the exact ECMP table" ~count:25
    QCheck.(pair small_nat (int_range 1 4))
    (fun (seed, nfail) ->
      let topo = Topology.build params in
      let samples = sample_table topo in
      check_matches_oracle ~what:"all links up (before)" topo samples;
      let pairs = Faultplan.fabric_pairs topo in
      let rng = Rng.create (seed + 1) in
      let downed = Array.init nfail (fun _ -> Rng.choose rng pairs) in
      Array.iter
        (fun (a, b) ->
          (Topology.link topo ~src:a ~dst:b).Link.up <- false;
          (Topology.link topo ~src:b ~dst:a).Link.up <- false)
        downed;
      List.iter
        (fun (at, dst, salt, _) ->
          let got = Routing.next_hop_alive topo ~at ~dst ~salt in
          if got <> Routing.blackhole
             && not (Topology.link topo ~src:at ~dst:got).Link.up
          then
            QCheck.Test.fail_reportf
              "routed onto dead link %d->%d (dst=%d salt=%d)" at got dst salt)
        samples;
      Array.iter
        (fun (a, b) ->
          (Topology.link topo ~src:a ~dst:b).Link.up <- true;
          (Topology.link topo ~src:b ~dst:a).Link.up <- true)
        downed;
      check_matches_oracle ~what:"after restore" topo samples;
      true)

(* Killing every uplink of a ToR blackholes inter-rack traffic from
   that ToR (no silent misrouting). *)
let test_blackhole_when_all_uplinks_dead () =
  let topo = Topology.build params in
  let hosts = Topology.hosts topo in
  let tor_of h =
    let other = if h = hosts.(0) then hosts.(1) else hosts.(0) in
    Routing.next_hop topo ~at:h ~dst:other ~salt:0
  in
  let t0 = tor_of hosts.(0) in
  let far =
    match Array.to_list hosts |> List.find_opt (fun h -> tor_of h <> t0) with
    | Some h -> h
    | None -> Alcotest.fail "topology has a single rack?"
  in
  Array.iter
    (fun sp -> (Topology.link topo ~src:t0 ~dst:sp).Link.up <- false)
    (Topology.uplinks topo t0);
  Alcotest.(check int) "inter-rack from dead-uplink ToR blackholes"
    Routing.blackhole
    (Routing.next_hop_alive topo ~at:t0 ~dst:far ~salt:0);
  Array.iter
    (fun sp -> (Topology.link topo ~src:t0 ~dst:sp).Link.up <- true)
    (Topology.uplinks topo t0);
  Alcotest.(check int) "restored"
    (Routing.next_hop topo ~at:t0 ~dst:far ~salt:0)
    (Routing.next_hop_alive topo ~at:t0 ~dst:far ~salt:0)

(* ---------------------------------------------------------------- *)
(* Plan text round-trip.                                            *)

let plan_roundtrip_qcheck =
  QCheck.Test.make ~name:"generated plans round-trip through text" ~count:50
    QCheck.small_nat (fun seed ->
      let topo = Topology.build params in
      let plan = Faultplan.generate ~seed ~horizon:(Time_ns.of_ms 20) topo in
      let s = Fault.to_string plan in
      match Fault.of_string s with
      | Error e -> QCheck.Test.fail_reportf "of_string failed: %s on %s" e s
      | Ok plan' ->
          if Fault.to_string plan' <> s then
            QCheck.Test.fail_reportf "round-trip changed the plan: %s" s;
          if Array.length plan'.Fault.specs <> Array.length plan.Fault.specs
          then QCheck.Test.fail_reportf "round-trip changed spec count";
          true)

(* ---------------------------------------------------------------- *)
(* Pipeline reset hook.                                             *)

let test_reset_wipes_switchv2p_caches () =
  let topo = Topology.build params in
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:64
  in
  let net = Network.create topo ~scheme in
  let num_vms = Network.num_vms net in
  let flows =
    List.init 12 (fun id ->
        Flow.make ~pkt_bytes:1500 ~id ~src_vip:(Vip.of_int (id mod num_vms))
          ~dst_vip:(Vip.of_int ((id + 3) mod num_vms))
          ~size_bytes:(6 * 1500) ~start:(Time_ns.of_us (10 * id))
          Flow.Tcpish)
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 20);
  let occupancy () =
    Array.fold_left
      (fun acc sw ->
        acc + Switchv2p.Cache.occupancy (Switchv2p.Dataplane.cache dp ~switch:sw))
      0 (Topology.switches topo)
  in
  Alcotest.(check bool) "caches populated by the workload" true (occupancy () > 0);
  Array.iter
    (fun sw -> Pipeline.reset_switch scheme.Netsim.Scheme.pipeline ~switch:sw)
    (Topology.switches topo);
  Alcotest.(check int) "reset_switch wipes every cache" 0 (occupancy ())

(* ---------------------------------------------------------------- *)
(* Conservation under randomized fault plans, every scheme.          *)

let conservation_qcheck =
  QCheck.Test.make
    ~name:"packet conservation under random fault plans (all schemes)"
    ~count:10
    QCheck.(pair (int_range 0 99_999) (int_range 0 4))
    (fun (seed, si) ->
      let scheme = List.nth Dst.all_schemes si in
      let o = Dst.run_one ~seed ~scheme () in
      match
        List.filter (fun (inv, _) -> inv = "packet-conservation") o.Dst.failures
      with
      | [] -> true
      | (_, detail) :: _ ->
          QCheck.Test.fail_reportf "seed=%d scheme=%s: %s@.replay: %s" seed
            scheme detail
            (Dst.replay_command ~seed ~scheme))

let () =
  Alcotest.run "faults"
    [
      ( "loss-models",
        [
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "gilbert-elliott rate" `Quick
            test_gilbert_elliott_rate;
          Alcotest.test_case "no_loss draws nothing" `Quick
            test_no_loss_draws_nothing;
          Alcotest.test_case "one-shot corruption" `Quick test_corrupt_one_shot;
        ] );
      ( "routing",
        [
          QCheck_alcotest.to_alcotest ecmp_restore_qcheck;
          Alcotest.test_case "all uplinks dead => blackhole" `Quick
            test_blackhole_when_all_uplinks_dead;
        ] );
      ( "plans",
        [ QCheck_alcotest.to_alcotest plan_roundtrip_qcheck ] );
      ( "reset",
        [
          Alcotest.test_case "reset_switch wipes switchv2p caches" `Quick
            test_reset_wipes_switchv2p_caches;
        ] );
      ( "conservation",
        [ QCheck_alcotest.to_alcotest conservation_qcheck ] );
    ]
