(* Tests for the cache-geometry frontier's new organizations: the
   d-left table, the TinyLFU admission front end and the Geo_cache
   dispatcher.

   The load-bearing properties:
   - degenerate equivalences: a d = 1 d-left table IS the
     direct-mapped cache, and an always-admit TinyLFU wrapper IS its
     backing — byte-for-byte on hit/miss/eviction sequences, packed
     lookup encodings and counters;
   - differential model checks: every geometry agrees with a reference
     Hashtbl model on randomized op sequences (cached values are never
     stale, occupancy follows the insert/invalidate ledger, hit + miss
     counters account for every lookup);
   - count-min sketch invariants: estimates never undercount (within a
     sample period) and saturate at 15. *)

module Cache = Switchv2p.Cache
module Dleft = Switchv2p.Dleft
module Tinylfu = Switchv2p.Tinylfu
module Geo = Switchv2p.Geo_cache
module Config = Switchv2p.Config
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let vip = Vip.of_int
let pip = Pip.of_int

(* --- Dleft unit tests --- *)

let test_dleft_create_validation () =
  Alcotest.check_raises "zero ways"
    (Invalid_argument "Dleft.create: d must be positive") (fun () ->
      ignore (Dleft.create ~d:0 ~slots:8));
  Alcotest.check_raises "ways must divide"
    (Invalid_argument "Dleft.create: d must divide slots") (fun () ->
      ignore (Dleft.create ~d:3 ~slots:8));
  Alcotest.check_raises "negative slots"
    (Invalid_argument "Dleft.create: negative slots") (fun () ->
      ignore (Dleft.create ~d:2 ~slots:(-2)))

let test_dleft_lookup_after_insert () =
  let c = Dleft.create ~d:4 ~slots:64 in
  (match Dleft.insert c ~admission:`All (vip 1) (pip 10) with
  | Cache.Inserted None -> ()
  | _ -> Alcotest.fail "expected clean insert");
  let r = Dleft.lookup c (vip 1) in
  checkb "hit" true (r <> Dleft.miss);
  checki "value" 10 (Pip.to_int (Dleft.hit_pip r));
  checkb "fresh entry bit clear" false (Dleft.hit_bit r);
  let r2 = Dleft.lookup c (vip 1) in
  checkb "second hit sees bit" true (Dleft.hit_bit r2);
  checki "hits" 2 (Dleft.hits c);
  checki "ways" 4 (Dleft.ways c);
  checki "slots" 64 (Dleft.slots c)

(* Find [n] keys that collide with key 0 in every way of [c]'s shape
   (so each insert must either fill another way or evict). *)
let colliding_keys ~d ~sub n =
  let way_slots v =
    List.init d (fun i ->
        (i, Cache.mix (v lxor (i * 0x27220A95)) mod sub))
  in
  let target = way_slots 0 in
  let rec go v acc =
    if List.length acc = n then List.rev acc
    else if v > 1_000_000 then Alcotest.fail "not enough collisions"
    else if way_slots v = target then go (v + 1) (v :: acc)
    else go (v + 1) acc
  in
  go 1 []

let test_dleft_fills_ways_before_evicting () =
  let d = 3 and sub = 8 in
  let c = Dleft.create ~d ~slots:(d * sub) in
  ignore (Dleft.insert c ~admission:`All (vip 0) (pip 100));
  let ks = colliding_keys ~d ~sub (d - 1) in
  (* Each full-collision key lands in a fresh way: no eviction until
     all d ways of the bucket are valid. *)
  List.iter
    (fun k ->
      match Dleft.insert c ~admission:`All (vip k) (pip k) with
      | Cache.Inserted None -> ()
      | _ -> Alcotest.fail "expected empty-way fill")
    ks;
  checki "all ways occupied" d (Dleft.occupancy c);
  List.iter
    (fun k -> checkb "resident" true (Dleft.peek c (vip k) <> None))
    (0 :: ks)

let test_dleft_admission_and_victims () =
  let d = 2 and sub = 8 in
  let c = Dleft.create ~d ~slots:(d * sub) in
  let ks = colliding_keys ~d ~sub 3 in
  let k0 = List.nth ks 0 and k1 = List.nth ks 1 and k2 = List.nth ks 2 in
  ignore (Dleft.insert c ~admission:`All (vip k0) (pip 1));
  ignore (Dleft.insert c ~admission:`All (vip k1) (pip 2));
  (* Both access bits set: conservative admission must reject. Order
     matters — k1's lookup probes (and conflict-clears) k0's way-0
     line on the way to way 1, so touch k1 first, then k0, whose
     lookup stops at way 0. *)
  ignore (Dleft.lookup c (vip k1));
  ignore (Dleft.lookup c (vip k0));
  checkb "A-bit-clear rejects when all set" true
    (Dleft.insert c ~admission:`A_bit_clear (vip k2) (pip 3) = Cache.Rejected);
  checki "rejection counted" 1 (Dleft.rejections c);
  (* `All falls back to way 0's occupant; victim_key agrees with the
     eviction the insert then reports. *)
  let victim = Dleft.victim_key c (vip k2) in
  checkb "victim is a resident collider" true (victim = k0 || victim = k1);
  (match Dleft.insert c ~admission:`All (vip k2) (pip 3) with
  | Cache.Inserted (Some (evicted, _)) ->
      checki "victim_key predicted the eviction" victim (Vip.to_int evicted)
  | _ -> Alcotest.fail "expected eviction");
  (* A conflict probe cleared k1's bit on the way: now A_bit_clear can
     admit into a clear-bit way. *)
  checkb "no victim for resident key" true (Dleft.victim_key c (vip k2) = -1)

let test_dleft_invalidate_and_clear () =
  let c = Dleft.create ~d:2 ~slots:16 in
  ignore (Dleft.insert c ~admission:`All (vip 1) (pip 10));
  checkb "wrong stale keeps entry" false
    (Dleft.invalidate c (vip 1) ~stale:(pip 99));
  checkb "matching stale removes" true
    (Dleft.invalidate c (vip 1) ~stale:(pip 10));
  checki "occupancy" 0 (Dleft.occupancy c);
  ignore (Dleft.insert c ~admission:`All (vip 2) (pip 20));
  Dleft.clear c;
  checki "cleared" 0 (Dleft.occupancy c);
  checki "counters preserved" 2 (Dleft.insertions c)

let test_dleft_zero_slots () =
  let c = Dleft.create ~d:1 ~slots:0 in
  checkb "always miss" true (Dleft.lookup c (vip 1) = Dleft.miss);
  checkb "insert rejected" true
    (Dleft.insert c ~admission:`All (vip 1) (pip 1) = Cache.Rejected);
  checkb "no victim" true (Dleft.victim_key c (vip 1) = -1)

(* --- Degenerate equivalence: d = 1 d-left IS the direct cache --- *)

(* Way 0 hashes with Cache.mix unseeded, so on ANY op sequence the two
   must agree byte-for-byte: packed lookup results (value and access
   bit), insert results including eviction payloads, invalidations,
   victim probes, and all five counters. *)
let dleft1_equiv_direct_qcheck =
  QCheck.Test.make ~name:"d=1 d-left equals direct-mapped" ~count:300
    QCheck.(
      list
        (pair (int_bound 3) (pair bool (pair (int_bound 200) (int_bound 1000)))))
    (fun ops ->
      let slots = 16 in
      let dm = Cache.create ~slots in
      let dl = Dleft.create ~d:1 ~slots in
      let same_insert_result a b =
        match (a, b) with
        | Cache.Inserted None, Cache.Inserted None -> true
        | Cache.Inserted (Some (va, pa)), Cache.Inserted (Some (vb, pb)) ->
            Vip.equal va vb && Pip.equal pa pb
        | Cache.Updated, Cache.Updated -> true
        | Cache.Rejected, Cache.Rejected -> true
        | _ -> false
      in
      List.for_all
        (fun (op, (flag, (k, v))) ->
          let agree =
            match op with
            | 0 ->
                let admission = if flag then `All else `A_bit_clear in
                same_insert_result
                  (Cache.insert dm ~admission (vip k) (pip v))
                  (Dleft.insert dl ~admission (vip k) (pip v))
            | 1 -> Cache.lookup dm (vip k) = Dleft.lookup dl (vip k)
            | 2 ->
                Cache.invalidate dm (vip k) ~stale:(pip v)
                = Dleft.invalidate dl (vip k) ~stale:(pip v)
            | _ -> Cache.victim_key dm (vip k) = Dleft.victim_key dl (vip k)
          in
          agree
          && Cache.hits dm = Dleft.hits dl
          && Cache.misses dm = Dleft.misses dl
          && Cache.occupancy dm = Dleft.occupancy dl
          && Cache.insertions dm = Dleft.insertions dl
          && Cache.evictions dm = Dleft.evictions dl
          && Cache.rejections dm = Dleft.rejections dl)
        ops)

(* --- Degenerate equivalence: always-admit TinyLFU IS its backing --- *)

(* The sketch still counts, but never vetoes: every operation must
   delegate unchanged. Run the same ops through a bare cache and a
   wrapped twin and compare everything observable. *)
let lfu_always_admit_equiv_direct_qcheck =
  QCheck.Test.make ~name:"always-admit TinyLFU equals direct backing"
    ~count:300
    QCheck.(
      list
        (pair (int_bound 2) (pair bool (pair (int_bound 200) (int_bound 1000)))))
    (fun ops ->
      let slots = 16 in
      let bare = Cache.create ~slots in
      let wrapped =
        Tinylfu.create ~always_admit:true (Tinylfu.Direct (Cache.create ~slots))
      in
      List.for_all
        (fun (op, (flag, (k, v))) ->
          let agree =
            match op with
            | 0 ->
                let admission = if flag then `All else `A_bit_clear in
                Cache.insert bare ~admission (vip k) (pip v)
                = Tinylfu.insert wrapped ~admission (vip k) (pip v)
            | 1 -> Cache.lookup bare (vip k) = Tinylfu.lookup wrapped (vip k)
            | _ ->
                Cache.invalidate bare (vip k) ~stale:(pip v)
                = Tinylfu.invalidate wrapped (vip k) ~stale:(pip v)
          in
          agree
          && Cache.hits bare = Tinylfu.hits wrapped
          && Cache.misses bare = Tinylfu.misses wrapped
          && Cache.occupancy bare = Tinylfu.occupancy wrapped
          && Cache.rejections bare = Tinylfu.rejections wrapped
          && Tinylfu.denied wrapped = 0)
        ops)

let lfu_always_admit_equiv_dleft_qcheck =
  QCheck.Test.make ~name:"always-admit TinyLFU equals d-left backing"
    ~count:300
    QCheck.(
      list
        (pair (int_bound 2) (pair bool (pair (int_bound 200) (int_bound 1000)))))
    (fun ops ->
      let d = 2 and slots = 16 in
      let bare = Dleft.create ~d ~slots in
      let wrapped =
        Tinylfu.create ~always_admit:true
          (Tinylfu.Dleft (Dleft.create ~d ~slots))
      in
      List.for_all
        (fun (op, (flag, (k, v))) ->
          let agree =
            match op with
            | 0 ->
                let admission = if flag then `All else `A_bit_clear in
                Dleft.insert bare ~admission (vip k) (pip v)
                = Tinylfu.insert wrapped ~admission (vip k) (pip v)
            | 1 -> Dleft.lookup bare (vip k) = Tinylfu.lookup wrapped (vip k)
            | _ ->
                Dleft.invalidate bare (vip k) ~stale:(pip v)
                = Tinylfu.invalidate wrapped (vip k) ~stale:(pip v)
          in
          agree
          && Dleft.hits bare = Tinylfu.hits wrapped
          && Dleft.misses bare = Tinylfu.misses wrapped
          && Dleft.occupancy bare = Tinylfu.occupancy wrapped)
        ops)

let lfu_always_admit_equiv_assoc_qcheck =
  QCheck.Test.make ~name:"always-admit TinyLFU equals assoc backing"
    ~count:300
    QCheck.(list (pair bool (pair (int_bound 200) (int_bound 1000))))
    (fun ops ->
      let module Assoc = Switchv2p.Assoc_cache in
      let bare = Assoc.create ~ways:2 ~slots:16 in
      let wrapped =
        Tinylfu.create ~always_admit:true
          (Tinylfu.Assoc (Assoc.create ~ways:2 ~slots:16))
      in
      List.for_all
        (fun (is_insert, (k, v)) ->
          if is_insert then begin
            let present = Assoc.peek bare (vip k) <> None in
            Assoc.insert bare (vip k) (pip v);
            let r = Tinylfu.insert wrapped ~admission:`All (vip k) (pip v) in
            (* No eviction payload from the LRU backing: the wrapper
               only classifies update-vs-insert. *)
            (match r with
            | Cache.Inserted None -> not present
            | Cache.Updated -> present
            | _ -> false)
            && Assoc.occupancy bare = Tinylfu.occupancy wrapped
          end
          else
            Assoc.lookup bare (vip k) = Tinylfu.lookup wrapped (vip k)
            && Assoc.hits bare = Tinylfu.hits wrapped
            && Assoc.misses bare = Tinylfu.misses wrapped)
        ops)

(* --- Differential model tests --- *)

(* Reference model: the ground-truth mapping table plus an explicit
   ledger of what each insert/invalidate result implies. For every
   geometry and any op sequence:
   - a cached value is never stale (peek agrees with the last insert
     for that key);
   - occupancy tracks the ledger (+1 clean insert, -1 eviction or
     invalidation) and never exceeds capacity;
   - every lookup lands in exactly one of hits/misses;
   - insertions/evictions/rejections count exactly the results that
     reported them. *)
(* The model is the ground-truth mapping table (a Hashtbl) plus an
   explicit ledger derived from each result; the check pins the exact
   occupancy/counter arithmetic alongside value freshness. *)
let differential_ledger geo_name make =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s ledger invariants" geo_name)
    ~count:200
    QCheck.(
      list
        (pair (int_bound 2) (pair bool (pair (int_bound 60) (int_bound 1000)))))
    (fun ops ->
      let c : Geo.t = make () in
      let truth : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let occ = ref (Geo.occupancy c) in
      let ins = ref (Geo.insertions c)
      and evs = ref (Geo.evictions c)
      and rejs = ref (Geo.rejections c) in
      let lookups = ref 0 in
      let hits0 = Geo.hits c and misses0 = Geo.misses c in
      let ok = ref true in
      List.iter
        (fun (op, (flag, (k, v))) ->
          match op with
          | 0 -> begin
              Hashtbl.replace truth k v;
              let admission = if flag then `All else `A_bit_clear in
              (match Geo.insert c ~admission (vip k) (pip v) with
              | Cache.Inserted None ->
                  incr occ;
                  incr ins
              | Cache.Inserted (Some (ev, _)) ->
                  incr ins;
                  incr evs;
                  (* the evicted key is gone *)
                  if Geo.peek c (Vip.of_int (Vip.to_int ev)) <> None then
                    ok := Vip.to_int ev = k
              | Cache.Updated -> ()
              | Cache.Rejected -> incr rejs);
              if Geo.occupancy c <> !occ then ok := false
            end
          | 1 ->
              incr lookups;
              let r = Geo.lookup c (vip k) in
              if r <> Cache.miss then begin
                match Hashtbl.find_opt truth k with
                | Some tv -> if Pip.to_int (Cache.hit_pip r) <> tv then ok := false
                | None -> ok := false
              end
          | _ ->
              let removed = Geo.invalidate c (vip k) ~stale:(pip v) in
              if removed then begin
                decr occ;
                if Hashtbl.find_opt truth k <> Some v then ok := false
              end;
              if Geo.occupancy c <> !occ then ok := false)
        ops;
      !ok
      && Geo.occupancy c = !occ
      && Geo.occupancy c <= Geo.slots c
      && Geo.insertions c = !ins
      && Geo.evictions c = !evs
      && Geo.rejections c >= !rejs
      && Geo.hits c - hits0 + (Geo.misses c - misses0) = !lookups)

let geo_direct () = Geo.create Config.Geo_direct ~tinylfu:false ~slots:16
let geo_dleft2 () = Geo.create (Config.Geo_dleft 2) ~tinylfu:false ~slots:16
let geo_dleft4 () = Geo.create (Config.Geo_dleft 4) ~tinylfu:false ~slots:16
let geo_direct_lfu () = Geo.create Config.Geo_direct ~tinylfu:true ~slots:16
let geo_dleft_lfu () = Geo.create (Config.Geo_dleft 2) ~tinylfu:true ~slots:16

(* --- TinyLFU sketch invariants --- *)

let test_sketch_never_undercounts () =
  (* Within one sample period, count-min estimates are upper bounds:
     touching a key k times reads back at least min(k, 15). *)
  let t =
    Tinylfu.create ~sample:1_000_000 (Tinylfu.Direct (Cache.create ~slots:8))
  in
  for k = 1 to 30 do
    ignore (Tinylfu.lookup t (vip 7))
    |> ignore;
    let e = Tinylfu.estimate_vip t (vip 7) in
    checkb "estimate >= true count (sat 15)" true (e >= min k 15);
    checkb "estimate <= 15" true (e <= 15)
  done

let test_sketch_halving () =
  let t =
    Tinylfu.create ~sample:8 (Tinylfu.Direct (Cache.create ~slots:8))
  in
  for _ = 1 to 7 do
    ignore (Tinylfu.lookup t (vip 3))
  done;
  let before = Tinylfu.estimate_vip t (vip 3) in
  ignore (Tinylfu.lookup t (vip 3));
  (* 8th touch triggers the halving *)
  checki "one halving" 1 (Tinylfu.halvings t);
  checkb "estimate halved" true
    (Tinylfu.estimate_vip t (vip 3) <= (before + 1) / 2)

let test_lfu_admission_filters_cold_candidate () =
  let slots = 8 in
  let backing = Cache.create ~slots in
  let t = Tinylfu.create ~sample:1_000_000 (Tinylfu.Direct backing) in
  (* Find two keys sharing a slot so the second insert needs eviction. *)
  let k0 = 0 in
  let rec collider v =
    if v > 100_000 then Alcotest.fail "no collision"
    else if
      Cache.mix v mod slots = Cache.mix k0 mod slots && v <> k0
    then v
    else collider (v + 1)
  in
  let k1 = collider 1 in
  ignore (Tinylfu.insert t ~admission:`All (vip k0) (pip 1));
  (* Make k0 hot. *)
  for _ = 1 to 10 do
    ignore (Tinylfu.lookup t (vip k0))
  done;
  (* Cold k1 must be denied: its estimate cannot exceed hot k0's. *)
  checkb "cold candidate denied" true
    (Tinylfu.insert t ~admission:`All (vip k1) (pip 2) = Cache.Rejected);
  checki "denied counted" 1 (Tinylfu.denied t);
  checkb "occupant survives" true (Tinylfu.peek t (vip k0) <> None);
  (* Now make k1 hotter than k0 and retry: admitted. *)
  for _ = 1 to 30 do
    ignore (Tinylfu.lookup t (vip k1))
  done;
  (match Tinylfu.insert t ~admission:`All (vip k1) (pip 2) with
  | Cache.Inserted (Some (ev, _)) -> checki "evicts the cold key" k0 (Vip.to_int ev)
  | _ -> Alcotest.fail "expected hot candidate admitted");
  checkb "new entry resident" true (Tinylfu.peek t (vip k1) <> None)

let test_lfu_update_and_empty_bypass_filter () =
  let t = Tinylfu.create (Tinylfu.Direct (Cache.create ~slots:8)) in
  (* Empty-line fills never consult the filter... *)
  (match Tinylfu.insert t ~admission:`All (vip 1) (pip 1) with
  | Cache.Inserted None -> ()
  | _ -> Alcotest.fail "expected fill");
  (* ...nor do updates of a resident key. *)
  (match Tinylfu.insert t ~admission:`All (vip 1) (pip 2) with
  | Cache.Updated -> ()
  | _ -> Alcotest.fail "expected update");
  checki "nothing denied" 0 (Tinylfu.denied t)

(* --- Geo_cache dispatcher --- *)

let test_geo_dispatch_shapes () =
  let d = Geo.create Config.Geo_direct ~tinylfu:false ~slots:10 in
  checki "direct keeps slots" 10 (Geo.slots d);
  let l = Geo.create (Config.Geo_dleft 4) ~tinylfu:false ~slots:10 in
  checki "dleft rounds to multiple of d" 8 (Geo.slots l);
  let lfu = Geo.create (Config.Geo_dleft 2) ~tinylfu:true ~slots:10 in
  checki "wrapped dleft slots" 10 (Geo.slots lfu);
  checkb "direct unwraps" true
    (match Geo.direct_exn d with _ -> true);
  Alcotest.check_raises "dleft does not unwrap"
    (Invalid_argument "Geo_cache.direct_exn: d-left cache") (fun () ->
      ignore (Geo.direct_exn l))

let test_geo_ops_roundtrip () =
  List.iter
    (fun make ->
      let c : Geo.t = make () in
      (match Geo.insert c ~admission:`All (vip 5) (pip 50) with
      | Cache.Inserted None -> ()
      | _ -> Alcotest.fail "expected clean insert");
      let r = Geo.lookup c (vip 5) in
      checkb "hit" true (r <> Cache.miss);
      checki "value" 50 (Pip.to_int (Cache.hit_pip r));
      checkb "peek" true (Geo.peek c (vip 5) = Some (pip 50));
      Geo.clear c;
      checki "cleared" 0 (Geo.occupancy c))
    [ geo_direct; geo_dleft2; geo_dleft4; geo_direct_lfu; geo_dleft_lfu ]

let () =
  Alcotest.run "switchv2p-geometry"
    [
      ( "dleft",
        [
          Alcotest.test_case "create validation" `Quick
            test_dleft_create_validation;
          Alcotest.test_case "lookup after insert" `Quick
            test_dleft_lookup_after_insert;
          Alcotest.test_case "fills ways before evicting" `Quick
            test_dleft_fills_ways_before_evicting;
          Alcotest.test_case "admission and victims" `Quick
            test_dleft_admission_and_victims;
          Alcotest.test_case "invalidate and clear" `Quick
            test_dleft_invalidate_and_clear;
          Alcotest.test_case "zero slots" `Quick test_dleft_zero_slots;
          QCheck_alcotest.to_alcotest dleft1_equiv_direct_qcheck;
        ] );
      ( "tinylfu",
        [
          Alcotest.test_case "sketch never undercounts" `Quick
            test_sketch_never_undercounts;
          Alcotest.test_case "sketch halving" `Quick test_sketch_halving;
          Alcotest.test_case "filters cold candidate" `Quick
            test_lfu_admission_filters_cold_candidate;
          Alcotest.test_case "update/empty bypass filter" `Quick
            test_lfu_update_and_empty_bypass_filter;
          QCheck_alcotest.to_alcotest lfu_always_admit_equiv_direct_qcheck;
          QCheck_alcotest.to_alcotest lfu_always_admit_equiv_dleft_qcheck;
          QCheck_alcotest.to_alcotest lfu_always_admit_equiv_assoc_qcheck;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest (differential_ledger "direct" geo_direct);
          QCheck_alcotest.to_alcotest (differential_ledger "dleft2" geo_dleft2);
          QCheck_alcotest.to_alcotest (differential_ledger "dleft4" geo_dleft4);
          QCheck_alcotest.to_alcotest
            (differential_ledger "direct+tinylfu" geo_direct_lfu);
          QCheck_alcotest.to_alcotest
            (differential_ledger "dleft2+tinylfu" geo_dleft_lfu);
        ] );
      ( "geo_cache",
        [
          Alcotest.test_case "dispatch shapes" `Quick test_geo_dispatch_shapes;
          Alcotest.test_case "ops roundtrip" `Quick test_geo_ops_roundtrip;
        ] );
    ]
