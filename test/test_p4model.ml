(* Tests for the Tofino resource model (Table 6). *)

module R = P4model.Resources

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 0.05)

let test_reproduces_table6 () =
  let u = R.estimate ~entries_per_switch:R.paper_config_entries in
  checkf "match crossbar" 7.2 u.R.match_crossbar;
  checkf "meter alu" 17.5 u.R.meter_alu;
  checkf "gateway" 25.0 u.R.gateway;
  checkf "tcam" 1.7 u.R.tcam;
  checkf "vliw" 10.0 u.R.vliw;
  (* Size-dependent resources within tolerance of the paper. *)
  checkb "sram close to 3.9%" true (Float.abs (u.R.sram -. 3.9) < 0.3);
  checkb "hash bits close to 4.7%" true (Float.abs (u.R.hash_bits -. 4.7) < 1.0)

let test_sram_monotone_in_entries () =
  let a = R.estimate ~entries_per_switch:1_000 in
  let b = R.estimate ~entries_per_switch:100_000 in
  checkb "more entries, more sram" true (b.R.sram > a.R.sram);
  checkb "more entries, more hash bits" true (b.R.hash_bits >= a.R.hash_bits)

let test_constants_independent_of_entries () =
  let a = R.estimate ~entries_per_switch:100 in
  let b = R.estimate ~entries_per_switch:100_000 in
  checkf "crossbar constant" a.R.match_crossbar b.R.match_crossbar;
  checkf "gateway constant" a.R.gateway b.R.gateway;
  checkf "vliw constant" a.R.vliw b.R.vliw

let test_bounds () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Resources.estimate: negative entries") (fun () ->
      ignore (R.estimate ~entries_per_switch:(-1)));
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "Resources.estimate: exceeds per-switch capacity")
    (fun () -> ignore (R.estimate ~entries_per_switch:(R.max_entries + 1)))

let test_max_entries_fit () =
  let u = R.estimate ~entries_per_switch:R.max_entries in
  checkb "sram under 100%" true (u.R.sram < 100.0);
  checkb "hash under 100%" true (u.R.hash_bits < 100.0)

let test_rows_layout () =
  let u = R.estimate ~entries_per_switch:1024 in
  let rows = R.rows u in
  Alcotest.check (Alcotest.list Alcotest.string) "table 6 row order"
    [
      "Match Crossbar";
      "Meter ALU";
      "Gateway";
      "SRAM";
      "TCAM";
      "VLIW Instruction";
      "Hash Bits";
    ]
    (List.map fst rows)

let checkib = Alcotest.check Alcotest.int

(* Geometry bit costing: integer arithmetic with no rounding — the
   per-stage shares must re-sum to the whole exactly (the same
   consistency contract as the stage_estimate decomposition). *)
let test_geometry_bits_resum_exact () =
  let kinds = [ R.Classify; R.Lookup; R.Learn; R.Emit ] in
  List.iter
    (fun (slots, sketch, g) ->
      let total = R.geometry_bits ~slots ?sketch g in
      let sum =
        List.fold_left
          (fun acc k -> acc + R.stage_bits ~slots ?sketch g k)
          0 kinds
      in
      checkib (R.geometry_name g ^ " re-sums exactly") total sum)
    [
      (0, None, R.G_direct);
      (96, None, R.G_direct);
      (96, None, R.G_dleft 4);
      (96, None, R.G_assoc 4);
      (96, Some (R.sketch_of_slots 96), R.G_direct);
      (1024, Some { R.rows = 4; width = 4096 }, R.G_dleft 2);
    ]

(* ways = 1 / d = 1 collapse to the direct-mapped baseline: the
   degenerate organizations ARE the direct cache, so they must cost
   exactly its 49 bits per line, stage by stage. *)
let test_geometry_bits_degenerate_collapse () =
  let kinds = [ R.Classify; R.Lookup; R.Learn; R.Emit ] in
  let slots = 128 in
  checkib "49 bits per direct line" (slots * 49)
    (R.geometry_bits ~slots R.G_direct);
  List.iter
    (fun g ->
      List.iter
        (fun k ->
          checkib
            (R.geometry_name g ^ " stage matches direct")
            (R.stage_bits ~slots R.G_direct k)
            (R.stage_bits ~slots g k))
        kinds)
    [ R.G_dleft 1; R.G_assoc 1 ]

let test_geometry_bits_structure () =
  let slots = 64 in
  (* Tags + values in Lookup, metadata in Learn, nothing elsewhere. *)
  checkib "lookup holds tags+values" (slots * 48)
    (R.stage_bits ~slots R.G_direct R.Lookup);
  checkib "learn holds the access bit" slots
    (R.stage_bits ~slots R.G_direct R.Learn);
  checkib "classify holds no lines" 0
    (R.stage_bits ~slots R.G_direct R.Classify);
  checkib "emit holds no lines" 0 (R.stage_bits ~slots R.G_direct R.Emit);
  (* d-left costs the same SRAM as direct at equal lines: its price is
     hash units, not bits. *)
  checkib "dleft same bits as direct"
    (R.geometry_bits ~slots R.G_direct)
    (R.geometry_bits ~slots (R.G_dleft 4));
  (* LRU rank bits grow with associativity. *)
  checkib "4-way charges 2 rank bits" (slots * 2)
    (R.stage_bits ~slots (R.G_assoc 4) R.Learn);
  (* The sketch lands in Learn: rows * width * 4 bits. *)
  let sketch = { R.rows = 4; width = 256 } in
  checkib "sketch bits in learn"
    ((slots * 1) + (4 * 256 * 4))
    (R.stage_bits ~slots ~sketch R.G_direct R.Learn);
  (* Default sketch sizing mirrors Tinylfu.create. *)
  let s = R.sketch_of_slots 96 in
  checkib "default rows" 4 s.R.rows;
  checkib "default width is next pow2 of 4*slots" 512 s.R.width

let test_geometry_bits_validation () =
  Alcotest.check_raises "negative slots"
    (Invalid_argument "Resources.stage_bits: negative slots") (fun () ->
      ignore (R.stage_bits ~slots:(-1) R.G_direct R.Lookup));
  Alcotest.check_raises "zero ways"
    (Invalid_argument "Resources: assoc ways must be positive") (fun () ->
      ignore (R.geometry_bits ~slots:8 (R.G_assoc 0)));
  Alcotest.check_raises "bad sketch"
    (Invalid_argument "Resources: sketch rows/width must be positive")
    (fun () ->
      ignore
        (R.stage_bits ~slots:8 ~sketch:{ R.rows = 0; width = 16 } R.G_direct
           R.Learn))

let () =
  Alcotest.run "p4model"
    [
      ( "resources",
        [
          Alcotest.test_case "reproduces Table 6" `Quick test_reproduces_table6;
          Alcotest.test_case "monotone in entries" `Quick test_sram_monotone_in_entries;
          Alcotest.test_case "structure constants" `Quick test_constants_independent_of_entries;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "max entries fit" `Quick test_max_entries_fit;
          Alcotest.test_case "row layout" `Quick test_rows_layout;
        ] );
      ( "geometry_bits",
        [
          Alcotest.test_case "re-sums exactly" `Quick
            test_geometry_bits_resum_exact;
          Alcotest.test_case "degenerate collapse" `Quick
            test_geometry_bits_degenerate_collapse;
          Alcotest.test_case "stage structure" `Quick
            test_geometry_bits_structure;
          Alcotest.test_case "validation" `Quick test_geometry_bits_validation;
        ] );
    ]
