(* Tests for the SwitchV2P data-plane pipeline: Table-1 learning rules,
   learning packets, spillover, promotion, misdelivery tagging and the
   invalidation protocol. Packets are injected at hand-picked switches
   of a small two-pod FatTree. *)

module Dataplane = Switchv2p.Dataplane
module Cache = Switchv2p.Cache
module Config = Switchv2p.Config
module Topology = Topo.Topology
module Node = Topo.Node
module Packet = Netcore.Packet
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let vip = Vip.of_int

let topo () =
  Topology.build
    (Topo.Params.scaled ~spines_per_pod:2 ~cores_per_group:1
       ~gateways_per_gateway_pod:1 ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2
       ~vms_per_host:2 ())

type harness = {
  t : Topology.t;
  dp : Dataplane.t;
  env : Dataplane.env;
  emitted : (int * Packet.t) list ref;
  clock : Dessim.Time_ns.t ref;
}

let harness ?(config = Config.default) ?(slots_per_switch = 16) () =
  let t = topo () in
  let total = slots_per_switch * Array.length (Topology.switches t) in
  let dp = Dataplane.create config t ~total_cache_slots:total in
  let emitted = ref [] in
  let clock = ref 0 in
  let next_id = ref 10_000 in
  let env =
    {
      Dataplane.now = (fun () -> !clock);
      emit = (fun ~src_switch pkt -> emitted := (src_switch, pkt) :: !emitted);
      fresh_packet_id =
        (fun () ->
          incr next_id;
          !next_id);
      rng = Dessim.Rng.create 99;
    }
  in
  { t; dp; env; emitted; clock }

(* Structural landmarks of the test topology. *)
let gw_tor h = (Array.to_list (Topology.tors h.t))
               |> List.find (fun sw -> Topology.role h.t sw = Node.Gateway_tor)

let regular_tor h =
  (Array.to_list (Topology.tors h.t))
  |> List.find (fun sw -> Topology.role h.t sw = Node.Regular_tor)

let spine_in_pod h pod = Topology.spine_id h.t ~pod ~group:0

let host_in h ~pod ~rack ~idx =
  (Topology.endpoints_of_tor h.t (Topology.tor_id h.t ~pod ~rack)).(idx)

let gateway h = (Topology.gateways h.t).(0)

let mk_data ?(resolved = false) ?(id = 1) h ~src_host ~dst_vip ~dst_node =
  let p =
    Packet.make_data ~id ~flow_id:1 ~seq:0 ~size:1500
      ~src_vip:(vip (1000 + src_host))
      ~dst_vip
      ~src_pip:(Topology.pip h.t src_host)
      ~dst_pip:(Topology.pip h.t dst_node)
      ~now:0
  in
  p.Packet.resolved <- resolved;
  p

let process h ~switch ~from pkt = Dataplane.process h.dp h.env ~switch ~from pkt
let cache h sw = Dataplane.cache h.dp ~switch:sw

(* --- learning rules (Table 1) --- *)

let test_gateway_tor_destination_learning () =
  let h = harness () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:1 ~idx:0 in
  (* A resolved packet (leaving the gateway) teaches the gateway ToR
     the destination mapping. *)
  let p = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:dst_host in
  (match process h ~switch:gt ~from:(gateway h) p with
  | Dataplane.Forward -> ()
  | Dataplane.Consume -> Alcotest.fail "data packets forward");
  checkb "dst learned" true
    (Cache.peek (cache h gt) (vip 7) = Some (Topology.pip h.t dst_host))

let test_gateway_tor_ignores_unresolved () =
  let h = harness () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:gt ~from:(spine_in_pod h 0) p);
  checkb "nothing learned from unresolved dst" true
    (Cache.peek (cache h gt) (vip 7) = None);
  checkb "no source learning at gateway ToR" true
    (Cache.peek (cache h gt) p.Packet.src_vip = None)

let test_regular_tor_source_learning () =
  let h = harness () in
  let rt = regular_tor h in
  let sender = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:rt ~from:sender p);
  checkb "source mapping learned" true
    (Cache.peek (cache h rt) p.Packet.src_vip = Some (Topology.pip h.t sender))

let test_spine_conservative_admission () =
  let h = harness ~slots_per_switch:1 () in
  let sp = spine_in_pod h 1 in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let d1 = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let d2 = host_in h ~pod:1 ~rack:1 ~idx:1 in
  let p1 = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:d1 in
  ignore (process h ~switch:sp ~from:sender p1);
  checkb "first learned" true (Cache.peek (cache h sp) (vip 7) <> None);
  (* Hit it so its access bit is set. *)
  let p1b = mk_data ~id:2 h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:sp ~from:sender p1b);
  checkb "was rewritten" true p1b.Packet.resolved;
  (* A different destination maps to the same (single) slot; the spine
     must refuse to evict the active entry. *)
  let p2 = mk_data ~id:3 ~resolved:true h ~src_host:sender ~dst_vip:(vip 8) ~dst_node:d2 in
  ignore (process h ~switch:sp ~from:sender p2);
  checkb "active entry survives" true (Cache.peek (cache h sp) (vip 7) <> None);
  checkb "newcomer rejected" true (Cache.peek (cache h sp) (vip 8) = None)

let test_core_learns_only_from_promotions () =
  let h = harness () in
  let core = (Topology.cores h.t).(0) in
  let sender = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let p = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:dst_host in
  ignore (process h ~switch:core ~from:(spine_in_pod h 0) p);
  checkb "no destination learning at core" true
    (Cache.peek (cache h core) (vip 7) = None);
  (* Now ride a promotion through. *)
  let p2 = mk_data ~id:2 ~resolved:true h ~src_host:sender ~dst_vip:(vip 9) ~dst_node:dst_host in
  p2.Packet.promo <- Some (vip 9, Topology.pip h.t dst_host);
  ignore (process h ~switch:core ~from:(spine_in_pod h 0) p2);
  checkb "promotion absorbed" true (Cache.peek (cache h core) (vip 9) <> None);
  checkb "promo field cleared" true (p2.Packet.promo = None)

(* --- lookup and rewrite --- *)

let test_lookup_rewrites_and_records_switch () =
  let h = harness () in
  let rt = regular_tor h in
  let dst_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  ignore
    (Cache.insert (cache h rt) ~admission:`All (vip 7) (Topology.pip h.t dst_host));
  let sender = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:rt ~from:sender p);
  checkb "resolved" true p.Packet.resolved;
  checki "rewritten to destination" dst_host
    (Pip.to_int p.Packet.dst_pip);
  checki "hit switch recorded" rt p.Packet.hit_switch

let test_resolved_packets_skip_lookup () =
  let h = harness () in
  let rt = regular_tor h in
  let real = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let decoy = host_in h ~pod:1 ~rack:1 ~idx:0 in
  ignore (Cache.insert (cache h rt) ~admission:`All (vip 7) (Topology.pip h.t decoy));
  let sender = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let p = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:real in
  ignore (process h ~switch:rt ~from:sender p);
  checki "destination untouched" real (Pip.to_int p.Packet.dst_pip)

(* --- learning packets --- *)

let test_learning_packet_generation () =
  let h = harness ~config:(Config.make ~p_learn:1.0 ()) () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let p = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:dst_host in
  ignore (process h ~switch:gt ~from:(gateway h) p);
  (match !(h.emitted) with
  | [ (src, lp) ] ->
      checki "emitted at gateway ToR" gt src;
      checkb "is learning packet" true (lp.Packet.kind = Packet.Learning);
      checki "addressed to sender's ToR"
        (Topology.tor_of h.t sender)
        (Pip.to_int lp.Packet.dst_pip);
      checkb "carries the destination mapping" true
        (lp.Packet.mapping_payload = Some (vip 7, Topology.pip h.t dst_host))
  | l -> Alcotest.failf "expected exactly one learning packet, got %d" (List.length l));
  checki "stat counted" 1 (Dataplane.learning_packets_sent h.dp)

let test_learning_packet_probability_zero () =
  let h = harness ~config:(Config.make ~p_learn:0.0 ()) () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let p = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:dst_host in
  ignore (process h ~switch:gt ~from:(gateway h) p);
  checki "no packet" 0 (List.length !(h.emitted))

let test_learning_packet_consumed_by_tor () =
  let h = harness () in
  let rt = regular_tor h in
  let dst_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let lp =
    Packet.make_control ~id:5 ~kind:Packet.Learning
      ~mapping:(vip 7, Topology.pip h.t dst_host)
      ~src_pip:(Topology.pip h.t (gw_tor h))
      ~dst_pip:(Topology.pip h.t rt)
      ~now:0
  in
  (match process h ~switch:rt ~from:(spine_in_pod h 0) lp with
  | Dataplane.Consume -> ()
  | Dataplane.Forward -> Alcotest.fail "learning packet must be consumed at target");
  checkb "mapping installed" true (Cache.peek (cache h rt) (vip 7) <> None)

let test_learning_packet_forwarded_en_route () =
  let h = harness () in
  let sp = spine_in_pod h 0 in
  let rt = regular_tor h in
  let lp =
    Packet.make_control ~id:5 ~kind:Packet.Learning
      ~mapping:(vip 7, Topology.pip h.t (host_in h ~pod:1 ~rack:0 ~idx:0))
      ~src_pip:(Topology.pip h.t (gw_tor h))
      ~dst_pip:(Topology.pip h.t rt)
      ~now:0
  in
  (match process h ~switch:sp ~from:(gw_tor h) lp with
  | Dataplane.Forward -> ()
  | Dataplane.Consume -> Alcotest.fail "en-route switch must forward");
  checkb "spine does not learn someone else's learning packet" true
    (Cache.peek (cache h sp) (vip 7) = None)

(* --- spillover --- *)

let test_spill_attached_on_eviction () =
  let h = harness ~slots_per_switch:1 () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let d1 = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let d2 = host_in h ~pod:1 ~rack:1 ~idx:1 in
  let p1 = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:d1 in
  ignore (process h ~switch:gt ~from:(gateway h) p1);
  let p2 = mk_data ~id:2 ~resolved:true h ~src_host:sender ~dst_vip:(vip 8) ~dst_node:d2 in
  ignore (process h ~switch:gt ~from:(gateway h) p2);
  (match p2.Packet.spill with
  | Some (v, _) -> checki "evicted entry rides along" 7 (Vip.to_int v)
  | None -> Alcotest.fail "expected spill");
  checki "stat" 1 (Dataplane.spills_attached h.dp)

let test_spill_absorbed_downstream () =
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let d1 = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let p = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 8) ~dst_node:d1 in
  p.Packet.spill <- Some (vip 7, Topology.pip h.t d1);
  ignore (process h ~switch:sp ~from:(gw_tor h) p);
  checkb "spill installed" true (Cache.peek (cache h sp) (vip 7) <> None);
  checkb "spill cleared" true (p.Packet.spill = None);
  checki "stat" 1 (Dataplane.spills_absorbed h.dp)

let test_spill_disabled () =
  let h = harness ~config:(Config.make ~spillover:false ()) ~slots_per_switch:1 () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let d1 = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let d2 = host_in h ~pod:1 ~rack:1 ~idx:1 in
  ignore (process h ~switch:gt ~from:(gateway h)
            (mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:d1));
  let p2 = mk_data ~id:2 ~resolved:true h ~src_host:sender ~dst_vip:(vip 8) ~dst_node:d2 in
  ignore (process h ~switch:gt ~from:(gateway h) p2);
  checkb "no spill when disabled" true (p2.Packet.spill = None)

(* --- promotion --- *)

let test_promotion_on_popular_interpod_hit () =
  let h = harness () in
  let sp = spine_in_pod h 1 in
  (* Pod 1 is a non-gateway pod, so sp is a Regular_spine. *)
  checkb "precondition: regular spine" true
    (Topology.role h.t sp = Node.Regular_spine);
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:0 ~rack:0 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t dst_host));
  (* First hit sets the access bit but must not promote. *)
  let p1 = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:sp ~from:sender p1);
  checkb "first hit, no promo" true (p1.Packet.promo = None);
  (* Second hit finds the bit set and the destination is inter-pod. *)
  let p2 = mk_data ~id:2 h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:sp ~from:sender p2);
  (match p2.Packet.promo with
  | Some (v, _) -> checki "promoted mapping" 7 (Vip.to_int v)
  | None -> Alcotest.fail "expected promotion");
  checki "stat" 1 (Dataplane.promotions h.dp)

let test_no_promotion_intra_pod () =
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:1 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t dst_host));
  let hit () =
    let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
    ignore (process h ~switch:sp ~from:sender p);
    p
  in
  ignore (hit ());
  let p2 = hit () in
  checkb "no promo for intra-pod destination" true (p2.Packet.promo = None)

let test_no_promotion_at_gateway_spine () =
  let h = harness () in
  let gsp = spine_in_pod h 0 in
  checkb "precondition: gateway spine" true
    (Topology.role h.t gsp = Node.Gateway_spine);
  let sender = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  ignore (Cache.insert (cache h gsp) ~admission:`All (vip 7) (Topology.pip h.t dst_host));
  let hit () =
    let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
    ignore (process h ~switch:gsp ~from:sender p);
    p
  in
  ignore (hit ());
  let p2 = hit () in
  checkb "gateway spines never promote" true (p2.Packet.promo = None)

let test_promo_cleared_even_when_rejected () =
  (* A promotion that loses admission at the core is still consumed:
     it must not ride on and pollute other switches. *)
  let h = harness ~slots_per_switch:1 () in
  let core = (Topology.cores h.t).(0) in
  let sender = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let d1 = host_in h ~pod:1 ~rack:0 ~idx:0 in
  (* Occupy the single slot and set its access bit. *)
  let p0 = mk_data ~resolved:true h ~src_host:sender ~dst_vip:(vip 1) ~dst_node:d1 in
  p0.Packet.promo <- Some (vip 1, Topology.pip h.t d1);
  ignore (process h ~switch:core ~from:(spine_in_pod h 0) p0);
  let _ = Cache.lookup (cache h core) (vip 1) in
  (* A colliding promotion arrives: rejected by A-bit-clear admission. *)
  let collide =
    (* find a vip colliding with vip 1 in a 1-slot cache: any vip. *)
    vip 2
  in
  let p1 = mk_data ~id:2 ~resolved:true h ~src_host:sender ~dst_vip:collide ~dst_node:d1 in
  p1.Packet.promo <- Some (collide, Topology.pip h.t d1);
  ignore (process h ~switch:core ~from:(spine_in_pod h 0) p1);
  checkb "original survives" true (Cache.peek (cache h core) (vip 1) <> None);
  checkb "promo consumed regardless" true (p1.Packet.promo = None)

let test_ack_packets_teach_gateway_tor () =
  (* ACKs are tunneled tenant packets: destination learning applies. *)
  let h = harness () in
  let gt = gw_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let dst_host = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let ack =
    Packet.make_ack ~id:7 ~flow_id:1 ~seq:0 ~src_vip:(vip 50) ~dst_vip:(vip 7)
      ~src_pip:(Topology.pip h.t sender)
      ~dst_pip:(Topology.pip h.t dst_host)
      ~now:0
  in
  ack.Packet.resolved <- true;
  ignore (process h ~switch:gt ~from:(gateway h) ack);
  checkb "learned from ack" true (Cache.peek (cache h gt) (vip 7) <> None)

let test_spill_thrash_is_bounded () =
  (* With a 1-slot cache, an absorbed spill can immediately be evicted
     again by this packet's own learning and ride on — but the packet
     only ever carries one spilled entry, and the absorb counter moves
     exactly once per absorption (no hidden chains). *)
  let h = harness ~slots_per_switch:1 () in
  let rt = regular_tor h in
  let sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let d1 = host_in h ~pod:1 ~rack:1 ~idx:0 in
  let p0 = mk_data h ~src_host:sender ~dst_vip:(vip 40) ~dst_node:(gateway h) in
  ignore (process h ~switch:rt ~from:(spine_in_pod h 0) p0);
  let p1 = mk_data ~id:2 ~resolved:true h ~src_host:sender ~dst_vip:(vip 41) ~dst_node:d1 in
  p1.Packet.spill <- Some (vip 42, Topology.pip h.t d1);
  ignore (process h ~switch:rt ~from:(spine_in_pod h 0) p1);
  checki "exactly one absorption" 1 (Dataplane.spills_absorbed h.dp);
  (* The slot now holds the last inserted mapping (source learning). *)
  checkb "slot holds the source mapping" true
    (Cache.peek (cache h rt) p1.Packet.src_vip <> None);
  (* If anything rides on, it is the single displaced entry. *)
  (match p1.Packet.spill with
  | Some (v, _) -> checki "displaced absorbee rides on" 42 (Vip.to_int v)
  | None -> Alcotest.fail "expected the displaced entry to ride on")

(* --- misdelivery and invalidation --- *)

let misdelivery_setup ?(config = Config.default) () =
  let h = harness ~config () in
  let rt = regular_tor h in
  let old_host = (Topology.endpoints_of_tor h.t rt).(0) in
  let orig_sender = host_in h ~pod:1 ~rack:0 ~idx:0 in
  (* The packet was resolved by some switch (say a spine in pod 1) to
     the old host and misdelivered there; the hypervisor re-tunnels it
     to the gateway keeping the original outer source. *)
  let p = mk_data h ~src_host:orig_sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p.Packet.hit_switch <- spine_in_pod h 1;
  (h, rt, old_host, p)

let test_misdelivery_tagging () =
  let h, rt, old_host, p = misdelivery_setup () in
  ignore (process h ~switch:rt ~from:old_host p);
  checkb "expected tag" true (p.Packet.misdelivery >= 0);
  checki "tag carries old host pip" old_host p.Packet.misdelivery;
  checki "tag stat" 1 (Dataplane.misdelivery_tags h.dp);
  (* The invalidation packet targets the stale-serving switch. *)
  (match !(h.emitted) with
  | [ (_, inv) ] ->
      checkb "invalidation kind" true (inv.Packet.kind = Packet.Invalidation);
      checki "targets stale switch" (spine_in_pod h 1) (Pip.to_int inv.Packet.dst_pip)
  | l -> Alcotest.failf "expected one invalidation, got %d" (List.length l));
  checki "inval stat" 1 (Dataplane.invalidation_packets_sent h.dp)

let test_no_tag_for_packets_from_own_host () =
  let h = harness () in
  let rt = regular_tor h in
  let host = (Topology.endpoints_of_tor h.t rt).(0) in
  let p = mk_data h ~src_host:host ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  ignore (process h ~switch:rt ~from:host p);
  checkb "no tag for legitimate traffic" true (p.Packet.misdelivery < 0)

let test_ts_vector_suppresses_repeat_invalidations () =
  let h, rt, old_host, p = misdelivery_setup () in
  ignore (process h ~switch:rt ~from:old_host p);
  (* A second misdelivered packet within the base RTT: tag yes,
     invalidation packet no. *)
  let p2 = mk_data ~id:2 h ~src_host:(host_in h ~pod:1 ~rack:0 ~idx:1)
             ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p2.Packet.hit_switch <- spine_in_pod h 1;
  h.clock := Dessim.Time_ns.of_us 1;
  ignore (process h ~switch:rt ~from:old_host p2);
  checki "only one invalidation sent" 1 (List.length !(h.emitted));
  checki "suppression counted" 1 (Dataplane.invalidations_suppressed h.dp);
  (* After the base RTT it may be retransmitted. *)
  let p3 = mk_data ~id:3 h ~src_host:(host_in h ~pod:1 ~rack:1 ~idx:0)
             ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p3.Packet.hit_switch <- spine_in_pod h 1;
  h.clock := Dessim.Time_ns.of_us 100;
  ignore (process h ~switch:rt ~from:old_host p3);
  checki "retransmitted after RTT" 2 (List.length !(h.emitted))

let test_without_ts_vector_every_tag_sends () =
  let cfg = Config.make ~ts_vector:false () in
  let h, rt, old_host, p = misdelivery_setup ~config:cfg () in
  ignore (process h ~switch:rt ~from:old_host p);
  let p2 = mk_data ~id:2 h ~src_host:(host_in h ~pod:1 ~rack:0 ~idx:1)
             ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p2.Packet.hit_switch <- spine_in_pod h 1;
  ignore (process h ~switch:rt ~from:old_host p2);
  checki "both invalidations sent" 2 (List.length !(h.emitted))

let test_invalidations_disabled () =
  let cfg = Config.make ~invalidations:false () in
  let h, rt, old_host, p = misdelivery_setup ~config:cfg () in
  ignore (process h ~switch:rt ~from:old_host p);
  checkb "tag still applied" true (p.Packet.misdelivery >= 0);
  checki "no invalidation packets" 0 (List.length !(h.emitted))

let test_tagged_packet_invalidates_stale_entry () =
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let old_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let sender = host_in h ~pod:1 ~rack:1 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t old_host));
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p.Packet.misdelivery <- Pip.to_int (Topology.pip h.t old_host);
  ignore (process h ~switch:sp ~from:(Topology.tor_of h.t old_host) p);
  checkb "stale entry removed" true (Cache.peek (cache h sp) (vip 7) = None);
  checkb "packet not rewritten from stale entry" false p.Packet.resolved;
  checki "stat" 1 (Dataplane.entries_invalidated h.dp)

let test_tagged_packet_uses_fresh_entry () =
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let old_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let new_host = host_in h ~pod:0 ~rack:0 ~idx:0 in
  let sender = host_in h ~pod:1 ~rack:1 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t new_host));
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p.Packet.misdelivery <- Pip.to_int (Topology.pip h.t old_host);
  ignore (process h ~switch:sp ~from:(Topology.tor_of h.t old_host) p);
  checkb "fresh mapping used" true p.Packet.resolved;
  checki "rewritten to new host" new_host (Pip.to_int p.Packet.dst_pip)

let test_invalidation_packet_en_route_and_at_target () =
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let core = (Topology.cores h.t).(0) in
  let old_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t old_host));
  ignore (Cache.insert (cache h core) ~admission:`All (vip 7) (Topology.pip h.t old_host));
  let inv =
    Packet.make_control ~id:9 ~kind:Packet.Invalidation
      ~mapping:(vip 7, Topology.pip h.t old_host)
      ~src_pip:(Topology.pip h.t (regular_tor h))
      ~dst_pip:(Topology.pip h.t core)
      ~now:0
  in
  (* En route through the spine: invalidates and forwards. *)
  (match process h ~switch:sp ~from:(regular_tor h) inv with
  | Dataplane.Forward -> ()
  | Dataplane.Consume -> Alcotest.fail "must forward toward target");
  checkb "spine entry invalidated" true (Cache.peek (cache h sp) (vip 7) = None);
  (* At the target core: invalidates and consumes. *)
  (match process h ~switch:core ~from:sp inv with
  | Dataplane.Consume -> ()
  | Dataplane.Forward -> Alcotest.fail "must consume at target");
  checkb "core entry invalidated" true (Cache.peek (cache h core) (vip 7) = None)

(* A tagged packet's conservative lookup must consult the cache exactly
   once: the old peek-then-lookup pair double-counted the line's
   hit/miss statistics and toggled the access bit inconsistently. *)
let test_tagged_lookup_counts_one_access () =
  let count_accesses c = Cache.hits c + Cache.misses c in
  (* Stale entry: invalidated, counted as a single access. *)
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let old_host = host_in h ~pod:1 ~rack:0 ~idx:0 in
  let sender = host_in h ~pod:1 ~rack:1 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t old_host));
  let before = count_accesses (cache h sp) in
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p.Packet.misdelivery <- Pip.to_int (Topology.pip h.t old_host);
  ignore (process h ~switch:sp ~from:(Topology.tor_of h.t old_host) p);
  checki "stale case: one access" (before + 1) (count_accesses (cache h sp));
  (* Fresh entry: rewritten, also a single access, and the hit keeps
     the access bit set (it is a genuine hit, not a peeked one). *)
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let new_host = host_in h ~pod:0 ~rack:0 ~idx:0 in
  ignore (Cache.insert (cache h sp) ~admission:`All (vip 7) (Topology.pip h.t new_host));
  let before_hits = Cache.hits (cache h sp) in
  let before = count_accesses (cache h sp) in
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p.Packet.misdelivery <- Pip.to_int (Topology.pip h.t old_host);
  ignore (process h ~switch:sp ~from:(Topology.tor_of h.t old_host) p);
  checkb "fresh case: rewritten" true p.Packet.resolved;
  checki "fresh case: one access" (before + 1) (count_accesses (cache h sp));
  checki "fresh case: counted as hit" (before_hits + 1) (Cache.hits (cache h sp));
  checkb "fresh case: access bit set" true
    (Cache.access_bit (cache h sp) (vip 7) = Some true);
  (* No entry: a single miss. *)
  let h = harness () in
  let sp = spine_in_pod h 1 in
  let before_misses = Cache.misses (cache h sp) in
  let p = mk_data h ~src_host:sender ~dst_vip:(vip 7) ~dst_node:(gateway h) in
  p.Packet.misdelivery <- Pip.to_int (Topology.pip h.t old_host);
  ignore (process h ~switch:sp ~from:(Topology.tor_of h.t old_host) p);
  checki "miss case: one miss" (before_misses + 1) (Cache.misses (cache h sp))

(* --- configuration of cache geometry --- *)

let test_slot_distribution () =
  let h = harness ~slots_per_switch:4 () in
  Array.iter
    (fun sw -> checki "equal split" 4 (Dataplane.slots_of h.dp ~switch:sw))
    (Topology.switches h.t)

let test_slot_remainder_distribution () =
  let t = topo () in
  let n = Array.length (Topology.switches t) in
  let dp = Dataplane.create Config.default t ~total_cache_slots:(n + 3) in
  let total =
    Array.fold_left
      (fun acc sw -> acc + Dataplane.slots_of dp ~switch:sw)
      0 (Topology.switches t)
  in
  checki "slots conserved" (n + 3) total

(* QCheck: slot distribution conserves the aggregate budget exactly —
   sum over switches = total, every share non-negative — for any total
   and any (non-negative) weight profile. Skewed float weights can
   leave the floored shares on either side of the total, so both
   correction directions are exercised. *)
let slot_conservation_qcheck =
  let open QCheck in
  let weight = Gen.oneofl [ 0.0; 0.1; 0.3; 1.0; 3.7; 1e3; 1e-3 ] in
  let allocation =
    make
      (Gen.oneof
         [
           Gen.return Config.Uniform;
           Gen.return Config.Tor_only;
           Gen.map2
             (fun (tor, spine, core) (gw_tor, gw_spine) ->
               Config.Weighted { tor; spine; core; gw_tor; gw_spine })
             (Gen.triple weight weight weight)
             (Gen.pair weight weight);
         ])
  in
  QCheck.Test.make ~name:"slot distribution conserves the total" ~count:300
    (pair (int_bound 5000) allocation)
    (fun (total, allocation) ->
      let t = topo () in
      let cfg = Config.make ~allocation () in
      let dp = Dataplane.create cfg t ~total_cache_slots:total in
      let switches = Topology.switches t in
      let sum =
        Array.fold_left
          (fun acc sw -> acc + Dataplane.slots_of dp ~switch:sw)
          0 switches
      in
      let nonneg =
        Array.for_all (fun sw -> Dataplane.slots_of dp ~switch:sw >= 0) switches
      in
      let positive_weight =
        match allocation with
        | Config.Uniform -> true
        | Config.Tor_only ->
            Array.exists
              (fun sw ->
                match Topology.role t sw with
                | Node.Regular_tor | Node.Gateway_tor -> true
                | _ -> false)
              switches
        | Config.Weighted { tor; spine; core; gw_tor; gw_spine } ->
            tor +. spine +. core +. gw_tor +. gw_spine > 0.0
      in
      (* All-zero weights legitimately allocate nothing. *)
      nonneg && if positive_weight then sum = total else sum = 0)

let test_tor_only_mode () =
  let t = topo () in
  let cfg = Config.make ~tor_only:true () in
  let dp = Dataplane.create cfg t ~total_cache_slots:64 in
  Array.iter
    (fun sw ->
      match Topology.role t sw with
      | Node.Regular_tor | Node.Gateway_tor ->
          checkb "tor has slots" true (Dataplane.slots_of dp ~switch:sw > 0)
      | Node.Regular_spine | Node.Gateway_spine | Node.Core_switch ->
          checki "non-tor empty" 0 (Dataplane.slots_of dp ~switch:sw))
    (Topology.switches t)

let () =
  Alcotest.run "dataplane"
    [
      ( "learning",
        [
          Alcotest.test_case "gateway ToR destination learning" `Quick
            test_gateway_tor_destination_learning;
          Alcotest.test_case "gateway ToR ignores unresolved" `Quick
            test_gateway_tor_ignores_unresolved;
          Alcotest.test_case "regular ToR source learning" `Quick
            test_regular_tor_source_learning;
          Alcotest.test_case "spine conservative admission" `Quick
            test_spine_conservative_admission;
          Alcotest.test_case "core learns only promotions" `Quick
            test_core_learns_only_from_promotions;
          Alcotest.test_case "acks teach too" `Quick
            test_ack_packets_teach_gateway_tor;
        ] );
      ( "lookup",
        [
          Alcotest.test_case "rewrite and hit switch" `Quick
            test_lookup_rewrites_and_records_switch;
          Alcotest.test_case "resolved packets skip lookup" `Quick
            test_resolved_packets_skip_lookup;
        ] );
      ( "learning packets",
        [
          Alcotest.test_case "generation at gateway ToR" `Quick
            test_learning_packet_generation;
          Alcotest.test_case "p_learn = 0" `Quick
            test_learning_packet_probability_zero;
          Alcotest.test_case "consumed by target ToR" `Quick
            test_learning_packet_consumed_by_tor;
          Alcotest.test_case "forwarded en route" `Quick
            test_learning_packet_forwarded_en_route;
        ] );
      ( "spillover",
        [
          Alcotest.test_case "attached on eviction" `Quick
            test_spill_attached_on_eviction;
          Alcotest.test_case "absorbed downstream" `Quick
            test_spill_absorbed_downstream;
          Alcotest.test_case "disabled by config" `Quick test_spill_disabled;
          Alcotest.test_case "thrash bounded" `Quick test_spill_thrash_is_bounded;
        ] );
      ( "promotion",
        [
          Alcotest.test_case "popular inter-pod hit" `Quick
            test_promotion_on_popular_interpod_hit;
          Alcotest.test_case "no intra-pod promotion" `Quick
            test_no_promotion_intra_pod;
          Alcotest.test_case "no gateway-spine promotion" `Quick
            test_no_promotion_at_gateway_spine;
          Alcotest.test_case "rejected promo still consumed" `Quick
            test_promo_cleared_even_when_rejected;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "misdelivery tagging" `Quick test_misdelivery_tagging;
          Alcotest.test_case "no tag for own traffic" `Quick
            test_no_tag_for_packets_from_own_host;
          Alcotest.test_case "timestamp vector suppression" `Quick
            test_ts_vector_suppresses_repeat_invalidations;
          Alcotest.test_case "without timestamp vector" `Quick
            test_without_ts_vector_every_tag_sends;
          Alcotest.test_case "invalidations disabled" `Quick
            test_invalidations_disabled;
          Alcotest.test_case "tagged packet invalidates stale" `Quick
            test_tagged_packet_invalidates_stale_entry;
          Alcotest.test_case "tagged packet uses fresh entry" `Quick
            test_tagged_packet_uses_fresh_entry;
          Alcotest.test_case "invalidation packet en route" `Quick
            test_invalidation_packet_en_route_and_at_target;
          Alcotest.test_case "tagged lookup counts one access" `Quick
            test_tagged_lookup_counts_one_access;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "equal slot split" `Quick test_slot_distribution;
          Alcotest.test_case "remainder conserved" `Quick
            test_slot_remainder_distribution;
          Alcotest.test_case "ToR-only mode" `Quick test_tor_only_mode;
          QCheck_alcotest.to_alcotest slot_conservation_qcheck;
        ] );
    ]
