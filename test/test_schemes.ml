(* Tests for the baseline schemes at the unit level (plus small
   simulations where the behavior is inherently end-to-end). *)

module Scheme = Netsim.Scheme
module Pipeline = Netsim.Pipeline
module Verdict = Switchv2p.Verdict
module Network = Netsim.Network
module Metrics = Netsim.Metrics
module Topology = Topo.Topology
module Node = Topo.Node
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip
module Time_ns = Dessim.Time_ns
module Engine = Dessim.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let topo () =
  Topology.build
    (Topo.Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2
       ~vms_per_host:4 ())

(* A bare env for unit-driving scheme callbacks. *)
let make_env t =
  let mapping = Netcore.Mapping.create () in
  Array.iteri
    (fun i host ->
      for v = 0 to 3 do
        Netcore.Mapping.install mapping
          (Vip.of_int ((i * 4) + v))
          (Topology.pip t host)
      done)
    (Topology.hosts t);
  let next = ref 0 in
  {
    Scheme.engine = Engine.create ();
    rng = Dessim.Rng.create 5;
    topo = t;
    mapping;
    base_rtt = Time_ns.of_us 12;
    fresh_packet_id =
      (fun () ->
        incr next;
        !next);
    emit_at_switch = (fun ~src_switch:_ _ -> ());
  }

let mk_pkt t ~src_host ~dst_vip =
  Packet.make_data ~id:1 ~flow_id:1 ~seq:0 ~size:1500 ~src_vip:(Vip.of_int 0)
    ~dst_vip ~src_pip:(Topology.pip t src_host)
    ~dst_pip:(Topology.pip t (Topology.gateways t).(0))
    ~now:0

(* --- learning cache helper --- *)

let test_learning_cache_slot_split () =
  let lc =
    Schemes.Learning_cache.create ~switches:[| 2; 5; 9 |] ~total_slots:10
      ~num_nodes:12
  in
  let slots sw =
    match Schemes.Learning_cache.cache lc ~switch:sw with
    | Some c -> Switchv2p.Cache.slots c
    | None -> -1
  in
  checki "first gets remainder" 4 (slots 2);
  checki "remainder spread" 3 (slots 5);
  checki "base" 3 (slots 9);
  checki "non-caching switch" (-1) (slots 0)

let test_learning_cache_lookup_and_learn () =
  let t = topo () in
  let sw = (Topology.switches t).(0) in
  let lc =
    Schemes.Learning_cache.create ~switches:[| sw |] ~total_slots:16
      ~num_nodes:(Topology.num_nodes t)
  in
  let dst_host = (Topology.hosts t).(3) in
  (* A resolved packet teaches the mapping... *)
  let p1 = mk_pkt t ~src_host:(Topology.hosts t).(0) ~dst_vip:(Vip.of_int 12) in
  p1.Packet.resolved <- true;
  p1.Packet.dst_pip <- Topology.pip t dst_host;
  Schemes.Learning_cache.on_switch lc ~switch:sw p1;
  (* ...which then resolves a later packet. *)
  let p2 = mk_pkt t ~src_host:(Topology.hosts t).(1) ~dst_vip:(Vip.of_int 12) in
  Schemes.Learning_cache.on_switch lc ~switch:sw p2;
  checkb "second packet resolved" true p2.Packet.resolved;
  checki "rewritten" dst_host (Pip.to_int p2.Packet.dst_pip);
  checki "hit switch" sw p2.Packet.hit_switch

let test_learning_cache_tagged_conservative () =
  let t = topo () in
  let sw = (Topology.switches t).(0) in
  let lc =
    Schemes.Learning_cache.create ~switches:[| sw |] ~total_slots:16
      ~num_nodes:(Topology.num_nodes t)
  in
  let stale_host = (Topology.hosts t).(3) in
  let p1 = mk_pkt t ~src_host:(Topology.hosts t).(0) ~dst_vip:(Vip.of_int 12) in
  p1.Packet.resolved <- true;
  p1.Packet.dst_pip <- Topology.pip t stale_host;
  Schemes.Learning_cache.on_switch lc ~switch:sw p1;
  (* A tagged packet removes the stale entry and is never rewritten. *)
  let p2 = mk_pkt t ~src_host:(Topology.hosts t).(1) ~dst_vip:(Vip.of_int 12) in
  p2.Packet.misdelivery <- Pip.to_int (Topology.pip t stale_host);
  Schemes.Learning_cache.on_switch lc ~switch:sw p2;
  checkb "not rewritten" false p2.Packet.resolved;
  let p3 = mk_pkt t ~src_host:(Topology.hosts t).(1) ~dst_vip:(Vip.of_int 12) in
  Schemes.Learning_cache.on_switch lc ~switch:sw p3;
  checkb "stale entry was removed" false p3.Packet.resolved

(* --- gwcache --- *)

let test_gwcache_caches_only_gateway_tors () =
  let t = topo () in
  let scheme = Schemes.Baselines.gwcache ~topo:t ~total_slots:32 in
  let env = make_env t in
  let gw_tor =
    Array.to_list (Topology.tors t)
    |> List.find (fun sw -> Topology.role t sw = Node.Gateway_tor)
  in
  let other =
    Array.to_list (Topology.switches t)
    |> List.find (fun sw -> Topology.role t sw <> Node.Gateway_tor)
  in
  let dst_host = (Topology.hosts t).(3) in
  let teach sw =
    let p = mk_pkt t ~src_host:(Topology.hosts t).(0) ~dst_vip:(Vip.of_int 12) in
    p.Packet.resolved <- true;
    p.Packet.dst_pip <- Topology.pip t dst_host;
    ignore (Pipeline.run scheme.Scheme.pipeline env ~switch:sw ~from:0 p)
  in
  teach gw_tor;
  teach other;
  let probe sw =
    let p = mk_pkt t ~src_host:(Topology.hosts t).(1) ~dst_vip:(Vip.of_int 12) in
    ignore (Pipeline.run scheme.Scheme.pipeline env ~switch:sw ~from:0 p);
    p.Packet.resolved
  in
  checkb "gateway ToR resolves" true (probe gw_tor);
  checkb "other switches have no cache" false (probe other)

(* --- ondemand --- *)

let test_ondemand_resolution_sequence () =
  let t = topo () in
  let env = make_env t in
  let scheme = Schemes.Baselines.ondemand () in
  let host = (Topology.hosts t).(0) in
  (match
     scheme.Scheme.resolve_at_host env ~host ~flow_id:1 ~dst_vip:(Vip.of_int 12)
   with
  | Scheme.Send_after (d, _) -> checki "penalty 40us" (Time_ns.of_us 40) d
  | Scheme.Send_resolved _ | Scheme.Send_via_gateway ->
      Alcotest.fail "first lookup must pay the penalty");
  (match
     scheme.Scheme.resolve_at_host env ~host ~flow_id:2 ~dst_vip:(Vip.of_int 12)
   with
  | Scheme.Send_resolved _ -> ()
  | Scheme.Send_after _ | Scheme.Send_via_gateway ->
      Alcotest.fail "second lookup must hit");
  (* Caches are per host. *)
  match
    scheme.Scheme.resolve_at_host env ~host:(Topology.hosts t).(1) ~flow_id:3
      ~dst_vip:(Vip.of_int 12)
  with
  | Scheme.Send_after _ -> ()
  | Scheme.Send_resolved _ | Scheme.Send_via_gateway ->
      Alcotest.fail "other hosts miss independently"

let test_ondemand_stale_after_migration () =
  let t = topo () in
  let env = make_env t in
  let scheme = Schemes.Baselines.ondemand () in
  let host = (Topology.hosts t).(0) in
  let first =
    scheme.Scheme.resolve_at_host env ~host ~flow_id:1 ~dst_vip:(Vip.of_int 12)
  in
  let old_pip =
    match first with
    | Scheme.Send_after (_, pip) -> pip
    | _ -> Alcotest.fail "expected penalty"
  in
  (* Migrate in the ground truth; OnDemand hosts are not refreshed. *)
  Netcore.Mapping.migrate env.Scheme.mapping (Vip.of_int 12)
    (Topology.pip t (Topology.hosts t).(5));
  scheme.Scheme.on_mapping_update env (Vip.of_int 12) ~old_pip
    ~new_pip:(Topology.pip t (Topology.hosts t).(5));
  match
    scheme.Scheme.resolve_at_host env ~host ~flow_id:2 ~dst_vip:(Vip.of_int 12)
  with
  | Scheme.Send_resolved pip -> checkb "still stale" true (Pip.equal pip old_pip)
  | _ -> Alcotest.fail "expected stale resolution"

(* --- hoverboard --- *)

let test_hoverboard_offload_after_threshold () =
  let t = topo () in
  let env = make_env t in
  let scheme = Schemes.Baselines.hoverboard ~offload_threshold:3 () in
  let host = (Topology.hosts t).(0) in
  let resolve () =
    scheme.Scheme.resolve_at_host env ~host ~flow_id:1 ~dst_vip:(Vip.of_int 12)
  in
  (* Packets 1..3 ride via the gateway; the third crosses the
     threshold and triggers the offload. *)
  for _ = 1 to 3 do
    match resolve () with
    | Scheme.Send_via_gateway -> ()
    | Scheme.Send_resolved _ | Scheme.Send_after _ ->
        Alcotest.fail "below threshold must use the gateway"
  done;
  (match resolve () with
  | Scheme.Send_resolved _ -> ()
  | Scheme.Send_via_gateway | Scheme.Send_after _ ->
      Alcotest.fail "offloaded rule must resolve at the host");
  (* Other hosts are unaffected. *)
  match
    scheme.Scheme.resolve_at_host env ~host:(Topology.hosts t).(1) ~flow_id:2
      ~dst_vip:(Vip.of_int 12)
  with
  | Scheme.Send_via_gateway -> ()
  | Scheme.Send_resolved _ | Scheme.Send_after _ ->
      Alcotest.fail "per-host counters"

let test_hoverboard_validates_threshold () =
  Alcotest.check_raises "zero threshold"
    (Invalid_argument "Baselines.hoverboard: threshold must be positive")
    (fun () -> ignore (Schemes.Baselines.hoverboard ~offload_threshold:0 ()))

let test_hoverboard_end_to_end () =
  let t = topo () in
  let scheme = Schemes.Baselines.hoverboard ~offload_threshold:5 () in
  let net = Network.create t ~scheme in
  let flows =
    [
      Flow.make ~id:0 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 8)
        ~size_bytes:(30 * Packet.mtu) ~start:0 Flow.Tcpish;
    ]
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 50);
  let m = Network.metrics net in
  checki "flow completes" 1 (Metrics.flows_completed m);
  (* Early packets went through the gateway, later ones did not. *)
  checkb "partial gateway traffic" true
    (Metrics.gateway_packets m > 0
    && Metrics.gateway_packets m < Metrics.packets_sent m);
  checkb "rule offloaded" true
    (List.assoc "rule_offloads" (scheme.Scheme.stats ()) >= 1.0)

(* --- dht store --- *)

let test_dht_home_resolution () =
  let t = topo () in
  let scheme, c = Schemes.Dht_store.make_with_control t in
  let net = Network.create t ~scheme in
  let flows =
    [
      Flow.make ~id:0 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 8)
        ~size_bytes:(10 * Packet.mtu) ~start:0 Flow.Tcpish;
    ]
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 50);
  let m = Network.metrics net in
  checki "flow completes" 1 (Metrics.flows_completed m);
  checki "no gateway traffic" 0 (Metrics.gateway_packets m);
  checkb "home switch resolved" true
    (List.assoc "dht_home_hits" (scheme.Scheme.stats ()) > 0.0);
  checki "no fallbacks" 0 (Schemes.Dht_store.fallbacks c)

let test_dht_failure_falls_back_to_gateway () =
  let t = topo () in
  let scheme, c = Schemes.Dht_store.make_with_control t in
  let home = Schemes.Dht_store.home_of c (Vip.of_int 8) in
  Schemes.Dht_store.fail_switch c ~switch:home;
  let net = Network.create t ~scheme in
  let flows =
    [
      Flow.make ~id:0 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 8)
        ~size_bytes:(10 * Packet.mtu) ~start:0 Flow.Tcpish;
    ]
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 50);
  let m = Network.metrics net in
  checki "flow still completes" 1 (Metrics.flows_completed m);
  checkb "traffic diverted to gateways" true (Metrics.gateway_packets m > 0);
  checkb "fallbacks counted" true (Schemes.Dht_store.fallbacks c > 0);
  (* Repopulation restores DHT service. *)
  Schemes.Dht_store.repopulate c ~switch:home;
  let net2 = Network.create t ~scheme in
  Network.run net2
    [
      Flow.make ~id:1 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 8)
        ~size_bytes:(10 * Packet.mtu) ~start:0 Flow.Tcpish;
    ]
    ~migrations:[] ~until:(Time_ns.of_ms 50);
  checki "no gateway traffic after repair" 0
    (Metrics.gateway_packets (Network.metrics net2))

let test_dht_home_is_stable_hash () =
  let t = topo () in
  let _, c1 = Schemes.Dht_store.make_with_control t in
  let _, c2 = Schemes.Dht_store.make_with_control t in
  for v = 0 to 23 do
    checki "home deterministic"
      (Schemes.Dht_store.home_of c1 (Vip.of_int v))
      (Schemes.Dht_store.home_of c2 (Vip.of_int v))
  done

(* --- bluebird --- *)

let test_bluebird_detour_and_insert_delay () =
  let t = topo () in
  let env = make_env t in
  let scheme =
    Schemes.Baselines.bluebird ~topo:t ~total_slots:(16 * Array.length (Topology.tors t)) ()
  in
  let tor = (Topology.tors t).(0) in
  let p = mk_pkt t ~src_host:(Topology.hosts t).(0) ~dst_vip:(Vip.of_int 12) in
  let v = Pipeline.run scheme.Scheme.pipeline env ~switch:tor ~from:0 p in
  checkb "expected a CP detour" true (Verdict.tag v = Verdict.tag_delay);
  checkb "detour includes CP latency" true
    (Verdict.delay_ns v >= Time_ns.of_ns 8_500);
  checkb "resolved by SFE" true p.Packet.resolved;
  (* The route cache is installed only after the 2 ms insertion delay. *)
  let p2 = mk_pkt t ~src_host:(Topology.hosts t).(1) ~dst_vip:(Vip.of_int 12) in
  let v2 = Pipeline.run scheme.Scheme.pipeline env ~switch:tor ~from:0 p2 in
  checkb "still a miss before the insert completes" true
    (Verdict.tag v2 = Verdict.tag_delay);
  Engine.run_until env.Scheme.engine ~limit:(Time_ns.of_ms 3);
  let p3 = mk_pkt t ~src_host:(Topology.hosts t).(1) ~dst_vip:(Vip.of_int 12) in
  let v3 = Pipeline.run scheme.Scheme.pipeline env ~switch:tor ~from:0 p3 in
  checkb "expected a data-plane hit" true (Verdict.tag v3 = Verdict.tag_forward);
  checkb "hit after insert" true p3.Packet.resolved

let test_bluebird_cp_overload_drops () =
  let t = topo () in
  let env = make_env t in
  let scheme =
    Schemes.Baselines.bluebird ~cp_queue_bytes:4_000 ~topo:t ~total_slots:0 ()
  in
  let tor = (Topology.tors t).(0) in
  let send i =
    let p = mk_pkt t ~src_host:(Topology.hosts t).(0) ~dst_vip:(Vip.of_int 12) in
    ignore i;
    Pipeline.run scheme.Scheme.pipeline env ~switch:tor ~from:0 p
  in
  let dropped = ref 0 in
  for i = 0 to 9 do
    if Verdict.tag (send i) = Verdict.tag_drop then incr dropped
  done;
  checkb "overload drops" true (!dropped > 0)

(* --- controller (end-to-end: needs the running engine) --- *)

let test_controller_installs_and_serves () =
  let t = topo () in
  let scheme =
    Schemes.Controller.make ~topo:t ~total_slots:64
      ~interval:(Time_ns.of_us 200) ()
  in
  let net = Network.create t ~scheme in
  let flows =
    List.init 6 (fun i ->
        Flow.make ~id:i ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 8)
          ~size_bytes:(10 * Packet.mtu)
          ~start:(i * Time_ns.of_ms 1)
          Flow.Tcpish)
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 50);
  let m = Network.metrics net in
  checki "all complete" 6 (Metrics.flows_completed m);
  checkb "later flows hit installed entries" true (Metrics.hit_rate m > 0.0);
  let stats = scheme.Scheme.stats () in
  checkb "controller solved at least once" true
    (List.assoc "controller_solves" stats > 0.0)

(* --- pipeline mechanics --- *)

let test_pipeline_stage_order () =
  let t = topo () in
  let env = make_env t in
  let trace = ref [] in
  let record name v =
    Pipeline.stage ~kind:Pipeline.Lookup name (fun _env ~switch:_ ~from:_ _pkt ->
        trace := name :: !trace;
        v)
  in
  let pl =
    Pipeline.make
      [ record "a" Verdict.next; record "b" Verdict.next; record "c" Verdict.next ]
  in
  let p = mk_pkt t ~src_host:(Topology.hosts t).(0) ~dst_vip:(Vip.of_int 12) in
  let v = Pipeline.run pl env ~switch:0 ~from:0 p in
  checkb "all-next falls through to forward" true
    (Verdict.tag v = Verdict.tag_forward);
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "stages run in declaration order" [ "a"; "b"; "c" ] (List.rev !trace);
  (* A final verdict short-circuits the remaining stages. *)
  trace := [];
  let pl2 =
    Pipeline.make [ record "a" Verdict.next; record "b" Verdict.consume; record "c" Verdict.next ]
  in
  let v2 = Pipeline.run pl2 env ~switch:0 ~from:0 p in
  checkb "verdict surfaces" true (Verdict.tag v2 = Verdict.tag_consume);
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "later stages skipped" [ "a"; "b" ] (List.rev !trace);
  (* The empty pipeline forwards. *)
  checkb "passthrough forwards" true
    (Verdict.tag (Pipeline.run Pipeline.passthrough env ~switch:0 ~from:0 p)
    = Verdict.tag_forward)

let test_pipeline_stage_listing () =
  let scheme = Schemes.Switchv2p_scheme.make (topo ()) ~total_cache_slots:64 in
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "switchv2p stage names"
    [ "classify"; "lookup"; "learn"; "emit" ]
    (List.map fst (Pipeline.stages scheme.Scheme.pipeline));
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "stage kinds"
    [ "classify"; "lookup"; "learn"; "emit" ]
    (List.map
       (fun (_, k) -> P4model.Resources.stage_kind_name (Pipeline.p4_kind k))
       (Pipeline.stages scheme.Scheme.pipeline))

let test_pipeline_stage_resources_sum () =
  let scheme = Schemes.Switchv2p_scheme.make (topo ()) ~total_cache_slots:64 in
  let entries = 1000 in
  let per_stage =
    Pipeline.resources scheme.Scheme.pipeline ~entries_per_switch:entries
  in
  let whole = P4model.Resources.estimate ~entries_per_switch:entries in
  let sum f = List.fold_left (fun acc (_, u) -> acc +. f u) 0.0 per_stage in
  let close what got want =
    Alcotest.check (Alcotest.float 1e-9) what want got
  in
  checki "four stages" 4 (List.length per_stage);
  close "crossbar shares re-sum"
    (sum (fun u -> u.P4model.Resources.match_crossbar))
    whole.P4model.Resources.match_crossbar;
  close "meter alu shares re-sum"
    (sum (fun u -> u.P4model.Resources.meter_alu))
    whole.P4model.Resources.meter_alu;
  close "gateway shares re-sum"
    (sum (fun u -> u.P4model.Resources.gateway))
    whole.P4model.Resources.gateway;
  close "tcam shares re-sum"
    (sum (fun u -> u.P4model.Resources.tcam))
    whole.P4model.Resources.tcam;
  close "vliw shares re-sum"
    (sum (fun u -> u.P4model.Resources.vliw))
    whole.P4model.Resources.vliw;
  close "sram shares re-sum"
    (sum (fun u -> u.P4model.Resources.sram))
    whole.P4model.Resources.sram;
  close "hash-bit shares re-sum"
    (sum (fun u -> u.P4model.Resources.hash_bits))
    whole.P4model.Resources.hash_bits

(* --- scheme metadata --- *)

let test_scheme_names () =
  let t = topo () in
  let names =
    [
      (Schemes.Baselines.nocache ()).Scheme.name;
      (Schemes.Baselines.direct ()).Scheme.name;
      (Schemes.Baselines.ondemand ()).Scheme.name;
      (Schemes.Baselines.locallearning ~topo:t ~total_slots:1).Scheme.name;
      (Schemes.Baselines.gwcache ~topo:t ~total_slots:1).Scheme.name;
      (Schemes.Baselines.bluebird ~topo:t ~total_slots:1 ()).Scheme.name;
      (Schemes.Switchv2p_scheme.make t ~total_cache_slots:1).Scheme.name;
      (Schemes.Controller.make ~topo:t ~total_slots:1
         ~interval:(Time_ns.of_ms 1) ())
        .Scheme.name;
    ]
  in
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "names"
    [
      "NoCache";
      "Direct";
      "OnDemand";
      "LocalLearning";
      "GwCache";
      "Bluebird";
      "SwitchV2P";
      "Controller";
    ]
    names

let () =
  Alcotest.run "schemes"
    [
      ( "learning_cache",
        [
          Alcotest.test_case "slot split" `Quick test_learning_cache_slot_split;
          Alcotest.test_case "lookup and learn" `Quick test_learning_cache_lookup_and_learn;
          Alcotest.test_case "tagged conservative" `Quick test_learning_cache_tagged_conservative;
        ] );
      ( "gwcache",
        [
          Alcotest.test_case "gateway ToRs only" `Quick
            test_gwcache_caches_only_gateway_tors;
        ] );
      ( "ondemand",
        [
          Alcotest.test_case "resolution sequence" `Quick test_ondemand_resolution_sequence;
          Alcotest.test_case "stale after migration" `Quick test_ondemand_stale_after_migration;
        ] );
      ( "hoverboard",
        [
          Alcotest.test_case "offload after threshold" `Quick
            test_hoverboard_offload_after_threshold;
          Alcotest.test_case "threshold validated" `Quick
            test_hoverboard_validates_threshold;
          Alcotest.test_case "end to end" `Quick test_hoverboard_end_to_end;
        ] );
      ( "dht_store",
        [
          Alcotest.test_case "home resolution" `Quick test_dht_home_resolution;
          Alcotest.test_case "failure falls back" `Quick
            test_dht_failure_falls_back_to_gateway;
          Alcotest.test_case "stable homes" `Quick test_dht_home_is_stable_hash;
        ] );
      ( "bluebird",
        [
          Alcotest.test_case "CP detour and insert delay" `Quick
            test_bluebird_detour_and_insert_delay;
          Alcotest.test_case "CP overload drops" `Quick test_bluebird_cp_overload_drops;
        ] );
      ( "controller",
        [
          Alcotest.test_case "installs and serves" `Quick
            test_controller_installs_and_serves;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage order" `Quick test_pipeline_stage_order;
          Alcotest.test_case "stage listing" `Quick test_pipeline_stage_listing;
          Alcotest.test_case "stage resources re-sum" `Quick
            test_pipeline_stage_resources_sum;
        ] );
      ("metadata", [ Alcotest.test_case "names" `Quick test_scheme_names ]);
    ]
