(* Deterministic simulation tests: random seeded fault plans, four
   invariants, and byte-identical replay. A failure prints the seed
   and the exact command that reproduces the run. *)

module Dst = Experiments.Dst

let report_failures outcomes =
  let failed = Dst.failed outcomes in
  if failed <> [] then begin
    let b = Buffer.create 512 in
    List.iter
      (fun o -> Buffer.add_string b (Format.asprintf "%a" Dst.pp_failure o))
      failed;
    Alcotest.failf "%d/%d DST runs violated invariants:\n%s"
      (List.length failed) (List.length outcomes) (Buffer.contents b)
  end

(* All four invariants across randomized fault plans for every scheme
   in the default set (>= 3 schemes). Seeds are arbitrary but fixed so
   a regression names the exact seed to replay. *)
let invariants_default_schemes () =
  report_failures
    (Dst.run_seeds ~schemes:Dst.default_schemes ~seeds:[ 1; 2; 3; 4; 5 ] ())

(* The remaining known schemes get a lighter sweep. *)
let invariants_remaining_schemes () =
  let rest =
    List.filter (fun s -> not (List.mem s Dst.default_schemes)) Dst.all_schemes
  in
  report_failures (Dst.run_seeds ~schemes:rest ~seeds:[ 6; 7 ] ())

(* Container-overlay churn episodes (cold-start, serverless bursts,
   migration storms — the kind cycles with the seed) across >= 20
   seeds: conservation, stale-delivery, occupancy and churn-batch
   accounting must hold under sustained remapping pressure. *)
let churn_invariants () =
  report_failures (List.init 21 (fun seed -> Dst.run_churn ~seed ()))

(* A churn run is as replayable as a fault run. *)
let churn_replay_byte_identical () =
  let a = Dst.run_churn ~seed:7 () in
  let b = Dst.run_churn ~seed:7 () in
  Alcotest.(check string) "churn transcript replay" a.Dst.transcript
    b.Dst.transcript

(* Replaying a seed must reproduce the run byte-identically — this is
   what makes a printed failing seed actionable. *)
let replay_byte_identical () =
  List.iter
    (fun scheme ->
      let a = Dst.run_one ~seed:11 ~scheme () in
      let b = Dst.run_one ~seed:11 ~scheme () in
      Alcotest.(check string)
        (Printf.sprintf "transcript replay (%s)" scheme)
        a.Dst.transcript b.Dst.transcript)
    Dst.default_schemes

(* The two scheduler backends must be observationally identical: the
   same (seed, scheme) run under the heap oracle and the calendar
   wheel yields the same transcript byte-for-byte, including fault
   injection, churn, retransmit timers, and the executed-event count. *)
let backends_byte_identical () =
  List.iter
    (fun scheme ->
      List.iter
        (fun seed ->
          let h = Dst.run_one ~sched:Dessim.Engine.Heap ~seed ~scheme () in
          let w = Dst.run_one ~sched:Dessim.Engine.Wheel ~seed ~scheme () in
          Alcotest.(check string)
            (Printf.sprintf "heap vs wheel transcript (%s, seed %d)" scheme seed)
            h.Dst.transcript w.Dst.transcript)
        [ 2; 9 ])
    Dst.default_schemes

(* The plan embedded in an outcome round-trips through the textual
   form, so a transcript's plan line is a complete reproduction. *)
let plan_roundtrip () =
  let o = Dst.run_one ~seed:3 ~scheme:"nocache" () in
  let plan = Dessim.Fault.of_string_exn o.Dst.plan in
  Alcotest.(check string)
    "plan to_string/of_string round-trip" o.Dst.plan
    (Dessim.Fault.to_string plan)

let () =
  Alcotest.run "dst"
    [
      ( "invariants",
        [
          Alcotest.test_case "default schemes, seeds 1-5" `Quick
            invariants_default_schemes;
          Alcotest.test_case "remaining schemes, seeds 6-7" `Quick
            invariants_remaining_schemes;
          Alcotest.test_case "container churn episodes, seeds 0-20" `Quick
            churn_invariants;
        ] );
      ( "replay",
        [
          Alcotest.test_case "same seed, byte-identical transcript" `Quick
            replay_byte_identical;
          Alcotest.test_case "churn run, byte-identical transcript" `Quick
            churn_replay_byte_identical;
          Alcotest.test_case "heap vs wheel, byte-identical transcript" `Quick
            backends_byte_identical;
          Alcotest.test_case "plan text round-trip" `Quick plan_roundtrip;
        ] );
    ]
