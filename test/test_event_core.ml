(* Byte-identical determinism guard for the event core.

   Runs two seeded end-to-end scenarios and renders every observable
   output — metrics (including the full drops kind×site matrix),
   per-switch byte counters, scheme stats, transport counters, engine
   event counts and the structured-telemetry JSON — into one canonical
   text dump, compared byte-for-byte against a checked-in golden file.

   The golden file was generated from the closure-based event loop
   that predates the typed-event/packet-pool rewrite; any change to
   the event seq tiebreak order, an RNG draw, or packet field handling
   shows up here as a diff. Regenerate (only when an intentional
   semantic change occurs) with:

     REPRO_WRITE_GOLDEN=$PWD/test/golden_event_core.txt \
       dune exec test/test_event_core.exe *)

module Network = Netsim.Network
module Metrics = Netsim.Metrics
module Transport = Netsim.Transport
module Time_ns = Dessim.Time_ns
module Telemetry = Dessim.Telemetry
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Topology = Topo.Topology
module Params = Topo.Params

let golden_path = "golden_event_core.txt"

let addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

(* %h (hex float) is exact; no decimal rounding ambiguity. *)
let fl v = Printf.sprintf "%h" v

let dump_metrics b (m : Metrics.t) topo =
  addf b "flows_started=%d\n" (Metrics.flows_started m);
  addf b "flows_completed=%d\n" (Metrics.flows_completed m);
  addf b "packets_sent=%d\n" (Metrics.packets_sent m);
  addf b "gateway_packets=%d\n" (Metrics.gateway_packets m);
  addf b "packets_dropped=%d\n" (Metrics.packets_dropped m);
  addf b "delivered_packets=%d\n" (Metrics.delivered_packets m);
  addf b "retransmits=%d\n" (Metrics.retransmits_sent m);
  List.iter
    (fun (k, n) -> addf b "drops_by_kind/%s=%d\n" k n)
    (Metrics.drops_by_kind m);
  List.iter
    (fun (s, n) -> addf b "drops_by_site/%s=%d\n" s n)
    (Metrics.drops_by_site m);
  addf b "hit_rate=%s\n" (fl (Metrics.hit_rate m));
  let c, s, t, g, h = Metrics.layer_hits m in
  addf b "layer_hits=%d,%d,%d,%d,%d\n" c s t g h;
  let c, s, t, g, h = Metrics.first_packet_layer_hits m in
  addf b "fp_layer_hits=%d,%d,%d,%d,%d\n" c s t g h;
  addf b "mean_fct=%s\n" (fl (Metrics.mean_fct m));
  if Metrics.flows_completed m > 0 then begin
    addf b "fct_p50=%s\n" (fl (Metrics.fct_percentile m 50.0));
    addf b "fct_p99=%s\n" (fl (Metrics.fct_percentile m 99.0))
  end;
  addf b "mean_fpl=%s\n" (fl (Metrics.mean_first_packet_latency m));
  addf b "mean_pkt_latency=%s\n" (fl (Metrics.mean_packet_latency m));
  addf b "mean_stretch=%s\n" (fl (Metrics.mean_stretch m));
  addf b "misdelivered=%d\n" (Metrics.misdelivered_packets m);
  (match Metrics.last_misdelivered_arrival m with
  | Some t -> addf b "last_misdelivered_arrival=%d\n" t
  | None -> addf b "last_misdelivered_arrival=none\n");
  addf b "total_switch_bytes=%d\n" (Metrics.total_switch_bytes m);
  Array.iter
    (fun sw -> addf b "switch_bytes/%d=%d\n" sw (Metrics.bytes_of_switch m sw))
    (Topology.switches topo)

let dump_network b ~name net (scheme : Netsim.Scheme.t) =
  addf b "== scenario %s ==\n" name;
  dump_metrics b (Network.metrics net) (Network.topo net);
  let tr = Network.transport net in
  addf b "transport_completed=%d\n" (Transport.flows_completed tr);
  addf b "transport_reordering=%d\n" (Transport.reordering_events tr);
  List.iter
    (fun (k, v) -> addf b "scheme/%s=%s\n" k (fl v))
    (scheme.Netsim.Scheme.stats ());
  let eng = Network.engine net in
  addf b "engine_now=%d\n" (Dessim.Engine.now eng);
  addf b "engine_executed=%d\n" (Dessim.Engine.executed eng);
  addf b "engine_pending=%d\n" (Dessim.Engine.pending eng)

(* Scenario A: SwitchV2P on a small FatTree with slow host links and a
   low ECN step threshold (so DCTCP reacts to real CE marks), a Hadoop
   TCP workload, two VM migrations (misdelivery + invalidation paths)
   and full telemetry (histograms, series, flight recorder). *)
let scenario_switchv2p ~sched b =
  let params =
    {
      (Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2 ~vms_per_host:4
         ~host_link_bps:2e9 ())
      with
      ecn_threshold_bytes = Some 3000;
    }
  in
  let topo = Topology.build params in
  let slots = 16 * Array.length (Topology.switches topo) in
  let scheme, _dp =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:slots
  in
  let telemetry =
    Telemetry.create ~sample_interval:(Time_ns.of_us 500)
      ~flight_sample_every:8 ()
  in
  let config =
    {
      Network.default_config with
      transport_mode = Transport.Dctcp;
      telemetry;
      sched;
    }
  in
  let net = Network.create ~config topo ~scheme in
  let num_vms = Network.num_vms net in
  let agg_bps =
    float_of_int (Params.num_hosts params) *. params.Params.host_link_bps
  in
  let flows =
    Workloads.Tracegen.hadoop (Dessim.Rng.create 123) ~num_vms ~num_flows:60
      ~load:0.2 ~agg_bps
  in
  let hosts = Topology.hosts topo in
  let migrations =
    [
      { Network.at = Time_ns.of_ms 2; vip = Vip.of_int 8; to_host = hosts.(0) };
      { Network.at = Time_ns.of_ms 5; vip = Vip.of_int 1; to_host = hosts.(5) };
    ]
  in
  Network.run net flows ~migrations ~until:(Time_ns.of_ms 20);
  dump_network b ~name:"switchv2p" net scheme;
  let json =
    Telemetry.to_json telemetry
      ~manifest:(Telemetry.Json.Obj [ ("scenario", Telemetry.Json.Str "switchv2p-golden") ])
      ~extra:[]
  in
  addf b "telemetry=%s\n" (Telemetry.Json.to_string json)

(* Scenario B: gateway-only baseline under a UDP incast on 1G host
   links with 3-MTU buffers — guaranteed link_buffer drops (the
   packet-drop recycling path) and CE marks from a 1-MTU threshold. *)
let scenario_incast ~sched b =
  let params =
    {
      (Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2 ~vms_per_host:2
         ~host_link_bps:1e9 ~buffer_bytes:4500 ())
      with
      ecn_threshold_bytes = Some 1500;
    }
  in
  let topo = Topology.build params in
  let scheme = Schemes.Baselines.nocache () in
  let net =
    Network.create ~config:{ Network.default_config with Network.sched } topo
      ~scheme
  in
  let flows =
    Workloads.Tracegen.incast (Dessim.Rng.create 77)
      ~num_vms:(Network.num_vms net) ~senders:6 ~dst_vip:(Vip.of_int 0)
      ~packets_per_sender:40 ~packet_bytes:1500 ~duration:(Time_ns.of_us 10)
  in
  Network.run net flows ~migrations:[] ~until:(Time_ns.of_ms 10);
  dump_network b ~name:"incast" net scheme

(* Scenario C (separate golden file): a handcrafted fault plan
   exercising every fault kind on SwitchV2P — a bidirectional link
   down/up window (ECMP fallback), Bernoulli and Gilbert-Elliott loss
   windows, a one-shot corruption, a switch failure (cache wipe), a
   gateway outage window and a churn batch. Locks the typed fault
   events, the fault RNG stream and the recovery paths byte-for-byte.
   Regenerate with:

     REPRO_WRITE_GOLDEN_FAULTS=$PWD/test/golden_faults.txt \
       dune exec test/test_event_core.exe *)
let scenario_faults ~sched b =
  let module Fault = Dessim.Fault in
  let params =
    Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2 ~vms_per_host:2 ()
  in
  let topo = Topology.build params in
  let scheme, _dp =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:64
  in
  let net =
    Network.create
      ~config:{ Network.default_config with Network.seed = 4242; Network.sched }
      topo ~scheme
  in
  let pairs = Netsim.Faultplan.fabric_pairs topo in
  let a0, b0 = pairs.(0) and a1, b1 = pairs.(1) and a2, b2 = pairs.(2) in
  let sw0 = (Topology.switches topo).(0) in
  let gw = (Topology.gateways topo).(0) in
  let ms = Time_ns.of_ms in
  let spec at action = { Fault.at; action } in
  let plan =
    {
      Fault.seed = 2026;
      specs =
        Fault.sort_specs
          [|
            spec (ms 1) (Fault.Link_down (a0, b0));
            spec (ms 1) (Fault.Link_down (b0, a0));
            spec (ms 6) (Fault.Link_up (a0, b0));
            spec (ms 6) (Fault.Link_up (b0, a0));
            spec (ms 2) (Fault.Set_loss (a1, b1, Fault.Bernoulli 0.05));
            spec (ms 7) (Fault.Set_loss (a1, b1, Fault.No_loss));
            spec (ms 2)
              (Fault.Set_loss
                 ( a2,
                   b2,
                   Fault.Gilbert_elliott
                     {
                       Fault.p_enter_bad = 0.05;
                       p_exit_bad = 0.4;
                       loss_good = 0.0;
                       loss_bad = 0.5;
                     } ));
            spec (ms 8) (Fault.Set_loss (a2, b2, Fault.No_loss));
            spec (ms 3) (Fault.Corrupt_next (a1, b1));
            spec (ms 4) (Fault.Switch_fail sw0);
            spec (ms 5) (Fault.Gateway_down gw);
            spec (ms 9) (Fault.Gateway_up gw);
            spec (ms 5) (Fault.Churn 3);
          |];
    }
  in
  Network.install_faults net plan;
  let num_vms = Network.num_vms net in
  let flows =
    List.init 24 (fun id ->
        Flow.make ~pkt_bytes:1500 ~id
          ~src_vip:(Vip.of_int (id mod num_vms))
          ~dst_vip:(Vip.of_int (((id * 5) + 3) mod num_vms))
          ~size_bytes:(8 * 1500)
          ~start:(Time_ns.of_us (id * 250))
          Flow.Tcpish)
  in
  Network.run net flows ~migrations:[] ~until:(ms 30);
  dump_network b ~name:"faults" net scheme;
  addf b "plan=%s\n" (Fault.to_string plan);
  List.iter
    (fun (k, v) -> addf b "fault_count/%s=%d\n" k v)
    (Network.fault_counts net);
  addf b "injected=%d consumed=%d live=%d\n"
    (Network.injected_packets net)
    (Network.consumed_at_switch net)
    (Network.live_packets net)

let render ~sched () =
  let b = Buffer.create (1 lsl 16) in
  scenario_switchv2p ~sched b;
  scenario_incast ~sched b;
  Buffer.contents b

let render_faults ~sched () =
  let b = Buffer.create 4096 in
  scenario_faults ~sched b;
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la, y :: lb -> if String.equal x y then go (i + 1) la lb else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
  in
  go 1 la lb

let check_golden ~env_var ~path ~what got =
  match Sys.getenv_opt env_var with
  | Some out ->
      let oc = open_out_bin out in
      output_string oc got;
      close_out oc;
      Printf.printf "golden written to %s (%d bytes)\n" out (String.length got)
  | None ->
      let want = read_file path in
      if not (String.equal got want) then begin
        (match first_diff want got with
        | Some (line, w, g) ->
            Alcotest.failf
              "%s output diverged from golden at line %d:\n\
              \  golden: %s\n\
              \  got:    %s"
              what line w g
        | None -> Alcotest.fail "length mismatch with identical lines?")
      end

(* Both scheduler backends must reproduce the same golden bytes: the
   wheel's batched dispatch preserves exact (timestamp, seq) order, so
   the backend is unobservable from inside the simulation. *)
let test_byte_identical sched () =
  check_golden ~env_var:"REPRO_WRITE_GOLDEN" ~path:golden_path
    ~what:("event core/" ^ Dessim.Engine.sched_name sched)
    (render ~sched:(Some sched) ())

let test_faults_byte_identical sched () =
  check_golden ~env_var:"REPRO_WRITE_GOLDEN_FAULTS" ~path:"golden_faults.txt"
    ~what:("fault scenario/" ^ Dessim.Engine.sched_name sched)
    (render_faults ~sched:(Some sched) ())

let () =
  let case name f =
    List.map
      (fun sched ->
        Alcotest.test_case
          (Printf.sprintf "%s (%s)" name (Dessim.Engine.sched_name sched))
          `Quick (f sched))
      [ Dessim.Engine.Heap; Dessim.Engine.Wheel ]
  in
  Alcotest.run "event_core"
    [
      ( "determinism",
        case "byte-identical golden run" test_byte_identical
        @ case "byte-identical fault-plan run" test_faults_byte_identical );
    ]
