(* Tests for the direct-mapped cache, access-bit semantics, admission
   policies, the timestamp vector and the protocol configuration. *)

module Cache = Switchv2p.Cache
module Ts_vector = Switchv2p.Ts_vector
module Config = Switchv2p.Config
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let vip = Vip.of_int
let pip = Pip.of_int

(* Find two VIPs that collide in the same slot, and one that does not
   collide with the first. *)
let colliding_pair cache =
  let slot_of v =
    ignore (Cache.insert cache ~admission:`All (vip v) (pip v));
    let r = Cache.peek cache (vip v) <> None in
    ignore (Cache.invalidate cache (vip v) ~stale:(pip v));
    r
  in
  ignore slot_of;
  (* Brute force: insert v0, find v that evicts it. *)
  let rec find v =
    if v > 100_000 then Alcotest.fail "no collision found"
    else begin
      let c = Cache.create ~slots:Cache.(slots cache) in
      ignore (Cache.insert c ~admission:`All (vip 0) (pip 100));
      match Cache.insert c ~admission:`All (vip v) (pip 200) with
      | Cache.Inserted (Some (e, _)) when Vip.to_int e = 0 -> v
      | _ -> find (v + 1)
    end
  in
  find 1

let test_lookup_after_insert () =
  let c = Cache.create ~slots:64 in
  (match Cache.insert c ~admission:`All (vip 1) (pip 10) with
  | Cache.Inserted None -> ()
  | _ -> Alcotest.fail "expected clean insert");
  let r = Cache.lookup c (vip 1) in
  checkb "hit" true (r <> Cache.miss);
  checki "value" 10 (Pip.to_int (Cache.hit_pip r));
  checkb "fresh entry bit clear" false (Cache.hit_bit r)

let test_access_bit_set_on_hit () =
  let c = Cache.create ~slots:64 in
  ignore (Cache.insert c ~admission:`All (vip 1) (pip 10));
  checkb "bit starts clear" false (Option.get (Cache.access_bit c (vip 1)));
  ignore (Cache.lookup c (vip 1));
  checkb "bit set after hit" true (Option.get (Cache.access_bit c (vip 1)));
  let r = Cache.lookup c (vip 1) in
  checkb "hit" true (r <> Cache.miss);
  checkb "second hit sees bit" true (Cache.hit_bit r)

let test_conflict_miss_clears_bit () =
  let c = Cache.create ~slots:8 in
  let v2 = colliding_pair c in
  ignore (Cache.insert c ~admission:`All (vip 0) (pip 10));
  ignore (Cache.lookup c (vip 0));
  checkb "bit set" true (Option.get (Cache.access_bit c (vip 0)));
  (* A conflicting lookup misses and clears the occupant's bit. *)
  checkb "conflict misses" true (Cache.lookup c (vip v2) = Cache.miss);
  checkb "occupant bit cleared" false (Option.get (Cache.access_bit c (vip 0)))

let test_admission_all_evicts () =
  let c = Cache.create ~slots:8 in
  let v2 = colliding_pair c in
  ignore (Cache.insert c ~admission:`All (vip 0) (pip 10));
  ignore (Cache.lookup c (vip 0));
  (* Even with the bit set, `All admits and reports the eviction. *)
  (match Cache.insert c ~admission:`All (vip v2) (pip 20) with
  | Cache.Inserted (Some (e, p)) ->
      checki "evicted key" 0 (Vip.to_int e);
      checki "evicted value" 10 (Pip.to_int p)
  | _ -> Alcotest.fail "expected eviction");
  checkb "old gone" true (Cache.peek c (vip 0) = None);
  checkb "new present" true (Cache.peek c (vip v2) <> None)

let test_admission_conservative_respects_bit () =
  let c = Cache.create ~slots:8 in
  let v2 = colliding_pair c in
  ignore (Cache.insert c ~admission:`All (vip 0) (pip 10));
  ignore (Cache.lookup c (vip 0));
  (* Occupant bit is set: conservative admission refuses. *)
  (match Cache.insert c ~admission:`A_bit_clear (vip v2) (pip 20) with
  | Cache.Rejected -> ()
  | _ -> Alcotest.fail "expected rejection");
  (* After a conflicting lookup clears the bit, admission succeeds. *)
  ignore (Cache.lookup c (vip v2));
  (match Cache.insert c ~admission:`A_bit_clear (vip v2) (pip 20) with
  | Cache.Inserted (Some _) -> ()
  | _ -> Alcotest.fail "expected admitted with eviction");
  checkb "replaced" true (Cache.peek c (vip v2) <> None)

let test_update_in_place () =
  let c = Cache.create ~slots:8 in
  ignore (Cache.insert c ~admission:`All (vip 1) (pip 10));
  (match Cache.insert c ~admission:`All (vip 1) (pip 99) with
  | Cache.Updated -> ()
  | _ -> Alcotest.fail "expected update");
  checki "new value" 99 (Pip.to_int (Option.get (Cache.peek c (vip 1))));
  checki "occupancy still 1" 1 (Cache.occupancy c)

let test_invalidate_matching_only () =
  let c = Cache.create ~slots:8 in
  ignore (Cache.insert c ~admission:`All (vip 1) (pip 10));
  checkb "wrong stale is a no-op" false (Cache.invalidate c (vip 1) ~stale:(pip 11));
  checkb "entry survives" true (Cache.peek c (vip 1) <> None);
  checkb "matching stale removes" true (Cache.invalidate c (vip 1) ~stale:(pip 10));
  checkb "entry gone" true (Cache.peek c (vip 1) = None);
  checki "occupancy zero" 0 (Cache.occupancy c)

let test_zero_slot_cache () =
  let c = Cache.create ~slots:0 in
  checkb "lookup misses" true (Cache.lookup c (vip 1) = Cache.miss);
  (match Cache.insert c ~admission:`All (vip 1) (pip 1) with
  | Cache.Rejected -> ()
  | _ -> Alcotest.fail "zero-slot insert must reject");
  checkb "invalidate no-op" false (Cache.invalidate c (vip 1) ~stale:(pip 1));
  checki "misses counted" 1 (Cache.misses c)

let test_negative_slots_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Cache.create: negative slots")
    (fun () -> ignore (Cache.create ~slots:(-1)))

let test_clear () =
  let c = Cache.create ~slots:16 in
  ignore (Cache.insert c ~admission:`All (vip 1) (pip 10));
  ignore (Cache.insert c ~admission:`All (vip 2) (pip 20));
  ignore (Cache.lookup c (vip 1));
  Cache.clear c;
  checki "empty" 0 (Cache.occupancy c);
  checkb "entries gone" true (Cache.peek c (vip 1) = None && Cache.peek c (vip 2) = None);
  checkb "stats preserved" true (Cache.hits c = 1);
  (* The cache keeps working after a wipe. *)
  ignore (Cache.insert c ~admission:`All (vip 3) (pip 30));
  checkb "usable after clear" true (Cache.peek c (vip 3) <> None)

let test_stats_counters () =
  let c = Cache.create ~slots:16 in
  ignore (Cache.lookup c (vip 1));
  ignore (Cache.insert c ~admission:`All (vip 1) (pip 1));
  ignore (Cache.lookup c (vip 1));
  checki "hits" 1 (Cache.hits c);
  checki "misses" 1 (Cache.misses c);
  checki "insertions" 1 (Cache.insertions c);
  checki "evictions" 0 (Cache.evictions c)

(* QCheck: model-based test of the direct-mapped cache against a
   reference map keyed by slot. *)
let cache_model_qcheck =
  let open QCheck in
  Test.make ~name:"cache agrees with slot-model" ~count:300
    (list (pair (int_bound 200) (int_bound 1000)))
    (fun ops ->
      let slots = 16 in
      let c = Cache.create ~slots in
      (* Model: slot -> (vip, pip) using the same hash by observation:
         we learn each vip's slot from collisions with a probe. *)
      let model : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
      let slot_of v =
        (* Mirror of the cache's mix hash. *)
        let z = Int64.of_int (v * 0x9E3779B9) in
        let z =
          Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
        in
        Int64.to_int (Int64.shift_right_logical z 33) mod slots
      in
      List.for_all
        (fun (v, p) ->
          ignore (Cache.insert c ~admission:`All (vip v) (pip p));
          Hashtbl.replace model (slot_of v) (v, p);
          (* Every modeled entry must be peekable with the right value. *)
          Hashtbl.fold
            (fun _slot (mv, mp) acc ->
              acc
              &&
              match Cache.peek c (vip mv) with
              | Some got -> Pip.to_int got = mp
              | None -> false)
            model true)
        ops)

let occupancy_qcheck =
  let open QCheck in
  Test.make ~name:"occupancy never exceeds slots" ~count:200
    (list (int_bound 10_000))
    (fun vs ->
      let c = Cache.create ~slots:8 in
      List.iter (fun v -> ignore (Cache.insert c ~admission:`All (vip v) (pip v))) vs;
      Cache.occupancy c <= 8)

(* --- Assoc_cache --- *)

module Assoc = Switchv2p.Assoc_cache

let test_assoc_basic () =
  let c = Assoc.create ~ways:2 ~slots:8 in
  checki "slots" 8 (Assoc.slots c);
  checki "ways" 2 (Assoc.ways c);
  Assoc.insert c (vip 1) (pip 10);
  checkb "hit" true (Assoc.lookup c (vip 1) = 10);
  checkb "miss" true (Assoc.lookup c (vip 2) = Assoc.miss);
  checki "hits" 1 (Assoc.hits c);
  checki "misses" 1 (Assoc.misses c)

let test_assoc_update_in_place () =
  let c = Assoc.create ~ways:2 ~slots:8 in
  Assoc.insert c (vip 1) (pip 10);
  Assoc.insert c (vip 1) (pip 99);
  checkb "updated" true (Assoc.lookup c (vip 1) = 99);
  checki "occupancy" 1 (Assoc.occupancy c)

let test_assoc_lru_eviction () =
  (* Fully associative, 2 lines: the least recently used line goes. *)
  let c = Assoc.create ~ways:2 ~slots:2 in
  Assoc.insert c (vip 1) (pip 1);
  Assoc.insert c (vip 2) (pip 2);
  ignore (Assoc.lookup c (vip 1)) (* 1 is now the most recent *);
  Assoc.insert c (vip 3) (pip 3) (* evicts 2 *);
  checkb "recent survives" true (Assoc.lookup c (vip 1) <> Assoc.miss);
  checkb "lru evicted" true (Assoc.lookup c (vip 2) = Assoc.miss);
  checkb "new present" true (Assoc.lookup c (vip 3) <> Assoc.miss)

let test_assoc_validation () =
  Alcotest.check_raises "ways must divide"
    (Invalid_argument "Assoc_cache.create: ways must divide slots") (fun () ->
      ignore (Assoc.create ~ways:3 ~slots:8));
  Alcotest.check_raises "zero ways"
    (Invalid_argument "Assoc_cache.create: ways must be positive") (fun () ->
      ignore (Assoc.create ~ways:0 ~slots:8))

let test_assoc_zero_slots () =
  let c = Assoc.create ~ways:1 ~slots:0 in
  checkb "always miss" true (Assoc.lookup c (vip 1) = Assoc.miss);
  Assoc.insert c (vip 1) (pip 1);
  checkb "insert no-op" true (Assoc.lookup c (vip 1) = Assoc.miss)

(* Fully-associative cache agrees with a reference LRU model. *)
let assoc_lru_model_qcheck =
  QCheck.Test.make ~name:"fully-assoc agrees with reference LRU" ~count:200
    QCheck.(list (pair bool (int_bound 20)))
    (fun ops ->
      let capacity = 4 in
      let c = Assoc.create ~ways:capacity ~slots:capacity in
      (* Reference: association list, most recent first. *)
      let model = ref [] in
      let model_lookup k =
        match List.assoc_opt k !model with
        | Some v ->
            model := (k, v) :: List.remove_assoc k !model;
            Some v
        | None -> None
      in
      let model_insert k v =
        let without = List.remove_assoc k !model in
        let trimmed =
          if List.length without >= capacity then
            List.filteri (fun i _ -> i < capacity - 1) without
          else without
        in
        model := (k, v) :: trimmed
      in
      List.for_all
        (fun (is_insert, k) ->
          if is_insert then begin
            Assoc.insert c (vip k) (pip k);
            model_insert k k;
            true
          end
          else
            let got = Assoc.lookup c (vip k) in
            let expect = model_lookup k in
            (match expect with
            | Some e -> got = e
            | None -> got = Assoc.miss))
        ops)

(* A 1-way set-associative cache is the direct-mapped cache: both use
   the same mix hash over the same number of sets, so on any op stream
   every lookup's hit/miss outcome (and hit value), every insert's
   occupancy delta (the eviction sequence), and the running counters
   must agree. *)
let assoc_ways1_equiv_direct_qcheck =
  QCheck.Test.make ~name:"1-way assoc equals direct-mapped" ~count:300
    QCheck.(list (pair bool (pair (int_bound 200) (int_bound 1000))))
    (fun ops ->
      let slots = 16 in
      let dm = Cache.create ~slots in
      let ac = Assoc.create ~ways:1 ~slots in
      List.for_all
        (fun (is_insert, (k, v)) ->
          if is_insert then begin
            let occ_before = Assoc.occupancy ac in
            let r = Cache.insert dm ~admission:`All (vip k) (pip v) in
            Assoc.insert ac (vip k) (pip v);
            let delta = Assoc.occupancy ac - occ_before in
            match r with
            | Cache.Inserted None -> delta = 1
            | Cache.Inserted (Some _) | Cache.Updated -> delta = 0
            | Cache.Rejected -> false
          end
          else begin
            let rd = Cache.lookup dm (vip k) in
            let ra = Assoc.lookup ac (vip k) in
            (if rd = Cache.miss then ra = Assoc.miss
             else ra <> Assoc.miss && Pip.to_int (Cache.hit_pip rd) = ra)
            && Cache.hits dm = Assoc.hits ac
            && Cache.misses dm = Assoc.misses ac
            && Cache.occupancy dm = Assoc.occupancy ac
          end)
        ops)

(* --- Ts_vector --- *)

let test_ts_vector_suppression () =
  let v = Ts_vector.create ~num_switches:4 ~base_rtt:(Dessim.Time_ns.of_us 12) () in
  checkb "first send allowed" true (Ts_vector.should_send v ~switch:1 ~now:0);
  checkb "burst suppressed" false
    (Ts_vector.should_send v ~switch:1 ~now:(Dessim.Time_ns.of_us 5));
  checkb "other switch unaffected" true
    (Ts_vector.should_send v ~switch:2 ~now:(Dessim.Time_ns.of_us 5));
  checkb "after rtt allowed" true
    (Ts_vector.should_send v ~switch:1 ~now:(Dessim.Time_ns.of_us 13));
  checki "suppressed count" 1 (Ts_vector.suppressed v)

let test_ts_vector_retransmit_window () =
  let v = Ts_vector.create ~num_switches:2 ~base_rtt:(Dessim.Time_ns.of_us 12) () in
  ignore (Ts_vector.should_send v ~switch:0 ~now:0);
  (* Exactly at base RTT the packet may be resent (covers drops). *)
  checkb "at rtt boundary" true
    (Ts_vector.should_send v ~switch:0 ~now:(Dessim.Time_ns.of_us 12))

(* --- Config --- *)

let test_config_default () =
  let c = Config.default in
  checkb "learning on" true c.Config.learning_packets;
  checkb "spill on" true c.Config.spillover;
  checkb "promotion on" true c.Config.promotion;
  checkb "invalidations on" true c.Config.invalidations;
  checkb "ts vector on" true c.Config.ts_vector;
  checkb "uniform allocation" true (c.Config.allocation = Config.Uniform);
  Alcotest.check (Alcotest.float 1e-9) "p_learn" 0.005 c.Config.p_learn

let test_config_overrides () =
  let c = Config.make ~p_learn:0.1 ~spillover:false ~tor_only:true () in
  Alcotest.check (Alcotest.float 1e-9) "p_learn" 0.1 c.Config.p_learn;
  checkb "spill off" false c.Config.spillover;
  checkb "tor only shorthand" true (c.Config.allocation = Config.Tor_only);
  checkb "others default" true c.Config.learning_packets;
  let w =
    Config.make
      ~allocation:
        (Config.Weighted
           { tor = 2.0; spine = 1.0; core = 0.5; gw_tor = 2.0; gw_spine = 1.0 })
      ()
  in
  checkb "weighted allocation kept" true
    (match w.Config.allocation with Config.Weighted _ -> true | _ -> false)

let () =
  Alcotest.run "switchv2p-cache"
    [
      ( "cache",
        [
          Alcotest.test_case "lookup after insert" `Quick test_lookup_after_insert;
          Alcotest.test_case "access bit on hit" `Quick test_access_bit_set_on_hit;
          Alcotest.test_case "conflict clears bit" `Quick test_conflict_miss_clears_bit;
          Alcotest.test_case "admit-all evicts" `Quick test_admission_all_evicts;
          Alcotest.test_case "conservative admission" `Quick test_admission_conservative_respects_bit;
          Alcotest.test_case "update in place" `Quick test_update_in_place;
          Alcotest.test_case "invalidate matching only" `Quick test_invalidate_matching_only;
          Alcotest.test_case "zero-slot cache" `Quick test_zero_slot_cache;
          Alcotest.test_case "negative slots" `Quick test_negative_slots_rejected;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          QCheck_alcotest.to_alcotest cache_model_qcheck;
          QCheck_alcotest.to_alcotest occupancy_qcheck;
        ] );
      ( "assoc_cache",
        [
          Alcotest.test_case "basic" `Quick test_assoc_basic;
          Alcotest.test_case "update in place" `Quick test_assoc_update_in_place;
          Alcotest.test_case "lru eviction" `Quick test_assoc_lru_eviction;
          Alcotest.test_case "validation" `Quick test_assoc_validation;
          Alcotest.test_case "zero slots" `Quick test_assoc_zero_slots;
          QCheck_alcotest.to_alcotest assoc_lru_model_qcheck;
          QCheck_alcotest.to_alcotest assoc_ways1_equiv_direct_qcheck;
        ] );
      ( "ts_vector",
        [
          Alcotest.test_case "suppression" `Quick test_ts_vector_suppression;
          Alcotest.test_case "retransmit window" `Quick test_ts_vector_retransmit_window;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_default;
          Alcotest.test_case "overrides" `Quick test_config_overrides;
        ] );
    ]
