(* Tests for topology construction, roles, links, and ECMP routing. *)

module Params = Topo.Params
module Topology = Topo.Topology
module Node = Topo.Node
module Routing = Topo.Routing
module Link = Topo.Link
module Time_ns = Dessim.Time_ns

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small () =
  Topology.build
    (Params.scaled ~pods:4 ~racks_per_pod:3 ~hosts_per_rack:2 ~vms_per_host:4 ())

let test_ft8_preset () =
  let p = Params.ft8_10k () in
  Params.validate p;
  checki "switches" 80 (Params.num_switches p);
  (* 4 gateway pods sacrifice one rack each: (32-4) racks x 4 hosts. *)
  checki "hosts" 112 (Params.num_hosts p);
  checki "vms" (112 * 80) (Params.num_vms p);
  checki "base rtt us" 12 (Time_ns.to_ns (Params.base_rtt p) / 1000)

let test_ft16_preset () =
  let p = Params.ft16_400k () in
  Params.validate p;
  checki "tors" 400 (p.Params.pods * p.Params.racks_per_pod);
  checki "cores" 16 (p.Params.spines_per_pod * p.Params.cores_per_group)

let test_params_validation () =
  let base = Params.ft8_10k () in
  Alcotest.check_raises "no gateway pods"
    (Invalid_argument "Params.validate: at least one gateway pod is required")
    (fun () -> Params.validate { base with Params.gateway_pods = [] });
  Alcotest.check_raises "gateway pod out of range"
    (Invalid_argument "Params.validate: gateway pod out of range") (fun () ->
      Params.validate { base with Params.gateway_pods = [ 99 ] });
  Alcotest.check_raises "duplicate gateway pods"
    (Invalid_argument "Params.validate: duplicate gateway pods") (fun () ->
      Params.validate { base with Params.gateway_pods = [ 1; 1 ] })

let test_build_counts () =
  let t = small () in
  let p = Topology.params t in
  checki "tors" (4 * 3) (Array.length (Topology.tors t));
  checki "spines" (4 * 2) (Array.length (Topology.spines t));
  checki "cores" (2 * 2) (Array.length (Topology.cores t));
  checki "switch total" (Params.num_switches p) (Array.length (Topology.switches t));
  checki "hosts" (Params.num_hosts p) (Array.length (Topology.hosts t));
  (* Gateways in pods 0 and 2. *)
  checki "gateways" 4 (Array.length (Topology.gateways t))

let test_roles () =
  let t = small () in
  let count role =
    Array.fold_left
      (fun acc sw -> if Topology.role t sw = role then acc + 1 else acc)
      0 (Topology.switches t)
  in
  checki "gateway tors" 2 (count Node.Gateway_tor);
  checki "regular tors" 10 (count Node.Regular_tor);
  checki "gateway spines" 4 (count Node.Gateway_spine);
  checki "regular spines" 4 (count Node.Regular_spine);
  checki "cores" 4 (count Node.Core_switch)

let test_gateway_tor_hosts_only_gateways () =
  let t = small () in
  Array.iter
    (fun gw ->
      let tor = Topology.tor_of t gw in
      checkb "gateway attaches to a gateway ToR" true
        (Topology.role t tor = Node.Gateway_tor))
    (Topology.gateways t)

let test_endpoint_tor_symmetry () =
  let t = small () in
  Array.iter
    (fun tor ->
      Array.iter
        (fun ep -> checki "tor_of inverse" tor (Topology.tor_of t ep))
        (Topology.endpoints_of_tor t tor))
    (Topology.tors t)

let test_links_bidirectional () =
  let t = small () in
  Topology.iter_links t (fun l ->
      let back = Topology.link t ~src:l.Link.dst ~dst:l.Link.src in
      checki "reverse link exists" l.Link.src back.Link.dst)

let test_link_rates () =
  let t = small () in
  let host = (Topology.hosts t).(0) in
  let tor = Topology.tor_of t host in
  let l = Topology.link t ~src:host ~dst:tor in
  checkb "host link rate" true (l.Link.rate_bps = 100e9);
  let spine = Topology.spine_id t ~pod:0 ~group:0 in
  let l2 = Topology.link t ~src:tor ~dst:spine in
  checkb "fabric link rate" true (l2.Link.rate_bps = 400e9)

let test_routing_all_pairs () =
  let t = small () in
  let hosts = Topology.hosts t in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            let path = Routing.path t ~src ~dst ~salt:7 in
            checkb "starts at src" true (List.hd path = src);
            checkb "ends at dst" true (List.nth path (List.length path - 1) = dst);
            checkb "path length sane" true (List.length path <= 8)
          end)
        hosts)
    hosts

let test_routing_hop_counts () =
  let t = small () in
  (* Same rack: host-tor-host = 2 hops. *)
  let tor0 = (Topology.tors t).(0) in
  let eps = Topology.endpoints_of_tor t tor0 in
  checki "same rack" 2 (Routing.hop_count t ~src:eps.(0) ~dst:eps.(1) ~salt:1);
  (* Same pod, different rack: host-tor-spine-tor-host = 4 hops. *)
  let tor1 = Topology.tor_id t ~pod:0 ~rack:1 in
  let eps1 = Topology.endpoints_of_tor t tor1 in
  checki "same pod" 4 (Routing.hop_count t ~src:eps.(0) ~dst:eps1.(0) ~salt:1);
  (* Cross pod: 6 hops via core. *)
  let tor_far = Topology.tor_id t ~pod:1 ~rack:0 in
  let eps_far = Topology.endpoints_of_tor t tor_far in
  checki "cross pod" 6 (Routing.hop_count t ~src:eps.(0) ~dst:eps_far.(0) ~salt:1)

let test_routing_to_switches () =
  let t = small () in
  let host = (Topology.hosts t).(0) in
  Array.iter
    (fun sw ->
      let path = Routing.path t ~src:host ~dst:sw ~salt:3 in
      checkb "reaches switch" true (List.nth path (List.length path - 1) = sw))
    (Topology.switches t)

let test_routing_cross_pod_transits_core () =
  let t = small () in
  let src = (Topology.endpoints_of_tor t (Topology.tor_id t ~pod:0 ~rack:0)).(0) in
  let dst = (Topology.endpoints_of_tor t (Topology.tor_id t ~pod:3 ~rack:0)).(0) in
  let path = Routing.path t ~src ~dst ~salt:11 in
  let transits_core =
    List.exists
      (fun n ->
        match Topology.kind t n with Node.Core _ -> true | _ -> false)
      path
  in
  checkb "goes via core" true transits_core

let test_routing_ecmp_spreads () =
  let t = small () in
  let src = (Topology.endpoints_of_tor t (Topology.tor_id t ~pod:0 ~rack:0)).(0) in
  let dst = (Topology.endpoints_of_tor t (Topology.tor_id t ~pod:1 ~rack:0)).(0) in
  let spines_seen = Hashtbl.create 4 in
  for salt = 0 to 63 do
    let path = Routing.path t ~src ~dst ~salt in
    List.iter
      (fun n ->
        match Topology.kind t n with
        | Node.Spine { pod = 0; group; _ } -> Hashtbl.replace spines_seen group ()
        | _ -> ())
      path
  done;
  checkb "multiple uplink spines used" true (Hashtbl.length spines_seen > 1)

let test_routing_deterministic_per_salt () =
  let t = small () in
  let src = (Topology.hosts t).(0) and dst = (Topology.hosts t).(15) in
  let p1 = Routing.path t ~src ~dst ~salt:5 in
  let p2 = Routing.path t ~src ~dst ~salt:5 in
  checkb "same salt same path" true (p1 = p2)

let test_single_pod_topology () =
  let t =
    Topology.build
      (Params.scaled ~pods:1 ~racks_per_pod:4 ~hosts_per_rack:2 ~vms_per_host:2 ())
  in
  checki "no cores" 0 (Array.length (Topology.cores t));
  (* One rack hosts the gateways: 3 server racks x 2 hosts. *)
  let hosts = Topology.hosts t in
  checki "hosts" 6 (Array.length hosts);
  let hops = Routing.hop_count t ~src:hosts.(0) ~dst:hosts.(5) ~salt:1 in
  checki "intra-pod max 4 hops" 4 hops

let test_link_transmit_model () =
  let l =
    Link.make ~ecn_threshold:None ~src:0 ~dst:1 ~rate_bps:100e9
      ~prop_delay:(Time_ns.of_us 1) ~buffer_bytes:4500
  in
  (* First packet: ser 120ns + prop 1000ns. *)
  (match Link.transmit l ~now:0 ~bytes:1500 with
  | Some tx -> checki "first arrival" 1120 tx.Link.arrival
  | None -> Alcotest.fail "unexpected drop");
  (* Second packet queues behind the first. *)
  (match Link.transmit l ~now:0 ~bytes:1500 with
  | Some tx -> checki "second arrival" 1240 tx.Link.arrival
  | None -> Alcotest.fail "unexpected drop");
  (* Third fills the buffer (4500B). *)
  (match Link.transmit l ~now:0 ~bytes:1500 with
  | Some _ -> ()
  | None -> Alcotest.fail "third should fit");
  (* Fourth overflows. *)
  (match Link.transmit l ~now:0 ~bytes:1500 with
  | Some _ -> Alcotest.fail "should drop"
  | None -> ());
  checki "one drop" 1 l.Link.drops;
  Link.delivered l ~bytes:1500;
  checki "occupancy released" 3000 l.Link.queued_bytes

let test_link_idle_restart () =
  let l =
    Link.make ~ecn_threshold:None ~src:0 ~dst:1 ~rate_bps:100e9
      ~prop_delay:(Time_ns.of_us 1) ~buffer_bytes:1_000_000
  in
  ignore (Link.transmit l ~now:0 ~bytes:1500);
  Link.delivered l ~bytes:1500;
  (* After idle, transmission starts at now, not at old busy_until. *)
  match Link.transmit l ~now:1_000_000 ~bytes:1500 with
  | Some tx -> checki "idle restart" 1_001_120 tx.Link.arrival
  | None -> Alcotest.fail "unexpected drop"

let test_link_ecn_marking () =
  let l =
    Link.make ~ecn_threshold:(Some 3000) ~src:0 ~dst:1 ~rate_bps:100e9
      ~prop_delay:(Time_ns.of_us 1) ~buffer_bytes:1_000_000
  in
  let marked () =
    match Link.transmit l ~now:0 ~bytes:1500 with
    | Some tx -> tx.Link.ce_marked
    | None -> Alcotest.fail "unexpected drop"
  in
  checkb "queue 0: clean" false (marked ());
  checkb "queue 1500: clean" false (marked ());
  checkb "queue 3000: clean (threshold not exceeded)" false (marked ());
  checkb "queue 4500: marked" true (marked ());
  checki "marks counted" 1 l.Link.marked;
  (* Draining the queue stops the marking. *)
  for _ = 1 to 4 do Link.delivered l ~bytes:1500 done;
  checkb "drained: clean" false (marked ())

let switch_pair_routing_qcheck =
  QCheck.Test.make ~name:"switch-to-switch routing terminates" ~count:200
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, salt) ->
      let t = small () in
      let switches = Topology.switches t in
      let src = switches.(a mod Array.length switches) in
      let dst = switches.(b mod Array.length switches) in
      let is_core id =
        match Topology.kind t id with Node.Core _ -> true | _ -> false
      in
      (* Core-to-core is documented as not routable ([next_hop] raises);
         every other switch pair must terminate. *)
      src = dst
      || (is_core src && is_core dst)
      ||
      let path = Routing.path t ~src ~dst ~salt in
      List.nth path (List.length path - 1) = dst && List.length path <= 10)

(* The table-based [next_hop] must agree with the coordinate-computed
   oracle at every (at, dst, salt), over every node kind. Core-to-core
   and at = dst are the two argument combinations both reject. *)
let next_hop_table_vs_oracle_qcheck =
  QCheck.Test.make ~name:"next_hop table agrees with oracle" ~count:1000
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, salt) ->
      let t = small () in
      let n = Topology.num_nodes t in
      let at = a mod n in
      let dst = b mod n in
      let is_core id =
        match Topology.kind t id with Node.Core _ -> true | _ -> false
      in
      at = dst
      || (is_core at && is_core dst)
      || Routing.next_hop t ~at ~dst ~salt
         = Routing.next_hop_oracle t ~at ~dst ~salt)

(* --- CSR adjacency vs a coordinate-derived Hashtbl oracle --- *)

(* Rebuild the expected adjacency purely from FatTree coordinates
   (endpoint <-> its ToR, ToR <-> every pod spine, spine g <-> every
   group-g core) into a hashtable — the representation the production
   code no longer uses — and check the CSR accessors against it. *)
let oracle_adjacency t =
  let tbl = Hashtbl.create 1024 in
  let add a b =
    Hashtbl.replace tbl (a, b) ();
    Hashtbl.replace tbl (b, a) ()
  in
  let p = Topology.params t in
  Array.iter
    (fun tor ->
      Array.iter (fun ep -> add ep tor) (Topology.endpoints_of_tor t tor))
    (Topology.tors t);
  for pod = 0 to p.Params.pods - 1 do
    for rack = 0 to p.Params.racks_per_pod - 1 do
      let tor = Topology.tor_id t ~pod ~rack in
      for group = 0 to p.Params.spines_per_pod - 1 do
        add tor (Topology.spine_id t ~pod ~group)
      done
    done
  done;
  for group = 0 to p.Params.spines_per_pod - 1 do
    for idx = 0 to p.Params.cores_per_group - 1 do
      let core = Topology.core_id t ~group ~idx in
      for pod = 0 to p.Params.pods - 1 do
        add (Topology.spine_id t ~pod ~group) core
      done
    done
  done;
  tbl

let csr_vs_oracle_qcheck =
  QCheck.Test.make ~name:"CSR link/neighbors/uplinks agree with oracle"
    ~count:12
    QCheck.(
      quad (int_range 1 4) (int_range 2 4) (int_range 1 3) (int_range 1 3))
    (fun (pods, racks_per_pod, hosts_per_rack, spines_per_pod) ->
      let t =
        Topology.build
          (Params.scaled ~pods ~racks_per_pod ~hosts_per_rack ~spines_per_pod
             ~vms_per_host:2 ())
      in
      let p = Topology.params t in
      let n = Topology.num_nodes t in
      let oracle = Hashtbl.copy (oracle_adjacency t) in
      (* Directed-edge count matches the oracle exactly. *)
      if Topology.num_links t <> Hashtbl.length oracle then
        QCheck.Test.fail_reportf "num_links %d <> oracle %d"
          (Topology.num_links t) (Hashtbl.length oracle);
      (* Every oracle edge resolves to a correctly-oriented link... *)
      Hashtbl.iter
        (fun (src, dst) () ->
          let l = Topology.link t ~src ~dst in
          if l.Link.src <> src || l.Link.dst <> dst then
            QCheck.Test.fail_reportf "link %d->%d carries %d->%d" src dst
              l.Link.src l.Link.dst)
        oracle;
      (* ...and every node's CSR row is exactly the oracle's neighbor
         set, sorted ascending. *)
      for id = 0 to n - 1 do
        let nbrs = Topology.neighbors t id in
        Array.iteri
          (fun i d ->
            if i > 0 && nbrs.(i - 1) >= d then
              QCheck.Test.fail_reportf "neighbors of %d not sorted" id;
            if not (Hashtbl.mem oracle (id, d)) then
              QCheck.Test.fail_reportf "CSR edge %d->%d not in oracle" id d)
          nbrs;
        let deg =
          Hashtbl.fold
            (fun (s, _) () acc -> if s = id then acc + 1 else acc)
            oracle 0
        in
        if Array.length nbrs <> deg then
          QCheck.Test.fail_reportf "degree of %d: CSR %d oracle %d" id
            (Array.length nbrs) deg;
        (* Non-adjacent lookups raise, including self-loops. *)
        (match Topology.link t ~src:id ~dst:id with
        | exception Not_found -> ()
        | _ -> QCheck.Test.fail_reportf "self-link %d did not raise" id);
        (* Uplink rows come straight from coordinates. *)
        let expected_uplinks =
          match Topology.kind t id with
          | Node.Tor { pod; _ } ->
              Array.init p.Params.spines_per_pod (fun group ->
                  Topology.spine_id t ~pod ~group)
          | Node.Spine { group; _ } ->
              Array.init p.Params.cores_per_group (fun idx ->
                  Topology.core_id t ~group ~idx)
          | Node.Host _ | Node.Gateway _ | Node.Core _ -> [||]
        in
        if Topology.uplinks t id <> expected_uplinks then
          QCheck.Test.fail_reportf "uplinks of %d wrong" id
      done;
      (* Out-of-range sources raise rather than reading wild memory
         (lib/topo compiles with -unsafe; [link] guards explicitly). *)
      (match Topology.link t ~src:(-1) ~dst:0 with
      | exception Not_found -> ()
      | _ -> QCheck.Test.fail_report "src -1 did not raise");
      (match Topology.link t ~src:n ~dst:0 with
      | exception Not_found -> ()
      | _ -> QCheck.Test.fail_report "src n did not raise");
      true)

(* The FT16-400K preset used to silently fall off the dense-table fast
   path (n > 1024); route it for real against the coordinate oracle. *)
let ft16 = lazy (Topology.build (Params.ft16_400k ()))

let ft16_next_hop_qcheck =
  QCheck.Test.make ~name:"FT16-400K next_hop agrees with oracle" ~count:500
    QCheck.(triple (int_bound 1_000_000) (int_bound 1_000_000) small_nat)
    (fun (a, b, salt) ->
      let t = Lazy.force ft16 in
      let n = Topology.num_nodes t in
      let at = a mod n and dst = b mod n in
      let is_core id =
        match Topology.kind t id with Node.Core _ -> true | _ -> false
      in
      at = dst
      || (is_core at && is_core dst)
      || Routing.next_hop t ~at ~dst ~salt
         = Routing.next_hop_oracle t ~at ~dst ~salt)

let ft16_link_qcheck =
  QCheck.Test.make ~name:"FT16-400K CSR link agrees with tor_of/uplinks"
    ~count:300 QCheck.(pair (int_bound 1_000_000) small_nat)
    (fun (a, salt) ->
      let t = Lazy.force ft16 in
      let hosts = Topology.hosts t in
      let host = hosts.(a mod Array.length hosts) in
      let tor = Topology.tor_of t host in
      let up = Topology.uplinks t tor in
      let spine = up.(salt mod Array.length up) in
      let l1 = Topology.link t ~src:host ~dst:tor in
      let l2 = Topology.link t ~src:tor ~dst:spine in
      l1.Link.src = host && l1.Link.dst = tor && l2.Link.src = tor
      && l2.Link.dst = spine
      && (match Topology.link t ~src:host ~dst:spine with
         | exception Not_found -> true
         | _ -> false))

let routing_qcheck =
  QCheck.Test.make ~name:"random host pairs route correctly" ~count:300
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, salt) ->
      let t = small () in
      let hosts = Topology.hosts t in
      let src = hosts.(a mod Array.length hosts) in
      let dst = hosts.(b mod Array.length hosts) in
      src = dst
      ||
      let path = Routing.path t ~src ~dst ~salt in
      List.hd path = src
      && List.nth path (List.length path - 1) = dst
      && List.length path - 1 <= 6)

let () =
  Alcotest.run "topo"
    [
      ( "params",
        [
          Alcotest.test_case "ft8 preset" `Quick test_ft8_preset;
          Alcotest.test_case "ft16 preset" `Quick test_ft16_preset;
          Alcotest.test_case "validation" `Quick test_params_validation;
        ] );
      ( "build",
        [
          Alcotest.test_case "counts" `Quick test_build_counts;
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "gateway racks" `Quick test_gateway_tor_hosts_only_gateways;
          Alcotest.test_case "endpoint/tor symmetry" `Quick test_endpoint_tor_symmetry;
          Alcotest.test_case "links bidirectional" `Quick test_links_bidirectional;
          Alcotest.test_case "link rates" `Quick test_link_rates;
          QCheck_alcotest.to_alcotest csr_vs_oracle_qcheck;
        ] );
      ( "ft16",
        [
          QCheck_alcotest.to_alcotest ft16_next_hop_qcheck;
          QCheck_alcotest.to_alcotest ft16_link_qcheck;
        ] );
      ( "routing",
        [
          Alcotest.test_case "all host pairs" `Quick test_routing_all_pairs;
          Alcotest.test_case "hop counts" `Quick test_routing_hop_counts;
          Alcotest.test_case "switch-addressed" `Quick test_routing_to_switches;
          Alcotest.test_case "cross-pod via core" `Quick test_routing_cross_pod_transits_core;
          Alcotest.test_case "ecmp spreads" `Quick test_routing_ecmp_spreads;
          Alcotest.test_case "deterministic" `Quick test_routing_deterministic_per_salt;
          Alcotest.test_case "single-pod" `Quick test_single_pod_topology;
          QCheck_alcotest.to_alcotest routing_qcheck;
          QCheck_alcotest.to_alcotest switch_pair_routing_qcheck;
          QCheck_alcotest.to_alcotest next_hop_table_vs_oracle_qcheck;
        ] );
      ( "link",
        [
          Alcotest.test_case "transmit model" `Quick test_link_transmit_model;
          Alcotest.test_case "idle restart" `Quick test_link_idle_restart;
          Alcotest.test_case "ecn marking" `Quick test_link_ecn_marking;
        ] );
    ]
