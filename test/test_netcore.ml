(* Tests for addresses, the mapping store, packets and flows. *)

module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip
module Mapping = Netcore.Mapping
module Packet = Netcore.Packet
module Flow = Netcore.Flow

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_addr_roundtrip () =
  checki "vip" 42 (Vip.to_int (Vip.of_int 42));
  checki "pip" 17 (Pip.to_int (Pip.of_int 17));
  checkb "vip equal" true (Vip.equal (Vip.of_int 3) (Vip.of_int 3));
  checkb "pip not equal" false (Pip.equal (Pip.of_int 3) (Pip.of_int 4))

let test_addr_negative_rejected () =
  Alcotest.check_raises "vip" (Invalid_argument "Vip.of_int: negative")
    (fun () -> ignore (Vip.of_int (-1)));
  Alcotest.check_raises "pip" (Invalid_argument "Pip.of_int: negative")
    (fun () -> ignore (Pip.of_int (-1)))

let test_pip_none () =
  checkb "none is none" true (Pip.is_none Pip.none);
  checkb "real pip is not none" false (Pip.is_none (Pip.of_int 0))

let test_addr_pp () =
  let s = Format.asprintf "%a" Vip.pp (Vip.of_int ((1 lsl 16) + (2 lsl 8) + 3)) in
  Alcotest.check Alcotest.string "dotted quad" "10.1.2.3" s

let test_mapping_basic () =
  let m = Mapping.create () in
  checki "empty" 0 (Mapping.size m);
  Mapping.install m (Vip.of_int 1) (Pip.of_int 100);
  checki "size" 1 (Mapping.size m);
  checki "lookup" 100 (Pip.to_int (Mapping.lookup m (Vip.of_int 1)));
  checkb "lookup_opt none" true (Mapping.lookup_opt m (Vip.of_int 2) = None)

let test_mapping_versions () =
  let m = Mapping.create () in
  let v = Vip.of_int 9 in
  checki "unknown version" 0 (Mapping.version m v);
  Mapping.install m v (Pip.of_int 1);
  checki "installed" 1 (Mapping.version m v);
  Mapping.migrate m v (Pip.of_int 2);
  checki "migrated bumps" 2 (Mapping.version m v);
  checki "new location" 2 (Pip.to_int (Mapping.lookup m v))

let test_mapping_migrate_unknown () =
  let m = Mapping.create () in
  Alcotest.check_raises "unknown migrate" Not_found (fun () ->
      Mapping.migrate m (Vip.of_int 5) (Pip.of_int 1))

let test_mapping_lookup_unknown () =
  let m = Mapping.create () in
  Alcotest.check_raises "unknown lookup" Not_found (fun () ->
      ignore (Mapping.lookup m (Vip.of_int 5)))

let test_mapping_iter () =
  let m = Mapping.create () in
  for i = 0 to 9 do
    Mapping.install m (Vip.of_int i) (Pip.of_int (i * 10))
  done;
  let count = ref 0 in
  Mapping.iter m (fun vip pip ->
      incr count;
      checki "pip = vip*10" (Vip.to_int vip * 10) (Pip.to_int pip));
  checki "visited all" 10 !count

let mk_data ?(seq = 0) ?(id = 0) () =
  Packet.make_data ~id ~flow_id:1 ~seq ~size:1500 ~src_vip:(Vip.of_int 1)
    ~dst_vip:(Vip.of_int 2) ~src_pip:(Pip.of_int 10) ~dst_pip:(Pip.of_int 20)
    ~now:0

let test_packet_data_initial_state () =
  let p = mk_data () in
  checkb "unresolved" false p.Packet.resolved;
  checkb "no tag" true (p.Packet.misdelivery < 0);
  checki "no hit switch" (-1) p.Packet.hit_switch;
  checkb "no spill" true (p.Packet.spill = None);
  checkb "is data" true (Packet.is_data p);
  checki "hops" 0 p.Packet.hops

let test_packet_control () =
  let p =
    Packet.make_control ~id:1 ~kind:Packet.Learning
      ~mapping:(Vip.of_int 3, Pip.of_int 30)
      ~src_pip:(Pip.of_int 1) ~dst_pip:(Pip.of_int 2) ~now:0
  in
  checkb "control resolved" true p.Packet.resolved;
  checkb "carries mapping" true
    (p.Packet.mapping_payload = Some (Vip.of_int 3, Pip.of_int 30));
  checki "control size" Packet.control_size p.Packet.size;
  checkb "not data" false (Packet.is_data p)

let test_packet_control_kind_checked () =
  Alcotest.check_raises "data is not control"
    (Invalid_argument "Packet.make_control: not a control kind") (fun () ->
      ignore
        (Packet.make_control ~id:1 ~kind:Packet.Data
           ~mapping:(Vip.of_int 1, Pip.of_int 1)
           ~src_pip:(Pip.of_int 1) ~dst_pip:(Pip.of_int 2) ~now:0))

let test_flow_packet_count () =
  let f ~size =
    Flow.make ~id:0 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 1)
      ~size_bytes:size ~start:0 Flow.Tcpish
  in
  checki "one byte -> one packet" 1 (Flow.packet_count (f ~size:1));
  checki "exactly mtu" 1 (Flow.packet_count (f ~size:1500));
  checki "mtu + 1" 2 (Flow.packet_count (f ~size:1501));
  checki "10 packets" 10 (Flow.packet_count (f ~size:15000))

let test_flow_custom_pkt_bytes () =
  let f =
    Flow.make ~pkt_bytes:128 ~id:0 ~src_vip:(Vip.of_int 0)
      ~dst_vip:(Vip.of_int 1) ~size_bytes:1280 ~start:0
      (Flow.Udp { rate_bps = 1e9 })
  in
  checki "128B packets" 10 (Flow.packet_count f)

let test_flow_invalid () =
  Alcotest.check_raises "zero size" (Invalid_argument "Flow.make: size must be positive")
    (fun () ->
      ignore
        (Flow.make ~id:0 ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 1)
           ~size_bytes:0 ~start:0 Flow.Tcpish))

(* --- wire format --- *)

let packet_equal (a : Packet.t) (b : Packet.t) =
  a.Packet.id = b.Packet.id
  && a.Packet.flow_id = b.Packet.flow_id
  && a.Packet.kind = b.Packet.kind
  && a.Packet.size = b.Packet.size
  && a.Packet.seq = b.Packet.seq
  && Vip.equal a.Packet.src_vip b.Packet.src_vip
  && Vip.equal a.Packet.dst_vip b.Packet.dst_vip
  && Pip.equal a.Packet.src_pip b.Packet.src_pip
  && Pip.equal a.Packet.dst_pip b.Packet.dst_pip
  && a.Packet.resolved = b.Packet.resolved
  && a.Packet.misdelivery = b.Packet.misdelivery
  && a.Packet.hit_switch = b.Packet.hit_switch
  && a.Packet.spill = b.Packet.spill
  && a.Packet.promo = b.Packet.promo
  && a.Packet.mapping_payload = b.Packet.mapping_payload
  && a.Packet.gw_visited = b.Packet.gw_visited
  && a.Packet.retransmit = b.Packet.retransmit

let test_wire_roundtrip_plain_data () =
  let p = mk_data ~seq:3 ~id:99 () in
  let q = Netcore.Wire.decode (Netcore.Wire.encode p) in
  checkb "roundtrip" true (packet_equal p q)

let test_wire_roundtrip_decorated () =
  let p = mk_data () in
  p.Packet.resolved <- true;
  p.Packet.gw_visited <- true;
  p.Packet.retransmit <- true;
  p.Packet.hit_switch <- 42;
  p.Packet.misdelivery <- 7;
  p.Packet.spill <- Some (Vip.of_int 3, Pip.of_int 30);
  p.Packet.promo <- Some (Vip.of_int 4, Pip.of_int 40);
  let q = Netcore.Wire.decode (Netcore.Wire.encode p) in
  checkb "all options roundtrip" true (packet_equal p q)

let test_wire_roundtrip_control () =
  List.iter
    (fun kind ->
      let p =
        Packet.make_control ~id:5 ~kind
          ~mapping:(Vip.of_int 9, Pip.of_int 90)
          ~src_pip:(Pip.of_int 1) ~dst_pip:(Pip.of_int 2) ~now:0
      in
      let q = Netcore.Wire.decode (Netcore.Wire.encode p) in
      checkb "control roundtrip" true (packet_equal p q))
    [ Packet.Learning; Packet.Invalidation ]

let test_wire_none_pip () =
  let p =
    Packet.make_data ~id:0 ~flow_id:1 ~seq:0 ~size:100 ~src_vip:(Vip.of_int 1)
      ~dst_vip:(Vip.of_int 2) ~src_pip:(Pip.of_int 3) ~dst_pip:Pip.none ~now:0
  in
  let q = Netcore.Wire.decode (Netcore.Wire.encode p) in
  checkb "none sentinel survives" true (Pip.is_none q.Packet.dst_pip)

let test_wire_rejects_garbage () =
  let truncated = Bytes.make 3 'x' in
  Bytes.set truncated 0 '\x45' (* valid version/IHL, then nothing *);
  Alcotest.check_raises "truncated" (Invalid_argument "Wire.decode: truncated")
    (fun () -> ignore (Netcore.Wire.decode truncated));
  let p = mk_data () in
  let b = Netcore.Wire.encode p in
  Bytes.set b 0 '\x00';
  Alcotest.check_raises "bad version"
    (Invalid_argument "Wire.decode: bad IPv4 header") (fun () ->
      ignore (Netcore.Wire.decode b))

let test_wire_header_overhead () =
  let plain = Netcore.Wire.header_bytes (mk_data ()) in
  let decorated =
    let p = mk_data () in
    p.Packet.spill <- Some (Vip.of_int 3, Pip.of_int 30);
    Netcore.Wire.header_bytes p
  in
  (* Riding a spilled entry costs exactly one 10-byte TLV. *)
  checki "spill TLV cost" (plain + 10) decorated;
  checkb "base overhead is two IPv4 headers + options" true (plain >= 40)

let wire_qcheck =
  QCheck.Test.make ~name:"wire roundtrip for random packets" ~count:500
    QCheck.(
      tup7 (int_bound 1000) (int_bound 1000) (int_bound 100) bool bool bool
        (int_bound 3))
    (fun (a, b, seq, resolved, with_spill, with_md, decor) ->
      let p =
        Packet.make_data ~id:(a + b) ~flow_id:a ~seq ~size:(1 + a)
          ~src_vip:(Vip.of_int a) ~dst_vip:(Vip.of_int b)
          ~src_pip:(Pip.of_int (a * 2)) ~dst_pip:(Pip.of_int (b * 2)) ~now:0
      in
      p.Packet.resolved <- resolved;
      if with_spill then p.Packet.spill <- Some (Vip.of_int decor, Pip.of_int b);
      if with_md then p.Packet.misdelivery <- decor;
      if decor > 1 then p.Packet.promo <- Some (Vip.of_int a, Pip.of_int decor);
      packet_equal p (Netcore.Wire.decode (Netcore.Wire.encode p)))

let () =
  Alcotest.run "netcore"
    [
      ( "addr",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "negative rejected" `Quick test_addr_negative_rejected;
          Alcotest.test_case "none sentinel" `Quick test_pip_none;
          Alcotest.test_case "pretty printing" `Quick test_addr_pp;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "install/lookup" `Quick test_mapping_basic;
          Alcotest.test_case "versions" `Quick test_mapping_versions;
          Alcotest.test_case "migrate unknown" `Quick test_mapping_migrate_unknown;
          Alcotest.test_case "lookup unknown" `Quick test_mapping_lookup_unknown;
          Alcotest.test_case "iter" `Quick test_mapping_iter;
        ] );
      ( "packet",
        [
          Alcotest.test_case "data initial state" `Quick test_packet_data_initial_state;
          Alcotest.test_case "control packets" `Quick test_packet_control;
          Alcotest.test_case "control kind checked" `Quick test_packet_control_kind_checked;
        ] );
      ( "flow",
        [
          Alcotest.test_case "packet count" `Quick test_flow_packet_count;
          Alcotest.test_case "custom packet size" `Quick test_flow_custom_pkt_bytes;
          Alcotest.test_case "invalid size" `Quick test_flow_invalid;
        ] );
      ( "wire",
        [
          Alcotest.test_case "plain data roundtrip" `Quick test_wire_roundtrip_plain_data;
          Alcotest.test_case "decorated roundtrip" `Quick test_wire_roundtrip_decorated;
          Alcotest.test_case "control roundtrip" `Quick test_wire_roundtrip_control;
          Alcotest.test_case "none pip sentinel" `Quick test_wire_none_pip;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "header overhead" `Quick test_wire_header_overhead;
          QCheck_alcotest.to_alcotest wire_qcheck;
        ] );
    ]
