(* Scenario spec layer: lossless text round-trip (QCheck over
   seed-derived random specs), committed-example fidelity and
   validation, golden byte-identical replay of [run --scenario], and
   fixed-shard-count replay determinism. *)

module Spec = Netsim.Scenario
module Scenario = Experiments.Scenario
module Runner = Experiments.Runner
module Fault = Dessim.Fault
module Rng = Dessim.Rng
module Time_ns = Dessim.Time_ns
module Churn = Workloads.Container_churn

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Random valid specs, derived from one integer through our own Rng
   so the generator stays deterministic and shrinkable over ints.     *)

let pick rng l = List.nth l (Rng.int rng (List.length l))

let gen_stream rng parity =
  let trace = pick rng Spec.[ Hadoop; Websearch; Alibaba; Microbursts; Video ] in
  let rate = 0.5 +. (float_of_int (Rng.int rng 64) /. 2.0) in
  let load = 0.05 +. (float_of_int (Rng.int rng 15) /. 20.0) in
  let zipf_alpha =
    if Rng.int rng 3 = 0 then
      Some (0.01 +. (float_of_int (Rng.int rng 200) /. 100.0))
    else None
  in
  let vips = match parity with None -> Spec.All | Some p -> Spec.Parity p in
  Spec.stream ~rate ~load ?zipf_alpha ~vips ~seed_delta:(Rng.int rng 4)
    ~id_base:(Rng.int rng 2 * 1_000_000)
    trace

let gen_slots rng =
  if Rng.int rng 2 = 0 then Spec.Pct (Rng.int rng 200)
  else Spec.Abs (Rng.int rng 5000)

let gen_config rng =
  Switchv2p.Config.make
    ~p_learn:(1.0 /. float_of_int (1 + Rng.int rng 512))
    ~learning_packets:(Rng.int rng 2 = 0)
    ~spillover:(Rng.int rng 2 = 0)
    ~promotion:(Rng.int rng 2 = 0)
    ~source_learning:(Rng.int rng 2 = 0)
    ~invalidations:(Rng.int rng 2 = 0)
    ~ts_vector:(Rng.int rng 2 = 0)
    ~allocation:
      (pick rng
         [
           Switchv2p.Config.Uniform;
           Switchv2p.Config.Tor_only;
           Switchv2p.Config.Weighted
             {
               tor = 1.0 +. float_of_int (Rng.int rng 8);
               spine = 1.0 +. float_of_int (Rng.int rng 8);
               core = float_of_int (Rng.int rng 4);
               gw_tor = 1.0;
               gw_spine = 1.0;
             };
         ])
    ~geometry:
      (pick rng
         [
           Switchv2p.Config.Geo_direct;
           Switchv2p.Config.Geo_dleft 2;
           Switchv2p.Config.Geo_dleft (1 + Rng.int rng 8);
         ])
    ~tinylfu:(Rng.int rng 2 = 0)
    ()

let gen_scheme rng ~classified =
  let label =
    match Rng.int rng 3 with
    | 0 -> None
    | 1 -> Some "plain"
    | _ -> Some "label with spaces @50%"
  in
  let kind =
    match Rng.int rng 10 with
    | 0 -> Spec.Nocache
    | 1 -> Spec.Direct
    | 2 -> Spec.Ondemand
    | 3 -> Spec.Hoverboard
    | 4 -> Spec.Dht
    | 5 -> Spec.Locallearning (gen_slots rng)
    | 6 -> Spec.Gwcache (gen_slots rng)
    | 7 -> Spec.Bluebird (gen_slots rng)
    | 8 ->
        Spec.Controller
          {
            slots = gen_slots rng;
            interval = Time_ns.of_us (1 + Rng.int rng 500);
          }
    | _ ->
        let shares =
          if classified && Rng.int rng 2 = 0 then
            Some
              [|
                1.0 +. float_of_int (Rng.int rng 9);
                1.0 +. float_of_int (Rng.int rng 9);
              |]
          else None
        in
        Spec.switchv2p ~config:(gen_config rng) ?shares (gen_slots rng)
  in
  Spec.scheme ?label kind

let spec_of_seed n =
  let rng = Rng.create ((n * 0x5bd1e995) + 17) in
  let family = pick rng [ `FT8; `FT16 ] in
  let scale = pick rng [ `Tiny; `Small ] in
  let topo =
    if Rng.int rng 5 = 0 then
      Spec.custom ~seed:(Rng.int rng 100) (Spec.preset_params family scale)
    else Spec.preset ~seed:(Rng.int rng 100) family scale
  in
  let classified = Rng.int rng 2 = 0 in
  let streams =
    if classified then [ gen_stream rng (Some 0); gen_stream rng (Some 1) ]
    else List.init (Rng.int rng 3) (fun _ -> gen_stream rng None)
  in
  let churn =
    if Rng.int rng 3 = 0 then
      Some
        (Churn.make
           ~start:(Time_ns.of_us (Rng.int rng 1000))
           ~kind:(pick rng Churn.[ Cold_start; Serverless; Migration_storm ])
           ~rate:(1.0 +. float_of_int (Rng.int rng 5000))
           ~duration:(Time_ns.of_us (1 + Rng.int rng 20000))
           ~batch:(1 + Rng.int rng 8) ())
    else None
  in
  let faults =
    match Rng.int rng 3 with
    | 0 -> Spec.No_faults
    | 1 -> Spec.Random (Rng.int rng 1000)
    | _ ->
        (* Literal plans stay topology-independent: churn actions are
           the one kind whose target needs no node ids. *)
        Spec.Literal
          {
            Fault.seed = Rng.int rng 100;
            specs =
              Fault.sort_specs
                (Array.init (Rng.int rng 3) (fun i ->
                     {
                       Fault.at = Time_ns.of_us ((i + 1) * (1 + Rng.int rng 500));
                       action = Fault.Churn (1 + Rng.int rng 8);
                     }));
          }
  in
  let sched =
    pick rng
      [
        Spec.Sched_default;
        Spec.Sched Dessim.Engine.Heap;
        Spec.Sched Dessim.Engine.Wheel;
      ]
  in
  let shards =
    if Rng.int rng 2 = 0 then Spec.Shards_auto else Spec.Shards (1 + Rng.int rng 3)
  in
  let horizon =
    if Rng.int rng 2 = 0 then Spec.Horizon_auto
    else Spec.Horizon (Time_ns.of_ms (1 + Rng.int rng 100))
  in
  Spec.make
    ~name:(pick rng [ "qc"; "qc spec"; "multitenant/qc 50/50" ])
    ~topo ~streams ?churn ~faults ~seed:(Rng.int rng 10_000) ~sched ~shards
    ~horizon
    ?gateways_used:(if Rng.int rng 3 = 0 then Some 1 else None)
    ~classify:(if classified then Spec.Vip_parity else Spec.No_classify)
    (List.init (1 + Rng.int rng 3) (fun _ -> gen_scheme rng ~classified))

let roundtrip_qcheck =
  QCheck.Test.make ~count:300
    ~name:"of_string (to_string t) = Ok t, and reprint is stable"
    QCheck.(int_bound 1_000_000)
    (fun n ->
      let t = spec_of_seed n in
      let s = Spec.to_string t in
      match Spec.of_string s with
      | Ok t' -> t' = t && String.equal (Spec.to_string t') s
      | Error e ->
          QCheck.Test.fail_reportf "parse failed: %s\nin:\n%s"
            (Spec.error_to_string e) s)

(* ------------------------------------------------------------------ *)
(* Committed examples: all validate; the golden file is exactly what
   its constructor prints, so the committed text cannot drift.        *)

let examples_dir = "../examples/scenarios"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let golden_spec () =
  Spec.make ~name:"golden_tiny"
    ~topo:(Spec.preset `FT8 `Tiny)
    ~streams:[ Spec.stream Spec.Hadoop ]
    [
      Spec.scheme ~label:"NoCache" Spec.Nocache;
      Spec.scheme ~label:"SwitchV2P" (Spec.switchv2p (Spec.Pct 50));
    ]

let examples_validate () =
  let files =
    Sys.readdir examples_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scn")
    |> List.sort compare
  in
  checkb "at least six committed scenarios" true (List.length files >= 6);
  List.iter
    (fun f ->
      match Spec.validate_file (Filename.concat examples_dir f) with
      | Ok _ -> ()
      | Error errs ->
          Alcotest.failf "%s: %s" f
            (String.concat "; " (List.map Spec.error_to_string errs)))
    files

let golden_file_matches_constructor () =
  Alcotest.(check string)
    "golden_tiny.scn is the constructor's canonical print"
    (Spec.to_string (golden_spec ()))
    (read_file (Filename.concat examples_dir "golden_tiny.scn"))

(* ------------------------------------------------------------------ *)
(* Golden replay: running the committed file reproduces the
   programmatic run of the same spec, result-for-result.              *)

let golden_replay () =
  let file = Filename.concat examples_dir "golden_tiny.scn" in
  match Scenario.run_file file with
  | Error e -> Alcotest.failf "run_file: %s" (Spec.error_to_string e)
  | Ok (spec, from_file) ->
      let programmatic = Scenario.run (golden_spec ()) in
      checkb "parsed spec equals constructor" true (spec = golden_spec ());
      checkb "file replay = programmatic run, byte-identical results" true
        (from_file = programmatic)

(* ------------------------------------------------------------------ *)
(* Sharded scenarios: a fixed shard count replays deterministically,
   and agrees with the single-shard run on flow outcomes.             *)

let sharded_spec shards =
  { (golden_spec ()) with Spec.shards = Spec.Shards shards }

let sharded_replay_deterministic () =
  let spec = sharded_spec 2 in
  let s = List.nth spec.Spec.schemes 1 in
  let a = Scenario.run_scheme spec s in
  let b = Scenario.run_scheme spec s in
  checkb "2-shard scenario run replays identically" true (a = b)

let sharded_flow_outcomes_agree () =
  let one = Scenario.run_scheme (sharded_spec 1) (List.nth (golden_spec ()).Spec.schemes 1) in
  let two = Scenario.run_scheme (sharded_spec 2) (List.nth (golden_spec ()).Spec.schemes 1) in
  checki "flows started" one.Runner.flows_started two.Runner.flows_started;
  checki "flows completed" one.Runner.flows_completed two.Runner.flows_completed;
  checki "drops (1-shard)" 0 one.Runner.packets_dropped;
  checki "drops (2-shard)" 0 two.Runner.packets_dropped

let () =
  Alcotest.run "scenario"
    [
      ("roundtrip", [ qtest roundtrip_qcheck ]);
      ( "examples",
        [
          Alcotest.test_case "all committed examples validate" `Quick
            examples_validate;
          Alcotest.test_case "golden file matches constructor" `Quick
            golden_file_matches_constructor;
        ] );
      ( "replay",
        [
          Alcotest.test_case "run --scenario = programmatic run" `Quick
            golden_replay;
          Alcotest.test_case "2-shard replay deterministic" `Quick
            sharded_replay_deterministic;
          Alcotest.test_case "shard counts agree on flow outcomes" `Quick
            sharded_flow_outcomes_agree;
        ] );
    ]
