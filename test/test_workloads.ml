(* Tests for the flow-size CDFs and trace generators. *)

module Tracegen = Workloads.Tracegen
module Flow_cdf = Workloads.Flow_cdf
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Rng = Dessim.Rng
module Time_ns = Dessim.Time_ns

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let rng () = Rng.create 1234
let num_vms = 200
let agg_bps = 10. *. 100e9

let no_self_flows flows =
  List.for_all
    (fun (f : Flow.t) -> not (Vip.equal f.Flow.src_vip f.Flow.dst_vip))
    flows

let sorted_by_start flows =
  let rec go = function
    | a :: (b :: _ as rest) ->
        Time_ns.compare a.Flow.start b.Flow.start <= 0 && go rest
    | _ -> true
  in
  go flows

let unique_ids flows =
  let ids = List.map (fun (f : Flow.t) -> f.Flow.id) flows in
  List.length (List.sort_uniq compare ids) = List.length ids

let vips_in_range flows =
  List.for_all
    (fun (f : Flow.t) ->
      Vip.to_int f.Flow.src_vip < num_vms && Vip.to_int f.Flow.dst_vip < num_vms)
    flows

let test_cdf_means () =
  (* Hadoop is short-flow dominated; WebSearch heavy. *)
  let h = Flow_cdf.mean_bytes Flow_cdf.hadoop in
  let w = Flow_cdf.mean_bytes Flow_cdf.websearch in
  checkb "hadoop mean < 100KB" true (h < 100_000.0);
  checkb "websearch mean > 1MB" true (w > 1_000_000.0);
  checkb "websearch heavier" true (w > 10.0 *. h)

let test_cdf_sampling_positive () =
  let r = rng () in
  for _ = 1 to 1000 do
    checkb "positive sizes" true (Flow_cdf.sample_size Flow_cdf.hadoop r > 0)
  done

let test_hadoop_invariants () =
  let flows = Tracegen.hadoop (rng ()) ~num_vms ~num_flows:1000 ~load:0.3 ~agg_bps in
  checki "count" 1000 (List.length flows);
  checkb "no self flows" true (no_self_flows flows);
  checkb "sorted" true (sorted_by_start flows);
  checkb "unique ids" true (unique_ids flows);
  checkb "vips in range" true (vips_in_range flows);
  checkb "all tcp" true
    (List.for_all (fun (f : Flow.t) -> f.Flow.proto = Flow.Tcpish) flows)

let test_hadoop_destination_reuse () =
  let flows = Tracegen.hadoop (rng ()) ~num_vms ~num_flows:2000 ~load:0.3 ~agg_bps in
  let dsts = Hashtbl.create 64 in
  List.iter
    (fun (f : Flow.t) ->
      let d = Vip.to_int f.Flow.dst_vip in
      Hashtbl.replace dsts d (1 + Option.value ~default:0 (Hashtbl.find_opt dsts d)))
    flows;
  let reused =
    Hashtbl.fold (fun _ c acc -> if c >= 2 then acc + 1 else acc) dsts 0
  in
  checkb "most destinations reused" true
    (float_of_int reused > 0.8 *. float_of_int (Hashtbl.length dsts))

let test_websearch_minimal_reuse () =
  (* Fewer flows than VMs: destinations drawn without replacement. *)
  let flows = Tracegen.websearch (rng ()) ~num_vms ~num_flows:100 ~load:0.3 ~agg_bps in
  let dsts = List.map (fun (f : Flow.t) -> Vip.to_int f.Flow.dst_vip) flows in
  checki "all destinations distinct" (List.length dsts)
    (List.length (List.sort_uniq compare dsts))

let test_alibaba_rpc_pairs () =
  let flows = Tracegen.alibaba (rng ()) ~num_vms ~num_rpcs:200 ~load:0.3 ~agg_bps in
  checki "request + response per rpc" 400 (List.length flows);
  checkb "no self" true (no_self_flows flows);
  checkb "sorted" true (sorted_by_start flows);
  (* Each request (even id) has a matching reversed response (odd). *)
  let by_id = Hashtbl.create 64 in
  List.iter (fun (f : Flow.t) -> Hashtbl.replace by_id f.Flow.id f) flows;
  for i = 0 to 199 do
    let req = Hashtbl.find by_id (2 * i) in
    let resp = Hashtbl.find by_id ((2 * i) + 1) in
    checkb "response reverses request" true
      (Vip.equal req.Flow.src_vip resp.Flow.dst_vip
      && Vip.equal req.Flow.dst_vip resp.Flow.src_vip);
    checkb "response after request" true
      (Time_ns.compare req.Flow.start resp.Flow.start < 0)
  done

let test_alibaba_callee_concentration () =
  let flows = Tracegen.alibaba (rng ()) ~num_vms ~num_rpcs:2000 ~load:0.3 ~agg_bps in
  let callees = Hashtbl.create 64 in
  List.iter
    (fun (f : Flow.t) ->
      if f.Flow.id mod 2 = 0 then begin
        let d = Vip.to_int f.Flow.dst_vip in
        Hashtbl.replace callees d
          (1 + Option.value ~default:0 (Hashtbl.find_opt callees d))
      end)
    flows;
  (* Callee pool restricted to ~24% of VMs. *)
  checkb "callee pool restricted" true
    (Hashtbl.length callees <= int_of_float (0.24 *. float_of_int num_vms) + 1);
  (* Zipf: the hottest callee takes a large share. *)
  let counts = Hashtbl.fold (fun _ c acc -> c :: acc) callees [] in
  let max_c = List.fold_left max 0 counts in
  checkb "hot callee dominates" true (max_c > 2000 / Hashtbl.length callees)

let test_microbursts_invariants () =
  let flows =
    Tracegen.microbursts (rng ()) ~num_vms ~num_flows:500
      ~horizon:(Time_ns.of_ms 2)
  in
  checki "count" 500 (List.length flows);
  checkb "all udp" true
    (List.for_all
       (fun (f : Flow.t) ->
         match f.Flow.proto with Flow.Udp _ -> true | Flow.Tcpish -> false)
       flows);
  checkb "starts within horizon" true
    (List.for_all
       (fun (f : Flow.t) -> Time_ns.to_ms f.Flow.start <= 2.0)
       flows);
  checkb "mice flows" true
    (List.for_all (fun (f : Flow.t) -> Flow.packet_count f <= 20) flows)

let test_video_disjoint_pairs () =
  let flows =
    Tracegen.video (rng ()) ~num_vms ~senders:32 ~duration:(Time_ns.of_ms 5)
  in
  checki "count" 32 (List.length flows);
  let endpoints =
    List.concat_map
      (fun (f : Flow.t) ->
        [ Vip.to_int f.Flow.src_vip; Vip.to_int f.Flow.dst_vip ])
      flows
  in
  checki "all endpoints distinct" 64 (List.length (List.sort_uniq compare endpoints));
  (* 48 Mb/s for 5 ms = 30 KB per stream. *)
  List.iter
    (fun (f : Flow.t) -> checki "stream size" 30_000 f.Flow.size_bytes)
    flows

let test_video_too_many_senders () =
  Alcotest.check_raises "not enough VMs"
    (Invalid_argument "Tracegen.video: not enough VMs for disjoint pairs")
    (fun () ->
      ignore
        (Tracegen.video (rng ()) ~num_vms:10 ~senders:6
           ~duration:(Time_ns.of_ms 1)))

let test_incast_shape () =
  let flows =
    Tracegen.incast (rng ()) ~num_vms ~senders:16 ~dst_vip:(Vip.of_int 0)
      ~packets_per_sender:100 ~packet_bytes:128 ~duration:(Time_ns.of_ms 1)
  in
  checki "senders" 16 (List.length flows);
  List.iter
    (fun (f : Flow.t) ->
      checkb "targets the victim" true (Vip.equal f.Flow.dst_vip (Vip.of_int 0));
      checki "packet count" 100 (Flow.packet_count f);
      checki "packet size" 128 f.Flow.pkt_bytes)
    flows;
  checkb "senders distinct from dst" true (no_self_flows flows)

let test_load_controls_arrival_rate () =
  let span flows =
    List.fold_left
      (fun acc (f : Flow.t) -> max acc (Time_ns.to_ns f.Flow.start))
      0 flows
  in
  let lo = Tracegen.hadoop (rng ()) ~num_vms ~num_flows:500 ~load:0.1 ~agg_bps in
  let hi = Tracegen.hadoop (rng ()) ~num_vms ~num_flows:500 ~load:0.9 ~agg_bps in
  checkb "higher load packs flows tighter" true (span hi < span lo)

let test_invalid_load_rejected () =
  Alcotest.check_raises "zero load"
    (Invalid_argument "Tracegen: load out of (0,1]") (fun () ->
      ignore (Tracegen.hadoop (rng ()) ~num_vms ~num_flows:10 ~load:0.0 ~agg_bps))

let tracegen_qcheck =
  QCheck.Test.make ~name:"hadoop generator invariants hold for any seed"
    ~count:50 QCheck.small_nat (fun seed ->
      let flows =
        Tracegen.hadoop (Rng.create seed) ~num_vms:50 ~num_flows:100 ~load:0.3
          ~agg_bps:1e12
      in
      no_self_flows flows && sorted_by_start flows && unique_ids flows)

(* --- trace statistics --- *)

let mk_flow ~id ~src ~dst ~size ~start_us =
  Flow.make ~id ~src_vip:(Vip.of_int src) ~dst_vip:(Vip.of_int dst)
    ~size_bytes:size ~start:(Time_ns.of_us start_us) Flow.Tcpish

let test_stats_basic () =
  let stats =
    Workloads.Trace_stats.analyze
      [
        mk_flow ~id:0 ~src:1 ~dst:5 ~size:100 ~start_us:0;
        mk_flow ~id:1 ~src:2 ~dst:5 ~size:300 ~start_us:100;
        mk_flow ~id:2 ~src:1 ~dst:6 ~size:200 ~start_us:200;
      ]
  in
  checki "flows" 3 stats.Workloads.Trace_stats.flows;
  checki "sources" 2 stats.Workloads.Trace_stats.distinct_sources;
  checki "destinations" 2 stats.Workloads.Trace_stats.distinct_destinations;
  checki "reused dsts" 1 stats.Workloads.Trace_stats.destinations_with_2_flows;
  checki "hot dsts" 0 stats.Workloads.Trace_stats.destinations_with_10_flows;
  checki "bytes" 600 stats.Workloads.Trace_stats.total_bytes;
  Alcotest.check (Alcotest.float 1e-9) "mean size" 200.0
    stats.Workloads.Trace_stats.mean_flow_bytes;
  (* One reuse event: dst 5 at t=0 then t=100us. *)
  Alcotest.check (Alcotest.float 1e-9) "reuse distance" 100e-6
    stats.Workloads.Trace_stats.mean_reuse_distance

let test_stats_reuse_fraction () =
  let stats =
    Workloads.Trace_stats.analyze
      [
        mk_flow ~id:0 ~src:1 ~dst:5 ~size:1 ~start_us:0;
        mk_flow ~id:1 ~src:2 ~dst:5 ~size:1 ~start_us:1;
        mk_flow ~id:2 ~src:3 ~dst:5 ~size:1 ~start_us:2;
        mk_flow ~id:3 ~src:4 ~dst:6 ~size:1 ~start_us:3;
      ]
  in
  Alcotest.check (Alcotest.float 1e-9) "half the flows reuse" 0.5
    (Workloads.Trace_stats.reuse_fraction stats)

let test_stats_empty () =
  let stats = Workloads.Trace_stats.analyze [] in
  checki "no flows" 0 stats.Workloads.Trace_stats.flows;
  Alcotest.check (Alcotest.float 1e-9) "no reuse" 0.0
    (Workloads.Trace_stats.reuse_fraction stats)

let test_stats_unsorted_input () =
  (* analyze must sort internally: reuse distance computed on time
     order, not list order. *)
  let stats =
    Workloads.Trace_stats.analyze
      [
        mk_flow ~id:1 ~src:2 ~dst:5 ~size:1 ~start_us:100;
        mk_flow ~id:0 ~src:1 ~dst:5 ~size:1 ~start_us:0;
      ]
  in
  Alcotest.check (Alcotest.float 1e-9) "positive distance" 100e-6
    stats.Workloads.Trace_stats.mean_reuse_distance

(* --- locality generator (Locality_gen) --- *)

module Locality = Workloads.Locality_gen

(* Fixed seed -> byte-identical stream, pinned as a golden prefix. A
   change here means the generator's arithmetic changed and every
   cachegeo frontier number silently moved. *)
let test_locality_golden_stream () =
  let refs = Locality.references ~num:16 ~universe:64 ~locality:0.7 ~seed:7 () in
  Alcotest.check
    (Alcotest.array Alcotest.int)
    "golden stream"
    [| 39; 39; 58; 58; 39; 58; 39; 39; 33; 39; 39; 35; 51; 59; 59; 59 |]
    refs

let test_locality_deterministic () =
  let a = Locality.references ~universe:300 ~locality:0.4 ~seed:123 () in
  let b = Locality.references ~universe:300 ~locality:0.4 ~seed:123 () in
  checkb "same seed, same stream" true (a = b);
  let c = Locality.references ~universe:300 ~locality:0.4 ~seed:124 () in
  checkb "different seed differs" true (a <> c);
  checkb "ids in range" true (Array.for_all (fun r -> r >= 0 && r < 300) a)

(* The statistical pin: measured stack-distance concentration is
   monotone in the knob. Measured values at these settings are ~0.02 /
   0.31 / 0.62 / 0.92, so strict ordering has wide margins. *)
let test_locality_concentration_monotone () =
  let conc l =
    Locality.concentration
      (Locality.references ~num:20_000 ~universe:500 ~locality:l ~seed:11 ())
  in
  let c0 = conc 0.0 and c3 = conc 0.3 and c6 = conc 0.6 and c9 = conc 0.9 in
  checkb "0.0 < 0.3" true (c0 < c3);
  checkb "0.3 < 0.6" true (c3 < c6);
  checkb "0.6 < 0.9" true (c6 < c9);
  checkb "uniform stream barely concentrates" true (c0 < 0.1);
  checkb "high knob concentrates heavily" true (c9 > 0.8)

let test_locality_flows_shape () =
  let flows =
    Locality.flows (rng ()) ~num_vms ~num_flows:200 ~load:0.3 ~agg_bps
      ~locality:0.8
  in
  checki "count" 200 (List.length flows);
  checkb "no self flows" true (no_self_flows flows);
  checkb "sorted" true (sorted_by_start flows);
  checkb "unique ids" true (unique_ids flows);
  checkb "vips in range" true (vips_in_range flows)

let test_locality_validation () =
  Alcotest.check_raises "knob above 1"
    (Invalid_argument "Locality_gen: locality must be in [0,1]") (fun () ->
      ignore (Locality.references ~universe:10 ~locality:1.5 ~seed:1 ()));
  Alcotest.check_raises "empty universe"
    (Invalid_argument "Locality_gen: universe must be positive") (fun () ->
      ignore (Locality.references ~universe:0 ~locality:0.5 ~seed:1 ()))

(* --- trace I/O --- *)

let test_io_roundtrip () =
  let flows =
    Tracegen.hadoop (rng ()) ~num_vms ~num_flows:50 ~load:0.3 ~agg_bps
    @ Tracegen.video (rng ()) ~num_vms ~senders:4 ~duration:(Time_ns.of_ms 1)
  in
  let parsed = Workloads.Trace_io.of_string (Workloads.Trace_io.to_string flows) in
  checki "count preserved" (List.length flows) (List.length parsed);
  List.iter2
    (fun (a : Flow.t) (b : Flow.t) ->
      checkb "flow preserved" true
        (a.Flow.id = b.Flow.id
        && Vip.equal a.Flow.src_vip b.Flow.src_vip
        && Vip.equal a.Flow.dst_vip b.Flow.dst_vip
        && a.Flow.size_bytes = b.Flow.size_bytes
        && Time_ns.compare a.Flow.start b.Flow.start = 0
        && a.Flow.pkt_bytes = b.Flow.pkt_bytes
        &&
        match (a.Flow.proto, b.Flow.proto) with
        | Flow.Tcpish, Flow.Tcpish -> true
        | Flow.Udp x, Flow.Udp y -> Float.abs (x.rate_bps -. y.rate_bps) < 1.0
        | _ -> false))
    flows parsed

let test_io_file_roundtrip () =
  let flows = Tracegen.hadoop (rng ()) ~num_vms ~num_flows:20 ~load:0.3 ~agg_bps in
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workloads.Trace_io.save flows path;
      checki "file roundtrip" (List.length flows)
        (List.length (Workloads.Trace_io.load path)))

let test_io_rejects_bad_input () =
  (try
     ignore (Workloads.Trace_io.of_string "not,a,header\n");
     Alcotest.fail "should reject bad header"
   with Failure _ -> ());
  let bad =
    "id,src_vip,dst_vip,size_bytes,start_ns,proto,rate_bps,pkt_bytes\n\
     0,1,2,100,0,carrier-pigeon,,1500\n"
  in
  try
    ignore (Workloads.Trace_io.of_string bad);
    Alcotest.fail "should reject bad proto"
  with Failure msg -> checkb "line number reported" true (String.length msg > 0)

let () =
  Alcotest.run "workloads"
    [
      ( "cdf",
        [
          Alcotest.test_case "means" `Quick test_cdf_means;
          Alcotest.test_case "positive samples" `Quick test_cdf_sampling_positive;
        ] );
      ( "traces",
        [
          Alcotest.test_case "hadoop invariants" `Quick test_hadoop_invariants;
          Alcotest.test_case "hadoop destination reuse" `Quick test_hadoop_destination_reuse;
          Alcotest.test_case "websearch minimal reuse" `Quick test_websearch_minimal_reuse;
          Alcotest.test_case "alibaba rpc pairs" `Quick test_alibaba_rpc_pairs;
          Alcotest.test_case "alibaba callee concentration" `Quick test_alibaba_callee_concentration;
          Alcotest.test_case "microbursts" `Quick test_microbursts_invariants;
          Alcotest.test_case "video disjoint pairs" `Quick test_video_disjoint_pairs;
          Alcotest.test_case "video bounds" `Quick test_video_too_many_senders;
          Alcotest.test_case "incast" `Quick test_incast_shape;
          Alcotest.test_case "load controls arrivals" `Quick test_load_controls_arrival_rate;
          Alcotest.test_case "invalid load" `Quick test_invalid_load_rejected;
          QCheck_alcotest.to_alcotest tracegen_qcheck;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "reuse fraction" `Quick test_stats_reuse_fraction;
          Alcotest.test_case "empty trace" `Quick test_stats_empty;
          Alcotest.test_case "unsorted input" `Quick test_stats_unsorted_input;
        ] );
      ( "locality",
        [
          Alcotest.test_case "golden stream" `Quick test_locality_golden_stream;
          Alcotest.test_case "deterministic" `Quick test_locality_deterministic;
          Alcotest.test_case "concentration monotone" `Quick
            test_locality_concentration_monotone;
          Alcotest.test_case "flow shape" `Quick test_locality_flows_shape;
          Alcotest.test_case "validation" `Quick test_locality_validation;
        ] );
      ( "io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "rejects bad input" `Quick test_io_rejects_bad_input;
        ] );
    ]
