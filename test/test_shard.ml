(* Domain-sharded event core: SPSC mailbox ordering, Engine.next_at,
   Metrics.merge split-stream equivalence, 1-shard vs n-shard
   differential runs, fixed-shard-count determinism, and a sharded DST
   smoke over fault seeds. *)

module Engine = Dessim.Engine
module Rng = Dessim.Rng
module Spsc = Dessim.Spsc
module Time_ns = Dessim.Time_ns
module Flow = Netcore.Flow
module Packet = Netcore.Packet
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip
module Mapping = Netcore.Mapping
module Topology = Topo.Topology
module Network = Netsim.Network
module Parnet = Netsim.Parnet
module Metrics = Netsim.Metrics
module Dst = Experiments.Dst

let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* SPSC mailbox: drain yields exact push order across ring and spill. *)

let spsc_fifo =
  QCheck.Test.make ~count:200
    ~name:"spsc: drain preserves push order across ring and spill"
    QCheck.(pair (int_range 0 4) (small_list (int_range 0 50)))
    (fun (cap_log, batches) ->
      let stride = 3 in
      let q = Spsc.create ~capacity:(1 lsl cap_log) ~stride () in
      let next = ref 0 and got = ref [] and expect = ref [] in
      let buf = Array.make stride 0 in
      List.iter
        (fun n ->
          (* producer phase: push a batch (overflow goes to spill) *)
          for _ = 1 to n do
            buf.(0) <- !next;
            buf.(1) <- (!next * 7) + 1;
            buf.(2) <- - !next;
            expect := !next :: !expect;
            incr next;
            Spsc.push q buf
          done;
          (* barrier-separated consumer phase *)
          Spsc.drain q (fun b off ->
              if b.(off + 1) <> (b.(off) * 7) + 1 || b.(off + 2) <> -b.(off)
              then QCheck.Test.fail_report "record payload corrupted";
              got := b.(off) :: !got);
          (* producer regains ownership of its spill at window start *)
          Spsc.reset_spill q)
        batches;
      !got = !expect && Spsc.pushed q = !next)

(* ------------------------------------------------------------------ *)
(* Engine.next_at against a sorted-list model, both backends. *)

let next_at_model sched =
  QCheck.Test.make ~count:150
    ~name:
      (Printf.sprintf "next_at (%s) tracks the pending minimum"
         (Engine.sched_name sched))
    QCheck.(
      pair (small_list (int_range 0 5_000)) (small_list (int_range 0 6_000)))
    (fun (keys, probes) ->
      let e = Engine.create ~sched () in
      List.iter (fun k -> Engine.schedule e ~at:k (fun () -> ())) keys;
      let pending = ref (List.sort compare keys) in
      let check () =
        let expect = match !pending with [] -> max_int | k :: _ -> k in
        Engine.next_at e = expect
      in
      check ()
      && List.for_all
           (fun p ->
             Engine.run_until e ~limit:p;
             pending := List.filter (fun k -> k > p) !pending;
             check ())
           probes)

(* ------------------------------------------------------------------ *)
(* Metrics.merge: recording a stream split across two collectors and
   merging is equivalent to recording it into one (satellite:
   commutative metrics merge). Ints must match exactly; float means
   may differ by summation order only. *)

let mtopo =
  Topology.build
    (Topo.Params.scaled ~pods:2 ~racks_per_pod:1 ~hosts_per_rack:2
       ~vms_per_host:2 ())

type mop =
  | Sent of int (* vip index *)
  | Dropped of int (* site index *)
  | Gw
  | Switch of int (* switch index *)
  | Deliv of bool (* first_of_flow *)
  | Misdeliv
  | FStart
  | FDone of int (* fct ns *)
  | Fpl of int

let mop_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun v -> Sent v) (int_range 0 7));
        (2, map (fun s -> Dropped s) (int_range 0 6));
        (2, return Gw);
        (3, map (fun s -> Switch s) (int_range 0 5));
        (4, map (fun b -> Deliv b) bool);
        (1, return Misdeliv);
        (2, return FStart);
        (2, map (fun f -> FDone f) (int_range 1 1_000_000));
        (2, map (fun f -> Fpl f) (int_range 1 100_000));
      ])

let mk_pkt vip =
  let p =
    Packet.make_data ~id:vip ~flow_id:vip ~seq:0 ~size:1500
      ~src_vip:(Vip.of_int vip) ~dst_vip:(Vip.of_int (vip lxor 1))
      ~src_pip:(Topology.pip mtopo 0) ~dst_pip:(Topology.pip mtopo 1) ~now:0
  in
  p.Packet.hops <- 2;
  p.Packet.hit_switch <- (Topology.switches mtopo).(0);
  p

let sites =
  Metrics.
    [|
      Link_buffer;
      Failed_switch;
      Gateway_miss;
      Host_miss;
      Fault_blackhole;
      Fault_loss;
      Fault_gateway;
    |]

let apply_mop m op =
  match op with
  | Sent v -> Metrics.packet_sent m (mk_pkt v)
  | Dropped s -> Metrics.packet_dropped m ~site:sites.(s) (mk_pkt 0)
  | Gw -> Metrics.gateway_arrival m (mk_pkt 1)
  | Switch s ->
      Metrics.switch_processed m
        ~switch:(Topology.switches mtopo).(s mod Array.length (Topology.switches mtopo))
        (mk_pkt 2)
  | Deliv first ->
      let p = mk_pkt 3 in
      p.Packet.sent_at <- 0;
      Metrics.delivered m p ~now:(Time_ns.of_us 5) ~first_of_flow:first
  | Misdeliv -> Metrics.misdelivered m (mk_pkt 4)
  | FStart -> Metrics.flow_started m
  | FDone fct -> Metrics.flow_completed m ~fct
  | Fpl l -> Metrics.first_packet_latency m l

let int_fingerprint m =
  let c0, c1, c2, c3, c4 = Metrics.layer_hits m in
  let f0, f1, f2, f3, f4 = Metrics.first_packet_layer_hits m in
  let drops =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (Metrics.drops_by_kind m)
    @ List.map
        (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        (Metrics.drops_by_site m)
  in
  Printf.sprintf
    "sent=%d gw=%d deliv=%d drop=%d mis=%d fs=%d fc=%d bytes=%d \
     layers=%d,%d,%d,%d,%d fpl=%d,%d,%d,%d,%d %s"
    (Metrics.packets_sent m) (Metrics.gateway_packets m)
    (Metrics.delivered_packets m)
    (Metrics.packets_dropped m)
    (Metrics.misdelivered_packets m)
    (Metrics.flows_started m) (Metrics.flows_completed m)
    (Metrics.total_switch_bytes m) c0 c1 c2 c3 c4 f0 f1 f2 f3 f4
    (String.concat " " drops)

let close a b = abs_float (a -. b) <= 1e-9 *. (1.0 +. abs_float a)

let merge_split_equiv =
  QCheck.Test.make ~count:200
    ~name:"metrics: split-stream merge == single-stream"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 60) (pair mop_gen bool)))
    (fun ops ->
      let mk () = Metrics.create mtopo (Rng.create 42) in
      let single = mk () and a = mk () and b = mk () in
      List.iter
        (fun (op, side) ->
          apply_mop single op;
          apply_mop (if side then a else b) op)
        ops;
      let ab = Metrics.merge a b and ba = Metrics.merge b a in
      let has_fct = List.exists (function FDone _, _ -> true | _ -> false) ops in
      (* commutativity is exact (same multisets, float adds commute) *)
      int_fingerprint ab = int_fingerprint ba
      && close (Metrics.mean_fct ab) (Metrics.mean_fct ba)
      && (not has_fct
         || close (Metrics.fct_percentile ab 0.99) (Metrics.fct_percentile ba 0.99))
      (* split == single: ints exact, float means up to summation order *)
      && int_fingerprint ab = int_fingerprint single
      && close (Metrics.mean_fct ab) (Metrics.mean_fct single)
      && close (Metrics.mean_first_packet_latency ab)
           (Metrics.mean_first_packet_latency single)
      && close (Metrics.mean_packet_latency ab)
           (Metrics.mean_packet_latency single)
      && close (Metrics.mean_stretch ab) (Metrics.mean_stretch single)
      && (not has_fct
         || close
              (Metrics.fct_percentile ab 0.5)
              (Metrics.fct_percentile single 0.5)))

let merge_topology_mismatch () =
  let other =
    Topology.build
      (Topo.Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2
         ~vms_per_host:2 ())
  in
  let a = Metrics.create mtopo (Rng.create 1)
  and b = Metrics.create other (Rng.create 1) in
  Alcotest.check_raises "different topologies rejected"
    (Invalid_argument "Metrics.merge: different topologies") (fun () ->
      ignore (Metrics.merge a b))

(* ------------------------------------------------------------------ *)
(* Differential: one logical run, classic single engine vs sharded.   *)

let params =
  Topo.Params.scaled ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:2 ~vms_per_host:2
    ()

let num_vms topo =
  Array.length (Topology.hosts topo) * (Topology.params topo).Topo.Params.vms_per_host

let mk_scheme name topo =
  match name with
  | "switchv2p" ->
      fst (Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:64)
  | "nocache" -> Schemes.Baselines.nocache ()
  | "direct" -> Schemes.Baselines.direct ()
  | "locallearning" ->
      fst (Schemes.Baselines.locallearning_with_cache ~topo ~total_slots:64)
  | _ -> invalid_arg name

(* Cross-pod-heavy reliable workload, light enough that nothing drops. *)
let gen_flows ~seed ~n topo =
  let vms = num_vms topo in
  let rng = Rng.create (seed lxor 0xd1ff) in
  List.init n (fun id ->
      let src = Rng.int rng vms in
      let dst = (src + (vms / 2) + Rng.int rng (vms / 2)) mod vms in
      let dst = if dst = src then (dst + 1) mod vms else dst in
      let packets = 3 + Rng.int rng 8 in
      Flow.make ~pkt_bytes:1500 ~id ~src_vip:(Vip.of_int src)
        ~dst_vip:(Vip.of_int dst) ~size_bytes:(packets * 1500)
        ~start:(Rng.int rng (Time_ns.of_ms 2))
        Flow.Tcpish)

let until = Time_ns.of_ms 40

let run_classic name ~flows ~migrations =
  let topo = Topology.build params in
  let net = Network.create topo ~scheme:(mk_scheme name topo) in
  Network.run net flows ~migrations ~until;
  net

let run_sharded name ~shards ~flows ~migrations =
  let topo = Topology.build params in
  Parnet.run ~shards topo
    ~make_scheme:(fun ~shard:_ -> mk_scheme name topo)
    ~flows ~migrations ~until

let final_mapping_of lookup topo =
  String.concat ";"
    (List.init (num_vms topo) (fun v ->
         Printf.sprintf "%d->%d" v (Pip.to_int (lookup (Vip.of_int v)))))

let check_same_outcome ~expect_misdelivery name net par =
  let check = Alcotest.check Alcotest.int in
  let m = Network.metrics net and pm = Parnet.metrics par in
  let n = Metrics.flows_started m in
  check (name ^ ": flows started") n (Metrics.flows_started pm);
  check (name ^ ": flows completed")
    (Metrics.flows_completed m)
    (Metrics.flows_completed pm);
  check (name ^ ": no drops (classic)") 0 (Metrics.packets_dropped m);
  check (name ^ ": no drops (sharded)") 0 (Metrics.packets_dropped pm);
  if not expect_misdelivery then begin
    check (name ^ ": no misdelivery (classic)") 0
      (Metrics.misdelivered_packets m);
    check (name ^ ": no misdelivery (sharded)") 0
      (Metrics.misdelivered_packets pm)
  end;
  (* conservation across the sharded run, mailboxes drained *)
  check (name ^ ": handoffs drained") 0 (Parnet.handoffs_in_flight par);
  check
    (name ^ ": sharded conservation")
    (Parnet.injected_packets par)
    (Metrics.delivered_packets pm
    + Metrics.packets_dropped pm
    + Parnet.consumed_at_switch par
    + Parnet.live_packets par);
  (* final mapping state identical on the classic net and every shard *)
  let topo = Network.topo net in
  let classic = final_mapping_of (Mapping.lookup (Network.mapping net)) topo in
  Array.iteri
    (fun s shard_net ->
      Alcotest.check Alcotest.string
        (Printf.sprintf "%s: final mapping, shard %d" name s)
        classic
        (final_mapping_of (Mapping.lookup (Network.mapping shard_net)) topo))
    (Parnet.nets par)

let diff_no_churn name () =
  let topo = Topology.build params in
  let flows = gen_flows ~seed:7 ~n:24 topo in
  let net = run_classic name ~flows ~migrations:[] in
  let par = run_sharded name ~shards:2 ~flows ~migrations:[] in
  check_same_outcome ~expect_misdelivery:false name net par;
  let m = Network.metrics net and pm = Parnet.metrics par in
  Alcotest.check Alcotest.int (name ^ ": delivered")
    (Metrics.delivered_packets m)
    (Metrics.delivered_packets pm);
  (* deterministic (non-learning) schemes agree on traffic volume too *)
  if name = "nocache" || name = "direct" then begin
    Alcotest.check Alcotest.int (name ^ ": packets sent")
      (Metrics.packets_sent m) (Metrics.packets_sent pm);
    Alcotest.check Alcotest.int (name ^ ": gateway packets")
      (Metrics.gateway_packets m)
      (Metrics.gateway_packets pm)
  end

(* Migrations cross shard boundaries mid-flow: completion counts,
   drops and the final mapping must still agree with the single-engine
   run (packet-level timing legitimately shifts by one lookahead on
   re-homed deliveries, so volumes are not compared). *)
let diff_with_migrations name () =
  let topo = Topology.build params in
  let vms = num_vms topo in
  let hosts = Topology.hosts topo in
  let flows = gen_flows ~seed:13 ~n:16 topo in
  let migrations =
    [
      {
        Network.at = Time_ns.of_ms 3;
        vip = Vip.of_int 0;
        to_host = hosts.(Array.length hosts - 1);
      };
      {
        Network.at = Time_ns.of_ms 5;
        vip = Vip.of_int (vms - 1);
        to_host = hosts.(0);
      };
    ]
  in
  let net = run_classic name ~flows ~migrations in
  let par = run_sharded name ~shards:2 ~flows ~migrations in
  check_same_outcome ~expect_misdelivery:true name net par

(* Fixed shard count => byte-identical replay, including under a DST
   fault plan (faults, churn, loss channels, reboots). *)
let determinism_fixed_shards () =
  List.iter
    (fun (shards, seed, scheme) ->
      let a = Dst.run_one ~shards ~seed ~scheme () in
      let b = Dst.run_one ~shards ~seed ~scheme () in
      Alcotest.check Alcotest.string
        (Printf.sprintf "%s seed %d @%d shards replays byte-identically"
           scheme seed shards)
        a.Dst.transcript b.Dst.transcript)
    [ (2, 11, "switchv2p"); (2, 3, "nocache"); (3, 7, "direct") ]

(* DST smoke at 2 shards: the full invariant suite (conservation with
   the mailbox term, stale delivery, liveness, occupancy) over fault
   seeds. *)
let dst_sharded_smoke () =
  let outcomes =
    Dst.run_seeds ~shards:2 ~schemes:[ "switchv2p"; "nocache" ]
      ~seeds:[ 1; 2 ] ()
  in
  List.iter
    (fun (o : Dst.outcome) ->
      List.iter
        (fun (inv, detail) ->
          Alcotest.failf "seed %d %s @2 shards violated %s: %s\nreplay: %s"
            o.Dst.seed o.Dst.scheme inv detail
            (Dst.replay_command ~seed:o.Dst.seed ~scheme:o.Dst.scheme))
        o.Dst.failures)
    outcomes;
  Alcotest.check Alcotest.int "all sharded DST runs pass" 0
    (List.length (Dst.failed outcomes))

let () =
  Alcotest.run "shard"
    [
      ("spsc", [ qtest spsc_fifo ]);
      ( "next_at",
        [ qtest (next_at_model Engine.Heap); qtest (next_at_model Engine.Wheel) ]
      );
      ( "metrics-merge",
        [
          qtest merge_split_equiv;
          Alcotest.test_case "topology mismatch" `Quick merge_topology_mismatch;
        ] );
      ( "differential",
        List.map
          (fun name ->
            Alcotest.test_case (name ^ " 1-shard == 2-shard") `Quick
              (diff_no_churn name))
          [ "switchv2p"; "nocache"; "direct"; "locallearning" ]
        @ List.map
            (fun name ->
              Alcotest.test_case (name ^ " with cross-shard migrations") `Quick
                (diff_with_migrations name))
            [ "nocache"; "direct" ] );
      ( "determinism",
        [ Alcotest.test_case "fixed shard count" `Quick determinism_fixed_shards ]
      );
      ("dst", [ Alcotest.test_case "sharded smoke" `Quick dst_sharded_smoke ]);
    ]
