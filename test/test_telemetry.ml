(* Telemetry subsystem tests: histogram bucket-edge geometry, JSON
   round-tripping, and the determinism guard — enabling telemetry must
   not change a single simulation result. *)

module Telemetry = Dessim.Telemetry
module Json = Dessim.Telemetry.Json
module Histogram = Dessim.Telemetry.Histogram
module Runner = Experiments.Runner
module Setup = Experiments.Setup
module Report = Experiments.Report

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let json_testable =
  Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

(* --- histograms --- *)

let test_bucket_edges () =
  (* One bucket per decade starting at 1.0: edges 1, 10, 100, 1000. *)
  let h = Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:3 () in
  checki "three buckets" 3 (Histogram.num_buckets h);
  for i = 0 to Histogram.num_buckets h - 1 do
    let lo_e, hi_e = Histogram.bucket_bounds h i in
    (* A lower edge opens its own bucket (half-open intervals)... *)
    checki (Printf.sprintf "lower edge of bucket %d" i) i
      (Histogram.bucket_index h lo_e);
    (* ...an interior point stays inside... *)
    checki
      (Printf.sprintf "midpoint of bucket %d" i)
      i
      (Histogram.bucket_index h ((lo_e +. hi_e) /. 2.0));
    (* ...and the upper edge already belongs to the next bucket. *)
    checki
      (Printf.sprintf "upper edge of bucket %d" i)
      (i + 1)
      (Histogram.bucket_index h hi_e)
  done;
  checki "below lo underflows" (-1) (Histogram.bucket_index h 0.5);
  checki "zero underflows" (-1) (Histogram.bucket_index h 0.0);
  checki "top edge overflows" 3 (Histogram.bucket_index h 1000.0);
  checki "far out overflows" 3 (Histogram.bucket_index h 1e9)

let test_record_and_counters () =
  let h = Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:3 () in
  Histogram.record h 0.5;
  (* underflow *)
  Histogram.record h 5.0;
  (* bucket 0 *)
  Histogram.record h 50.0;
  (* bucket 1 *)
  Histogram.record h 5000.0;
  (* overflow *)
  checki "count includes under/overflow" 4 (Histogram.count h);
  checki "underflow" 1 (Histogram.underflow h);
  checki "overflow" 1 (Histogram.overflow h);
  checki "bucket 0" 1 (Histogram.bucket_count h 0);
  checki "bucket 1" 1 (Histogram.bucket_count h 1);
  checki "bucket 2" 0 (Histogram.bucket_count h 2);
  checkb "sum" true (Float.abs (Histogram.sum h -. 5055.5) < 1e-9);
  checkb "mean" true (Float.abs (Histogram.mean h -. (5055.5 /. 4.0)) < 1e-9)

let test_percentile_conservative () =
  (* Default geometry: 20 buckets/decade, so a bucket spans a factor of
     10^(1/20) ~ 1.122. The reported percentile is the upper edge of
     the bucket holding the ranked sample: never below the true value
     and at most ~12.2% above it. *)
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h (float_of_int i *. 1e-3)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p90 = Histogram.percentile h 90.0 in
  let p99 = Histogram.percentile h 99.0 in
  checkb "p50 above true value" true (p50 >= 0.050);
  checkb "p50 within one bucket" true (p50 <= 0.050 *. 1.13);
  checkb "p90 above true value" true (p90 >= 0.090);
  checkb "p99 above true value" true (p99 >= 0.099);
  checkb "monotone" true (p50 <= p90 && p90 <= p99);
  checkb "empty is zero" true
    (Histogram.percentile (Histogram.create ()) 99.0 = 0.0)

let test_histogram_json () =
  let h = Histogram.create ~lo:1.0 ~buckets_per_decade:1 ~decades:3 () in
  Histogram.record h 5.0;
  Histogram.record h 7.0;
  let j = Histogram.to_json h in
  checkb "count field" true (Json.member "count" j = Some (Json.Int 2));
  (match Json.member "buckets" j with
  | Some (Json.List [ Json.List [ Json.Int 0; _; _; Json.Int 2 ] ]) -> ()
  | _ -> Alcotest.fail "expected a single populated bucket [0,lo,hi,2]");
  (* The JSON form must itself survive print-and-parse. *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.check json_testable "histogram json round-trips" j j'
  | Error e -> Alcotest.fail e

(* --- JSON --- *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "switchv2p-telemetry/v1");
        ( "manifest",
          Json.Obj
            [
              ("scheme", Json.Str "SwitchV2P");
              ("seed", Json.Int 42);
              ("horizon_s", Json.Float 0.0125);
              ("git_rev", Json.Str "deadbeef");
              ( "topology",
                Json.Obj [ ("pods", Json.Int 8); ("racks_per_pod", Json.Int 4) ]
              );
            ] );
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("negative", Json.Int (-17));
        ("tiny_float", Json.Float 3.177e-7);
        ("escapes", Json.Str "quote\" slash\\ nl\n tab\t ctl\001");
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' -> Alcotest.check json_testable "document round-trips" doc doc'
  | Error e -> Alcotest.fail e

let test_json_int_float_distinction () =
  (* A float that happens to be integral must not collapse into an Int
     across a round trip, and vice versa. *)
  (match Json.parse (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float 3.0) -> ()
  | Ok j -> Alcotest.fail ("expected Float 3.0, got " ^ Json.to_string j)
  | Error e -> Alcotest.fail e);
  (match Json.parse (Json.to_string (Json.Int 3)) with
  | Ok (Json.Int 3) -> ()
  | Ok j -> Alcotest.fail ("expected Int 3, got " ^ Json.to_string j)
  | Error e -> Alcotest.fail e);
  (* Scientific notation parses as a float. *)
  match Json.parse "1e-3" with
  | Ok (Json.Float f) -> checkb "1e-3" true (Float.abs (f -. 0.001) < 1e-12)
  | _ -> Alcotest.fail "expected Float"

let test_json_parse_errors () =
  let is_error s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  checkb "trailing garbage" true (is_error "{}x");
  checkb "unterminated list" true (is_error "[1,2");
  checkb "unterminated string" true (is_error "\"abc");
  checkb "bare word" true (is_error "nope");
  checkb "empty input" true (is_error "");
  checkb "whitespace ok" false (is_error "  { \"a\" : [ 1 , null ] }  ")

let test_json_member () =
  let j = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  checkb "present" true (Json.member "a" j = Some (Json.Int 1));
  checkb "absent" true (Json.member "c" j = None);
  checkb "non-object" true (Json.member "a" (Json.List []) = None)

(* --- collector plumbing --- *)

let test_disabled_is_inert () =
  let t = Telemetry.disabled in
  checkb "disabled" false (Telemetry.is_enabled t);
  Telemetry.observe t "x" 1.0;
  Telemetry.sample t "y" ~now_sec:0.0 2.0;
  Telemetry.trace t ~now_sec:0.0 ~pkt:0 ~node:0 "ev";
  checkb "no histogram created" true (Telemetry.histogram t "x" = None);
  checki "no flight events" 0 (Telemetry.flight_events t)

let test_flight_sampling () =
  let t = Telemetry.create ~flight_sample_every:4 ~max_flight_events:3 () in
  for pkt = 0 to 15 do
    Telemetry.trace t ~now_sec:0.0 ~pkt ~node:1 "seen"
  done;
  (* pkts 0,4,8 are sampled; 12 hits the cap. *)
  checki "cap respected" 3 (Telemetry.flight_events t);
  checkb "unsampled id rejected" false (Telemetry.should_trace t ~pkt:5)

(* --- the determinism guard --- *)

let render_result (r : Runner.result) =
  let b = Buffer.create 1024 in
  let f name v = Buffer.add_string b (Printf.sprintf "%s=%.17g\n" name v) in
  let i name v = Buffer.add_string b (Printf.sprintf "%s=%d\n" name v) in
  let counts name kvs =
    List.iter (fun (k, v) -> i (name ^ "." ^ k) v) kvs
  in
  Buffer.add_string b (r.Runner.scheme ^ "\n");
  f "hit_rate" r.Runner.hit_rate;
  f "mean_fct" r.Runner.mean_fct;
  f "mean_fpl" r.Runner.mean_fpl;
  f "mean_pkt_latency" r.Runner.mean_pkt_latency;
  f "stretch" r.Runner.stretch;
  i "gw_packets" r.Runner.gw_packets;
  i "packets_sent" r.Runner.packets_sent;
  i "packets_dropped" r.Runner.packets_dropped;
  counts "drops_by_kind" r.Runner.drops_by_kind;
  counts "drops_by_site" r.Runner.drops_by_site;
  i "misdelivered" r.Runner.misdelivered;
  i "flows_started" r.Runner.flows_started;
  i "flows_completed" r.Runner.flows_completed;
  i "reordering" r.Runner.reordering_events;
  let core, spine, tor, gw, host = r.Runner.layer_hits in
  List.iter2 i
    [ "hits.core"; "hits.spine"; "hits.tor"; "hits.gw"; "hits.host" ]
    [ core; spine; tor; gw; host ];
  List.iter (fun (k, v) -> f ("extra." ^ k) v) r.Runner.extra;
  Array.iter (fun (pod, bytes) -> i (Printf.sprintf "pod%d" pod) bytes)
    r.Runner.bytes_by_pod;
  Array.iter (fun (sw, bytes) -> i (Printf.sprintf "sw%d" sw) bytes)
    r.Runner.bytes_by_switch;
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_dir () =
  let path = Filename.temp_file "sv2p-telemetry" "" in
  Sys.remove path;
  path

let run_once setup ~flows ~slots =
  let scheme =
    Schemes.Switchv2p_scheme.make setup.Setup.topo ~total_cache_slots:slots
  in
  Runner.run ~report_name:"telemetry/guard" setup ~scheme ~flows ~migrations:[]
    ~until:(Setup.horizon flows)

let test_telemetry_off_byte_identical () =
  let setup = Setup.ft8 `Tiny in
  let flows = Setup.hadoop_trace setup in
  let slots = Setup.cache_slots setup ~pct:100 in
  (* Plain run: no telemetry dir, the collector stays disabled. *)
  Report.set_telemetry_dir None;
  let plain = render_result (run_once setup ~flows ~slots) in
  (* Instrumented run: same seed, same flows, telemetry enabled. *)
  let dir = fresh_dir () in
  Report.set_telemetry_dir (Some dir);
  let instrumented =
    Fun.protect
      ~finally:(fun () -> Report.set_telemetry_dir None)
      (fun () -> render_result (run_once setup ~flows ~slots))
  in
  checks "results byte-identical with telemetry on" plain instrumented;
  (* The instrumented run must have produced a well-formed report. *)
  let path = Filename.concat dir (Report.slug "telemetry/guard" ^ ".json") in
  checkb "report written" true (Sys.file_exists path);
  match Json.parse (read_file path) with
  | Error e -> Alcotest.fail ("report does not parse: " ^ e)
  | Ok doc ->
      checkb "schema tag" true
        (Json.member "schema" doc
        = Some (Json.Str "switchv2p-telemetry/v1"));
      let manifest = Option.get (Json.member "manifest" doc) in
      checkb "manifest scheme" true
        (Json.member "scheme" manifest = Some (Json.Str "SwitchV2P"));
      checkb "manifest seed" true
        (match Json.member "seed" manifest with
        | Some (Json.Int _) -> true
        | _ -> false);
      checkb "manifest topology" true
        (match Json.member "topology" manifest with
        | Some (Json.Obj _) -> true
        | _ -> false);
      let histograms = Option.get (Json.member "histograms" doc) in
      checkb "fct histogram present" true
        (Json.member "fct_s" histograms <> None);
      checkb "latency histogram present" true
        (Json.member "packet_latency_s" histograms <> None);
      let series = Option.get (Json.member "series" doc) in
      checkb "per-tier series present" true
        (Json.member "tier/tor/occupancy" series <> None);
      checkb "network series present" true
        (Json.member "net/flows_completed" series <> None);
      (match Json.member "drops_by_kind" doc with
      | Some (Json.Obj kvs) ->
          Alcotest.check
            (Alcotest.list Alcotest.string)
            "all four kinds accounted"
            [ "data"; "ack"; "learning"; "invalidation" ]
            (List.map fst kvs)
      | _ -> Alcotest.fail "drops_by_kind missing");
      (match Json.member "flight" doc with
      | Some flight ->
          checkb "flight sample rate recorded" true
            (Json.member "sample_every" flight = Some (Json.Int 64))
      | None -> Alcotest.fail "flight section missing")

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "record and counters" `Quick
            test_record_and_counters;
          Alcotest.test_case "percentile conservative" `Quick
            test_percentile_conservative;
          Alcotest.test_case "json export" `Quick test_histogram_json;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "int/float distinction" `Quick
            test_json_int_float_distinction;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "collector",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "flight sampling" `Quick test_flight_sampling;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "telemetry-off byte-identical" `Slow
            test_telemetry_off_byte_identical;
        ] );
    ]
