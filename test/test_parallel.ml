(* Tests for the experiment worker pool: submission-order results,
   exception propagation, counters, and — the load-bearing property —
   byte-identical sweep results regardless of worker count. *)

module Parallel = Experiments.Parallel
module Setup = Experiments.Setup
module Runner = Experiments.Runner

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let named f i = (Printf.sprintf "t%d" i, fun () -> f i)

let test_submission_order () =
  let tasks = List.init 33 (named (fun i -> i * i)) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order with %d jobs" jobs)
        (List.init 33 (fun i -> i * i))
        (Parallel.map ~jobs tasks))
    [ 1; 2; 4; 7 ]

let test_map_named () =
  let tasks = List.init 5 (named (fun i -> 10 * i)) in
  Alcotest.(check (list (pair string int)))
    "names zipped back"
    (List.init 5 (fun i -> (Printf.sprintf "t%d" i, 10 * i)))
    (Parallel.map_named ~jobs:3 tasks)

exception Boom of int

let test_exception_propagates () =
  let tasks =
    List.init 8 (named (fun i -> if i = 5 then raise (Boom i) else i))
  in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs tasks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 5 -> ())
    [ 1; 4 ]

let test_counters () =
  Parallel.reset_counters ();
  ignore (Parallel.map ~jobs:2 (List.init 6 (named Fun.id)));
  let c = Parallel.counters () in
  checki "tasks counted" 6 c.Parallel.tasks;
  checkb "busy time non-negative" true (c.Parallel.busy_seconds >= 0.0);
  checki "max jobs" 2 c.Parallel.max_jobs

(* A sweep of real simulation runs must produce byte-identical results
   no matter how many workers execute it. Each task realizes its own
   per-domain topology through [Setup.pooled], so no mutable state
   crosses domains; everything else a task reads (the flow list) is
   immutable. *)
let sweep jobs =
  let spec = Setup.spec_ft8 `Tiny in
  let flows = Setup.hadoop_trace (Setup.pooled spec) in
  let until = Setup.horizon flows in
  let task name mk_scheme =
    ( name,
      fun () ->
        let s = Setup.pooled spec in
        Runner.run s ~scheme:(mk_scheme s) ~flows ~migrations:[] ~until )
  in
  let tasks =
    [
      task "nocache" (fun _ -> Schemes.Baselines.nocache ());
      task "ondemand" (fun _ -> Schemes.Baselines.ondemand ());
      task "direct" (fun _ -> Schemes.Baselines.direct ());
      task "switchv2p" (fun s ->
          Schemes.Switchv2p_scheme.make s.Setup.topo
            ~total_cache_slots:(Setup.cache_slots s ~pct:50));
    ]
  in
  Parallel.map ~jobs tasks

let test_results_independent_of_workers () =
  let seq = sweep 1 in
  let par = sweep 4 in
  checki "same length" (List.length seq) (List.length par);
  checkb "byte-identical results" true
    (Marshal.to_string seq [] = Marshal.to_string par [])

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick test_submission_order;
          Alcotest.test_case "map_named" `Quick test_map_named;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "1 vs 4 workers byte-identical" `Slow
            test_results_independent_of_workers;
        ] );
    ]
