(* Shape tests at tiny scale for every experiment: these assert the
   qualitative results the paper reports (who wins, directions of
   effects), not absolute numbers. *)

module Fig5 = Experiments.Fig5
module Fig7_8 = Experiments.Fig7_8
module Fig9 = Experiments.Fig9
module Fig10 = Experiments.Fig10
module Tab4 = Experiments.Tab4
module Tab5 = Experiments.Tab5
module Tab6 = Experiments.Tab6
module App_a2 = Experiments.App_a2
module Ablation = Experiments.Ablation
module Runner = Experiments.Runner
module Setup = Experiments.Setup

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let series name (t : Fig5.t) = List.assoc name t.Fig5.series

let test_fig5_hadoop_shape () =
  let t = Fig5.run ~scale:`Tiny ~cache_pcts:[ 10; 400 ] Fig5.Hadoop in
  let v2p = series "SwitchV2P" t in
  let nc_hit = t.Fig5.nocache.Runner.hit_rate in
  checkb "nocache hit rate is zero" true (nc_hit = 0.0);
  (* Hit rate grows with cache size. *)
  checkb "hit grows with cache" true (v2p.(1).Fig5.hit > v2p.(0).Fig5.hit);
  (* At a large cache, SwitchV2P clearly beats NoCache on FCT... *)
  checkb "fct improves" true (v2p.(1).Fig5.fct_x > 1.2);
  (* ...and beats LocalLearning, the strawman. *)
  let ll = series "LocalLearning" t in
  checkb "beats locallearning on hit" true (v2p.(1).Fig5.hit > ll.(1).Fig5.hit);
  checkb "beats locallearning on fct" true (v2p.(1).Fig5.fct_x > ll.(1).Fig5.fct_x);
  (* Direct is the (unreachable) ideal. *)
  let d = series "Direct" t in
  checkb "direct is the upper bound" true (d.(1).Fig5.fct_x >= v2p.(1).Fig5.fct_x)

let test_fig5_video_no_reuse () =
  let t = Fig5.run ~scale:`Tiny ~cache_pcts:[ 400 ] Fig5.Video in
  let v2p = series "SwitchV2P" t in
  (* No destination reuse: first-packet latency cannot improve much. *)
  checkb "no first-packet win without reuse" true (v2p.(0).Fig5.fpl_x < 1.5)

let test_fig5_microbursts_runs () =
  let t = Fig5.run ~scale:`Tiny ~cache_pcts:[ 100 ] Fig5.Microbursts in
  let v2p = series "SwitchV2P" t in
  checkb "some hits" true (v2p.(0).Fig5.hit > 0.0)

let test_fig6_alibaba_shape () =
  let t = Fig5.run ~scale:`Tiny ~cache_pcts:[ 200 ] Fig5.Alibaba in
  let v2p = series "SwitchV2P" t in
  (* RPC traffic has strong reuse: high hit rates and real FCT wins. *)
  checkb "high hit rate" true (v2p.(0).Fig5.hit > 0.5);
  checkb "fct improves" true (v2p.(0).Fig5.fct_x > 1.0)

let test_fig7_gateway_load_reduction () =
  let t = Fig7_8.run ~scale:`Tiny ~cache_pct:100 () in
  let bytes name =
    let r = List.assoc name t.Fig7_8.results in
    Array.fold_left (fun acc (_, b) -> acc + b) 0 r.Runner.bytes_by_pod
  in
  (* SwitchV2P reduces total processed bytes vs NoCache and sits above
     Direct. *)
  checkb "v2p below nocache" true (bytes "SwitchV2P" < bytes "NoCache");
  checkb "direct is the floor" true (bytes "Direct" <= bytes "SwitchV2P");
  (* The gateway pod itself gets visibly cooler. *)
  let gw_pod_bytes name =
    let r = List.assoc name t.Fig7_8.results in
    List.assoc t.Fig7_8.gateway_pod
      (Array.to_list r.Runner.bytes_by_pod)
  in
  checkb "gateway pod cooler" true
    (gw_pod_bytes "SwitchV2P" < gw_pod_bytes "NoCache")

let test_fig7_stretch_ordering () =
  let t = Fig7_8.run ~scale:`Tiny ~cache_pct:100 () in
  let stretch name = (List.assoc name t.Fig7_8.results).Runner.stretch in
  checkb "direct < v2p" true (stretch "Direct" <= stretch "SwitchV2P");
  checkb "v2p < nocache" true (stretch "SwitchV2P" < stretch "NoCache")

let test_fig9_gateway_resilience () =
  let t = Fig9.run ~scale:`Tiny ~cache_pct:100 () in
  let last (name : string) =
    let pts = List.assoc name t.Fig9.series in
    pts.(Array.length pts - 1)
  in
  let first (name : string) = (List.assoc name t.Fig9.series).(0) in
  (* With 10x fewer gateways SwitchV2P retains most of its FCT... *)
  let v2p_hold = (last "SwitchV2P").Fig9.fct_x /. (first "SwitchV2P").Fig9.fct_x in
  let nc_hold = (last "NoCache").Fig9.fct_x /. (first "NoCache").Fig9.fct_x in
  checkb "v2p holds better than nocache" true (v2p_hold > nc_hold);
  checkb "v2p still beats nocache baseline" true ((last "SwitchV2P").Fig9.fct_x > 1.0)

let test_fig10_runs_all_sizes () =
  let t = Fig10.run ~cache_pct:100 ~total_hosts:16 () in
  checkb "several pod counts" true (List.length t.Fig10.pod_counts >= 2);
  List.iter
    (fun (_, pts) ->
      Array.iter
        (fun p -> checkb "fct factor positive" true (p.Fig10.fct_x > 0.0))
        pts)
    t.Fig10.series

let test_tab4_shape () =
  let t = Tab4.run ~scale:`Tiny ~senders:8 () in
  let row v = List.find (fun r -> r.Tab4.variant = v) t.Tab4.rows in
  let nocache = row "NoCache" in
  let ondemand = row "OnDemand" in
  let no_inval = row "SwitchV2P w/o invalidations" in
  let no_ts = row "SwitchV2P w/o timestamp vector" in
  let full = row "SwitchV2P w/ timestamp vector" in
  checkb "nocache all via gateway" true (nocache.Tab4.gateway_pkt_share > 0.99);
  checkb "ondemand no gateway" true (ondemand.Tab4.gateway_pkt_share < 0.01);
  checkb "switchv2p mostly cached" true (full.Tab4.gateway_pkt_share < 0.5);
  checkb "caching cuts latency" true (full.Tab4.latency_x < 0.8);
  (* Invalidations cut misdeliveries. *)
  checkb "invalidations help" true
    (no_ts.Tab4.misdelivered_x < no_inval.Tab4.misdelivered_x);
  (* The timestamp vector slashes invalidation traffic. *)
  checkb "ts vector reduces invalidations" true
    (full.Tab4.invalidation_packets < no_ts.Tab4.invalidation_packets);
  checki "no invalidations when disabled" 0 no_inval.Tab4.invalidation_packets

let test_tab5_distributions_normalized () =
  let t = Tab5.run ~scale:`Tiny ~cache_pct:100 () in
  checki "five traces" 5 (List.length t.Tab5.rows);
  List.iter
    (fun r ->
      let s = r.Tab5.total in
      let sum = s.Tab5.core +. s.Tab5.spine +. s.Tab5.tor in
      checkb "normalized or empty" true
        (Float.abs (sum -. 1.0) < 1e-6 || sum = 0.0))
    t.Tab5.rows

let test_tab5_tcp_hits_mostly_tor () =
  let t = Tab5.run ~scale:`Tiny ~cache_pct:100 () in
  let hadoop = List.find (fun r -> r.Tab5.trace = "Hadoop") t.Tab5.rows in
  checkb "ToR dominates total hits" true (hadoop.Tab5.total.Tab5.tor > 0.5)

let test_tab6_values () =
  let t = Tab6.run () in
  checkb "sram plausible" true
    (t.Tab6.usage.P4model.Resources.sram > 3.0
    && t.Tab6.usage.P4model.Resources.sram < 5.0)

let test_dist_of_normalization () =
  let d = Tab5.dist_of ~core:1 ~spine:1 ~tor:2 in
  checkb "quarters" true
    (Float.abs (d.Tab5.core -. 0.25) < 1e-9
    && Float.abs (d.Tab5.tor -. 0.5) < 1e-9);
  let z = Tab5.dist_of ~core:0 ~spine:0 ~tor:0 in
  checkb "all-zero stays zero" true (z.Tab5.core = 0.0 && z.Tab5.tor = 0.0)

let test_app_a2_runs () =
  let t = App_a2.run ~scale:`Tiny ~cache_pcts:[ 50 ] () in
  checki "four schemes" 4 (List.length t.App_a2.series);
  List.iter
    (fun (_, cells) ->
      Array.iter
        (fun c -> checkb "sane hit rate" true (c.App_a2.hit >= 0.0 && c.App_a2.hit <= 1.0))
        cells)
    t.App_a2.series

let test_ablation_full_is_best_or_close () =
  let t = Experiments.Ablation.run ~scale:`Tiny ~cache_pct:100 () in
  let full = List.find (fun r -> r.Ablation.variant = "full") t.Ablation.rows in
  List.iter
    (fun r ->
      checkb
        (Printf.sprintf "full >= %s - slack" r.Ablation.variant)
        true
        (full.Ablation.hit +. 0.15 >= r.Ablation.hit))
    t.Ablation.rows

let test_resilience_shape () =
  let t = Experiments.Resilience.run ~scale:`Tiny () in
  checki "no flow lost to the failure" t.Experiments.Resilience.flows_started
    t.Experiments.Resilience.flows_completed;
  checkb "hit rate at most mildly affected" true
    (t.Experiments.Resilience.hit_with_failure
    >= t.Experiments.Resilience.hit_before -. 0.2)

let test_datasets_shape () =
  let t = Experiments.Datasets.run ~scale:`Tiny () in
  let row name =
    List.find (fun r -> r.Experiments.Datasets.trace = name) t.Experiments.Datasets.rows
  in
  let reuse name =
    Workloads.Trace_stats.reuse_fraction (row name).Experiments.Datasets.stats
  in
  checkb "hadoop reuse-heavy" true (reuse "Hadoop" > 0.5);
  checkb "alibaba reuse-heavy" true (reuse "Alibaba" > 0.5);
  checkb "websearch reuse-free" true (reuse "WebSearch" < 0.1);
  checkb "video reuse-free" true (reuse "Video" = 0.0)

let test_report_slug () =
  Alcotest.check Alcotest.string "slugified" "fig-5a-hit-rate-50"
    (Experiments.Report.slug "Fig 5a: hit rate (50%)");
  Alcotest.check Alcotest.string "no trailing dash" "x"
    (Experiments.Report.slug "X!!!")

let test_report_csv () =
  let out =
    Experiments.Report.csv ~header:[ "a"; "b" ]
      [ [ "1"; "plain" ]; [ "2"; "with,comma" ]; [ "3"; "with\"quote" ] ]
  in
  Alcotest.check Alcotest.string "csv escaping"
    "a,b\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n" out

let test_cache_geometry_shape () =
  let t =
    Experiments.Cache_geometry.run ~scale:`Tiny ~localities:[ 0.5 ]
      ~cache_pcts:[ 400 ] ()
  in
  let point name =
    match
      List.find_opt
        (fun p -> p.Experiments.Cache_geometry.geometry = name)
        t.Experiments.Cache_geometry.points
    with
    | Some p -> p
    | None -> Alcotest.fail ("missing frontier point for " ^ name)
  in
  let rate name = (point name).Experiments.Cache_geometry.hit_rate in
  checkb "rates sane" true (rate "direct" > 0.0);
  List.iter
    (fun name ->
      let p = point name in
      checkb (name ^ " hit rate in [0,1]") true
        (p.Experiments.Cache_geometry.hit_rate >= 0.0
        && p.Experiments.Cache_geometry.hit_rate <= 1.0);
      checkb
        (name ^ " sram bits positive")
        true
        (p.Experiments.Cache_geometry.sram_bits > 0))
    t.Experiments.Cache_geometry.geometries;
  (* The sketch costs bits: tinylfu points sit strictly to the right
     of their base geometry at equal slots. *)
  checkb "tinylfu costs sketch bits" true
    ((point "direct+tinylfu").Experiments.Cache_geometry.sram_bits
    > (point "direct").Experiments.Cache_geometry.sram_bits)

let test_dht_compare_shape () =
  let t = Experiments.Dht_compare.run ~scale:`Tiny () in
  let find rows name =
    List.find (fun r -> r.Experiments.Dht_compare.scheme = name) rows
  in
  let dht = find t.Experiments.Dht_compare.healthy "DhtStore" in
  let dht_failed = find t.Experiments.Dht_compare.under_failure "DhtStore" in
  let v2p = find t.Experiments.Dht_compare.healthy "SwitchV2P" in
  let v2p_failed = find t.Experiments.Dht_compare.under_failure "SwitchV2P" in
  (* Healthy DHT avoids the gateways entirely. *)
  checki "dht bypasses gateways" 0 dht.Experiments.Dht_compare.gw_packets;
  (* Failure hurts the DHT far more than SwitchV2P (the paper's
     dismissal argument). *)
  checkb "dht degrades under failure" true
    (dht_failed.Experiments.Dht_compare.fct_x
    < dht.Experiments.Dht_compare.fct_x);
  checkb "switchv2p barely moves" true
    (Float.abs
       (v2p_failed.Experiments.Dht_compare.fct_x
       -. v2p.Experiments.Dht_compare.fct_x)
    < 0.5)

let test_runner_improvement_guards () =
  Alcotest.check (Alcotest.float 1e-9) "degenerate baseline" 1.0
    (Runner.improvement ~baseline:0.0 ~v:5.0);
  Alcotest.check (Alcotest.float 1e-9) "degenerate value" 1.0
    (Runner.improvement ~baseline:5.0 ~v:0.0);
  Alcotest.check (Alcotest.float 1e-9) "normal" 2.0
    (Runner.improvement ~baseline:10.0 ~v:5.0)

let test_setup_cache_slots () =
  let s = Setup.ft8 `Tiny in
  checki "50% of vips" (s.Setup.num_vms / 2) (Setup.cache_slots s ~pct:50);
  checki "1500%" (s.Setup.num_vms * 15) (Setup.cache_slots s ~pct:1500);
  Alcotest.check_raises "negative pct"
    (Invalid_argument "Setup.cache_slots: negative percentage") (fun () ->
      ignore (Setup.cache_slots s ~pct:(-1)))

let () =
  Alcotest.run "experiments"
    [
      ( "fig5/6",
        [
          Alcotest.test_case "hadoop shape" `Slow test_fig5_hadoop_shape;
          Alcotest.test_case "video no reuse" `Slow test_fig5_video_no_reuse;
          Alcotest.test_case "microbursts runs" `Slow test_fig5_microbursts_runs;
          Alcotest.test_case "alibaba shape" `Slow test_fig6_alibaba_shape;
        ] );
      ( "fig7/8",
        [
          Alcotest.test_case "gateway load reduction" `Slow
            test_fig7_gateway_load_reduction;
          Alcotest.test_case "stretch ordering" `Slow test_fig7_stretch_ordering;
        ] );
      ( "fig9/10",
        [
          Alcotest.test_case "gateway resilience" `Slow test_fig9_gateway_resilience;
          Alcotest.test_case "topology scaling runs" `Slow test_fig10_runs_all_sizes;
        ] );
      ( "tables",
        [
          Alcotest.test_case "tab4 migration" `Slow test_tab4_shape;
          Alcotest.test_case "tab5 normalized" `Slow test_tab5_distributions_normalized;
          Alcotest.test_case "tab5 ToR domination" `Slow test_tab5_tcp_hits_mostly_tor;
          Alcotest.test_case "tab6 values" `Quick test_tab6_values;
          Alcotest.test_case "dist_of" `Quick test_dist_of_normalization;
          Alcotest.test_case "appendix A2" `Slow test_app_a2_runs;
          Alcotest.test_case "ablation" `Slow test_ablation_full_is_best_or_close;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "resilience" `Slow test_resilience_shape;
          Alcotest.test_case "datasets" `Quick test_datasets_shape;
          Alcotest.test_case "cache geometry" `Quick test_cache_geometry_shape;
          Alcotest.test_case "dht comparison" `Slow test_dht_compare_shape;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "report slug" `Quick test_report_slug;
          Alcotest.test_case "report csv" `Quick test_report_csv;
          Alcotest.test_case "improvement guards" `Quick test_runner_improvement_guards;
          Alcotest.test_case "cache slots" `Quick test_setup_cache_slots;
        ] );
    ]
