/* SwitchV2P reference data plane, P4_16 (v1model).
 *
 * Reference implementation of the §3 pipeline matching the OCaml
 * simulator's `Switchv2p.Dataplane` semantics: a direct-mapped V2P
 * cache in three register arrays (keys / values / access bits),
 * role-dependent learning (Table 1), misdelivery tagging at ToRs, and
 * option headers for the spillover / promotion / invalidation riders.
 *
 * The paper's prototype targets Tofino (TNA); this file uses the
 * portable v1model architecture so it can be compiled with the open
 * source p4c bmv2 backend. Packet generation (learning packets,
 * invalidation packets) is done with clone/recirculate primitives as
 * the paper describes using mirroring on Tofino. This artifact is not
 * exercised by the OCaml test suite — it documents the hardware
 * mapping of the protocol; the simulator is the executable
 * specification.
 */

#include <core.p4>
#include <v1model.p4>

/* ------------------------------------------------------------------ */
/* Configuration                                                       */
/* ------------------------------------------------------------------ */

#define CACHE_SLOTS      65536      /* per-switch lines (2^16)          */
#define CACHE_IDX_BITS   16
#define P_LEARN_SHIFT    8          /* P(learning pkt) = 2^-8 ~ 0.4%    */

typedef bit<32> vip_t;
typedef bit<32> pip_t;
typedef bit<16> switch_id_t;

/* Switch categories (Table 1). Installed by the control plane; a
 * gateway migration rewrites this one register (see
 * Dataplane.reassign_role in the simulator). */
const bit<3> ROLE_GW_TOR    = 0;
const bit<3> ROLE_GW_SPINE  = 1;
const bit<3> ROLE_TOR       = 2;
const bit<3> ROLE_SPINE     = 3;
const bit<3> ROLE_CORE      = 4;

/* ------------------------------------------------------------------ */
/* Headers                                                             */
/* ------------------------------------------------------------------ */

header ipv4_h {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp_ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;        /* 4 = IP-in-IP */
    bit<16> checksum;
    pip_t   src;             /* physical addresses in the outer header */
    pip_t   dst;
}

/* SwitchV2P option block, carried between the outer and inner IPv4
 * headers (the simulator's Netcore.Wire layout). */
header v2p_option_h {
    bit<1>  resolved;
    bit<1>  misdelivery;
    bit<1>  gw_visited;
    bit<1>  has_spill;
    bit<1>  has_promo;
    bit<1>  has_mapping;     /* learning / invalidation payload        */
    bit<2>  kind;            /* 0 data, 1 ack, 2 learning, 3 inval     */
    switch_id_t hit_switch;  /* 0xffff = none                          */
    pip_t   stale_pip;       /* valid when misdelivery = 1             */
    vip_t   spill_vip;       /* valid when has_spill                   */
    pip_t   spill_pip;
    vip_t   promo_vip;       /* valid when has_promo                   */
    pip_t   promo_pip;
    vip_t   map_vip;         /* valid when has_mapping                 */
    pip_t   map_pip;
}

header inner_ipv4_h {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp_ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<16> flags_frag;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    vip_t   src;             /* virtual addresses in the inner header  */
    vip_t   dst;
}

struct headers_t {
    ipv4_h       outer;
    v2p_option_h opt;
    inner_ipv4_h inner;
}

struct metadata_t {
    bit<3>       role;           /* this switch's Table-1 category     */
    switch_id_t  self_id;
    pip_t        self_pip;
    bit<1>       from_attached_server;   /* ingress-port front panel   */
    pip_t        attached_pip;           /* PIP of that server         */
    bit<CACHE_IDX_BITS> slot;
    bit<1>       cache_hit;
    bit<1>       access_was_set;
    pip_t        cache_value;
    bit<1>       dst_is_local_pod;
}

/* ------------------------------------------------------------------ */
/* Parser                                                              */
/* ------------------------------------------------------------------ */

parser SwitchV2PParser(packet_in pkt, out headers_t hdr,
                       inout metadata_t meta,
                       inout standard_metadata_t std) {
    state start {
        pkt.extract(hdr.outer);
        transition select(hdr.outer.protocol) {
            4: parse_opt;            /* IP-in-IP tunnel */
            default: accept;
        }
    }
    state parse_opt {
        pkt.extract(hdr.opt);
        pkt.extract(hdr.inner);
        transition accept;
    }
}

/* ------------------------------------------------------------------ */
/* Ingress                                                             */
/* ------------------------------------------------------------------ */

control SwitchV2PIngress(inout headers_t hdr, inout metadata_t meta,
                         inout standard_metadata_t std) {

    /* The in-switch cache: one register array per field, exactly the
     * three-array layout the paper reports (§3.4). */
    register<vip_t>(CACHE_SLOTS) cache_keys;
    register<pip_t>(CACHE_SLOTS) cache_values;
    register<bit<1>>(CACHE_SLOTS) cache_access;

    /* Per-target-switch timestamp vector for invalidation
     * rate-limiting (§3.3); indexed by switch id. */
    register<bit<48>>(1024) ts_vector;

    /* Role/self configuration, written by the control plane. */
    register<bit<3>>(1)  cfg_role;
    register<bit<16>>(1) cfg_self_id;
    register<bit<32>>(1) cfg_self_pip;

    /* Front-panel port -> attached server PIP (ToRs only, §3.3). */
    action set_attached(pip_t server_pip) {
        meta.from_attached_server = 1;
        meta.attached_pip = server_pip;
    }
    table front_panel {
        key = { std.ingress_port : exact; }
        actions = { set_attached; NoAction; }
        default_action = NoAction();
        size = 64;
    }

    /* L3 next hop on the (unchanged) underlay routing. */
    action fwd(bit<9> port) { std.egress_spec = port; }
    table ipv4_lpm {
        key = { hdr.outer.dst : lpm; }
        actions = { fwd; NoAction; }
        default_action = NoAction();
        size = 4096;
    }

    bit<CACHE_IDX_BITS> slot_of(in vip_t v) {
        bit<32> h;
        hash(h, HashAlgorithm.crc32, 32w0, { v }, 32w0xffffffff);
        return h[CACHE_IDX_BITS-1:0];
    }

    /* Lookup with the paper's access-bit semantics: hit sets the bit,
     * conflicting occupant loses it. */
    action cache_lookup(in vip_t key) {
        meta.slot = slot_of(key);
        vip_t k; pip_t v; bit<1> a;
        cache_keys.read(k, (bit<32>)meta.slot);
        cache_values.read(v, (bit<32>)meta.slot);
        cache_access.read(a, (bit<32>)meta.slot);
        meta.access_was_set = a;
        if (k == key) {
            meta.cache_hit = 1;
            meta.cache_value = v;
            cache_access.write((bit<32>)meta.slot, 1);
        } else {
            meta.cache_hit = 0;
            cache_access.write((bit<32>)meta.slot, 0);
        }
    }

    /* Insert honoring the role's admission policy (`All at ToRs,
     * A-bit-clear elsewhere); the evicted entry becomes the spill
     * rider when the option block has room. */
    action cache_insert(in vip_t key, in pip_t val, in bit<1> admit_all) {
        bit<CACHE_IDX_BITS> s = slot_of(key);
        vip_t k; pip_t v; bit<1> a;
        cache_keys.read(k, (bit<32>)s);
        cache_values.read(v, (bit<32>)s);
        cache_access.read(a, (bit<32>)s);
        if (k == key) {
            cache_values.write((bit<32>)s, val);
        } else if (k == 0 || admit_all == 1 || a == 0) {
            if (k != 0 && hdr.opt.has_spill == 0) {
                hdr.opt.has_spill = 1;       /* spillover (§3.2.2) */
                hdr.opt.spill_vip = k;
                hdr.opt.spill_pip = v;
            }
            cache_keys.write((bit<32>)s, key);
            cache_values.write((bit<32>)s, val);
            cache_access.write((bit<32>)s, 0);
        }
    }

    apply {
        cfg_role.read(meta.role, 0);
        cfg_self_id.read(meta.self_id, 0);
        cfg_self_pip.read(meta.self_pip, 0);
        front_panel.apply();

        if (!hdr.opt.isValid()) { ipv4_lpm.apply(); return; }

        /* Control packets addressed to this switch. */
        if (hdr.outer.dst == meta.self_pip) {
            if (hdr.opt.kind == 2 /* learning */) {
                cache_insert(hdr.opt.map_vip, hdr.opt.map_pip, 1);
                mark_to_drop(std);            /* consumed */
                return;
            }
            if (hdr.opt.kind == 3 /* invalidation */) {
                bit<CACHE_IDX_BITS> s = slot_of(hdr.opt.map_vip);
                vip_t k; pip_t v;
                cache_keys.read(k, (bit<32>)s);
                cache_values.read(v, (bit<32>)s);
                if (k == hdr.opt.map_vip && v == hdr.opt.map_pip) {
                    cache_keys.write((bit<32>)s, 0);
                }
                mark_to_drop(std);
                return;
            }
        }
        /* Invalidation packets also clean caches en route. */
        if (hdr.opt.kind == 3) {
            bit<CACHE_IDX_BITS> s = slot_of(hdr.opt.map_vip);
            vip_t k; pip_t v;
            cache_keys.read(k, (bit<32>)s);
            cache_values.read(v, (bit<32>)s);
            if (k == hdr.opt.map_vip && v == hdr.opt.map_pip) {
                cache_keys.write((bit<32>)s, 0);
            }
            ipv4_lpm.apply();
            return;
        }

        /* 1. Misdelivery tagging at ToRs (§3.3): a packet entering
         *    from an attached server whose outer source is another
         *    host was re-forwarded by the hypervisor. */
        if ((meta.role == ROLE_TOR || meta.role == ROLE_GW_TOR)
            && meta.from_attached_server == 1
            && hdr.outer.src != meta.attached_pip
            && hdr.opt.misdelivery == 0) {
            hdr.opt.misdelivery = 1;
            hdr.opt.stale_pip = meta.attached_pip;
            if (hdr.opt.hit_switch != 0xffff) {
                bit<48> last; bit<48> now = std.ingress_global_timestamp;
                ts_vector.read(last, (bit<32>)hdr.opt.hit_switch);
                if (now - last > 12000 /* base RTT, us-scale ticks */) {
                    ts_vector.write((bit<32>)hdr.opt.hit_switch, now);
                    /* clone -> egress builds the invalidation packet
                     * addressed to hit_switch (mirror session 2). */
                    clone(CloneType.I2E, 2);
                }
                hdr.opt.hit_switch = 0xffff;
            }
        }

        /* 2. Lookup for unresolved packets. */
        if (hdr.opt.resolved == 0) {
            cache_lookup(hdr.inner.dst);
            if (meta.cache_hit == 1) {
                if (hdr.opt.misdelivery == 1
                    && meta.cache_value == hdr.opt.stale_pip) {
                    /* stale entry: invalidate instead of using it */
                    cache_keys.write((bit<32>)meta.slot, 0);
                } else {
                    hdr.outer.dst = meta.cache_value;
                    hdr.opt.resolved = 1;
                    hdr.opt.hit_switch = meta.self_id;
                    /* Promotion (§3.2.2): popular entry, packet
                     * leaving the pod, regular spine only. */
                    if (meta.role == ROLE_SPINE
                        && meta.access_was_set == 1
                        && meta.dst_is_local_pod == 0
                        && hdr.opt.has_promo == 0) {
                        hdr.opt.has_promo = 1;
                        hdr.opt.promo_vip = hdr.inner.dst;
                        hdr.opt.promo_pip = meta.cache_value;
                    }
                }
            }
        }

        /* 3. Spillover absorption. */
        if (hdr.opt.has_spill == 1) {
            cache_insert(hdr.opt.spill_vip, hdr.opt.spill_pip,
                         (bit<1>)(meta.role == ROLE_TOR
                                  || meta.role == ROLE_GW_TOR));
            hdr.opt.has_spill = 0;
        }

        /* 4. Role-dependent learning (Table 1). */
        if (meta.role == ROLE_GW_TOR && hdr.opt.resolved == 1) {
            cache_insert(hdr.inner.dst, hdr.outer.dst, 1);
            /* Learning packet toward the sender's ToR with
             * probability 2^-P_LEARN_SHIFT (mirror session 1). */
            bit<32> r;
            random(r, 0, (bit<32>)((1 << P_LEARN_SHIFT) - 1));
            if (r == 0) { clone(CloneType.I2E, 1); }
        } else if ((meta.role == ROLE_GW_SPINE || meta.role == ROLE_SPINE)
                   && hdr.opt.resolved == 1) {
            cache_insert(hdr.inner.dst, hdr.outer.dst, 0);
        } else if (meta.role == ROLE_TOR) {
            cache_insert(hdr.inner.src, hdr.outer.src, 1);
        } else if (meta.role == ROLE_CORE && hdr.opt.has_promo == 1) {
            cache_insert(hdr.opt.promo_vip, hdr.opt.promo_pip, 0);
            hdr.opt.has_promo = 0;
        }

        ipv4_lpm.apply();
    }
}

/* ------------------------------------------------------------------ */
/* Egress: materialize cloned control packets                          */
/* ------------------------------------------------------------------ */

control SwitchV2PEgress(inout headers_t hdr, inout metadata_t meta,
                        inout standard_metadata_t std) {
    apply {
        if (std.instance_type == 1 /* ingress clone */) {
            if (std.egress_rid == 1) {
                /* learning packet: mapping = resolved destination,
                 * addressed to the sender's ToR (set by the mirror
                 * session's truncation/rewrite config). */
                hdr.opt.kind = 2;
                hdr.opt.has_mapping = 1;
                hdr.opt.map_vip = hdr.inner.dst;
                hdr.opt.map_pip = hdr.outer.dst;
            } else if (std.egress_rid == 2) {
                /* invalidation packet toward opt.hit_switch */
                hdr.opt.kind = 3;
                hdr.opt.has_mapping = 1;
                hdr.opt.map_vip = hdr.inner.dst;
                hdr.opt.map_pip = hdr.opt.stale_pip;
            }
        }
    }
}

/* ------------------------------------------------------------------ */

control SwitchV2PVerifyChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}
control SwitchV2PComputeChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}
control SwitchV2PDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.outer);
        pkt.emit(hdr.opt);
        pkt.emit(hdr.inner);
    }
}

V1Switch(SwitchV2PParser(), SwitchV2PVerifyChecksum(),
         SwitchV2PIngress(), SwitchV2PEgress(),
         SwitchV2PComputeChecksum(), SwitchV2PDeparser()) main;
