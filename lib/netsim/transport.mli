(** End-host transport: a windowed reliable protocol and constant-rate
    UDP.

    The reliable protocol is deliberately simple — fixed window,
    per-packet ACKs, go-back-N retransmission on timeout — because the
    paper's metrics (FCT, first-packet latency) depend on delivery
    times, not on congestion-control dynamics; the paper itself notes
    that modern TCP absorbs the reordering SwitchV2P can introduce.
    Reordering events are counted so tests can observe them. *)

type callbacks = {
  now : unit -> Dessim.Time_ns.t;
  schedule : Dessim.Time_ns.t -> (unit -> unit) -> unit;  (** relative delay *)
  send_data :
    Netcore.Flow.t -> seq:int -> size:int -> retransmit:bool -> unit;
  send_ack : Netcore.Flow.t -> seq:int -> ecn_echo:bool -> unit;
      (** [ecn_echo] carries the data packet's CE mark back to the
          sender (the ECE bit) *)
  flow_done : Netcore.Flow.t -> fct:Dessim.Time_ns.t -> unit;
      (** all payload bytes arrived at the receiver *)
  first_packet : Netcore.Flow.t -> latency:Dessim.Time_ns.t -> unit;
}

(** Congestion behavior of reliable flows. [Windowed] grows the
    congestion window by one per ACK up to the cap and ignores ECN;
    [Dctcp] additionally runs the DCTCP control law — the fraction of
    CE-marked ACKs per window drives the EWMA [alpha], and each marked
    window multiplicatively cuts cwnd by [alpha/2]. *)
type mode = Windowed | Dctcp

type t

(** [create ~mode ~window ~rto callbacks] — [window] caps the in-flight
    packet budget; [rto] is the retransmission timeout. *)
val create :
  ?mode:mode -> ?window:int -> ?rto:Dessim.Time_ns.t -> callbacks -> t

(** [start t flow] begins transmission at the current time — equivalent
    to [start_receiver] then [start_sender] on the same instance. *)
val start : t -> Netcore.Flow.t -> unit

(** [start_receiver t flow] registers only the receiver-side state.
    The sharded runtime calls this on the instance owning the flow's
    receiving host while [start_sender] runs on the instance owning the
    sending host; in a single-shard run both live in one instance and
    plain [start] is used. *)
val start_receiver : t -> Netcore.Flow.t -> unit

(** [start_sender t flow] begins transmission without touching the
    receiver side. *)
val start_sender : t -> Netcore.Flow.t -> unit

(** [on_data t pkt] — a data packet arrived at the correct receiving
    host. Generates ACKs for reliable flows; records latency hooks. *)
val on_data : t -> Netcore.Packet.t -> unit

(** [on_ack t pkt] — an ACK arrived back at the sender. *)
val on_ack : t -> Netcore.Packet.t -> unit

val flows_completed : t -> int

(** [has_received_any t ~flow_id] — whether the receiver already saw a
    data packet of the flow (used to classify "first packet" hits). *)
val has_received_any : t -> flow_id:int -> bool

(** [receiver_done t ~flow_id] — whether the receiver has accepted
    every distinct sequence number of the flow. Exposed for the DST
    harness's stale-delivery invariant. *)
val receiver_done : t -> flow_id:int -> bool

(** [received_distinct t ~flow_id] — distinct sequence numbers the
    receiver has accepted so far (duplicates from retransmission are
    not double-counted). *)
val received_distinct : t -> flow_id:int -> int

(** [reordering_events t] counts data arrivals with a sequence number
    lower than one already received (per flow, first-arrival only). *)
val reordering_events : t -> int

(** [dense_capacities t] is the current dense-lane capacity of the
    (sender, receiver) flow stores, in option slots. Exposed so tests
    can pin the population-gated growth policy: a single sparse flow id
    must spill to the hashtable instead of committing up to 2^20 boxed
    slots (~8 MB) per lane. *)
val dense_capacities : t -> int * int

(** [cwnd t ~flow_id] is the sender's current congestion window in
    packets, or [None] for unknown/UDP flows (tests, debugging). *)
val cwnd : t -> flow_id:int -> int option

(** [alpha t ~flow_id] is the DCTCP congestion estimate for the flow;
    meaningful only in [Dctcp] mode. *)
val alpha : t -> flow_id:int -> float option
