module Fault = Dessim.Fault
module Rng = Dessim.Rng
module Time_ns = Dessim.Time_ns
module Topology = Topo.Topology

type profile = {
  link_failures : int;
  loss_links : int;
  corruptions : int;
  switch_failures : int;
  gateway_outages : int;
  churn_storms : int;
  churn_batch : int;
  churn_batches : int;
  churn_interval : Time_ns.t;
}

let default_profile =
  {
    link_failures = 2;
    loss_links = 2;
    corruptions = 2;
    switch_failures = 2;
    gateway_outages = 1;
    churn_storms = 1;
    churn_batch = 4;
    churn_batches = 3;
    churn_interval = Time_ns.of_ms 1;
  }

let fabric_pairs topo =
  let pairs = ref [] in
  Array.iter
    (fun sw ->
      match Topology.kind topo sw with
      | Topo.Node.Tor _ | Topo.Node.Spine _ ->
          Array.iter
            (fun up -> pairs := (sw, up) :: !pairs)
            (Topology.uplinks topo sw)
      | _ -> ())
    (Topology.switches topo);
  Array.of_list (List.rev !pairs)

let generate ?(profile = default_profile) ~seed ~horizon topo =
  let rng = Rng.create seed in
  let specs = ref [] in
  let add at action = specs := { Fault.at; action } :: !specs in
  (* Heal deadline: every window closes by 6/10 of the horizon, so
     transports have the remaining 40% to drain retransmissions. *)
  let heal_by = max 2 (horizon * 6 / 10) in
  let window () =
    let lo = heal_by / 8 and hi = heal_by / 2 in
    let down = lo + Rng.int rng (max 1 (hi - lo)) in
    let up = down + 1 + Rng.int rng (max 1 (heal_by - down - 1)) in
    (down, min up heal_by)
  in
  let one_shot_at () = 1 + Rng.int rng (max 1 (heal_by - 1)) in
  let pairs = fabric_pairs topo in
  if Array.length pairs > 0 then begin
    for _ = 1 to profile.link_failures do
      let a, b = pairs.(Rng.int rng (Array.length pairs)) in
      let down, up = window () in
      add down (Fault.Link_down (a, b));
      add down (Fault.Link_down (b, a));
      add up (Fault.Link_up (a, b));
      add up (Fault.Link_up (b, a))
    done;
    for _ = 1 to profile.loss_links do
      let a, b = pairs.(Rng.int rng (Array.length pairs)) in
      let down, up = window () in
      let model =
        if Rng.bool rng then Fault.Bernoulli (0.01 +. (0.09 *. Rng.float rng))
        else
          Fault.Gilbert_elliott
            {
              Fault.p_enter_bad = 0.02 +. (0.08 *. Rng.float rng);
              p_exit_bad = 0.2 +. (0.3 *. Rng.float rng);
              loss_good = 0.0;
              loss_bad = 0.3 +. (0.4 *. Rng.float rng);
            }
      in
      add down (Fault.Set_loss (a, b, model));
      add up (Fault.Set_loss (a, b, Fault.No_loss))
    done;
    for _ = 1 to profile.corruptions do
      let a, b = pairs.(Rng.int rng (Array.length pairs)) in
      add (one_shot_at ()) (Fault.Corrupt_next (a, b))
    done
  end;
  let switches = Topology.switches topo in
  for _ = 1 to profile.switch_failures do
    add (one_shot_at ())
      (Fault.Switch_fail (switches.(Rng.int rng (Array.length switches))))
  done;
  let gws = Topology.gateways topo in
  if Array.length gws > 0 then
    for _ = 1 to profile.gateway_outages do
      let g = gws.(Rng.int rng (Array.length gws)) in
      let down, up = window () in
      add down (Fault.Gateway_down g);
      add up (Fault.Gateway_up g)
    done;
  for _ = 1 to profile.churn_storms do
    let t0 = one_shot_at () in
    for i = 0 to profile.churn_batches - 1 do
      add (t0 + (i * profile.churn_interval)) (Fault.Churn profile.churn_batch)
    done
  done;
  { Fault.seed; specs = Fault.sort_specs (Array.of_list (List.rev !specs)) }

let apply net plan = Network.install_faults net plan
