(** Measurement collection for a simulation run.

    Gathers exactly the quantities the paper reports: cache hit rate
    (fraction of tenant packets that never reach a gateway), flow
    completion times, first-packet latencies, per-packet latency,
    hit-location distribution across switch layers (Table 5),
    per-switch and per-pod processed bytes (Figures 7/8), packet
    stretch, drops, and the migration counters of Table 4. *)

type t

(** Where a packet was lost. [Link_buffer] — the egress queue was
    full; [Failed_switch] — a failed/rebooting switch blackholed it;
    [Gateway_miss] — the gateway had no mapping for the destination
    VIP; [Host_miss] — a host could not re-resolve a moved VM.
    The [Fault_*] sites are injected-fault losses: [Fault_blackhole] —
    every candidate next hop was behind a downed link;
    [Fault_loss] — a per-link loss channel (Bernoulli or
    Gilbert-Elliott) discarded the packet; [Fault_gateway] — the
    packet arrived at a gateway inside an outage window. *)
type drop_site =
  | Link_buffer
  | Failed_switch
  | Gateway_miss
  | Host_miss
  | Fault_blackhole
  | Fault_loss
  | Fault_gateway

(** [create ?classify topo rng] — when [classify] is given, tenant-level
    sent/gateway counters are kept per class (e.g. per VPC), queryable
    with {!class_hit_rate}. *)
val create :
  ?classify:(Netcore.Packet.t -> int) -> Topo.Topology.t -> Dessim.Rng.t -> t

(** [merge a b] is a fresh collector equivalent to having recorded
    both event streams into one: counters and the drop matrix add,
    per-class tables add keywise, latency/stretch summaries and the
    FCT reservoir merge exactly, [last_misdelivered_arrival] takes the
    later time. Commutative; [a] and [b] are left untouched. Both must
    come from the same topology ([Invalid_argument] otherwise); the
    result keeps [a]'s classifier. Used by the sharded runtime to
    combine per-shard collectors after a run. *)
val merge : t -> t -> t

(** Recording hooks (called by the engine). *)

val packet_sent : t -> Netcore.Packet.t -> unit

(** [packet_dropped t ~site pkt] records a loss. Every packet kind is
    counted (data, ack, learning, invalidation) — not just tenant
    traffic. *)
val packet_dropped : t -> site:drop_site -> Netcore.Packet.t -> unit

val gateway_arrival : t -> Netcore.Packet.t -> unit

(** [switch_processed t ~switch pkt] accounts bytes and stretch. *)
val switch_processed : t -> switch:int -> Netcore.Packet.t -> unit

(** [delivered t pkt ~now ~first_of_flow] classifies the hit layer on
    final delivery to the correct host. *)
val delivered : t -> Netcore.Packet.t -> now:Dessim.Time_ns.t -> first_of_flow:bool -> unit

val misdelivered : t -> Netcore.Packet.t -> unit
val flow_started : t -> unit
val flow_completed : t -> fct:Dessim.Time_ns.t -> unit
val first_packet_latency : t -> Dessim.Time_ns.t -> unit

(** Report accessors. *)

val flows_started : t -> int
val flows_completed : t -> int

(** [hit_rate t] is [1 - gateway tenant-packet arrivals / tenant
    packets sent]; clamped to [0, 1]. *)
val hit_rate : t -> float

(** [class_hit_rate t cls] is the same, restricted to packets whose
    classifier value is [cls]; 0 when the class sent nothing or no
    classifier was installed. *)
val class_hit_rate : t -> int -> float

(** [class_packets_sent t cls] — sent tenant packets in class [cls]. *)
val class_packets_sent : t -> int -> int

(** [classes t] — the classifier values observed so far, ascending;
    empty when no classifier was installed or nothing was sent. *)
val classes : t -> int list

val gateway_packets : t -> int
val packets_sent : t -> int

(** [retransmits_sent t] — tenant packets sent with the retransmit
    flag set (RTO-driven resends under loss/failure). *)
val retransmits_sent : t -> int

(** [delivered_packets t] — packets of every kind delivered to their
    final destination host (one side of the conservation invariant). *)
val delivered_packets : t -> int

(** [packets_dropped t] — total losses across all kinds and sites. *)
val packets_dropped : t -> int

(** [drops_by_kind t] / [drops_by_site t] break the total down, in a
    fixed order (data, ack, learning, invalidation / link_buffer,
    failed_switch, gateway_miss, host_miss, fault_blackhole,
    fault_loss, fault_gateway). *)
val drops_by_kind : t -> (string * int) list

val drops_by_site : t -> (string * int) list
val mean_fct : t -> float

(** [fct_percentile t p] — seconds; raises [Not_found] if no flow
    completed. *)
val fct_percentile : t -> float -> float

val mean_first_packet_latency : t -> float
val mean_packet_latency : t -> float

(** [layer_hits t] is [(core, spine, tor, gateway_resolved, host_resolved)]
    over all delivered data packets; [first_packet_layer_hits] the
    same over first packets only. *)
val layer_hits : t -> int * int * int * int * int

val first_packet_layer_hits : t -> int * int * int * int * int

(** [bytes_of_switch t switch] / [bytes_of_pod t pod] are processed
    bytes (a packet transiting a switch is counted once there). *)
val bytes_of_switch : t -> int -> int

val bytes_of_pod : t -> int -> int
val total_switch_bytes : t -> int

(** [mean_stretch t] is the average number of switches a delivered
    data packet traversed. *)
val mean_stretch : t -> float

val misdelivered_packets : t -> int

(** [last_misdelivered_arrival t] is the delivery time of the last
    packet that had been misdelivered, or [None]. *)
val last_misdelivered_arrival : t -> Dessim.Time_ns.t option
