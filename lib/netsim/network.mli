(** The packet-level network simulation: topology + scheme + transport
    + gateways, wired to a discrete-event engine.

    A [Network.t] owns the VM placement (VIP [i] lives on host
    [hosts.(i / vms_per_host)]), the ground-truth mapping store, the
    metric collectors, and the packet forwarding loop. Schemes plug in
    via {!Scheme.t}. *)

type migration = {
  at : Dessim.Time_ns.t;
  vip : Netcore.Addr.Vip.t;
  to_host : int;  (** destination host node id *)
}

type config = {
  seed : int;
  gw_proc_delay : Dessim.Time_ns.t;  (** gateway translation latency *)
  host_fwd_delay : Dessim.Time_ns.t;
      (** old-host processing of a misdelivered packet *)
  window : int;  (** transport window, packets *)
  rto : Dessim.Time_ns.t;
  gateways_used : int option;
      (** restrict load balancing to the first [k] gateways (Figure 9);
          [None] uses all *)
  loopback_delay : Dessim.Time_ns.t;
      (** hypervisor-local delivery for co-located VM pairs *)
  classify : (Netcore.Packet.t -> int) option;
      (** per-class (e.g. per-tenant) metric counters; see
          {!Metrics.class_hit_rate} *)
  transport_mode : Transport.mode;
      (** congestion behavior of reliable flows; DCTCP reacts to the
          fabric's ECN marks *)
  telemetry : Dessim.Telemetry.t;
      (** structured-telemetry collector; {!Dessim.Telemetry.disabled}
          (the default) makes every hook a no-op. When enabled, the
          network records latency/FCT histograms, samples scheme and
          network counters every
          {!Dessim.Telemetry.sample_interval}, and hands the collector
          to the scheme's {!Scheme.telemetry_hooks}. Instrumented runs
          are bit-identical to uninstrumented ones. *)
  sched : Dessim.Engine.sched option;
      (** scheduler backend for the event engine; [None] (the default)
          defers to {!Dessim.Engine.default_sched} (the [REPRO_SCHED]
          environment variable, wheel if unset). Both backends produce
          byte-identical transcripts. *)
}

val default_config : config

type t

(** [create ?config topo ~scheme] builds the network, places VMs and
    installs the ground-truth mappings. *)
val create : ?config:config -> Topo.Topology.t -> scheme:Scheme.t -> t

(** [run t flows ~migrations ~until] schedules every flow and
    migration and executes the event loop up to [until] (simulation
    time). *)
val run :
  t -> Netcore.Flow.t list -> migrations:migration list -> until:Dessim.Time_ns.t -> unit

val metrics : t -> Metrics.t
val transport : t -> Transport.t
val topo : t -> Topo.Topology.t
val mapping : t -> Netcore.Mapping.t
val engine : t -> Dessim.Engine.t
val env : t -> Scheme.env

(** [vm_host t vip] is the node id currently hosting [vip]. *)
val vm_host : t -> Netcore.Addr.Vip.t -> int

(** [num_vms t] is the size of the VIP space. *)
val num_vms : t -> int

(** [host_of_vm_index t i] is the host for dense VIP index [i]
    (placement helper for workload generators). *)
val host_of_vm_index : t -> int -> int

(** [gateway_for_flow t flow_id] — the gateway replica serving a flow
    (per-flow load balancing). *)
val gateway_for_flow : t -> int -> int

(** {2 Fault injection}

    A {!Dessim.Fault.plan} installed before {!run} schedules every
    fault as a typed engine event. With no plan installed the fault
    layer is dead branches: no RNG draws, no behavior change, and
    byte-identical event transcripts. *)

(** [install_faults t plan] validates the plan against the topology
    (link endpoints must be adjacent, switch/gateway ids must name
    switches/gateways) and schedules its specs. The runtime fault RNG
    (per-packet loss draws, churn victim selection) is re-seeded from
    [plan.seed], so equal plans replay byte-identically. Raises
    [Invalid_argument] on an invalid plan or if a plan is already
    installed. *)
val install_faults : t -> Dessim.Fault.plan -> unit

(** [faults_installed t] — whether a plan has been installed. *)
val faults_installed : t -> bool

(** [fault_counts t] — fault firings so far, per
    {!Dessim.Fault.kind_name}, in kind order. *)
val fault_counts : t -> (string * int) list

(** [migrate_now t ~vip ~to_host] performs a migration immediately
    (ground truth + scheme notification); churn faults and scheduled
    migrations both land here. *)
val migrate_now : t -> vip:Netcore.Addr.Vip.t -> to_host:int -> unit

(** [gateway_is_down t node] — whether gateway [node] is inside an
    outage window. *)
val gateway_is_down : t -> int -> bool

(** {2 Conservation accounting}

    Every packet entering the network ([injected_packets]: tenant
    sends including hypervisor loopbacks, plus scheme-emitted control
    packets) ends in exactly one of: delivered
    ({!Metrics.delivered_packets}), dropped ({!Metrics.packets_dropped},
    any site), consumed by a switch ([consumed_at_switch]), or still
    in flight ([live_packets]). The DST harness checks the sum. *)

val injected_packets : t -> int

(** [consumed_at_switch t] — packets that terminated at a switch: a
    pipeline [consume] verdict or a control packet reaching the switch
    it was addressed to. *)
val consumed_at_switch : t -> int

(** [live_packets t] — pool slots currently held by in-flight
    packets. *)
val live_packets : t -> int

(** {2 Domain sharding}

    Hooks used by {!Parnet} to run one logical simulation as [n]
    per-domain networks under the conservative window protocol of
    {!Dessim.Shard}. Each shard owns the state of its nodes; packets
    cross the partition as fixed-stride int records over
    {!Dessim.Spsc} mailboxes. A network with no shard context behaves
    exactly as before — the sharded branches are dead. *)

(** Ints per serialized handoff record. *)
val handoff_stride : int

(** [set_shard t ~my ~owner ~out ~lookahead ~send_home ~recv_home]
    turns [t] into shard [my]: [owner] maps node id to owning shard,
    [out.(s)] is the outbound mailbox to shard [s] (stride
    {!handoff_stride}), [lookahead] is the minimum cross-shard link
    latency, and [send_home]/[recv_home] map flow ids to the shards
    holding the flow's transport sender/receiver. Must run before
    {!install_faults} (fault events are partitioned by ownership). *)
val set_shard :
  t ->
  my:int ->
  owner:int array ->
  out:Dessim.Spsc.t array ->
  lookahead:Dessim.Time_ns.t ->
  send_home:int array ->
  recv_home:int array ->
  unit

(** [receive_handoff t buf off] injects one serialized record (at
    [off] of [buf]) into this shard's engine — the [drain] callback of
    {!Dessim.Shard.run} feeds every inbound mailbox through this, in
    fixed source-shard order. *)
val receive_handoff : t -> int array -> int -> unit

(** Conservation counters for sharded runs: records pushed to /
    injected from mailboxes. Summed across shards,
    [sent - received] is the number of packets in flight between
    shards; both are 0 on an unsharded network. *)
val handoffs_sent : t -> int

val handoffs_received : t -> int
