module Verdict = Switchv2p.Verdict

type env = {
  engine : Dessim.Engine.t;
  rng : Dessim.Rng.t;
  topo : Topo.Topology.t;
  mapping : Netcore.Mapping.t;
  base_rtt : Dessim.Time_ns.t;
  fresh_packet_id : unit -> int;
  emit_at_switch : src_switch:int -> Netcore.Packet.t -> unit;
}

type kind = Classify | Lookup | Learn | Emit

type stage = {
  name : string;
  kind : kind;
  exec : env -> switch:int -> from:int -> Netcore.Packet.t -> int;
  probe : Dessim.Telemetry.t -> now_sec:float -> unit;
}

type t = {
  stages : stage array;
  attach : Dessim.Telemetry.t -> unit;
  prepare : env -> unit;
  reset : switch:int -> unit;
}

let no_probe (_ : Dessim.Telemetry.t) ~now_sec:(_ : float) = ()
let no_attach (_ : Dessim.Telemetry.t) = ()
let no_prepare (_ : env) = ()
let no_reset ~switch:(_ : int) = ()

let stage ?(probe = no_probe) ~kind name exec = { name; kind; exec; probe }

let make ?(attach = no_attach) ?(prepare = no_prepare) ?(reset = no_reset)
    stages =
  { stages = Array.of_list stages; attach; prepare; reset }

let passthrough = make []

(* Top-level tail recursion, not a local closure: a [let rec] with free
   variables allocates its closure on every call in classic OCaml, and
   this is the per-hop path. *)
let rec run_from stages n i env ~switch ~from pkt =
  if i >= n then Verdict.forward
  else begin
    let v = (Array.unsafe_get stages i).exec env ~switch ~from pkt in
    if v = Verdict.next then run_from stages n (i + 1) env ~switch ~from pkt
    else v
  end

let run t env ~switch ~from pkt =
  run_from t.stages (Array.length t.stages) 0 env ~switch ~from pkt

let prepare t env = t.prepare env
let attach t tel = t.attach tel
let reset_switch t ~switch = t.reset ~switch
let probe t tel ~now_sec = Array.iter (fun s -> s.probe tel ~now_sec) t.stages
let stages t = Array.to_list (Array.map (fun s -> (s.name, s.kind)) t.stages)

let p4_kind = function
  | Classify -> P4model.Resources.Classify
  | Lookup -> P4model.Resources.Lookup
  | Learn -> P4model.Resources.Learn
  | Emit -> P4model.Resources.Emit

let resources t ~entries_per_switch =
  Array.to_list
    (Array.map
       (fun s ->
         ( s.name,
           P4model.Resources.stage_estimate ~entries_per_switch
             (p4_kind s.kind) ))
       t.stages)
