(** The staged per-switch dataplane pipeline.

    The paper's data plane is a fixed match-action program: parse /
    classify, cache lookup, admission + learning, control-packet
    emission. A scheme is a sequence of {!stage}s run in order for
    every packet a switch receives; each stage returns an int-coded
    {!Switchv2p.Verdict} and {!Verdict.next} falls through to the
    following stage. A pipeline whose stages all fall through forwards
    the packet — so the common case (data packet, nothing to say)
    finishes without any final-verdict bookkeeping and without
    allocating.

    Stage order is part of the simulation contract: it fixes the RNG
    draw sequence (learning-packet coin flips) and therefore the
    golden event transcripts. *)

module Verdict = Switchv2p.Verdict

(** Capabilities handed to the stages (what used to be
    [Scheme.env]; {!Scheme.env} re-exports this record). *)
type env = {
  engine : Dessim.Engine.t;
  rng : Dessim.Rng.t;
  topo : Topo.Topology.t;
  mapping : Netcore.Mapping.t;  (** gateway ground truth *)
  base_rtt : Dessim.Time_ns.t;
  fresh_packet_id : unit -> int;
  emit_at_switch : src_switch:int -> Netcore.Packet.t -> unit;
      (** inject a scheme-generated packet into the fabric at a switch *)
}

(** Which of the four hardware stages a {!stage} occupies; the
    {!resources} accounting maps each to its share of the Tofino
    budget ({!P4model.Resources.stage_kind}). *)
type kind = Classify | Lookup | Learn | Emit

type stage = {
  name : string;
  kind : kind;
  exec : env -> switch:int -> from:int -> Netcore.Packet.t -> int;
      (** run the stage; returns a {!Verdict} int, {!Verdict.next} to
          fall through *)
  probe : Dessim.Telemetry.t -> now_sec:float -> unit;
      (** sample stage-owned counters into per-tier telemetry series;
          must be a pure observer (no RNG, no simulation state) *)
}

type t

(** [stage ?probe ~kind name exec] is a stage with no telemetry probe
    by default. *)
val stage :
  ?probe:(Dessim.Telemetry.t -> now_sec:float -> unit) ->
  kind:kind ->
  string ->
  (env -> switch:int -> from:int -> Netcore.Packet.t -> int) ->
  stage

(** [make ?attach ?prepare ?reset stages] builds a pipeline. [prepare]
    runs once per {!Network.create} with the network's [env] — the
    place to build per-run state (e.g. the memoized [Dataplane.env])
    instead of on the per-hop path. [attach] hands the run's telemetry
    collector to the scheme (flight recorder). [reset ~switch] models
    a switch failure/reboot: the scheme must discard all soft state it
    holds for [switch] (cached mappings, installed table entries);
    defaults to a no-op for stateless schemes. *)
val make :
  ?attach:(Dessim.Telemetry.t -> unit) ->
  ?prepare:(env -> unit) ->
  ?reset:(switch:int -> unit) ->
  stage list ->
  t

(** [passthrough] has no stages: every packet forwards untouched. *)
val passthrough : t

(** [run t env ~switch ~from pkt] executes the stages in order and
    returns the first final verdict, or {!Verdict.forward} when every
    stage falls through. Allocation-free. *)
val run : t -> env -> switch:int -> from:int -> Netcore.Packet.t -> int

val prepare : t -> env -> unit
val attach : t -> Dessim.Telemetry.t -> unit

(** [reset_switch t ~switch] invokes the scheme's switch-failure hook:
    all soft state held for [switch] is wiped (the switch "reboots
    empty"). Used by the fault-injection layer's [Switch_fail]. *)
val reset_switch : t -> switch:int -> unit

(** [probe t tel ~now_sec] runs every stage's telemetry probe. *)
val probe : t -> Dessim.Telemetry.t -> now_sec:float -> unit

(** [stages t] lists (name, kind) in execution order. *)
val stages : t -> (string * kind) list

(** [p4_kind k] is the resource model's name for stage kind [k]. *)
val p4_kind : kind -> P4model.Resources.stage_kind

(** [resources t ~entries_per_switch] is the per-stage Tofino resource
    decomposition: each stage named with its share of the switch
    budget. The shares over a full classify/lookup/learn/emit pipeline
    sum to {!P4model.Resources.estimate} exactly. *)
val resources :
  t -> entries_per_switch:int -> (string * P4model.Resources.usage) list
