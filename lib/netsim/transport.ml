module Time_ns = Dessim.Time_ns
module Flow = Netcore.Flow
module Packet = Netcore.Packet

type callbacks = {
  now : unit -> Time_ns.t;
  schedule : Time_ns.t -> (unit -> unit) -> unit;
  send_data : Flow.t -> seq:int -> size:int -> retransmit:bool -> unit;
  send_ack : Flow.t -> seq:int -> ecn_echo:bool -> unit;
  flow_done : Flow.t -> fct:Time_ns.t -> unit;
  first_packet : Flow.t -> latency:Time_ns.t -> unit;
}

type mode = Windowed | Dctcp

type sender = {
  s_flow : Flow.t;
  total : int;
  mutable next_seq : int;
  acked : Bytes.t;
  mutable n_acked : int;
  mutable inflight : int;
  mutable cwnd : float; (* congestion window (packets), capped at t.window *)
  mutable in_slow_start : bool;
  mutable alpha : float; (* DCTCP congestion estimate *)
  mutable win_acks : int; (* acks in the current observation window *)
  mutable win_marks : int; (* CE-echo acks in the window *)
  mutable done_ : bool;
  mutable progress_stamp : int; (* n_acked at last timeout check *)
}

type receiver = {
  r_flow : Flow.t;
  r_total : int;
  received : Bytes.t;
  mutable n_received : int;
  mutable max_seq_seen : int;
  mutable got_first : bool;
  mutable r_done : bool;
}

(* Flow-id keyed store. Flow ids are caller-assigned and in practice
   dense small ints (experiments number flows sequentially), so the
   common case is a flat array: lookup is a bounds check and a load,
   no hashing. Dense growth is population-gated: the array only grows
   to cover an id while [id < 4 x entries-ever-stored] (so a genuinely
   dense id space doubles as before), and everything else spills into
   a hashtable. Without the gate, one sparse id — e.g. flow 10^6 in an
   otherwise empty store — committed ~2^20 boxed option slots (~8 MB)
   per lane. When later growth makes a spilled id dense-addressable,
   [store_grow] migrates it out of the hashtable, preserving the
   invariant that an id inside the dense range lives only in the dense
   array — so [store_find] stays one compare and one load. *)
type 'a store = {
  mutable dense : 'a option array;
  mutable population : int; (* entries ever stored (dense + spilled) *)
  big : (int, 'a) Hashtbl.t;
}

let dense_cap = 1 lsl 20

let store_create () =
  { dense = Array.make 256 None; population = 0; big = Hashtbl.create 16 }

let store_grow st id =
  let cap = Array.length st.dense in
  let ncap =
    let c = ref (2 * cap) in
    while id >= !c do
      c := 2 * !c
    done;
    !c
  in
  let nd = Array.make ncap None in
  Array.blit st.dense 0 nd 0 cap;
  st.dense <- nd;
  (* Re-home previously spilled ids that the grown array now covers. *)
  if Hashtbl.length st.big > 0 then begin
    let moved = ref [] in
    Hashtbl.iter
      (fun id v -> if id < ncap then moved := (id, v) :: !moved)
      st.big;
    List.iter
      (fun (id, v) ->
        Hashtbl.remove st.big id;
        nd.(id) <- Some v)
      !moved
  end

let store_set st id v =
  if id >= 0 && id < Array.length st.dense then begin
    if st.dense.(id) = None then st.population <- st.population + 1;
    st.dense.(id) <- Some v
  end
  else if id >= 0 && id < dense_cap && id < 4 * (st.population + 1) then begin
    store_grow st id;
    (* [store_grow] may have migrated this very id out of the spill
       table; only a genuinely fresh id counts toward the population. *)
    if st.dense.(id) = None then st.population <- st.population + 1;
    st.dense.(id) <- Some v
  end
  else begin
    if not (Hashtbl.mem st.big id) then st.population <- st.population + 1;
    Hashtbl.replace st.big id v
  end

let store_find st id =
  if id >= 0 && id < Array.length st.dense then Array.unsafe_get st.dense id
  else Hashtbl.find_opt st.big id

type t = {
  cb : callbacks;
  mode : mode;
  window : int;
  rto : Time_ns.t;
  senders : sender store;
  receivers : receiver store;
  mutable completed : int;
  mutable reordering : int;
}

let initial_cwnd = 10.0 (* RFC 6928 IW10 *)
let dctcp_g = 1.0 /. 16.0 (* alpha EWMA gain, RFC 8257 *)

let create ?(mode = Windowed) ?(window = 64) ?(rto = Time_ns.of_us 500) cb =
  {
    cb;
    mode;
    window;
    rto;
    senders = store_create ();
    receivers = store_create ();
    completed = 0;
    reordering = 0;
  }

let packet_size (flow : Flow.t) seq =
  let total = Flow.packet_count flow in
  if seq < total - 1 then flow.Flow.pkt_bytes
  else
    let rem = flow.Flow.size_bytes - ((total - 1) * flow.Flow.pkt_bytes) in
    if rem <= 0 then flow.Flow.pkt_bytes else rem

let flows_completed t = t.completed
let reordering_events t = t.reordering

let has_received_any t ~flow_id =
  match store_find t.receivers flow_id with
  | None -> false
  | Some r -> r.got_first

let receiver_done t ~flow_id =
  match store_find t.receivers flow_id with
  | None -> false
  | Some r -> r.r_done

let received_distinct t ~flow_id =
  match store_find t.receivers flow_id with
  | None -> 0
  | Some r -> r.n_received

let effective_cwnd t s = max 1 (min t.window (int_of_float s.cwnd))

(* Reliable sender: keep the congestion window full. *)
let pump t s =
  let w = effective_cwnd t s in
  while (not s.done_) && s.inflight < w && s.next_seq < s.total do
    let seq = s.next_seq in
    s.next_seq <- seq + 1;
    s.inflight <- s.inflight + 1;
    t.cb.send_data s.s_flow ~seq ~size:(packet_size s.s_flow seq)
      ~retransmit:false
  done

let rec arm_timeout t s =
  t.cb.schedule t.rto (fun () ->
      if not s.done_ then begin
        if s.n_acked = s.progress_stamp then begin
          (* No progress over a full RTO: go-back-N from the lowest
             unacked sequence. *)
          s.cwnd <- Float.min initial_cwnd (float_of_int t.window);
          s.in_slow_start <- true;
          let resent = ref 0 in
          let seq = ref 0 in
          while !resent < t.window && !seq < s.next_seq do
            if Bytes.get s.acked !seq = '\000' then begin
              incr resent;
              t.cb.send_data s.s_flow ~seq:!seq
                ~size:(packet_size s.s_flow !seq)
                ~retransmit:true
            end;
            incr seq
          done
        end;
        s.progress_stamp <- s.n_acked;
        arm_timeout t s
      end)

let start_reliable t flow =
  let total = Flow.packet_count flow in
  let s =
    {
      s_flow = flow;
      total;
      next_seq = 0;
      acked = Bytes.make total '\000';
      n_acked = 0;
      inflight = 0;
      cwnd = Float.min initial_cwnd (float_of_int t.window);
      in_slow_start = true;
      alpha = 1.0;
      win_acks = 0;
      win_marks = 0;
      done_ = false;
      progress_stamp = 0;
    }
  in
  store_set t.senders flow.Flow.id s;
  pump t s;
  arm_timeout t s

let start_udp t flow rate_bps =
  let total = Flow.packet_count flow in
  let interval =
    Time_ns.of_rate_bytes ~bits_per_sec:rate_bps flow.Flow.pkt_bytes
  in
  let rec send_next seq =
    if seq < total then begin
      t.cb.send_data flow ~seq ~size:(packet_size flow seq) ~retransmit:false;
      t.cb.schedule interval (fun () -> send_next (seq + 1))
    end
  in
  send_next 0

let make_receiver flow =
  let total = Flow.packet_count flow in
  {
    r_flow = flow;
    r_total = total;
    received = Bytes.make total '\000';
    n_received = 0;
    max_seq_seen = -1;
    got_first = false;
    r_done = false;
  }

let start_receiver t flow = store_set t.receivers flow.Flow.id (make_receiver flow)

let start_sender t flow =
  match flow.Flow.proto with
  | Flow.Tcpish -> start_reliable t flow
  | Flow.Udp { rate_bps } -> start_udp t flow rate_bps

let start t flow =
  start_receiver t flow;
  start_sender t flow

let on_data t (pkt : Packet.t) =
  match store_find t.receivers pkt.Packet.flow_id with
  | None -> ()
  | Some r when pkt.Packet.seq >= 0 && pkt.Packet.seq < r.r_total ->
      let seq = pkt.Packet.seq in
      if not r.got_first then begin
        r.got_first <- true;
        t.cb.first_packet r.r_flow
          ~latency:(Time_ns.sub (t.cb.now ()) r.r_flow.Flow.start)
      end;
      let fresh = Bytes.get r.received seq = '\000' in
      if fresh then begin
        if seq < r.max_seq_seen then t.reordering <- t.reordering + 1;
        if seq > r.max_seq_seen then r.max_seq_seen <- seq;
        Bytes.set r.received seq '\001';
        r.n_received <- r.n_received + 1
      end;
      (match r.r_flow.Flow.proto with
      | Flow.Tcpish -> t.cb.send_ack r.r_flow ~seq ~ecn_echo:pkt.Packet.ecn
      | Flow.Udp _ -> ());
      if fresh && r.n_received = r.r_total && not r.r_done then begin
        r.r_done <- true;
        t.completed <- t.completed + 1;
        t.cb.flow_done r.r_flow
          ~fct:(Time_ns.sub (t.cb.now ()) r.r_flow.Flow.start)
      end
  | _ ->
      (* A sequence number outside [0, total) would index out of the
         bitmap; a corrupted or mis-filled packet must not crash the
         receiver. *)
      ()

(* The DCTCP control law (RFC 8257): per observation window (one cwnd
   of acks), alpha <- (1-g) alpha + g F where F is the marked-ack
   fraction; a window containing marks cuts cwnd by alpha/2. *)
let dctcp_on_ack t s ~marked =
  s.win_acks <- s.win_acks + 1;
  if marked then s.win_marks <- s.win_marks + 1;
  if s.in_slow_start then begin
    if marked then begin
      s.in_slow_start <- false;
      s.cwnd <- Float.max 2.0 (s.cwnd /. 2.0)
    end
    else s.cwnd <- Float.min (float_of_int t.window) (s.cwnd +. 1.0)
  end;
  if s.win_acks >= effective_cwnd t s then begin
    let f = float_of_int s.win_marks /. float_of_int s.win_acks in
    s.alpha <- ((1.0 -. dctcp_g) *. s.alpha) +. (dctcp_g *. f);
    if not s.in_slow_start then begin
      if s.win_marks > 0 then
        s.cwnd <- Float.max 2.0 (s.cwnd *. (1.0 -. (s.alpha /. 2.0)))
      else s.cwnd <- Float.min (float_of_int t.window) (s.cwnd +. 1.0)
    end;
    s.win_acks <- 0;
    s.win_marks <- 0
  end

let windowed_on_ack t s =
  if s.cwnd < float_of_int t.window then s.cwnd <- s.cwnd +. 1.0

let on_ack t (pkt : Packet.t) =
  match store_find t.senders pkt.Packet.flow_id with
  | None -> ()
  | Some s ->
      let seq = pkt.Packet.seq in
      if
        (not s.done_) && seq >= 0 && seq < s.total
        && Bytes.get s.acked seq = '\000'
      then begin
        Bytes.set s.acked seq '\001';
        s.n_acked <- s.n_acked + 1;
        s.inflight <- s.inflight - 1;
        (match t.mode with
        | Windowed -> windowed_on_ack t s
        | Dctcp -> dctcp_on_ack t s ~marked:pkt.Packet.ecn);
        if s.n_acked = s.total then s.done_ <- true else pump t s
      end

let dense_capacities t =
  (Array.length t.senders.dense, Array.length t.receivers.dense)

let cwnd t ~flow_id =
  match store_find t.senders flow_id with
  | Some s -> Some (effective_cwnd t s)
  | None -> None

let alpha t ~flow_id =
  match store_find t.senders flow_id with
  | Some s -> Some s.alpha
  | None -> None
