(** Domain-sharded execution of one logical simulation.

    Partitions the topology's nodes across [n] OCaml domains — by pod
    by default, or via a pluggable [assign] — and runs one
    {!Network.t} per shard under the conservative-lookahead window
    protocol of {!Dessim.Shard}. Cross-shard packet hops travel as
    timestamped records over {!Dessim.Spsc} mailboxes; the lookahead
    is the minimum cross-shard link propagation delay, so no message
    can land inside the window that produced it.

    Deterministic for a fixed shard count: per-shard engines keep
    their (key, seq) dispatch order and mailboxes are drained in fixed
    source-shard order, so equal seeds replay byte-identically
    regardless of wall-clock interleaving. Different shard counts are
    different (equally valid) interleavings of the same workload.

    Telemetry is not supported in sharded runs (pass a config with
    telemetry disabled, the default). *)

type t

(** [run ~shards topo ~make_scheme ~flows ~migrations ~until] builds
    one network per shard ([make_scheme ~shard] must return a fresh
    scheme instance per call — shards must not share scheme state),
    schedules every flow on the shards owning its endpoints and every
    migration on all shards, and drives the whole system to [until].

    [assign] overrides the default pod-based partition (core switches
    round-robin); it must map every node to [0..shards-1].
    [faults] installs the same plan on every shard, partitioned by
    ownership inside {!Network.install_faults}. *)
val run :
  ?config:Network.config ->
  ?faults:Dessim.Fault.plan ->
  ?assign:(int -> int) ->
  shards:int ->
  Topo.Topology.t ->
  make_scheme:(shard:int -> Scheme.t) ->
  flows:Netcore.Flow.t list ->
  migrations:Network.migration list ->
  until:Dessim.Time_ns.t ->
  t

(** [metrics t] — the per-shard collectors combined with
    {!Metrics.merge}. *)
val metrics : t -> Metrics.t

(** [nets t] — the per-shard networks (for per-shard inspection). *)
val nets : t -> Network.t array

val shards : t -> int

(** [owner t node] — the shard owning [node]. *)
val owner : t -> int -> int

val lookahead : t -> Dessim.Time_ns.t

(** [windows t] — conservative windows executed. *)
val windows : t -> int

(** {2 Aggregates across shards} *)

(** Conservation sides, summed: injected = delivered + dropped +
    consumed + live + {!handoffs_in_flight} (messages pushed but not
    yet injected at their destination shard). *)
val injected_packets : t -> int

val consumed_at_switch : t -> int
val live_packets : t -> int
val handoffs_in_flight : t -> int

(** [transport_flows_completed t] — {!Transport.flows_completed}
    summed over shards (each flow completes on exactly one shard). *)
val transport_flows_completed : t -> int

val reordering_events : t -> int

(** [fault_counts t] — per-kind firings summed across shards (churn,
    which replays everywhere, is counted once). *)
val fault_counts : t -> (string * int) list
