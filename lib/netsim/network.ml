module Engine = Dessim.Engine
module Time_ns = Dessim.Time_ns
module Rng = Dessim.Rng
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip
module Topology = Topo.Topology

type migration = { at : Time_ns.t; vip : Vip.t; to_host : int }

type config = {
  seed : int;
  gw_proc_delay : Time_ns.t;
  host_fwd_delay : Time_ns.t;
  window : int;
  rto : Time_ns.t;
  gateways_used : int option;
  loopback_delay : Time_ns.t;
  classify : (Packet.t -> int) option;
  transport_mode : Transport.mode;
  telemetry : Dessim.Telemetry.t;
}

let default_config =
  {
    seed = 42;
    gw_proc_delay = Time_ns.of_us 40;
    host_fwd_delay = Time_ns.of_us 10;
    window = 64;
    rto = Time_ns.of_us 500;
    gateways_used = None;
    loopback_delay = Time_ns.of_us 1;
    classify = None;
    transport_mode = Transport.Windowed;
    telemetry = Dessim.Telemetry.disabled;
  }

type t = {
  cfg : config;
  engine : Engine.t;
  rng : Rng.t;
  topo : Topology.t;
  mapping : Netcore.Mapping.t;
  metrics : Metrics.t;
  scheme : Scheme.t;
  mutable transport : Transport.t option;
  vm_host : int array;
  gateways : int array; (* the replicas actually used *)
  mutable next_packet_id : int;
  env : Scheme.env;
  flows : (int, Flow.t) Hashtbl.t;
}

let fresh_packet_id t () =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let gateway_for_flow t flow_id =
  let n = Array.length t.gateways in
  t.gateways.(Topo.Routing.ecmp_hash ~salt:flow_id ~a:flow_id ~b:7 mod n)

let transport_exn t =
  match t.transport with Some tr -> tr | None -> assert false

(* --- forwarding ------------------------------------------------------- *)

let salt_of (pkt : Packet.t) =
  if pkt.Packet.flow_id >= 0 then pkt.Packet.flow_id else pkt.Packet.id

let rec transmit t ~from ~next (pkt : Packet.t) =
  let link = Topology.link t.topo ~src:from ~dst:next in
  match Topo.Link.transmit link ~now:(Engine.now t.engine) ~bytes:pkt.Packet.size with
  | Some { Topo.Link.arrival; ce_marked } ->
      if ce_marked then pkt.Packet.ecn <- true;
      Engine.schedule t.engine ~at:arrival (fun () ->
          Topo.Link.delivered link ~bytes:pkt.Packet.size;
          arrive t ~node:next ~from pkt)
  | None -> Metrics.packet_dropped t.metrics ~site:Metrics.Link_buffer pkt

and forward_from t ~node (pkt : Packet.t) =
  let dst = Topology.node_of_pip t.topo pkt.Packet.dst_pip in
  if dst = node then ()
  else
    let next = Topo.Routing.next_hop t.topo ~at:node ~dst ~salt:(salt_of pkt) in
    transmit t ~from:node ~next pkt

and arrive t ~node ~from (pkt : Packet.t) =
  match Topology.kind t.topo node with
  | Topo.Node.Tor _ | Topo.Node.Spine _ | Topo.Node.Core _ -> (
      Metrics.switch_processed t.metrics ~switch:node pkt;
      pkt.Packet.hops <- pkt.Packet.hops + 1;
      match t.scheme.Scheme.on_switch t.env ~switch:node ~from pkt with
      | Scheme.Forward -> forward_from t ~node pkt
      | Scheme.Consume -> ()
      | Scheme.Delay d ->
          Engine.schedule_after t.engine ~delay:d (fun () ->
              forward_from t ~node pkt)
      | Scheme.Drop_pkt ->
          Metrics.packet_dropped t.metrics ~site:Metrics.Failed_switch pkt)
  | Topo.Node.Gateway _ -> gateway_receive t ~node pkt
  | Topo.Node.Host _ -> host_receive t ~node pkt

and gateway_receive t ~node (pkt : Packet.t) =
  Metrics.gateway_arrival t.metrics pkt;
  Engine.schedule_after t.engine ~delay:t.cfg.gw_proc_delay (fun () ->
      match Netcore.Mapping.lookup_opt t.mapping pkt.Packet.dst_vip with
      | Some pip ->
          pkt.Packet.dst_pip <- pip;
          pkt.Packet.resolved <- true;
          pkt.Packet.gw_visited <- true;
          forward_from t ~node pkt
      | None -> Metrics.packet_dropped t.metrics ~site:Metrics.Gateway_miss pkt)

and host_receive t ~node (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Learning | Packet.Invalidation ->
      (* Control packets are switch-addressed; one reaching a host is
         a routing bug. *)
      assert false
  | Packet.Data | Packet.Ack ->
      let vip_home = t.vm_host.(Vip.to_int pkt.Packet.dst_vip) in
      if vip_home = node then deliver t pkt
      else begin
        Metrics.misdelivered t.metrics pkt;
        let action = t.scheme.Scheme.on_misdelivery t.env ~host:node pkt in
        Engine.schedule_after t.engine ~delay:t.cfg.host_fwd_delay (fun () ->
            match action with
            | Scheme.Reforward_to_gateway ->
                pkt.Packet.resolved <- false;
                pkt.Packet.gw_visited <- false;
                pkt.Packet.dst_pip <-
                  Topology.pip t.topo (gateway_for_flow t pkt.Packet.flow_id);
                if t.scheme.Scheme.host_tags_misdelivery then begin
                  pkt.Packet.misdelivery <- Some (Topology.pip t.topo node);
                  pkt.Packet.hit_switch <- -1
                end;
                transmit t ~from:node ~next:(Topology.tor_of t.topo node) pkt
            | Scheme.Follow_me -> (
                match Netcore.Mapping.lookup_opt t.mapping pkt.Packet.dst_vip with
                | Some pip ->
                    pkt.Packet.dst_pip <- pip;
                    pkt.Packet.resolved <- true;
                    pkt.Packet.misdelivery <- Some (Topology.pip t.topo node);
                    transmit t ~from:node ~next:(Topology.tor_of t.topo node) pkt
                | None ->
                    Metrics.packet_dropped t.metrics ~site:Metrics.Host_miss pkt))
      end

and deliver t (pkt : Packet.t) =
  let first =
    Packet.is_data pkt
    && not
         (Transport.has_received_any (transport_exn t)
            ~flow_id:pkt.Packet.flow_id)
  in
  Metrics.delivered t.metrics pkt ~now:(Engine.now t.engine) ~first_of_flow:first;
  if Packet.is_data pkt then
    Dessim.Telemetry.observe t.cfg.telemetry "packet_latency_s"
      (Time_ns.to_sec (Time_ns.sub (Engine.now t.engine) pkt.Packet.sent_at));
  match pkt.Packet.kind with
  | Packet.Data -> Transport.on_data (transport_exn t) pkt
  | Packet.Ack -> Transport.on_ack (transport_exn t) pkt
  | Packet.Learning | Packet.Invalidation -> ()

(* --- sending ---------------------------------------------------------- *)

let send_tenant_packet t ~src_host (pkt : Packet.t) =
  let dst_home = t.vm_host.(Vip.to_int pkt.Packet.dst_vip) in
  if dst_home = src_host then begin
    (* Hypervisor-local switching for co-located VMs: no network, no
       translation. *)
    pkt.Packet.resolved <- true;
    pkt.Packet.dst_pip <- Topology.pip t.topo src_host;
    Engine.schedule_after t.engine ~delay:t.cfg.loopback_delay (fun () ->
        deliver t pkt)
  end
  else begin
    (* Loopback packets are excluded from the hit-rate denominator:
       they involve no translation at all. *)
    Metrics.packet_sent t.metrics pkt;
    let resolution =
      t.scheme.Scheme.resolve_at_host t.env ~host:src_host
        ~flow_id:pkt.Packet.flow_id ~dst_vip:pkt.Packet.dst_vip
    in
    let launch () =
      transmit t ~from:src_host ~next:(Topology.tor_of t.topo src_host) pkt
    in
    match resolution with
    | Scheme.Send_resolved pip ->
        pkt.Packet.dst_pip <- pip;
        pkt.Packet.resolved <- true;
        launch ()
    | Scheme.Send_via_gateway ->
        pkt.Packet.dst_pip <-
          Topology.pip t.topo (gateway_for_flow t pkt.Packet.flow_id);
        launch ()
    | Scheme.Send_after (delay, pip) ->
        Engine.schedule_after t.engine ~delay (fun () ->
            pkt.Packet.dst_pip <- pip;
            pkt.Packet.resolved <- true;
            launch ())
  end

let make_transport t =
  let now () = Engine.now t.engine in
  let schedule delay f = Engine.schedule_after t.engine ~delay f in
  let send_data flow ~seq ~size ~retransmit =
    let src_host = t.vm_host.(Vip.to_int flow.Flow.src_vip) in
    let pkt =
      Packet.make_data ~id:(fresh_packet_id t ()) ~flow_id:flow.Flow.id ~seq
        ~size ~src_vip:flow.Flow.src_vip ~dst_vip:flow.Flow.dst_vip
        ~src_pip:(Topology.pip t.topo src_host)
        ~dst_pip:Pip.none ~now:(now ())
    in
    pkt.Packet.retransmit <- retransmit;
    send_tenant_packet t ~src_host pkt
  in
  let send_ack flow ~seq ~ecn_echo =
    let src_host = t.vm_host.(Vip.to_int flow.Flow.dst_vip) in
    let pkt =
      Packet.make_ack ~id:(fresh_packet_id t ()) ~flow_id:flow.Flow.id ~seq
        ~src_vip:flow.Flow.dst_vip ~dst_vip:flow.Flow.src_vip
        ~src_pip:(Topology.pip t.topo src_host)
        ~dst_pip:Pip.none ~now:(now ())
    in
    pkt.Packet.ecn <- ecn_echo;
    send_tenant_packet t ~src_host pkt
  in
  let flow_done _flow ~fct =
    Metrics.flow_completed t.metrics ~fct;
    Dessim.Telemetry.observe t.cfg.telemetry "fct_s" (Time_ns.to_sec fct)
  in
  let first_packet _flow ~latency =
    Metrics.first_packet_latency t.metrics latency;
    Dessim.Telemetry.observe t.cfg.telemetry "first_packet_latency_s"
      (Time_ns.to_sec latency)
  in
  Transport.create ~mode:t.cfg.transport_mode ~window:t.cfg.window
    ~rto:t.cfg.rto
    { Transport.now; schedule; send_data; send_ack; flow_done; first_packet }

(* --- construction ----------------------------------------------------- *)

let create ?(config = default_config) topo ~scheme =
  (* Topologies may be reused across runs; links carry per-run queue
     state. *)
  Topology.iter_links topo Topo.Link.reset;
  let engine = Engine.create () in
  let rng = Rng.create config.seed in
  let mapping = Netcore.Mapping.create () in
  let params = Topology.params topo in
  let hosts = Topology.hosts topo in
  let vms_per_host = params.Topo.Params.vms_per_host in
  let num_vms = Array.length hosts * vms_per_host in
  let vm_host =
    Array.init num_vms (fun vip -> hosts.(vip / vms_per_host))
  in
  Array.iteri
    (fun vip host ->
      Netcore.Mapping.install mapping (Vip.of_int vip) (Topology.pip topo host))
    vm_host;
  let gateways =
    match config.gateways_used with
    | None -> Topology.gateways topo
    | Some k ->
        let all = Topology.gateways topo in
        if k <= 0 || k > Array.length all then
          invalid_arg "Network.create: gateways_used out of range";
        Array.sub all 0 k
  in
  let rec t =
    {
      cfg = config;
      engine;
      rng;
      topo;
      mapping;
      metrics = Metrics.create ?classify:config.classify topo (Rng.split rng);
      scheme;
      transport = None;
      vm_host;
      gateways;
      next_packet_id = 0;
      env;
      flows = Hashtbl.create 1024;
    }
  and env =
    {
      Scheme.engine;
      rng = Rng.create (config.seed + 1);
      topo;
      mapping;
      base_rtt = Topo.Params.base_rtt params;
      fresh_packet_id = (fun () -> fresh_packet_id t ());
      emit_at_switch =
        (fun ~src_switch pkt ->
          Metrics.packet_sent t.metrics pkt;
          forward_from t ~node:src_switch pkt);
    }
  in
  t.transport <- Some (make_transport t);
  (match scheme.Scheme.telemetry with
  | Some hooks when Dessim.Telemetry.is_enabled config.telemetry ->
      hooks.Scheme.attach config.telemetry
  | Some _ | None -> ());
  t

let metrics t = t.metrics

let transport t =
  match t.transport with Some tr -> tr | None -> assert false
let topo t = t.topo
let mapping t = t.mapping
let engine t = t.engine
let env t = t.env
let vm_host t vip = t.vm_host.(Vip.to_int vip)
let num_vms t = Array.length t.vm_host
let host_of_vm_index t i = t.vm_host.(i)

let run t flows ~migrations ~until =
  List.iter
    (fun (flow : Flow.t) ->
      Hashtbl.replace t.flows flow.Flow.id flow;
      Engine.schedule t.engine ~at:flow.Flow.start (fun () ->
          Metrics.flow_started t.metrics;
          Transport.start (transport_exn t) flow))
    flows;
  List.iter
    (fun m ->
      Engine.schedule t.engine ~at:m.at (fun () ->
          let old_host = t.vm_host.(Vip.to_int m.vip) in
          let old_pip = Topology.pip t.topo old_host in
          let new_pip = Topology.pip t.topo m.to_host in
          t.vm_host.(Vip.to_int m.vip) <- m.to_host;
          Netcore.Mapping.migrate t.mapping m.vip new_pip;
          t.scheme.Scheme.on_mapping_update t.env m.vip ~old_pip ~new_pip))
    migrations;
  let tel = t.cfg.telemetry in
  if Dessim.Telemetry.is_enabled tel then begin
    (* Periodic probes are pure observers: they draw no randomness and
       mutate no simulation state, so an instrumented run stays
       bit-identical to an uninstrumented one. The chain stops on its
       own once the engine reaches [until]. *)
    let probe now =
      let now_sec = Time_ns.to_sec now in
      (match t.scheme.Scheme.telemetry with
      | Some hooks -> hooks.Scheme.probe tel ~now_sec
      | None -> ());
      Dessim.Telemetry.sample tel "net/flows_completed" ~now_sec
        (float_of_int (Metrics.flows_completed t.metrics));
      Dessim.Telemetry.sample tel "net/packets_dropped" ~now_sec
        (float_of_int (Metrics.packets_dropped t.metrics));
      Dessim.Telemetry.sample tel "net/gateway_packets" ~now_sec
        (float_of_int (Metrics.gateway_packets t.metrics))
    in
    let interval = Dessim.Telemetry.sample_interval tel in
    let rec tick () =
      let now = Engine.now t.engine in
      probe now;
      if Time_ns.compare now until < 0 then
        Engine.schedule t.engine ~at:(Time_ns.add now interval) tick
    in
    Engine.schedule t.engine ~at:interval tick;
    Engine.run_until t.engine ~limit:until;
    probe (Engine.now t.engine)
  end
  else Engine.run_until t.engine ~limit:until
