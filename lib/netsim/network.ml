module Engine = Dessim.Engine
module Time_ns = Dessim.Time_ns
module Rng = Dessim.Rng
module Spsc = Dessim.Spsc
module Packet = Netcore.Packet
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip
module Topology = Topo.Topology
module Verdict = Switchv2p.Verdict

type migration = { at : Time_ns.t; vip : Vip.t; to_host : int }

type config = {
  seed : int;
  gw_proc_delay : Time_ns.t;
  host_fwd_delay : Time_ns.t;
  window : int;
  rto : Time_ns.t;
  gateways_used : int option;
  loopback_delay : Time_ns.t;
  classify : (Packet.t -> int) option;
  transport_mode : Transport.mode;
  telemetry : Dessim.Telemetry.t;
  sched : Engine.sched option;
}

let default_config =
  {
    seed = 42;
    gw_proc_delay = Time_ns.of_us 40;
    host_fwd_delay = Time_ns.of_us 10;
    window = 64;
    rto = Time_ns.of_us 500;
    gateways_used = None;
    loopback_delay = Time_ns.of_us 1;
    classify = None;
    transport_mode = Transport.Windowed;
    telemetry = Dessim.Telemetry.disabled;
    sched = None;
  }

(* --- typed events ------------------------------------------------------

   The per-hop path schedules typed engine events instead of closures:
   an event code plus two int operands, with the packet referenced by
   its pool slot in [b] and node ids packed into [a]. Node ids fit
   comfortably in [node_bits] (a 24-bit id space is ~16M nodes; the
   largest simulated fabrics here are a few thousand). *)

let node_bits = 24
let node_mask = (1 lsl node_bits) - 1
let ev_arrive = 0 (* a = (from lsl node_bits) lor node, b = slot *)
let ev_gateway = 1 (* a = gateway node,                 b = slot *)
let ev_forward = 2 (* a = switch node (scheme Delay),   b = slot *)
let ev_loopback = 3 (* a unused,                        b = slot *)
let ev_host_fwd = 4 (* a = (action lsl node_bits) lor node, b = slot *)
let ev_fault = 5 (* a = index into the installed fault plan, b unused *)
let ev_link_deq = 6 (* a = (from lsl node_bits) lor next, b = BYTES, no packet *)
let ev_arrive_remote = 7 (* like ev_arrive, but the link dequeue runs remotely *)

(* ev_host_fwd actions; must be decided before the processing delay,
   exactly as the closure version captured the scheme's answer at
   misdelivery time. *)
let act_reforward = 0
let act_follow_me = 1

(* --- domain sharding ---------------------------------------------------

   In a sharded run (see Parnet) each OCaml domain owns one Network.t
   covering a partition of the nodes; a node's state — its links'
   source-side queues, its pipeline tables, its hosts' caches — is
   only ever touched by its owning shard. Packets cross the partition
   as serialized int records over SPSC mailboxes, injected back at the
   owner by {!receive_handoff}. Three message families:

   mode 0 — link hop: the source owner ran the full egress (loss
   draws, queue admission, ECN), so the record carries the computed
   arrival time; the owner of the destination node replays the arrival
   while a local [ev_link_deq] event drains the source-side queue at
   the same timestamp.

   mode 1 — fresh tenant send whose VM has migrated to a host another
   shard owns: the owner re-runs the whole send (resolution, metrics)
   one lookahead later. Charged to [injected_pkts] once, at the
   original origin, so a message still in a mailbox at the horizon
   shows up in the handoff counters and conservation still balances.

   modes 2/3 — final delivery of a data (2) or ack (3) packet whose
   transport endpoint lives on another shard: flows keep their
   sender/receiver state at the shards owning the flow's *initial*
   hosts, so a packet chasing a migrated VM is delivered where the
   transport actually is. *)

type handoff = {
  hs_my : int; (* this network's shard id *)
  hs_owner : int array; (* node id -> owning shard *)
  hs_out : Spsc.t array; (* outbound mailbox per destination shard *)
  hs_buf : int array; (* scratch serialization record *)
  hs_lookahead : Time_ns.t; (* min cross-shard link latency *)
  hs_send_home : int array; (* flow id -> shard holding the sender *)
  hs_recv_home : int array; (* flow id -> shard holding the receiver *)
  mutable hs_sent : int; (* records pushed (conservation: in-flight) *)
  mutable hs_recv : int; (* records injected *)
}

type t = {
  cfg : config;
  engine : Engine.t;
  rng : Rng.t;
  topo : Topology.t;
  mapping : Netcore.Mapping.t;
  metrics : Metrics.t;
  scheme : Scheme.t;
  mutable transport : Transport.t option;
  vm_host : int array;
  gateways : int array; (* the replicas actually used *)
  mutable next_packet_id : int;
  env : Scheme.env;
  (* Packet pool: [pool] maps slot -> packet (every pool-managed packet
     keeps its slot in [pkt.pool_slot] for its whole life); [free_slots]
     is a stack of recyclable slots. Both arrays grow together, so
     [free_top <= pool_len <= capacity] always holds and a release
     never needs its own bounds check. *)
  mutable pool : Packet.t array;
  mutable pool_len : int;
  mutable free_slots : int array;
  mutable free_top : int;
  (* Fault injection. [faults_on] stays [false] until a plan is
     installed, so fault-free runs pay only dead branches on the hot
     path (no RNG draws, no behavior change). Fault firings are typed
     [ev_fault] events whose [a] operand indexes [fault_specs] — no
     closures. [fault_rng] is a dedicated stream (seeded from the
     plan) so per-packet loss draws and churn victim selection never
     perturb the simulation's own RNG sequences. *)
  mutable faults_on : bool;
  mutable fault_specs : Dessim.Fault.spec array;
  mutable fault_rng : Rng.t;
  (* Churn victim selection. In a single-shard run this is the same
     physical stream as [fault_rng] (loss draws and churn interleave
     exactly as the goldens recorded); a sharded run splits them so
     every shard can replay identical churn from a shared seed while
     loss draws stay private to the link owner. *)
  mutable churn_rng : Rng.t;
  mutable shard : handoff option;
  fault_counts : int array; (* firings per Fault kind *)
  gw_down : bool array; (* indexed by node id; true inside an outage *)
  (* Conservation accounting for the DST harness: every packet that
     enters the network is injected; terminal states are delivered
     (Metrics.delivered_packets), dropped (Metrics.packets_dropped),
     consumed by a switch, or still pooled at the horizon. *)
  mutable injected_pkts : int;
  mutable consumed_pkts : int;
}

let fresh_packet_id t () =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let gateway_for_flow t flow_id =
  let n = Array.length t.gateways in
  t.gateways.(Topo.Routing.ecmp_hash ~salt:flow_id ~a:flow_id ~b:7 mod n)

let transport_exn t =
  match t.transport with Some tr -> tr | None -> assert false

(* --- packet pool ------------------------------------------------------- *)

let pool_grow t =
  let cap = Array.length t.pool in
  let ncap = if cap = 0 then 256 else cap * 2 in
  let npool = Array.make ncap t.pool.(0) in
  Array.blit t.pool 0 npool 0 t.pool_len;
  t.pool <- npool;
  let nfree = Array.make ncap 0 in
  Array.blit t.free_slots 0 nfree 0 t.free_top;
  t.free_slots <- nfree

(* Register [pkt] under a pool slot. Reuses a free slot when one is
   available (the recycled packet previously living there is simply
   replaced; this only happens for the rare scheme-built control
   packets — data/acks go through [pool_acquire] and reuse the resident
   packet itself). *)
let pool_adopt t (pkt : Packet.t) =
  if pkt.Packet.pool_slot < 0 then begin
    let slot =
      if t.free_top > 0 then begin
        t.free_top <- t.free_top - 1;
        t.free_slots.(t.free_top)
      end
      else begin
        if t.pool_len = Array.length t.pool then pool_grow t;
        let s = t.pool_len in
        t.pool_len <- s + 1;
        s
      end
    in
    t.pool.(slot) <- pkt;
    pkt.Packet.pool_slot <- slot
  end

(* A recycled (or, when the free list is empty, freshly allocated)
   packet whose fields the caller must fully [Packet.reset]. *)
let pool_acquire t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.pool.(t.free_slots.(t.free_top))
  end
  else begin
    if t.pool_len = Array.length t.pool then pool_grow t;
    let slot = t.pool_len in
    t.pool_len <- slot + 1;
    let pkt =
      Packet.make_data ~id:(-1) ~flow_id:(-1) ~seq:0 ~size:0
        ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 0) ~src_pip:Pip.none
        ~dst_pip:Pip.none ~now:Time_ns.zero
    in
    pkt.Packet.pool_slot <- slot;
    t.pool.(slot) <- pkt;
    pkt
  end

(* Called at every terminal point of a packet's life: delivery (after
   all metric/telemetry/transport reads), any drop, or consumption by a
   switch. Each in-flight packet has at most one pending event (hops
   are strictly sequential), so release-at-terminal can never race with
   a queued event still referencing the slot. *)
let pool_release t (pkt : Packet.t) =
  let slot = pkt.Packet.pool_slot in
  if slot >= 0 then begin
    (* Drop rider payloads now so a parked packet doesn't pin them. *)
    pkt.Packet.misdelivery <- -1;
    pkt.Packet.spill <- None;
    pkt.Packet.promo <- None;
    pkt.Packet.mapping_payload <- None;
    t.free_slots.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  end

(* --- cross-shard handoff serialization --------------------------------- *)

(* Record layout (all ints): 0 mode, 1 arrival, 2 packed from/next
   (mode 0 only), 3 id, 4 flow_id, 5 kind+flags, 6 size, 7 seq,
   8 src_vip, 9 dst_vip, 10 src_pip, 11 dst_pip, 12 misdelivery,
   13 hit_switch, 14 hops, 15 sent_at, 16-21 the three optional
   (vip, pip) riders (spill, promo, mapping payload), present iff the
   matching flag bit is set. *)
let hoff_stride = 22

(* Word 5: 2-bit kind code below the flag bits. *)
let hf_resolved = 4
let hf_gw_pinned = 8
let hf_ecn = 16
let hf_gw_visited = 32
let hf_retransmit = 64
let hf_spill = 128
let hf_promo = 256
let hf_mp = 512

let kind_code = function
  | Packet.Data -> 0
  | Packet.Ack -> 1
  | Packet.Learning -> 2
  | Packet.Invalidation -> 3

let kind_of_code = function
  | 0 -> Packet.Data
  | 1 -> Packet.Ack
  | 2 -> Packet.Learning
  | _ -> Packet.Invalidation

let hoff_push sc ~dst_shard ~mode ~arrival ~a (pkt : Packet.t) =
  let buf = sc.hs_buf in
  buf.(0) <- mode;
  buf.(1) <- Time_ns.to_ns arrival;
  buf.(2) <- a;
  buf.(3) <- pkt.Packet.id;
  buf.(4) <- pkt.Packet.flow_id;
  buf.(6) <- pkt.Packet.size;
  buf.(7) <- pkt.Packet.seq;
  buf.(8) <- Vip.to_int pkt.Packet.src_vip;
  buf.(9) <- Vip.to_int pkt.Packet.dst_vip;
  buf.(10) <- Pip.to_int pkt.Packet.src_pip;
  buf.(11) <- Pip.to_int pkt.Packet.dst_pip;
  buf.(12) <- pkt.Packet.misdelivery;
  buf.(13) <- pkt.Packet.hit_switch;
  buf.(14) <- pkt.Packet.hops;
  buf.(15) <- Time_ns.to_ns pkt.Packet.sent_at;
  let fl = ref (kind_code pkt.Packet.kind) in
  if pkt.Packet.resolved then fl := !fl lor hf_resolved;
  if pkt.Packet.gw_pinned then fl := !fl lor hf_gw_pinned;
  if pkt.Packet.ecn then fl := !fl lor hf_ecn;
  if pkt.Packet.gw_visited then fl := !fl lor hf_gw_visited;
  if pkt.Packet.retransmit then fl := !fl lor hf_retransmit;
  (match pkt.Packet.spill with
  | Some (v, p) ->
      fl := !fl lor hf_spill;
      buf.(16) <- Vip.to_int v;
      buf.(17) <- Pip.to_int p
  | None ->
      buf.(16) <- 0;
      buf.(17) <- 0);
  (match pkt.Packet.promo with
  | Some (v, p) ->
      fl := !fl lor hf_promo;
      buf.(18) <- Vip.to_int v;
      buf.(19) <- Pip.to_int p
  | None ->
      buf.(18) <- 0;
      buf.(19) <- 0);
  (match pkt.Packet.mapping_payload with
  | Some (v, p) ->
      fl := !fl lor hf_mp;
      buf.(20) <- Vip.to_int v;
      buf.(21) <- Pip.to_int p
  | None ->
      buf.(20) <- 0;
      buf.(21) <- 0);
  buf.(5) <- !fl;
  sc.hs_sent <- sc.hs_sent + 1;
  Spsc.push sc.hs_out.(dst_shard) buf

(* Materialize a handoff record into a pooled packet. *)
let hoff_read t buf off =
  let pkt = pool_acquire t in
  let fl = buf.(off + 5) in
  pkt.Packet.id <- buf.(off + 3);
  pkt.Packet.flow_id <- buf.(off + 4);
  pkt.Packet.kind <- kind_of_code (fl land 3);
  pkt.Packet.size <- buf.(off + 6);
  pkt.Packet.seq <- buf.(off + 7);
  pkt.Packet.src_vip <- Vip.of_int buf.(off + 8);
  pkt.Packet.dst_vip <- Vip.of_int buf.(off + 9);
  pkt.Packet.src_pip <- Pip.of_int buf.(off + 10);
  pkt.Packet.dst_pip <- Pip.of_int buf.(off + 11);
  pkt.Packet.misdelivery <- buf.(off + 12);
  pkt.Packet.hit_switch <- buf.(off + 13);
  pkt.Packet.hops <- buf.(off + 14);
  pkt.Packet.sent_at <- Time_ns.of_ns buf.(off + 15);
  pkt.Packet.resolved <- fl land hf_resolved <> 0;
  pkt.Packet.gw_pinned <- fl land hf_gw_pinned <> 0;
  pkt.Packet.ecn <- fl land hf_ecn <> 0;
  pkt.Packet.gw_visited <- fl land hf_gw_visited <> 0;
  pkt.Packet.retransmit <- fl land hf_retransmit <> 0;
  pkt.Packet.spill <-
    (if fl land hf_spill <> 0 then
       Some (Vip.of_int buf.(off + 16), Pip.of_int buf.(off + 17))
     else None);
  pkt.Packet.promo <-
    (if fl land hf_promo <> 0 then
       Some (Vip.of_int buf.(off + 18), Pip.of_int buf.(off + 19))
     else None);
  pkt.Packet.mapping_payload <-
    (if fl land hf_mp <> 0 then
       Some (Vip.of_int buf.(off + 20), Pip.of_int buf.(off + 21))
     else None);
  pkt

(* The shard holding a tenant packet's transport endpoint: the
   receiver for data, the sender for acks — fixed at setup from the
   flows' initial placement. Control packets (and unknown flow ids,
   which never reach a transport) are local. *)
let hoff_home sc (pkt : Packet.t) =
  let f = pkt.Packet.flow_id in
  match pkt.Packet.kind with
  | Packet.Data ->
      if f >= 0 && f < Array.length sc.hs_recv_home then sc.hs_recv_home.(f)
      else sc.hs_my
  | Packet.Ack ->
      if f >= 0 && f < Array.length sc.hs_send_home then sc.hs_send_home.(f)
      else sc.hs_my
  | Packet.Learning | Packet.Invalidation -> sc.hs_my

(* --- forwarding ------------------------------------------------------- *)

let salt_of (pkt : Packet.t) =
  if pkt.Packet.flow_id >= 0 then pkt.Packet.flow_id else pkt.Packet.id

(* One-shot corruption: mangle the sequence number far out of any
   flow's valid range (the transport's bounds guard treats it as
   garbage and never acks, so the sender recovers by RTO) and strip
   rider payloads (a corrupted learning/invalidation packet carries
   nothing a switch would act on). *)
let corrupt_seq_offset = 1 lsl 40

let corrupt_packet (pkt : Packet.t) =
  pkt.Packet.seq <- pkt.Packet.seq + corrupt_seq_offset;
  pkt.Packet.mapping_payload <- None;
  pkt.Packet.promo <- None;
  pkt.Packet.spill <- None

let drop_faulted t ~site (pkt : Packet.t) =
  Metrics.packet_dropped t.metrics ~site pkt;
  pool_release t pkt

let transmit t ~from ~next (pkt : Packet.t) =
  if t.faults_on && next = Topo.Routing.blackhole then
    (* Every candidate next hop is behind a downed link. *)
    drop_faulted t ~site:Metrics.Fault_blackhole pkt
  else begin
    let link = Topology.link t.topo ~src:from ~dst:next in
    if t.faults_on && not link.Topo.Link.up then
      (* Forced first hop (host/gateway uplink) onto a dead link. *)
      drop_faulted t ~site:Metrics.Fault_blackhole pkt
    else if t.faults_on && Topo.Link.loss_step link t.fault_rng then
      drop_faulted t ~site:Metrics.Fault_loss pkt
    else begin
      if t.faults_on && Topo.Link.take_corrupt link then corrupt_packet pkt;
      let p =
        Topo.Link.transmit_packed link ~now:(Engine.now t.engine)
          ~bytes:pkt.Packet.size
      in
      if p = Topo.Link.dropped then begin
        Metrics.packet_dropped t.metrics ~site:Metrics.Link_buffer pkt;
        pool_release t pkt
      end
      else begin
        if Topo.Link.packed_ce p then pkt.Packet.ecn <- true;
        let arrival = Topo.Link.packed_arrival p in
        let a = (from lsl node_bits) lor next in
        match t.shard with
        | Some sc when sc.hs_owner.(next) <> sc.hs_my ->
            (* Cross-shard hop: the destination owner replays the
               arrival; a local typed event drains this side's link
               queue at the same timestamp. The arrival is at least
               one lookahead away (the lookahead is the minimum
               cross-shard propagation delay), which is what lets the
               window protocol drain mailboxes only at barriers. *)
            Engine.schedule_event t.engine ~at:arrival ~code:ev_link_deq ~a
              ~b:pkt.Packet.size;
            hoff_push sc ~dst_shard:sc.hs_owner.(next) ~mode:0 ~arrival ~a pkt;
            pool_release t pkt
        | _ ->
            pool_adopt t pkt;
            Engine.schedule_event t.engine ~at:arrival ~code:ev_arrive ~a
              ~b:pkt.Packet.pool_slot
      end
    end
  end

let forward_from t ~node (pkt : Packet.t) =
  let dst = Topology.node_of_pip t.topo pkt.Packet.dst_pip in
  if dst = node then begin
    t.consumed_pkts <- t.consumed_pkts + 1;
    pool_release t pkt
  end
  else
    let next =
      if t.faults_on then
        Topo.Routing.next_hop_alive t.topo ~at:node ~dst ~salt:(salt_of pkt)
      else Topo.Routing.next_hop t.topo ~at:node ~dst ~salt:(salt_of pkt)
    in
    transmit t ~from:node ~next pkt

let rec arrive t ~node ~from (pkt : Packet.t) =
  match Topology.kind t.topo node with
  | Topo.Node.Tor _ | Topo.Node.Spine _ | Topo.Node.Core _ -> (
      Metrics.switch_processed t.metrics ~switch:node pkt;
      pkt.Packet.hops <- pkt.Packet.hops + 1;
      let v = Pipeline.run t.scheme.Scheme.pipeline t.env ~switch:node ~from pkt in
      let tag = Verdict.tag v in
      if tag = Verdict.tag_forward then forward_from t ~node pkt
      else if tag = Verdict.tag_consume then begin
        t.consumed_pkts <- t.consumed_pkts + 1;
        pool_release t pkt
      end
      else if tag = Verdict.tag_delay then
        Engine.schedule_event_after t.engine ~delay:(Verdict.delay_ns v)
          ~code:ev_forward ~a:node ~b:pkt.Packet.pool_slot
      else begin
        Metrics.packet_dropped t.metrics ~site:Metrics.Failed_switch pkt;
        pool_release t pkt
      end)
  | Topo.Node.Gateway _ ->
      if t.faults_on && t.gw_down.(node) then
        (* Outage window: the gateway black-holes arrivals. *)
        drop_faulted t ~site:Metrics.Fault_gateway pkt
      else begin
        Metrics.gateway_arrival t.metrics pkt;
        Engine.schedule_event_after t.engine ~delay:t.cfg.gw_proc_delay
          ~code:ev_gateway ~a:node ~b:pkt.Packet.pool_slot
      end
  | Topo.Node.Host _ -> host_receive t ~node pkt

and gateway_forward t ~node (pkt : Packet.t) =
  match Netcore.Mapping.lookup t.mapping pkt.Packet.dst_vip with
  | exception Not_found ->
      Metrics.packet_dropped t.metrics ~site:Metrics.Gateway_miss pkt;
      pool_release t pkt
  | pip ->
      pkt.Packet.dst_pip <- pip;
      pkt.Packet.resolved <- true;
      pkt.Packet.gw_visited <- true;
      forward_from t ~node pkt

and host_receive t ~node (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Learning | Packet.Invalidation ->
      (* Control packets are switch-addressed; one reaching a host is
         a routing bug. *)
      assert false
  | Packet.Data | Packet.Ack ->
      let vip_home = t.vm_host.(Vip.to_int pkt.Packet.dst_vip) in
      if vip_home = node then deliver t pkt
      else begin
        Metrics.misdelivered t.metrics pkt;
        (* Two ways a reforwarded packet can loop forever on stale
           cache entries, both broken by pinning it to gateway-only
           resolution: a second misdelivery (the VIP moved more than
           once and a switch "trusted" a cached value that was itself
           stale), and a misdelivery at the packet's own source host
           (the ToR's outer-source tagging heuristic cannot mark the
           reforward, so the stale entry would hairpin it back every
           time). *)
        if
          pkt.Packet.misdelivery >= 0
          || Pip.equal pkt.Packet.src_pip (Topology.pip t.topo node)
        then pkt.Packet.gw_pinned <- true;
        let action =
          match t.scheme.Scheme.on_misdelivery t.env ~host:node pkt with
          | Scheme.Reforward_to_gateway -> act_reforward
          | Scheme.Follow_me -> act_follow_me
        in
        Engine.schedule_event_after t.engine ~delay:t.cfg.host_fwd_delay
          ~code:ev_host_fwd
          ~a:((action lsl node_bits) lor node)
          ~b:pkt.Packet.pool_slot
      end

and host_forward t ~node ~action (pkt : Packet.t) =
  if action = act_reforward then begin
    pkt.Packet.resolved <- false;
    pkt.Packet.gw_visited <- false;
    pkt.Packet.dst_pip <-
      Topology.pip t.topo (gateway_for_flow t pkt.Packet.flow_id);
    if t.scheme.Scheme.host_tags_misdelivery then begin
      pkt.Packet.misdelivery <- Pip.to_int (Topology.pip t.topo node);
      pkt.Packet.hit_switch <- -1
    end;
    transmit t ~from:node ~next:(Topology.tor_of t.topo node) pkt
  end
  else
    match Netcore.Mapping.lookup t.mapping pkt.Packet.dst_vip with
    | exception Not_found ->
        Metrics.packet_dropped t.metrics ~site:Metrics.Host_miss pkt;
        pool_release t pkt
    | pip ->
        pkt.Packet.dst_pip <- pip;
        pkt.Packet.resolved <- true;
        pkt.Packet.misdelivery <- Pip.to_int (Topology.pip t.topo node);
        transmit t ~from:node ~next:(Topology.tor_of t.topo node) pkt

and deliver t (pkt : Packet.t) =
  let remote =
    match t.shard with
    | Some sc ->
        let home = hoff_home sc pkt in
        if home <> sc.hs_my then Some (sc, home) else None
    | None -> None
  in
  match remote with
  | Some (sc, dst_shard) ->
      (* The flow's transport endpoint lives on another shard (its VM
         migrated across the partition): hand the finished packet to
         the home shard, which re-runs [deliver] one lookahead later —
         delivery metrics and the transport callbacks both run where
         the flow state is. *)
      let arrival = Time_ns.add (Engine.now t.engine) sc.hs_lookahead in
      let mode = match pkt.Packet.kind with Packet.Ack -> 3 | _ -> 2 in
      hoff_push sc ~dst_shard ~mode ~arrival ~a:0 pkt;
      pool_release t pkt
  | None -> deliver_local t pkt

and deliver_local t (pkt : Packet.t) =
  let first =
    Packet.is_data pkt
    && not
         (Transport.has_received_any (transport_exn t)
            ~flow_id:pkt.Packet.flow_id)
  in
  Metrics.delivered t.metrics pkt ~now:(Engine.now t.engine) ~first_of_flow:first;
  if Packet.is_data pkt then
    Dessim.Telemetry.observe t.cfg.telemetry "packet_latency_s"
      (Time_ns.to_sec (Time_ns.sub (Engine.now t.engine) pkt.Packet.sent_at));
  (match pkt.Packet.kind with
  | Packet.Data -> Transport.on_data (transport_exn t) pkt
  | Packet.Ack -> Transport.on_ack (transport_exn t) pkt
  | Packet.Learning | Packet.Invalidation -> ());
  (* The transport callbacks only read the packet (any ACK they send is
     a fresh pool packet), so the slot can recycle now. *)
  pool_release t pkt

(* --- fault execution --------------------------------------------------- *)

let migrate_now t ~vip ~to_host =
  let old_host = t.vm_host.(Vip.to_int vip) in
  let old_pip = Topology.pip t.topo old_host in
  let new_pip = Topology.pip t.topo to_host in
  t.vm_host.(Vip.to_int vip) <- to_host;
  Netcore.Mapping.migrate t.mapping vip new_pip;
  t.scheme.Scheme.on_mapping_update t.env vip ~old_pip ~new_pip

module Fault = Dessim.Fault

let fault_series =
  Array.init Fault.num_kinds (fun i -> "fault/" ^ Fault.kind_name i)

let apply_action t (action : Fault.action) =
  match action with
  | Fault.Link_down (src, dst) ->
      (Topology.link t.topo ~src ~dst).Topo.Link.up <- false
  | Fault.Link_up (src, dst) ->
      (Topology.link t.topo ~src ~dst).Topo.Link.up <- true
  | Fault.Set_loss (src, dst, model) ->
      let l = Topology.link t.topo ~src ~dst in
      l.Topo.Link.loss <- model;
      l.Topo.Link.loss_state <- 0
  | Fault.Corrupt_next (src, dst) ->
      let l = Topology.link t.topo ~src ~dst in
      l.Topo.Link.corrupt_next <- l.Topo.Link.corrupt_next + 1
  | Fault.Switch_fail switch ->
      Pipeline.reset_switch t.scheme.Scheme.pipeline ~switch
  | Fault.Gateway_down g -> t.gw_down.(g) <- true
  | Fault.Gateway_up g -> t.gw_down.(g) <- false
  | Fault.Churn n ->
      let num_vms = Array.length t.vm_host in
      let hosts = Topology.hosts t.topo in
      let num_hosts = Array.length hosts in
      for _ = 1 to n do
        let vip = Rng.int t.churn_rng num_vms in
        let h = Rng.int t.churn_rng num_hosts in
        (* Never a no-op migration: bump to the next host if the draw
           landed on the VM's current placement. *)
        let to_host =
          if hosts.(h) = t.vm_host.(vip) then hosts.((h + 1) mod num_hosts)
          else hosts.(h)
        in
        migrate_now t ~vip:(Vip.of_int vip) ~to_host
      done

let apply_fault t ~index =
  let spec = t.fault_specs.(index) in
  let k = Fault.kind_index spec.Fault.action in
  (* Churn is the one fault replayed on every shard (each replica
     migrates its own copies of the victims); count it once. *)
  let count_here =
    match (spec.Fault.action, t.shard) with
    | Fault.Churn _, Some sc -> sc.hs_my = 0
    | _ -> true
  in
  if count_here then t.fault_counts.(k) <- t.fault_counts.(k) + 1;
  apply_action t spec.Fault.action;
  if count_here && Dessim.Telemetry.is_enabled t.cfg.telemetry then
    Dessim.Telemetry.sample t.cfg.telemetry
      fault_series.(k)
      ~now_sec:(Time_ns.to_sec (Engine.now t.engine))
      (float_of_int t.fault_counts.(k))

(* Typed-event dispatcher. The [b] operand of every packet-carrying
   code is a pool slot; packets are adopted into the pool before their
   first hop, so the slot is always live here. [ev_fault] events carry
   no packet and must be dispatched before the slot dereference. *)
let handle_event t ~code ~a ~b =
  if code = ev_fault then apply_fault t ~index:a
  else if code = ev_link_deq then
    (* [b] is a byte count, not a pool slot — dispatched before the
       slot dereference below. Source-side half of a cross-shard hop:
       the packet itself arrives on the peer shard. *)
    let link =
      Topology.link t.topo ~src:(a lsr node_bits) ~dst:(a land node_mask)
    in
    Topo.Link.delivered link ~bytes:b
  else begin
    let pkt = t.pool.(b) in
    if code = ev_arrive then begin
      let from = a lsr node_bits in
      let node = a land node_mask in
      let link = Topology.link t.topo ~src:from ~dst:node in
      Topo.Link.delivered link ~bytes:pkt.Packet.size;
      arrive t ~node ~from pkt
    end
    else if code = ev_arrive_remote then
      (* Cross-shard arrival: the sender's shard already drained its
         link queue via [ev_link_deq]. *)
      arrive t ~node:(a land node_mask) ~from:(a lsr node_bits) pkt
    else if code = ev_gateway then gateway_forward t ~node:a pkt
    else if code = ev_forward then forward_from t ~node:a pkt
    else if code = ev_loopback then deliver t pkt
    else if code = ev_host_fwd then
      host_forward t ~node:(a land node_mask) ~action:(a lsr node_bits) pkt
    else assert false
  end

(* --- sending ---------------------------------------------------------- *)

let send_tenant_body t ~src_host (pkt : Packet.t) =
  let dst_home = t.vm_host.(Vip.to_int pkt.Packet.dst_vip) in
  if dst_home = src_host then begin
    (* Hypervisor-local switching for co-located VMs: no network, no
       translation. *)
    pkt.Packet.resolved <- true;
    pkt.Packet.dst_pip <- Topology.pip t.topo src_host;
    pool_adopt t pkt;
    Engine.schedule_event_after t.engine ~delay:t.cfg.loopback_delay
      ~code:ev_loopback ~a:0 ~b:pkt.Packet.pool_slot
  end
  else begin
    (* Loopback packets are excluded from the hit-rate denominator:
       they involve no translation at all. *)
    Metrics.packet_sent t.metrics pkt;
    match
      t.scheme.Scheme.resolve_at_host t.env ~host:src_host
        ~flow_id:pkt.Packet.flow_id ~dst_vip:pkt.Packet.dst_vip
    with
    | Scheme.Send_resolved pip ->
        pkt.Packet.dst_pip <- pip;
        pkt.Packet.resolved <- true;
        transmit t ~from:src_host ~next:(Topology.tor_of t.topo src_host) pkt
    | Scheme.Send_via_gateway ->
        pkt.Packet.dst_pip <-
          Topology.pip t.topo (gateway_for_flow t pkt.Packet.flow_id);
        transmit t ~from:src_host ~next:(Topology.tor_of t.topo src_host) pkt
    | Scheme.Send_after (delay, pip) ->
        Engine.schedule_after t.engine ~delay (fun () ->
            pkt.Packet.dst_pip <- pip;
            pkt.Packet.resolved <- true;
            transmit t ~from:src_host
              ~next:(Topology.tor_of t.topo src_host)
              pkt)
  end

let send_tenant_packet t ~src_host pkt =
  t.injected_pkts <- t.injected_pkts + 1;
  send_tenant_body t ~src_host pkt

(* Entry point for fresh tenant sends: a migrated VM may live on a
   host another shard owns, in which case the whole send (scheme
   resolution, host cache reads, metrics) is replayed at the owner one
   lookahead later — a mode-1 handoff. [counted] says the packet was
   already charged to [injected_pkts]: the charge happens exactly once
   at the original origin, so an undrained mode-1 message at the
   horizon is balanced by the handoff counters like any other
   in-flight record. A single-shard network always takes the direct
   branch. *)
let send_from_host t ~counted (pkt : Packet.t) =
  let src_host = t.vm_host.(Vip.to_int pkt.Packet.src_vip) in
  match t.shard with
  | Some sc when sc.hs_owner.(src_host) <> sc.hs_my ->
      if not counted then t.injected_pkts <- t.injected_pkts + 1;
      let arrival = Time_ns.add (Engine.now t.engine) sc.hs_lookahead in
      hoff_push sc ~dst_shard:sc.hs_owner.(src_host) ~mode:1 ~arrival ~a:0 pkt;
      pool_release t pkt
  | _ ->
      if counted then begin
        (* Replayed at the owner: stamp the outer source with the
           actual sending host, as the origin would have. *)
        pkt.Packet.src_pip <- Topology.pip t.topo src_host;
        send_tenant_body t ~src_host pkt
      end
      else send_tenant_packet t ~src_host pkt

let make_transport t =
  let now () = Engine.now t.engine in
  let schedule delay f = Engine.schedule_after t.engine ~delay f in
  let send_data flow ~seq ~size ~retransmit =
    let src_host = t.vm_host.(Vip.to_int flow.Flow.src_vip) in
    let pkt = pool_acquire t in
    Packet.reset pkt ~id:(fresh_packet_id t ()) ~flow_id:flow.Flow.id
      ~kind:Packet.Data ~seq ~size ~src_vip:flow.Flow.src_vip
      ~dst_vip:flow.Flow.dst_vip
      ~src_pip:(Topology.pip t.topo src_host)
      ~dst_pip:Pip.none ~now:(now ());
    pkt.Packet.retransmit <- retransmit;
    send_from_host t ~counted:false pkt
  in
  let send_ack flow ~seq ~ecn_echo =
    let src_host = t.vm_host.(Vip.to_int flow.Flow.dst_vip) in
    let pkt = pool_acquire t in
    Packet.reset pkt ~id:(fresh_packet_id t ()) ~flow_id:flow.Flow.id
      ~kind:Packet.Ack ~seq ~size:Packet.ack_size ~src_vip:flow.Flow.dst_vip
      ~dst_vip:flow.Flow.src_vip
      ~src_pip:(Topology.pip t.topo src_host)
      ~dst_pip:Pip.none ~now:(now ());
    pkt.Packet.ecn <- ecn_echo;
    send_from_host t ~counted:false pkt
  in
  let flow_done _flow ~fct =
    Metrics.flow_completed t.metrics ~fct;
    Dessim.Telemetry.observe t.cfg.telemetry "fct_s" (Time_ns.to_sec fct)
  in
  let first_packet _flow ~latency =
    Metrics.first_packet_latency t.metrics latency;
    Dessim.Telemetry.observe t.cfg.telemetry "first_packet_latency_s"
      (Time_ns.to_sec latency)
  in
  Transport.create ~mode:t.cfg.transport_mode ~window:t.cfg.window
    ~rto:t.cfg.rto
    { Transport.now; schedule; send_data; send_ack; flow_done; first_packet }

(* --- construction ----------------------------------------------------- *)

let create ?(config = default_config) topo ~scheme =
  (* Topologies may be reused across runs; links carry per-run queue
     state. *)
  Topology.iter_links topo Topo.Link.reset;
  let engine = Engine.create ?sched:config.sched () in
  let rng = Rng.create config.seed in
  let params = Topology.params topo in
  let hosts = Topology.hosts topo in
  let vms_per_host = params.Topo.Params.vms_per_host in
  let num_vms = Array.length hosts * vms_per_host in
  (* Size both mapping lanes once; the install storm below touches
     every VIP, so starting at 1024 would re-blit the lanes
     ~log2(num_vms/1024) times at large presets. *)
  let mapping = Netcore.Mapping.create ~initial_capacity:num_vms () in
  let vm_host =
    Array.init num_vms (fun vip -> hosts.(vip / vms_per_host))
  in
  Array.iteri
    (fun vip host ->
      Netcore.Mapping.install mapping (Vip.of_int vip) (Topology.pip topo host))
    vm_host;
  let gateways =
    match config.gateways_used with
    | None -> Topology.gateways topo
    | Some k ->
        let all = Topology.gateways topo in
        if k <= 0 || k > Array.length all then
          invalid_arg "Network.create: gateways_used out of range";
        Array.sub all 0 k
  in
  let pool_seed =
    Packet.make_data ~id:(-1) ~flow_id:(-1) ~seq:0 ~size:0
      ~src_vip:(Vip.of_int 0) ~dst_vip:(Vip.of_int 0) ~src_pip:Pip.none
      ~dst_pip:Pip.none ~now:Time_ns.zero
  in
  pool_seed.Packet.pool_slot <- 0;
  (* One physical stream for loss draws and churn until a sharded run
     re-seeds them separately (see [install_faults]). *)
  let frng = Rng.create (config.seed lxor 0x5afe) in
  let rec t =
    {
      cfg = config;
      engine;
      rng;
      topo;
      mapping;
      metrics = Metrics.create ?classify:config.classify topo (Rng.split rng);
      scheme;
      transport = None;
      vm_host;
      gateways;
      next_packet_id = 0;
      env;
      pool = Array.make 256 pool_seed;
      pool_len = 1;
      free_slots = Array.make 256 0;
      free_top = 1;
      (* slot 0 = pool_seed, already free *)
      faults_on = false;
      fault_specs = [||];
      fault_rng = frng;
      churn_rng = frng;
      shard = None;
      fault_counts = Array.make Dessim.Fault.num_kinds 0;
      gw_down = Array.make (Topology.num_nodes topo) false;
      injected_pkts = 0;
      consumed_pkts = 0;
    }
  and env =
    {
      Scheme.engine;
      rng = Rng.create (config.seed + 1);
      topo;
      mapping;
      base_rtt = Topo.Params.base_rtt params;
      fresh_packet_id = (fun () -> fresh_packet_id t ());
      emit_at_switch =
        (fun ~src_switch pkt ->
          t.injected_pkts <- t.injected_pkts + 1;
          Metrics.packet_sent t.metrics pkt;
          forward_from t ~node:src_switch pkt);
    }
  in
  Engine.set_handler engine (fun ~code ~a ~b -> handle_event t ~code ~a ~b);
  t.transport <- Some (make_transport t);
  (* One-time pipeline setup: per-run scheme state (e.g. the memoized
     dataplane env) is built here, never on the per-hop path. *)
  Pipeline.prepare scheme.Scheme.pipeline env;
  if Dessim.Telemetry.is_enabled config.telemetry then
    Pipeline.attach scheme.Scheme.pipeline config.telemetry;
  t

(* --- fault plans ------------------------------------------------------- *)

let validate_action t (action : Fault.action) =
  let check_link src dst =
    match Topology.link t.topo ~src ~dst with
    | (_ : Topo.Link.t) -> ()
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Network.install_faults: no link %d -> %d" src dst)
  in
  let check_switch sw =
    if
      sw < 0
      || sw >= Topology.num_nodes t.topo
      || Topo.Node.is_endpoint (Topology.kind t.topo sw)
    then
      invalid_arg (Printf.sprintf "Network.install_faults: %d is not a switch" sw)
  in
  let check_gateway g =
    match Topology.kind t.topo g with
    | Topo.Node.Gateway _ -> ()
    | _ | (exception Invalid_argument _) ->
        invalid_arg
          (Printf.sprintf "Network.install_faults: %d is not a gateway" g)
  in
  match action with
  | Fault.Link_down (s, d) | Fault.Link_up (s, d)
  | Fault.Set_loss (s, d, _)
  | Fault.Corrupt_next (s, d) ->
      check_link s d
  | Fault.Switch_fail sw -> check_switch sw
  | Fault.Gateway_down g | Fault.Gateway_up g -> check_gateway g
  | Fault.Churn n ->
      if n < 0 then invalid_arg "Network.install_faults: negative churn batch"

(* The shard whose state a fault mutates: link faults live with the
   source endpoint (all link state is source-side), switch and gateway
   faults with the node; churn is replayed everywhere. *)
let fault_owner_node (a : Fault.action) =
  match a with
  | Fault.Link_down (src, _)
  | Fault.Link_up (src, _)
  | Fault.Set_loss (src, _, _)
  | Fault.Corrupt_next (src, _) ->
      Some src
  | Fault.Switch_fail sw -> Some sw
  | Fault.Gateway_down g | Fault.Gateway_up g -> Some g
  | Fault.Churn _ -> None

let install_faults t (plan : Fault.plan) =
  if t.faults_on then invalid_arg "Network.install_faults: plan already installed";
  let specs = Fault.sort_specs plan.Fault.specs in
  Array.iter (fun s -> validate_action t s.Fault.action) specs;
  t.faults_on <- true;
  t.fault_specs <- specs;
  (match t.shard with
  | None ->
      let r = Rng.create plan.Fault.seed in
      t.fault_rng <- r;
      t.churn_rng <- r
  | Some sc ->
      (* Loss draws happen at the owner of each link's source side, so
         every shard gets a private stream; churn replays on all shards
         from one shared-seed stream, so the replicas pick identical
         victims in identical order. *)
      t.fault_rng <- Rng.create (plan.Fault.seed lxor (0x9e3779b9 * (sc.hs_my + 1)));
      t.churn_rng <- Rng.create (plan.Fault.seed lxor 0x2c07));
  Array.iteri
    (fun i (s : Fault.spec) ->
      let mine =
        match t.shard with
        | None -> true
        | Some sc -> (
            match fault_owner_node s.Fault.action with
            | None -> true
            | Some node -> sc.hs_owner.(node) = sc.hs_my)
      in
      if mine then
        Engine.schedule_event t.engine ~at:s.Fault.at ~code:ev_fault ~a:i ~b:0)
    specs

let faults_installed t = t.faults_on

let fault_counts t =
  Array.to_list
    (Array.mapi (fun i c -> (Fault.kind_name i, c)) t.fault_counts)

let injected_packets t = t.injected_pkts
let consumed_at_switch t = t.consumed_pkts
let live_packets t = t.pool_len - t.free_top

(* --- sharded execution hooks ------------------------------------------- *)

let handoff_stride = hoff_stride

let set_shard t ~my ~owner ~out ~lookahead ~send_home ~recv_home =
  (match t.shard with
  | Some _ -> invalid_arg "Network.set_shard: already sharded"
  | None -> ());
  if t.faults_on then
    invalid_arg "Network.set_shard: install faults after set_shard";
  if Time_ns.compare lookahead Time_ns.zero <= 0 then
    invalid_arg "Network.set_shard: lookahead must be positive";
  t.shard <-
    Some
      {
        hs_my = my;
        hs_owner = owner;
        hs_out = out;
        hs_buf = Array.make hoff_stride 0;
        hs_lookahead = lookahead;
        hs_send_home = send_home;
        hs_recv_home = recv_home;
        hs_sent = 0;
        hs_recv = 0;
      }

let receive_handoff t buf off =
  let sc =
    match t.shard with
    | Some sc -> sc
    | None -> invalid_arg "Network.receive_handoff: not sharded"
  in
  sc.hs_recv <- sc.hs_recv + 1;
  let mode = buf.(off) in
  let arrival = Time_ns.of_ns buf.(off + 1) in
  let a = buf.(off + 2) in
  let pkt = hoff_read t buf off in
  if mode = 0 then
    Engine.schedule_event t.engine ~at:arrival ~code:ev_arrive_remote ~a
      ~b:pkt.Packet.pool_slot
  else if mode = 1 then
    Engine.schedule t.engine ~at:arrival (fun () ->
        send_from_host t ~counted:true pkt)
  else Engine.schedule t.engine ~at:arrival (fun () -> deliver t pkt)

let handoffs_sent t = match t.shard with Some sc -> sc.hs_sent | None -> 0
let handoffs_received t = match t.shard with Some sc -> sc.hs_recv | None -> 0
let gateway_is_down t node = t.gw_down.(node)
let metrics t = t.metrics

let transport t =
  match t.transport with Some tr -> tr | None -> assert false
let topo t = t.topo
let mapping t = t.mapping
let engine t = t.engine
let env t = t.env
let vm_host t vip = t.vm_host.(Vip.to_int vip)
let num_vms t = Array.length t.vm_host
let host_of_vm_index t i = t.vm_host.(i)

let run t flows ~migrations ~until =
  List.iter
    (fun (flow : Flow.t) ->
      Engine.schedule t.engine ~at:flow.Flow.start (fun () ->
          Metrics.flow_started t.metrics;
          Transport.start (transport_exn t) flow))
    flows;
  List.iter
    (fun m ->
      Engine.schedule t.engine ~at:m.at (fun () ->
          migrate_now t ~vip:m.vip ~to_host:m.to_host))
    migrations;
  let tel = t.cfg.telemetry in
  if Dessim.Telemetry.is_enabled tel then begin
    (* Periodic probes are pure observers: they draw no randomness and
       mutate no simulation state, so an instrumented run stays
       bit-identical to an uninstrumented one. The chain stops on its
       own once the engine reaches [until]. *)
    let probe now =
      let now_sec = Time_ns.to_sec now in
      Pipeline.probe t.scheme.Scheme.pipeline tel ~now_sec;
      Dessim.Telemetry.sample tel "net/flows_completed" ~now_sec
        (float_of_int (Metrics.flows_completed t.metrics));
      Dessim.Telemetry.sample tel "net/packets_dropped" ~now_sec
        (float_of_int (Metrics.packets_dropped t.metrics));
      Dessim.Telemetry.sample tel "net/gateway_packets" ~now_sec
        (float_of_int (Metrics.gateway_packets t.metrics))
    in
    let interval = Dessim.Telemetry.sample_interval tel in
    let rec tick () =
      let now = Engine.now t.engine in
      probe now;
      if Time_ns.compare now until < 0 then
        Engine.schedule t.engine ~at:(Time_ns.add now interval) tick
    in
    Engine.schedule t.engine ~at:interval tick;
    Engine.run_until t.engine ~limit:until;
    probe (Engine.now t.engine)
  end
  else Engine.run_until t.engine ~limit:until
