(** Scenarios as data: one simulation run — topology preset x workload
    x fault plan x scheme(s) x engine config — as a declarative,
    committable spec with a lossless line-oriented textual form.

    Design goals, in order:

    - {b Replayable}: [of_string (to_string t) = Ok t], bit-exact.
      Floats print as [%h] (the {!Dessim.Fault} convention), times in
      integer nanoseconds, and the canonical printer emits every field
      explicitly, so a committed [.scn] file replays byte-identically
      forever even if defaults drift.
    - {b Diagnosable}: parsing and validation report {!error}s carrying
      the offending line number and, where possible, the field name.
    - {b Complete}: every experiment in [lib/experiments] (paper
      figures, ablations, multitenant, resilience) is expressible as a
      spec; sweeps are lists of specs.

    The spec is pure data. Everything it can realize without the
    scheme library lives here: topology parameters ({!params_of}),
    flows ({!flows}), the horizon ({!horizon}), the fault plan with
    container-churn episodes compiled in ({!fault_plan}), and the
    network config ({!net_config}). Scheme construction and the run
    entry points live in [Experiments.Scenario], one library up.

    {2 Textual form}

    Line-oriented; blank lines and [#] comment lines are ignored; one
    directive per line:

    {v
scenario NAME
topo preset family=ft8 scale=small seed=42
engine seed=42 sched=default shards=auto horizon=auto
net gateways=all classify=none
workload trace=hadoop rate=0x1p+3 load=0x1.3333333333333p-2 ...
churn kind=migration_storm rate=0x1.f4p+9 start_ns=0 duration_ns=10000000 batch=8
faults plan seed=7
fault @2000000:switchfail=12
scheme switchv2p slots=pct:50 ... label=SwitchV2P
    v}

    [scenario] and [topo] are required, as is at least one [scheme].
    A [scheme]'s [label=] field consumes the rest of its line (labels
    may contain spaces), so the canonical printer emits it last. *)

type scale = [ `Tiny | `Small | `Paper ]
type family = [ `FT8 | `FT16 ]

type topo_arm = Preset of { family : family; scale : scale } | Custom of Topo.Params.t

type topo_spec = {
  arm : topo_arm;
  topo_seed : int;  (** seeds workload generation (the Setup seed) *)
}

(** [Locality] is the Jain-style tunable-locality stream
    ({!Workloads.Locality_gen}): Hadoop-shaped flows whose destination
    reuse follows an LRU-stack model steered by a single knob carried
    in the stream's [zipf_alpha] field (default 0.5; validated to
    [0,1]). *)
type trace = Hadoop | Websearch | Alibaba | Microbursts | Video | Locality

(** Which VIPs a stream runs over. [Parity p] generates over half the
    VIP space and remaps VIP [v] to [2v + p] — the multitenant
    colocated-tenant pattern. *)
type vips = All | Parity of int

type stream = {
  trace : trace;
  rate : float;
      (** flows (alibaba: rpcs, video: senders) per VM of the
          stream's VIP set *)
  load : float;
  zipf_alpha : float option;
      (** alibaba / microbursts skew override; locality knob for the
          [Locality] trace *)
  window : Dessim.Time_ns.t;
      (** microbursts arrival window / video duration *)
  vips : vips;
  seed_delta : int;  (** stream RNG seed = topo_seed + seed_delta *)
  id_base : int;  (** flow-id offset, to keep multi-stream ids unique *)
}

(** Cache sizing: percent of the VIP space, or an absolute slot
    count. *)
type slots = Pct of int | Abs of int

type scheme_kind =
  | Nocache
  | Direct
  | Ondemand
  | Hoverboard
  | Dht
  | Locallearning of slots
  | Gwcache of slots
  | Bluebird of slots
  | Controller of { slots : slots; interval : Dessim.Time_ns.t }
  | Switchv2p of {
      slots : slots;
      config : Switchv2p.Config.t;
      shares : float array option;
          (** per-class cache partition weights; needs
              [classify = Vip_parity] *)
    }

type scheme_spec = { label : string option; kind : scheme_kind }

type faults_arm =
  | No_faults
  | Random of int  (** {!Faultplan.generate} with this seed *)
  | Literal of Dessim.Fault.plan

type sched_arm = Sched_default | Sched of Dessim.Engine.sched
type shards_arm = Shards_auto | Shards of int
type horizon_arm = Horizon_auto | Horizon of Dessim.Time_ns.t
type classify_arm = No_classify | Vip_parity

type t = {
  name : string;
  topo : topo_spec;
  streams : stream list;
  churn : Workloads.Container_churn.t option;
  faults : faults_arm;
  schemes : scheme_spec list;
      (** alternatives sharing one topology/workload — a sweep axis,
          not a composition *)
  seed : int;  (** engine/network seed ({!Network.config.seed}) *)
  sched : sched_arm;
  shards : shards_arm;  (** [Shards_auto] defers to [REPRO_SHARDS] *)
  horizon : horizon_arm;
  gateways_used : int option;
  classify : classify_arm;
}

(** {2 Constructors} *)

(** [stream trace] with per-trace defaults matching
    [Experiments.Setup]: rate 8.0 (hadoop, microbursts), 0.5
    (websearch), 4.0 (alibaba), 64.0 (video senders); load 0.3;
    window 2 ms (microbursts) / 5 ms (video). *)
val stream :
  ?rate:float ->
  ?load:float ->
  ?zipf_alpha:float ->
  ?window:Dessim.Time_ns.t ->
  ?vips:vips ->
  ?seed_delta:int ->
  ?id_base:int ->
  trace ->
  stream

val preset : ?seed:int -> family -> scale -> topo_spec
val custom : ?seed:int -> Topo.Params.t -> topo_spec
val scheme : ?label:string -> scheme_kind -> scheme_spec

val switchv2p :
  ?config:Switchv2p.Config.t -> ?shares:float array -> slots -> scheme_kind

val make :
  name:string ->
  topo:topo_spec ->
  ?streams:stream list ->
  ?churn:Workloads.Container_churn.t ->
  ?faults:faults_arm ->
  ?seed:int ->
  ?sched:sched_arm ->
  ?shards:shards_arm ->
  ?horizon:horizon_arm ->
  ?gateways_used:int ->
  ?classify:classify_arm ->
  scheme_spec list ->
  t

(** {2 Names} *)

val scale_name : scale -> string
val scale_of_string : string -> scale option
val family_name : family -> string
val family_of_string : string -> family option
val trace_name : trace -> string
val trace_of_string : string -> trace option
val scheme_kind_name : scheme_kind -> string

(** {2 Printing and parsing} *)

(** Canonical textual form: every field explicit, floats as [%h].
    [of_string (to_string t) = Ok t]. *)
val to_string : t -> string

type error = {
  line : int;  (** 1-based; 0 for errors on programmatic specs *)
  field : string option;
  msg : string;
}

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** Parse + validate; first error wins. *)
val of_string : string -> (t, error) result

val of_file : string -> (t, error) result

(** Parse + validate, reporting {e all} semantic errors (a parse
    error still short-circuits: nothing to validate). *)
val validate_string : string -> (t, error list) result

val validate_file : string -> (t, error list) result

(** Semantic validation of an in-memory spec (errors as messages,
    no line numbers). Checks: non-empty name and scheme list; params
    validity; stream rates/loads/parities/windows; share vectors vs
    [classify]; shard/horizon/seed ranges; and — building the
    topology — gateway counts and fault-plan targets (link endpoints
    adjacent, switch/gateway ids well-kinded), mirroring
    {!Network.install_faults}. *)
val validate : t -> (unit, string list) result

(** [fault_plan_of_string s] parses a one-line [--faults] plan
    ([seed=N;@T:ACTION;...]) with per-segment blame: the {!error}'s
    [field] carries the offending segment. *)
val fault_plan_of_string : string -> (Dessim.Fault.plan, error) result

(** {2 Realization} *)

(** The canonical preset tables ([Experiments.Setup] delegates
    here). *)
val preset_params : family -> scale -> Topo.Params.t

val params_of : t -> Topo.Params.t
val num_vms : t -> int

(** Aggregate host bandwidth, the workload generators' [agg_bps]. *)
val agg_bps : t -> float

(** Realize every stream and merge. A single stream keeps generator
    order; multiple streams are stably sorted by start time (the
    multitenant interleave). Deterministic in the spec. *)
val flows : t -> Netcore.Flow.t list

(** The run horizon: explicit, or last flow start / churn end + 40 ms
    (matches [Experiments.Setup.horizon] for pure-flow scenarios). *)
val horizon : t -> flows:Netcore.Flow.t list -> Dessim.Time_ns.t

(** The fault plan to install, if any: the faults arm realized
    ([Random] via {!Faultplan.generate} with [~horizon:until]) and the
    churn episode's specs merged in (stable time sort). *)
val fault_plan :
  t -> Topo.Topology.t -> until:Dessim.Time_ns.t -> Dessim.Fault.plan option

(** {!Network.default_config} with the spec's seed, gateway restriction,
    classifier and scheduler backend applied. *)
val net_config : t -> Network.config

(** Resolve a {!slots} against the VIP-space size. *)
val cache_slots : t -> slots -> int

(** The display label: explicit [label], else the kind name. *)
val scheme_label : t -> scheme_spec -> string
