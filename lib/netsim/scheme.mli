(** Pluggable V2P translation schemes.

    The network engine is scheme-agnostic: every baseline from §5 of
    the paper (and SwitchV2P itself) is a value of type {!t} — host
    hooks plus a staged per-switch {!Pipeline.t} run for every packet
    a switch receives. *)

(** Capabilities handed to scheme callbacks (an alias of
    {!Pipeline.env}: host hooks and pipeline stages see the same
    record, built once per {!Network.create}). *)
type env = Pipeline.env = {
  engine : Dessim.Engine.t;
  rng : Dessim.Rng.t;
  topo : Topo.Topology.t;
  mapping : Netcore.Mapping.t;  (** gateway ground truth *)
  base_rtt : Dessim.Time_ns.t;
  fresh_packet_id : unit -> int;
  emit_at_switch : src_switch:int -> Netcore.Packet.t -> unit;
      (** inject a scheme-generated packet into the fabric at a switch *)
}

(** How the sending hypervisor addresses the outer header. *)
type host_resolution =
  | Send_resolved of Netcore.Addr.Pip.t
      (** the host knows the mapping; send directly *)
  | Send_via_gateway  (** tunnel to the flow's translation gateway *)
  | Send_after of Dessim.Time_ns.t * Netcore.Addr.Pip.t
      (** resolve after a fixed penalty (OnDemand's miss cost), then
          send directly *)

(** Hypervisor reaction to receiving a packet for a VM it no longer
    hosts. *)
type misdelivery_action =
  | Reforward_to_gateway
      (** re-tunnel toward the gateway, keeping the original outer
          source so ToRs can tag the packet (SwitchV2P, §3.3) *)
  | Follow_me
      (** forward straight to the VM's new location using the
          follow-me rule installed before migration (Andromeda) *)

type t = {
  name : string;
  resolve_at_host :
    env ->
    host:int ->
    flow_id:int ->
    dst_vip:Netcore.Addr.Vip.t ->
    host_resolution;
      (** called once per packet send at the source hypervisor (data
          and ACK directions alike; [flow_id] keeps the gateway choice
          stable per flow) *)
  pipeline : Pipeline.t;
      (** the per-switch program, run for every packet arriving at a
          switch; stages may mutate the packet (resolution, tags,
          riders) and return int-coded {!Switchv2p.Verdict}s *)
  on_misdelivery : env -> host:int -> Netcore.Packet.t -> misdelivery_action;
  on_mapping_update :
    env ->
    Netcore.Addr.Vip.t ->
    old_pip:Netcore.Addr.Pip.t ->
    new_pip:Netcore.Addr.Pip.t ->
    unit;
      (** control-plane hook fired when a mapping changes (migration);
          e.g. Direct refreshes host tables instantly, OnDemand leaves
          them stale *)
  host_tags_misdelivery : bool;
      (** if set, the engine stamps the misdelivery tag when the old
          host re-forwards a packet (hypervisor tagging); SwitchV2P
          leaves this to its ToRs *)
  stats : unit -> (string * float) list;
      (** scheme-specific counters for reports *)
}

(** [no_stats] is an empty stats thunk for simple schemes. *)
val no_stats : unit -> (string * float) list
