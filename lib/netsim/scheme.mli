(** Pluggable V2P translation schemes.

    The network engine is scheme-agnostic: every baseline from §5 of
    the paper (and SwitchV2P itself) is a value of type {!t} — a
    bundle of callbacks invoked at the three places where translation
    logic lives: the sending host's hypervisor, every switch on the
    path, and the receiving hypervisor on a misdelivery. *)

(** Capabilities handed to scheme callbacks. *)
type env = {
  engine : Dessim.Engine.t;
  rng : Dessim.Rng.t;
  topo : Topo.Topology.t;
  mapping : Netcore.Mapping.t;  (** gateway ground truth *)
  base_rtt : Dessim.Time_ns.t;
  fresh_packet_id : unit -> int;
  emit_at_switch : src_switch:int -> Netcore.Packet.t -> unit;
      (** inject a scheme-generated packet into the fabric at a switch *)
}

(** How the sending hypervisor addresses the outer header. *)
type host_resolution =
  | Send_resolved of Netcore.Addr.Pip.t
      (** the host knows the mapping; send directly *)
  | Send_via_gateway  (** tunnel to the flow's translation gateway *)
  | Send_after of Dessim.Time_ns.t * Netcore.Addr.Pip.t
      (** resolve after a fixed penalty (OnDemand's miss cost), then
          send directly *)

(** What a switch tells the engine to do with a processed packet. *)
type switch_verdict =
  | Forward  (** continue ECMP routing toward (possibly new) [dst_pip] *)
  | Consume  (** packet terminated here (control packets) *)
  | Delay of Dessim.Time_ns.t
      (** forward after an extra processing delay (Bluebird's
          data-to-control-plane detour) *)
  | Drop_pkt  (** drop (e.g. control-plane queue overflow) *)

(** Hypervisor reaction to receiving a packet for a VM it no longer
    hosts. *)
type misdelivery_action =
  | Reforward_to_gateway
      (** re-tunnel toward the gateway, keeping the original outer
          source so ToRs can tag the packet (SwitchV2P, §3.3) *)
  | Follow_me
      (** forward straight to the VM's new location using the
          follow-me rule installed before migration (Andromeda) *)

(** Optional telemetry integration for schemes with internal state
    worth sampling. [attach] hands the scheme the run's collector (for
    flight-recorder events); [probe] asks it to sample its internal
    counters into the collector's time series. *)
type telemetry_hooks = {
  attach : Dessim.Telemetry.t -> unit;
  probe : Dessim.Telemetry.t -> now_sec:float -> unit;
}

type t = {
  name : string;
  resolve_at_host :
    env ->
    host:int ->
    flow_id:int ->
    dst_vip:Netcore.Addr.Vip.t ->
    host_resolution;
      (** called once per packet send at the source hypervisor (data
          and ACK directions alike; [flow_id] keeps the gateway choice
          stable per flow) *)
  on_switch :
    env -> switch:int -> from:int -> Netcore.Packet.t -> switch_verdict;
      (** called for every packet arriving at a switch; may mutate the
          packet (resolution, tags, riders) *)
  on_misdelivery : env -> host:int -> Netcore.Packet.t -> misdelivery_action;
  on_mapping_update :
    env ->
    Netcore.Addr.Vip.t ->
    old_pip:Netcore.Addr.Pip.t ->
    new_pip:Netcore.Addr.Pip.t ->
    unit;
      (** control-plane hook fired when a mapping changes (migration);
          e.g. Direct refreshes host tables instantly, OnDemand leaves
          them stale *)
  host_tags_misdelivery : bool;
      (** if set, the engine stamps the misdelivery tag when the old
          host re-forwards a packet (hypervisor tagging); SwitchV2P
          leaves this to its ToRs *)
  stats : unit -> (string * float) list;
      (** scheme-specific counters for reports *)
  telemetry : telemetry_hooks option;
      (** [None] for schemes with nothing to sample *)
}

(** [no_stats] is an empty stats thunk for simple schemes. *)
val no_stats : unit -> (string * float) list
