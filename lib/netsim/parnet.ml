module Engine = Dessim.Engine
module Time_ns = Dessim.Time_ns
module Spsc = Dessim.Spsc
module Shard = Dessim.Shard
module Flow = Netcore.Flow
module Topology = Topo.Topology

(* Domain-sharded execution of ONE logical simulation: the node set is
   partitioned across [n] per-domain {!Network.t} instances that
   advance in lock-step conservative windows ({!Dessim.Shard}), handing
   packets across the partition through {!Dessim.Spsc} mailboxes
   ({!Network.receive_handoff}).

   Ownership discipline — the invariant everything here rests on: a
   node's mutable state (its outgoing links' queues and fault state,
   its pipeline tables, its hosts' caches, its gateway outage flag) is
   only ever touched by the shard that owns the node. The one shared
   mutable structure, the {!Topo.Topology.t}, is safe to share because
   all per-link state is source-side and a link's source has exactly
   one owner. Everything replicated (VM placement, the ground-truth
   mapping, churn) is driven by events scheduled identically on every
   shard, so the replicas agree at every timestamp.

   Determinism: within a shard the engine's (key, seq) dispatch is
   byte-identical; across shards, drains consume mailboxes in fixed
   source order, so an n-shard run replays identically for fixed n
   regardless of wall-clock interleaving. *)

type t = {
  nets : Network.t array;
  owner : int array;
  lookahead : Time_ns.t;
  windows : int;
  merged : Metrics.t;
}

let default_owner topo ~shards node =
  let pod = Topo.Node.pod_of (Topology.kind topo node) in
  if pod >= 0 then pod mod shards else node mod shards

(* Conservative lookahead: the minimum propagation delay over links
   whose endpoints live on different shards. Any packet crossing the
   partition is delayed by at least this much, which is what lets the
   window runtime drain mailboxes only at barriers. 1 us when nothing
   crosses (single shard / degenerate partitions). *)
let compute_lookahead topo owner =
  let m = ref max_int in
  Topology.iter_links topo (fun (l : Topo.Link.t) ->
      if owner.(l.Topo.Link.src) <> owner.(l.Topo.Link.dst) then begin
        let d = Time_ns.to_ns l.Topo.Link.prop_delay in
        if d < !m then m := d
      end);
  if !m = max_int then Time_ns.of_us 1 else Time_ns.of_ns (max 1 !m)

let run ?config ?faults ?assign ~shards:n topo ~make_scheme ~(flows : Flow.t list)
    ~(migrations : Network.migration list) ~until =
  if n <= 0 then invalid_arg "Parnet.run: shards must be positive";
  let num_nodes = Topology.num_nodes topo in
  let assign =
    match assign with
    | Some f -> f
    | None -> fun node -> default_owner topo ~shards:n node
  in
  let owner =
    Array.init num_nodes (fun node ->
        let s = assign node in
        if s < 0 || s >= n then invalid_arg "Parnet.run: owner out of range";
        s)
  in
  let lookahead = compute_lookahead topo owner in
  (* Transport homes, fixed from the flows' initial placement. *)
  let params = Topology.params topo in
  let hosts = Topology.hosts topo in
  let vms_per_host = params.Topo.Params.vms_per_host in
  let init_host vip = hosts.(Netcore.Addr.Vip.to_int vip / vms_per_host) in
  let max_flow_id =
    List.fold_left (fun acc (f : Flow.t) -> max acc f.Flow.id) (-1) flows
  in
  let send_home = Array.make (max_flow_id + 1) 0 in
  let recv_home = Array.make (max_flow_id + 1) 0 in
  List.iter
    (fun (f : Flow.t) ->
      send_home.(f.Flow.id) <- owner.(init_host f.Flow.src_vip);
      recv_home.(f.Flow.id) <- owner.(init_host f.Flow.dst_vip))
    flows;
  (* Mailbox matrix: boxes.(src).(dst). *)
  let boxes =
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            Spsc.create ~stride:Network.handoff_stride ()))
  in
  let nets =
    Array.init n (fun s ->
        let net = Network.create ?config topo ~scheme:(make_scheme ~shard:s) in
        Network.set_shard net ~my:s ~owner ~out:boxes.(s) ~lookahead ~send_home
          ~recv_home;
        Option.iter (Network.install_faults net) faults;
        net)
  in
  (* Schedule the workload: a flow's receiver registers on its
     receiver-home shard and its sender starts on its sender-home shard
     (receiver first when both land on one shard, matching
     Transport.start); migrations replay on every shard so the
     placement replicas stay identical. *)
  Array.iteri
    (fun s net ->
      let eng = Network.engine net in
      let tr = Network.transport net in
      let m = Network.metrics net in
      List.iter
        (fun (flow : Flow.t) ->
          if s = recv_home.(flow.Flow.id) then
            Engine.schedule eng ~at:flow.Flow.start (fun () ->
                Transport.start_receiver tr flow);
          if s = send_home.(flow.Flow.id) then
            Engine.schedule eng ~at:flow.Flow.start (fun () ->
                Metrics.flow_started m;
                Transport.start_sender tr flow))
        flows;
      List.iter
        (fun (mg : Network.migration) ->
          Engine.schedule eng ~at:mg.Network.at (fun () ->
              Network.migrate_now net ~vip:mg.Network.vip
                ~to_host:mg.Network.to_host))
        migrations)
    nets;
  let engines = Array.map Network.engine nets in
  let drain ~shard =
    let net = nets.(shard) in
    for src = 0 to n - 1 do
      if src <> shard then
        Spsc.drain boxes.(src).(shard) (fun buf off ->
            Network.receive_handoff net buf off)
    done
  in
  let begin_window ~shard =
    let row = boxes.(shard) in
    for dst = 0 to n - 1 do
      if dst <> shard then Spsc.reset_spill row.(dst)
    done
  in
  let windows = Shard.run ~lookahead ~until ~engines ~drain ~begin_window in
  let merged =
    let ms = Array.map Network.metrics nets in
    Array.fold_left
      (fun acc m -> match acc with None -> Some m | Some a -> Some (Metrics.merge a m))
      None ms
    |> Option.get
  in
  { nets; owner; lookahead; windows; merged }

let metrics t = t.merged
let nets t = t.nets
let shards t = Array.length t.nets
let owner t node = t.owner.(node)
let lookahead t = t.lookahead
let windows t = t.windows

let sum f t = Array.fold_left (fun acc net -> acc + f net) 0 t.nets

let injected_packets = sum Network.injected_packets
let consumed_at_switch = sum Network.consumed_at_switch
let live_packets = sum Network.live_packets

let handoffs_in_flight t =
  sum Network.handoffs_sent t - sum Network.handoffs_received t

let transport_flows_completed =
  sum (fun net -> Transport.flows_completed (Network.transport net))

let reordering_events =
  sum (fun net -> Transport.reordering_events (Network.transport net))

let fault_counts t =
  Array.fold_left
    (fun acc net ->
      List.map2
        (fun (k, a) (k', b) ->
          assert (k = k');
          (k, a + b))
        acc
        (Network.fault_counts net))
    (List.map (fun (k, _) -> (k, 0)) (Network.fault_counts t.nets.(0)))
    t.nets
