(* Scenarios as data: a declarative spec for one simulation —
   topology preset x workload x fault plan x scheme(s) x engine
   config — with a lossless line-oriented textual form.

   The type is pure data (no closures), so a scenario can be printed,
   committed, diffed and replayed byte-identically: floats print as
   %h (like Fault.to_string), every field is explicit in canonical
   form, and [of_string (to_string t) = Ok t].

   Scheme construction needs the scheme library (which depends on
   this one), so realization of scheme specs and the run entry point
   live in [Experiments.Scenario]; everything the spec itself can
   realize — topology parameters, flows, horizon, the fault plan —
   is here. *)

module Fault = Dessim.Fault
module Time_ns = Dessim.Time_ns
module Rng = Dessim.Rng
module Engine = Dessim.Engine
module Topology = Topo.Topology
module Params = Topo.Params
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip
module Churn = Workloads.Container_churn
module Tracegen = Workloads.Tracegen

type scale = [ `Tiny | `Small | `Paper ]
type family = [ `FT8 | `FT16 ]

type topo_arm = Preset of { family : family; scale : scale } | Custom of Params.t
type topo_spec = { arm : topo_arm; topo_seed : int }

type trace = Hadoop | Websearch | Alibaba | Microbursts | Video | Locality
type vips = All | Parity of int

type stream = {
  trace : trace;
  rate : float;  (* flows (rpcs, senders) per VM of the stream's VIP set *)
  load : float;
  zipf_alpha : float option;
  window : Time_ns.t;  (* microbursts arrival window / video duration *)
  vips : vips;
  seed_delta : int;
  id_base : int;
}

type slots = Pct of int | Abs of int

type scheme_kind =
  | Nocache
  | Direct
  | Ondemand
  | Hoverboard
  | Dht
  | Locallearning of slots
  | Gwcache of slots
  | Bluebird of slots
  | Controller of { slots : slots; interval : Time_ns.t }
  | Switchv2p of {
      slots : slots;
      config : Switchv2p.Config.t;
      shares : float array option;
    }

type scheme_spec = { label : string option; kind : scheme_kind }

type faults_arm = No_faults | Random of int | Literal of Fault.plan

type sched_arm = Sched_default | Sched of Engine.sched
type shards_arm = Shards_auto | Shards of int
type horizon_arm = Horizon_auto | Horizon of Time_ns.t
type classify_arm = No_classify | Vip_parity

type t = {
  name : string;
  topo : topo_spec;
  streams : stream list;
  churn : Churn.t option;
  faults : faults_arm;
  schemes : scheme_spec list;
  seed : int;
  sched : sched_arm;
  shards : shards_arm;
  horizon : horizon_arm;
  gateways_used : int option;
  classify : classify_arm;
}

(* --- canonical preset tables (Setup delegates here) ------------------- *)

let preset_params family (scale : scale) =
  match (family, scale) with
  | `FT8, `Paper -> Params.ft8_10k ()
  | `FT8, `Small ->
      Params.scaled ~spines_per_pod:4 ~cores_per_group:4
        ~gateways_per_gateway_pod:4 ~pods:8 ~racks_per_pod:4 ~hosts_per_rack:2
        ~vms_per_host:12 ()
  | `FT8, `Tiny ->
      Params.scaled ~pods:4 ~racks_per_pod:3 ~hosts_per_rack:2 ~vms_per_host:8 ()
  | `FT16, `Paper -> Params.ft16_400k ()
  | `FT16, `Small ->
      Params.scaled ~spines_per_pod:4 ~cores_per_group:4
        ~gateways_per_gateway_pod:4 ~pods:8 ~racks_per_pod:8 ~hosts_per_rack:2
        ~vms_per_host:8 ()
  | `FT16, `Tiny ->
      Params.scaled ~pods:2 ~racks_per_pod:4 ~hosts_per_rack:2 ~vms_per_host:8 ()

let params_of t =
  match t.topo.arm with
  | Custom p -> p
  | Preset { family; scale } -> preset_params family scale

(* --- constructors ------------------------------------------------------ *)

let default_rate = function
  | Hadoop -> 8.0
  | Websearch -> 0.5
  | Alibaba -> 4.0
  | Microbursts -> 8.0
  | Video -> 64.0
  | Locality -> 8.0

let default_window = function
  | Microbursts -> Time_ns.of_ms 2
  | Video -> Time_ns.of_ms 5
  | Hadoop | Websearch | Alibaba | Locality -> Time_ns.zero

(* The locality trace reuses the stream's [zipf_alpha] slot as its
   knob (both are "how skewed is destination reuse" scalars, and the
   workload line stays uniform across traces). *)
let default_locality = 0.5

let default_load = 0.3

let stream ?rate ?(load = default_load) ?zipf_alpha ?window ?(vips = All)
    ?(seed_delta = 0) ?(id_base = 0) trace =
  {
    trace;
    rate = (match rate with Some r -> r | None -> default_rate trace);
    load;
    zipf_alpha;
    window = (match window with Some w -> w | None -> default_window trace);
    vips;
    seed_delta;
    id_base;
  }

let preset ?(seed = 42) family scale =
  { arm = Preset { family; scale }; topo_seed = seed }

let custom ?(seed = 42) params = { arm = Custom params; topo_seed = seed }

let scheme ?label kind = { label; kind }

let switchv2p ?(config = Switchv2p.Config.default) ?shares slots =
  Switchv2p { slots; config; shares }

let make ~name ~topo ?(streams = []) ?churn ?(faults = No_faults)
    ?(seed = 42) ?(sched = Sched_default) ?(shards = Shards_auto)
    ?(horizon = Horizon_auto) ?gateways_used ?(classify = No_classify) schemes
    =
  {
    name;
    topo;
    streams;
    churn;
    faults;
    schemes;
    seed;
    sched;
    shards;
    horizon;
    gateways_used;
    classify;
  }

(* --- names ------------------------------------------------------------- *)

let scale_name = function `Tiny -> "tiny" | `Small -> "small" | `Paper -> "paper"

let scale_of_string = function
  | "tiny" -> Some `Tiny
  | "small" -> Some `Small
  | "paper" -> Some `Paper
  | _ -> None

let family_name = function `FT8 -> "ft8" | `FT16 -> "ft16"

let family_of_string = function
  | "ft8" -> Some `FT8
  | "ft16" -> Some `FT16
  | _ -> None

let trace_name = function
  | Hadoop -> "hadoop"
  | Websearch -> "websearch"
  | Alibaba -> "alibaba"
  | Microbursts -> "microbursts"
  | Video -> "video"
  | Locality -> "locality"

let trace_of_string = function
  | "hadoop" -> Some Hadoop
  | "websearch" -> Some Websearch
  | "alibaba" -> Some Alibaba
  | "microbursts" -> Some Microbursts
  | "video" -> Some Video
  | "locality" -> Some Locality
  | _ -> None

let scheme_kind_name = function
  | Nocache -> "nocache"
  | Direct -> "direct"
  | Ondemand -> "ondemand"
  | Hoverboard -> "hoverboard"
  | Dht -> "dht"
  | Locallearning _ -> "locallearning"
  | Gwcache _ -> "gwcache"
  | Bluebird _ -> "bluebird"
  | Controller _ -> "controller"
  | Switchv2p _ -> "switchv2p"

(* --- printer ----------------------------------------------------------- *)

let slots_to_string = function
  | Pct p -> Printf.sprintf "pct:%d" p
  | Abs n -> Printf.sprintf "abs:%d" n

let floats_to_string fs =
  String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list fs))

let allocation_to_string = function
  | Switchv2p.Config.Uniform -> "uniform"
  | Switchv2p.Config.Tor_only -> "tor_only"
  | Switchv2p.Config.Weighted { tor; spine; core; gw_tor; gw_spine } ->
      Printf.sprintf "weighted:%h,%h,%h,%h,%h" tor spine core gw_tor gw_spine

let params_fields (p : Params.t) =
  Printf.sprintf
    "pods=%d racks_per_pod=%d spines_per_pod=%d cores_per_group=%d \
     hosts_per_rack=%d vms_per_host=%d gateway_pods=%s \
     gateways_per_gateway_pod=%d host_link_bps=%h fabric_link_bps=%h \
     prop_delay_ns=%d buffer_bytes=%d ecn_threshold_bytes=%s"
    p.Params.pods p.Params.racks_per_pod p.Params.spines_per_pod
    p.Params.cores_per_group p.Params.hosts_per_rack p.Params.vms_per_host
    (String.concat "," (List.map string_of_int p.Params.gateway_pods))
    p.Params.gateways_per_gateway_pod p.Params.host_link_bps
    p.Params.fabric_link_bps
    (Time_ns.to_ns p.Params.prop_delay)
    p.Params.buffer_bytes
    (match p.Params.ecn_threshold_bytes with
    | None -> "none"
    | Some b -> string_of_int b)

let stream_line s =
  Printf.sprintf
    "workload trace=%s rate=%h load=%h zipf_alpha=%s window_ns=%d vips=%s \
     seed_delta=%d id_base=%d"
    (trace_name s.trace) s.rate s.load
    (match s.zipf_alpha with None -> "none" | Some a -> Printf.sprintf "%h" a)
    (Time_ns.to_ns s.window)
    (match s.vips with All -> "all" | Parity p -> Printf.sprintf "parity:%d" p)
    s.seed_delta s.id_base

let scheme_line s =
  let b = Buffer.create 64 in
  Buffer.add_string b ("scheme " ^ scheme_kind_name s.kind);
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  (match s.kind with
  | Nocache | Direct | Ondemand | Hoverboard | Dht -> ()
  | Locallearning slots | Gwcache slots | Bluebird slots ->
      addf " slots=%s" (slots_to_string slots)
  | Controller { slots; interval } ->
      addf " slots=%s interval_ns=%d" (slots_to_string slots)
        (Time_ns.to_ns interval)
  | Switchv2p { slots; config = c; shares } ->
      addf " slots=%s" (slots_to_string slots);
      addf " p_learn=%h" c.Switchv2p.Config.p_learn;
      addf " learning_packets=%b" c.Switchv2p.Config.learning_packets;
      addf " spillover=%b" c.Switchv2p.Config.spillover;
      addf " promotion=%b" c.Switchv2p.Config.promotion;
      addf " source_learning=%b" c.Switchv2p.Config.source_learning;
      addf " invalidations=%b" c.Switchv2p.Config.invalidations;
      addf " ts_vector=%b" c.Switchv2p.Config.ts_vector;
      addf " allocation=%s" (allocation_to_string c.Switchv2p.Config.allocation);
      addf " geometry=%s"
        (match c.Switchv2p.Config.geometry with
        | Switchv2p.Config.Geo_direct -> "direct"
        | Switchv2p.Config.Geo_dleft d -> Printf.sprintf "dleft:%d" d);
      addf " tinylfu=%b" c.Switchv2p.Config.tinylfu;
      Option.iter (fun sh -> addf " shares=%s" (floats_to_string sh)) shares);
  (* [label] consumes the rest of the line, so it always prints last. *)
  Option.iter (fun l -> addf " label=%s" l) s.label;
  Buffer.contents b

let to_string t =
  let b = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  addf "scenario %s" t.name;
  (match t.topo.arm with
  | Preset { family; scale } ->
      addf "topo preset family=%s scale=%s seed=%d" (family_name family)
        (scale_name scale) t.topo.topo_seed
  | Custom p -> addf "topo custom %s seed=%d" (params_fields p) t.topo.topo_seed);
  addf "engine seed=%d sched=%s shards=%s horizon=%s" t.seed
    (match t.sched with
    | Sched_default -> "default"
    | Sched s -> Engine.sched_name s)
    (match t.shards with
    | Shards_auto -> "auto"
    | Shards n -> string_of_int n)
    (match t.horizon with
    | Horizon_auto -> "auto"
    | Horizon h -> string_of_int (Time_ns.to_ns h));
  addf "net gateways=%s classify=%s"
    (match t.gateways_used with None -> "all" | Some k -> string_of_int k)
    (match t.classify with No_classify -> "none" | Vip_parity -> "vip_parity");
  List.iter (fun s -> addf "%s" (stream_line s)) t.streams;
  Option.iter (fun c -> addf "churn %s" (Churn.to_fields c)) t.churn;
  (match t.faults with
  | No_faults -> addf "faults none"
  | Random seed -> addf "faults random seed=%d" seed
  | Literal plan ->
      addf "faults plan seed=%d" plan.Fault.seed;
      Array.iter (fun s -> addf "fault %s" (Fault.spec_to_string s)) plan.Fault.specs);
  List.iter (fun s -> addf "%s" (scheme_line s)) t.schemes;
  Buffer.contents b

(* --- errors ------------------------------------------------------------ *)

type error = { line : int; field : string option; msg : string }

let error_to_string e =
  match e.field with
  | Some f -> Printf.sprintf "line %d, field %S: %s" e.line f e.msg
  | None -> Printf.sprintf "line %d: %s" e.line e.msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

exception Err of error

let err ~line ?field fmt =
  Printf.ksprintf (fun msg -> raise (Err { line; field; msg })) fmt

(* --- the --faults CLI entry: one plan on one line, per-segment blame --- *)

let fault_plan_of_string s =
  match String.split_on_char ';' (String.trim s) with
  | [] | [ "" ] -> Error { line = 1; field = None; msg = "empty fault plan" }
  | head :: rest -> (
      try
        let seed =
          match String.index_opt head '=' with
          | Some i when String.sub head 0 i = "seed" -> (
              let v = String.sub head (i + 1) (String.length head - i - 1) in
              match int_of_string_opt v with
              | Some n -> n
              | None -> err ~line:1 ~field:head "bad seed %S" v)
          | _ -> err ~line:1 ~field:head "plan must start with seed=N"
        in
        let specs =
          rest
          |> List.filter (fun seg -> String.trim seg <> "")
          |> List.mapi (fun i seg ->
                 match Fault.spec_of_string seg with
                 | Ok spec -> spec
                 | Error m -> err ~line:1 ~field:seg "fault spec %d: %s" (i + 1) m)
        in
        Ok { Fault.seed; specs = Fault.sort_specs (Array.of_list specs) }
      with Err e -> Error e)

(* --- parser ------------------------------------------------------------ *)

let split_fields s =
  List.filter (fun tok -> tok <> "") (String.split_on_char ' ' s)

let kv ~line tok =
  match String.index_opt tok '=' with
  | Some i ->
      (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> err ~line ~field:tok "expected key=value"

(* A one-shot field table: every token must be consumed exactly once. *)
type fields = { f_line : int; mutable f_rem : (string * string) list }

let fields_of ~line toks = { f_line = line; f_rem = List.map (kv ~line) toks }

let take f key =
  let rec go acc = function
    | [] -> None
    | (k, v) :: tl when k = key ->
        f.f_rem <- List.rev_append acc tl;
        Some v
    | kv :: tl -> go (kv :: acc) tl
  in
  go [] f.f_rem

let done_with f =
  match f.f_rem with
  | [] -> ()
  | (k, _) :: _ -> err ~line:f.f_line ~field:k "unknown field %S" k

let parse_with ~line ~field what parse v =
  match parse v with
  | Some x -> x
  | None -> err ~line ~field "bad %s %S" what v

let take_int f key ~default =
  match take f key with
  | None -> default
  | Some v -> parse_with ~line:f.f_line ~field:key "integer" int_of_string_opt v

let req f key =
  match take f key with
  | Some v -> v
  | None -> err ~line:f.f_line ~field:key "missing required field %S" key

let req_int f key =
  parse_with ~line:f.f_line ~field:key "integer" int_of_string_opt (req f key)

let req_float f key =
  parse_with ~line:f.f_line ~field:key "float" float_of_string_opt (req f key)

let take_float f key ~default =
  match take f key with
  | None -> default
  | Some v -> parse_with ~line:f.f_line ~field:key "float" float_of_string_opt v

let take_bool f key ~default =
  match take f key with
  | None -> default
  | Some v -> parse_with ~line:f.f_line ~field:key "bool" bool_of_string_opt v

let parse_slots ~line v =
  let bad () = err ~line ~field:"slots" "expected pct:N or abs:N, got %S" v in
  match String.index_opt v ':' with
  | Some i -> (
      let kind = String.sub v 0 i
      and n = String.sub v (i + 1) (String.length v - i - 1) in
      match (kind, int_of_string_opt n) with
      | "pct", Some n -> Pct n
      | "abs", Some n -> Abs n
      | _ -> bad ())
  | None -> bad ()

let parse_float_list ~line ~field v =
  Array.of_list
    (List.map
       (fun tok -> parse_with ~line ~field "float" float_of_string_opt tok)
       (String.split_on_char ',' v))

let parse_topo ~line toks =
  match toks with
  | "preset" :: rest ->
      let f = fields_of ~line rest in
      let family =
        parse_with ~line ~field:"family" "family (ft8|ft16)" family_of_string
          (req f "family")
      in
      let scale =
        parse_with ~line ~field:"scale" "scale (tiny|small|paper)"
          scale_of_string (req f "scale")
      in
      let seed = take_int f "seed" ~default:42 in
      done_with f;
      { arm = Preset { family; scale }; topo_seed = seed }
  | "custom" :: rest ->
      let f = fields_of ~line rest in
      let gateway_pods =
        match req f "gateway_pods" with
        | "" -> []
        | v ->
            List.map
              (fun tok ->
                parse_with ~line ~field:"gateway_pods" "integer"
                  int_of_string_opt tok)
              (String.split_on_char ',' v)
      in
      let ecn =
        match req f "ecn_threshold_bytes" with
        | "none" -> None
        | v ->
            Some
              (parse_with ~line ~field:"ecn_threshold_bytes" "integer"
                 int_of_string_opt v)
      in
      let p =
        {
          Params.pods = req_int f "pods";
          racks_per_pod = req_int f "racks_per_pod";
          spines_per_pod = req_int f "spines_per_pod";
          cores_per_group = req_int f "cores_per_group";
          hosts_per_rack = req_int f "hosts_per_rack";
          vms_per_host = req_int f "vms_per_host";
          gateway_pods;
          gateways_per_gateway_pod = req_int f "gateways_per_gateway_pod";
          host_link_bps = req_float f "host_link_bps";
          fabric_link_bps = req_float f "fabric_link_bps";
          prop_delay = Time_ns.of_ns (req_int f "prop_delay_ns");
          buffer_bytes = req_int f "buffer_bytes";
          ecn_threshold_bytes = ecn;
        }
      in
      let seed = take_int f "seed" ~default:42 in
      done_with f;
      { arm = Custom p; topo_seed = seed }
  | first :: _ -> err ~line ~field:first "expected topo preset|custom"
  | [] -> err ~line "expected topo preset|custom"

let parse_stream ~line toks =
  let f = fields_of ~line toks in
  let trace =
    parse_with ~line ~field:"trace"
      "trace (hadoop|websearch|alibaba|microbursts|video|locality)"
      trace_of_string (req f "trace")
  in
  let rate = take_float f "rate" ~default:(default_rate trace) in
  let load = take_float f "load" ~default:default_load in
  let zipf_alpha =
    match take f "zipf_alpha" with
    | None | Some "none" -> None
    | Some v ->
        Some (parse_with ~line ~field:"zipf_alpha" "float" float_of_string_opt v)
  in
  let window =
    Time_ns.of_ns
      (take_int f "window_ns"
         ~default:(Time_ns.to_ns (default_window trace)))
  in
  let vips =
    match take f "vips" with
    | None | Some "all" -> All
    | Some v -> (
        match String.index_opt v ':' with
        | Some i when String.sub v 0 i = "parity" ->
            Parity
              (parse_with ~line ~field:"vips" "parity" int_of_string_opt
                 (String.sub v (i + 1) (String.length v - i - 1)))
        | _ -> err ~line ~field:"vips" "expected all or parity:P, got %S" v)
  in
  let seed_delta = take_int f "seed_delta" ~default:0 in
  let id_base = take_int f "id_base" ~default:0 in
  done_with f;
  { trace; rate; load; zipf_alpha; window; vips; seed_delta; id_base }

let parse_churn ~line toks =
  let f = fields_of ~line toks in
  let kind =
    parse_with ~line ~field:"kind"
      "churn kind (cold_start|serverless|migration_storm)" Churn.kind_of_string
      (req f "kind")
  in
  let rate = req_float f "rate" in
  let start = Time_ns.of_ns (take_int f "start_ns" ~default:0) in
  let duration = Time_ns.of_ns (req_int f "duration_ns") in
  let batch = take_int f "batch" ~default:8 in
  done_with f;
  match Churn.make ~start ~kind ~rate ~duration ~batch () with
  | c -> c
  | exception Invalid_argument m -> err ~line "%s" m

let parse_scheme ~line rest_of_line =
  (* [label=] consumes the remainder of the line (labels may contain
     spaces); split it off before tokenizing. *)
  let body, label =
    let marker = " label=" in
    let rec find i =
      if i + String.length marker > String.length rest_of_line then None
      else if String.sub rest_of_line i (String.length marker) = marker then
        Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
        ( String.sub rest_of_line 0 i,
          Some
            (String.sub rest_of_line
               (i + String.length marker)
               (String.length rest_of_line - i - String.length marker)) )
    | None -> (rest_of_line, None)
  in
  match split_fields body with
  | [] -> err ~line "expected scheme KIND [fields...]"
  | kind_name :: rest -> (
      let f = fields_of ~line rest in
      let slots () = parse_slots ~line (req f "slots") in
      let kind =
        match kind_name with
        | "nocache" -> Nocache
        | "direct" -> Direct
        | "ondemand" -> Ondemand
        | "hoverboard" -> Hoverboard
        | "dht" -> Dht
        | "locallearning" -> Locallearning (slots ())
        | "gwcache" -> Gwcache (slots ())
        | "bluebird" -> Bluebird (slots ())
        | "controller" ->
            let slots = slots () in
            Controller
              { slots; interval = Time_ns.of_ns (req_int f "interval_ns") }
        | "switchv2p" ->
            let slots = slots () in
            let d = Switchv2p.Config.default in
            let allocation =
              match take f "allocation" with
              | None | Some "uniform" -> Switchv2p.Config.Uniform
              | Some "tor_only" -> Switchv2p.Config.Tor_only
              | Some v -> (
                  match String.index_opt v ':' with
                  | Some i when String.sub v 0 i = "weighted" -> (
                      let ws =
                        parse_float_list ~line ~field:"allocation"
                          (String.sub v (i + 1) (String.length v - i - 1))
                      in
                      match ws with
                      | [| tor; spine; core; gw_tor; gw_spine |] ->
                          Switchv2p.Config.Weighted
                            { tor; spine; core; gw_tor; gw_spine }
                      | _ ->
                          err ~line ~field:"allocation"
                            "weighted allocation needs 5 weights")
                  | _ ->
                      err ~line ~field:"allocation"
                        "expected uniform|tor_only|weighted:5-floats, got %S" v)
            in
            let geometry =
              match take f "geometry" with
              | None | Some "direct" -> Switchv2p.Config.Geo_direct
              | Some v -> (
                  match String.index_opt v ':' with
                  | Some i when String.sub v 0 i = "dleft" -> (
                      match
                        int_of_string_opt
                          (String.sub v (i + 1) (String.length v - i - 1))
                      with
                      | Some w when w > 0 -> Switchv2p.Config.Geo_dleft w
                      | Some _ | None ->
                          err ~line ~field:"geometry"
                            "d-left ways must be a positive integer, got %S" v)
                  | _ ->
                      err ~line ~field:"geometry"
                        "expected direct|dleft:D, got %S" v)
            in
            let config =
              {
                Switchv2p.Config.p_learn =
                  take_float f "p_learn" ~default:d.Switchv2p.Config.p_learn;
                learning_packets =
                  take_bool f "learning_packets"
                    ~default:d.Switchv2p.Config.learning_packets;
                spillover =
                  take_bool f "spillover" ~default:d.Switchv2p.Config.spillover;
                promotion =
                  take_bool f "promotion" ~default:d.Switchv2p.Config.promotion;
                source_learning =
                  take_bool f "source_learning"
                    ~default:d.Switchv2p.Config.source_learning;
                invalidations =
                  take_bool f "invalidations"
                    ~default:d.Switchv2p.Config.invalidations;
                ts_vector =
                  take_bool f "ts_vector" ~default:d.Switchv2p.Config.ts_vector;
                allocation;
                geometry;
                tinylfu =
                  take_bool f "tinylfu" ~default:d.Switchv2p.Config.tinylfu;
              }
            in
            let shares =
              Option.map (parse_float_list ~line ~field:"shares") (take f "shares")
            in
            Switchv2p { slots; config; shares }
        | k -> err ~line ~field:k "unknown scheme kind %S" k
      in
      done_with f;
      { label; kind })

let parse_engine ~line toks (t : t) =
  let f = fields_of ~line toks in
  let seed = take_int f "seed" ~default:t.seed in
  let sched =
    match take f "sched" with
    | None | Some "default" -> Sched_default
    | Some v ->
        Sched
          (parse_with ~line ~field:"sched" "sched (heap|wheel|default)"
             Engine.sched_of_string v)
  in
  let shards =
    match take f "shards" with
    | None | Some "auto" -> Shards_auto
    | Some v ->
        Shards (parse_with ~line ~field:"shards" "integer" int_of_string_opt v)
  in
  let horizon =
    match take f "horizon" with
    | None | Some "auto" -> Horizon_auto
    | Some v ->
        Horizon
          (Time_ns.of_ns
             (parse_with ~line ~field:"horizon" "integer" int_of_string_opt v))
  in
  done_with f;
  { t with seed; sched; shards; horizon }

let parse_net ~line toks (t : t) =
  let f = fields_of ~line toks in
  let gateways_used =
    match take f "gateways" with
    | None | Some "all" -> None
    | Some v ->
        Some (parse_with ~line ~field:"gateways" "integer" int_of_string_opt v)
  in
  let classify =
    match take f "classify" with
    | None | Some "none" -> No_classify
    | Some "vip_parity" -> Vip_parity
    | Some v -> err ~line ~field:"classify" "expected none|vip_parity, got %S" v
  in
  done_with f;
  { t with gateways_used; classify }

(* Directive positions, for line-numbered semantic errors. *)
type positions = {
  mutable p_topo : int;
  mutable p_streams : int list;  (* reversed *)
  mutable p_schemes : int list;  (* reversed *)
  mutable p_faults : int;
  mutable p_fault_specs : int list;  (* reversed *)
  mutable p_churn : int;
  mutable p_net : int;
  mutable p_last : int;
}

let parse_text src =
  let lines = String.split_on_char '\n' src in
  let pos =
    {
      p_topo = 0;
      p_streams = [];
      p_schemes = [];
      p_faults = 0;
      p_fault_specs = [];
      p_churn = 0;
      p_net = 0;
      p_last = 1;
    }
  in
  let t =
    ref
      (make ~name:"" ~topo:(preset `FT8 `Small) [])
  in
  let seen_name = ref false and seen_topo = ref false in
  let streams = ref [] and schemes = ref [] in
  let fault_specs = ref [] and fault_seed = ref None in
  let fault_mode = ref `None (* `None | `Random | `Plan *) in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s <> "" && s.[0] <> '#' then begin
        pos.p_last <- line;
        let directive, rest =
          match String.index_opt s ' ' with
          | Some j ->
              ( String.sub s 0 j,
                String.sub s (j + 1) (String.length s - j - 1) )
          | None -> (s, "")
        in
        let toks () = split_fields rest in
        match directive with
        | "scenario" ->
            if !seen_name then err ~line "duplicate scenario line";
            if String.trim rest = "" then err ~line "scenario needs a name";
            seen_name := true;
            t := { !t with name = String.trim rest }
        | "topo" ->
            if !seen_topo then err ~line "duplicate topo line";
            seen_topo := true;
            pos.p_topo <- line;
            t := { !t with topo = parse_topo ~line (toks ()) }
        | "engine" -> t := parse_engine ~line (toks ()) !t
        | "net" ->
            pos.p_net <- line;
            t := parse_net ~line (toks ()) !t
        | "workload" ->
            pos.p_streams <- line :: pos.p_streams;
            streams := parse_stream ~line (toks ()) :: !streams
        | "churn" ->
            if !t.churn <> None then err ~line "duplicate churn line";
            pos.p_churn <- line;
            t := { !t with churn = Some (parse_churn ~line (toks ())) }
        | "faults" -> (
            if !fault_mode <> `None then err ~line "duplicate faults line";
            pos.p_faults <- line;
            match toks () with
            | [ "none" ] -> fault_mode := `Plain_none
            | "random" :: rest ->
                let f = fields_of ~line rest in
                let seed = req_int f "seed" in
                done_with f;
                fault_mode := `Random;
                t := { !t with faults = Random seed }
            | "plan" :: rest ->
                let f = fields_of ~line rest in
                fault_seed := Some (req_int f "seed");
                done_with f;
                fault_mode := `Plan
            | _ -> err ~line "expected faults none|random seed=N|plan seed=N")
        | "fault" -> (
            if !fault_mode <> `Plan then
              err ~line "fault lines need a preceding 'faults plan seed=N'";
            pos.p_fault_specs <- line :: pos.p_fault_specs;
            match Fault.spec_of_string rest with
            | Ok spec -> fault_specs := spec :: !fault_specs
            | Error m -> err ~line ~field:(String.trim rest) "%s" m)
        | "scheme" ->
            pos.p_schemes <- line :: pos.p_schemes;
            schemes := parse_scheme ~line rest :: !schemes
        | d -> err ~line ~field:d "unknown directive %S" d
      end)
    lines;
  if not !seen_name then err ~line:pos.p_last "missing scenario line";
  if not !seen_topo then err ~line:pos.p_last "missing topo line";
  let faults =
    match !fault_mode with
    | `Plan ->
        Literal
          {
            Fault.seed = Option.get !fault_seed;
            specs = Fault.sort_specs (Array.of_list (List.rev !fault_specs));
          }
    | `Random -> !t.faults
    | `None | `Plain_none -> No_faults
  in
  let t =
    {
      !t with
      streams = List.rev !streams;
      schemes = List.rev !schemes;
      faults;
    }
  in
  (t, pos)

(* --- semantic validation ----------------------------------------------- *)

let check_fault_action topo action =
  let check_link src dst =
    match Topology.link topo ~src ~dst with
    | (_ : Topo.Link.t) -> ()
    | exception Not_found -> failwith (Printf.sprintf "no link %d -> %d" src dst)
  in
  let check_switch sw =
    if
      sw < 0
      || sw >= Topology.num_nodes topo
      || Topo.Node.is_endpoint (Topology.kind topo sw)
    then failwith (Printf.sprintf "%d is not a switch" sw)
  in
  let check_gateway g =
    let ok =
      g >= 0
      && g < Topology.num_nodes topo
      && match Topology.kind topo g with
         | Topo.Node.Gateway _ -> true
         | _ -> false
    in
    if not ok then failwith (Printf.sprintf "%d is not a gateway" g)
  in
  match (action : Fault.action) with
  | Link_down (a, b) | Link_up (a, b) | Set_loss (a, b, _) | Corrupt_next (a, b)
    ->
      check_link a b
  | Switch_fail s -> check_switch s
  | Gateway_down g | Gateway_up g -> check_gateway g
  | Churn n -> if n <= 0 then failwith "churn batch must be positive"

(* Structural and topology-aware checks; [pos] maps findings back to
   source lines (line 0 when the spec was built programmatically). *)
let semantic_errors t (pos : positions option) =
  let p line field fmt =
    Printf.ksprintf (fun msg -> { line; field; msg }) fmt
  in
  let at get = match pos with None -> 0 | Some pos -> get pos in
  let nth_at get i =
    match pos with
    | None -> 0
    | Some pos -> ( match List.nth_opt (List.rev (get pos)) i with
      | Some l -> l
      | None -> 0)
  in
  let errs = ref [] in
  let add e = errs := e :: !errs in
  if String.trim t.name = "" then add (p (at (fun p -> p.p_last)) None "empty scenario name");
  if String.contains t.name '\n' then
    add (p 1 None "scenario name must be a single line");
  (match t.topo.arm with
  | Custom params -> (
      match Params.validate params with
      | () -> ()
      | exception Invalid_argument m ->
          add (p (at (fun p -> p.p_topo)) None "%s" m))
  | Preset _ -> ());
  let params = params_of t in
  let params_ok =
    match Params.validate params with () -> true | exception _ -> false
  in
  let num_vms = if params_ok then Params.num_vms params else 0 in
  List.iteri
    (fun i (s : stream) ->
      let line = nth_at (fun p -> p.p_streams) i in
      let gen_vms =
        match s.vips with All -> num_vms | Parity _ -> num_vms / 2
      in
      if (not (Float.is_finite s.rate)) || s.rate <= 0.0 then
        add (p line (Some "rate") "rate must be positive");
      if s.load <= 0.0 || s.load > 1.0 then
        add (p line (Some "load") "load must be in (0,1]");
      (match s.vips with
      | Parity par when par <> 0 && par <> 1 ->
          add (p line (Some "vips") "parity must be 0 or 1")
      | _ -> ());
      (match s.trace with
      | Microbursts | Video ->
          if Time_ns.to_ns s.window <= 0 then
            add (p line (Some "window_ns") "window must be positive")
      | _ -> ());
      (match (s.trace, s.zipf_alpha) with
      | Locality, Some l when (not (Float.is_finite l)) || l < 0.0 || l > 1.0
        ->
          add
            (p line (Some "zipf_alpha")
               "locality knob (zipf_alpha) must be in [0,1]")
      | _ -> ());
      if s.seed_delta < 0 then
        add (p line (Some "seed_delta") "seed_delta must be non-negative");
      if s.id_base < 0 then
        add (p line (Some "id_base") "id_base must be non-negative");
      if params_ok && gen_vms < 2 then
        add
          (p line (Some "vips") "stream needs at least 2 VMs (topology has %d)"
             num_vms))
    t.streams;
  if t.schemes = [] then
    add (p (at (fun p -> p.p_last)) None "scenario needs at least one scheme");
  List.iteri
    (fun i (s : scheme_spec) ->
      let line = nth_at (fun p -> p.p_schemes) i in
      let check_slots = function
        | Pct n when n < 0 ->
            add (p line (Some "slots") "slots percentage must be non-negative")
        | Abs n when n < 0 ->
            add (p line (Some "slots") "slots count must be non-negative")
        | _ -> ()
      in
      (match s.kind with
      | Locallearning sl | Gwcache sl | Bluebird sl
      | Controller { slots = sl; _ }
      | Switchv2p { slots = sl; _ } ->
          check_slots sl
      | _ -> ());
      match s.kind with
      | Switchv2p { shares = Some sh; _ } ->
          if t.classify <> Vip_parity then
            add
              (p line (Some "shares")
                 "tenant shares need 'net classify=vip_parity'");
          if Array.length sh <> 2 then
            add
              (p line (Some "shares")
                 "vip_parity partitioning needs exactly 2 shares");
          Array.iter
            (fun w ->
              if (not (Float.is_finite w)) || w <= 0.0 then
                add (p line (Some "shares") "shares must be positive"))
            sh
      | Controller { interval; _ } ->
          if Time_ns.to_ns interval <= 0 then
            add (p line (Some "interval_ns") "interval must be positive")
      | _ -> ())
    t.schemes;
  (match t.shards with
  | Shards n when n < 1 ->
      add (p (at (fun p -> p.p_last)) (Some "shards") "shards must be >= 1")
  | _ -> ());
  (match t.horizon with
  | Horizon h when Time_ns.to_ns h <= 0 ->
      add (p (at (fun p -> p.p_last)) (Some "horizon") "horizon must be positive")
  | _ -> ());
  if t.seed < 0 then
    add (p (at (fun p -> p.p_last)) (Some "seed") "seed must be non-negative");
  (* Topology-aware checks. *)
  if params_ok then begin
    let topo = Topology.build params in
    (match t.gateways_used with
    | Some k ->
        let total = Array.length (Topology.gateways topo) in
        if k < 1 || k > total then
          add
            (p (at (fun p -> p.p_net)) (Some "gateways")
               "gateways must be in [1, %d]" total)
    | None -> ());
    match t.faults with
    | Literal plan ->
        Array.iteri
          (fun i spec ->
            let line = nth_at (fun p -> p.p_fault_specs) i in
            if Time_ns.to_ns spec.Fault.at < 0 then
              add (p line None "fault time must be non-negative");
            match check_fault_action topo spec.Fault.action with
            | () -> ()
            | exception Failure m ->
                add (p line (Some (Fault.spec_to_string spec)) "%s" m))
          plan.Fault.specs
    | No_faults | Random _ -> ()
  end;
  List.rev !errs

let validate t =
  match semantic_errors t None with
  | [] -> Ok ()
  | errs -> Error (List.map (fun e -> e.msg) errs)

let of_string src =
  match parse_text src with
  | t, pos -> (
      match semantic_errors t (Some pos) with
      | [] -> Ok t
      | e :: _ -> Error e)
  | exception Err e -> Error e

let validate_string src =
  match parse_text src with
  | t, pos -> (
      match semantic_errors t (Some pos) with [] -> Ok t | errs -> Error errs)
  | exception Err e -> Error [ e ]

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let validate_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> validate_string (really_input_string ic (in_channel_length ic)))

(* --- realization (everything short of scheme construction) ------------- *)

let num_vms t = Params.num_vms (params_of t)

let agg_bps t =
  let p = params_of t in
  float_of_int (Params.num_hosts p) *. p.Params.host_link_bps

(* VIP-parity remap for tenant streams: flows generated over half the
   VIP space stretched onto even/odd VIPs (both tenants have VMs on
   every server, as colocated tenants do). *)
let remap ~parity ~id_base (f : Flow.t) =
  Flow.make ~pkt_bytes:f.Flow.pkt_bytes ~id:(id_base + f.Flow.id)
    ~src_vip:(Vip.of_int ((2 * Vip.to_int f.Flow.src_vip) + parity))
    ~dst_vip:(Vip.of_int ((2 * Vip.to_int f.Flow.dst_vip) + parity))
    ~size_bytes:f.Flow.size_bytes ~start:f.Flow.start f.Flow.proto

let shift_ids ~id_base (f : Flow.t) =
  if id_base = 0 then f
  else
    Flow.make ~pkt_bytes:f.Flow.pkt_bytes ~id:(id_base + f.Flow.id)
      ~src_vip:f.Flow.src_vip ~dst_vip:f.Flow.dst_vip
      ~size_bytes:f.Flow.size_bytes ~start:f.Flow.start f.Flow.proto

let stream_flows t (s : stream) =
  let num_vms = num_vms t and agg_bps = agg_bps t in
  let gen_vms = match s.vips with All -> num_vms | Parity _ -> num_vms / 2 in
  let rng = Rng.create (t.topo.topo_seed + s.seed_delta) in
  let count = int_of_float (s.rate *. float_of_int gen_vms) in
  let raw =
    match s.trace with
    | Hadoop ->
        Tracegen.hadoop rng ~num_vms:gen_vms ~num_flows:count ~load:s.load
          ~agg_bps
    | Websearch ->
        Tracegen.websearch rng ~num_vms:gen_vms ~num_flows:count ~load:s.load
          ~agg_bps
    | Alibaba ->
        Tracegen.alibaba ?zipf_alpha:s.zipf_alpha rng ~num_vms:gen_vms
          ~num_rpcs:count ~load:s.load ~agg_bps
    | Microbursts ->
        Tracegen.microbursts ?zipf_alpha:s.zipf_alpha rng ~num_vms:gen_vms
          ~num_flows:count ~horizon:s.window
    | Video ->
        Tracegen.video rng ~num_vms:gen_vms
          ~senders:(min (int_of_float s.rate) (gen_vms / 2))
          ~duration:s.window
    | Locality ->
        Workloads.Locality_gen.flows rng ~num_vms:gen_vms ~num_flows:count
          ~load:s.load ~agg_bps
          ~locality:
            (match s.zipf_alpha with
            | Some l -> l
            | None -> default_locality)
  in
  match s.vips with
  | All -> List.map (shift_ids ~id_base:s.id_base) raw
  | Parity parity -> List.map (remap ~parity ~id_base:s.id_base) raw

let flows t =
  match t.streams with
  | [] -> []
  | [ s ] -> stream_flows t s
  | streams ->
      (* Stable by-start merge, so equal-start flows keep stream order
         (exactly the multitenant interleave). *)
      List.sort
        (fun (a : Flow.t) b -> compare a.Flow.start b.Flow.start)
        (List.concat_map (stream_flows t) streams)

let horizon t ~flows =
  match t.horizon with
  | Horizon h -> h
  | Horizon_auto ->
      let last =
        List.fold_left
          (fun acc (f : Flow.t) -> max acc (Time_ns.to_ns f.Flow.start))
          0 flows
      in
      let last =
        match t.churn with
        | Some c -> max last (Time_ns.to_ns (Churn.end_time c))
        | None -> last
      in
      Time_ns.of_ns (last + Time_ns.to_ns (Time_ns.of_ms 40))

let fault_plan t topo ~until =
  let base =
    match t.faults with
    | No_faults -> None
    | Random seed -> Some (Faultplan.generate ~seed ~horizon:until topo)
    | Literal plan -> Some plan
  in
  match t.churn with
  | None -> base
  | Some c -> (
      let churn = Array.of_list (Churn.churn_specs c) in
      match base with
      | None ->
          Some { Fault.seed = t.seed; specs = Fault.sort_specs churn }
      | Some plan ->
          Some
            {
              plan with
              Fault.specs =
                Fault.sort_specs (Array.append plan.Fault.specs churn);
            })

let net_config t =
  {
    Network.default_config with
    Network.seed = t.seed;
    gateways_used = t.gateways_used;
    classify =
      (match t.classify with
      | No_classify -> None
      | Vip_parity ->
          Some
            (fun (pkt : Netcore.Packet.t) ->
              Vip.to_int pkt.Netcore.Packet.dst_vip land 1));
    sched = (match t.sched with Sched_default -> None | Sched s -> Some s);
  }

let cache_slots t = function
  | Abs n -> n
  | Pct pct ->
      if pct < 0 then invalid_arg "Scenario.cache_slots: negative percentage";
      num_vms t * pct / 100

let scheme_label t (s : scheme_spec) =
  ignore t;
  match s.label with Some l -> l | None -> scheme_kind_name s.kind
