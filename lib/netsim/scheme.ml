type env = Pipeline.env = {
  engine : Dessim.Engine.t;
  rng : Dessim.Rng.t;
  topo : Topo.Topology.t;
  mapping : Netcore.Mapping.t;
  base_rtt : Dessim.Time_ns.t;
  fresh_packet_id : unit -> int;
  emit_at_switch : src_switch:int -> Netcore.Packet.t -> unit;
}

type host_resolution =
  | Send_resolved of Netcore.Addr.Pip.t
  | Send_via_gateway
  | Send_after of Dessim.Time_ns.t * Netcore.Addr.Pip.t

type misdelivery_action = Reforward_to_gateway | Follow_me

type t = {
  name : string;
  resolve_at_host :
    env ->
    host:int ->
    flow_id:int ->
    dst_vip:Netcore.Addr.Vip.t ->
    host_resolution;
  pipeline : Pipeline.t;
  on_misdelivery : env -> host:int -> Netcore.Packet.t -> misdelivery_action;
  on_mapping_update :
    env ->
    Netcore.Addr.Vip.t ->
    old_pip:Netcore.Addr.Pip.t ->
    new_pip:Netcore.Addr.Pip.t ->
    unit;
  host_tags_misdelivery : bool;
  stats : unit -> (string * float) list;
}

let no_stats () = []
