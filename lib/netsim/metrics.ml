module Time_ns = Dessim.Time_ns
module Stats = Dessim.Stats
module Packet = Netcore.Packet

type drop_site =
  | Link_buffer
  | Failed_switch
  | Gateway_miss
  | Host_miss
  | Fault_blackhole
  | Fault_loss
  | Fault_gateway

let num_kinds = 4
let num_sites = 7

let kind_index (k : Packet.kind) =
  match k with
  | Packet.Data -> 0
  | Packet.Ack -> 1
  | Packet.Learning -> 2
  | Packet.Invalidation -> 3

let site_index = function
  | Link_buffer -> 0
  | Failed_switch -> 1
  | Gateway_miss -> 2
  | Host_miss -> 3
  | Fault_blackhole -> 4
  | Fault_loss -> 5
  | Fault_gateway -> 6

let kind_name = function
  | Packet.Data -> "data"
  | Packet.Ack -> "ack"
  | Packet.Learning -> "learning"
  | Packet.Invalidation -> "invalidation"

let site_name = function
  | Link_buffer -> "link_buffer"
  | Failed_switch -> "failed_switch"
  | Gateway_miss -> "gateway_miss"
  | Host_miss -> "host_miss"
  | Fault_blackhole -> "fault_blackhole"
  | Fault_loss -> "fault_loss"
  | Fault_gateway -> "fault_gateway"

let all_kinds = [ Packet.Data; Packet.Ack; Packet.Learning; Packet.Invalidation ]

let all_sites =
  [
    Link_buffer;
    Failed_switch;
    Gateway_miss;
    Host_miss;
    Fault_blackhole;
    Fault_loss;
    Fault_gateway;
  ]

type t = {
  topo : Topo.Topology.t;
  classify : (Packet.t -> int) option;
  class_sent : (int, int ref) Hashtbl.t;
  class_gateway : (int, int ref) Hashtbl.t;
  mutable flows_started : int;
  mutable flows_completed : int;
  mutable packets_sent : int;
  mutable retransmits : int;
  mutable delivered_packets : int;
  drops : int array; (* kind-major [kind * num_sites + site] matrix *)
  mutable gateway_packets : int;
  fct : Stats.Reservoir.t;
  fpl : Stats.Summary.t;
  pkt_latency : Stats.Summary.t;
  stretch : Stats.Summary.t;
  mutable hits_core : int;
  mutable hits_spine : int;
  mutable hits_tor : int;
  mutable resolved_gateway : int;
  mutable resolved_host : int;
  mutable fp_hits_core : int;
  mutable fp_hits_spine : int;
  mutable fp_hits_tor : int;
  mutable fp_resolved_gateway : int;
  mutable fp_resolved_host : int;
  switch_bytes : int array;
  mutable misdelivered : int;
  mutable last_misdelivered_arrival : Time_ns.t option;
}

let create ?classify topo rng =
  {
    topo;
    classify;
    class_sent = Hashtbl.create 8;
    class_gateway = Hashtbl.create 8;
    flows_started = 0;
    flows_completed = 0;
    packets_sent = 0;
    retransmits = 0;
    delivered_packets = 0;
    drops = Array.make (num_kinds * num_sites) 0;
    gateway_packets = 0;
    fct = Stats.Reservoir.create rng;
    fpl = Stats.Summary.create ();
    pkt_latency = Stats.Summary.create ();
    stretch = Stats.Summary.create ();
    hits_core = 0;
    hits_spine = 0;
    hits_tor = 0;
    resolved_gateway = 0;
    resolved_host = 0;
    fp_hits_core = 0;
    fp_hits_spine = 0;
    fp_hits_tor = 0;
    fp_resolved_gateway = 0;
    fp_resolved_host = 0;
    switch_bytes = Array.make (Topo.Topology.num_nodes topo) 0;
    misdelivered = 0;
    last_misdelivered_arrival = None;
  }

(* Elementwise sum of two per-class counter tables into a fresh one. *)
let merge_tables a b =
  let out = Hashtbl.create (Hashtbl.length a + Hashtbl.length b) in
  let add table =
    Hashtbl.iter
      (fun k r ->
        match Hashtbl.find_opt out k with
        | Some acc -> acc := !acc + !r
        | None -> Hashtbl.add out k (ref !r))
      table
  in
  add a;
  add b;
  out

let merge a b =
  if Array.length a.switch_bytes <> Array.length b.switch_bytes then
    invalid_arg "Metrics.merge: different topologies";
  {
    topo = a.topo;
    classify = a.classify;
    class_sent = merge_tables a.class_sent b.class_sent;
    class_gateway = merge_tables a.class_gateway b.class_gateway;
    flows_started = a.flows_started + b.flows_started;
    flows_completed = a.flows_completed + b.flows_completed;
    packets_sent = a.packets_sent + b.packets_sent;
    retransmits = a.retransmits + b.retransmits;
    delivered_packets = a.delivered_packets + b.delivered_packets;
    drops = Array.init (num_kinds * num_sites) (fun i -> a.drops.(i) + b.drops.(i));
    gateway_packets = a.gateway_packets + b.gateway_packets;
    fct = Stats.Reservoir.merge a.fct b.fct;
    fpl = Stats.Summary.merge a.fpl b.fpl;
    pkt_latency = Stats.Summary.merge a.pkt_latency b.pkt_latency;
    stretch = Stats.Summary.merge a.stretch b.stretch;
    hits_core = a.hits_core + b.hits_core;
    hits_spine = a.hits_spine + b.hits_spine;
    hits_tor = a.hits_tor + b.hits_tor;
    resolved_gateway = a.resolved_gateway + b.resolved_gateway;
    resolved_host = a.resolved_host + b.resolved_host;
    fp_hits_core = a.fp_hits_core + b.fp_hits_core;
    fp_hits_spine = a.fp_hits_spine + b.fp_hits_spine;
    fp_hits_tor = a.fp_hits_tor + b.fp_hits_tor;
    fp_resolved_gateway = a.fp_resolved_gateway + b.fp_resolved_gateway;
    fp_resolved_host = a.fp_resolved_host + b.fp_resolved_host;
    switch_bytes =
      Array.init (Array.length a.switch_bytes) (fun i ->
          a.switch_bytes.(i) + b.switch_bytes.(i));
    misdelivered = a.misdelivered + b.misdelivered;
    last_misdelivered_arrival =
      (match (a.last_misdelivered_arrival, b.last_misdelivered_arrival) with
      | None, x | x, None -> x
      | Some x, Some y -> Some (Time_ns.max x y));
  }

let tenant_packet (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Data | Packet.Ack -> true
  | Packet.Learning | Packet.Invalidation -> false

let bump table key =
  match Hashtbl.find_opt table key with
  | Some r -> incr r
  | None -> Hashtbl.add table key (ref 1)

let classify_into t table pkt =
  match t.classify with
  | Some f -> bump table (f pkt)
  | None -> ()

let packet_sent t pkt =
  if tenant_packet pkt then begin
    t.packets_sent <- t.packets_sent + 1;
    if pkt.Packet.retransmit then t.retransmits <- t.retransmits + 1;
    classify_into t t.class_sent pkt
  end

(* Every kind is counted: control-plane losses (learning /
   invalidation packets) matter for protocol health even though they
   are not tenant traffic. *)
let packet_dropped t ~site (pkt : Packet.t) =
  let i = (kind_index pkt.Packet.kind * num_sites) + site_index site in
  t.drops.(i) <- t.drops.(i) + 1

let drops_of_kind t kind =
  let base = kind_index kind * num_sites in
  let acc = ref 0 in
  for s = 0 to num_sites - 1 do
    acc := !acc + t.drops.(base + s)
  done;
  !acc

let drops_of_site t site =
  let s = site_index site in
  let acc = ref 0 in
  for k = 0 to num_kinds - 1 do
    acc := !acc + t.drops.((k * num_sites) + s)
  done;
  !acc

let drops_by_kind t = List.map (fun k -> (kind_name k, drops_of_kind t k)) all_kinds
let drops_by_site t = List.map (fun s -> (site_name s, drops_of_site t s)) all_sites

let gateway_arrival t pkt =
  if tenant_packet pkt then begin
    t.gateway_packets <- t.gateway_packets + 1;
    classify_into t t.class_gateway pkt
  end

let switch_processed t ~switch (pkt : Packet.t) =
  t.switch_bytes.(switch) <- t.switch_bytes.(switch) + pkt.Packet.size

let delivered t (pkt : Packet.t) ~now ~first_of_flow =
  t.delivered_packets <- t.delivered_packets + 1;
  if Packet.is_data pkt then begin
    Stats.Summary.add t.stretch (float_of_int pkt.Packet.hops);
    Stats.Summary.add t.pkt_latency
      (Time_ns.to_sec (Time_ns.sub now pkt.Packet.sent_at));
    if pkt.Packet.misdelivery >= 0 then
      t.last_misdelivered_arrival <- Some now;
    let layer =
      if pkt.Packet.gw_visited then `Gateway
      else if pkt.Packet.hit_switch >= 0 then
        match Topo.Topology.role t.topo pkt.Packet.hit_switch with
        | Topo.Node.Core_switch -> `Core
        | Topo.Node.Regular_spine | Topo.Node.Gateway_spine -> `Spine
        | Topo.Node.Regular_tor | Topo.Node.Gateway_tor -> `Tor
      else `Host
    in
    (match layer with
    | `Core -> t.hits_core <- t.hits_core + 1
    | `Spine -> t.hits_spine <- t.hits_spine + 1
    | `Tor -> t.hits_tor <- t.hits_tor + 1
    | `Gateway -> t.resolved_gateway <- t.resolved_gateway + 1
    | `Host -> t.resolved_host <- t.resolved_host + 1);
    if first_of_flow then
      match layer with
      | `Core -> t.fp_hits_core <- t.fp_hits_core + 1
      | `Spine -> t.fp_hits_spine <- t.fp_hits_spine + 1
      | `Tor -> t.fp_hits_tor <- t.fp_hits_tor + 1
      | `Gateway -> t.fp_resolved_gateway <- t.fp_resolved_gateway + 1
      | `Host -> t.fp_resolved_host <- t.fp_resolved_host + 1
  end

let misdelivered t (pkt : Packet.t) =
  if Packet.is_data pkt then t.misdelivered <- t.misdelivered + 1

let flow_started t = t.flows_started <- t.flows_started + 1

let flow_completed t ~fct =
  t.flows_completed <- t.flows_completed + 1;
  Stats.Reservoir.add t.fct (Time_ns.to_sec fct)

let first_packet_latency t lat = Stats.Summary.add t.fpl (Time_ns.to_sec lat)
let flows_started t = t.flows_started
let flows_completed t = t.flows_completed

let hit_rate t =
  if t.packets_sent = 0 then 0.0
  else
    let r =
      1.0 -. (float_of_int t.gateway_packets /. float_of_int t.packets_sent)
    in
    Float.max 0.0 (Float.min 1.0 r)

let table_get table key =
  match Hashtbl.find_opt table key with Some r -> !r | None -> 0

let class_packets_sent t cls = table_get t.class_sent cls

let class_hit_rate t cls =
  let sent = table_get t.class_sent cls in
  if sent = 0 then 0.0
  else
    let gw = table_get t.class_gateway cls in
    Float.max 0.0 (Float.min 1.0 (1.0 -. (float_of_int gw /. float_of_int sent)))

let classes t =
  List.sort compare (Hashtbl.fold (fun cls _ acc -> cls :: acc) t.class_sent [])

let gateway_packets t = t.gateway_packets
let packets_sent t = t.packets_sent
let retransmits_sent t = t.retransmits
let delivered_packets t = t.delivered_packets
let packets_dropped t = Array.fold_left ( + ) 0 t.drops
let mean_fct t = Stats.Reservoir.mean t.fct
let fct_percentile t p = Stats.Reservoir.percentile t.fct p
let mean_first_packet_latency t = Stats.Summary.mean t.fpl
let mean_packet_latency t = Stats.Summary.mean t.pkt_latency

let layer_hits t =
  (t.hits_core, t.hits_spine, t.hits_tor, t.resolved_gateway, t.resolved_host)

let first_packet_layer_hits t =
  ( t.fp_hits_core,
    t.fp_hits_spine,
    t.fp_hits_tor,
    t.fp_resolved_gateway,
    t.fp_resolved_host )

let bytes_of_switch t switch = t.switch_bytes.(switch)

let bytes_of_pod t pod =
  let acc = ref 0 in
  Array.iter
    (fun sw ->
      if Topo.Node.pod_of (Topo.Topology.kind t.topo sw) = pod then
        acc := !acc + t.switch_bytes.(sw))
    (Topo.Topology.switches t.topo);
  !acc

let total_switch_bytes t = Array.fold_left ( + ) 0 t.switch_bytes
let mean_stretch t = Stats.Summary.mean t.stretch
let misdelivered_packets t = t.misdelivered
let last_misdelivered_arrival t = t.last_misdelivered_arrival
