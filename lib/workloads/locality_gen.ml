module Rng = Dessim.Rng
module Flow = Netcore.Flow
module Vip = Netcore.Addr.Vip

(* Jain-style destination-locality model (DEC-TR-592, "A comparison of
   hashing schemes..." lineage: the LRU-stack reference model): a
   destination is either a re-reference — drawn from the LRU stack
   with geometrically decaying probability over stack depth — or a
   fresh uniform draw pushed onto the stack. One [locality] knob in
   [0,1] controls both the re-reference probability and how sharply
   the depth distribution concentrates at the top of the stack:

     P(re-reference)     = locality
     P(depth = k | re)  ~ (1-p)^k * p,  p = 0.1 + 0.85 * locality

   locality = 0 is a uniform stream (no temporal locality beyond
   chance); locality = 1 re-references almost exclusively the
   most-recent destinations. The stack is move-to-front, so the model
   is exactly the stack-distance characterization cache literature
   uses, and measured stack-distance concentration is monotone in the
   knob (a property the statistical test pins). *)

let check_locality locality =
  if not (Float.is_finite locality) || locality < 0.0 || locality > 1.0 then
    invalid_arg "Locality_gen: locality must be in [0,1]"

(* Mutable LRU stack of distinct ids, move-to-front, capped at
   [universe] entries (ids are distinct so it never exceeds that). *)
type stack = { mutable ids : int array; mutable len : int }

let stack_create () = { ids = Array.make 64 (-1); len = 0 }

let stack_find s id =
  let rec go i = if i >= s.len then -1 else if s.ids.(i) = id then i else go (i + 1) in
  go 0

(* Move position [pos] to the front (pos < len). *)
let stack_raise s pos =
  let id = s.ids.(pos) in
  Array.blit s.ids 0 s.ids 1 pos;
  s.ids.(0) <- id

let stack_push s id =
  if s.len = Array.length s.ids then begin
    let bigger = Array.make (2 * Array.length s.ids) (-1) in
    Array.blit s.ids 0 bigger 0 s.len;
    s.ids <- bigger
  end;
  Array.blit s.ids 0 s.ids 1 s.len;
  s.ids.(0) <- id;
  s.len <- s.len + 1

(* Truncated-geometric stack depth in [0, len): success probability
   [p] per level, retrying past the end (equivalently, geometric
   conditioned on < len). Inverse-CDF, one uniform draw. *)
let draw_depth rng ~p ~len =
  let u = Rng.float rng in
  (* CDF over [0,len): F(k) = (1 - q^(k+1)) / (1 - q^len), q = 1-p *)
  let q = 1.0 -. p in
  let qn = Float.pow q (float_of_int len) in
  let x = 1.0 -. (u *. (1.0 -. qn)) in
  let k = int_of_float (Float.log x /. Float.log q) in
  if k < 0 then 0 else if k >= len then len - 1 else k

(* A draw_dst closure over [0, universe): the reusable core both the
   raw reference stream and the flow generator share. *)
let make_draw rng ~universe ~locality =
  check_locality locality;
  if universe < 1 then invalid_arg "Locality_gen: universe must be positive";
  let s = stack_create () in
  let p = 0.1 +. (0.85 *. locality) in
  fun () ->
    if s.len > 0 && Rng.float rng < locality then begin
      let depth = draw_depth rng ~p ~len:s.len in
      stack_raise s depth;
      s.ids.(0)
    end
    else begin
      let id = Rng.int rng universe in
      let pos = stack_find s id in
      if pos >= 0 then stack_raise s pos else stack_push s id;
      s.ids.(0)
    end

let references ?(num = 10_000) ~universe ~locality ~seed () =
  let rng = Rng.create seed in
  let draw = make_draw rng ~universe ~locality in
  Array.init num (fun _ -> draw ())

let flows rng ~num_vms ~num_flows ~load ~agg_bps ~locality =
  let draw_dst = make_draw rng ~universe:num_vms ~locality in
  Tracegen.tcp_flows rng ~num_vms ~num_flows ~load ~agg_bps
    ~cdf:Flow_cdf.hadoop ~draw_dst

(* Measured stack-distance concentration: replay [refs] through an LRU
   stack and return the fraction of re-references (first touches are
   excluded from the denominator) whose stack distance is < [top].
   Monotone in the generator's locality knob. *)
let concentration ?(top = 8) refs =
  let s = stack_create () in
  let re = ref 0 and near = ref 0 in
  Array.iter
    (fun id ->
      let pos = stack_find s id in
      if pos >= 0 then begin
        incr re;
        if pos < top then incr near;
        stack_raise s pos
      end
      else stack_push s id)
    refs;
  if !re = 0 then 0.0 else float_of_int !near /. float_of_int !re
