(** Container-overlay churn workloads (ONCache-style): endpoint
    populations that mutate orders of magnitude faster than VM fleets.

    A value of type {!t} describes one churn episode — a mapping-table
    mutation budget of [rate] mappings/sec sustained over [duration] —
    and compiles down to the existing fault-plan churn machinery as a
    list of {!Dessim.Fault.Churn} specs ({!churn_specs}). The three
    kinds differ only in temporal envelope:

    - {!Cold_start}: a mass deployment wave — the whole budget lands
      in the first eighth of the window, then silence.
    - {!Serverless}: burst arrivals — four compressed bursts, one per
      quarter-window.
    - {!Migration_storm}: constant-rate live-migration pressure.

    Victim selection, mapping rewrite and invalidation traffic are the
    simulator's normal churn path ({!Netsim.Network.migrate_now} via
    [Fault.Churn]), so DST invariants apply unchanged. *)

type kind = Cold_start | Serverless | Migration_storm

type t = private {
  kind : kind;
  rate : float;  (** sustained mappings/sec over the episode *)
  start : Dessim.Time_ns.t;
  duration : Dessim.Time_ns.t;
  batch : int;  (** mappings remapped per churn event *)
}

val kind_name : kind -> string
val kind_of_string : string -> kind option

(** [make ~kind ~rate ~duration ()] — raises [Invalid_argument] on a
    non-positive rate/batch/duration. *)
val make :
  ?start:Dessim.Time_ns.t ->
  kind:kind ->
  rate:float ->
  duration:Dessim.Time_ns.t ->
  ?batch:int ->
  unit ->
  t

(** Mapping budget of the episode ([rate * duration], at least one
    batch). *)
val total_mappings : t -> int

val num_batches : t -> int

(** Event timestamps, deterministic in the spec (no RNG). *)
val batch_times : t -> Dessim.Time_ns.t list

(** The episode as fault-plan specs: one [Fault.Churn batch] per
    {!batch_times} entry, in time order. *)
val churn_specs : t -> Dessim.Fault.spec list

val end_time : t -> Dessim.Time_ns.t

(** Budget actually scheduled divided by [duration] (>= [rate] by at
    most one batch of rounding). *)
val sustained_rate : t -> float

(** The spec's canonical key=value field list (hex floats, lossless) —
    the scenario-file line body. *)
val to_fields : t -> string
