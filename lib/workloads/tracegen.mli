(** Synthetic trace generators matching the paper's five workloads
    (§5, "Datasets" and "Address reuse characteristics").

    Each generator returns flows sorted by start time with unique,
    dense flow ids. VIPs are drawn from [0 .. num_vms-1]; self-flows
    (src = dst) are never produced. Flow arrivals are Poisson at a
    rate derived from the requested network [load] (fraction of the
    aggregate host bandwidth [agg_bps]). *)

type t = Netcore.Flow.t list

(** [tcp_flows rng ~num_vms ~num_flows ~load ~agg_bps ~cdf ~draw_dst]
    — the shared TCP generator behind {!hadoop} / {!websearch}:
    Poisson arrivals at [load], sizes sampled from [cdf], destinations
    from the [draw_dst] hook (self-flows redrawn). Exposed so other
    destination models ({!Locality_gen}) emit the same flow shape. *)
val tcp_flows :
  Dessim.Rng.t ->
  num_vms:int ->
  num_flows:int ->
  load:float ->
  agg_bps:float ->
  cdf:Dessim.Dist.Empirical.t ->
  draw_dst:(unit -> int) ->
  t

(** Hadoop-like: short TCP flows, high cross-flow destination reuse
    (many more flows than destination VMs; uniform source and
    destination draws, as in the paper). *)
val hadoop :
  Dessim.Rng.t -> num_vms:int -> num_flows:int -> load:float -> agg_bps:float -> t

(** WebSearch-like: heavy TCP flows, minimal cross-flow destination
    sharing (destinations drawn without replacement while the pool
    lasts). *)
val websearch :
  Dessim.Rng.t -> num_vms:int -> num_flows:int -> load:float -> agg_bps:float -> t

(** Alibaba-like microservice RPCs: each call is a short request flow
    plus a short reverse response flow; callees are drawn from a
    restricted pool ([callee_fraction], default 0.24 as in the trace)
    with Zipf popularity ([zipf_alpha], default 1.2 — ~95% of requests
    to the most popular ~5% of services). *)
val alibaba :
  ?callee_fraction:float ->
  ?zipf_alpha:float ->
  Dessim.Rng.t ->
  num_vms:int ->
  num_rpcs:int ->
  load:float ->
  agg_bps:float ->
  t

(** Microbursts: mice UDP flows (a few MTU packets at line rate, 99p
    burst duration on the order of 100 us), Zipf destination reuse. *)
val microbursts :
  ?zipf_alpha:float ->
  ?burst_rate_bps:float ->
  Dessim.Rng.t ->
  num_vms:int ->
  num_flows:int ->
  horizon:Dessim.Time_ns.t ->
  t

(** Video: [senders] persistent UDP unicast streams at [rate_bps]
    (default 48 Mb/s) for [duration]; disjoint sender/receiver pairs,
    no destination reuse. *)
val video :
  ?rate_bps:float ->
  Dessim.Rng.t ->
  num_vms:int ->
  senders:int ->
  duration:Dessim.Time_ns.t ->
  t

(** Incast for the migration experiment (§5.2): [senders] UDP senders
    on distinct VMs all target [dst_vip], each sending
    [packets_per_sender] packets of [packet_bytes] spread evenly over
    [duration]. *)
val incast :
  Dessim.Rng.t ->
  num_vms:int ->
  senders:int ->
  dst_vip:Netcore.Addr.Vip.t ->
  packets_per_sender:int ->
  packet_bytes:int ->
  duration:Dessim.Time_ns.t ->
  t

(** [mean_size_bytes flows] — for tests and load accounting. *)
val mean_size_bytes : t -> float
