module Fault = Dessim.Fault
module Time_ns = Dessim.Time_ns

type kind = Cold_start | Serverless | Migration_storm

type t = {
  kind : kind;
  rate : float;
  start : Time_ns.t;
  duration : Time_ns.t;
  batch : int;
}

let kind_name = function
  | Cold_start -> "cold_start"
  | Serverless -> "serverless"
  | Migration_storm -> "migration_storm"

let kind_of_string = function
  | "cold_start" -> Some Cold_start
  | "serverless" -> Some Serverless
  | "migration_storm" -> Some Migration_storm
  | _ -> None

let validate t =
  let fail msg = invalid_arg ("Container_churn: " ^ msg) in
  if (not (Float.is_finite t.rate)) || t.rate <= 0.0 then
    fail "rate must be a positive finite mappings/sec";
  if t.batch <= 0 then fail "batch must be positive";
  if Time_ns.to_ns t.duration <= 0 then fail "duration must be positive";
  if Time_ns.to_ns t.start < 0 then fail "start must be non-negative"

let make ?(start = Time_ns.zero) ~kind ~rate ~duration ?(batch = 8) () =
  let t = { kind; rate; start; duration; batch } in
  validate t;
  t

(* The mapping budget of the whole episode: [rate] mappings/sec
   sustained over [duration]. Every temporal envelope below spends
   exactly this budget, so [sustained_rate] is envelope-independent. *)
let total_mappings t =
  max t.batch
    (int_of_float (t.rate *. Time_ns.to_sec t.duration /. 1.0))

let num_batches t = (total_mappings t + t.batch - 1) / t.batch

(* Even spacing that lands the last batch inside the episode. *)
let spread ~start ~span_ns ~n =
  let gap = if n <= 1 then 0 else span_ns / n in
  List.init n (fun i -> Time_ns.add start (Time_ns.of_ns (i * gap)))

let batch_times t =
  let n = num_batches t in
  let span = Time_ns.to_ns t.duration in
  match t.kind with
  | Migration_storm ->
      (* Constant-rate live-migration pressure across the window. *)
      spread ~start:t.start ~span_ns:span ~n
  | Cold_start ->
      (* Mass cold-start: the whole budget lands in the first eighth
         of the window (a deployment wave), then silence while the
         fabric re-learns. *)
      spread ~start:t.start ~span_ns:(max 1 (span / 8)) ~n
  | Serverless ->
      (* Burst arrivals: four equal bursts at the start of each
         quarter-window, each burst compressed into 1/16 of the
         window — bursty on short timescales, [rate] on average. *)
      let quarter = span / 4 in
      let per_burst = (n + 3) / 4 in
      List.concat
        (List.init 4 (fun q ->
             let remaining = min per_burst (n - (q * per_burst)) in
             if remaining <= 0 then []
             else
               spread
                 ~start:(Time_ns.add t.start (Time_ns.of_ns (q * quarter)))
                 ~span_ns:(max 1 (span / 16))
                 ~n:remaining))

let churn_specs t =
  List.map (fun at -> { Fault.at; action = Fault.Churn t.batch }) (batch_times t)

let end_time t = Time_ns.add t.start t.duration

let sustained_rate t =
  float_of_int (num_batches t * t.batch) /. Time_ns.to_sec t.duration

let to_fields t =
  Printf.sprintf "kind=%s rate=%h start_ns=%d duration_ns=%d batch=%d"
    (kind_name t.kind) t.rate (Time_ns.to_ns t.start)
    (Time_ns.to_ns t.duration) t.batch
