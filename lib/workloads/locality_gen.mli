(** Jain-style tunable-locality reference generator (the DEC-TR-592
    LRU-stack / working-set model).

    Destinations come from a move-to-front LRU stack: with probability
    [locality] a re-reference is drawn at a truncated-geometrically
    distributed stack depth (success probability [0.1 + 0.85 *
    locality], so higher knob values concentrate nearer the top);
    otherwise a uniform fresh draw is pushed. [locality = 0] is a
    uniform stream; [locality = 1] re-references almost exclusively
    the most recent destinations.

    Fully deterministic in the seed: a fixed seed yields a
    byte-identical stream (the golden test), and measured
    stack-distance concentration ({!concentration}) is monotone in the
    knob (the statistical test). *)

(** [references ~universe ~locality ~seed ()] — [num] (default 10000)
    destination ids in [0, universe). Raises [Invalid_argument] if
    [locality] is outside [0,1] or [universe < 1]. *)
val references :
  ?num:int -> universe:int -> locality:float -> seed:int -> unit -> int array

(** [make_draw rng ~universe ~locality] — the underlying destination
    sampler, shaped for {!Tracegen}'s [draw_dst] hooks. Stateful: each
    call advances the stack. *)
val make_draw : Dessim.Rng.t -> universe:int -> locality:float -> unit -> int

(** [flows rng ~num_vms ~num_flows ~load ~agg_bps ~locality] — TCP
    flows with the Hadoop size CDF and Poisson arrivals (the same
    reference-stream shape as the Hadoop replay), destinations drawn
    from the locality model. Same flow-list contract as {!Tracegen}. *)
val flows :
  Dessim.Rng.t ->
  num_vms:int ->
  num_flows:int ->
  load:float ->
  agg_bps:float ->
  locality:float ->
  Netcore.Flow.t list

(** [concentration ?top refs] — replay [refs] through an LRU stack and
    return the fraction of re-references at stack distance < [top]
    (default 8). First touches are excluded from the denominator;
    0.0 when there are no re-references. *)
val concentration : ?top:int -> int array -> float
