type t = int

let zero = 0
let of_ns ns = ns
let of_us us = us * 1_000
let of_ms ms = ms * 1_000_000
let of_sec s = int_of_float (s *. 1e9)
let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9
let add = ( + )
let sub = ( - )
let max (a : t) b = if a >= b then a else b
let min (a : t) b = if a <= b then a else b
let compare (a : t) (b : t) = Int.compare a b

let of_rate_bytes ~bits_per_sec bytes =
  let ns = float_of_int (bytes * 8) /. bits_per_sec *. 1e9 in
  (* Hand-rolled positive ceil: [Float.ceil] is a libm call and
     [Stdlib.max] a polymorphic compare, and this runs per transmitted
     packet. *)
  let n = int_of_float ns in
  let n = if float_of_int n < ns then n + 1 else n in
  if n < 1 then 1 else n

let pp ppf t =
  if t >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fus" (to_us t)
  else Format.fprintf ppf "%dns" t
