(** Conservative-lookahead parallel runtime: one {!Engine} per OCaml
    domain, advanced in lock-step simulated-time windows.

    The caller partitions its model across [n] engines and wires
    cross-shard event handoff through {!Spsc} mailboxes; this module
    only owns the synchronization protocol. Correctness contract: any
    event a shard generates for a peer during a window must be
    timestamped at least [lookahead] after the sending shard's current
    time — in the network layer the lookahead is the minimum
    cross-shard link propagation delay, which guarantees exactly
    that. *)

(** [run ~lookahead ~until ~engines ~drain ~begin_window] drives all
    engines to simulated time [until] and returns the number of
    windows executed. Shard 0 runs on the calling domain; shards
    [1..n-1] each get a fresh domain, joined before returning.

    Per window, on every shard: [drain ~shard] (inject mailbox
    messages into the local engine — called between barriers, so
    spills are safe to read), a barrier, then if any shard still has
    work at or before [until]: [begin_window ~shard] (reset own outbox
    spills), execute local events in [[m, m + lookahead) ∩ [0,
    until]] where [m] is the global minimum pending timestamp, and a
    closing barrier.

    Determinism: [drain] must consume mailboxes in fixed source-shard
    order, FIFO within each; combined with the engines' [(key, seq)]
    dispatch order this makes an [n]-shard run replay byte-identically
    for fixed [n], regardless of wall-clock interleaving.

    Raises [Invalid_argument] if [lookahead <= 0] or [engines] is
    empty. *)
val run :
  lookahead:int ->
  until:Time_ns.t ->
  engines:Engine.t array ->
  drain:(shard:int -> unit) ->
  begin_window:(shard:int -> unit) ->
  int
