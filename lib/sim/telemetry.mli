(** Structured run telemetry: log-bucketed histograms, labeled
    time-series, a sampled per-packet flight recorder and a JSON
    exporter.

    A [Telemetry.t] is either {!disabled} — every recording hook is a
    single branch on a false flag and allocates nothing — or created
    with {!create}, in which case callers may record freely and export
    everything with {!to_json}. The module is engine-agnostic: it knows
    nothing about packets or switches beyond the integer ids callers
    pass in, so it can be shared by the data-plane model, the network
    simulator and the experiment drivers. *)

(** Minimal JSON tree with a compact printer and a parser, enough for
    run reports without an external dependency. Floats are printed
    with round-trip precision; non-finite floats serialize as [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val to_channel : out_channel -> t -> unit

  (** [parse s] reads one JSON value (surrounding whitespace allowed).
      Numbers without fraction or exponent parse as [Int]. *)
  val parse : string -> (t, string) result

  (** [member key json] is the value bound to [key] if [json] is an
      object containing it. *)
  val member : string -> t -> t option
end

(** Log-bucketed (HDR-style) histogram over non-negative floats.
    Bucket [i] covers [[lo·10^(i/bpd), lo·10^((i+1)/bpd))]; values
    below [lo] land in a dedicated underflow bucket, values at or
    above the top edge in an overflow bucket. *)
module Histogram : sig
  type t

  (** Defaults: [lo = 1e-7] (100 ns when recording seconds),
      [buckets_per_decade = 20] (~12% bucket growth), [decades = 9]
      (covering 100 ns .. 100 s). *)
  val create :
    ?lo:float -> ?buckets_per_decade:int -> ?decades:int -> unit -> t

  val record : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** [mean t] is 0 when empty. *)
  val mean : t -> float

  val num_buckets : t -> int

  (** [bucket_index t v] is [-1] for underflow, [num_buckets t] for
      overflow, otherwise the bucket containing [v]. Exact bucket
      edges belong to the bucket they open (half-open intervals). *)
  val bucket_index : t -> float -> int

  (** [bucket_bounds t i] is [(lo_edge, hi_edge)] of bucket [i].
      Raises [Invalid_argument] out of range. *)
  val bucket_bounds : t -> int -> float * float

  val bucket_count : t -> int -> int
  val underflow : t -> int
  val overflow : t -> int

  (** [percentile t p] approximates the [p]-th percentile (upper bucket
      edge, conservative); 0 when empty. *)
  val percentile : t -> float -> float

  val to_json : t -> Json.t
end

type t

(** The shared no-op instance: [is_enabled] is false and every
    recording hook returns immediately. *)
val disabled : t

(** [create ()] is an enabled collector. [sample_interval] is the
    period the owning simulator should use for time-series probes
    (default 50 us of simulation time); [flight_sample_every] keeps
    hop-by-hop events for one packet id in every [n] (default 64;
    [0] disables the flight recorder); [max_flight_events] caps
    recorder memory (default 65536 events). *)
val create :
  ?sample_interval:Time_ns.t ->
  ?flight_sample_every:int ->
  ?max_flight_events:int ->
  unit ->
  t

val is_enabled : t -> bool
val sample_interval : t -> Time_ns.t

(** [observe t name v] records [v] into the histogram called [name]
    (created on first use). No-op when disabled. *)
val observe : t -> string -> float -> unit

(** [sample t name ~now_sec v] appends [(now_sec, v)] to the series
    called [name]. No-op when disabled. *)
val sample : t -> string -> now_sec:float -> float -> unit

(** [trace t ~now_sec ~pkt ~node event] appends a flight-recorder
    event for packet id [pkt] at node [node], provided the packet is
    sampled ([pkt mod flight_sample_every = 0]) and the cap has not
    been reached. No-op when disabled. *)
val trace : t -> now_sec:float -> pkt:int -> node:int -> string -> unit

(** [should_trace t ~pkt] — whether {!trace} would keep events for
    this packet id (lets callers skip argument preparation). *)
val should_trace : t -> pkt:int -> bool

(** Introspection (tests, exporters). *)

val histogram : t -> string -> Histogram.t option
val flight_events : t -> int

(** [to_json t ~manifest ~extra] assembles the full report:
    [{"schema", "manifest", "histograms", "series", "flight", ...extra}]. *)
val to_json : t -> manifest:Json.t -> extra:(string * Json.t) list -> Json.t

(** [write ~path json] writes the document to [path] (with a trailing
    newline). *)
val write : path:string -> Json.t -> unit
