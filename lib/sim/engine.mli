(** Discrete-event simulation engine.

    Events are thunks scheduled at absolute {!Time_ns.t} timestamps and
    executed in timestamp order (FIFO among ties). The engine is
    single-threaded and deterministic. *)

type t

(** [create ()] is a fresh engine at time zero. [reserve] pre-sizes
    the event queue (default 4096 events) so steady-state simulations
    skip the initial doubling copies. *)
val create : ?reserve:int -> unit -> t

(** [now t] is the current simulation time. *)
val now : t -> Time_ns.t

(** [schedule t ~at f] queues [f] to run at absolute time [at].
    Scheduling in the past raises [Invalid_argument]. *)
val schedule : t -> at:Time_ns.t -> (unit -> unit) -> unit

(** [schedule_after t ~delay f] queues [f] to run [delay] from now. *)
val schedule_after : t -> delay:Time_ns.t -> (unit -> unit) -> unit

(** [run t] executes events until the queue is empty. *)
val run : t -> unit

(** [run_until t ~limit] executes events with timestamp [<= limit];
    stops (leaving later events queued) once the next event would
    exceed [limit], and advances the clock to [limit]. *)
val run_until : t -> limit:Time_ns.t -> unit

(** [pending t] is the number of queued events. *)
val pending : t -> int

(** [executed t] is the total number of events executed so far. *)
val executed : t -> int
