(** Discrete-event simulation engine.

    Events execute in timestamp order (FIFO among ties, across both
    event forms). The engine is single-threaded and deterministic:
    both scheduler backends dispatch in exact (timestamp, sequence)
    order, so transcripts are byte-identical regardless of backend.

    Two event forms share one queue:

    - {b Typed events}: a non-negative event [code] plus two integer
      operands [a]/[b], dispatched to the installed {!handler}.
      Scheduling one writes into the engine's struct-of-arrays queue
      and allocates nothing — this is the hot path for per-packet
      simulation events.
    - {b Thunks}: [(unit -> unit)] closures, for rare or irregular
      events where packing state into two ints isn't worth it. *)

type t

(** Dispatch function for typed events. *)
type handler = code:int -> a:int -> b:int -> unit

(** Scheduler backend.

    - [Heap]: the stride-5 binary heap — O(log n) per operation,
      kept as the reference oracle for differential testing.
    - [Wheel]: a calendar queue (timing wheel) over the same unboxed
      int-array event records — O(1) amortized enqueue/dequeue for
      the time-clustered horizons packet simulations produce, with
      far-future events parked in an overflow heap and lazily demoted
      into buckets as the cursor advances. Dispatch is batched: all
      events in a time quantum drain into a flat run, sorted by
      (timestamp, sequence), and dispatch with the handler load
      hoisted out of the per-event loop. *)
type sched = Heap | Wheel

(** [default_sched ()] reads the [REPRO_SCHED] environment variable
    ([heap] or [wheel]); unset or empty means [Wheel]. Raises
    [Invalid_argument] on any other value. *)
val default_sched : unit -> sched

(** [sched_name s] is ["heap"] or ["wheel"]. *)
val sched_name : sched -> string

(** [sched_of_string s] parses ["heap"] / ["wheel"]. *)
val sched_of_string : string -> sched option

(** [create ()] is a fresh engine at time zero. [reserve] pre-sizes
    the event queue (default 4096 events) so steady-state simulations
    skip the initial doubling copies. [sched] selects the backend
    (default {!default_sched}). [wheel_shift] is the log2 bucket
    width in ns (default 14, i.e. ~16µs quanta); [wheel_buckets] is
    the bucket count, a power of two >= 32 (default 64, giving a
    ~1ms in-wheel window before events overflow to the heap). When
    [wheel_shift] / [wheel_buckets] are omitted, the
    [REPRO_WHEEL_SHIFT] / [REPRO_WHEEL_BUCKETS] environment variables
    override the defaults — handy for geometry sweeps without
    recompiling. *)
val create :
  ?reserve:int ->
  ?sched:sched ->
  ?wheel_shift:int ->
  ?wheel_buckets:int ->
  unit ->
  t

(** [sched t] is the backend this engine runs on. *)
val sched : t -> sched

(** [now t] is the current simulation time. *)
val now : t -> Time_ns.t

(** [set_handler t h] installs the typed-event dispatcher. Executing a
    typed event without a handler installed raises
    [Invalid_argument]. Under the wheel backend a handler installed
    mid-run takes effect at the next dispatch batch. *)
val set_handler : t -> handler -> unit

(** [schedule t ~at f] queues [f] to run at absolute time [at].
    Scheduling in the past raises [Invalid_argument]. *)
val schedule : t -> at:Time_ns.t -> (unit -> unit) -> unit

(** [schedule_after t ~delay f] queues [f] to run [delay] from now. *)
val schedule_after : t -> delay:Time_ns.t -> (unit -> unit) -> unit

(** [schedule_event t ~at ~code ~a ~b] queues a typed event for the
    installed handler at absolute time [at]. Allocation-free unless
    the queue must grow. Raises [Invalid_argument] if [code < 0] or
    [at] is in the past. *)
val schedule_event : t -> at:Time_ns.t -> code:int -> a:int -> b:int -> unit

(** [schedule_event_after t ~delay ~code ~a ~b] is
    {!schedule_event} at [delay] from now. *)
val schedule_event_after :
  t -> delay:Time_ns.t -> code:int -> a:int -> b:int -> unit

(** [run t] executes events until the queue is empty. *)
val run : t -> unit

(** [run_until t ~limit] executes events with timestamp [<= limit];
    stops (leaving later events queued) once the next event would
    exceed [limit], and advances the clock to [limit]. *)
val run_until : t -> limit:Time_ns.t -> unit

(** [pending t] is the number of queued events. *)
val pending : t -> int

(** [executed t] is the total number of events executed so far. *)
val executed : t -> int

(** [next_at t] is the timestamp of the earliest pending event, or
    [max_int] when the queue is empty. Read-only (never advances the
    clock or cursor); used by the domain-sharded runtime
    ({!Shard.run}) to agree on the next conservative window. *)
val next_at : t -> Time_ns.t
