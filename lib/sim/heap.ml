(* Struct-of-arrays binary min-heap: unboxed [int] key/seq lanes plus
   one payload lane. A push writes three array slots and allocates
   nothing (after the backing arrays exist); the old representation
   boxed every element in a [{ key; seq; value }] record, which at
   simulator rates made the event queue the dominant minor-heap
   producer.

   The payload lane is an [Obj.t array] so that empty slots can hold a
   shared immediate dummy — an ['a array] cannot be created without an
   ['a] witness, which is what previously forced [reserve] on an empty
   heap to defer its allocation (and [clear] to drop storage). Every
   slot below [size] was written by [push] at type ['a], so the
   [Obj.obj] in [pop]/[peek] only ever re-reads values at the type they
   were stored with. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable data : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = Obj.repr 0

let create () =
  { keys = [||]; seqs = [||]; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let set_capacity t cap =
  let nkeys = Array.make cap 0 in
  Array.blit t.keys 0 nkeys 0 t.size;
  t.keys <- nkeys;
  let nseqs = Array.make cap 0 in
  Array.blit t.seqs 0 nseqs 0 t.size;
  t.seqs <- nseqs;
  let ndata = Array.make cap dummy in
  Array.blit t.data 0 ndata 0 t.size;
  t.data <- ndata

let reserve t n = if n > Array.length t.keys then set_capacity t n

let push t key value =
  let cap = Array.length t.keys in
  if t.size = cap then set_capacity t (if cap = 0 then 64 else cap * 2);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let keys = t.keys and seqs = t.seqs and data = t.data in
  (* Sift up: move larger parents down into the hole, place once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = keys.(parent) in
    if key < pk || (key = pk && seq < seqs.(parent)) then begin
      keys.(!i) <- pk;
      seqs.(!i) <- seqs.(parent);
      data.(!i) <- data.(parent);
      i := parent
    end
    else continue := false
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  data.(!i) <- Obj.repr value

(* Sift the (key, seq) element — currently logically at the root hole —
   down to its place, moving smaller children up. *)
let sift_down t key seq v =
  let keys = t.keys and seqs = t.seqs and data = t.data in
  let n = t.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let c =
        if
          r < n
          && (keys.(r) < keys.(l)
             || (keys.(r) = keys.(l) && seqs.(r) < seqs.(l)))
        then r
        else l
      in
      let ck = keys.(c) in
      if ck < key || (ck = key && seqs.(c) < seq) then begin
        keys.(!i) <- ck;
        seqs.(!i) <- seqs.(c);
        data.(!i) <- data.(c);
        i := c
      end
      else continue := false
    end
  done;
  keys.(!i) <- key;
  seqs.(!i) <- seq;
  data.(!i) <- v

let drop_min t =
  if t.size = 0 then raise Not_found;
  let n = t.size - 1 in
  t.size <- n;
  let last_key = t.keys.(n) and last_seq = t.seqs.(n) and last_v = t.data.(n) in
  t.data.(n) <- dummy;
  if n > 0 then sift_down t last_key last_seq last_v

let peek_key t =
  if t.size = 0 then raise Not_found;
  t.keys.(0)

let peek t : 'a =
  if t.size = 0 then raise Not_found;
  Obj.obj t.data.(0)

let pop t =
  if t.size = 0 then raise Not_found;
  let key = t.keys.(0) in
  let v : 'a = Obj.obj t.data.(0) in
  drop_min t;
  (key, v)

let clear t =
  (* Keep the backing storage: engines are reused across sweep runs and
     re-reserving defeated the point of [reserve]. Payload slots are
     dropped so cleared elements don't keep their values alive. *)
  Array.fill t.data 0 t.size dummy;
  t.size <- 0;
  t.next_seq <- 0
