type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable min_cap : int;
}

let create () = { data = [||]; size = 0; next_seq = 0; min_cap = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max (if cap = 0 then 64 else cap * 2) t.min_cap in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let reserve t n =
  if n > t.min_cap then t.min_cap <- n;
  (* [entry] is not constructible without an element, so an empty heap
     only records the hint; the first push allocates at [min_cap]. *)
  if t.size > 0 && Array.length t.data < n then begin
    let ndata = Array.make n t.data.(0) in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let d = t.data in
  d.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry d.(parent) then begin
      d.(!i) <- d.(parent);
      d.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then raise Not_found;
  let d = t.data in
  let top = d.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = d.(t.size) in
    d.(0) <- last;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less d.(l) d.(!smallest) then smallest := l;
      if r < t.size && less d.(r) d.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = d.(!i) in
        d.(!i) <- d.(!smallest);
        d.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  (top.key, top.value)

let peek_key t =
  if t.size = 0 then raise Not_found;
  t.data.(0).key

let clear t =
  t.data <- [||];
  t.size <- 0;
  t.next_seq <- 0
