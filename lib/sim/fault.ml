type gilbert_elliott = {
  p_enter_bad : float;
  p_exit_bad : float;
  loss_good : float;
  loss_bad : float;
}

type loss_model =
  | No_loss
  | Bernoulli of float
  | Gilbert_elliott of gilbert_elliott

let state_good = 0
let state_bad = 1

let step_packed model ~state rng =
  match model with
  | No_loss -> state lsl 1
  | Bernoulli p -> (state_good lsl 1) lor Bool.to_int (Rng.bernoulli rng p)
  | Gilbert_elliott g ->
      let state' =
        if state = state_good then
          if Rng.bernoulli rng g.p_enter_bad then state_bad else state_good
        else if Rng.bernoulli rng g.p_exit_bad then state_good
        else state_bad
      in
      let p = if state' = state_bad then g.loss_bad else g.loss_good in
      (state' lsl 1) lor Bool.to_int (Rng.bernoulli rng p)

type action =
  | Link_down of int * int
  | Link_up of int * int
  | Set_loss of int * int * loss_model
  | Corrupt_next of int * int
  | Switch_fail of int
  | Gateway_down of int
  | Gateway_up of int
  | Churn of int

type spec = { at : Time_ns.t; action : action }
type plan = { seed : int; specs : spec array }

let empty = { seed = 0; specs = [||] }

let sort_specs specs =
  let a = Array.copy specs in
  (* stable: ties keep their original relative order, which pins the
     execution order of same-timestamp faults in replays *)
  let tagged = Array.mapi (fun i s -> (s.at, i, s)) a in
  Array.sort
    (fun (t0, i0, _) (t1, i1, _) ->
      if t0 <> t1 then compare t0 t1 else compare i0 i1)
    tagged;
  Array.map (fun (_, _, s) -> s) tagged

let num_kinds = 8

let kind_index = function
  | Link_down _ -> 0
  | Link_up _ -> 1
  | Set_loss _ -> 2
  | Corrupt_next _ -> 3
  | Switch_fail _ -> 4
  | Gateway_down _ -> 5
  | Gateway_up _ -> 6
  | Churn _ -> 7

let kind_names =
  [|
    "link_down";
    "link_up";
    "set_loss";
    "corrupt";
    "switch_fail";
    "gateway_down";
    "gateway_up";
    "churn";
  |]

let kind_name i = kind_names.(i)

(* Floats print as %h so the textual form round-trips bit-exactly. *)
let loss_to_string = function
  | No_loss -> "none"
  | Bernoulli p -> Printf.sprintf "b%h" p
  | Gilbert_elliott g ->
      Printf.sprintf "ge%h,%h,%h,%h" g.p_enter_bad g.p_exit_bad g.loss_good
        g.loss_bad

let action_to_string = function
  | Link_down (a, b) -> Printf.sprintf "linkdown=%d-%d" a b
  | Link_up (a, b) -> Printf.sprintf "linkup=%d-%d" a b
  | Set_loss (a, b, m) ->
      Printf.sprintf "loss=%d-%d:%s" a b (loss_to_string m)
  | Corrupt_next (a, b) -> Printf.sprintf "corrupt=%d-%d" a b
  | Switch_fail s -> Printf.sprintf "switchfail=%d" s
  | Gateway_down g -> Printf.sprintf "gwdown=%d" g
  | Gateway_up g -> Printf.sprintf "gwup=%d" g
  | Churn n -> Printf.sprintf "churn=%d" n

let pp_action fmt a = Format.pp_print_string fmt (action_to_string a)

let to_string plan =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "seed=%d" plan.seed);
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf ";@%d:%s" s.at (action_to_string s.action)))
    plan.specs;
  Buffer.contents b

exception Parse of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "bad %s %S" what s

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail "bad %s %S" what s

let parse_pair what s =
  match String.index_opt s '-' with
  | Some i ->
      ( parse_int what (String.sub s 0 i),
        parse_int what (String.sub s (i + 1) (String.length s - i - 1)) )
  | None -> fail "expected SRC-DST in %S" s

let parse_loss s =
  if s = "none" then No_loss
  else if String.length s > 1 && s.[0] = 'b' then
    Bernoulli (parse_float "loss probability" (String.sub s 1 (String.length s - 1)))
  else if String.length s > 2 && s.[0] = 'g' && s.[1] = 'e' then
    match String.split_on_char ',' (String.sub s 2 (String.length s - 2)) with
    | [ pe; px; lg; lb ] ->
        Gilbert_elliott
          {
            p_enter_bad = parse_float "ge p_enter_bad" pe;
            p_exit_bad = parse_float "ge p_exit_bad" px;
            loss_good = parse_float "ge loss_good" lg;
            loss_bad = parse_float "ge loss_bad" lb;
          }
    | _ -> fail "expected ge<p>,<p>,<p>,<p> in %S" s
  else fail "bad loss model %S" s

let parse_action s =
  match String.index_opt s '=' with
  | None -> fail "bad action %S" s
  | Some i -> (
      let key = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match key with
      | "linkdown" ->
          let a, b = parse_pair "link endpoint" v in
          Link_down (a, b)
      | "linkup" ->
          let a, b = parse_pair "link endpoint" v in
          Link_up (a, b)
      | "loss" -> (
          match String.index_opt v ':' with
          | Some j ->
              let a, b = parse_pair "link endpoint" (String.sub v 0 j) in
              let m =
                parse_loss (String.sub v (j + 1) (String.length v - j - 1))
              in
              Set_loss (a, b, m)
          | None -> fail "expected loss=SRC-DST:MODEL in %S" s)
      | "corrupt" ->
          let a, b = parse_pair "link endpoint" v in
          Corrupt_next (a, b)
      | "switchfail" -> Switch_fail (parse_int "switch id" v)
      | "gwdown" -> Gateway_down (parse_int "gateway id" v)
      | "gwup" -> Gateway_up (parse_int "gateway id" v)
      | "churn" -> Churn (parse_int "churn batch size" v)
      | _ -> fail "unknown action %S" key)

let parse_spec s =
  if String.length s < 2 || s.[0] <> '@' then fail "expected @TIME:ACTION in %S" s
  else
    match String.index_opt s ':' with
    | Some i ->
        {
          at = parse_int "time" (String.sub s 1 (i - 1));
          action =
            parse_action (String.sub s (i + 1) (String.length s - i - 1));
        }
    | None -> fail "expected @TIME:ACTION in %S" s

let spec_of_string s =
  match parse_spec (String.trim s) with
  | spec -> Ok spec
  | exception Parse m -> Error m

let spec_to_string s = Printf.sprintf "@%d:%s" s.at (action_to_string s.action)

let of_string s =
  try
    match String.split_on_char ';' (String.trim s) with
    | [] -> Error "empty plan"
    | seed :: rest ->
        let seed =
          match String.index_opt seed '=' with
          | Some i when String.sub seed 0 i = "seed" ->
              parse_int "seed"
                (String.sub seed (i + 1) (String.length seed - i - 1))
          | _ -> fail "plan must start with seed=N, got %S" seed
        in
        let specs =
          rest
          |> List.filter (fun s -> String.trim s <> "")
          |> List.map parse_spec |> Array.of_list
        in
        Ok { seed; specs = sort_specs specs }
  with Parse m -> Error m

let of_string_exn s =
  match of_string s with
  | Ok p -> p
  | Error m -> invalid_arg ("Fault.of_string: " ^ m)
