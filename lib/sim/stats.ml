module Summary = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; sum = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = if t.count = 0 then raise Not_found else t.min
  let max t = if t.count = 0 then raise Not_found else t.max
  let sum t = t.sum

  (* Exact and commutative: count/sum are additive, min/max associative
     (the empty-summary sentinels are the identities). *)
  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }
end

module Reservoir = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable seen : int;
    mutable sum : float;
    capacity : int option;
    rng : Rng.t;
    mutable sorted : bool;
  }

  let create ?capacity rng =
    { data = [||]; size = 0; seen = 0; sum = 0.0; capacity; rng; sorted = true }

  let store t i x =
    if i = t.size then begin
      if t.size = Array.length t.data then begin
        let ncap = if t.size = 0 then 256 else t.size * 2 in
        let ndata = Array.make ncap 0.0 in
        Array.blit t.data 0 ndata 0 t.size;
        t.data <- ndata
      end;
      t.size <- t.size + 1
    end;
    t.data.(i) <- x;
    t.sorted <- false

  let add t x =
    t.seen <- t.seen + 1;
    t.sum <- t.sum +. x;
    match t.capacity with
    | None -> store t t.size x
    | Some cap ->
        if t.size < cap then store t t.size x
        else begin
          let j = Rng.int t.rng t.seen in
          if j < cap then store t j x
        end

  let count t = t.seen
  let mean t = if t.seen = 0 then 0.0 else t.sum /. float_of_int t.seen

  (* Only defined for unbounded reservoirs (capacity [None]), where the
     stored samples are exactly the observed samples: the merge is a
     concatenation, so count/sum/percentiles all match single-stream
     accounting regardless of argument order (percentile sorts). A
     capacity-bounded reservoir has no exact merge — subsampling is not
     closed under union — so that case is rejected rather than silently
     approximated. *)
  let merge a b =
    (match (a.capacity, b.capacity) with
    | None, None -> ()
    | _ -> invalid_arg "Stats.Reservoir.merge: bounded reservoir");
    let data = Array.make (Stdlib.max 1 (a.size + b.size)) 0.0 in
    Array.blit a.data 0 data 0 a.size;
    Array.blit b.data 0 data a.size b.size;
    {
      data;
      size = a.size + b.size;
      seen = a.seen + b.seen;
      sum = a.sum +. b.sum;
      capacity = None;
      rng = a.rng;
      sorted = false;
    }

  let percentile t p =
    if t.size = 0 then raise Not_found;
    if not t.sorted then begin
      let sub = Array.sub t.data 0 t.size in
      Array.sort compare sub;
      Array.blit sub 0 t.data 0 t.size;
      t.sorted <- true
    end;
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.size)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.size - 1) (rank - 1)) in
    t.data.(idx)
end

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let incr t key n =
    match Hashtbl.find_opt t key with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t key (ref n)

  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
