module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape_into b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  (* Shortest decimal that round-trips the double: try %.15g, fall
     back to %.17g. *)
  let float_repr f =
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* JSON requires a fraction or exponent marker is not required, but
       a bare integer-looking float must stay distinguishable when we
       parse it back; mark it as a float. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

  let rec write_into b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string b (float_repr f)
        else Buffer.add_string b "null"
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            write_into b item)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            write_into b v)
          fields;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 4096 in
    write_into b j;
    Buffer.contents b

  let to_channel oc j = output_string oc (to_string j)

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else error (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      if
        !pos + String.length word <= n
        && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else error ("expected " ^ word)
    in
    let utf8_of_code b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then error "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
            (if !pos >= n then error "unterminated escape";
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
                 if !pos + 4 > n then error "short \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 let cp =
                   try int_of_string ("0x" ^ hex)
                   with _ -> error "bad \\u escape"
                 in
                 utf8_of_code b cp
             | _ -> error "bad escape");
            loop ()
        | c ->
            Buffer.add_char b c;
            loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error "bad number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> error "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> error "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((key, v) :: acc)
              | _ -> error "expected , or }"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> error "expected , or ]"
            in
            List (items [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> error (Printf.sprintf "unexpected %c" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then error "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None
end

module Histogram = struct
  type t = {
    lo : float;
    buckets_per_decade : int;
    edges : float array; (* length num+1 *)
    counts : int array; (* length num *)
    mutable underflow : int;
    mutable overflow : int;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(lo = 1e-7) ?(buckets_per_decade = 20) ?(decades = 9) () =
    if lo <= 0.0 then invalid_arg "Histogram.create: lo must be positive";
    if buckets_per_decade <= 0 || decades <= 0 then
      invalid_arg "Histogram.create: non-positive geometry";
    let num = buckets_per_decade * decades in
    let edges =
      Array.init (num + 1) (fun i ->
          lo *. (10.0 ** (float_of_int i /. float_of_int buckets_per_decade)))
    in
    {
      lo;
      buckets_per_decade;
      edges;
      counts = Array.make num 0;
      underflow = 0;
      overflow = 0;
      count = 0;
      sum = 0.0;
      min = infinity;
      max = neg_infinity;
    }

  let num_buckets t = Array.length t.counts

  (* Binary search over the precomputed edges: exact, so bucket edges
     behave as half-open intervals regardless of float-log error. *)
  let bucket_index t v =
    let num = num_buckets t in
    if v < t.edges.(0) then -1
    else if v >= t.edges.(num) then num
    else begin
      let lo = ref 0 and hi = ref num in
      (* invariant: edges.(lo) <= v < edges.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if v < t.edges.(mid) then hi := mid else lo := mid
      done;
      !lo
    end

  let record t v =
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    let i = bucket_index t v in
    if i < 0 then t.underflow <- t.underflow + 1
    else if i >= num_buckets t then t.overflow <- t.overflow + 1
    else t.counts.(i) <- t.counts.(i) + 1

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let bucket_bounds t i =
    if i < 0 || i >= num_buckets t then
      invalid_arg "Histogram.bucket_bounds: out of range";
    (t.edges.(i), t.edges.(i + 1))

  let bucket_count t i =
    if i < 0 || i >= num_buckets t then
      invalid_arg "Histogram.bucket_count: out of range";
    t.counts.(i)

  let underflow t = t.underflow
  let overflow t = t.overflow

  let percentile t p =
    if t.count = 0 then 0.0
    else begin
      let rank =
        Stdlib.max 1
          (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)))
      in
      let seen = ref t.underflow in
      if !seen >= rank then t.edges.(0)
      else begin
        let result = ref None in
        let i = ref 0 in
        let num = num_buckets t in
        while !result = None && !i < num do
          seen := !seen + t.counts.(!i);
          if !seen >= rank then result := Some t.edges.(!i + 1);
          incr i
        done;
        match !result with Some v -> v | None -> t.max
      end
    end

  let to_json t =
    let buckets =
      let acc = ref [] in
      for i = num_buckets t - 1 downto 0 do
        if t.counts.(i) > 0 then
          acc :=
            Json.List
              [
                Json.Int i;
                Json.Float t.edges.(i);
                Json.Float t.edges.(i + 1);
                Json.Int t.counts.(i);
              ]
            :: !acc
      done;
      !acc
    in
    Json.Obj
      [
        ("lo", Json.Float t.lo);
        ("buckets_per_decade", Json.Int t.buckets_per_decade);
        ("count", Json.Int t.count);
        ("sum", Json.Float t.sum);
        ("mean", Json.Float (mean t));
        ("min", if t.count = 0 then Json.Null else Json.Float t.min);
        ("max", if t.count = 0 then Json.Null else Json.Float t.max);
        ("p50", Json.Float (percentile t 50.0));
        ("p90", Json.Float (percentile t 90.0));
        ("p99", Json.Float (percentile t 99.0));
        ("p999", Json.Float (percentile t 99.9));
        ("underflow", Json.Int t.underflow);
        ("overflow", Json.Int t.overflow);
        ("buckets", Json.List buckets);
      ]
end

type series = { mutable points : (float * float) list; mutable n : int }
type flight_event = { at : float; pkt : int; node : int; event : string }

type t = {
  enabled : bool;
  sample_interval : Time_ns.t;
  flight_sample_every : int;
  max_flight_events : int;
  histograms : (string, Histogram.t) Hashtbl.t;
  series : (string, series) Hashtbl.t;
  mutable flight : flight_event list; (* newest first *)
  mutable n_flight : int;
  mutable series_order : string list; (* registration order, newest first *)
  mutable histogram_order : string list;
}

let make ~enabled ~sample_interval ~flight_sample_every ~max_flight_events =
  {
    enabled;
    sample_interval;
    flight_sample_every;
    max_flight_events;
    histograms = Hashtbl.create 16;
    series = Hashtbl.create 16;
    flight = [];
    n_flight = 0;
    series_order = [];
    histogram_order = [];
  }

let disabled =
  make ~enabled:false ~sample_interval:(Time_ns.of_us 50)
    ~flight_sample_every:0 ~max_flight_events:0

let create ?(sample_interval = Time_ns.of_us 50) ?(flight_sample_every = 64)
    ?(max_flight_events = 65536) () =
  if flight_sample_every < 0 then
    invalid_arg "Telemetry.create: negative flight_sample_every";
  make ~enabled:true ~sample_interval ~flight_sample_every ~max_flight_events

let is_enabled t = t.enabled
let sample_interval t = t.sample_interval

let observe t name v =
  if t.enabled then begin
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h = Histogram.create () in
          Hashtbl.add t.histograms name h;
          t.histogram_order <- name :: t.histogram_order;
          h
    in
    Histogram.record h v
  end

let sample t name ~now_sec v =
  if t.enabled then begin
    let s =
      match Hashtbl.find_opt t.series name with
      | Some s -> s
      | None ->
          let s = { points = []; n = 0 } in
          Hashtbl.add t.series name s;
          t.series_order <- name :: t.series_order;
          s
    in
    s.points <- (now_sec, v) :: s.points;
    s.n <- s.n + 1
  end

let should_trace t ~pkt =
  t.enabled && t.flight_sample_every > 0
  && pkt mod t.flight_sample_every = 0
  && t.n_flight < t.max_flight_events

let trace t ~now_sec ~pkt ~node event =
  if should_trace t ~pkt then begin
    t.flight <- { at = now_sec; pkt; node; event } :: t.flight;
    t.n_flight <- t.n_flight + 1
  end

let histogram t name = Hashtbl.find_opt t.histograms name
let flight_events t = t.n_flight

let to_json t ~manifest ~extra =
  let histograms =
    List.rev_map
      (fun name ->
        (name, Histogram.to_json (Hashtbl.find t.histograms name)))
      t.histogram_order
  in
  let series =
    List.rev_map
      (fun name ->
        let s = Hashtbl.find t.series name in
        ( name,
          Json.List
            (List.rev_map
               (fun (at, v) -> Json.List [ Json.Float at; Json.Float v ])
               s.points) ))
      t.series_order
  in
  let flight =
    Json.List
      (List.rev_map
         (fun e ->
           Json.Obj
             [
               ("t", Json.Float e.at);
               ("pkt", Json.Int e.pkt);
               ("node", Json.Int e.node);
               ("event", Json.Str e.event);
             ])
         t.flight)
  in
  Json.Obj
    ([
       ("schema", Json.Str "switchv2p-telemetry/v1");
       ("manifest", manifest);
       ("histograms", Json.Obj histograms);
       ("series", Json.Obj series);
       ( "flight",
         Json.Obj
           [
             ("sample_every", Json.Int t.flight_sample_every);
             ("events", flight);
           ] );
     ]
    @ extra)

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc json;
      output_char oc '\n')
