(** Declarative, seeded fault schedules for the simulator.

    A {!plan} is a time-sorted array of {!spec}s — "at [at], apply
    [action]" — plus the RNG seed that governs every stochastic choice
    made while the plan executes (per-packet loss draws, churn victim
    selection). Plans are pure data: the network layer installs them
    as ordinary typed events in the allocation-free event core, so
    executing a fault allocates nothing on the packet hot path.

    Plans round-trip through {!to_string}/{!of_string} losslessly
    (floats are printed as hex), which is what makes byte-identical
    replay from a failure report possible. *)

(** Parameters of a two-state Gilbert-Elliott burst-loss channel. The
    chain steps once per transmitted packet; the loss probability
    depends on the state {e after} the step. *)
type gilbert_elliott = {
  p_enter_bad : float;  (** good->bad transition probability *)
  p_exit_bad : float;  (** bad->good transition probability *)
  loss_good : float;  (** per-packet loss probability in the good state *)
  loss_bad : float;  (** per-packet loss probability in the bad state *)
}

type loss_model =
  | No_loss
  | Bernoulli of float  (** i.i.d. per-packet loss probability *)
  | Gilbert_elliott of gilbert_elliott

(** [step_packed model ~state rng] advances a per-link loss channel by
    one packet. [state] is the packed channel state from the previous
    call (0 initially). The result packs the successor state in the
    high bits and the "drop this packet" decision in bit 0:
    [(state' lsl 1) lor drop]. [No_loss] draws nothing from [rng], so
    installing the fault layer does not perturb fault-free RNG
    streams. *)
val step_packed : loss_model -> state:int -> Rng.t -> int

type action =
  | Link_down of int * int  (** sever the directed link [src -> dst] *)
  | Link_up of int * int  (** restore the directed link [src -> dst] *)
  | Set_loss of int * int * loss_model
      (** install (or clear, with [No_loss]) a loss channel on the
          directed link [src -> dst] *)
  | Corrupt_next of int * int
      (** mangle the next packet transmitted on the directed link
          [src -> dst] (one-shot) *)
  | Switch_fail of int  (** wipe all cached state on one switch *)
  | Gateway_down of int  (** gateway starts black-holing arrivals *)
  | Gateway_up of int  (** gateway resumes service *)
  | Churn of int
      (** migrate [n] randomly chosen VMs to random new hosts, in one
          batch (a mapping-churn storm is several of these) *)

type spec = { at : Time_ns.t; action : action }

type plan = {
  seed : int;
      (** seeds the runtime fault RNG (loss draws, churn victims) *)
  specs : spec array;  (** sorted by [at] (ties keep array order) *)
}

val empty : plan

(** [sort_specs specs] is [specs] stably sorted by firing time. *)
val sort_specs : spec array -> spec array

(** Number of distinct fault kinds, for fixed-size counter arrays. *)
val num_kinds : int

(** [kind_index action] is a dense index in [0, num_kinds). *)
val kind_index : action -> int

(** [kind_name i] is a stable label ("link_down", "churn", ...). *)
val kind_name : int -> string

(** Exact textual round-trip: ["seed=S;@T:ACTION;@T:ACTION;..."] with
    times in ns and floats in hexadecimal notation. *)
val to_string : plan -> string

val of_string : string -> (plan, string) result

(** One ["@T:ACTION"] segment, as printed by {!spec_to_string} — the
    building block callers (the scenario layer, the [--faults] CLI)
    use to report which segment of a plan failed to parse. *)
val spec_of_string : string -> (spec, string) result

val spec_to_string : spec -> string

(** [of_string_exn s] is [of_string s], raising [Invalid_argument] on
    malformed input. *)
val of_string_exn : string -> plan

val pp_action : Format.formatter -> action -> unit
