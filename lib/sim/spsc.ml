(* Single-producer / single-consumer mailbox of fixed-stride int
   records, for cross-shard event handoff in the domain-sharded
   runtime (see shard.ml).

   The bounded ring carries the common case: the producer publishes a
   record with a plain blit followed by an atomic store of [tail]; the
   consumer reads [tail] atomically and then the records plainly, so
   the ring alone is safe under concurrent push/drain (the atomics on
   [head]/[tail] order the plain buffer accesses). Overflow spills
   into a producer-owned growable vector with NO atomic protection —
   the sharded runtime only drains mailboxes at synchronization
   barriers, whose own atomics provide the happens-before edge for the
   spill (and the producer only resets it one barrier after the
   drain). Push order is preserved across the spill boundary: the ring
   is only consumed at barriers, so once a push spills, every later
   push in that window spills too — drain replays ring first, spill
   second, which is exactly FIFO.

   Record contents are opaque to this module; the owner defines the
   layout (network.ml packs a serialized packet per record). *)

type t = {
  stride : int;
  cap : int; (* ring capacity in records, a power of two *)
  buf : int array; (* cap * stride *)
  head : int Atomic.t; (* records consumed, monotone *)
  tail : int Atomic.t; (* records published, monotone *)
  mutable spill : int array; (* producer-owned overflow, stride-packed *)
  mutable spill_len : int; (* records currently in the spill *)
  mutable pushed : int; (* total records ever pushed (producer-owned) *)
}

let create ?(capacity = 1024) ~stride () =
  if stride <= 0 then invalid_arg "Spsc.create: stride must be positive";
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Spsc.create: capacity must be a power of two";
  {
    stride;
    cap = capacity;
    buf = Array.make (capacity * stride) 0;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    spill = [||];
    spill_len = 0;
    pushed = 0;
  }

let stride t = t.stride

(* [push t record] copies [record.(0 .. stride-1)] in. Producer-side
   only. *)
let push t (record : int array) =
  t.pushed <- t.pushed + 1;
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head < t.cap then begin
    Array.blit record 0 t.buf ((tail land (t.cap - 1)) * t.stride) t.stride;
    Atomic.set t.tail (tail + 1)
  end
  else begin
    if t.spill_len * t.stride = Array.length t.spill then begin
      let ncap = max (2 * Array.length t.spill) (t.stride * 64) in
      let ns = Array.make ncap 0 in
      Array.blit t.spill 0 ns 0 (t.spill_len * t.stride);
      t.spill <- ns
    end;
    Array.blit record 0 t.spill (t.spill_len * t.stride) t.stride;
    t.spill_len <- t.spill_len + 1
  end

(* [drain t f] consumes every published record in FIFO order, calling
   [f buf off] with a stride-record at offset [off]. Consumer-side
   only; including the spill is only safe at a barrier (see above). *)
let drain t f =
  let head = Atomic.get t.head and tail = Atomic.get t.tail in
  if tail > head then begin
    let m = t.cap - 1 in
    for i = head to tail - 1 do
      f t.buf ((i land m) * t.stride)
    done;
    Atomic.set t.head tail
  end;
  for j = 0 to t.spill_len - 1 do
    f t.spill (j * t.stride)
  done

(* [reset_spill t] forgets drained spill records. Producer-side, and
   only once a barrier separates it from the consumer's drain. *)
let reset_spill t = t.spill_len <- 0

let pushed t = t.pushed
