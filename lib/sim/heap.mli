(** Struct-of-arrays binary min-heap keyed by integer priority.

    The simulator's event queue: [O(log n)] push/pop, O(1) peek. Ties
    are broken by insertion order (FIFO among equal keys) so that
    simultaneous events execute deterministically in the order they
    were scheduled.

    Keys and tie-break sequence numbers live in unboxed [int] arrays
    and payloads in a third parallel array, so {!push} allocates
    nothing once the backing storage exists. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [length t] is the number of queued elements. *)
val length : 'a t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool

(** [push t key v] queues [v] with priority [key]. Allocation-free
    unless the backing arrays must grow. *)
val push : 'a t -> int -> 'a -> unit

(** [reserve t n] pre-sizes the backing arrays for at least [n]
    elements, avoiding the first few doubling copies on a heap whose
    eventual size is known. A no-op if already large enough. *)
val reserve : 'a t -> int -> unit

(** [pop t] removes and returns the minimum-key element as
    [(key, v)]. Raises [Not_found] on an empty heap. *)
val pop : 'a t -> int * 'a

(** [peek_key t] is the minimum key without removing it.
    Raises [Not_found] on an empty heap. *)
val peek_key : 'a t -> int

(** [peek t] is the minimum-key payload without removing it.
    Raises [Not_found] on an empty heap. *)
val peek : 'a t -> 'a

(** [drop_min t] removes the minimum element without returning it
    (allocation-free pop: pair with {!peek_key}/{!peek}).
    Raises [Not_found] on an empty heap. *)
val drop_min : 'a t -> unit

(** [clear t] removes all elements and resets the tie-breaking
    sequence counter, so a cleared heap behaves exactly like a fresh
    one (FIFO order among equal keys restarts from zero). The backing
    storage is kept, so a reused heap does not re-pay {!reserve}. *)
val clear : 'a t -> unit
