(** Array-backed binary min-heap keyed by integer priority.

    The simulator's event queue: [O(log n)] push/pop, amortized O(1)
    peek. Ties are broken by insertion order (FIFO among equal keys) so
    that simultaneous events execute deterministically in the order
    they were scheduled. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [length t] is the number of queued elements. *)
val length : 'a t -> int

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool

(** [push t key v] queues [v] with priority [key]. *)
val push : 'a t -> int -> 'a -> unit

(** [reserve t n] pre-sizes the backing array for at least [n]
    elements, avoiding the first few doubling copies on a heap whose
    eventual size is known. A no-op if already large enough. *)
val reserve : 'a t -> int -> unit

(** [pop t] removes and returns the minimum-key element as
    [(key, v)]. Raises [Not_found] on an empty heap. *)
val pop : 'a t -> int * 'a

(** [peek_key t] is the minimum key without removing it.
    Raises [Not_found] on an empty heap. *)
val peek_key : 'a t -> int

(** [clear t] removes all elements and resets the tie-breaking
    sequence counter, so a cleared heap behaves exactly like a fresh
    one (FIFO order among equal keys restarts from zero). *)
val clear : 'a t -> unit
