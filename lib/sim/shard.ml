(* Conservative-lookahead parallel runtime: one engine per OCaml
   domain, advanced in lock-step windows.

   Protocol. All shards repeatedly agree on the global minimum pending
   timestamp [m] and then execute their local events in the window
   [m, m + lookahead) concurrently. Any event a shard hands to a peer
   mid-window (through an {!Spsc} mailbox) must carry a timestamp at
   least [send_time + lookahead] — for the network layer the lookahead
   is the minimum cross-shard link propagation delay, so this is the
   classic conservative (null-message-free) bound: nothing generated
   inside a window can land inside that same window, on any shard.
   Each iteration is then:

     drain inboxes -> publish next_at -> BARRIER A ->
       m := min over shards;
       if m > until then advance clocks to until and stop
       else run_until (min (m + lookahead, until+1) - 1) -> BARRIER C

   Barrier A orders every publish before every read of [m] (all shards
   compute the same [m], so they take the same branch and the barrier
   counts stay aligned — including unanimous exit). Barrier C ends the
   window: it orders all mid-window mailbox pushes before the next
   iteration's drains, which is what makes the drained message set —
   and therefore the merged execution order — deterministic. A shard
   resets its outbox spills right after barrier A, i.e. one full
   barrier after the consumer drained them.

   Determinism. Within a shard the engine preserves its byte-identical
   (key, seq) dispatch contract. Across shards, every drain consumes
   inboxes in fixed source order 0..n-1 and FIFO within each, so
   cross-shard ties at a timestamp resolve by (key, src_shard,
   arrival_seq) — a fixed shard count replays byte-identically from a
   seed. Wall-clock scheduling never affects the message sets a drain
   observes, because drains happen only between barriers.

   Barrier. Generation-counting with a bounded spin before parking on
   a Mutex/Condition pair: on a machine with spare cores the spin path
   costs ~a cache miss, while an oversubscribed machine (more shards
   than cores — e.g. CI smoke on small runners) degrades to condvar
   wakeups instead of burning whole scheduler quanta spinning. *)

type barrier = {
  n : int;
  count : int Atomic.t;
  gen : int Atomic.t;
  mu : Mutex.t;
  cv : Condition.t;
}

let make_barrier n =
  {
    n;
    count = Atomic.make 0;
    gen = Atomic.make 0;
    mu = Mutex.create ();
    cv = Condition.create ();
  }

let spin_limit = 4096

let await b =
  let gen = Atomic.get b.gen in
  if Atomic.fetch_and_add b.count 1 = b.n - 1 then begin
    Atomic.set b.count 0;
    Atomic.incr b.gen;
    (* The empty lock/unlock orders the generation bump against any
       waiter that checked the generation and is about to park, so the
       broadcast cannot be missed. *)
    Mutex.lock b.mu;
    Mutex.unlock b.mu;
    Condition.broadcast b.cv
  end
  else begin
    let spins = ref 0 in
    while Atomic.get b.gen = gen && !spins < spin_limit do
      incr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get b.gen = gen then begin
      Mutex.lock b.mu;
      while Atomic.get b.gen = gen do
        Condition.wait b.cv b.mu
      done;
      Mutex.unlock b.mu
    end
  end

let run ~lookahead ~until ~(engines : Engine.t array) ~drain ~begin_window =
  if lookahead <= 0 then invalid_arg "Shard.run: lookahead must be positive";
  let n = Array.length engines in
  if n = 0 then invalid_arg "Shard.run: no engines";
  let bar = make_barrier n in
  let next = Array.init n (fun _ -> Atomic.make max_int) in
  let windows = ref 0 in
  let worker shard =
    let e = engines.(shard) in
    let continue = ref true in
    while !continue do
      drain ~shard;
      Atomic.set next.(shard) (Engine.next_at e);
      await bar;
      (* Every shard reads the same published values and computes the
         same [m]; re-publication only happens after barrier C of this
         iteration, which cannot complete before these reads do. *)
      let m = ref max_int in
      for i = 0 to n - 1 do
        let v = Atomic.get next.(i) in
        if v < !m then m := v
      done;
      if !m > until then begin
        (* Nothing pending at or before the horizon anywhere: advance
           the local clock and exit — unanimously, keeping barrier
           arrival counts aligned. *)
        Engine.run_until e ~limit:until;
        continue := false
      end
      else begin
        begin_window ~shard;
        if shard = 0 then incr windows;
        (* Window [m, m + lookahead), clipped to the horizon. Events
           generated inside it have timestamps >= m + lookahead >
           wend, so they cannot execute before the next drain. *)
        let wend =
          if !m + lookahead - 1 < until then !m + lookahead - 1 else until
        in
        Engine.run_until e ~limit:wend;
        await bar
      end
    done
  in
  let domains =
    Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  Array.iter Domain.join domains;
  !windows
