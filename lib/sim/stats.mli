(** Online statistics accumulators for experiment metrics. *)

module Summary : sig
  (** Streaming mean / min / max / count. O(1) memory. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** [min t] / [max t] raise [Not_found] when no samples were added. *)
  val min : t -> float

  val max : t -> float
  val sum : t -> float

  (** [merge a b] is a fresh summary equivalent to having added both
      sample streams to one accumulator. Exact and commutative. *)
  val merge : t -> t -> t
end

module Reservoir : sig
  (** Sample store with exact percentiles. Keeps every sample by
      default (our experiments produce at most a few hundred thousand
      samples), or a uniform reservoir when [capacity] is given. *)

  type t

  val create : ?capacity:int -> Rng.t -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** [percentile t p] with [p] in [0,100]; exact over stored samples
      (nearest-rank). Raises [Not_found] when empty. *)
  val percentile : t -> float -> float

  (** [merge a b] is a fresh reservoir holding both sample sets —
      count, mean and percentiles all match single-stream accounting,
      in either argument order. Only defined for unbounded reservoirs
      (no [capacity]); raises [Invalid_argument] otherwise, since a
      subsampled reservoir has no exact merge. *)
  val merge : t -> t -> t
end

module Counter : sig
  (** Named integer counters, e.g. per-switch byte counts. *)

  type t

  val create : unit -> t
  val incr : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
end
