(** Single-producer / single-consumer mailbox of fixed-stride int
    records, used for cross-shard event handoff by {!Shard}.

    A bounded ring (atomic head/tail over a plain int buffer) with a
    producer-owned overflow spill. Ring pushes and drains are safe
    under concurrency; the spill is only safe to drain at a
    synchronization barrier, which is the only place the sharded
    runtime drains mailboxes. FIFO order is preserved end to end. *)

type t

(** [create ~stride ()] — records are [stride] ints; [capacity] is the
    ring size in records (power of two, default 1024). Raises
    [Invalid_argument] on a non-positive stride or non-power-of-two
    capacity. *)
val create : ?capacity:int -> stride:int -> unit -> t

val stride : t -> int

(** [push t record] copies [record.(0..stride-1)] into the mailbox.
    Producer-side only; never blocks (overflow goes to the spill). *)
val push : t -> int array -> unit

(** [drain t f] consumes all published records in push order, calling
    [f buf off] for each record at offset [off] of [buf]. Consumer-side
    only, and only at a barrier (the spill is unsynchronized). *)
val drain : t -> (int array -> int -> unit) -> unit

(** [reset_spill t] releases drained spill storage for reuse.
    Producer-side, one barrier after the consumer's drain. *)
val reset_spill : t -> unit

(** [pushed t] — total records ever pushed (producer-side counter). *)
val pushed : t -> int
