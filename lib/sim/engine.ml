type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : Time_ns.t;
  mutable executed : int;
}

let create ?(reserve = 4096) () =
  let queue = Heap.create () in
  Heap.reserve queue reserve;
  { queue; clock = Time_ns.zero; executed = 0 }
let now t = t.clock

let schedule t ~at f =
  if Time_ns.compare at t.clock < 0 then
    invalid_arg "Engine.schedule: event in the past";
  Heap.push t.queue at f

let schedule_after t ~delay f = schedule t ~at:(Time_ns.add t.clock delay) f

let step t =
  let at, f = Heap.pop t.queue in
  t.clock <- at;
  t.executed <- t.executed + 1;
  f ()

let run t =
  while not (Heap.is_empty t.queue) do
    step t
  done

let run_until t ~limit =
  let continue = ref true in
  while !continue do
    if Heap.is_empty t.queue || Heap.peek_key t.queue > limit then
      continue := false
    else step t
  done;
  t.clock <- Time_ns.max t.clock limit

let pending t = Heap.length t.queue
let executed t = t.executed
