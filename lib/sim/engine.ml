(* Two scheduler backends share one engine, selected at [create] (or by
   REPRO_SCHED, default "wheel"):

   - [Heap]: the original binary heap of fixed-stride records
     interleaved in ONE unboxed int array: slot i occupies
     ev.[stride*i .. stride*i+4] as (key, seq, code, a, b).
     Interleaving matters: a heap node is then a single cache line,
     where parallel per-field arrays cost five cache touches per node
     visited during a sift. O(log n) per op; kept as the reference
     oracle for differential tests.

   - [Wheel]: a calendar queue / timing wheel over the same record
     layout. Time is quantized into buckets of 2^shift ns; the window
     [cur_bk, cur_bk + nbuckets) of quanta maps injectively onto the
     bucket array (one quantum per bucket at a time), so an enqueue is
     an append — five adjacent stores plus a length bump. Events
     beyond the window land in an overflow heap (the same sift code as
     the Heap backend) and are lazily demoted into buckets when the
     cursor reaches them. Dequeue drains one whole bucket into a flat
     scratch "run", sorts it once by (key, seq), and then dispatches
     the run as a batch with the handler load hoisted out of the
     per-event loop. Enqueue and dequeue are O(1) amortized for the
     heavily time-clustered horizons a packet simulator produces.

   Both backends execute events in exactly (key, seq) order — FIFO
   among timestamp ties, across both event forms — so transcripts are
   byte-identical between them (the golden tests and the QCheck
   differential test in test_dessim.ml enforce this). The subtle
   cases the wheel handles to keep that guarantee:

   - A handler scheduling an event into the quantum currently being
     dispatched (including at the current timestamp): the event goes
     to a small (key, seq) side min-heap that dispatch merges
     head-to-head with the sorted run, so a mid-batch enqueue is
     O(log backlog) however wide the quantum.
   - Overflow demotion appending into a bucket that already holds
     events with equal keys but larger seqs: the drain sort compares
     (key, seq), never relying on append order.

   Closures never enter either queue: a thunk event stores its closure
   in a free-listed side table and queues the slot index as an
   operand. Keeping the queue all-int means sifting and sorting
   perform no pointer stores, so the hot path never runs the GC write
   barrier ([caml_modify]) — which profiling showed dominating a heap
   with an in-line closure lane. *)

type handler = code:int -> a:int -> b:int -> unit


type sched = Heap | Wheel

(* Codes are >= 0 for typed events; [thunk_code] marks closure events
   (whose [a] operand is the thunk-table slot). *)
let thunk_code = -1

let stride = 5

let nop () = ()

let sched_name = function Heap -> "heap" | Wheel -> "wheel"

let sched_of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None

let default_sched () =
  match Sys.getenv_opt "REPRO_SCHED" with
  | None | Some "" -> Wheel
  | Some s -> (
      match sched_of_string s with
      | Some sched -> sched
      | None ->
          invalid_arg
            (Printf.sprintf "REPRO_SCHED=%S: expected \"heap\" or \"wheel\"" s))

let no_handler ~code ~a:_ ~b:_ =
  invalid_arg
    (Printf.sprintf
       "Engine: typed event %d scheduled but no handler installed" code)

type t = {
  sched : sched;
  mutable size : int; (* total queued events, all structures *)
  mutable next_seq : int;
  mutable clock : Time_ns.t;
  mutable executed : int;
  mutable handler : handler;
  (* Binary heap: the whole queue (Heap) or the far-future overflow
     (Wheel). stride fields per event, see above. *)
  mutable ev : int array;
  mutable heap_size : int;
  (* Calendar wheel (zero-sized under Heap). [buckets.(i)]/
     [bucket_len.(i)] is a growable record vector; [occ] is a
     32-bits-per-word bitmap of non-empty buckets; [cur_bk] is the
     monotone cursor in quantum units; [run]/[run_pos]/[run_len] is
     the sorted batch currently being dispatched, holding quantum
     [run_bk] (-1 when inactive); [scratch] is the merge-sort
     buffer. *)
  shift : int;
  mask : int;
  buckets : int array array;
  bucket_len : int array;
  occ : int array;
  mutable cur_bk : int;
  mutable run : int array;
  mutable run_len : int;
  mutable run_pos : int;
  mutable run_bk : int;
  mutable scratch : int array;
  (* Same-quantum arrivals while the run is being dispatched: a small
     (key, seq) min-heap merged head-to-head with the sorted run, so a
     mid-batch enqueue is O(log backlog) however wide the quantum. *)
  mutable side : int array;
  mutable side_size : int;
  (* Side table for thunk events: slot -> closure, plus a stack of free
     slots. Both arrays grow together, so [thunk_free_top <= thunk_len
     <= capacity] always holds. *)
  mutable thunks : (unit -> unit) array;
  mutable thunk_len : int;
  mutable thunk_free : int array;
  mutable thunk_free_top : int;
}

(* Default geometry: 2^14 ns (~16 us) quanta over 64 buckets — a
   ~1 ms in-window horizon, sized so link/gateway/transport delays
   (us-scale) and the 500 us RTO stay in the wheel while fault-plan
   (ms-scale) events take the overflow path. Few wide buckets beat
   many narrow ones here: the forwarding path's us-scale hop delays
   then share buckets (bigger batches, fewer cursor steps) and the
   bucket working set stays cache-resident. Swept on both the
   scheduler microbench and `bench eventcore`; see BENCH_eventcore.json
   and the REPRO_WHEEL_SHIFT / REPRO_WHEEL_BUCKETS overrides. *)
let default_wheel_shift = 14
let default_wheel_buckets = 64

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "%s=%S: expected an integer" name s))

let create ?(reserve = 4096) ?sched ?wheel_shift ?wheel_buckets () =
  let sched = match sched with Some s -> s | None -> default_sched () in
  let wheel_shift =
    match wheel_shift with
    | Some s -> s
    | None -> env_int "REPRO_WHEEL_SHIFT" default_wheel_shift
  in
  let wheel_buckets =
    match wheel_buckets with
    | Some b -> b
    | None -> env_int "REPRO_WHEEL_BUCKETS" default_wheel_buckets
  in
  if wheel_shift < 0 || wheel_shift > 30 then
    invalid_arg "Engine.create: wheel_shift out of range";
  if wheel_buckets < 32 || wheel_buckets land (wheel_buckets - 1) <> 0 then
    invalid_arg "Engine.create: wheel_buckets must be a power of two >= 32";
  let cap = max reserve 1 in
  let nb = if sched = Wheel then wheel_buckets else 0 in
  {
    sched;
    size = 0;
    next_seq = 0;
    clock = Time_ns.zero;
    executed = 0;
    handler = no_handler;
    ev = Array.make (stride * cap) 0;
    heap_size = 0;
    shift = wheel_shift;
    mask = nb - 1;
    buckets = Array.make nb [||];
    bucket_len = Array.make nb 0;
    occ = Array.make (nb lsr 5) 0;
    cur_bk = 0;
    run = (if sched = Wheel then Array.make (stride * 64) 0 else [||]);
    run_len = 0;
    run_pos = 0;
    run_bk = -1;
    scratch = [||];
    side = [||];
    side_size = 0;
    thunks = Array.make 64 nop;
    thunk_len = 0;
    thunk_free = Array.make 64 0;
    thunk_free_top = 0;
  }

let now t = t.clock
let set_handler t h = t.handler <- h
let sched t = t.sched

let thunk_grow t =
  let cap = Array.length t.thunks in
  let ncap = cap * 2 in
  let nthunks = Array.make ncap nop in
  Array.blit t.thunks 0 nthunks 0 t.thunk_len;
  t.thunks <- nthunks;
  let nfree = Array.make ncap 0 in
  Array.blit t.thunk_free 0 nfree 0 t.thunk_free_top;
  t.thunk_free <- nfree

let thunk_store t f =
  let slot =
    if t.thunk_free_top > 0 then begin
      t.thunk_free_top <- t.thunk_free_top - 1;
      t.thunk_free.(t.thunk_free_top)
    end
    else begin
      if t.thunk_len = Array.length t.thunks then thunk_grow t;
      let s = t.thunk_len in
      t.thunk_len <- s + 1;
      s
    end
  in
  t.thunks.(slot) <- f;
  slot

(* --- binary heap (full queue under Heap, overflow under Wheel) -------

   The sift loops use unsafe array access, applied directly so the
   compiler emits the specialized inline load/store (an aliased
   [Array.unsafe_get] degrades to the generic out-of-line primitive).
   Every index is [stride * h + f] with [h < t.heap_size <=
   length/stride] and [f < stride], maintained by the heap shape
   invariant — the bounds checks were pure overhead on the hottest
   loop in the simulator.

   The [int array] annotations on the helpers that take the record
   array as a parameter are load-bearing: left unannotated the
   parameter generalizes to ['a array] and every key comparison
   compiles to a polymorphic-compare C call (measured 5x slower on
   the scheduler microbench). *)

(* Sift up from record slot [idx], moving later events down into the
   hole. Generic over the backing array: the Heap backend's queue, the
   wheel's overflow heap, and the wheel's same-quantum side heap all
   share this code. *)
let sift_up (ev : int array) idx ~at ~seq ~code ~a ~b =
  let i = ref (stride * idx) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = stride * (((!i / stride) - 1) / 2) in
    let pk = Array.unsafe_get ev parent in
    if at < pk || (at = pk && seq < Array.unsafe_get ev (parent + 1)) then begin
      Array.unsafe_set ev !i pk;
      Array.unsafe_set ev (!i + 1) (Array.unsafe_get ev (parent + 1));
      Array.unsafe_set ev (!i + 2) (Array.unsafe_get ev (parent + 2));
      Array.unsafe_set ev (!i + 3) (Array.unsafe_get ev (parent + 3));
      Array.unsafe_set ev (!i + 4) (Array.unsafe_get ev (parent + 4));
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set ev !i at;
  Array.unsafe_set ev (!i + 1) seq;
  Array.unsafe_set ev (!i + 2) code;
  Array.unsafe_set ev (!i + 3) a;
  Array.unsafe_set ev (!i + 4) b

(* Remove the root of an [n]-record heap: re-insert the last element
   from the top, moving earlier children up into the hole. The caller
   reads the root fields before calling and decrements its count
   after. *)
let sift_delete_min (ev : int array) n =
  let n = n - 1 in
  let last = stride * n in
  let key = Array.unsafe_get ev last
  and seq = Array.unsafe_get ev (last + 1)
  and code = Array.unsafe_get ev (last + 2)
  and a = Array.unsafe_get ev (last + 3)
  and b = Array.unsafe_get ev (last + 4) in
  if n > 0 then begin
    let sn = stride * n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + stride in
      if l >= sn then continue := false
      else begin
        let r = l + stride in
        let c =
          if
            r < sn
            && (Array.unsafe_get ev r < Array.unsafe_get ev l
               || (Array.unsafe_get ev r = Array.unsafe_get ev l
                  && Array.unsafe_get ev (r + 1) < Array.unsafe_get ev (l + 1))
               )
          then r
          else l
        in
        let ck = Array.unsafe_get ev c in
        if ck < key || (ck = key && Array.unsafe_get ev (c + 1) < seq) then begin
          Array.unsafe_set ev !i ck;
          Array.unsafe_set ev (!i + 1) (Array.unsafe_get ev (c + 1));
          Array.unsafe_set ev (!i + 2) (Array.unsafe_get ev (c + 2));
          Array.unsafe_set ev (!i + 3) (Array.unsafe_get ev (c + 3));
          Array.unsafe_set ev (!i + 4) (Array.unsafe_get ev (c + 4));
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set ev !i key;
    Array.unsafe_set ev (!i + 1) seq;
    Array.unsafe_set ev (!i + 2) code;
    Array.unsafe_set ev (!i + 3) a;
    Array.unsafe_set ev (!i + 4) b
  end

let heap_grow t =
  let nev = Array.make (2 * Array.length t.ev) 0 in
  Array.blit t.ev 0 nev 0 (stride * t.heap_size);
  t.ev <- nev

let heap_push t ~at ~seq ~code ~a ~b =
  if stride * t.heap_size = Array.length t.ev then heap_grow t;
  let n = t.heap_size in
  t.heap_size <- n + 1;
  sift_up t.ev n ~at ~seq ~code ~a ~b

let heap_remove_min t =
  let n = t.heap_size in
  t.heap_size <- n - 1;
  sift_delete_min t.ev n

(* Side heap: events landing in the quantum currently being dispatched
   (see [wheel_drain]). *)
let side_push t ~at ~seq ~code ~a ~b =
  if stride * t.side_size = Array.length t.side then begin
    let ncap = max (2 * Array.length t.side) (stride * 8) in
    let ns = Array.make ncap 0 in
    Array.blit t.side 0 ns 0 (stride * t.side_size);
    t.side <- ns
  end;
  let n = t.side_size in
  t.side_size <- n + 1;
  sift_up t.side n ~at ~seq ~code ~a ~b

let side_remove_min t =
  let n = t.side_size in
  t.side_size <- n - 1;
  sift_delete_min t.side n

(* --- calendar wheel --------------------------------------------------- *)

let occ_set t idx =
  let w = idx lsr 5 in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (idx land 31))

let occ_clear t idx =
  let w = idx lsr 5 in
  t.occ.(w) <- t.occ.(w) land lnot (1 lsl (idx land 31))

(* Index of the (single) set bit of [b], for 32-bit words. *)
let bit_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFF = 0 then begin
    i := 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    i := !i + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    i := !i + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    i := !i + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr i;
  !i

(* Smallest quantum >= cur_bk with a non-empty bucket. The caller
   guarantees at least one bucket is occupied; the circular bitmap
   scan touches at most nbuckets/32 + 1 words. Top-level recursion
   with explicit parameters: a local [rec] closure would allocate its
   environment on every batch. *)
let rec occ_scan occ words w0 b0 k =
  let wi =
    let w = w0 + k in
    if w >= words then w - words else w
  in
  let bits = Array.unsafe_get occ wi in
  let bits =
    if k = 0 then bits land ((-1) lsl b0)
    else if k = words then bits land lnot ((-1) lsl b0)
    else bits
  in
  if bits = 0 then occ_scan occ words w0 b0 (k + 1)
  else (wi lsl 5) lor bit_index (bits land (-bits))

let next_occupied t =
  let start = t.cur_bk land t.mask in
  let idx = occ_scan t.occ (Array.length t.occ) (start lsr 5) (start land 31) 0 in
  t.cur_bk + ((idx - start) land t.mask)

let bucket_push t ~bk ~at ~seq ~code ~a ~b =
  let idx = bk land t.mask in
  let len = t.bucket_len.(idx) in
  let arr = t.buckets.(idx) in
  let arr =
    if stride * len = Array.length arr then begin
      let ncap = if len = 0 then 8 else 2 * len in
      let narr = Array.make (stride * ncap) 0 in
      Array.blit arr 0 narr 0 (stride * len);
      t.buckets.(idx) <- narr;
      narr
    end
    else arr
  in
  if len = 0 then occ_set t idx;
  let p = stride * len in
  Array.unsafe_set arr p at;
  Array.unsafe_set arr (p + 1) seq;
  Array.unsafe_set arr (p + 2) code;
  Array.unsafe_set arr (p + 3) a;
  Array.unsafe_set arr (p + 4) b;
  t.bucket_len.(idx) <- len + 1

let run_reserve t n =
  if stride * n > Array.length t.run then begin
    let cap = ref (max (Array.length t.run) (stride * 64)) in
    while !cap < stride * n do
      cap := !cap * 2
    done;
    let nr = Array.make !cap 0 in
    Array.blit t.run 0 nr 0 (stride * t.run_len);
    t.run <- nr
  end

(* In-place insertion sort of records [lo..hi] (inclusive) by
   (key, seq). Bucket appends are usually already in dispatch order,
   which insertion sort exploits. *)
let insertion_sort (a : int array) lo hi =
  for i = lo + 1 to hi do
    let p = stride * i in
    let k = Array.unsafe_get a p
    and s = Array.unsafe_get a (p + 1)
    and c = Array.unsafe_get a (p + 2)
    and x = Array.unsafe_get a (p + 3)
    and y = Array.unsafe_get a (p + 4) in
    let j = ref (i - 1) in
    let continue = ref true in
    while !continue && !j >= lo do
      let q = stride * !j in
      let kj = Array.unsafe_get a q in
      if kj > k || (kj = k && Array.unsafe_get a (q + 1) > s) then begin
        Array.unsafe_set a (q + stride) kj;
        Array.unsafe_set a (q + stride + 1) (Array.unsafe_get a (q + 1));
        Array.unsafe_set a (q + stride + 2) (Array.unsafe_get a (q + 2));
        Array.unsafe_set a (q + stride + 3) (Array.unsafe_get a (q + 3));
        Array.unsafe_set a (q + stride + 4) (Array.unsafe_get a (q + 4));
        decr j
      end
      else continue := false
    done;
    let q = stride * (!j + 1) in
    Array.unsafe_set a q k;
    Array.unsafe_set a (q + 1) s;
    Array.unsafe_set a (q + 2) c;
    Array.unsafe_set a (q + 3) x;
    Array.unsafe_set a (q + 4) y
  done

(* Stable (key, seq) merge of record ranges [lo,mid) and [mid,hi). *)
let merge_records (src : int array) (dst : int array) lo mid hi =
  let i = ref lo and j = ref mid in
  for k = lo to hi - 1 do
    let take_left =
      if !i >= mid then false
      else if !j >= hi then true
      else begin
        let pi = stride * !i and pj = stride * !j in
        let ki = Array.unsafe_get src pi and kj = Array.unsafe_get src pj in
        ki < kj
        || (ki = kj && Array.unsafe_get src (pi + 1) < Array.unsafe_get src (pj + 1))
      end
    in
    let s = if take_left then !i else !j in
    let ps = stride * s and pk = stride * k in
    Array.unsafe_set dst pk (Array.unsafe_get src ps);
    Array.unsafe_set dst (pk + 1) (Array.unsafe_get src (ps + 1));
    Array.unsafe_set dst (pk + 2) (Array.unsafe_get src (ps + 2));
    Array.unsafe_set dst (pk + 3) (Array.unsafe_get src (ps + 3));
    Array.unsafe_set dst (pk + 4) (Array.unsafe_get src (ps + 4));
    if take_left then incr i else incr j
  done

(* Sort run.[0..n) by (key, seq): insertion sort for small batches,
   bottom-up merge sort (16-record insertion-sorted blocks) above. The
   scratch buffer is engine-owned, so steady state allocates
   nothing. *)
let sort_run t n =
  if n <= 32 then insertion_sort t.run 0 (n - 1)
  else begin
    if stride * n > Array.length t.scratch then
      t.scratch <- Array.make (max (stride * n) (2 * Array.length t.scratch)) 0;
    let i = ref 0 in
    while !i < n do
      insertion_sort t.run !i (min (!i + 15) (n - 1));
      i := !i + 16
    done;
    let src = ref t.run and dst = ref t.scratch in
    let width = ref 16 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        merge_records !src !dst !lo mid hi;
        lo := hi
      done;
      let tmp = !src in
      src := !dst;
      dst := tmp;
      width := !width * 2
    done;
    if !src != t.run then begin
      (* The sorted records ended in the scratch buffer: swap roles. *)
      t.scratch <- t.run;
      t.run <- !src
    end
  end

(* Load the next batch into the run. Returns false when no queued
   event falls at or before [limit]. The cursor only ever advances to
   a quantum actually being drained, so [cur_bk <= clock >> shift]
   always holds — which is what keeps the window invariant
   [resident bk ∈ [cur_bk, cur_bk + nbuckets)] for every enqueue
   (enqueues require [at >= clock]). *)
let ensure_run t ~limit =
  if t.run_pos < t.run_len || t.side_size > 0 then true
  else begin
    t.run_pos <- 0;
    t.run_len <- 0;
    t.run_bk <- -1;
    if t.size = 0 then false
    else begin
      let q =
        if t.size - t.heap_size > 0 then begin
          let bq = next_occupied t in
          if t.heap_size > 0 then begin
            let oq = Array.unsafe_get t.ev 0 lsr t.shift in
            if oq < bq then oq else bq
          end
          else bq
        end
        else Array.unsafe_get t.ev 0 lsr t.shift
      in
      if q > limit lsr t.shift then begin
        (* The next pending quantum starts beyond [limit]: park.
           Advancing the cursor to limit's quantum is safe — it stays
           at or below every pending event's quantum. *)
        let lim_bk = limit lsr t.shift in
        if lim_bk > t.cur_bk then t.cur_bk <- lim_bk;
        false
      end
      else begin
        t.cur_bk <- q;
        (* Lazy demotion: far-future events now inside the window move
           from the overflow heap into their buckets. *)
        let horizon = q + t.mask + 1 in
        while t.heap_size > 0 && Array.unsafe_get t.ev 0 lsr t.shift < horizon do
          let ev = t.ev in
          let at = ev.(0)
          and seq = ev.(1)
          and code = ev.(2)
          and a = ev.(3)
          and b = ev.(4) in
          heap_remove_min t;
          bucket_push t ~bk:(at lsr t.shift) ~at ~seq ~code ~a ~b
        done;
        (* Drain bucket q — non-empty by choice of q — and sort. *)
        let idx = q land t.mask in
        let len = t.bucket_len.(idx) in
        run_reserve t len;
        Array.blit t.buckets.(idx) 0 t.run 0 (stride * len);
        t.bucket_len.(idx) <- 0;
        occ_clear t idx;
        t.run_len <- len;
        t.run_pos <- 0;
        t.run_bk <- q;
        (* Bucket appends are chronological except around overflow
           demotion, so the run is usually already in (key, seq)
           order — detect that in one cheap pass and skip the sort. *)
        if len > 1 then begin
          let run = t.run in
          let sorted = ref true in
          let i = ref 1 in
          while !sorted && !i < len do
            let p = stride * !i in
            let kp = Array.unsafe_get run (p - stride)
            and k = Array.unsafe_get run p in
            if
              kp > k
              || (kp = k
                 && Array.unsafe_get run (p - stride + 1)
                    > Array.unsafe_get run (p + 1))
            then sorted := false
            else incr i
          done;
          if not !sorted then sort_run t len
        end;
        true
      end
    end
  end

(* --- shared enqueue --------------------------------------------------- *)

let enqueue t ~at ~code ~a ~b =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  match t.sched with
  | Heap -> heap_push t ~at ~seq ~code ~a ~b
  | Wheel ->
      let bk = at lsr t.shift in
      if bk = t.run_bk then side_push t ~at ~seq ~code ~a ~b
      else if bk - t.cur_bk <= t.mask then bucket_push t ~bk ~at ~seq ~code ~a ~b
      else heap_push t ~at ~seq ~code ~a ~b

let schedule t ~at f =
  (* Validate before storing the thunk so a rejected schedule does not
     leak a table slot. *)
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  enqueue t ~at ~code:thunk_code ~a:(thunk_store t f) ~b:0

let schedule_after t ~delay f = schedule t ~at:(Time_ns.add t.clock delay) f

let schedule_event t ~at ~code ~a ~b =
  if code < 0 then invalid_arg "Engine.schedule_event: negative code";
  enqueue t ~at ~code ~a ~b

let schedule_event_after t ~delay ~code ~a ~b =
  schedule_event t ~at:(Time_ns.add t.clock delay) ~code ~a ~b

(* --- dispatch --------------------------------------------------------- *)

let exec_thunk t slot =
  let f = t.thunks.(slot) in
  t.thunks.(slot) <- nop;
  t.thunk_free.(t.thunk_free_top) <- slot;
  t.thunk_free_top <- t.thunk_free_top + 1;
  f ()

let heap_step t =
  let ev = t.ev in
  let at = ev.(0) in
  let code = ev.(2) in
  let a = ev.(3) in
  let b = ev.(4) in
  heap_remove_min t;
  t.size <- t.size - 1;
  t.clock <- at;
  t.executed <- t.executed + 1;
  if code >= 0 then t.handler ~code ~a ~b else exec_thunk t a

(* Batched drain: dispatch whole same-quantum runs with the handler
   load hoisted out of the per-event loop. The run array is fixed for
   the whole batch (mid-batch arrivals go to the side heap, which a
   handler's enqueue may grow/reallocate — hence [t.side] is re-read
   every iteration). The side heap is consulted with a single length
   test per event when empty, and merged head-to-head by (key, seq)
   when not. A handler swap via [set_handler] mid-run takes effect at
   the next batch. *)
let wheel_drain t ~limit =
  let more = ref true in
  while !more && ensure_run t ~limit do
    let h = t.handler in
    let batch = ref true in
    while !batch && (t.run_pos < t.run_len || t.side_size > 0) do
      let run = t.run in
      let p = stride * t.run_pos in
      let from_side =
        t.side_size > 0
        && (t.run_pos >= t.run_len
           ||
           let side = t.side in
           let sk = Array.unsafe_get side 0
           and rk = Array.unsafe_get run p in
           sk < rk
           || (sk = rk
              && Array.unsafe_get side 1 < Array.unsafe_get run (p + 1)))
      in
      if from_side then begin
        let side = t.side in
        let at = Array.unsafe_get side 0 in
        if at > limit then begin
          batch := false;
          more := false
        end
        else begin
          let code = Array.unsafe_get side 2 in
          let a = Array.unsafe_get side 3 in
          let b = Array.unsafe_get side 4 in
          side_remove_min t;
          t.size <- t.size - 1;
          t.clock <- at;
          t.executed <- t.executed + 1;
          if code >= 0 then h ~code ~a ~b else exec_thunk t a
        end
      end
      else begin
        let at = Array.unsafe_get run p in
        if at > limit then begin
          batch := false;
          more := false
        end
        else begin
          let code = Array.unsafe_get run (p + 2) in
          let a = Array.unsafe_get run (p + 3) in
          let b = Array.unsafe_get run (p + 4) in
          t.run_pos <- t.run_pos + 1;
          t.size <- t.size - 1;
          t.clock <- at;
          t.executed <- t.executed + 1;
          if code >= 0 then h ~code ~a ~b else exec_thunk t a
        end
      end
    done
  done

let run t =
  match t.sched with
  | Heap ->
      while t.heap_size > 0 do
        heap_step t
      done
  | Wheel -> wheel_drain t ~limit:max_int

let run_until t ~limit =
  (match t.sched with
  | Heap ->
      (* Int comparison directly on the root key: the old polymorphic
         [>] ran the generic comparison once per event. *)
      while t.heap_size > 0 && t.ev.(0) <= limit do
        heap_step t
      done
  | Wheel -> wheel_drain t ~limit);
  t.clock <- Time_ns.max t.clock limit

let pending t = t.size
let executed t = t.executed

(* Earliest pending timestamp, or [max_int] when the queue is empty.
   Under [Wheel] the minimum ranges over four structures: the sorted
   run's head (a [run_until] can park mid-run), the same-quantum side
   heap, the earliest occupied bucket (the window maps quanta onto
   buckets injectively, so the first occupied bucket holds the
   earliest bucketed event; a bucket itself is unsorted and must be
   scanned), and the overflow heap's root (lazy demotion means an
   overflow event can predate later-bucket events). Used by the
   domain-sharded runtime to agree on the next conservative window —
   never on the single-shard dispatch path. *)
let next_at t =
  if t.size = 0 then max_int
  else
    match t.sched with
    | Heap -> t.ev.(0)
    | Wheel ->
        let m = ref max_int in
        if t.run_pos < t.run_len then m := t.run.(stride * t.run_pos);
        if t.side_size > 0 && t.side.(0) < !m then m := t.side.(0);
        if t.heap_size > 0 && t.ev.(0) < !m then m := t.ev.(0);
        let bucketed =
          t.size - t.heap_size - (t.run_len - t.run_pos) - t.side_size
        in
        if bucketed > 0 then begin
          let idx = next_occupied t land t.mask in
          let arr = t.buckets.(idx) in
          for i = 0 to t.bucket_len.(idx) - 1 do
            let k = arr.(stride * i) in
            if k < !m then m := k
          done
        end;
        !m
