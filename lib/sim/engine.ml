(* The event queue is a binary heap of fixed-stride records interleaved
   in ONE unboxed int array: slot i occupies ev.[stride*i ..
   stride*i+4] as (key, seq, code, a, b). Interleaving matters: a heap
   node is then a single cache line, where parallel per-field arrays
   cost five cache touches per node visited during a sift. Scheduling
   a typed event writes five adjacent words and allocates nothing.

   Closures never enter the heap: a thunk event stores its closure in a
   free-listed side table and queues the slot index as an operand.
   Keeping the heap all-int means sifting performs no pointer stores,
   so the hot path never runs the GC write barrier ([caml_modify]) —
   which profiling showed dominating a heap with an in-line closure
   lane.

   Both event forms share the queue and the seq counter, so the
   execution order among simultaneous typed and thunk events is
   exactly the order they were scheduled. *)

type handler = code:int -> a:int -> b:int -> unit

(* Codes are >= 0 for typed events; [thunk_code] marks closure events
   (whose [a] operand is the thunk-table slot). *)
let thunk_code = -1

let stride = 5

let nop () = ()

let no_handler ~code ~a:_ ~b:_ =
  invalid_arg
    (Printf.sprintf
       "Engine: typed event %d scheduled but no handler installed" code)

type t = {
  mutable ev : int array; (* stride fields per event, see above *)
  mutable size : int;
  mutable next_seq : int;
  mutable clock : Time_ns.t;
  mutable executed : int;
  mutable handler : handler;
  (* Side table for thunk events: slot -> closure, plus a stack of free
     slots. Both arrays grow together, so [thunk_free_top <= thunk_len
     <= capacity] always holds. *)
  mutable thunks : (unit -> unit) array;
  mutable thunk_len : int;
  mutable thunk_free : int array;
  mutable thunk_free_top : int;
}

let create ?(reserve = 4096) () =
  let cap = max reserve 1 in
  {
    ev = Array.make (stride * cap) 0;
    size = 0;
    next_seq = 0;
    clock = Time_ns.zero;
    executed = 0;
    handler = no_handler;
    thunks = Array.make 64 nop;
    thunk_len = 0;
    thunk_free = Array.make 64 0;
    thunk_free_top = 0;
  }

let now t = t.clock
let set_handler t h = t.handler <- h

let grow t =
  let nev = Array.make (2 * Array.length t.ev) 0 in
  Array.blit t.ev 0 nev 0 (stride * t.size);
  t.ev <- nev

let thunk_grow t =
  let cap = Array.length t.thunks in
  let ncap = cap * 2 in
  let nthunks = Array.make ncap nop in
  Array.blit t.thunks 0 nthunks 0 t.thunk_len;
  t.thunks <- nthunks;
  let nfree = Array.make ncap 0 in
  Array.blit t.thunk_free 0 nfree 0 t.thunk_free_top;
  t.thunk_free <- nfree

let thunk_store t f =
  let slot =
    if t.thunk_free_top > 0 then begin
      t.thunk_free_top <- t.thunk_free_top - 1;
      t.thunk_free.(t.thunk_free_top)
    end
    else begin
      if t.thunk_len = Array.length t.thunks then thunk_grow t;
      let s = t.thunk_len in
      t.thunk_len <- s + 1;
      s
    end
  in
  t.thunks.(slot) <- f;
  slot

(* The sift loops use unsafe array access, applied directly so the
   compiler emits the specialized inline load/store (an aliased
   [Array.unsafe_get] degrades to the generic out-of-line primitive).
   Every index is [stride * h + f] with [h < t.size <= length/stride]
   and [f < stride], maintained by the heap shape invariant — the
   bounds checks were pure overhead on the hottest loop in the
   simulator. *)

(* Shared enqueue: sift up moving later events down into the hole. *)
let enqueue t ~at ~code ~a ~b =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  if stride * t.size = Array.length t.ev then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = t.ev in
  let i = ref (stride * t.size) in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = stride * (((!i / stride) - 1) / 2) in
    let pk = Array.unsafe_get ev parent in
    if at < pk || (at = pk && seq < Array.unsafe_get ev (parent + 1)) then begin
      Array.unsafe_set ev !i pk;
      Array.unsafe_set ev (!i + 1) (Array.unsafe_get ev (parent + 1));
      Array.unsafe_set ev (!i + 2) (Array.unsafe_get ev (parent + 2));
      Array.unsafe_set ev (!i + 3) (Array.unsafe_get ev (parent + 3));
      Array.unsafe_set ev (!i + 4) (Array.unsafe_get ev (parent + 4));
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set ev !i at;
  Array.unsafe_set ev (!i + 1) seq;
  Array.unsafe_set ev (!i + 2) code;
  Array.unsafe_set ev (!i + 3) a;
  Array.unsafe_set ev (!i + 4) b

let schedule t ~at f =
  (* Validate before storing the thunk so a rejected schedule does not
     leak a table slot. *)
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  enqueue t ~at ~code:thunk_code ~a:(thunk_store t f) ~b:0

let schedule_after t ~delay f = schedule t ~at:(Time_ns.add t.clock delay) f

let schedule_event t ~at ~code ~a ~b =
  if code < 0 then invalid_arg "Engine.schedule_event: negative code";
  enqueue t ~at ~code ~a ~b

let schedule_event_after t ~delay ~code ~a ~b =
  schedule_event t ~at:(Time_ns.add t.clock delay) ~code ~a ~b

(* Remove the root: re-insert the last element from the top, moving
   earlier children up into the hole. *)
let remove_min t =
  let n = t.size - 1 in
  t.size <- n;
  let ev = t.ev in
  let last = stride * n in
  let key = Array.unsafe_get ev last
  and seq = Array.unsafe_get ev (last + 1)
  and code = Array.unsafe_get ev (last + 2)
  and a = Array.unsafe_get ev (last + 3)
  and b = Array.unsafe_get ev (last + 4) in
  if n > 0 then begin
    let sn = stride * n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + stride in
      if l >= sn then continue := false
      else begin
        let r = l + stride in
        let c =
          if
            r < sn
            && (Array.unsafe_get ev r < Array.unsafe_get ev l
               || (Array.unsafe_get ev r = Array.unsafe_get ev l && Array.unsafe_get ev (r + 1) < Array.unsafe_get ev (l + 1))
               )
          then r
          else l
        in
        let ck = Array.unsafe_get ev c in
        if ck < key || (ck = key && Array.unsafe_get ev (c + 1) < seq) then begin
          Array.unsafe_set ev !i ck;
          Array.unsafe_set ev (!i + 1) (Array.unsafe_get ev (c + 1));
          Array.unsafe_set ev (!i + 2) (Array.unsafe_get ev (c + 2));
          Array.unsafe_set ev (!i + 3) (Array.unsafe_get ev (c + 3));
          Array.unsafe_set ev (!i + 4) (Array.unsafe_get ev (c + 4));
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set ev !i key;
    Array.unsafe_set ev (!i + 1) seq;
    Array.unsafe_set ev (!i + 2) code;
    Array.unsafe_set ev (!i + 3) a;
    Array.unsafe_set ev (!i + 4) b
  end

let step t =
  if t.size = 0 then raise Not_found;
  let ev = t.ev in
  let at = ev.(0) in
  let code = ev.(2) in
  let a = ev.(3) in
  let b = ev.(4) in
  remove_min t;
  t.clock <- at;
  t.executed <- t.executed + 1;
  if code >= 0 then t.handler ~code ~a ~b
  else begin
    let f = t.thunks.(a) in
    t.thunks.(a) <- nop;
    t.thunk_free.(t.thunk_free_top) <- a;
    t.thunk_free_top <- t.thunk_free_top + 1;
    f ()
  end

let run t =
  while t.size > 0 do
    step t
  done

let run_until t ~limit =
  (* Int comparison directly on the root key: the old polymorphic [>]
     ran the generic comparison once per event. *)
  while t.size > 0 && t.ev.(0) <= limit do
    step t
  done;
  t.clock <- Time_ns.max t.clock limit

let pending t = t.size
let executed t = t.executed
