type assign = Ranges of int array | Fn of (Netcore.Addr.Vip.t -> int)

type t = { assign : assign; shares : float array }

let single = { assign = Ranges [| max_int |]; shares = [| 1.0 |] }

let create ~bounds ~shares =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Partition.create: no tenants";
  if Array.length shares <> n then
    invalid_arg "Partition.create: bounds/shares length mismatch";
  Array.iteri
    (fun i b ->
      if b <= 0 then invalid_arg "Partition.create: non-positive bound";
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Partition.create: bounds not strictly increasing")
    bounds;
  Array.iter
    (fun s -> if s <= 0.0 then invalid_arg "Partition.create: non-positive share")
    shares;
  { assign = Ranges bounds; shares }

let create_fn ~num_tenants ~shares f =
  if num_tenants <= 0 then invalid_arg "Partition.create_fn: no tenants";
  if Array.length shares <> num_tenants then
    invalid_arg "Partition.create_fn: shares length mismatch";
  Array.iter
    (fun s ->
      if s <= 0.0 then invalid_arg "Partition.create_fn: non-positive share")
    shares;
  { assign = Fn f; shares }

let num_tenants t = Array.length t.shares

(* Linear scan: tenant counts are tiny (the paper's partitioning is
   per-VPC-enabled-on-demand, not per-VPC-everywhere). Top-level so no
   closure is allocated — [tenant_of] runs once per cache access on
   the per-hop path. *)
let rec scan_ranges bounds n v i =
  if i >= n - 1 then n - 1
  else if v < bounds.(i) then i
  else scan_ranges bounds n v (i + 1)

let tenant_of t vip =
  match t.assign with
  | Fn f ->
      let i = f vip in
      if i < 0 || i >= Array.length t.shares then
        invalid_arg "Partition.tenant_of: assignment out of range";
      i
  | Ranges bounds ->
      let v = Netcore.Addr.Vip.to_int vip in
      scan_ranges bounds (Array.length bounds) v 0

let split_slots t ~slots =
  if slots < 0 then invalid_arg "Partition.split_slots: negative slots";
  let n = Array.length t.shares in
  let sum = Array.fold_left ( +. ) 0.0 t.shares in
  let out = Array.make n 0 in
  let assigned = ref 0 in
  for i = 0 to n - 1 do
    out.(i) <- int_of_float (float_of_int slots *. t.shares.(i) /. sum);
    assigned := !assigned + out.(i)
  done;
  (* Remainder round-robin. *)
  let leftover = ref (slots - !assigned) in
  let i = ref 0 in
  while !leftover > 0 do
    out.(!i mod n) <- out.(!i mod n) + 1;
    decr leftover;
    incr i
  done;
  out
