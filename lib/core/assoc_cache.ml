module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

type line = { mutable key : int; mutable value : int; mutable stamp : int }

type t = {
  sets : line array array;
  ways : int;
  n : int;
  mutable clock : int;
  mutable occupancy : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~ways ~slots =
  if ways <= 0 then invalid_arg "Assoc_cache.create: ways must be positive";
  if slots < 0 then invalid_arg "Assoc_cache.create: negative slots";
  if slots mod ways <> 0 then
    invalid_arg "Assoc_cache.create: ways must divide slots";
  let num_sets = slots / ways in
  {
    sets =
      Array.init num_sets (fun _ ->
          Array.init ways (fun _ -> { key = -1; value = -1; stamp = 0 }));
    ways;
    n = slots;
    clock = 0;
    occupancy = 0;
    hits = 0;
    misses = 0;
  }

let slots t = t.n
let ways t = t.ways

(* Same mix hash as the direct-mapped cache, for comparability (see
   [Cache.mix] for why it is int-limb arithmetic, not Int64). *)
let mix v =
  let a = v * 0x9E3779B9 in
  let lo = a land 0xFFFFFFFF and hi = (a asr 32) land 0xFFFFFFFF in
  let lo1 = (lo lxor ((hi lsl 2) lor (lo lsr 30))) land 0xFFFFFFFF in
  let hi1 = hi lxor (hi lsr 30) in
  let cl = 0x1CE4E5B9 and ch = 0xBF58476D in
  let carry = (lo1 * cl) lsr 32 in
  let mid =
    ((((lo1 lsr 16) * ch) land 0xFFFF) lsl 16)
    + ((lo1 land 0xFFFF) * ch)
    + (hi1 * cl)
    + carry
  in
  (mid land 0xFFFFFFFF) lsr 1

let set_of t vip = mix (Vip.to_int vip) mod Array.length t.sets

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let miss = -1
let hit_pip h = Pip.of_int h

let lookup t vip =
  if t.n = 0 then begin
    t.misses <- t.misses + 1;
    miss
  end
  else begin
    let set = t.sets.(set_of t vip) in
    let k = Vip.to_int vip in
    let rec find i =
      if i >= t.ways then miss
      else if set.(i).key = k then begin
        let line = set.(i) in
        t.hits <- t.hits + 1;
        line.stamp <- tick t;
        line.value
      end
      else find (i + 1)
    in
    let r = find 0 in
    if r = miss then t.misses <- t.misses + 1;
    r
  end

let peek t vip =
  if t.n = 0 then None
  else
    let set = t.sets.(set_of t vip) in
    let k = Vip.to_int vip in
    let rec find i =
      if i >= t.ways then None
      else if set.(i).key = k then Some (Pip.of_int set.(i).value)
      else find (i + 1)
    in
    find 0

(* The key an [insert] for [vip] would evict right now: the set's LRU
   occupant, or -1 when the insert would be an update or the set still
   has an empty line. *)
let victim_key t vip =
  if t.n = 0 then -1
  else begin
    let set = t.sets.(set_of t vip) in
    let k = Vip.to_int vip in
    let present = ref false and has_empty = ref false in
    Array.iter
      (fun l ->
        if l.key = k then present := true;
        if l.key < 0 then has_empty := true)
      set;
    if !present || !has_empty then -1
    else begin
      let victim = ref set.(0) in
      Array.iter (fun l -> if l.stamp < !victim.stamp then victim := l) set;
      !victim.key
    end
  end

let insert t vip pip =
  if t.n = 0 then ()
  else begin
    let set = t.sets.(set_of t vip) in
    let k = Vip.to_int vip in
    (* Existing key, else an empty line, else the LRU victim. *)
    let target = ref set.(0) in
    let found = ref false in
    Array.iter (fun l -> if l.key = k then begin target := l; found := true end) set;
    if not !found then begin
      let empty = Array.fold_left (fun acc l -> if acc = None && l.key < 0 then Some l else acc) None set in
      match empty with
      | Some l ->
          target := l;
          t.occupancy <- t.occupancy + 1
      | None ->
          Array.iter (fun l -> if l.stamp < !target.stamp then target := l) set
    end;
    !target.key <- k;
    !target.value <- Pip.to_int pip;
    !target.stamp <- tick t
  end

let occupancy t = t.occupancy
let hits t = t.hits
let misses t = t.misses
