type allocation =
  | Uniform
  | Tor_only
  | Weighted of {
      tor : float;
      spine : float;
      core : float;
      gw_tor : float;
      gw_spine : float;
    }

type geometry = Geo_direct | Geo_dleft of int

type t = {
  p_learn : float;
  learning_packets : bool;
  spillover : bool;
  promotion : bool;
  source_learning : bool;
  invalidations : bool;
  ts_vector : bool;
  allocation : allocation;
  geometry : geometry;
  tinylfu : bool;
}

let default =
  {
    p_learn = 0.005;
    learning_packets = true;
    spillover = true;
    promotion = true;
    source_learning = true;
    invalidations = true;
    ts_vector = true;
    allocation = Uniform;
    geometry = Geo_direct;
    tinylfu = false;
  }

let make ?(p_learn = default.p_learn)
    ?(learning_packets = default.learning_packets)
    ?(spillover = default.spillover) ?(promotion = default.promotion)
    ?(source_learning = default.source_learning)
    ?(invalidations = default.invalidations) ?(ts_vector = default.ts_vector)
    ?(tor_only = false) ?allocation ?(geometry = default.geometry)
    ?(tinylfu = default.tinylfu) () =
  (match geometry with
  | Geo_dleft d when d <= 0 ->
      invalid_arg "Config.make: d-left ways must be positive"
  | Geo_dleft _ | Geo_direct -> ());
  let allocation =
    match allocation with
    | Some a -> a
    | None -> if tor_only then Tor_only else Uniform
  in
  {
    p_learn;
    learning_packets;
    spillover;
    promotion;
    source_learning;
    invalidations;
    ts_vector;
    allocation;
    geometry;
    tinylfu;
  }
