(** SwitchV2P protocol configuration and ablation toggles. *)

(** How the aggregate cache budget is divided among switches (§4,
    "Heterogeneous memory allocation"). *)
type allocation =
  | Uniform  (** equal share per switch — the paper's default *)
  | Tor_only  (** all memory in ToRs (the §4 Hadoop observation) *)
  | Weighted of {
      tor : float;
      spine : float;
      core : float;
      gw_tor : float;
      gw_spine : float;
    }
      (** per-role weights; a switch's share is its role weight
          normalized over all switches. Negative weights are invalid. *)

(** Cache organization for every switch's V2P cache. [Geo_direct] is
    the paper's direct-mapped single-access-bit design; [Geo_dleft d]
    is a d-left table ([d] subtables, independent hashes — see
    {!Dleft}). Each switch's slot share is rounded down to a multiple
    of [d]. *)
type geometry = Geo_direct | Geo_dleft of int

type t = {
  p_learn : float;
      (** probability of emitting a learning packet per resolved packet
          processed at a gateway ToR; the paper's default is 0.5% *)
  learning_packets : bool;  (** §3.2.2 learning packets *)
  spillover : bool;  (** §3.2.2 cache spillover *)
  promotion : bool;  (** §3.2.2 promotion of popular entries to cores *)
  source_learning : bool;  (** ToR source learning *)
  invalidations : bool;  (** §3.3 invalidation packets *)
  ts_vector : bool;  (** §3.3 timestamp vector rate limiting *)
  allocation : allocation;
  geometry : geometry;  (** cache organization; the paper's is direct *)
  tinylfu : bool;
      (** wrap each cache in a {!Tinylfu} frequency-admission front
          end (4-bit count-min sketch, admit-on-higher-estimate) *)
}

(** The paper's default configuration: everything on, P_learn = 0.005,
    uniform allocation. *)
val default : t

(** [make ()] is [default] with optional overrides. [tor_only] is a
    shorthand for [~allocation:Tor_only]. *)
val make :
  ?p_learn:float ->
  ?learning_packets:bool ->
  ?spillover:bool ->
  ?promotion:bool ->
  ?source_learning:bool ->
  ?invalidations:bool ->
  ?ts_vector:bool ->
  ?tor_only:bool ->
  ?allocation:allocation ->
  ?geometry:geometry ->
  ?tinylfu:bool ->
  unit ->
  t
