type t = {
  last : Dessim.Time_ns.t array;
  first_switch : int;
  base_rtt : Dessim.Time_ns.t;
  mutable suppressed : int;
}

let create ?(first_switch = 0) ~num_switches ~base_rtt () =
  { last = Array.make num_switches min_int; first_switch; base_rtt;
    suppressed = 0 }

let should_send t ~switch ~now =
  let slot = switch - t.first_switch in
  let last = t.last.(slot) in
  if last <> min_int && Dessim.Time_ns.sub now last < t.base_rtt then begin
    t.suppressed <- t.suppressed + 1;
    false
  end
  else begin
    t.last.(slot) <- now;
    true
  end

let suppressed t = t.suppressed
