(* Packed like [Link.transmit_packed]: the action rides in the low two
   bits and the (non-negative) delay in the bits above, so a verdict is
   always a non-negative immediate int and the hot path never allocates
   a constructor block. *)

let forward = 0
let consume = 1
let drop = 2

let delay d =
  if d < 0 then invalid_arg "Verdict.delay: negative delay";
  (d lsl 2) lor 3

let tag v = v land 3
let tag_forward = 0
let tag_consume = 1
let tag_drop = 2
let tag_delay = 3
let delay_ns v = v asr 2

(* Stage-level fall-through: a stage that has nothing final to say
   returns [next] and the pipeline tries the following stage. *)
let next = -1

let pp ppf v =
  if v = next then Format.pp_print_string ppf "next"
  else
    match v land 3 with
    | 0 -> Format.pp_print_string ppf "forward"
    | 1 -> Format.pp_print_string ppf "consume"
    | 2 -> Format.pp_print_string ppf "drop"
    | _ -> Format.fprintf ppf "delay(%dns)" (v asr 2)
