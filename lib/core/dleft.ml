module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

(* d-left hash table: [d] subtables of [sub] lines each, one
   independent hash per subtable. A lookup probes one line per way
   (single-cycle-per-way in hardware: d register-array reads with
   precomputed indices); an insert goes to the first empty way —
   with one line per bucket, "least loaded" degenerates to "first
   subtable with a free line", the standard d-left tie-break.

   Layout is subtable-major over flat arrays, mirroring [Cache]'s
   three-register-array structure so the SRAM costing is line-exact:
   way [i] owns indices [i*sub, (i+1)*sub). *)

type t = {
  keys : int array; (* -1 = empty *)
  values : int array;
  access : Bytes.t;
  d : int;
  sub : int; (* lines per subtable *)
  n : int; (* d * sub *)
  seeds : int array;
  mutable occupancy : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable rejections : int;
}

(* Way 0 hashes with seed 0, i.e. exactly [Cache.mix] — a d=1 table is
   byte-for-byte the direct-mapped cache (the equivalence the QCheck
   suite pins). Later ways perturb the key with fixed odd constants
   before mixing, standing in for independent hardware CRC polynomials. *)
let seed_of i = i * 0x27220A95

let create ~d ~slots =
  if d <= 0 then invalid_arg "Dleft.create: d must be positive";
  if slots < 0 then invalid_arg "Dleft.create: negative slots";
  if slots mod d <> 0 then invalid_arg "Dleft.create: d must divide slots";
  let sub = slots / d in
  {
    keys = Array.make slots (-1);
    values = Array.make slots (-1);
    access = Bytes.make slots '\000';
    d;
    sub;
    n = slots;
    seeds = Array.init d seed_of;
    occupancy = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    rejections = 0;
  }

let slots t = t.n
let ways t = t.d

let miss = Cache.miss
let hit_pip = Cache.hit_pip
let hit_bit = Cache.hit_bit

(* Line index of key [v] in way [i]. *)
let idx_of t v i = (i * t.sub) + (Cache.mix (v lxor t.seeds.(i)) mod t.sub)

let lookup t vip =
  if t.n = 0 then begin
    t.misses <- t.misses + 1;
    miss
  end
  else begin
    let v = Vip.to_int vip in
    let rec probe i =
      if i >= t.d then begin
        t.misses <- t.misses + 1;
        miss
      end
      else begin
        let idx = idx_of t v i in
        let key = t.keys.(idx) in
        if key = v then begin
          t.hits <- t.hits + 1;
          let was_set = if Bytes.get t.access idx = '\001' then 1 else 0 in
          Bytes.set t.access idx '\001';
          (t.values.(idx) lsl 1) lor was_set
        end
        else begin
          (* A probed occupant that was not the key loses its access
             bit — consulted and not useful, as in [Cache.lookup]'s
             conflict-miss rule, applied per way. *)
          if key >= 0 then Bytes.set t.access idx '\000';
          probe (i + 1)
        end
      end
    in
    probe 0
  end

let peek t vip =
  if t.n = 0 then None
  else
    let v = Vip.to_int vip in
    let rec probe i =
      if i >= t.d then None
      else
        let idx = idx_of t v i in
        if t.keys.(idx) = v then Some (Pip.of_int t.values.(idx))
        else probe (i + 1)
    in
    probe 0

let access_bit t vip =
  if t.n = 0 then None
  else
    let v = Vip.to_int vip in
    let rec probe i =
      if i >= t.d then None
      else
        let idx = idx_of t v i in
        if t.keys.(idx) = v then Some (Bytes.get t.access idx = '\001')
        else probe (i + 1)
    in
    probe 0

(* The three int-returning scans below are separate passes rather than
   one pass with a composite result: insert runs on the learn stage of
   the per-hop path, and a tuple/variant result would allocate. d is
   small (2-4) and [Cache.mix] is a handful of int ops. *)

let rec find_key t v i =
  if i >= t.d then -1
  else
    let idx = idx_of t v i in
    if t.keys.(idx) = v then idx else find_key t v (i + 1)

let rec find_empty t v i =
  if i >= t.d then -1
  else
    let idx = idx_of t v i in
    if t.keys.(idx) < 0 then idx else find_empty t v (i + 1)

let rec find_clear t v i =
  if i >= t.d then -1
  else
    let idx = idx_of t v i in
    if t.keys.(idx) >= 0 && Bytes.get t.access idx = '\000' then idx
    else find_clear t v (i + 1)

let insert t ~admission vip pip =
  if t.n = 0 then begin
    t.rejections <- t.rejections + 1;
    Cache.Rejected
  end
  else begin
    let v = Vip.to_int vip in
    let found = find_key t v 0 in
    if found >= 0 then begin
      t.values.(found) <- Pip.to_int pip;
      Cache.Updated
    end
    else begin
      let empty = find_empty t v 0 in
      if empty >= 0 then begin
        t.keys.(empty) <- v;
        t.values.(empty) <- Pip.to_int pip;
        Bytes.set t.access empty '\000';
        t.occupancy <- t.occupancy + 1;
        t.insertions <- t.insertions + 1;
        Cache.Inserted None
      end
      else begin
        (* All d candidate lines occupied. [`A_bit_clear] only replaces
           a not-recently-useful way; [`All] prefers one but falls back
           to way 0 — at d=1 both reduce to [Cache]'s behaviour. *)
        let clear = find_clear t v 0 in
        let victim =
          match admission with
          | `A_bit_clear -> clear
          | `All -> if clear >= 0 then clear else idx_of t v 0
        in
        if victim < 0 then begin
          t.rejections <- t.rejections + 1;
          Cache.Rejected
        end
        else begin
          let evicted =
            (Vip.of_int t.keys.(victim), Pip.of_int t.values.(victim))
          in
          t.keys.(victim) <- v;
          t.values.(victim) <- Pip.to_int pip;
          Bytes.set t.access victim '\000';
          t.insertions <- t.insertions + 1;
          t.evictions <- t.evictions + 1;
          Cache.Inserted (Some evicted)
        end
      end
    end
  end

let victim_key t vip =
  if t.n = 0 then -1
  else
    let v = Vip.to_int vip in
    if find_key t v 0 >= 0 then -1
    else if find_empty t v 0 >= 0 then -1
    else
      let clear = find_clear t v 0 in
      let victim = if clear >= 0 then clear else idx_of t v 0 in
      t.keys.(victim)

let invalidate t vip ~stale =
  if t.n = 0 then false
  else begin
    let v = Vip.to_int vip in
    let idx = find_key t v 0 in
    if idx >= 0 && t.values.(idx) = Pip.to_int stale then begin
      t.keys.(idx) <- -1;
      t.values.(idx) <- -1;
      Bytes.set t.access idx '\000';
      t.occupancy <- t.occupancy - 1;
      true
    end
    else false
  end

let clear t =
  Array.fill t.keys 0 t.n (-1);
  Array.fill t.values 0 t.n (-1);
  Bytes.fill t.access 0 t.n '\000';
  t.occupancy <- 0

let occupancy t = t.occupancy
let hits t = t.hits
let misses t = t.misses
let insertions t = t.insertions
let evictions t = t.evictions
let rejections t = t.rejections
