(** Int-coded per-switch verdicts.

    The old scheme layer returned a variant ([Forward | Consume |
    Delay of t | Drop_pkt]) per hop; the [Delay] arm allocated a block
    on Bluebird's detour path and the match compiled to a branch tree.
    Verdicts are now plain ints packed like {!Topo.Link.transmit_packed}:
    the action in the low two bits, the delay (when any) in the bits
    above.

    {v
      forward      = 0
      consume      = 1
      drop         = 2
      delay d      = (d lsl 2) lor 3     d in ns, d >= 0
      next         = -1                  stage fall-through, never final
    v} *)

val forward : int
(** keep routing toward (possibly rewritten) [dst_pip] *)

val consume : int
(** the packet terminated at this switch (control packets) *)

val drop : int
(** drop (e.g. control-plane queue overflow) *)

val delay : int -> int
(** [delay d] forwards after an extra processing delay of [d] ns
    (Bluebird's data-to-control-plane detour). Raises
    [Invalid_argument] if [d < 0]. *)

val next : int
(** Stage fall-through: not a final verdict. A pipeline whose stages
    all return [next] forwards the packet. *)

(** Decoding. [tag v] is one of the [tag_*] constants below;
    [delay_ns] is meaningful only when [tag v = tag_delay]. *)

val tag : int -> int

val tag_forward : int
val tag_consume : int
val tag_drop : int
val tag_delay : int
val delay_ns : int -> int

val pp : Format.formatter -> int -> unit
