(** Set-associative LRU cache — the hardware-unfriendly alternative to
    the paper's direct-mapped design (§3.2 cites Hill's "case for
    direct-mapped caches").

    SwitchV2P's data plane deliberately uses {!Cache} (direct-mapped,
    one access bit); this module exists for the cache-geometry study:
    how much hit rate does the single-probe design actually give up
    against 2-way/4-way/fully-associative LRU at equal capacity?
    (Answer, reproduced by the [cachegeo] bench: little — which is the
    justification for choosing hardware simplicity.) *)

type t

(** [create ~ways ~slots] — total capacity [slots], organized as
    [slots/ways] sets of [ways] lines. [ways = slots] is fully
    associative. Raises [Invalid_argument] if [ways <= 0], [slots < 0]
    or [ways] does not divide [slots]. *)
val create : ways:int -> slots:int -> t

val slots : t -> int
val ways : t -> int

val miss : int
(** the (negative) sentinel {!lookup} returns on a miss *)

(** [lookup t vip] — on a hit, refreshes the line's LRU position and
    returns the mapped PIP as a non-negative int (decode with
    {!hit_pip}); {!miss} otherwise. Same sentinel convention as
    {!Cache.lookup} so geometry studies can swap the two. *)
val lookup : t -> Netcore.Addr.Vip.t -> int

val hit_pip : int -> Netcore.Addr.Pip.t

(** [peek t vip] is a side-effect-free lookup: no LRU refresh, no
    counter updates (tests and the TinyLFU front end). *)
val peek : t -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t option

(** [victim_key t vip] is the key (as an int) an {!insert} for [vip]
    would evict right now — the set's LRU occupant — or [-1] when the
    insert would be an update or the set has an empty line. *)
val victim_key : t -> Netcore.Addr.Vip.t -> int

(** [insert t vip pip] — installs the mapping, evicting the set's
    least-recently-used line if full. Re-inserting an existing key
    refreshes value and recency. *)
val insert : t -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t -> unit

val occupancy : t -> int
val hits : t -> int
val misses : t -> int
