(** TinyLFU-style frequency-admission front end (Einziger et al.,
    "TinyLFU: A Highly Efficient Cache Admission Policy"), composable
    over any of the repo's cache geometries.

    A 4-bit count-min sketch ([rows] register arrays of [width]
    saturating counters, two per byte) estimates each key's access
    frequency; after every [sample] touches all counters halve,
    aging out stale history. An insert that would evict a resident
    entry is admitted only when the candidate's estimate strictly
    exceeds the victim's; updates and empty-line fills always pass.

    With [always_admit = true] the sketch still counts but never
    vetoes: every operation delegates to the backing unchanged, so the
    wrapper is byte-for-byte its backing on hit/miss/eviction
    sequences and counters — the degenerate equivalence the QCheck
    suite pins. *)

(** The wrapped geometry. [Direct]/[Dleft] carry the full protocol
    semantics (packed access-bit lookups, admission policies,
    invalidation); [Assoc] is for the cache-geometry study only — its
    lookups return {!Assoc_cache.lookup}'s unshifted packing,
    [invalidate] is a no-op, and insert/eviction/rejection counters
    read 0. *)
type backing =
  | Direct of Cache.t
  | Dleft of Dleft.t
  | Assoc of Assoc_cache.t

type t

(** [create backing] — [rows] defaults to 4; [width] to the next power
    of two >= max 16 (4 * slots); [sample] to max 64 (10 * slots).
    Raises [Invalid_argument] on non-positive values. *)
val create :
  ?rows:int -> ?width:int -> ?sample:int -> ?always_admit:bool -> backing -> t

val backing : t -> backing
val rows : t -> int
val width : t -> int
val sample_period : t -> int
val always_admit : t -> bool

(** [lookup t vip] counts the access in the sketch, then delegates.
    The packed result follows the backing's convention. *)
val lookup : t -> Netcore.Addr.Vip.t -> int

val peek : t -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t option

(** [insert t ~admission vip pip] — counts the candidate, probes the
    backing's would-be victim, and delegates unless the filter vetoes
    (victim exists, not [always_admit], candidate estimate <= victim
    estimate), in which case it returns [Rejected] without touching
    the backing. [admission] is passed through to the backing. *)
val insert :
  t ->
  admission:Cache.admission ->
  Netcore.Addr.Vip.t ->
  Netcore.Addr.Pip.t ->
  Cache.insert_result

val victim_key : t -> Netcore.Addr.Vip.t -> int
val invalidate : t -> Netcore.Addr.Vip.t -> stale:Netcore.Addr.Pip.t -> bool

(** [clear t] wipes the backing (where supported) {e and} the sketch —
    both are data-plane register state lost on a reboot. *)
val clear : t -> unit

(** [estimate_vip t vip] — the sketch's current frequency estimate
    in [0, 15] (count-min: an upper bound biased by collisions). *)
val estimate_vip : t -> Netcore.Addr.Vip.t -> int

val slots : t -> int
val occupancy : t -> int
val hits : t -> int
val misses : t -> int
val insertions : t -> int
val evictions : t -> int

(** [rejections t] = sketch denials + the backing's own policy
    rejections. *)
val rejections : t -> int

(** [admitted t] / [denied t] split insert attempts at the filter. *)
val admitted : t -> int

val denied : t -> int

(** [halvings t] counts sample-period counter halvings. *)
val halvings : t -> int
