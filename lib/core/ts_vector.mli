(** Per-ToR timestamp vector rate-limiting invalidation packets (§3.3).

    Before a ToR sends an invalidation packet to switch [s], it checks
    the time elapsed since it last sent one to [s]; if less than the
    base network RTT, the packet is suppressed (a previous one is
    still in flight). Only local timestamps are kept — no clock
    synchronization is needed. *)

type t

(** [create ~num_switches ~base_rtt ()] is a vector of [num_switches]
    entries, all "long ago". Switch id [s] indexes slot
    [s - first_switch] (default 0). Switch ids are a contiguous range
    above the endpoint ids, so passing the first switch id lets each
    ToR hold one word per switch instead of one word per node — at
    FT16-400K that is the difference between ~100 KB and ~100 MB of
    timestamp lanes across the 400 ToRs. *)
val create :
  ?first_switch:int -> num_switches:int -> base_rtt:Dessim.Time_ns.t -> unit -> t

(** [should_send t ~switch ~now] decides whether an invalidation to
    [switch] may be sent now; when it returns [true] the timestamp is
    updated (the caller is expected to send). *)
val should_send : t -> switch:int -> now:Dessim.Time_ns.t -> bool

(** [suppressed t] counts the invalidations the vector absorbed. *)
val suppressed : t -> int
