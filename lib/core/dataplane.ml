module Time_ns = Dessim.Time_ns
module Rng = Dessim.Rng
module Packet = Netcore.Packet
module Pip = Netcore.Addr.Pip
module Vip = Netcore.Addr.Vip

type env = {
  now : unit -> Time_ns.t;
  emit : src_switch:int -> Packet.t -> unit;
  fresh_packet_id : unit -> int;
  rng : Rng.t;
}

type switch_state = {
  sw_id : int;
  mutable role : Topo.Node.role;
      (* mutable: gateway migration reassigns ToR/spine roles (§4) *)
  caches : Geo_cache.t array; (* one private partition per tenant *)
  ts_vector : Ts_vector.t option; (* ToRs only *)
  attached_hosts : (int, unit) Hashtbl.t;
      (* front-panel table: node ids of attached non-gateway servers *)
}

type t = {
  cfg : Config.t;
  topo : Topo.Topology.t;
  partition : Partition.t;
  states : switch_state option array; (* indexed by node id *)
  mutable telemetry : Dessim.Telemetry.t; (* flight recorder; off by default *)
  mutable learning_packets_sent : int;
  mutable invalidation_packets_sent : int;
  mutable promotions : int;
  mutable spills_attached : int;
  mutable spills_absorbed : int;
  mutable entries_invalidated : int;
  mutable misdelivery_tags : int;
}

type verdict = Forward | Consume

let config t = t.cfg

let role_weight (alloc : Config.allocation) (role : Topo.Node.role) =
  match alloc with
  | Config.Uniform -> 1.0
  | Config.Tor_only -> (
      match role with
      | Topo.Node.Regular_tor | Topo.Node.Gateway_tor -> 1.0
      | Topo.Node.Regular_spine | Topo.Node.Gateway_spine
      | Topo.Node.Core_switch ->
          0.0)
  | Config.Weighted w -> (
      match role with
      | Topo.Node.Regular_tor -> w.tor
      | Topo.Node.Gateway_tor -> w.gw_tor
      | Topo.Node.Regular_spine -> w.spine
      | Topo.Node.Gateway_spine -> w.gw_spine
      | Topo.Node.Core_switch -> w.core)

(* Split [total] slots proportionally to per-switch weights; floor each
   share and hand the remainder out round-robin among positive-weight
   switches so the total is conserved exactly. Float error in the share
   computation can leave the floored sum on either side of [total], so
   the correction loop must both hand out missing slots and claw back
   excess ones. *)
let distribute_slots cfg topo ~total =
  let switches = Topo.Topology.switches topo in
  let weights =
    Array.map
      (fun sw ->
        let w = role_weight cfg.Config.allocation (Topo.Topology.role topo sw) in
        if w < 0.0 then invalid_arg "Dataplane.create: negative role weight";
        w)
      switches
  in
  let sum = Array.fold_left ( +. ) 0.0 weights in
  let slots_for = Hashtbl.create (Array.length switches) in
  if sum <= 0.0 then
    Array.iter (fun sw -> Hashtbl.replace slots_for sw 0) switches
  else begin
    let assigned = ref 0 in
    Array.iteri
      (fun i sw ->
        let share =
          int_of_float (float_of_int total *. weights.(i) /. sum)
        in
        assigned := !assigned + share;
        Hashtbl.replace slots_for sw share)
      switches;
    let leftover = ref (total - !assigned) in
    let i = ref 0 in
    while !leftover > 0 do
      if weights.(!i mod Array.length switches) > 0.0 then begin
        let sw = switches.(!i mod Array.length switches) in
        Hashtbl.replace slots_for sw (1 + Hashtbl.find slots_for sw);
        decr leftover
      end;
      incr i
    done;
    while !leftover < 0 do
      let sw = switches.(!i mod Array.length switches) in
      if weights.(!i mod Array.length switches) > 0.0 then begin
        let have = Hashtbl.find slots_for sw in
        if have > 0 then begin
          Hashtbl.replace slots_for sw (have - 1);
          incr leftover
        end
      end;
      incr i
    done
  end;
  slots_for

let create ?(partition = Partition.single) cfg topo ~total_cache_slots =
  if total_cache_slots < 0 then
    invalid_arg "Dataplane.create: negative cache size";
  let slots_for = distribute_slots cfg topo ~total:total_cache_slots in
  let num_nodes = Topo.Topology.num_nodes topo in
  let base_rtt = Topo.Params.base_rtt (Topo.Topology.params topo) in
  let states = Array.make num_nodes None in
  (* Switch ids are contiguous above the endpoints; size timestamp
     vectors to the switch range, not the whole node space. *)
  let all_switches = Topo.Topology.switches topo in
  let first_switch =
    Array.fold_left min num_nodes all_switches
  in
  let num_switches = Array.length all_switches in
  Array.iter
    (fun sw ->
      let role = Topo.Topology.role topo sw in
      let slots = match Hashtbl.find_opt slots_for sw with Some s -> s | None -> 0 in
      let ts_vector =
        match role with
        | Topo.Node.Regular_tor | Topo.Node.Gateway_tor ->
            Some (Ts_vector.create ~first_switch ~num_switches ~base_rtt ())
        | Topo.Node.Regular_spine | Topo.Node.Gateway_spine | Topo.Node.Core_switch
          ->
            None
      in
      let attached_hosts = Hashtbl.create 8 in
      (match role with
      | Topo.Node.Regular_tor | Topo.Node.Gateway_tor ->
          Array.iter
            (fun ep ->
              match Topo.Topology.kind topo ep with
              | Topo.Node.Host _ -> Hashtbl.replace attached_hosts ep ()
              | Topo.Node.Gateway _ -> ()
              | Topo.Node.Tor _ | Topo.Node.Spine _ | Topo.Node.Core _ ->
                  assert false)
            (Topo.Topology.endpoints_of_tor topo sw)
      | Topo.Node.Regular_spine | Topo.Node.Gateway_spine | Topo.Node.Core_switch
        ->
          ());
      let caches =
        Array.map
          (fun tenant_slots ->
            Geo_cache.create cfg.Config.geometry ~tinylfu:cfg.Config.tinylfu
              ~slots:tenant_slots)
          (Partition.split_slots partition ~slots)
      in
      states.(sw) <-
        Some { sw_id = sw; role; caches; ts_vector; attached_hosts })
    (Topo.Topology.switches topo);
  {
    cfg;
    topo;
    partition;
    states;
    telemetry = Dessim.Telemetry.disabled;
    learning_packets_sent = 0;
    invalidation_packets_sent = 0;
    promotions = 0;
    spills_attached = 0;
    spills_absorbed = 0;
    entries_invalidated = 0;
    misdelivery_tags = 0;
  }

let state t switch =
  match t.states.(switch) with
  | Some s -> s
  | None -> invalid_arg "Dataplane: node is not a switch"

let set_telemetry t tel = t.telemetry <- tel

(* Flight recorder: hop-by-hop resolution events for sampled packets. *)
let flight t env st (pkt : Packet.t) event =
  if Dessim.Telemetry.should_trace t.telemetry ~pkt:pkt.Packet.id then
    Dessim.Telemetry.trace t.telemetry
      ~now_sec:(Time_ns.to_sec (env.now ()))
      ~pkt:pkt.Packet.id ~node:st.sw_id event

let role_tier_name = function
  | Topo.Node.Gateway_tor -> "gw_tor"
  | Topo.Node.Gateway_spine -> "gw_spine"
  | Topo.Node.Regular_tor -> "tor"
  | Topo.Node.Regular_spine -> "spine"
  | Topo.Node.Core_switch -> "core"

(* Per-tier cumulative cache statistics, sampled into telemetry series
   (one probe call = one point per tier and statistic). *)
let probe_telemetry t tel ~now_sec =
  if Dessim.Telemetry.is_enabled tel then begin
    let tiers = Hashtbl.create 5 in
    Array.iter
      (fun st ->
        match st with
        | None -> ()
        | Some st ->
            let acc =
              match Hashtbl.find_opt tiers st.role with
              | Some acc -> acc
              | None ->
                  let acc = Array.make 6 0 in
                  Hashtbl.add tiers st.role acc;
                  acc
            in
            Array.iter
              (fun c ->
                acc.(0) <- acc.(0) + Geo_cache.occupancy c;
                acc.(1) <- acc.(1) + Geo_cache.hits c;
                acc.(2) <- acc.(2) + Geo_cache.misses c;
                acc.(3) <- acc.(3) + Geo_cache.evictions c;
                acc.(4) <- acc.(4) + Geo_cache.rejections c;
                acc.(5) <- acc.(5) + Geo_cache.insertions c)
              st.caches)
      t.states;
    List.iter
      (fun role ->
        match Hashtbl.find_opt tiers role with
        | None -> ()
        | Some acc ->
            let tier = role_tier_name role in
            let stat i name =
              Dessim.Telemetry.sample tel
                (Printf.sprintf "tier/%s/%s" tier name)
                ~now_sec
                (float_of_int acc.(i))
            in
            stat 0 "occupancy";
            stat 1 "hits";
            stat 2 "misses";
            stat 3 "evictions";
            stat 4 "rejections";
            stat 5 "insertions")
      [
        Topo.Node.Gateway_tor; Topo.Node.Gateway_spine; Topo.Node.Regular_tor;
        Topo.Node.Regular_spine; Topo.Node.Core_switch;
      ]
  end

(* The cache partition owning [vip] at this switch. *)
let cache_for t st vip = st.caches.(Partition.tenant_of t.partition vip)

let geo_cache t ~switch = (state t switch).caches.(0)

let cache t ~switch = Geo_cache.direct_exn (state t switch).caches.(0)

let cache_of_tenant t ~switch ~tenant =
  let st = state t switch in
  if tenant < 0 || tenant >= Array.length st.caches then
    invalid_arg "Dataplane.cache_of_tenant: tenant out of range";
  Geo_cache.direct_exn st.caches.(tenant)

let slots_of t ~switch =
  Array.fold_left
    (fun acc c -> acc + Geo_cache.slots c)
    0 (state t switch).caches
let learning_packets_sent t = t.learning_packets_sent
let invalidation_packets_sent t = t.invalidation_packets_sent

let invalidations_suppressed t =
  Array.fold_left
    (fun acc st ->
      match st with
      | Some { ts_vector = Some v; _ } -> acc + Ts_vector.suppressed v
      | Some _ | None -> acc)
    0 t.states

let promotions t = t.promotions
let spills_attached t = t.spills_attached
let spills_absorbed t = t.spills_absorbed
let entries_invalidated t = t.entries_invalidated
let misdelivery_tags t = t.misdelivery_tags

let admission_of_role = function
  | Topo.Node.Gateway_tor | Topo.Node.Regular_tor -> `All
  | Topo.Node.Gateway_spine | Topo.Node.Regular_spine | Topo.Node.Core_switch ->
      `A_bit_clear

(* Insert a mapping and, when enabled and the packet has room, turn the
   evicted occupant into a spillover rider. Takes the packet directly
   (not an option): this runs on the per-hop path, where a [Some pkt]
   box would cost two minor words per dispatch. Install paths with no
   carrier packet use [insert_no_spill]. *)
let insert_with_spill t env st (pkt : Packet.t) ~admission vip pip =
  match Geo_cache.insert (cache_for t st vip) ~admission vip pip with
  | Cache.Inserted (Some evicted) ->
      if t.cfg.Config.spillover && pkt.Packet.spill = None then begin
        pkt.Packet.spill <- Some evicted;
        t.spills_attached <- t.spills_attached + 1;
        flight t env st pkt "spilled"
      end
  | Cache.Inserted None | Cache.Updated | Cache.Rejected -> ()

(* Same insert, but with no carrier packet to attach spillover to
   (learning-packet installs). *)
let insert_no_spill t st ~admission vip pip =
  match Geo_cache.insert (cache_for t st vip) ~admission vip pip with
  | Cache.Inserted _ | Cache.Updated | Cache.Rejected -> ()

let rewrite_to st (pkt : Packet.t) pip =
  pkt.Packet.dst_pip <- pip;
  pkt.Packet.resolved <- true;
  pkt.Packet.hit_switch <- st.sw_id

(* §3.3: on assigning a misdelivery tag the ToR targets an invalidation
   packet at the switch that served the stale mapping. *)
let send_invalidation t env st ~target ~vip ~stale =
  if target >= 0 && target <> st.sw_id && t.cfg.Config.invalidations then begin
    let allowed =
      if not t.cfg.Config.ts_vector then true
      else
        match st.ts_vector with
        | Some v -> Ts_vector.should_send v ~switch:target ~now:(env.now ())
        | None -> true
    in
    if allowed then begin
      let pkt =
        Packet.make_control ~id:(env.fresh_packet_id ()) ~kind:Packet.Invalidation
          ~mapping:(vip, stale)
          ~src_pip:(Topo.Topology.pip t.topo st.sw_id)
          ~dst_pip:(Topo.Topology.pip t.topo target)
          ~now:(env.now ())
      in
      t.invalidation_packets_sent <- t.invalidation_packets_sent + 1;
      env.emit ~src_switch:st.sw_id pkt
    end
  end

let maybe_send_learning_packet t env st (pkt : Packet.t) =
  if
    t.cfg.Config.learning_packets
    && Rng.bernoulli env.rng t.cfg.Config.p_learn
  then begin
    let sender = Topo.Topology.node_of_pip t.topo pkt.Packet.src_pip in
    if
      sender < Topo.Topology.num_nodes t.topo
      && Topo.Node.is_endpoint (Topo.Topology.kind t.topo sender)
    then begin
      let sender_tor = Topo.Topology.tor_of t.topo sender in
      if sender_tor <> st.sw_id then begin
        let lp =
          Packet.make_control ~id:(env.fresh_packet_id ())
            ~kind:Packet.Learning
            ~mapping:(pkt.Packet.dst_vip, pkt.Packet.dst_pip)
            ~src_pip:(Topo.Topology.pip t.topo st.sw_id)
            ~dst_pip:(Topo.Topology.pip t.topo sender_tor)
            ~now:(env.now ())
        in
        t.learning_packets_sent <- t.learning_packets_sent + 1;
        env.emit ~src_switch:st.sw_id lp
      end
    end
  end

(* Tagged packets re-check the cache specially: a cached value equal to
   the stale PIP is invalidated; a different cached value is trusted
   (the switch already learned the new location). A single [Cache.lookup]
   keeps the hit/miss counters consistent with the regular path — the
   old peek-then-lookup sequence bumped the hit counter twice on the
   trusted path and recorded no miss when the VIP was absent. *)
let handle_tagged t env st (pkt : Packet.t) =
  let cache = cache_for t st pkt.Packet.dst_vip in
  let r = Geo_cache.lookup cache pkt.Packet.dst_vip in
  if r >= 0 then begin
    let stale = pkt.Packet.misdelivery in
    if r lsr 1 = stale then begin
      if
        Geo_cache.invalidate cache pkt.Packet.dst_vip ~stale:(Pip.of_int stale)
      then begin
        t.entries_invalidated <- t.entries_invalidated + 1;
        flight t env st pkt "invalidated"
      end
    end
    else if not pkt.Packet.gw_pinned then begin
      rewrite_to st pkt (Cache.hit_pip r);
      flight t env st pkt "hit"
    end
  end

(* A pinned packet (misdelivered at its own source host, where the
   ToR's outer-source heuristic cannot tag it) must reach the gateway
   untranslated; a cached value equal to its source is the very entry
   that hairpinned it, so it is provably stale. *)
let handle_pinned t env st (pkt : Packet.t) =
  let cache = cache_for t st pkt.Packet.dst_vip in
  let r = Geo_cache.lookup cache pkt.Packet.dst_vip in
  if
    r >= 0
    && r lsr 1 = Pip.to_int pkt.Packet.src_pip
    && Geo_cache.invalidate cache pkt.Packet.dst_vip ~stale:pkt.Packet.src_pip
  then begin
    t.entries_invalidated <- t.entries_invalidated + 1;
    flight t env st pkt "invalidated"
  end

let regular_lookup t env st (pkt : Packet.t) =
  let r =
    Geo_cache.lookup (cache_for t st pkt.Packet.dst_vip) pkt.Packet.dst_vip
  in
  if r >= 0 then begin
    let pip = Cache.hit_pip r in
    rewrite_to st pkt pip;
    flight t env st pkt "hit";
    (* Promotion: a popular entry hit at a regular spine by a packet
       leaving the pod rides to the core tier. *)
    if
      t.cfg.Config.promotion && st.role = Topo.Node.Regular_spine
      && Cache.hit_bit r
      && pkt.Packet.promo = None
    then begin
      let dst_node = Topo.Topology.node_of_pip t.topo pip in
      let own_pod = Topo.Node.pod_of (Topo.Topology.kind t.topo st.sw_id) in
      let dst_pod = Topo.Node.pod_of (Topo.Topology.kind t.topo dst_node) in
      if dst_pod <> own_pod then begin
        pkt.Packet.promo <- Some (pkt.Packet.dst_vip, pip);
        t.promotions <- t.promotions + 1;
        flight t env st pkt "promoted"
      end
    end
  end

let absorb_spill t env st (pkt : Packet.t) =
  match pkt.Packet.spill with
  | Some (vip, pip) when t.cfg.Config.spillover -> (
      let cache = cache_for t st vip in
      if Geo_cache.slots cache = 0 then ()
      else
        match
          Geo_cache.insert cache ~admission:(admission_of_role st.role) vip pip
        with
        | Cache.Inserted _ | Cache.Updated ->
            pkt.Packet.spill <- None;
            t.spills_absorbed <- t.spills_absorbed + 1;
            flight t env st pkt "spill_absorbed"
        | Cache.Rejected -> ())
  | Some _ | None -> ()

(* Role-dependent learning (Table 1). The gateway-ToR's learning
   packet is NOT sent here — that is the emit stage's job, so the
   stage split matches the paper's pipeline (admission before
   control-packet generation). *)
let learn t env st (pkt : Packet.t) =
  match st.role with
  | Topo.Node.Gateway_tor ->
      if pkt.Packet.resolved then
        insert_with_spill t env st pkt ~admission:`All
          pkt.Packet.dst_vip pkt.Packet.dst_pip
  | Topo.Node.Gateway_spine ->
      if pkt.Packet.resolved then
        insert_with_spill t env st pkt ~admission:`A_bit_clear
          pkt.Packet.dst_vip pkt.Packet.dst_pip
  | Topo.Node.Regular_tor ->
      if t.cfg.Config.source_learning then
        insert_with_spill t env st pkt ~admission:`All
          pkt.Packet.src_vip pkt.Packet.src_pip
  | Topo.Node.Regular_spine ->
      if pkt.Packet.resolved then
        insert_with_spill t env st pkt ~admission:`A_bit_clear
          pkt.Packet.dst_vip pkt.Packet.dst_pip
  | Topo.Node.Core_switch -> (
      match pkt.Packet.promo with
      | Some (vip, pip) when t.cfg.Config.promotion ->
          insert_with_spill t env st pkt ~admission:`A_bit_clear vip pip;
          pkt.Packet.promo <- None
      | Some _ | None -> ())

let is_tor st =
  match st.role with
  | Topo.Node.Regular_tor | Topo.Node.Gateway_tor -> true
  | Topo.Node.Regular_spine | Topo.Node.Gateway_spine | Topo.Node.Core_switch ->
      false

(* The four pipeline stages (classify -> lookup -> learn -> emit).
   Each returns an int {!Verdict}; [Verdict.next] means "no final
   verdict, run the following stage". Control packets are fully
   handled by [classify]; data/ack packets flow through all four
   stages and end up forwarded. Stage order must not change: it fixes
   the RNG draw sequence (learning-packet coin flips) and hence the
   golden event transcripts. *)

let classify t env ~switch ~from (pkt : Packet.t) =
  let st = state t switch in
  match pkt.Packet.kind with
  | Packet.Learning ->
      if Pip.equal pkt.Packet.dst_pip (Topo.Topology.pip t.topo switch)
      then begin
        (match pkt.Packet.mapping_payload with
        | Some (vip, pip) ->
            insert_no_spill t st ~admission:`All vip pip
        | None -> ());
        Verdict.consume
      end
      else Verdict.forward
  | Packet.Invalidation ->
      (match pkt.Packet.mapping_payload with
      | Some (vip, stale) ->
          if Geo_cache.invalidate (cache_for t st vip) vip ~stale then begin
            t.entries_invalidated <- t.entries_invalidated + 1;
            flight t env st pkt "invalidated"
          end
      | None -> ());
      if Pip.equal pkt.Packet.dst_pip (Topo.Topology.pip t.topo switch)
      then Verdict.consume
      else Verdict.forward
  | Packet.Data | Packet.Ack ->
      (* Misdelivery tagging: a packet entering from an attached
         server whose outer source is not that server was re-forwarded
         by the hypervisor after a misdelivery. *)
      if
        is_tor st
        && Hashtbl.mem st.attached_hosts from
        && not (Pip.equal pkt.Packet.src_pip (Topo.Topology.pip t.topo from))
        && pkt.Packet.misdelivery < 0
      then begin
        let stale = Topo.Topology.pip t.topo from in
        pkt.Packet.misdelivery <- Pip.to_int stale;
        t.misdelivery_tags <- t.misdelivery_tags + 1;
        flight t env st pkt "tagged";
        let target = pkt.Packet.hit_switch in
        pkt.Packet.hit_switch <- -1;
        send_invalidation t env st ~target ~vip:pkt.Packet.dst_vip ~stale
      end;
      Verdict.next

let lookup t env ~switch ~from:_ (pkt : Packet.t) =
  (match pkt.Packet.kind with
  | Packet.Data | Packet.Ack ->
      (* Tagged packets use the conservative variant. *)
      if not pkt.Packet.resolved then begin
        let st = state t switch in
        if pkt.Packet.misdelivery >= 0 then handle_tagged t env st pkt
        else if pkt.Packet.gw_pinned then handle_pinned t env st pkt
        else regular_lookup t env st pkt
      end
  | Packet.Learning | Packet.Invalidation -> ());
  Verdict.next

let admit t env ~switch ~from:_ (pkt : Packet.t) =
  (match pkt.Packet.kind with
  | Packet.Data | Packet.Ack ->
      let st = state t switch in
      (* Spillover absorption, then role-dependent learning. *)
      absorb_spill t env st pkt;
      learn t env st pkt
  | Packet.Learning | Packet.Invalidation -> ());
  Verdict.next

let emit t env ~switch ~from:_ (pkt : Packet.t) =
  (match pkt.Packet.kind with
  | Packet.Data | Packet.Ack -> (
      let st = state t switch in
      match st.role with
      | Topo.Node.Gateway_tor ->
          if pkt.Packet.resolved then maybe_send_learning_packet t env st pkt
      | Topo.Node.Gateway_spine | Topo.Node.Regular_tor
      | Topo.Node.Regular_spine | Topo.Node.Core_switch ->
          ())
  | Packet.Learning | Packet.Invalidation -> ());
  Verdict.next

let process_packed t env ~switch ~from (pkt : Packet.t) =
  let v = classify t env ~switch ~from pkt in
  if v <> Verdict.next then v
  else begin
    (* The remaining stages never yield a final verdict for data/ack
       traffic; data packets always keep forwarding. *)
    ignore (lookup t env ~switch ~from pkt : int);
    ignore (admit t env ~switch ~from pkt : int);
    ignore (emit t env ~switch ~from pkt : int);
    Verdict.forward
  end

let process t env ~switch ~from (pkt : Packet.t) =
  let v = process_packed t env ~switch ~from pkt in
  if Verdict.tag v = Verdict.tag_consume then Consume else Forward

let reassign_role t ~switch role =
  let st = state t switch in
  let compatible =
    match (st.role, role) with
    | (Topo.Node.Regular_tor | Topo.Node.Gateway_tor),
      (Topo.Node.Regular_tor | Topo.Node.Gateway_tor) ->
        true
    | (Topo.Node.Regular_spine | Topo.Node.Gateway_spine),
      (Topo.Node.Regular_spine | Topo.Node.Gateway_spine) ->
        true
    | Topo.Node.Core_switch, Topo.Node.Core_switch -> true
    | ( ( Topo.Node.Regular_tor | Topo.Node.Gateway_tor
        | Topo.Node.Regular_spine | Topo.Node.Gateway_spine
        | Topo.Node.Core_switch ),
        _ ) ->
        false
  in
  if not compatible then
    invalid_arg "Dataplane.reassign_role: incompatible tier";
  st.role <- role

let role_of t ~switch = (state t switch).role

let fail_switch t ~switch =
  Array.iter Geo_cache.clear (state t switch).caches
