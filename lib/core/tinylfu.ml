module Vip = Netcore.Addr.Vip

(* TinyLFU-style frequency admission (Einziger et al.): a 4-bit
   count-min sketch tracks approximate access frequency; an insert
   that would evict a resident entry is admitted only when the
   candidate's estimated frequency exceeds the victim's. Counters
   halve after every [sample] touches, aging history so the sketch
   follows the working set.

   The sketch is dataplane-shaped: [rows] register arrays of [width]
   4-bit saturating counters (two per byte), indexed by per-row hashes
   of the key — exactly the structure a Tofino stage can host, which
   is what the [P4model.Resources] sketch costing charges for. *)

type backing =
  | Direct of Cache.t
  | Dleft of Dleft.t
  | Assoc of Assoc_cache.t

type t = {
  backing : backing;
  counters : Bytes.t; (* rows * width nibbles, two per byte *)
  rows : int;
  width : int;
  sample : int;
  always_admit : bool;
  mutable touches : int;
  mutable halvings : int;
  mutable admitted : int;
  mutable denied : int;
}

let backing_slots = function
  | Direct c -> Cache.slots c
  | Dleft c -> Dleft.slots c
  | Assoc c -> Assoc_cache.slots c

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(rows = 4) ?width ?sample ?(always_admit = false) backing =
  if rows <= 0 then invalid_arg "Tinylfu.create: rows must be positive";
  let slots = backing_slots backing in
  (* Default sketch: ~4 counters per cached line per row (the classic
     "sketch much larger than the cache" sizing), floor 16 so tiny
     caches still discriminate. *)
  let width =
    match width with
    | Some w ->
        if w <= 0 then invalid_arg "Tinylfu.create: width must be positive";
        w
    | None -> next_pow2 (max 16 (4 * slots))
  in
  let sample =
    match sample with
    | Some s ->
        if s <= 0 then invalid_arg "Tinylfu.create: sample must be positive";
        s
    | None -> max 64 (10 * slots)
  in
  {
    backing;
    counters = Bytes.make ((rows * width + 1) / 2) '\000';
    rows;
    width;
    sample;
    always_admit;
    touches = 0;
    halvings = 0;
    admitted = 0;
    denied = 0;
  }

let backing t = t.backing
let rows t = t.rows
let width t = t.width
let sample_period t = t.sample
let always_admit t = t.always_admit

(* Per-row index: the shared hardware hash over the key perturbed by a
   fixed per-row constant (row 0 unseeded; independence across rows is
   what count-min needs, not agreement with the cache's index). *)
let row_seed r = r * 0x1B873593

let col_of t r v = Cache.mix (v lxor row_seed r) mod t.width

let nibble t i =
  let b = Char.code (Bytes.get t.counters (i lsr 1)) in
  if i land 1 = 0 then b land 0xF else b lsr 4

let set_nibble t i x =
  let j = i lsr 1 in
  let b = Char.code (Bytes.get t.counters j) in
  let b' = if i land 1 = 0 then b land 0xF0 lor x else b land 0x0F lor (x lsl 4) in
  Bytes.set t.counters j (Char.chr b')

let halve t =
  for j = 0 to Bytes.length t.counters - 1 do
    let b = Char.code (Bytes.get t.counters j) in
    (* Both nibbles halved in one shift: clear the bit that crosses
       the nibble boundary and the top bit. *)
    Bytes.set t.counters j (Char.chr ((b lsr 1) land 0x77))
  done;
  t.halvings <- t.halvings + 1

(* Count one access to key [v]: bump every row's counter (saturating
   at 15); age the sketch when the sample period elapses. *)
let touch t v =
  for r = 0 to t.rows - 1 do
    let i = (r * t.width) + col_of t r v in
    let x = nibble t i in
    if x < 15 then set_nibble t i (x + 1)
  done;
  t.touches <- t.touches + 1;
  if t.touches >= t.sample then begin
    t.touches <- 0;
    halve t
  end

let estimate t v =
  let e = ref 15 in
  for r = 0 to t.rows - 1 do
    let x = nibble t ((r * t.width) + col_of t r v) in
    if x < !e then e := x
  done;
  !e

let estimate_vip t vip = estimate t (Vip.to_int vip)

let lookup t vip =
  touch t (Vip.to_int vip);
  match t.backing with
  | Direct c -> Cache.lookup c vip
  | Dleft c -> Dleft.lookup c vip
  | Assoc c -> Assoc_cache.lookup c vip

let peek t vip =
  match t.backing with
  | Direct c -> Cache.peek c vip
  | Dleft c -> Dleft.peek c vip
  | Assoc c -> Assoc_cache.peek c vip

let victim_key t vip =
  match t.backing with
  | Direct c -> Cache.victim_key c vip
  | Dleft c -> Dleft.victim_key c vip
  | Assoc c -> Assoc_cache.victim_key c vip

let insert t ~admission vip pip =
  let v = Vip.to_int vip in
  touch t v;
  let victim = victim_key t vip in
  (* Inserts that update or fill an empty line bypass the filter —
     admission only arbitrates evictions, as in TinyLFU. *)
  let admit =
    t.always_admit || victim < 0 || estimate t v > estimate t victim
  in
  if not admit then begin
    t.denied <- t.denied + 1;
    Cache.Rejected
  end
  else begin
    t.admitted <- t.admitted + 1;
    match t.backing with
    | Direct c -> Cache.insert c ~admission vip pip
    | Dleft c -> Dleft.insert c ~admission vip pip
    | Assoc c ->
        (* The LRU backing reports no eviction payload (no spillover
           rider from this geometry); classify update-vs-insert for
           the caller's accounting. *)
        let present = Assoc_cache.peek c vip <> None in
        Assoc_cache.insert c vip pip;
        if present then Cache.Updated else Cache.Inserted None
  end

let invalidate t vip ~stale =
  match t.backing with
  | Direct c -> Cache.invalidate c vip ~stale
  | Dleft c -> Dleft.invalidate c vip ~stale
  | Assoc _ -> false

let clear t =
  (match t.backing with
  | Direct c -> Cache.clear c
  | Dleft c -> Dleft.clear c
  | Assoc _ -> ());
  (* The sketch is data-plane register state: a reboot loses it too. *)
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\000';
  t.touches <- 0

let slots t = backing_slots t.backing

let occupancy t =
  match t.backing with
  | Direct c -> Cache.occupancy c
  | Dleft c -> Dleft.occupancy c
  | Assoc c -> Assoc_cache.occupancy c

let hits t =
  match t.backing with
  | Direct c -> Cache.hits c
  | Dleft c -> Dleft.hits c
  | Assoc c -> Assoc_cache.hits c

let misses t =
  match t.backing with
  | Direct c -> Cache.misses c
  | Dleft c -> Dleft.misses c
  | Assoc c -> Assoc_cache.misses c

let insertions t =
  match t.backing with
  | Direct c -> Cache.insertions c
  | Dleft c -> Dleft.insertions c
  | Assoc _ -> 0

let evictions t =
  match t.backing with
  | Direct c -> Cache.evictions c
  | Dleft c -> Dleft.evictions c
  | Assoc _ -> 0

(* Admission rejections: the sketch's denials plus whatever the
   backing's own policy turned away after the filter admitted. *)
let rejections t =
  t.denied
  +
  match t.backing with
  | Direct c -> Cache.rejections c
  | Dleft c -> Dleft.rejections c
  | Assoc _ -> 0

let admitted t = t.admitted
let denied t = t.denied
let halvings t = t.halvings
