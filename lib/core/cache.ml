module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip

type t = {
  keys : int array; (* -1 = empty *)
  values : int array;
  access : Bytes.t;
  n : int;
  mutable occupancy : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable rejections : int;
}

type admission = [ `All | `A_bit_clear ]

type insert_result =
  | Inserted of (Vip.t * Pip.t) option
  | Updated
  | Rejected

let create ~slots =
  if slots < 0 then invalid_arg "Cache.create: negative slots";
  {
    keys = Array.make slots (-1);
    values = Array.make slots (-1);
    access = Bytes.make slots '\000';
    n = slots;
    occupancy = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    rejections = 0;
  }

let slots t = t.n

(* Fixed hash shared by all switches, standing in for the hardware CRC.
   Bit-identical to the splitmix64 finalizer step
     z = of_int (v * 0x9E3779B9);
     to_int ((mul (logxor z (lsr z 30)) 0xBF58476D1CE4E5B9L) lsr 33)
   but computed in native int limbs: boxed Int64 temporaries would cost
   ~6 minor words per lookup, and this runs on the per-hop path. Only
   the high 31 bits of the 64-bit product are needed, so the multiply
   keeps just the carry into the high limb. *)
let mix v =
  let a = v * 0x9E3779B9 in
  let lo = a land 0xFFFFFFFF and hi = (a asr 32) land 0xFFFFFFFF in
  let lo1 = (lo lxor ((hi lsl 2) lor (lo lsr 30))) land 0xFFFFFFFF in
  let hi1 = hi lxor (hi lsr 30) in
  let cl = 0x1CE4E5B9 and ch = 0xBF58476D in
  let carry = (lo1 * cl) lsr 32 in
  let mid =
    ((((lo1 lsr 16) * ch) land 0xFFFF) lsl 16)
    + ((lo1 land 0xFFFF) * ch)
    + (hi1 * cl)
    + carry
  in
  (mid land 0xFFFFFFFF) lsr 1

let slot_of t vip = mix (Vip.to_int vip) mod t.n

let miss = -1
let hit_pip h = Pip.of_int (h lsr 1)
let hit_bit h = h land 1 = 1

let lookup t vip =
  if t.n = 0 then begin
    t.misses <- t.misses + 1;
    miss
  end
  else begin
    let i = slot_of t vip in
    let key = t.keys.(i) in
    if key = Vip.to_int vip then begin
      t.hits <- t.hits + 1;
      let was_set = if Bytes.get t.access i = '\001' then 1 else 0 in
      Bytes.set t.access i '\001';
      (t.values.(i) lsl 1) lor was_set
    end
    else begin
      t.misses <- t.misses + 1;
      (* A conflicting occupant loses its access bit: it was consulted
         and was not useful. *)
      if key >= 0 then Bytes.set t.access i '\000';
      miss
    end
  end

let peek t vip =
  if t.n = 0 then None
  else
    let i = slot_of t vip in
    if t.keys.(i) = Vip.to_int vip then Some (Pip.of_int t.values.(i)) else None

let access_bit t vip =
  if t.n = 0 then None
  else
    let i = slot_of t vip in
    if t.keys.(i) = Vip.to_int vip then Some (Bytes.get t.access i = '\001')
    else None

let insert t ~admission vip pip =
  if t.n = 0 then begin
    t.rejections <- t.rejections + 1;
    Rejected
  end
  else begin
    let i = slot_of t vip in
    let key = t.keys.(i) in
    if key = Vip.to_int vip then begin
      t.values.(i) <- Pip.to_int pip;
      Updated
    end
    else if key < 0 then begin
      t.keys.(i) <- Vip.to_int vip;
      t.values.(i) <- Pip.to_int pip;
      Bytes.set t.access i '\000';
      t.occupancy <- t.occupancy + 1;
      t.insertions <- t.insertions + 1;
      Inserted None
    end
    else begin
      let admit =
        match admission with
        | `All -> true
        | `A_bit_clear -> Bytes.get t.access i = '\000'
      in
      if not admit then begin
        t.rejections <- t.rejections + 1;
        Rejected
      end
      else begin
        let evicted = (Vip.of_int key, Pip.of_int t.values.(i)) in
        t.keys.(i) <- Vip.to_int vip;
        t.values.(i) <- Pip.to_int pip;
        Bytes.set t.access i '\000';
        t.insertions <- t.insertions + 1;
        t.evictions <- t.evictions + 1;
        Inserted (Some evicted)
      end
    end
  end

(* The entry an [insert ~admission:`All] for [vip] would evict right
   now: the slot's occupant key, or -1 when the insert would be an
   update or land on an empty line. Int-packed (no option) — the
   TinyLFU admission front end calls this once per insert attempt. *)
let victim_key t vip =
  if t.n = 0 then -1
  else
    let i = slot_of t vip in
    let key = t.keys.(i) in
    if key = Vip.to_int vip then -1 else key

let invalidate t vip ~stale =
  if t.n = 0 then false
  else begin
    let i = slot_of t vip in
    if t.keys.(i) = Vip.to_int vip && t.values.(i) = Pip.to_int stale then begin
      t.keys.(i) <- -1;
      t.values.(i) <- -1;
      Bytes.set t.access i '\000';
      t.occupancy <- t.occupancy - 1;
      true
    end
    else false
  end

let clear t =
  Array.fill t.keys 0 t.n (-1);
  Array.fill t.values 0 t.n (-1);
  Bytes.fill t.access 0 t.n '\000';
  t.occupancy <- 0

let occupancy t = t.occupancy
let hits t = t.hits
let misses t = t.misses
let insertions t = t.insertions
let evictions t = t.evictions
let rejections t = t.rejections
