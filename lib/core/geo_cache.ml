(* Geometry dispatcher for the dataplane's per-switch caches: one
   branch-only variant match in front of the concrete cache modules,
   so [Dataplane] selects an organization from [Config.geometry]
   without allocating on the per-hop path. All arms share [Cache]'s
   int-packed lookup convention ([Cache.miss] / [hit_pip] / [hit_bit])
   and [Cache.insert_result]. *)

type t = Direct of Cache.t | Dleft of Dleft.t | Lfu of Tinylfu.t

let create (geometry : Config.geometry) ~tinylfu ~slots =
  match geometry with
  | Config.Geo_direct ->
      let c = Cache.create ~slots in
      if tinylfu then Lfu (Tinylfu.create (Tinylfu.Direct c)) else Direct c
  | Config.Geo_dleft d ->
      (* Round the share down to a multiple of d, as the partitioner's
         slot counts carry no divisibility guarantee. *)
      let c = Dleft.create ~d ~slots:(slots - (slots mod d)) in
      if tinylfu then Lfu (Tinylfu.create (Tinylfu.Dleft c)) else Dleft c

let lookup t vip =
  match t with
  | Direct c -> Cache.lookup c vip
  | Dleft c -> Dleft.lookup c vip
  | Lfu c -> Tinylfu.lookup c vip

let insert t ~admission vip pip =
  match t with
  | Direct c -> Cache.insert c ~admission vip pip
  | Dleft c -> Dleft.insert c ~admission vip pip
  | Lfu c -> Tinylfu.insert c ~admission vip pip

let invalidate t vip ~stale =
  match t with
  | Direct c -> Cache.invalidate c vip ~stale
  | Dleft c -> Dleft.invalidate c vip ~stale
  | Lfu c -> Tinylfu.invalidate c vip ~stale

let peek t vip =
  match t with
  | Direct c -> Cache.peek c vip
  | Dleft c -> Dleft.peek c vip
  | Lfu c -> Tinylfu.peek c vip

let clear t =
  match t with
  | Direct c -> Cache.clear c
  | Dleft c -> Dleft.clear c
  | Lfu c -> Tinylfu.clear c

let slots t =
  match t with
  | Direct c -> Cache.slots c
  | Dleft c -> Dleft.slots c
  | Lfu c -> Tinylfu.slots c

let occupancy t =
  match t with
  | Direct c -> Cache.occupancy c
  | Dleft c -> Dleft.occupancy c
  | Lfu c -> Tinylfu.occupancy c

let hits t =
  match t with
  | Direct c -> Cache.hits c
  | Dleft c -> Dleft.hits c
  | Lfu c -> Tinylfu.hits c

let misses t =
  match t with
  | Direct c -> Cache.misses c
  | Dleft c -> Dleft.misses c
  | Lfu c -> Tinylfu.misses c

let insertions t =
  match t with
  | Direct c -> Cache.insertions c
  | Dleft c -> Dleft.insertions c
  | Lfu c -> Tinylfu.insertions c

let evictions t =
  match t with
  | Direct c -> Cache.evictions c
  | Dleft c -> Dleft.evictions c
  | Lfu c -> Tinylfu.evictions c

let rejections t =
  match t with
  | Direct c -> Cache.rejections c
  | Dleft c -> Dleft.rejections c
  | Lfu c -> Tinylfu.rejections c

let direct_exn t =
  match t with
  | Direct c -> c
  | Lfu l -> (
      match Tinylfu.backing l with
      | Tinylfu.Direct c -> c
      | Tinylfu.Dleft _ | Tinylfu.Assoc _ ->
          invalid_arg "Geo_cache.direct_exn: d-left/assoc-backed cache")
  | Dleft _ -> invalid_arg "Geo_cache.direct_exn: d-left cache"
