(** d-left V2P cache: [d] subtables with independent hash functions,
    one access bit per line ("Limited Associativity Caching in the
    Data Plane" — associativity without LRU state, feasible as [d]
    parallel register-array reads).

    Lookup probes one line per way and returns on the first match;
    insert updates an existing key, else fills the first empty way,
    else applies the admission policy to pick a victim. With one line
    per bucket per subtable, d-left's "least-loaded" rule degenerates
    to "first subtable with a free line" (leftmost tie-break).

    Way 0 hashes with {!Cache.mix} unseeded, so a [d = 1] table is
    byte-for-byte the direct-mapped {!Cache} — lookup results, access
    bits, counters and admission outcomes all coincide. The QCheck
    equivalence suite pins this.

    Same int-packed sentinel conventions as {!Cache} ({!miss},
    {!hit_pip}, {!hit_bit}); results reuse {!Cache.insert_result} so
    the dataplane can switch geometry without touching its match
    arms. *)

type t

(** [create ~d ~slots] — [slots] total lines, split as [d] subtables
    of [slots/d]. Raises [Invalid_argument] if [d <= 0], [slots < 0],
    or [d] does not divide [slots]. [slots = 0] is the same legal
    degenerate cache as {!Cache}: every lookup misses, every insert is
    rejected. *)
val create : d:int -> slots:int -> t

val slots : t -> int

(** [ways t] is [d]. *)
val ways : t -> int

val miss : int

(** [lookup t vip] — probes ways in order; a hit sets the line's
    access bit and returns the same packed [(pip lsl 1) lor was_set]
    encoding as {!Cache.lookup}. Every probed occupant that was not
    the key loses its access bit (the per-way conflict-miss rule). *)
val lookup : t -> Netcore.Addr.Vip.t -> int

val hit_pip : int -> Netcore.Addr.Pip.t
val hit_bit : int -> bool

val peek : t -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t option
val access_bit : t -> Netcore.Addr.Vip.t -> bool option

(** [insert t ~admission vip pip] — update, else first empty way, else
    evict per policy: [`A_bit_clear] replaces the first way whose
    access bit is clear (rejecting when all d are set); [`All] prefers
    a clear-bit way and falls back to way 0. *)
val insert :
  t ->
  admission:Cache.admission ->
  Netcore.Addr.Vip.t ->
  Netcore.Addr.Pip.t ->
  Cache.insert_result

(** [victim_key t vip] — the key an [insert ~admission:`All] would
    evict right now, or [-1] (update, empty way available, or zero
    slots). Side-effect- and allocation-free; see {!Cache.victim_key}. *)
val victim_key : t -> Netcore.Addr.Vip.t -> int

val invalidate : t -> Netcore.Addr.Vip.t -> stale:Netcore.Addr.Pip.t -> bool

(** [clear t] drops every entry, preserving statistics counters. *)
val clear : t -> unit

val occupancy : t -> int
val hits : t -> int
val misses : t -> int
val insertions : t -> int
val evictions : t -> int
val rejections : t -> int
