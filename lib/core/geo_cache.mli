(** Geometry dispatcher for the per-switch V2P caches.

    The dataplane holds [Geo_cache.t] values and selects the concrete
    organization from {!Config.geometry} / [Config.tinylfu] at build
    time; every operation is a single branch-only variant match, so
    geometry selection costs no allocation on the per-hop path (the
    0.0 words/dispatch CI gate covers it).

    All arms share {!Cache}'s int-packed conventions: {!lookup}
    returns {!Cache.miss} or the packed [(pip lsl 1) lor was_set]
    form (decode with {!Cache.hit_pip} / {!Cache.hit_bit}), and
    {!insert} returns {!Cache.insert_result}. *)

type t = Direct of Cache.t | Dleft of Dleft.t | Lfu of Tinylfu.t

(** [create geometry ~tinylfu ~slots] — the concrete cache for one
    tenant partition. d-left shares are rounded down to a multiple of
    [d]; [tinylfu] wraps the result in a {!Tinylfu} front end with
    default sketch sizing. *)
val create : Config.geometry -> tinylfu:bool -> slots:int -> t

val lookup : t -> Netcore.Addr.Vip.t -> int

val insert :
  t ->
  admission:Cache.admission ->
  Netcore.Addr.Vip.t ->
  Netcore.Addr.Pip.t ->
  Cache.insert_result

val invalidate : t -> Netcore.Addr.Vip.t -> stale:Netcore.Addr.Pip.t -> bool
val peek : t -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t option
val clear : t -> unit
val slots : t -> int
val occupancy : t -> int
val hits : t -> int
val misses : t -> int
val insertions : t -> int
val evictions : t -> int
val rejections : t -> int

(** [direct_exn t] is the underlying direct-mapped {!Cache} — the
    compatibility accessor behind [Dataplane.cache] for the default
    geometry. Raises [Invalid_argument] for d-left or assoc-backed
    caches. *)
val direct_exn : t -> Cache.t
