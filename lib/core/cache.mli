(** Direct-mapped V2P cache with per-line access bits (§3.2).

    The cache mirrors the paper's P4 register-array layout: one array
    of keys (VIPs), one of values (PIPs), and one of access bits. The
    slot for a VIP is a fixed hash of the key, so an insertion can only
    evict the current occupant of that one slot — no LRU, no chaining.

    Access-bit semantics (paper §3.2, "Cache structure"):
    - a lookup that hits sets the line's access bit;
    - a lookup that lands on the line but finds a different key (a
      conflict miss) {e clears} the access bit, marking the entry as
      not-recently-useful so conservative admission can replace it. *)

type t

(** Admission policies from Table 1. [`All] always admits (evicting
    the occupant if needed); [`A_bit_clear] admits only when the
    occupied slot's access bit is clear (an empty slot always
    admits). *)
type admission = [ `All | `A_bit_clear ]

type insert_result =
  | Inserted of (Netcore.Addr.Vip.t * Netcore.Addr.Pip.t) option
      (** admitted; payload is the evicted valid entry, if any — the
          candidate for spillover *)
  | Updated  (** key already present; value refreshed *)
  | Rejected  (** admission policy kept the occupant *)

(** [create ~slots] is an empty cache with [slots] lines. [slots = 0]
    is a legal degenerate cache on which every lookup misses and every
    insert is rejected. Raises [Invalid_argument] if [slots < 0]. *)
val create : slots:int -> t

val slots : t -> int

(** [mix v] is the fixed 31-bit hash every cache geometry shares,
    standing in for the hardware CRC (bit-identical to a splitmix64
    finalizer step, computed in native int limbs so the per-hop path
    stays allocation-free). Exposed so {!Dleft} and {!Tinylfu} index
    with the same function — way 0 of a d-left table must agree with
    the direct-mapped slot for the d=1 equivalence to hold. *)
val mix : int -> int

val miss : int
(** the (negative) sentinel {!lookup} returns on a miss *)

(** [lookup t vip] applies the access-bit side effects described
    above. Returns {!miss} on a miss; on a hit, a non-negative int
    packing the mapped PIP together with the value the access bit had
    {e before} this lookup — spine switches promote an entry to the
    core tier only when a hit finds the bit already set (§3.2.2).
    Decode with {!hit_pip} / {!hit_bit}. The packed form keeps the
    per-hop path allocation-free (the option/tuple result was the last
    per-lookup allocation). *)
val lookup : t -> Netcore.Addr.Vip.t -> int

(** [hit_pip h] / [hit_bit h] decode a non-[miss] {!lookup} result. *)
val hit_pip : int -> Netcore.Addr.Pip.t

val hit_bit : int -> bool

(** [peek t vip] is a side-effect-free lookup (for tests and metrics). *)
val peek : t -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t option

(** [access_bit t vip] is the line's access bit if [vip] is cached. *)
val access_bit : t -> Netcore.Addr.Vip.t -> bool option

(** [insert t ~admission vip pip] attempts to install the mapping.
    A freshly admitted entry has its access bit clear. *)
val insert : t -> admission:admission -> Netcore.Addr.Vip.t -> Netcore.Addr.Pip.t -> insert_result

(** [victim_key t vip] is the key (as an int) that
    [insert ~admission:`All t vip _] would evict right now, or [-1]
    when that insert would be an update or fill an empty line.
    Side-effect-free and allocation-free — the {!Tinylfu} admission
    filter probes the victim's frequency before every insert. *)
val victim_key : t -> Netcore.Addr.Vip.t -> int

(** [invalidate t vip ~stale] removes the entry for [vip] if its
    current value equals [stale]; returns whether an entry was
    removed. *)
val invalidate : t -> Netcore.Addr.Vip.t -> stale:Netcore.Addr.Pip.t -> bool

(** [clear t] drops every entry (a switch reboot / failure losing its
    data-plane state). Statistics counters are preserved. *)
val clear : t -> unit

(** [occupancy t] is the number of valid entries. *)
val occupancy : t -> int

(** Cumulative statistics since creation. *)
val hits : t -> int

val misses : t -> int
val insertions : t -> int
val evictions : t -> int

(** [rejections t] counts insert attempts the admission policy (or a
    zero-slot cache) turned away — the Table-1 admission behaviour the
    telemetry layer reports per tier. *)
val rejections : t -> int
