(** The SwitchV2P data plane: per-switch caches plus the full §3
    pipeline — lookup/rewrite, role-dependent learning (Table 1),
    learning packets, spillover, promotion, misdelivery tagging and
    the invalidation protocol.

    This module is engine-agnostic: the host simulator supplies an
    {!env} with a clock, a packet injector and an id allocator, and
    calls {!process} for every packet a switch receives. *)

(** Capabilities the surrounding simulator provides. *)
type env = {
  now : unit -> Dessim.Time_ns.t;
  emit : src_switch:int -> Netcore.Packet.t -> unit;
      (** inject a freshly generated control packet at a switch *)
  fresh_packet_id : unit -> int;
  rng : Dessim.Rng.t;
}

type t

(** What {!process} tells the simulator to do with the packet. *)
type verdict =
  | Forward  (** keep routing toward [dst_pip] (possibly rewritten) *)
  | Consume  (** the packet terminated at this switch *)

(** [create ?partition config topo ~total_cache_slots] builds
    per-switch caches. [total_cache_slots] is the aggregate cache size
    over all switches, divided according to [config.allocation]
    (uniform by default, remainder round-robin). Each switch's share
    is further split into private per-tenant partitions when
    [partition] is given (§4 multitenancy); the default is a single
    tenant owning the whole VIP space. *)
val create :
  ?partition:Partition.t ->
  Config.t ->
  Topo.Topology.t ->
  total_cache_slots:int ->
  t

val config : t -> Config.t

(** {1 Pipeline stages}

    The §3 per-switch program, split along the paper's match-action
    boundaries. Each stage takes the packet arriving at [switch] from
    neighbor [from], mutates it in place, and returns an int
    {!Verdict}: a final verdict ends processing; {!Verdict.next}
    hands the packet to the following stage.

    - {!classify} — control-packet handling (learning/invalidation
      delivery) and ToR misdelivery tagging + invalidation emission;
    - {!lookup} — cache lookup/rewrite (tagged packets use the
      conservative variant) and spine promotion marking;
    - {!admit} — spillover absorption and role-dependent learning
      (Table 1 admission policies);
    - {!emit} — gateway-ToR learning-packet generation.

    Stage order is part of the simulation contract: it fixes the RNG
    draw sequence and therefore the golden transcripts. *)

val classify : t -> env -> switch:int -> from:int -> Netcore.Packet.t -> int
val lookup : t -> env -> switch:int -> from:int -> Netcore.Packet.t -> int
val admit : t -> env -> switch:int -> from:int -> Netcore.Packet.t -> int
val emit : t -> env -> switch:int -> from:int -> Netcore.Packet.t -> int

(** [process_packed t env ~switch ~from pkt] runs all four stages in
    order and returns the final int verdict (allocation-free). *)
val process_packed :
  t -> env -> switch:int -> from:int -> Netcore.Packet.t -> int

(** [process t env ~switch ~from pkt] is {!process_packed} with the
    result decoded into a {!verdict} (data/ack traffic never delays or
    drops, so the two-constructor variant is lossless here). *)
val process : t -> env -> switch:int -> from:int -> Netcore.Packet.t -> verdict

(** [geo_cache t ~switch] is the switch's tenant-0 cache under
    whatever organization [config.geometry] selected. Raises
    [Invalid_argument] if [switch] is not a switch node. *)
val geo_cache : t -> switch:int -> Geo_cache.t

(** [cache t ~switch] is the switch's tenant-0 cache — the whole cache
    in the default single-tenant configuration (tests, metrics).
    Raises [Invalid_argument] if [switch] is not a switch node, or if
    the configured geometry is not direct-mapped (use {!geo_cache}
    then). *)
val cache : t -> switch:int -> Cache.t

(** [cache_of_tenant t ~switch ~tenant] is one tenant's private
    partition. Raises [Invalid_argument] on bad indices or a
    non-direct geometry. *)
val cache_of_tenant : t -> switch:int -> tenant:int -> Cache.t

(** [slots_of t ~switch] is that switch's total cache capacity across
    tenants. *)
val slots_of : t -> switch:int -> int

(** [role_of t ~switch] is the switch's current protocol role. *)
val role_of : t -> switch:int -> Topo.Node.role

(** [reassign_role t ~switch role] implements the §4 gateway-migration
    control-plane operation: a ToR may switch between gateway-ToR and
    regular-ToR behavior (and spines likewise) without touching cache
    state. Cross-tier reassignment raises [Invalid_argument]. *)
val reassign_role : t -> switch:int -> Topo.Node.role -> unit

(** [fail_switch t ~switch] models a switch reboot losing its
    data-plane state: every cache partition is wiped. Forwarding
    correctness is unaffected — subsequent packets just miss to the
    gateways (the paper's §2 resilience argument). *)
val fail_switch : t -> switch:int -> unit

(** Aggregate protocol counters. *)

val learning_packets_sent : t -> int
val invalidation_packets_sent : t -> int
val invalidations_suppressed : t -> int

(** [promotions t] counts promotions attached by spines. *)
val promotions : t -> int

(** [spills_attached t] / [spills_absorbed t] track the spillover
    mechanism. *)
val spills_attached : t -> int

val spills_absorbed : t -> int

(** [entries_invalidated t] counts cache lines removed by the
    invalidation machinery (tagged packets and invalidation packets). *)
val entries_invalidated : t -> int

(** [misdelivery_tags t] counts tags assigned by ToRs. *)
val misdelivery_tags : t -> int

(** [set_telemetry t tel] attaches a collector; the pipeline then feeds
    its flight recorder (tag / invalidate / promote / spill events on
    sampled packet ids). Defaults to {!Dessim.Telemetry.disabled}. *)
val set_telemetry : t -> Dessim.Telemetry.t -> unit

(** [probe_telemetry t tel ~now_sec] samples per-role-tier cache
    statistics (occupancy, hits, misses, evictions, admission
    rejections, insertions) into [tel]'s time series. *)
val probe_telemetry : t -> Dessim.Telemetry.t -> now_sec:float -> unit
