(** Analytical model of the Tofino resource footprint of the SwitchV2P
    P4 program (§3.4, Table 6).

    We have no Tofino compiler in this environment, so per-stage
    utilization is computed from the program structure the paper
    describes: three register arrays (keys, values, access bits), the
    role/admission logic as if-else gateways, and the option-header
    parsing. Program-structure costs (crossbar, ALUs, gateways, VLIW,
    TCAM) are constants of the pipeline; SRAM and hash bits scale with
    the per-switch entry count. Constants are calibrated so that the
    paper's 50%-cache configuration (96K entries — half of the 192K a
    switch can hold [Bluebird]) reproduces Table 6. *)

type usage = {
  match_crossbar : float;  (** percent, average per stage *)
  meter_alu : float;
  gateway : float;
  sram : float;
  tcam : float;
  vliw : float;
  hash_bits : float;
}

(** Tofino-1 per-stage capacities used by the model. *)
val stages : int

val sram_bytes_per_stage : int
val hash_bits_per_stage : int

(** [estimate ~entries_per_switch] — per-stage average utilization for
    a direct-mapped cache of that many lines.
    Raises [Invalid_argument] if negative or beyond the 192K capacity
    the paper cites. *)
val estimate : entries_per_switch:int -> usage

(** [paper_config_entries] is 96K: the 50%-cache point of Table 6. *)
val paper_config_entries : int

(** [max_entries] is the 192K per-switch capacity from Bluebird. *)
val max_entries : int

(** The four stages of the dataplane pipeline, mirroring
    [Netsim.Pipeline.kind]; used to decompose the whole-switch
    estimate along the stage boundary. *)
type stage_kind = Classify | Lookup | Learn | Emit

(** [stage_estimate ~entries_per_switch kind] is [kind]'s share of
    {!estimate}: entry-scaled SRAM and the two register-read index
    hashes are charged to [Lookup], the register-write hash to
    [Learn], the constant SRAM floor and the fixed ECMP hash to
    [Classify], and the size-independent logic resources are split by
    fixed program-structure fractions. Summed over the four kinds the
    shares reproduce the whole-switch estimate. *)
val stage_estimate : entries_per_switch:int -> stage_kind -> usage

val stage_kind_name : stage_kind -> string

val pp : Format.formatter -> usage -> unit

(** [rows u] renders the Table 6 layout as (resource, percent) rows. *)
val rows : usage -> (string * float) list
