(** Analytical model of the Tofino resource footprint of the SwitchV2P
    P4 program (§3.4, Table 6).

    We have no Tofino compiler in this environment, so per-stage
    utilization is computed from the program structure the paper
    describes: three register arrays (keys, values, access bits), the
    role/admission logic as if-else gateways, and the option-header
    parsing. Program-structure costs (crossbar, ALUs, gateways, VLIW,
    TCAM) are constants of the pipeline; SRAM and hash bits scale with
    the per-switch entry count. Constants are calibrated so that the
    paper's 50%-cache configuration (96K entries — half of the 192K a
    switch can hold [Bluebird]) reproduces Table 6. *)

type usage = {
  match_crossbar : float;  (** percent, average per stage *)
  meter_alu : float;
  gateway : float;
  sram : float;
  tcam : float;
  vliw : float;
  hash_bits : float;
}

(** Tofino-1 per-stage capacities used by the model. *)
val stages : int

val sram_bytes_per_stage : int
val hash_bits_per_stage : int

(** [estimate ~entries_per_switch] — per-stage average utilization for
    a direct-mapped cache of that many lines.
    Raises [Invalid_argument] if negative or beyond the 192K capacity
    the paper cites. *)
val estimate : entries_per_switch:int -> usage

(** [paper_config_entries] is 96K: the 50%-cache point of Table 6. *)
val paper_config_entries : int

(** [max_entries] is the 192K per-switch capacity from Bluebird. *)
val max_entries : int

(** The four stages of the dataplane pipeline, mirroring
    [Netsim.Pipeline.kind]; used to decompose the whole-switch
    estimate along the stage boundary. *)
type stage_kind = Classify | Lookup | Learn | Emit

(** [stage_estimate ~entries_per_switch kind] is [kind]'s share of
    {!estimate}: entry-scaled SRAM and the two register-read index
    hashes are charged to [Lookup], the register-write hash to
    [Learn], the constant SRAM floor and the fixed ECMP hash to
    [Classify], and the size-independent logic resources are split by
    fixed program-structure fractions. Summed over the four kinds the
    shares reproduce the whole-switch estimate. *)
val stage_estimate : entries_per_switch:int -> stage_kind -> usage

val stage_kind_name : stage_kind -> string

(** {2 Exact SRAM bit costing per cache geometry}

    The cache-geometry frontier plots hit rate against the {e actual}
    SRAM footprint of each geometry, in bits: 32-bit VIP tags and
    16-bit server indices per line, plus per-line replacement metadata
    (1 access bit for direct-mapped and d-left; [ceil(log2 ways)]
    recency-rank bits for a LRU set, floored at 1 so a 1-way set
    collapses to the 49-bit direct-mapped line) and, when a TinyLFU
    admission front end is attached, its count-min sketch
    ([rows * width] 4-bit counters). All integers — no rounding — so
    the per-stage shares re-sum exactly. *)

(** A cache geometry for bit costing. [G_dleft d] is a [d]-way d-left
    table; [G_assoc w] a [w]-way set-associative LRU. Line counts are
    passed separately ([~slots] is the total across ways/sets). *)
type geometry = G_direct | G_dleft of int | G_assoc of int

(** TinyLFU sketch dimensions: [rows * width] 4-bit counters. *)
type sketch = { rows : int; width : int }

(** [sketch_of_slots slots] — the default sketch
    [Switchv2p.Tinylfu.create] builds for a [slots]-line backing:
    4 rows of the next power of two >= [max 16 (4 * slots)]. *)
val sketch_of_slots : int -> sketch

(** ["direct"], ["dleftD"], ["Wway-lru"] — frontier row labels. *)
val geometry_name : geometry -> string

(** [stage_bits ~slots ?sketch g kind] — [kind]'s share of the SRAM
    bits: tags + values ([slots * 48]) in [Lookup]; replacement
    metadata and the sketch in [Learn]; 0 in [Classify] and [Emit].
    Raises [Invalid_argument] on negative [slots] or non-positive
    ways/sketch dimensions. *)
val stage_bits : slots:int -> ?sketch:sketch -> geometry -> stage_kind -> int

(** [geometry_bits ~slots ?sketch g] — total SRAM bits; by
    construction the sum of {!stage_bits} over the four kinds. *)
val geometry_bits : slots:int -> ?sketch:sketch -> geometry -> int

val pp : Format.formatter -> usage -> unit

(** [rows u] renders the Table 6 layout as (resource, percent) rows. *)
val rows : usage -> (string * float) list
