type usage = {
  match_crossbar : float;
  meter_alu : float;
  gateway : float;
  sram : float;
  tcam : float;
  vliw : float;
  hash_bits : float;
}

let stages = 12
let sram_bytes_per_stage = 80 * 16 * 1024 (* 80 blocks x 16 KB *)
let hash_bits_per_stage = 104 (* calibrated: see module doc *)
let max_entries = 192 * 1024
let paper_config_entries = 96 * 1024

(* Program-structure constants (cache-size independent): the pipeline
   needs the same comparisons, branches and header rewrites no matter
   how many lines the register arrays hold. These values are Table 6's
   own numbers for the size-independent resources. *)
let const_match_crossbar = 7.2
let const_meter_alu = 17.5
let const_gateway = 25.0
let const_tcam = 1.7
let const_vliw = 10.0

(* SRAM floor for the non-register tables (role config, front-panel
   port map, ECMP groups). *)
let const_sram_bytes = 16 * 1024

(* Register line cost: 4B VIP key + 2B server index (the PIP is
   recovered from a small index table) + 1 bit access. *)
let bytes_per_entry = 6.125

let estimate ~entries_per_switch =
  if entries_per_switch < 0 then
    invalid_arg "Resources.estimate: negative entries";
  if entries_per_switch > max_entries then
    invalid_arg "Resources.estimate: exceeds per-switch capacity";
  let total_sram = float_of_int (stages * sram_bytes_per_stage) in
  let sram_bytes =
    (float_of_int entries_per_switch *. bytes_per_entry)
    +. float_of_int const_sram_bytes
  in
  let sram = 100.0 *. sram_bytes /. total_sram in
  (* Hash bits: each of the three register arrays needs an index hash
     of ceil(log2 n) bits, plus the fixed ECMP/selector hashes. *)
  let index_bits =
    if entries_per_switch <= 1 then 1
    else
      int_of_float
        (Float.ceil (Float.log (float_of_int entries_per_switch) /. Float.log 2.0))
  in
  let fixed_hash_bits = 14 (* ECMP selection *) in
  let used_hash = (3 * index_bits) + fixed_hash_bits in
  let hash_bits =
    Float.min 100.0
      (100.0 *. float_of_int used_hash
      /. float_of_int (stages * hash_bits_per_stage))
  in
  {
    match_crossbar = const_match_crossbar;
    meter_alu = const_meter_alu;
    gateway = const_gateway;
    sram = Float.min 100.0 sram;
    tcam = const_tcam;
    vliw = const_vliw;
    hash_bits;
  }

type stage_kind = Classify | Lookup | Learn | Emit

(* Per-stage split of the size-independent constants, following the
   program structure: option-header parsing, role gates and the
   misdelivery compare live in classify; the register-array reads in
   lookup; admission logic and register writes in learn; the
   clone/mirror path and outgoing header rewrites in emit. Fractions
   are dyadic so the four shares of each resource re-sum to the
   whole-switch figure without drift. *)
let frac kind =
  (* (crossbar, meter_alu, gateway, tcam, vliw) *)
  match kind with
  | Classify -> (0.25, 0.125, 0.375, 1.0, 0.25)
  | Lookup -> (0.375, 0.375, 0.25, 0.0, 0.25)
  | Learn -> (0.25, 0.375, 0.25, 0.0, 0.25)
  | Emit -> (0.125, 0.125, 0.125, 0.0, 0.25)

let stage_estimate ~entries_per_switch kind =
  let whole = estimate ~entries_per_switch in
  let fx, fa, fg, ft, fv = frac kind in
  let total_sram = float_of_int (stages * sram_bytes_per_stage) in
  (* SRAM: the register arrays (entry-scaled) are charged to lookup;
     the constant floor (role config, port map, ECMP groups) to
     classify. *)
  let sram =
    match kind with
    | Lookup ->
        100.0
        *. (float_of_int entries_per_switch *. bytes_per_entry)
        /. total_sram
    | Classify -> 100.0 *. float_of_int const_sram_bytes /. total_sram
    | Learn | Emit -> 0.0
  in
  (* Hash bits: two register-index hashes are consumed reading (keys,
     values) at lookup, one writing the access-bit array at learn, and
     the fixed ECMP/selector hash at classify. *)
  let index_bits =
    if entries_per_switch <= 1 then 1
    else
      int_of_float
        (Float.ceil
           (Float.log (float_of_int entries_per_switch) /. Float.log 2.0))
  in
  let used_hash =
    match kind with
    | Classify -> 14
    | Lookup -> 2 * index_bits
    | Learn -> index_bits
    | Emit -> 0
  in
  let hash_bits =
    100.0 *. float_of_int used_hash
    /. float_of_int (stages * hash_bits_per_stage)
  in
  {
    match_crossbar = fx *. whole.match_crossbar;
    meter_alu = fa *. whole.meter_alu;
    gateway = fg *. whole.gateway;
    sram;
    tcam = ft *. whole.tcam;
    vliw = fv *. whole.vliw;
    hash_bits;
  }

(* ---- Exact SRAM bit costing per cache geometry ----------------- *)

type geometry = G_direct | G_dleft of int | G_assoc of int

type sketch = { rows : int; width : int }

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Mirrors [Switchv2p.Tinylfu.create]'s defaults: 4 rows of the next
   power of two >= max 16 (4 * slots) 4-bit counters. *)
let sketch_of_slots slots =
  if slots < 0 then invalid_arg "Resources.sketch_of_slots: negative slots";
  { rows = 4; width = next_pow2 (max 16 (4 * slots)) }

let geometry_name = function
  | G_direct -> "direct"
  | G_dleft d -> Printf.sprintf "dleft%d" d
  | G_assoc w -> Printf.sprintf "%dway-lru" w

(* Register line layout (the [bytes_per_entry] float above, in exact
   bits): a 4B VIP tag and a 2B server index per line, plus per-line
   replacement metadata — 1 access bit for direct-mapped and d-left
   (the protocol's second-chance bit), ceil(log2 ways) recency-rank
   bits for a [ways]-associative LRU set (1 way still needs its access
   bit, so ways = 1 collapses to the 49-bit direct-mapped line). *)
let key_bits = 32
let value_bits = 16

let ceil_log2 n =
  let rec go b p = if p >= n then b else go (b + 1) (p * 2) in
  go 0 1

let metadata_bits_per_line = function
  | G_direct -> 1
  | G_dleft d ->
      if d <= 0 then invalid_arg "Resources: d-left ways must be positive";
      1
  | G_assoc w ->
      if w <= 0 then invalid_arg "Resources: assoc ways must be positive";
      max 1 (ceil_log2 w)

(* Per-stage-kind share of a geometry's SRAM bits, integers with no
   rounding so the four shares re-sum to {!geometry_bits} exactly:
   tags and values are read in the lookup stages; replacement metadata
   and the admission sketch are written in the learn stages; classify
   and emit hold no per-line state. *)
let stage_bits ~slots ?sketch geometry kind =
  if slots < 0 then invalid_arg "Resources.stage_bits: negative slots";
  let meta = metadata_bits_per_line geometry in
  let sketch_bits =
    match sketch with
    | None -> 0
    | Some { rows; width } ->
        if rows <= 0 || width <= 0 then
          invalid_arg "Resources: sketch rows/width must be positive";
        rows * width * 4
  in
  match kind with
  | Classify | Emit -> 0
  | Lookup -> slots * (key_bits + value_bits)
  | Learn -> (slots * meta) + sketch_bits

let geometry_bits ~slots ?sketch geometry =
  List.fold_left
    (fun acc kind -> acc + stage_bits ~slots ?sketch geometry kind)
    0
    [ Classify; Lookup; Learn; Emit ]

let stage_kind_name = function
  | Classify -> "classify"
  | Lookup -> "lookup"
  | Learn -> "learn"
  | Emit -> "emit"

let rows u =
  [
    ("Match Crossbar", u.match_crossbar);
    ("Meter ALU", u.meter_alu);
    ("Gateway", u.gateway);
    ("SRAM", u.sram);
    ("TCAM", u.tcam);
    ("VLIW Instruction", u.vliw);
    ("Hash Bits", u.hash_bits);
  ]

let pp ppf u =
  List.iter
    (fun (name, pct) -> Format.fprintf ppf "%-18s %5.1f%%@." name pct)
    (rows u)
