(** Structural ECMP routing over the FatTree.

    Next hops are computed from node coordinates (no routing tables):
    up via a hash-selected spine/core, down via the unique descending
    path. The selection hash is deterministic in [(salt, hop)] so a
    flow follows a stable path (per-flow ECMP, as in the paper) while
    different flows spread across the fabric.

    Destinations may be endpoints or switches — the latter is how
    learning and invalidation packets reach a specific switch. *)

(** [next_hop topo ~at ~dst ~salt] is the neighbor of [at] on a path
    toward node [dst].

    Raises [Invalid_argument] if [at = dst] (the packet has arrived)
    or if [dst] is unreachable from [at] (cannot happen on a connected
    FatTree).

    This is the forwarding hot path: it resolves every case by indexing
    the candidate tables precomputed at {!Topology.build} time
    ({!Topology.uplinks}) and allocates nothing. *)
val next_hop : Topology.t -> at:int -> dst:int -> salt:int -> int

(** Sentinel returned by {!next_hop_alive} when every candidate next
    hop is behind a downed link. *)
val blackhole : int

(** [next_hop_alive topo ~at ~dst ~salt] is {!next_hop} made
    fault-aware: candidates whose link has [Link.up = false] are
    skipped by probing the ECMP candidate ring from the hashed index,
    and {!blackhole} is returned when no live candidate remains (a
    forced hop with a dead link, or all siblings dead). When every
    link is up it returns exactly [next_hop topo ~at ~dst ~salt] —
    link recovery therefore restores the pre-failure ECMP table
    (property-tested against {!next_hop_oracle}). Allocates nothing. *)
val next_hop_alive : Topology.t -> at:int -> dst:int -> salt:int -> int

(** [next_hop_oracle] is the original implementation that recomputes
    candidate sets from node coordinates on every call (allocating the
    spine's core candidate array each time). It returns the same hop
    as {!next_hop} for every [(at, dst, salt)]; kept as the reference
    for property tests and micro-benchmarks. *)
val next_hop_oracle : Topology.t -> at:int -> dst:int -> salt:int -> int

(** [path topo ~src ~dst ~salt] is the full node path from [src] to
    [dst], inclusive of both ends. *)
val path : Topology.t -> src:int -> dst:int -> salt:int -> int list

(** [hop_count topo ~src ~dst ~salt] is the number of links on
    [path topo ~src ~dst ~salt], counted directly without building the
    path list. *)
val hop_count : Topology.t -> src:int -> dst:int -> salt:int -> int

(** [ecmp_hash ~salt ~a ~b] is the deterministic hash used for path
    selection; exposed for tests. *)
val ecmp_hash : salt:int -> a:int -> b:int -> int
