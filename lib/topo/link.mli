(** Directed point-to-point link with a drop-tail queue.

    The transmission model is a single-server FIFO: a packet entering
    at time [t] begins serialization at [max t busy_until], occupies
    the queue until it is delivered, and arrives at the far end after
    serialization plus propagation. Packets that would overflow the
    buffer are dropped (drop-tail). *)

type t = {
  src : int;
  dst : int;
  rate_bps : float;
  prop_delay : Dessim.Time_ns.t;
  buffer_bytes : int;
  ecn_threshold : int option;
      (** queue depth (bytes) above which enqueued packets are
          CE-marked, as DCTCP's step marking does; [None] disables *)
  mutable busy_until : Dessim.Time_ns.t;
  mutable queued_bytes : int;
  mutable tx_bytes : int;  (** total bytes successfully transmitted *)
  mutable tx_packets : int;
  mutable drops : int;
  mutable marked : int;  (** CE marks applied *)
  mutable ser_bytes : int;
      (** serialization-time memo key (last packet size); -1 = empty *)
  mutable ser_ns : Dessim.Time_ns.t;  (** memoized result for [ser_bytes] *)
  mutable up : bool;
      (** fault injection: [false] while a [Link_down] fault is active;
          routing avoids dead links and transmissions on them black-hole *)
  mutable loss : Dessim.Fault.loss_model;
      (** fault injection: per-packet loss channel (default [No_loss]) *)
  mutable loss_state : int;  (** packed channel state for {!loss_step} *)
  mutable corrupt_next : int;
      (** fault injection: number of upcoming packets to corrupt *)
}

val make :
  ecn_threshold:int option ->
  src:int ->
  dst:int ->
  rate_bps:float ->
  prop_delay:Dessim.Time_ns.t ->
  buffer_bytes:int ->
  t

(** The outcome of a transmission attempt: when and whether the packet
    was CE-marked on enqueue. *)
type tx = { arrival : Dessim.Time_ns.t; ce_marked : bool }

(** [transmit t ~now ~bytes] attempts to enqueue a packet of [bytes].
    Returns [Some tx] on success, or [None] if the packet was dropped.
    Caller must invoke {!delivered} when the arrival event fires. *)
val transmit : t -> now:Dessim.Time_ns.t -> bytes:int -> tx option

(** [transmit_packed] is {!transmit} without the option/record
    allocation: the result is {!dropped} on a buffer overflow,
    otherwise [(arrival lsl 1) lor ce_bit] — unpack with
    {!packed_arrival} and {!packed_ce}. Arrival timestamps fit in 62
    bits (2^62 ns is about 146 simulated years), so the packing is
    lossless. *)
val transmit_packed : t -> now:Dessim.Time_ns.t -> bytes:int -> int

(** Sentinel result of {!transmit_packed} for a dropped packet. *)
val dropped : int

val packed_arrival : int -> Dessim.Time_ns.t
val packed_ce : int -> bool

(** [delivered t ~bytes] releases queue occupancy for a packet whose
    arrival event has fired. *)
val delivered : t -> bytes:int -> unit

(** [queueing_delay t ~now] is the time a packet arriving now would
    wait before starting serialization. *)
val queueing_delay : t -> now:Dessim.Time_ns.t -> Dessim.Time_ns.t

(** [reset t] clears all dynamic state (queue, counters, fault state)
    so the link can serve a fresh simulation run. *)
val reset : t -> unit

(** [loss_step t rng] advances the link's loss channel by one packet
    and reports whether that packet is lost. Draws nothing from [rng]
    when the model is [No_loss], so fault-free runs are byte-identical
    with or without the fault layer. *)
val loss_step : t -> Dessim.Rng.t -> bool

(** [take_corrupt t] consumes one pending one-shot corruption, if any. *)
val take_corrupt : t -> bool
