type t = {
  params : Params.t;
  nodes : Node.t array;
  hosts : int array;
  gateways : int array;
  tors : int array;
  spines : int array;
  cores : int array;
  switches : int array;
  tor_of : int array; (* endpoint id -> tor id; -1 for switches *)
  endpoints_of_tor : int array array; (* indexed by tor position in [tors] *)
  tor_pos : int array; (* node id -> position in [tors]; -1 otherwise *)
  tor_ids : int array array; (* pod -> rack -> id *)
  spine_ids : int array array; (* pod -> group -> id *)
  core_ids : int array array; (* group -> idx -> id *)
  (* CSR adjacency: node [id]'s row spans [csr_off.(id), csr_off.(id+1))
     in [csr_nbr] (neighbor ids, sorted ascending) and [csr_links] (the
     directed link id -> neighbor at the same index). O(n + E) words at
     any scale; [link] is a branch-free-bounds binary search over a
     row of at most max-degree entries. This replaced both the links
     hashtable and the n^2 dense table (which was silently dropped
     above n = 1024, falling back to two hashtable probes per hop). *)
  csr_off : int array; (* length n+1 *)
  csr_nbr : int array; (* length E (directed edges) *)
  csr_links : Link.t array; (* length E, parallel to csr_nbr *)
  neighbors : int array array;
      (* per-node views of the CSR rows (sorted ascending); built once,
         rows are stable across calls — treat as read-only *)
  uplinks : int array array;
      (* node id -> upward ECMP candidates: ToR -> its pod's spines
         (indexed by group), spine -> its group's cores (indexed by
         idx), [||] for endpoints and cores. Rows alias [spine_ids] /
         [core_ids]; never mutate. *)
}

let params t = t.params
let num_nodes t = Array.length t.nodes
let num_links t = Array.length t.csr_links

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg "Topology.node: id out of range";
  t.nodes.(id)

let kind t id = (node t id).Node.kind
let pip (_ : t) id = Netcore.Addr.Pip.of_int id
let node_of_pip (_ : t) pip = Netcore.Addr.Pip.to_int pip
let hosts t = t.hosts
let gateways t = t.gateways
let tors t = t.tors
let spines t = t.spines
let cores t = t.cores
let switches t = t.switches

let tor_of t id =
  let tor = t.tor_of.(id) in
  if tor < 0 then invalid_arg "Topology.tor_of: not an endpoint";
  tor

let endpoints_of_tor t tor =
  let pos = t.tor_pos.(tor) in
  if pos < 0 then invalid_arg "Topology.endpoints_of_tor: not a ToR";
  t.endpoints_of_tor.(pos)

let tor_id t ~pod ~rack = t.tor_ids.(pod).(rack)
let spine_id t ~pod ~group = t.spine_ids.(pod).(group)
let core_id t ~group ~idx = t.core_ids.(group).(idx)

let role t id =
  match Node.role_of_kind (kind t id) with
  | Some r -> r
  | None -> invalid_arg "Topology.role: not a switch"

(* Runs twice per hop (transmit + delivery): a bounded binary search of
   the source's CSR row. Rows are short (max degree = max(hosts per
   rack, pods)), so this is a handful of int compares on hot cache
   lines — the same single code path at 10 nodes or 10^5. *)
(* Top level with every operand passed explicitly: a local [let rec]
   would capture [t] and [dst] and allocate a closure on each call —
   measurable at two calls per event on the forwarding path. *)
let rec csr_search nbr (links : Link.t array) dst lo hi =
  if lo >= hi then raise Not_found
  else
    let mid = (lo + hi) lsr 1 in
    let v = nbr.(mid) in
    if v = dst then links.(mid)
    else if v < dst then csr_search nbr links dst (mid + 1) hi
    else csr_search nbr links dst lo mid

let link t ~src ~dst =
  if src < 0 || src >= Array.length t.nodes then raise Not_found;
  csr_search t.csr_nbr t.csr_links dst t.csr_off.(src) t.csr_off.(src + 1)

let iter_links t f = Array.iter f t.csr_links
let neighbors t id = t.neighbors.(id)
let uplinks t id = t.uplinks.(id)

let attached_endpoint_pips t tor =
  Array.map (pip t) (endpoints_of_tor t tor)

let build (p : Params.t) =
  Params.validate p;
  let gateway_pod p' = List.mem p' p.gateway_pods in
  (* The last rack of a gateway pod is the gateway rack. *)
  let gateway_rack pod rack = gateway_pod pod && rack = p.racks_per_pod - 1 in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let nodes = ref [] in
  let add kind =
    let id = fresh () in
    nodes := { Node.id; kind } :: !nodes;
    id
  in
  (* Endpoints first (compact PIPs for hosts), then switches. *)
  let hosts = ref [] and gateways = ref [] in
  let endpoints = Array.make_matrix p.pods p.racks_per_pod [||] in
  for pod = 0 to p.pods - 1 do
    for rack = 0 to p.racks_per_pod - 1 do
      if gateway_rack pod rack then begin
        let ids =
          Array.init p.gateways_per_gateway_pod (fun idx ->
              let id = add (Node.Gateway { pod; rack; idx }) in
              gateways := id :: !gateways;
              id)
        in
        endpoints.(pod).(rack) <- ids
      end
      else begin
        let ids =
          Array.init p.hosts_per_rack (fun idx ->
              let id = add (Node.Host { pod; rack; idx }) in
              hosts := id :: !hosts;
              id)
        in
        endpoints.(pod).(rack) <- ids
      end
    done
  done;
  let tor_ids =
    Array.init p.pods (fun pod ->
        Array.init p.racks_per_pod (fun rack ->
            add (Node.Tor { pod; rack; gateway_tor = gateway_rack pod rack })))
  in
  let spine_ids =
    Array.init p.pods (fun pod ->
        Array.init p.spines_per_pod (fun group ->
            add (Node.Spine { pod; group; gateway_spine = gateway_pod pod })))
  in
  let core_ids =
    Array.init p.spines_per_pod (fun group ->
        Array.init p.cores_per_group (fun idx -> add (Node.Core { group; idx })))
  in
  let nodes =
    let arr = Array.of_list (List.rev !nodes) in
    Array.iteri (fun i n -> assert (n.Node.id = i)) arr;
    arr
  in
  let n = Array.length nodes in
  (* Per-node (neighbor, link) rows, collected in construction order
     and flattened into CSR below. *)
  let adjacency = Array.make n [] in
  let connect a b rate =
    let mk src dst =
      ( dst,
        Link.make ~ecn_threshold:p.ecn_threshold_bytes ~src ~dst ~rate_bps:rate
          ~prop_delay:p.prop_delay ~buffer_bytes:p.buffer_bytes )
    in
    adjacency.(a) <- mk a b :: adjacency.(a);
    adjacency.(b) <- mk b a :: adjacency.(b)
  in
  let tor_of = Array.make n (-1) in
  let tor_pos = Array.make n (-1) in
  (* Endpoint <-> ToR links. *)
  for pod = 0 to p.pods - 1 do
    for rack = 0 to p.racks_per_pod - 1 do
      let tor = tor_ids.(pod).(rack) in
      Array.iter
        (fun ep ->
          tor_of.(ep) <- tor;
          connect ep tor p.host_link_bps)
        endpoints.(pod).(rack)
    done
  done;
  (* ToR <-> spine (full bipartite per pod). *)
  for pod = 0 to p.pods - 1 do
    Array.iter
      (fun tor ->
        Array.iter (fun spine -> connect tor spine p.fabric_link_bps) spine_ids.(pod))
      tor_ids.(pod)
  done;
  (* Spine <-> core (group-wise). *)
  for group = 0 to p.spines_per_pod - 1 do
    Array.iter
      (fun core ->
        for pod = 0 to p.pods - 1 do
          connect spine_ids.(pod).(group) core p.fabric_link_bps
        done)
      core_ids.(group)
  done;
  let tors = Array.concat (Array.to_list tor_ids) in
  let spines = Array.concat (Array.to_list spine_ids) in
  let cores = Array.concat (Array.to_list core_ids) in
  Array.iteri (fun pos tor -> tor_pos.(tor) <- pos) tors;
  let endpoints_of_tor =
    Array.map
      (fun tor ->
        match nodes.(tor).Node.kind with
        | Node.Tor { pod; rack; _ } -> endpoints.(pod).(rack)
        | _ -> assert false)
      tors
  in
  let no_uplinks = [||] in
  let uplinks =
    Array.map
      (fun node ->
        match node.Node.kind with
        | Node.Tor { pod; _ } -> spine_ids.(pod)
        | Node.Spine { group; _ } -> core_ids.(group)
        | Node.Host _ | Node.Gateway _ | Node.Core _ -> no_uplinks)
      nodes
  in
  (* Flatten adjacency into CSR: sort each row by neighbor id (the
     binary search in [link] depends on it), then fill the flat
     offset/neighbor/link arrays. The FatTree constructor connects each
     node pair exactly once; the duplicate check makes that a hard
     invariant rather than a silent last-writer-wins. *)
  let rows =
    Array.map
      (fun l ->
        let row = Array.of_list l in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) row;
        Array.iteri
          (fun i (d, _) ->
            if i > 0 && fst row.(i - 1) = d then
              invalid_arg "Topology.build: duplicate link")
          row;
        row)
      adjacency
  in
  let csr_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    csr_off.(i + 1) <- csr_off.(i) + Array.length rows.(i)
  done;
  let num_links = csr_off.(n) in
  let csr_nbr = Array.make num_links (-1) in
  let csr_links =
    let seed = ref None in
    Array.iter
      (fun row -> if !seed = None && Array.length row > 0 then seed := Some (snd row.(0)))
      rows;
    match !seed with
    | None -> [||]
    | Some l -> Array.make num_links l
  in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j (d, l) ->
          csr_nbr.(csr_off.(i) + j) <- d;
          csr_links.(csr_off.(i) + j) <- l)
        row)
    rows;
  {
    params = p;
    nodes;
    hosts = Array.of_list (List.rev !hosts);
    gateways = Array.of_list (List.rev !gateways);
    tors;
    spines;
    cores;
    switches = Array.concat [ tors; spines; cores ];
    tor_of;
    endpoints_of_tor;
    tor_pos;
    tor_ids;
    spine_ids;
    core_ids;
    csr_off;
    csr_nbr;
    csr_links;
    neighbors = Array.map (Array.map fst) rows;
    uplinks;
  }
