(** FatTree topology instance: nodes, links, and index structures.

    Node ids double as PIPs ({!Netcore.Addr.Pip}). Endpoint nodes
    (hosts and gateways) hang off ToRs; ToRs connect to every spine in
    their pod; spine [g] of every pod connects to all core switches of
    group [g]. *)

type t

(** [build params] constructs the topology. Raises [Invalid_argument]
    via {!Params.validate} on bad parameters. *)
val build : Params.t -> t

val params : t -> Params.t

(** [num_nodes t] is the total node count (endpoints + switches). *)
val num_nodes : t -> int

(** [num_links t] is the total directed-link count (each physical cable
    is two directed links). *)
val num_links : t -> int

(** [node t id] is the node record. Raises [Invalid_argument] for out
    of range ids. *)
val node : t -> int -> Node.t

val kind : t -> int -> Node.kind

(** [pip t id] is the node's physical address. *)
val pip : t -> int -> Netcore.Addr.Pip.t

(** [node_of_pip t pip] is the inverse of {!pip}. *)
val node_of_pip : t -> Netcore.Addr.Pip.t -> int

(** Index accessors: all arrays are stable across calls. *)

val hosts : t -> int array
(** regular servers, in (pod, rack, idx) order *)

val gateways : t -> int array
val tors : t -> int array
val spines : t -> int array
val cores : t -> int array

(** [switches t] is ToRs, spines and cores concatenated. *)
val switches : t -> int array

(** [tor_of t id] is the ToR an endpoint attaches to.
    Raises [Invalid_argument] if [id] is a switch. *)
val tor_of : t -> int -> int

(** [endpoints_of_tor t tor] is the endpoints (hosts or gateways)
    attached to [tor]. *)
val endpoints_of_tor : t -> int -> int array

(** [tor_id t ~pod ~rack] / [spine_id t ~pod ~group] /
    [core_id t ~group ~idx] are structural lookups. *)
val tor_id : t -> pod:int -> rack:int -> int

val spine_id : t -> pod:int -> group:int -> int
val core_id : t -> group:int -> idx:int -> int

(** [role t id] is the switch category; raises [Invalid_argument] if
    [id] is not a switch. *)
val role : t -> int -> Node.role

(** [link t ~src ~dst] is the directed link between adjacent nodes.
    Raises [Not_found] if they are not adjacent. One code path at every
    scale: a binary search of [src]'s CSR adjacency row (a handful of
    int compares — rows are at most max-degree long), no hashing, no
    allocation, no n^2 table. *)
val link : t -> src:int -> dst:int -> Link.t

(** [iter_links t f] applies [f] to every directed link, in CSR order
    (ascending source id, then ascending destination id). *)
val iter_links : t -> (Link.t -> unit) -> unit

(** [neighbors t id] is the adjacent node ids, sorted ascending. The
    returned rows are the topology's own CSR views — stable across
    calls; treat them as read-only. *)
val neighbors : t -> int -> int array

(** [uplinks t id] is the precomputed upward ECMP candidate table of
    node [id]: a ToR's row is its pod's spines indexed by group, a
    spine's row is its group's core switches indexed by idx, and
    endpoints/cores have an empty row. Rows are shared with the
    topology's internal indexes — treat them as read-only. This is the
    forwarding hot path's lookup table; {!Routing.next_hop} uses it to
    pick next hops without allocating. *)
val uplinks : t -> int -> int array

(** [attached_endpoint_pips t tor] is the set of PIPs of servers and
    gateways directly attached to [tor] — the front-panel-port table
    ToRs use to detect misdelivered packets (§3.3). *)
val attached_endpoint_pips : t -> int -> Netcore.Addr.Pip.t array
