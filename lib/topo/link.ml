type t = {
  src : int;
  dst : int;
  rate_bps : float;
  prop_delay : Dessim.Time_ns.t;
  buffer_bytes : int;
  ecn_threshold : int option;
  mutable busy_until : Dessim.Time_ns.t;
  mutable queued_bytes : int;
  mutable tx_bytes : int;
  mutable tx_packets : int;
  mutable drops : int;
  mutable marked : int;
  (* Serialization-time memo: traffic uses very few distinct packet
     sizes (MTU, ack, control), and the float divide in
     [Time_ns.of_rate_bytes] is measurable per packet. Caching the
     last (bytes, ns) pair keeps results bit-identical to computing
     fresh every time. *)
  mutable ser_bytes : int;
  mutable ser_ns : Dessim.Time_ns.t;
  (* Fault-injection state, driven by Dessim.Fault plans. *)
  mutable up : bool;
  mutable loss : Dessim.Fault.loss_model;
  mutable loss_state : int;
  mutable corrupt_next : int;
}

type tx = { arrival : Dessim.Time_ns.t; ce_marked : bool }

let make ~ecn_threshold ~src ~dst ~rate_bps ~prop_delay ~buffer_bytes =
  {
    src;
    dst;
    rate_bps;
    prop_delay;
    buffer_bytes;
    ecn_threshold;
    busy_until = Dessim.Time_ns.zero;
    queued_bytes = 0;
    tx_bytes = 0;
    tx_packets = 0;
    drops = 0;
    marked = 0;
    ser_bytes = -1;
    ser_ns = Dessim.Time_ns.zero;
    up = true;
    loss = Dessim.Fault.No_loss;
    loss_state = 0;
    corrupt_next = 0;
  }

let serialization_time t bytes =
  if bytes = t.ser_bytes then t.ser_ns
  else begin
    let ns = Dessim.Time_ns.of_rate_bytes ~bits_per_sec:t.rate_bps bytes in
    t.ser_bytes <- bytes;
    t.ser_ns <- ns;
    ns
  end

let dropped = -1

let transmit_packed t ~now ~bytes =
  if t.queued_bytes + bytes > t.buffer_bytes then begin
    t.drops <- t.drops + 1;
    dropped
  end
  else begin
    (* DCTCP step marking: judge the queue as seen on enqueue. *)
    let ce =
      match t.ecn_threshold with
      | Some k when t.queued_bytes > k ->
          t.marked <- t.marked + 1;
          1
      | Some _ | None -> 0
    in
    let start = Dessim.Time_ns.max now t.busy_until in
    let ser = serialization_time t bytes in
    let done_ser = Dessim.Time_ns.add start ser in
    t.busy_until <- done_ser;
    t.queued_bytes <- t.queued_bytes + bytes;
    t.tx_bytes <- t.tx_bytes + bytes;
    t.tx_packets <- t.tx_packets + 1;
    (* Arrival fits in 62 bits (2^62 ns ~ 146 years of simulated time),
       so the CE bit rides in bit 0 without loss. *)
    (Dessim.Time_ns.add done_ser t.prop_delay lsl 1) lor ce
  end

let packed_arrival p = p lsr 1
let packed_ce p = p land 1 = 1

let transmit t ~now ~bytes =
  let p = transmit_packed t ~now ~bytes in
  if p = dropped then None
  else Some { arrival = packed_arrival p; ce_marked = packed_ce p }

let delivered t ~bytes = t.queued_bytes <- t.queued_bytes - bytes

let reset t =
  t.busy_until <- Dessim.Time_ns.zero;
  t.queued_bytes <- 0;
  t.tx_bytes <- 0;
  t.tx_packets <- 0;
  t.drops <- 0;
  t.marked <- 0;
  t.up <- true;
  t.loss <- Dessim.Fault.No_loss;
  t.loss_state <- 0;
  t.corrupt_next <- 0

let loss_step t rng =
  match t.loss with
  | Dessim.Fault.No_loss -> false
  | m ->
      let packed = Dessim.Fault.step_packed m ~state:t.loss_state rng in
      t.loss_state <- packed lsr 1;
      packed land 1 = 1

let take_corrupt t =
  t.corrupt_next > 0
  && begin
       t.corrupt_next <- t.corrupt_next - 1;
       true
     end

let queueing_delay t ~now =
  if Dessim.Time_ns.compare t.busy_until now > 0 then
    Dessim.Time_ns.sub t.busy_until now
  else Dessim.Time_ns.zero
