let ecmp_hash ~salt ~a ~b =
  (* splitmix-style finalizer over the packed inputs, in native int
     arithmetic: the forwarding hot path calls this per hop, and boxed
     Int64 operations would allocate on every call without flambda.
     Multipliers are odd 61/62-bit constants derived from the
     splitmix64 ones. *)
  let z = (salt * 0x9E3779B9) lxor (a * 0x85EBCA6B) lxor (b * 0xC2B2AE35) in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  let z = z lxor (z lsr 31) in
  z land max_int

let pick ~salt ~at ~dst (arr : int array) =
  arr.(ecmp_hash ~salt ~a:(at + dst) ~b:dst mod Array.length arr)

(* Table-based fast path: upward candidate sets (ToR -> pod spines,
   spine -> group cores) are precomputed by [Topology.build] as
   [Topology.uplinks], so every case below is pure array indexing —
   zero allocation per call. [next_hop_oracle] below is the original
   coordinate-computed implementation, kept as the reference the fast
   path is property-tested against. *)
let next_hop topo ~at ~dst ~salt =
  if at = dst then invalid_arg "Routing.next_hop: already at destination";
  let dst_kind = Topology.kind topo dst in
  match Topology.kind topo at with
  | Node.Host _ | Node.Gateway _ -> Topology.tor_of topo at
  | Node.Tor { pod; _ } -> (
      (* Deliver to an attached endpoint, else pick an uplink spine. *)
      match dst_kind with
      | Node.Host { pod = dp; _ } | Node.Gateway { pod = dp; _ }
        when dp = pod && Topology.tor_of topo dst = at ->
          dst
      | Node.Spine { pod = dp; group; _ } when dp = pod ->
          (Topology.uplinks topo at).(group)
      | Node.Core { group; _ } ->
          (* Cores of group [g] are reachable only via spine [g]. *)
          (Topology.uplinks topo at).(group)
      | Node.Spine { group; _ } ->
          (* A spine in another pod: transit a core of the same group. *)
          (Topology.uplinks topo at).(group)
      | Node.Host _ | Node.Gateway _ | Node.Tor _ ->
          (* Any spine of this pod reaches any pod. *)
          let ups = Topology.uplinks topo at in
          ups.(ecmp_hash ~salt ~a:at ~b:dst mod Array.length ups))
  | Node.Spine { pod; group; _ } -> (
      let down_in_pod dp dst =
        match dst with
        | Node.Host { rack; _ } | Node.Gateway { rack; _ } ->
            Topology.tor_id topo ~pod:dp ~rack
        | Node.Tor { rack; _ } -> Topology.tor_id topo ~pod:dp ~rack
        | Node.Spine _ | Node.Core _ -> assert false
      in
      match dst_kind with
      | (Node.Host { pod = dp; _ } | Node.Gateway { pod = dp; _ } | Node.Tor { pod = dp; _ })
        when dp = pod ->
          down_in_pod pod dst_kind
      | Node.Core { group = g; idx } when g = group ->
          (Topology.uplinks topo at).(idx)
      | Node.Core _ ->
          (* Wrong group: descend to a local ToR which re-ascends via
             the right group. Only possible for switch-addressed
             control packets that entered the fabric on the wrong
             group; one bounce corrects it. *)
          let racks = (Topology.params topo).Params.racks_per_pod in
          let rack = ecmp_hash ~salt ~a:at ~b:dst mod racks in
          Topology.tor_id topo ~pod ~rack
      | Node.Spine { group = g; _ } when g <> group ->
          let racks = (Topology.params topo).Params.racks_per_pod in
          let rack = ecmp_hash ~salt ~a:at ~b:dst mod racks in
          Topology.tor_id topo ~pod ~rack
      | Node.Host _ | Node.Gateway _ | Node.Tor _ | Node.Spine _ ->
          (* Another pod, same group (or endpoint): transit any core of
             this group. *)
          let cores = Topology.uplinks topo at in
          if Array.length cores = 0 then
            invalid_arg "Routing.next_hop: destination unreachable (no cores)"
          else pick ~salt ~at ~dst cores)
  | Node.Core { group; _ } -> (
      match dst_kind with
      | Node.Host { pod; _ } | Node.Gateway { pod; _ } | Node.Tor { pod; _ } ->
          Topology.spine_id topo ~pod ~group
      | Node.Spine { pod; group = g; _ } ->
          if g = group then Topology.spine_id topo ~pod ~group
          else
            (* Wrong group; descend anywhere in the target pod's group-
               [group] spine, which bounces via a ToR. *)
            Topology.spine_id topo ~pod ~group
      | Node.Core _ ->
          invalid_arg "Routing.next_hop: core-to-core packets are not routable")

(* Fault-aware variant of [next_hop]: same case analysis and same
   primary ECMP hash, but each candidate hop is checked against
   [Link.up] and, where ECMP siblings exist, dead candidates are
   skipped by probing the candidate ring from the hashed index. With
   every link up this is hop-for-hop identical to [next_hop] (the ring
   probe stops at its first candidate), which is property-tested, so
   goldens are unaffected by compiling the fault layer in. Forced hops
   (unique next hop) return [blackhole] when their link is down. *)
let blackhole = -1

let link_up topo ~src ~dst = (Topology.link topo ~src ~dst).Link.up

(* First live candidate in ring order starting at [start]; [blackhole]
   if every candidate's link is dead. *)
let probe_ring topo ~at (arr : int array) start =
  let n = Array.length arr in
  let rec go i =
    if i = n then blackhole
    else
      let cand = arr.((start + i) mod n) in
      if link_up topo ~src:at ~dst:cand then cand else go (i + 1)
  in
  go 0

let next_hop_alive topo ~at ~dst ~salt =
  if at = dst then
    invalid_arg "Routing.next_hop_alive: already at destination";
  let forced hop = if link_up topo ~src:at ~dst:hop then hop else blackhole in
  let dst_kind = Topology.kind topo dst in
  match Topology.kind topo at with
  | Node.Host _ | Node.Gateway _ -> forced (Topology.tor_of topo at)
  | Node.Tor { pod; _ } -> (
      match dst_kind with
      | Node.Host { pod = dp; _ } | Node.Gateway { pod = dp; _ }
        when dp = pod && Topology.tor_of topo dst = at ->
          forced dst
      | Node.Spine { pod = dp; group; _ } when dp = pod ->
          forced (Topology.uplinks topo at).(group)
      | Node.Core { group; _ } -> forced (Topology.uplinks topo at).(group)
      | Node.Spine { group; _ } -> forced (Topology.uplinks topo at).(group)
      | Node.Host _ | Node.Gateway _ | Node.Tor _ ->
          let ups = Topology.uplinks topo at in
          probe_ring topo ~at ups
            (ecmp_hash ~salt ~a:at ~b:dst mod Array.length ups))
  | Node.Spine { pod; group; _ } -> (
      let down_in_pod dp dst =
        match dst with
        | Node.Host { rack; _ } | Node.Gateway { rack; _ } ->
            Topology.tor_id topo ~pod:dp ~rack
        | Node.Tor { rack; _ } -> Topology.tor_id topo ~pod:dp ~rack
        | Node.Spine _ | Node.Core _ -> assert false
      in
      (* Descend to a local ToR: any live-linked rack serves, so probe
         the rack ring from the hashed rack. *)
      let descend () =
        let racks = (Topology.params topo).Params.racks_per_pod in
        let start = ecmp_hash ~salt ~a:at ~b:dst mod racks in
        let rec go i =
          if i = racks then blackhole
          else
            let tor = Topology.tor_id topo ~pod ~rack:((start + i) mod racks) in
            if link_up topo ~src:at ~dst:tor then tor else go (i + 1)
        in
        go 0
      in
      match dst_kind with
      | (Node.Host { pod = dp; _ } | Node.Gateway { pod = dp; _ } | Node.Tor { pod = dp; _ })
        when dp = pod ->
          forced (down_in_pod pod dst_kind)
      | Node.Core { group = g; idx } when g = group ->
          forced (Topology.uplinks topo at).(idx)
      | Node.Core _ -> descend ()
      | Node.Spine { group = g; _ } when g <> group -> descend ()
      | Node.Host _ | Node.Gateway _ | Node.Tor _ | Node.Spine _ ->
          let cores = Topology.uplinks topo at in
          if Array.length cores = 0 then
            invalid_arg
              "Routing.next_hop_alive: destination unreachable (no cores)"
          else
            probe_ring topo ~at cores
              (ecmp_hash ~salt ~a:(at + dst) ~b:dst mod Array.length cores))
  | Node.Core { group; _ } -> (
      match dst_kind with
      | Node.Host { pod; _ } | Node.Gateway { pod; _ } | Node.Tor { pod; _ } ->
          forced (Topology.spine_id topo ~pod ~group)
      | Node.Spine { pod; _ } -> forced (Topology.spine_id topo ~pod ~group)
      | Node.Core _ ->
          invalid_arg
            "Routing.next_hop_alive: core-to-core packets are not routable")

(* The original implementation: next hops recomputed from node
   coordinates on every call (including an [Array.init] of the core
   candidate set). Retained as the oracle for the table-based path. *)
let next_hop_oracle topo ~at ~dst ~salt =
  if at = dst then invalid_arg "Routing.next_hop: already at destination";
  let p = Topology.params topo in
  let dst_kind = Topology.kind topo dst in
  match Topology.kind topo at with
  | Node.Host _ | Node.Gateway _ -> Topology.tor_of topo at
  | Node.Tor { pod; _ } -> (
      match dst_kind with
      | Node.Host { pod = dp; _ } | Node.Gateway { pod = dp; _ }
        when dp = pod && Topology.tor_of topo dst = at ->
          dst
      | Node.Spine { pod = dp; group; _ } when dp = pod ->
          Topology.spine_id topo ~pod ~group
      | Node.Core { group; _ } -> Topology.spine_id topo ~pod ~group
      | Node.Spine { group; _ } -> Topology.spine_id topo ~pod ~group
      | Node.Host _ | Node.Gateway _ | Node.Tor _ ->
          let group = ecmp_hash ~salt ~a:at ~b:dst mod p.Params.spines_per_pod in
          Topology.spine_id topo ~pod ~group)
  | Node.Spine { pod; group; _ } -> (
      let down_in_pod dp dst =
        match dst with
        | Node.Host { rack; _ } | Node.Gateway { rack; _ } ->
            Topology.tor_id topo ~pod:dp ~rack
        | Node.Tor { rack; _ } -> Topology.tor_id topo ~pod:dp ~rack
        | Node.Spine _ | Node.Core _ -> assert false
      in
      match dst_kind with
      | (Node.Host { pod = dp; _ } | Node.Gateway { pod = dp; _ } | Node.Tor { pod = dp; _ })
        when dp = pod ->
          down_in_pod pod dst_kind
      | Node.Core { group = g; idx } when g = group ->
          Topology.core_id topo ~group ~idx
      | Node.Core _ ->
          let rack = ecmp_hash ~salt ~a:at ~b:dst mod p.Params.racks_per_pod in
          Topology.tor_id topo ~pod ~rack
      | Node.Spine { group = g; _ } when g <> group ->
          let rack = ecmp_hash ~salt ~a:at ~b:dst mod p.Params.racks_per_pod in
          Topology.tor_id topo ~pod ~rack
      | Node.Host _ | Node.Gateway _ | Node.Tor _ | Node.Spine _ ->
          if p.Params.cores_per_group = 0 then
            invalid_arg "Routing.next_hop: destination unreachable (no cores)"
          else
            let cores =
              Array.init p.Params.cores_per_group (fun idx ->
                  Topology.core_id topo ~group ~idx)
            in
            pick ~salt ~at ~dst cores)
  | Node.Core { group; _ } -> (
      match dst_kind with
      | Node.Host { pod; _ } | Node.Gateway { pod; _ } | Node.Tor { pod; _ } ->
          Topology.spine_id topo ~pod ~group
      | Node.Spine { pod; group = _; _ } -> Topology.spine_id topo ~pod ~group
      | Node.Core _ ->
          invalid_arg "Routing.next_hop: core-to-core packets are not routable")

let path topo ~src ~dst ~salt =
  let rec go at acc guard =
    if guard > 64 then failwith "Routing.path: loop detected"
    else if at = dst then List.rev (dst :: acc)
    else go (next_hop topo ~at ~dst ~salt) (at :: acc) (guard + 1)
  in
  go src [] 0

let hop_count topo ~src ~dst ~salt =
  let rec go at n =
    if n > 64 then failwith "Routing.hop_count: loop detected"
    else if at = dst then n
    else go (next_hop topo ~at ~dst ~salt) (n + 1)
  in
  go src 0
