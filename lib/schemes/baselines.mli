(** The gateway- and host-driven baselines from §5 of the paper.

    Each function builds a fresh {!Netsim.Scheme.t} closed over its own
    state; a scheme value must be used with exactly one
    {!Netsim.Network.t}. *)

(** NoCache — the pure gateway design (Andromeda's Hoverboard model
    without offloading): every packet transits a translation gateway. *)
val nocache : unit -> Netsim.Scheme.t

(** Direct — the pure host-driven design: senders always know the
    current mapping (update costs ignored, as in the paper). *)
val direct : unit -> Netsim.Scheme.t

(** OnDemand — host-driven with on-miss resolution: the first packet
    to a destination pays [miss_penalty] (default 40 us) while the
    mapping is fetched, after which it is cached at the host forever.
    Host caches go stale on migration (rule installation is slower
    than the experiment horizon, as in §5.2). *)
val ondemand : ?miss_penalty:Dessim.Time_ns.t -> unit -> Netsim.Scheme.t

(** Hoverboard — Andromeda's hybrid: traffic flows through the
    gateways until a host has sent [offload_threshold] packets to a
    destination (default 20, mimicking Zeta's rule-offload policy);
    the controller then installs the mapping at the host and later
    packets go direct. The paper notes its traces never cross such
    thresholds (flows repeat at most twice), which NoCache models;
    this scheme makes the threshold explicit and tunable. *)
val hoverboard : ?offload_threshold:int -> unit -> Netsim.Scheme.t

(** LocalLearning — the §3.1 strawman: every switch destination-learns
    and admits everything. [total_slots] is the aggregate cache size
    over all switches. *)
val locallearning : topo:Topo.Topology.t -> total_slots:int -> Netsim.Scheme.t

(** [locallearning_with_cache] also returns the underlying
    {!Learning_cache.t}, so harnesses (e.g. the DST occupancy
    invariant) can inspect per-switch cache state. *)
val locallearning_with_cache :
  topo:Topo.Topology.t -> total_slots:int -> Netsim.Scheme.t * Learning_cache.t

(** GwCache — Sailfish-like: caches only at gateway ToRs. *)
val gwcache : topo:Topo.Topology.t -> total_slots:int -> Netsim.Scheme.t

val gwcache_with_cache :
  topo:Topo.Topology.t -> total_slots:int -> Netsim.Scheme.t * Learning_cache.t

(** Bluebird — ToR route-caches backed by the switch-local control
    plane (SFE): a miss detours the packet through a
    bandwidth-limited data-to-control-plane channel
    ([cp_rate_bps], default 20 Gb/s) with [cp_fwd_delay] (default
    8.5 us) forwarding latency; cache insertion completes after
    [cp_insert_delay] (default 2 ms). Packets are dropped when the
    CP channel queue exceeds [cp_queue_bytes]. *)
val bluebird :
  ?cp_rate_bps:float ->
  ?cp_fwd_delay:Dessim.Time_ns.t ->
  ?cp_insert_delay:Dessim.Time_ns.t ->
  ?cp_queue_bytes:int ->
  topo:Topo.Topology.t ->
  total_slots:int ->
  unit ->
  Netsim.Scheme.t
