module Time_ns = Dessim.Time_ns
module Packet = Netcore.Packet
module Vip = Netcore.Addr.Vip
module Scheme = Netsim.Scheme
module Pipeline = Netsim.Pipeline
module Verdict = Switchv2p.Verdict
module Cache = Switchv2p.Cache

let nocache () =
  {
    Scheme.name = "NoCache";
    resolve_at_host = (fun _env ~host:_ ~flow_id:_ ~dst_vip:_ -> Scheme.Send_via_gateway);
    pipeline = Pipeline.passthrough;
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Follow_me);
    on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
    host_tags_misdelivery = false;
    stats = Scheme.no_stats;
  }

let direct () =
  {
    Scheme.name = "Direct";
    resolve_at_host =
      (fun env ~host:_ ~flow_id:_ ~dst_vip ->
        (* Hosts hold the full, instantly synchronized table; reading
           the ground truth models that (update costs are out of scope,
           as in the paper). *)
        Scheme.Send_resolved (Netcore.Mapping.lookup env.Scheme.mapping dst_vip));
    pipeline = Pipeline.passthrough;
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Follow_me);
    on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
    host_tags_misdelivery = false;
    stats = Scheme.no_stats;
  }

let ondemand ?(miss_penalty = Time_ns.of_us 40) () =
  (* Per-host mapping caches, keyed (host, vip). Infinite capacity, as
     in the paper's OnDemand ("assumes infinite cache"). *)
  let host_caches : (int * int, Netcore.Addr.Pip.t) Hashtbl.t =
    Hashtbl.create 4096
  in
  let misses = ref 0 and lookups = ref 0 in
  {
    Scheme.name = "OnDemand";
    resolve_at_host =
      (fun env ~host ~flow_id:_ ~dst_vip ->
        incr lookups;
        let key = (host, Vip.to_int dst_vip) in
        match Hashtbl.find_opt host_caches key with
        | Some pip -> Scheme.Send_resolved pip
        | None ->
            incr misses;
            let pip = Netcore.Mapping.lookup env.Scheme.mapping dst_vip in
            Hashtbl.replace host_caches key pip;
            Scheme.Send_after (miss_penalty, pip));
    pipeline = Pipeline.passthrough;
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Follow_me);
    on_mapping_update =
      (fun _env _vip ~old_pip:_ ~new_pip:_ ->
        (* The controller cannot refresh host rules within the
           experiment horizon (§5.2): caches stay stale. *)
        ());
    host_tags_misdelivery = false;
    stats =
      (fun () ->
        [
          ("host_cache_misses", float_of_int !misses);
          ("host_lookups", float_of_int !lookups);
        ]);
  }

let hoverboard ?(offload_threshold = 20) () =
  if offload_threshold <= 0 then
    invalid_arg "Baselines.hoverboard: threshold must be positive";
  (* Per-(host, destination) packet counters and installed rules. *)
  let counters : (int * int, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let installed : (int * int, Netcore.Addr.Pip.t) Hashtbl.t =
    Hashtbl.create 1024
  in
  let offloads = ref 0 in
  {
    Scheme.name = "Hoverboard";
    resolve_at_host =
      (fun env ~host ~flow_id:_ ~dst_vip ->
        let key = (host, Vip.to_int dst_vip) in
        match Hashtbl.find_opt installed key with
        | Some pip -> Scheme.Send_resolved pip
        | None ->
            let count =
              match Hashtbl.find_opt counters key with
              | Some r ->
                  incr r;
                  !r
              | None ->
                  Hashtbl.add counters key (ref 1);
                  1
            in
            if count >= offload_threshold then begin
              (* The controller offloads the rule; this packet still
                 rides via the gateway while the rule installs. *)
              incr offloads;
              Hashtbl.replace installed key
                (Netcore.Mapping.lookup env.Scheme.mapping dst_vip)
            end;
            Scheme.Send_via_gateway);
    pipeline = Pipeline.passthrough;
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Follow_me);
    on_mapping_update =
      (fun _env _vip ~old_pip:_ ~new_pip:_ ->
        (* Offloaded host rules go stale until the (slow) controller
           refresh — the follow-me rule covers the gap, as in
           Andromeda. *)
        ());
    host_tags_misdelivery = false;
    stats = (fun () -> [ ("rule_offloads", float_of_int !offloads) ]);
  }

let flat_cache_scheme ~name ~switches ~total_slots ~topo =
  let lc =
    Learning_cache.create ~switches ~total_slots
      ~num_nodes:(Topo.Topology.num_nodes topo)
  in
  ( {
    Scheme.name;
    resolve_at_host = (fun _env ~host:_ ~flow_id:_ ~dst_vip:_ -> Scheme.Send_via_gateway);
    pipeline =
      Pipeline.make
        ~reset:(fun ~switch -> Learning_cache.fail_switch lc ~switch)
        [
          Pipeline.stage ~kind:Pipeline.Lookup "lookup"
            (fun _env ~switch ~from:_ pkt ->
              Learning_cache.lookup lc ~switch pkt;
              Verdict.next);
          Pipeline.stage ~kind:Pipeline.Learn "learn"
            (fun _env ~switch ~from:_ pkt ->
              Learning_cache.learn lc ~switch pkt;
              Verdict.next);
        ];
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Reforward_to_gateway);
    on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
    host_tags_misdelivery = true;
    stats =
      (fun () ->
        [
          ("cache_hits", float_of_int (Learning_cache.total_hits lc));
          ("cache_misses", float_of_int (Learning_cache.total_misses lc));
        ]);
  },
    lc )

let locallearning_with_cache ~topo ~total_slots =
  flat_cache_scheme ~name:"LocalLearning"
    ~switches:(Topo.Topology.switches topo)
    ~total_slots ~topo

let locallearning ~topo ~total_slots =
  fst (locallearning_with_cache ~topo ~total_slots)

let gwcache_with_cache ~topo ~total_slots =
  let gateway_tors =
    Array.of_list
      (List.filter
         (fun sw -> Topo.Topology.role topo sw = Topo.Node.Gateway_tor)
         (Array.to_list (Topo.Topology.tors topo)))
  in
  flat_cache_scheme ~name:"GwCache" ~switches:gateway_tors ~total_slots ~topo

let gwcache ~topo ~total_slots = fst (gwcache_with_cache ~topo ~total_slots)

type bluebird_tor = {
  cache : Cache.t;
  mutable cp_busy_until : Time_ns.t;
  mutable cp_queued_bytes : int;
}

let bluebird ?(cp_rate_bps = 20e9) ?(cp_fwd_delay = Time_ns.of_ns 8_500)
    ?(cp_insert_delay = Time_ns.of_ms 2) ?(cp_queue_bytes = 1024 * 1024) ~topo
    ~total_slots () =
  let tors = Topo.Topology.tors topo in
  let n = Array.length tors in
  let base = total_slots / n and remainder = total_slots mod n in
  let states = Array.make (Topo.Topology.num_nodes topo) None in
  Array.iteri
    (fun i tor ->
      let slots = base + if i < remainder then 1 else 0 in
      states.(tor) <-
        Some
          {
            cache = Cache.create ~slots;
            cp_busy_until = Time_ns.zero;
            cp_queued_bytes = 0;
          })
    tors;
  let cp_drops = ref 0 and cp_detours = ref 0 in
  {
    Scheme.name = "Bluebird";
    (* No gateways in Bluebird: the ToR always resolves. The initial
       outer destination is never reached. *)
    resolve_at_host = (fun _env ~host:_ ~flow_id:_ ~dst_vip:_ -> Scheme.Send_via_gateway);
    pipeline =
      Pipeline.make
        ~reset:(fun ~switch ->
          match states.(switch) with
          | None -> ()
          | Some st ->
              Cache.clear st.cache;
              st.cp_busy_until <- Time_ns.zero;
              st.cp_queued_bytes <- 0)
        [
          Pipeline.stage ~kind:Pipeline.Lookup "tor-route-cache"
            (fun env ~switch ~from:_ pkt ->
              match states.(switch) with
              | None -> Verdict.forward
              | Some st -> (
                  match pkt.Packet.kind with
                  | Packet.Learning | Packet.Invalidation -> Verdict.forward
                  | Packet.Data | Packet.Ack ->
                      if pkt.Packet.resolved then Verdict.forward
                      else begin
                        let r = Cache.lookup st.cache pkt.Packet.dst_vip in
                        if r >= 0 then begin
                          pkt.Packet.dst_pip <- Cache.hit_pip r;
                          pkt.Packet.resolved <- true;
                          pkt.Packet.hit_switch <- switch;
                          Verdict.forward
                        end
                        else if
                          (* Route-cache miss: detour via the SFE over
                             the bandwidth-limited data-to-CP channel. *)
                          st.cp_queued_bytes + pkt.Packet.size
                          > cp_queue_bytes
                        then begin
                          incr cp_drops;
                          Verdict.drop
                        end
                        else begin
                          incr cp_detours;
                          let now = Dessim.Engine.now env.Scheme.engine in
                          let start = Time_ns.max now st.cp_busy_until in
                          let ser =
                            Time_ns.of_rate_bytes ~bits_per_sec:cp_rate_bps
                              pkt.Packet.size
                          in
                          st.cp_busy_until <- Time_ns.add start ser;
                          st.cp_queued_bytes <-
                            st.cp_queued_bytes + pkt.Packet.size;
                          let ready =
                            Time_ns.add (Time_ns.sub st.cp_busy_until now)
                              cp_fwd_delay
                          in
                          let bytes = pkt.Packet.size in
                          Dessim.Engine.schedule_after env.Scheme.engine
                            ~delay:ready (fun () ->
                              st.cp_queued_bytes <- st.cp_queued_bytes - bytes);
                          (* The SFE knows every mapping. *)
                          let pip =
                            Netcore.Mapping.lookup env.Scheme.mapping
                              pkt.Packet.dst_vip
                          in
                          pkt.Packet.dst_pip <- pip;
                          pkt.Packet.resolved <- true;
                          let vip = pkt.Packet.dst_vip in
                          Dessim.Engine.schedule_after env.Scheme.engine
                            ~delay:cp_insert_delay (fun () ->
                              ignore
                                (Cache.insert st.cache ~admission:`All vip pip));
                          Verdict.delay ready
                        end
                      end));
        ];
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Follow_me);
    on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
    host_tags_misdelivery = false;
    stats =
      (fun () ->
        [
          ("cp_detours", float_of_int !cp_detours);
          ("cp_drops", float_of_int !cp_drops);
        ]);
  }
