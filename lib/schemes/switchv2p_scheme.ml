module Scheme = Netsim.Scheme
module Dataplane = Switchv2p.Dataplane

let make_with_dataplane ?(config = Switchv2p.Config.default) ?partition topo
    ~total_cache_slots =
  let dp = Dataplane.create ?partition config topo ~total_cache_slots in
  let dp_env_of (env : Scheme.env) =
    {
      Dataplane.now = (fun () -> Dessim.Engine.now env.Scheme.engine);
      emit =
        (fun ~src_switch pkt -> env.Scheme.emit_at_switch ~src_switch pkt);
      fresh_packet_id = env.Scheme.fresh_packet_id;
      rng = env.Scheme.rng;
    }
  in
  let scheme =
    {
      Scheme.name = "SwitchV2P";
      resolve_at_host =
        (fun _env ~host:_ ~flow_id:_ ~dst_vip:_ -> Scheme.Send_via_gateway);
      on_switch =
        (fun env ~switch ~from pkt ->
          match Dataplane.process dp (dp_env_of env) ~switch ~from pkt with
          | Dataplane.Forward -> Scheme.Forward
          | Dataplane.Consume -> Scheme.Consume);
      on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Reforward_to_gateway);
      on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
      host_tags_misdelivery = false;
      stats =
        (fun () ->
          [
            ( "learning_packets",
              float_of_int (Dataplane.learning_packets_sent dp) );
            ( "invalidation_packets",
              float_of_int (Dataplane.invalidation_packets_sent dp) );
            ( "invalidations_suppressed",
              float_of_int (Dataplane.invalidations_suppressed dp) );
            ("promotions", float_of_int (Dataplane.promotions dp));
            ("spills_attached", float_of_int (Dataplane.spills_attached dp));
            ("spills_absorbed", float_of_int (Dataplane.spills_absorbed dp));
            ( "entries_invalidated",
              float_of_int (Dataplane.entries_invalidated dp) );
            ("misdelivery_tags", float_of_int (Dataplane.misdelivery_tags dp));
          ]);
      telemetry =
        Some
          {
            Scheme.attach = (fun tel -> Dataplane.set_telemetry dp tel);
            probe = (fun tel ~now_sec -> Dataplane.probe_telemetry dp tel ~now_sec);
          };
    }
  in
  (scheme, dp)

let make ?config ?partition topo ~total_cache_slots =
  fst (make_with_dataplane ?config ?partition topo ~total_cache_slots)
