module Scheme = Netsim.Scheme
module Pipeline = Netsim.Pipeline
module Dataplane = Switchv2p.Dataplane

let make_with_dataplane ?(config = Switchv2p.Config.default) ?partition topo
    ~total_cache_slots =
  let dp = Dataplane.create ?partition config topo ~total_cache_slots in
  (* The [Dataplane.env] record is built once per network
     ([Pipeline.prepare]) and memoized on the scheme env's identity —
     the old adapter rebuilt it (four closures) on every switch visit.
     The physical-equality fallback keeps harnesses that drive the
     pipeline without a [Network.create] (unit tests) working, and
     rebuilds correctly when one scheme value is reused across
     networks. *)
  let memo : (Scheme.env * Dataplane.env) option ref = ref None in
  let dp_env (env : Scheme.env) =
    match !memo with
    | Some (e, de) when e == env -> de
    | Some _ | None ->
        let de =
          {
            Dataplane.now = (fun () -> Dessim.Engine.now env.Scheme.engine);
            emit = env.Scheme.emit_at_switch;
            fresh_packet_id = env.Scheme.fresh_packet_id;
            rng = env.Scheme.rng;
          }
        in
        memo := Some (env, de);
        de
  in
  let pipeline =
    Pipeline.make
      ~attach:(fun tel -> Dataplane.set_telemetry dp tel)
      ~prepare:(fun env -> ignore (dp_env env : Dataplane.env))
      ~reset:(fun ~switch -> Dataplane.fail_switch dp ~switch)
      [
        Pipeline.stage ~kind:Pipeline.Classify "classify"
          (fun env ~switch ~from pkt ->
            Dataplane.classify dp (dp_env env) ~switch ~from pkt);
        Pipeline.stage ~kind:Pipeline.Lookup "lookup"
          ~probe:(fun tel ~now_sec -> Dataplane.probe_telemetry dp tel ~now_sec)
          (fun env ~switch ~from pkt ->
            Dataplane.lookup dp (dp_env env) ~switch ~from pkt);
        Pipeline.stage ~kind:Pipeline.Learn "learn"
          (fun env ~switch ~from pkt ->
            Dataplane.admit dp (dp_env env) ~switch ~from pkt);
        Pipeline.stage ~kind:Pipeline.Emit "emit"
          (fun env ~switch ~from pkt ->
            Dataplane.emit dp (dp_env env) ~switch ~from pkt);
      ]
  in
  let scheme =
    {
      Scheme.name = "SwitchV2P";
      resolve_at_host =
        (fun _env ~host:_ ~flow_id:_ ~dst_vip:_ -> Scheme.Send_via_gateway);
      pipeline;
      on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Reforward_to_gateway);
      on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
      host_tags_misdelivery = false;
      stats =
        (fun () ->
          [
            ( "learning_packets",
              float_of_int (Dataplane.learning_packets_sent dp) );
            ( "invalidation_packets",
              float_of_int (Dataplane.invalidation_packets_sent dp) );
            ( "invalidations_suppressed",
              float_of_int (Dataplane.invalidations_suppressed dp) );
            ("promotions", float_of_int (Dataplane.promotions dp));
            ("spills_attached", float_of_int (Dataplane.spills_attached dp));
            ("spills_absorbed", float_of_int (Dataplane.spills_absorbed dp));
            ( "entries_invalidated",
              float_of_int (Dataplane.entries_invalidated dp) );
            ("misdelivery_tags", float_of_int (Dataplane.misdelivery_tags dp));
          ]);
    }
  in
  (scheme, dp)

let make ?config ?partition topo ~total_cache_slots =
  fst (make_with_dataplane ?config ?partition topo ~total_cache_slots)
