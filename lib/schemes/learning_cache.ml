module Packet = Netcore.Packet
module Pip = Netcore.Addr.Pip
module Cache = Switchv2p.Cache

type t = { caches : Cache.t option array }

let create ~switches ~total_slots ~num_nodes =
  if total_slots < 0 then invalid_arg "Learning_cache.create: negative slots";
  Array.iter
    (fun sw ->
      if sw < 0 || sw >= num_nodes then
        invalid_arg
          (Printf.sprintf
             "Learning_cache.create: switch id %d out of range for %d nodes"
             sw num_nodes))
    switches;
  let caches = Array.make num_nodes None in
  let n = Array.length switches in
  if n > 0 then begin
    let base = total_slots / n and remainder = total_slots mod n in
    Array.iteri
      (fun i sw ->
        let slots = base + if i < remainder then 1 else 0 in
        caches.(sw) <- Some (Cache.create ~slots))
      switches
  end;
  { caches }

let cache t ~switch = t.caches.(switch)

let fail_switch t ~switch =
  match t.caches.(switch) with None -> () | Some c -> Cache.clear c

(* Lookup stage: tagged packets only clean up (they are resolved by
   the gateway); unresolved packets consult the cache. *)
let lookup t ~switch (pkt : Packet.t) =
  match t.caches.(switch) with
  | None -> ()
  | Some cache -> (
      match pkt.Packet.kind with
      | Packet.Data | Packet.Ack ->
          if pkt.Packet.misdelivery >= 0 then
            ignore
              (Cache.invalidate cache pkt.Packet.dst_vip
                 ~stale:(Pip.of_int pkt.Packet.misdelivery))
          else if not pkt.Packet.resolved && not pkt.Packet.gw_pinned then begin
            let r = Cache.lookup cache pkt.Packet.dst_vip in
            if r >= 0 then begin
              pkt.Packet.dst_pip <- Cache.hit_pip r;
              pkt.Packet.resolved <- true;
              pkt.Packet.hit_switch <- switch
            end
          end
      | Packet.Learning | Packet.Invalidation -> ())

(* Learn stage: destination learning, admit-all (ACKs are tunneled
   tenant packets and teach reverse-direction mappings too). *)
let learn t ~switch (pkt : Packet.t) =
  match t.caches.(switch) with
  | None -> ()
  | Some cache ->
      let tenant =
        match pkt.Packet.kind with
        | Packet.Data | Packet.Ack -> true
        | Packet.Learning | Packet.Invalidation -> false
      in
      if pkt.Packet.resolved && tenant then
        ignore
          (Cache.insert cache ~admission:`All pkt.Packet.dst_vip
             pkt.Packet.dst_pip)

let on_switch t ~switch (pkt : Packet.t) =
  lookup t ~switch pkt;
  learn t ~switch pkt

let fold_caches t f init =
  Array.fold_left
    (fun acc c -> match c with Some cache -> f acc cache | None -> acc)
    init t.caches

let total_hits t = fold_caches t (fun acc c -> acc + Cache.hits c) 0
let total_misses t = fold_caches t (fun acc c -> acc + Cache.misses c) 0
