module Packet = Netcore.Packet
module Vip = Netcore.Addr.Vip
module Pip = Netcore.Addr.Pip
module Scheme = Netsim.Scheme
module Pipeline = Netsim.Pipeline
module Verdict = Switchv2p.Verdict
module Topology = Topo.Topology

type control = {
  topo : Topology.t;
  switches : int array;
  (* Partition state per switch position: alive or failed. The
     partition contents are read through the ground-truth store —
     consistent with treating the DHT as authoritative storage whose
     update path is instantaneous. *)
  alive : bool array;
  switch_pos : int array;
  mutable fallbacks : int;
  mutable redirects : int;
  mutable home_hits : int;
}

let home_pos c vip =
  Topo.Routing.ecmp_hash ~salt:(Vip.to_int vip) ~a:(Vip.to_int vip) ~b:17
  mod Array.length c.switches

let home_of c vip = c.switches.(home_pos c vip)
let fallbacks c = c.fallbacks

let fail_switch c ~switch =
  let pos = c.switch_pos.(switch) in
  if pos < 0 then invalid_arg "Dht_store.fail_switch: not a switch";
  c.alive.(pos) <- false

let repopulate c ~switch =
  let pos = c.switch_pos.(switch) in
  if pos < 0 then invalid_arg "Dht_store.repopulate: not a switch";
  c.alive.(pos) <- true

let make_with_control topo =
  let switches = Topology.switches topo in
  let switch_pos = Array.make (Topology.num_nodes topo) (-1) in
  Array.iteri (fun pos sw -> switch_pos.(sw) <- pos) switches;
  let c =
    {
      topo;
      switches;
      alive = Array.make (Array.length switches) true;
      switch_pos;
      fallbacks = 0;
      redirects = 0;
      home_hits = 0;
    }
  in
  let scheme =
    {
      Scheme.name = "DhtStore";
      (* The initial outer destination points at a gateway, but the
         sender's ToR immediately redirects toward the home switch; a
         gateway is only reached on partition failure. *)
      resolve_at_host =
        (fun _env ~host:_ ~flow_id:_ ~dst_vip:_ -> Scheme.Send_via_gateway);
      pipeline =
        Pipeline.make
          [
            Pipeline.stage ~kind:Pipeline.Lookup "dht-partition"
              (fun env ~switch ~from pkt ->
                match pkt.Packet.kind with
                | Packet.Learning | Packet.Invalidation -> Verdict.forward
                | Packet.Data | Packet.Ack ->
                    if pkt.Packet.resolved then Verdict.forward
                    else begin
                      let pos = home_pos c pkt.Packet.dst_vip in
                      let home = c.switches.(pos) in
                      let is_ingress =
                        from < Topology.num_nodes c.topo
                        && Topo.Node.is_endpoint (Topology.kind c.topo from)
                      in
                      if home = switch then begin
                        (* At the home switch: authoritative resolution. *)
                        if c.alive.(pos) then begin
                          match
                            Netcore.Mapping.lookup_opt env.Scheme.mapping
                              pkt.Packet.dst_vip
                          with
                          | Some pip ->
                              c.home_hits <- c.home_hits + 1;
                              pkt.Packet.dst_pip <- pip;
                              pkt.Packet.resolved <- true;
                              pkt.Packet.hit_switch <- switch;
                              Verdict.forward
                          | None -> Verdict.drop
                        end
                        else begin
                          (* Partition lost: fall back to a gateway. *)
                          c.fallbacks <- c.fallbacks + 1;
                          pkt.Packet.dst_pip <-
                            Topology.pip c.topo (Topology.gateways c.topo).(0);
                          Verdict.forward
                        end
                      end
                      else if is_ingress then begin
                        (* Ingress ToR: steer toward the home switch (unless
                           its partition is known-dead, in which case let
                           the gateway path stand). *)
                        if c.alive.(pos) then begin
                          c.redirects <- c.redirects + 1;
                          pkt.Packet.dst_pip <- Topology.pip c.topo home
                        end
                        else c.fallbacks <- c.fallbacks + 1;
                        Verdict.forward
                      end
                      else Verdict.forward
                    end);
          ];
      on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Follow_me);
      on_mapping_update = (fun _env _vip ~old_pip:_ ~new_pip:_ -> ());
      host_tags_misdelivery = false;
      stats =
        (fun () ->
          [
            ("dht_redirects", float_of_int c.redirects);
            ("dht_home_hits", float_of_int c.home_hits);
            ("dht_fallbacks", float_of_int c.fallbacks);
          ]);
    }
  in
  (scheme, c)

let make topo = fst (make_with_control topo)
