module Time_ns = Dessim.Time_ns
module Packet = Netcore.Packet
module Vip = Netcore.Addr.Vip
module Scheme = Netsim.Scheme
module Pipeline = Netsim.Pipeline
module Verdict = Switchv2p.Verdict
module Topology = Topo.Topology
module Routing = Topo.Routing

type state = {
  topo : Topology.t;
  interval : Time_ns.t;
  gw_cost_hops : float;
  slots : int array; (* per switch position *)
  switch_ids : int array;
  switch_pos : int array; (* node id -> position, -1 otherwise *)
  (* Demand window: (src_host, vip) -> packet count. *)
  window : (int * int, int ref) Hashtbl.t;
  (* Installed entries: per switch position, vip -> pip. *)
  installed : (int, Netcore.Addr.Pip.t) Hashtbl.t array;
  mutable started : bool;
  mutable solves : int;
  mutable installed_total : int;
}

let record_demand st ~host ~vip =
  let key = (host, Vip.to_int vip) in
  match Hashtbl.find_opt st.window key with
  | Some r -> incr r
  | None -> Hashtbl.add st.window key (ref 1)

(* The canonical gateway a sender's unresolved traffic heads to; used
   only for the cost model. *)
let gateway_of st ~host =
  let gws = Topology.gateways st.topo in
  gws.(Routing.ecmp_hash ~salt:host ~a:host ~b:13 mod Array.length gws)

let solve st (env : Scheme.env) =
  st.solves <- st.solves + 1;
  (* Dense item ids for the VIPs seen this window. *)
  let vip_ids = Hashtbl.create 64 in
  let rev_vip = ref [] in
  let intern vip =
    match Hashtbl.find_opt vip_ids vip with
    | Some i -> i
    | None ->
        let i = Hashtbl.length vip_ids in
        Hashtbl.add vip_ids vip i;
        rev_vip := vip :: !rev_vip;
        i
  in
  let demands = ref [] in
  Hashtbl.iter
    (fun (host, vip) count ->
      demands :=
        { Ilp.Allocation.src = host; dst = intern vip; weight = float_of_int !count }
        :: !demands)
    st.window;
  let demands = Array.of_list !demands in
  let vips = Array.of_list (List.rev !rev_vip) in
  if Array.length demands > 0 then begin
    (* Per-demand path data: uplink path to the gateway (positions and
       hop offsets), plus destination host. *)
    let dst_host vip =
      Topology.node_of_pip st.topo
        (Netcore.Mapping.lookup env.Scheme.mapping (Vip.of_int vip))
    in
    let path_cache = Hashtbl.create 64 in
    let uplink_path host =
      match Hashtbl.find_opt path_cache host with
      | Some p -> p
      | None ->
          let gw = gateway_of st ~host in
          let p = Routing.path st.topo ~src:host ~dst:gw ~salt:host in
          Hashtbl.replace path_cache host p;
          p
    in
    let hop_index path node =
      let rec go i = function
        | [] -> None
        | x :: _ when x = node -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 path
    in
    let default_cost (d : Ilp.Allocation.demand) =
      let path = uplink_path d.src in
      let to_gw = float_of_int (List.length path - 1) in
      let gw = gateway_of st ~host:d.src in
      let down =
        float_of_int
          (Routing.hop_count st.topo ~src:gw ~dst:(dst_host vips.(d.dst))
             ~salt:d.src)
      in
      to_gw +. st.gw_cost_hops +. down
    in
    let cached_cost (d : Ilp.Allocation.demand) pos =
      let sw = st.switch_ids.(pos) in
      let path = uplink_path d.src in
      match hop_index path sw with
      | None -> None
      | Some i ->
          let dh = dst_host vips.(d.dst) in
          let down =
            if sw = dh then 0
            else Routing.hop_count st.topo ~src:sw ~dst:dh ~salt:d.src
          in
          Some (float_of_int (i + down))
    in
    let instance =
      {
        Ilp.Allocation.num_items = Array.length vips;
        num_switches = Array.length st.switch_ids;
        capacity = st.slots;
        demands;
        default_cost;
        cached_cost;
      }
    in
    let assignment = Ilp.Allocation.solve_greedy instance in
    (* Install: replace every switch's table. *)
    Array.iteri
      (fun pos table ->
        Hashtbl.reset table;
        List.iter
          (fun item ->
            let vip = Vip.of_int vips.(item) in
            match Netcore.Mapping.lookup_opt env.Scheme.mapping vip with
            | Some pip ->
                Hashtbl.replace table (Vip.to_int vip) pip;
                st.installed_total <- st.installed_total + 1
            | None -> ())
          (Ilp.Allocation.items_of assignment ~switch:pos))
      st.installed
  end;
  Hashtbl.reset st.window

let rec periodic st (env : Scheme.env) =
  Dessim.Engine.schedule_after env.Scheme.engine ~delay:st.interval (fun () ->
      solve st env;
      periodic st env)

let make ?(gw_cost_hops = 40.0) ~topo ~total_slots ~interval () =
  let switch_ids = Topology.switches topo in
  let n = Array.length switch_ids in
  let base = total_slots / n and remainder = total_slots mod n in
  let slots = Array.init n (fun i -> base + if i < remainder then 1 else 0) in
  let switch_pos = Array.make (Topology.num_nodes topo) (-1) in
  Array.iteri (fun pos sw -> switch_pos.(sw) <- pos) switch_ids;
  let st =
    {
      topo;
      interval;
      gw_cost_hops;
      slots;
      switch_ids;
      switch_pos;
      window = Hashtbl.create 1024;
      installed = Array.init n (fun _ -> Hashtbl.create 16);
      started = false;
      solves = 0;
      installed_total = 0;
    }
  in
  {
    Scheme.name = "Controller";
    resolve_at_host =
      (fun env ~host ~flow_id:_ ~dst_vip ->
        if not st.started then begin
          st.started <- true;
          periodic st env
        end;
        record_demand st ~host ~vip:dst_vip;
        Scheme.Send_via_gateway);
    pipeline =
      Pipeline.make
        ~reset:(fun ~switch ->
          let pos = st.switch_pos.(switch) in
          if pos >= 0 then Hashtbl.reset st.installed.(pos))
        [
          Pipeline.stage ~kind:Pipeline.Lookup "installed-table"
            (fun _env ~switch ~from:_ pkt ->
              let pos = st.switch_pos.(switch) in
              if pos >= 0 then begin
                match pkt.Packet.kind with
                | Packet.Data | Packet.Ack ->
                    if
                      (not pkt.Packet.resolved)
                      && pkt.Packet.misdelivery < 0
                    then begin
                      match
                        Hashtbl.find_opt st.installed.(pos)
                          (Vip.to_int pkt.Packet.dst_vip)
                      with
                      | Some pip ->
                          pkt.Packet.dst_pip <- pip;
                          pkt.Packet.resolved <- true;
                          pkt.Packet.hit_switch <- switch
                      | None -> ()
                    end
                | Packet.Learning | Packet.Invalidation -> ()
              end;
              Verdict.forward);
        ];
    on_misdelivery = (fun _env ~host:_ _pkt -> Scheme.Reforward_to_gateway);
    on_mapping_update =
      (fun _env vip ~old_pip ~new_pip:_ ->
        (* The controller repairs stale installs on its next solve;
           meanwhile remove them eagerly (it is omniscient). *)
        Array.iter
          (fun table ->
            match Hashtbl.find_opt table (Vip.to_int vip) with
            | Some pip when Netcore.Addr.Pip.equal pip old_pip ->
                Hashtbl.remove table (Vip.to_int vip)
            | Some _ | None -> ())
          st.installed);
    host_tags_misdelivery = true;
    stats =
      (fun () ->
        [
          ("controller_solves", float_of_int st.solves);
          ("entries_installed", float_of_int st.installed_total);
        ]);
  }
