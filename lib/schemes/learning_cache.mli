(** Shared skeleton for the "flat" caching baselines (LocalLearning and
    GwCache): destination learning with admit-all at a designated set
    of switches, lookup for unresolved packets, and conservative
    handling of host-tagged misdelivered packets (invalidate matching
    stale entries, never serve a tagged packet from cache). *)

type t

(** [create ~switches ~total_slots ~num_nodes] splits [total_slots]
    equally (remainder round-robin) across [switches]. Raises
    [Invalid_argument] if any switch id is outside [0 .. num_nodes-1]
    (previously an out-of-range id surfaced later as a bare
    out-of-bounds array access). *)
val create : switches:int array -> total_slots:int -> num_nodes:int -> t

(** The two pipeline stages. [lookup] invalidates stale entries for
    tagged packets and serves unresolved ones from cache; [learn]
    installs the destination mapping of resolved tenant packets.
    Both do nothing at non-caching switches. *)

val lookup : t -> switch:int -> Netcore.Packet.t -> unit
val learn : t -> switch:int -> Netcore.Packet.t -> unit

(** [on_switch t ~switch pkt] is [lookup] then [learn] — the whole
    per-switch program in one call (unit tests). Always forwards. *)
val on_switch : t -> switch:int -> Netcore.Packet.t -> unit

(** [cache t ~switch] — the switch's cache, or [None] for non-caching
    switches. *)
val cache : t -> switch:int -> Switchv2p.Cache.t option

(** [fail_switch t ~switch] wipes [switch]'s cache (switch
    failure/reboot); a no-op for switches without a cache. *)
val fail_switch : t -> switch:int -> unit

(** Aggregate hits/misses over all caches. *)
val total_hits : t -> int

val total_misses : t -> int
