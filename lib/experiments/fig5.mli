(** Figures 5a-5d and 6: hit rate, FCT improvement and first-packet
    latency improvement versus cache size, per trace.

    Each point runs the full packet simulation for every scheme; the
    NoCache baseline normalizes the improvement factors, exactly as in
    the paper. *)

type trace_kind = Hadoop | Microbursts | Websearch | Video | Alibaba

type cell = {
  hit : float;  (** fraction of tenant packets that avoid the gateways *)
  fct_x : float;  (** mean-FCT improvement over NoCache *)
  fpl_x : float;  (** first-packet-latency improvement over NoCache *)
}

type t = {
  kind : trace_kind;
  cache_pcts : int list;
  nocache : Runner.result;
  (* (scheme, per-cache-size cells); cache-independent schemes carry
     the same cell at every size *)
  series : (string * cell array) list;
}

(** [scenario ?scale ?cache_pcts ?with_controller kind] — the whole
    sweep as one declarative {!Netsim.Scenario} spec: the trace's
    topology and workload, with one scheme alternative per (scheme,
    cache size) point in task order. {!run} is exactly this spec
    executed. *)
val scenario :
  ?scale:Setup.scale ->
  ?cache_pcts:int list ->
  ?with_controller:bool ->
  trace_kind ->
  Netsim.Scenario.t

(** [run ?scale ?cache_pcts ?with_controller kind] executes the sweep.
    [with_controller] adds the (expensive) Controller baseline, as the
    paper does for WebSearch only. Alibaba uses the FT16 topology. *)
val run :
  ?scale:Setup.scale ->
  ?cache_pcts:int list ->
  ?with_controller:bool ->
  trace_kind ->
  t

val trace_name : trace_kind -> string

(** [print t] renders one table per metric (hit rate / FCT x / FPL x). *)
val print : t -> unit
