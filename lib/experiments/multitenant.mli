(** Multitenancy experiment (§4 "Multitenancy support", implemented as
    the paper sketches it: per-VPC private cache partitions).

    Two tenants are colocated on every server (VIP parity decides the
    VPC): tenant A runs a steady Hadoop-like workload, tenant B floods
    one-off destinations (cache-hostile churn). For direct-mapped
    caches an equal split is statistically close to sharing — the
    interesting operator policy is a weighted partition that caps the
    noisy tenant's footprint (the per-VPC policy knob §4 sketches). *)

type row = {
  config : string;
  tenant_a_hit : float;
  tenant_b_hit : float;
  tenant_a_fct : float;  (** global mean FCT, for context *)
  overall_hit : float;
}

type t = { rows : row list }

(** One partition policy as a {!Netsim.Scenario} spec: two VIP-parity
    tenant streams, [classify = Vip_parity], and a SwitchV2P scheme
    carrying the optional share vector; {!run} executes the shared /
    50-50 / 90-10 policies. *)
val scenario :
  ?scale:Setup.scale ->
  ?cache_pct:int ->
  ?shares:float array ->
  string ->
  Netsim.Scenario.t

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t
val print : t -> unit
