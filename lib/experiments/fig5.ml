module Time_ns = Dessim.Time_ns
module Spec = Netsim.Scenario

type trace_kind = Hadoop | Microbursts | Websearch | Video | Alibaba

type cell = { hit : float; fct_x : float; fpl_x : float }

type t = {
  kind : trace_kind;
  cache_pcts : int list;
  nocache : Runner.result;
  series : (string * cell array) list;
}

let trace_name = function
  | Hadoop -> "Hadoop"
  | Microbursts -> "Microbursts"
  | Websearch -> "WebSearch"
  | Video -> "Video"
  | Alibaba -> "Alibaba"

let spec_trace = function
  | Hadoop -> Spec.Hadoop
  | Microbursts -> Spec.Microbursts
  | Websearch -> Spec.Websearch
  | Video -> Spec.Video
  | Alibaba -> Spec.Alibaba

(* The sweep's shape: one NoCache baseline, then per-scheme series
   that are either swept across cache sizes or cache-independent
   (fixed). Scheme-spec order in the scenario is exactly this task
   order. *)
let series_shape ~with_controller =
  [
    `Swept ("LocalLearning", fun sl -> Spec.Locallearning sl);
    `Swept ("GwCache", fun sl -> Spec.Gwcache sl);
    `Swept ("Bluebird", fun sl -> Spec.Bluebird sl);
    `Fixed ("OnDemand", Spec.Ondemand);
    `Fixed ("Direct", Spec.Direct);
    `Swept ("SwitchV2P", fun sl -> Spec.switchv2p sl);
  ]
  @
  if with_controller then
    [
      `Swept
        ( "Controller",
          fun sl -> Spec.Controller { slots = sl; interval = Time_ns.of_us 300 }
        );
    ]
  else []

let scenario ?(scale = `Small) ?(cache_pcts = [ 1; 10; 50; 200; 1500 ])
    ?(with_controller = false) kind =
  let family = match kind with Alibaba -> `FT16 | _ -> `FT8 in
  let swept name mk =
    List.map
      (fun pct ->
        Spec.scheme ~label:(Printf.sprintf "%s@%d%%" name pct) (mk (Spec.Pct pct)))
      cache_pcts
  in
  let schemes =
    Spec.scheme ~label:"NoCache" Spec.Nocache
    :: List.concat_map
         (function
           | `Fixed (name, kind) -> [ Spec.scheme ~label:name kind ]
           | `Swept (name, mk) -> swept name mk)
         (series_shape ~with_controller)
  in
  Spec.make ~name:(trace_name kind)
    ~topo:(Spec.preset family scale)
    ~streams:[ Spec.stream (spec_trace kind) ]
    schemes

(* UDP traces have no flow-completion semantics comparable to TCP's;
   use mean packet latency as the paper's FCT proxy there. *)
let fct_metric kind (r : Runner.result) =
  match kind with
  | Hadoop | Websearch | Alibaba -> r.Runner.mean_fct
  | Microbursts | Video -> r.Runner.mean_pkt_latency

let cell_of kind ~(nocache : Runner.result) (r : Runner.result) =
  {
    hit = r.Runner.hit_rate;
    fct_x =
      Runner.improvement
        ~baseline:(fct_metric kind nocache)
        ~v:(fct_metric kind r);
    fpl_x =
      Runner.improvement ~baseline:nocache.Runner.mean_fpl
        ~v:r.Runner.mean_fpl;
  }

let run ?scale ?(cache_pcts = [ 1; 10; 50; 200; 1500 ]) ?(with_controller = false)
    kind =
  let spec = scenario ?scale ~cache_pcts ~with_controller kind in
  match Parallel.map (Scenario.tasks spec) with
  | [] -> assert false
  | nocache :: rest ->
      let rec split_at n xs =
        if n = 0 then ([], xs)
        else
          match xs with
          | x :: tl ->
              let a, b = split_at (n - 1) tl in
              (x :: a, b)
          | [] -> assert false
      in
      let rec assemble shape rest =
        match shape with
        | [] ->
            assert (rest = []);
            []
        | `Fixed (name, _) :: tl ->
            let r, rest = (List.hd rest, List.tl rest) in
            ( name,
              Array.of_list
                (List.map (fun _ -> cell_of kind ~nocache r) cache_pcts) )
            :: assemble tl rest
        | `Swept (name, _) :: tl ->
            let rs, rest = split_at (List.length cache_pcts) rest in
            (name, Array.of_list (List.map (cell_of kind ~nocache) rs))
            :: assemble tl rest
      in
      {
        kind;
        cache_pcts;
        nocache;
        series = assemble (series_shape ~with_controller) rest;
      }

let print t =
  let name = trace_name t.kind in
  let header =
    "scheme" :: List.map (fun p -> string_of_int p ^ "%") t.cache_pcts
  in
  let metric title f omit =
    let rows =
      List.filter_map
        (fun (scheme, cells) ->
          if List.mem scheme omit then None
          else Some (scheme :: Array.to_list (Array.map f cells)))
        t.series
    in
    Report.table ~title:(name ^ ": " ^ title ^ " vs cache size") ~header rows
  in
  (* The paper omits hit rates for schemes that never touch gateways. *)
  metric "cache hit rate"
    (fun c -> Report.fpct c.hit)
    [ "Bluebird"; "Direct"; "OnDemand" ];
  metric "FCT improvement over NoCache" (fun c -> Report.fx c.fct_x) [];
  metric "first-packet latency improvement over NoCache"
    (fun c -> Report.fx c.fpl_x)
    []
