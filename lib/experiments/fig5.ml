module Time_ns = Dessim.Time_ns

type trace_kind = Hadoop | Microbursts | Websearch | Video | Alibaba

type cell = { hit : float; fct_x : float; fpl_x : float }

type t = {
  kind : trace_kind;
  cache_pcts : int list;
  nocache : Runner.result;
  series : (string * cell array) list;
}

let trace_name = function
  | Hadoop -> "Hadoop"
  | Microbursts -> "Microbursts"
  | Websearch -> "WebSearch"
  | Video -> "Video"
  | Alibaba -> "Alibaba"

let trace_of setup = function
  | Hadoop -> Setup.hadoop_trace setup
  | Microbursts -> Setup.microbursts_trace setup
  | Websearch -> Setup.websearch_trace setup
  | Video -> Setup.video_trace setup
  | Alibaba -> Setup.alibaba_trace setup

(* UDP traces have no flow-completion semantics comparable to TCP's;
   use mean packet latency as the paper's FCT proxy there. *)
let fct_metric kind (r : Runner.result) =
  match kind with
  | Hadoop | Websearch | Alibaba -> r.Runner.mean_fct
  | Microbursts | Video -> r.Runner.mean_pkt_latency

let cell_of kind ~(nocache : Runner.result) (r : Runner.result) =
  {
    hit = r.Runner.hit_rate;
    fct_x =
      Runner.improvement
        ~baseline:(fct_metric kind nocache)
        ~v:(fct_metric kind r);
    fpl_x =
      Runner.improvement ~baseline:nocache.Runner.mean_fpl
        ~v:r.Runner.mean_fpl;
  }

let run ?(scale = `Small) ?(cache_pcts = [ 1; 10; 50; 200; 1500 ])
    ?(with_controller = false) kind =
  let spec =
    match kind with
    | Alibaba -> Setup.spec_ft16 scale
    | _ -> Setup.spec_ft8 scale
  in
  (* Flows are immutable and deterministic in the spec's seed: generate
     once here and share across workers. Topologies and schemes are
     mutable; each task builds its own from the domain-local setup. *)
  let flows = trace_of (Setup.pooled spec) kind in
  let until = Setup.horizon flows in
  let task name mk_scheme =
    let full_name = trace_name kind ^ "/" ^ name in
    ( full_name,
      fun () ->
        let setup = Setup.pooled spec in
        Runner.run ~report_name:full_name setup ~scheme:(mk_scheme setup)
          ~flows ~migrations:[] ~until )
  in
  let swept name make =
    `Swept
      ( name,
        List.map
          (fun pct ->
            task
              (Printf.sprintf "%s@%d%%" name pct)
              (fun setup ->
                make setup.Setup.topo (Setup.cache_slots setup ~pct)))
          cache_pcts )
  in
  let fixed name make = `Fixed (name, task name (fun setup -> make setup.Setup.topo)) in
  let series_spec =
    [
      swept "LocalLearning" (fun topo slots ->
          Schemes.Baselines.locallearning ~topo ~total_slots:slots);
      swept "GwCache" (fun topo slots ->
          Schemes.Baselines.gwcache ~topo ~total_slots:slots);
      swept "Bluebird" (fun topo slots ->
          Schemes.Baselines.bluebird ~topo ~total_slots:slots ());
      fixed "OnDemand" (fun _ -> Schemes.Baselines.ondemand ());
      fixed "Direct" (fun _ -> Schemes.Baselines.direct ());
      swept "SwitchV2P" (fun topo slots ->
          Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots);
    ]
    @
    if with_controller then
      [
        swept "Controller" (fun topo slots ->
            Schemes.Controller.make ~topo ~total_slots:slots
              ~interval:(Time_ns.of_us 300) ());
      ]
    else []
  in
  let tasks =
    task "NoCache" (fun _ -> Schemes.Baselines.nocache ())
    :: List.concat_map
         (function `Fixed (_, t) -> [ t ] | `Swept (_, ts) -> ts)
         series_spec
  in
  match Parallel.map tasks with
  | [] -> assert false
  | nocache :: rest ->
      let rec split_at n xs =
        if n = 0 then ([], xs)
        else
          match xs with
          | x :: tl ->
              let a, b = split_at (n - 1) tl in
              (x :: a, b)
          | [] -> assert false
      in
      let rec assemble specs rest =
        match specs with
        | [] ->
            assert (rest = []);
            []
        | `Fixed (name, _) :: tl ->
            let r, rest = (List.hd rest, List.tl rest) in
            ( name,
              Array.of_list
                (List.map (fun _ -> cell_of kind ~nocache r) cache_pcts) )
            :: assemble tl rest
        | `Swept (name, ts) :: tl ->
            let rs, rest = split_at (List.length ts) rest in
            (name, Array.of_list (List.map (cell_of kind ~nocache) rs))
            :: assemble tl rest
      in
      { kind; cache_pcts; nocache; series = assemble series_spec rest }

let print t =
  let name = trace_name t.kind in
  let header =
    "scheme" :: List.map (fun p -> string_of_int p ^ "%") t.cache_pcts
  in
  let metric title f omit =
    let rows =
      List.filter_map
        (fun (scheme, cells) ->
          if List.mem scheme omit then None
          else Some (scheme :: Array.to_list (Array.map f cells)))
        t.series
    in
    Report.table ~title:(name ^ ": " ^ title ^ " vs cache size") ~header rows
  in
  (* The paper omits hit rates for schemes that never touch gateways. *)
  metric "cache hit rate"
    (fun c -> Report.fpct c.hit)
    [ "Bluebird"; "Direct"; "OnDemand" ];
  metric "FCT improvement over NoCache" (fun c -> Report.fx c.fct_x) [];
  metric "first-packet latency improvement over NoCache"
    (fun c -> Report.fx c.fpl_x)
    []
