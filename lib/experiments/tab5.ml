type dist = { core : float; spine : float; tor : float }
type row = { trace : string; total : dist; first : dist }
type t = { rows : row list }

let dist_of ~core ~spine ~tor =
  let total = core + spine + tor in
  if total = 0 then { core = 0.0; spine = 0.0; tor = 0.0 }
  else
    let f x = float_of_int x /. float_of_int total in
    { core = f core; spine = f spine; tor = f tor }

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let kinds =
    [
      Fig5.Hadoop; Fig5.Websearch; Fig5.Alibaba; Fig5.Microbursts; Fig5.Video;
    ]
  in
  let task kind =
    let full_name = "tab5/" ^ Fig5.trace_name kind in
    ( full_name,
      fun () ->
        let spec =
          match kind with
          | Fig5.Alibaba -> Setup.spec_ft16 scale
          | _ -> Setup.spec_ft8 scale
        in
        let setup = Setup.pooled spec in
        let flows =
          match kind with
          | Fig5.Hadoop -> Setup.hadoop_trace setup
          | Fig5.Websearch -> Setup.websearch_trace setup
          | Fig5.Alibaba -> Setup.alibaba_trace setup
          | Fig5.Microbursts -> Setup.microbursts_trace setup
          | Fig5.Video -> Setup.video_trace setup
        in
        let scheme =
          Schemes.Switchv2p_scheme.make setup.Setup.topo
            ~total_cache_slots:(Setup.cache_slots setup ~pct:cache_pct)
        in
        Runner.run ~report_name:full_name setup ~scheme ~flows ~migrations:[]
          ~until:(Setup.horizon flows) )
  in
  let rows =
    List.map2
      (fun kind (r : Runner.result) ->
        let core, spine, tor, _, _ = r.Runner.layer_hits in
        let fcore, fspine, ftor, _, _ = r.Runner.fp_layer_hits in
        {
          trace = Fig5.trace_name kind;
          total = dist_of ~core ~spine ~tor;
          first = dist_of ~core:fcore ~spine:fspine ~tor:ftor;
        })
      kinds
      (Parallel.map (List.map task kinds))
  in
  { rows }

let print t =
  Report.table
    ~title:"Table 5: SwitchV2P cache-hit distribution across the topology"
    ~header:
      [
        "trace";
        "core";
        "spine";
        "tor";
        "fp core";
        "fp spine";
        "fp tor";
      ]
    (List.map
       (fun r ->
         [
           r.trace;
           Report.fpct r.total.core;
           Report.fpct r.total.spine;
           Report.fpct r.total.tor;
           Report.fpct r.first.core;
           Report.fpct r.first.spine;
           Report.fpct r.first.tor;
         ])
       t.rows)
