module Time_ns = Dessim.Time_ns

type t = {
  flows_started : int;
  flows_completed : int;
  hit_before : float;
  hit_with_failure : float;
  recovered_occupancy : int;
}

let run ?(scale = `Small) ?(cache_pct = 100) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let slots = Setup.cache_slots setup ~pct:cache_pct in
  let flows = Setup.hadoop_trace setup in
  let until = Setup.horizon flows in
  (* Reference run, no failures. *)
  let reference =
    Runner.run ~report_name:"resilience/reference" setup
      ~scheme:(Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots)
      ~flows ~migrations:[] ~until
  in
  (* Disturbed run: wipe all spine and core caches at mid-trace. *)
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:slots
  in
  let net = Netsim.Network.create topo ~scheme in
  (* Fail mid-traffic: half of the last flow's start time. *)
  let last_start =
    List.fold_left
      (fun acc (f : Netcore.Flow.t) -> max acc (Time_ns.to_ns f.Netcore.Flow.start))
      0 flows
  in
  let half = Time_ns.of_ns (last_start / 2) in
  Dessim.Engine.schedule (Netsim.Network.engine net) ~at:half (fun () ->
      Array.iter
        (fun sw -> Switchv2p.Dataplane.fail_switch dp ~switch:sw)
        (Array.append (Topo.Topology.spines topo) (Topo.Topology.cores topo)));
  Netsim.Network.run net flows ~migrations:[] ~until;
  let m = Netsim.Network.metrics net in
  let recovered =
    Array.fold_left
      (fun acc sw ->
        acc + Switchv2p.Cache.occupancy (Switchv2p.Dataplane.cache dp ~switch:sw))
      0
      (Array.append (Topo.Topology.spines topo) (Topo.Topology.cores topo))
  in
  {
    flows_started = Netsim.Metrics.flows_started m;
    flows_completed = Netsim.Metrics.flows_completed m;
    hit_before = reference.Runner.hit_rate;
    hit_with_failure = Netsim.Metrics.hit_rate m;
    recovered_occupancy = recovered;
  }

let print t =
  Report.table
    ~title:"Resilience: spine+core cache wipe at mid-trace (Hadoop)"
    ~header:[ "metric"; "value" ]
    [
      [ "flows completed"; Printf.sprintf "%d / %d" t.flows_completed t.flows_started ];
      [ "hit rate, undisturbed"; Report.fpct t.hit_before ];
      [ "hit rate, with failure"; Report.fpct t.hit_with_failure ];
      [ "entries relearned by end"; string_of_int t.recovered_occupancy ];
    ]
