module Time_ns = Dessim.Time_ns
module Fault = Dessim.Fault
module Spec = Netsim.Scenario

type t = {
  flows_started : int;
  flows_completed : int;
  hit_before : float;
  hit_with_failure : float;
  recovered_occupancy : int;
  recovery_time_s : float option;
}

let base_scenario ~scale ~cache_pct ~name ~faults =
  Spec.make ~name
    ~topo:(Spec.preset `FT8 scale)
    ~streams:[ Spec.stream Spec.Hadoop ]
    ~faults
    [ Spec.scheme ~label:"SwitchV2P" (Spec.switchv2p (Spec.Pct cache_pct)) ]

let reference_scenario ?(scale = `Small) ?(cache_pct = 100) () =
  base_scenario ~scale ~cache_pct ~name:"resilience/reference"
    ~faults:Spec.No_faults

let last_start_of flows =
  List.fold_left
    (fun acc (f : Netcore.Flow.t) -> max acc (Time_ns.to_ns f.Netcore.Flow.start))
    0 flows

(* Disturbed variant: a declarative fault plan wipes every spine and
   core cache at mid-trace (half of the last flow's start time). The
   plan is literal data in the spec, so the scenario file replays the
   exact same wipe. *)
let disturbed_scenario ?(scale = `Small) ?(cache_pct = 100) () =
  let reference = reference_scenario ~scale ~cache_pct () in
  let topo = (Scenario.realize reference).Setup.topo in
  let half = Time_ns.of_ns (last_start_of (Spec.flows reference) / 2) in
  let wiped =
    Array.append (Topo.Topology.spines topo) (Topo.Topology.cores topo)
  in
  let plan =
    {
      Fault.seed = 0;
      specs =
        Fault.sort_specs
          (Array.map
             (fun sw -> { Fault.at = half; action = Fault.Switch_fail sw })
             wiped);
    }
  in
  base_scenario ~scale ~cache_pct ~name:"resilience/disturbed"
    ~faults:(Spec.Literal plan)

let run ?(scale = `Small) ?(cache_pct = 100) () =
  let ref_spec = reference_scenario ~scale ~cache_pct () in
  let setup = Scenario.realize ref_spec in
  let topo = setup.Setup.topo in
  let slots = Spec.cache_slots ref_spec (Spec.Pct cache_pct) in
  let flows = Spec.flows ref_spec in
  let until = Spec.horizon ref_spec ~flows in
  (* Reference run, no failures. *)
  let reference =
    Scenario.run_scheme ~report_name:"resilience/reference" ref_spec
      (List.hd ref_spec.Spec.schemes)
  in
  (* The disturbed run needs bespoke instrumentation (dataplane
     occupancy, windowed hit-rate probes), so it drives the network
     directly — from exactly the realization the spec defines. *)
  let dist_spec = disturbed_scenario ~scale ~cache_pct () in
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:slots
  in
  let net =
    Netsim.Network.create ~config:(Spec.net_config dist_spec) topo ~scheme
  in
  let last_start = last_start_of flows in
  let half = Time_ns.of_ns (last_start / 2) in
  let wiped =
    Array.append (Topo.Topology.spines topo) (Topo.Topology.cores topo)
  in
  Option.iter
    (Netsim.Network.install_faults net)
    (Spec.fault_plan dist_spec topo ~until);
  (* Windowed hit-rate probes measure the time until the fabric has
     re-taught itself: recovery = first post-failure window whose hit
     rate is within 0.05 of the undisturbed run's. *)
  let m = Netsim.Network.metrics net in
  let eng = Netsim.Network.engine net in
  let window = Time_ns.of_ns (max 1 (last_start / 40)) in
  let recovered_at = ref None in
  let last_gw = ref 0 and last_sent = ref 0 in
  let rec probe () =
    let gw = Netsim.Metrics.gateway_packets m in
    let sent = Netsim.Metrics.packets_sent m in
    let dgw = gw - !last_gw and dsent = sent - !last_sent in
    last_gw := gw;
    last_sent := sent;
    let now = Dessim.Engine.now eng in
    (if now > Time_ns.to_ns half && !recovered_at = None && dsent > 0 then
       let w_hit = 1.0 -. (float_of_int dgw /. float_of_int dsent) in
       if w_hit >= reference.Runner.hit_rate -. 0.05 then
         recovered_at := Some now);
    Dessim.Engine.schedule_after eng ~delay:window probe
  in
  Dessim.Engine.schedule_after eng ~delay:window probe;
  Netsim.Network.run net flows ~migrations:[] ~until;
  let recovered =
    Array.fold_left
      (fun acc sw ->
        acc + Switchv2p.Cache.occupancy (Switchv2p.Dataplane.cache dp ~switch:sw))
      0 wiped
  in
  {
    flows_started = Netsim.Metrics.flows_started m;
    flows_completed = Netsim.Metrics.flows_completed m;
    hit_before = reference.Runner.hit_rate;
    hit_with_failure = Netsim.Metrics.hit_rate m;
    recovered_occupancy = recovered;
    recovery_time_s =
      Option.map
        (fun at -> Time_ns.to_sec (Time_ns.of_ns (at - Time_ns.to_ns half)))
        !recovered_at;
  }

let print t =
  Report.table
    ~title:"Resilience: spine+core cache wipe at mid-trace (Hadoop)"
    ~header:[ "metric"; "value" ]
    [
      [ "flows completed"; Printf.sprintf "%d / %d" t.flows_completed t.flows_started ];
      [ "hit rate, undisturbed"; Report.fpct t.hit_before ];
      [ "hit rate, with failure"; Report.fpct t.hit_with_failure ];
      [ "entries relearned by end"; string_of_int t.recovered_occupancy ];
      [
        "hit-rate recovery time";
        (match t.recovery_time_s with
        | Some s -> Printf.sprintf "%.1f us" (s *. 1e6)
        | None -> "not within horizon");
      ];
    ]
