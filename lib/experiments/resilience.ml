module Time_ns = Dessim.Time_ns
module Fault = Dessim.Fault

type t = {
  flows_started : int;
  flows_completed : int;
  hit_before : float;
  hit_with_failure : float;
  recovered_occupancy : int;
  recovery_time_s : float option;
}

let run ?(scale = `Small) ?(cache_pct = 100) () =
  let setup = Setup.ft8 scale in
  let topo = setup.Setup.topo in
  let slots = Setup.cache_slots setup ~pct:cache_pct in
  let flows = Setup.hadoop_trace setup in
  let until = Setup.horizon flows in
  (* Reference run, no failures. *)
  let reference =
    Runner.run ~report_name:"resilience/reference" setup
      ~scheme:(Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots)
      ~flows ~migrations:[] ~until
  in
  (* Disturbed run: a declarative fault plan wipes every spine and
     core cache at mid-trace (half of the last flow's start time). *)
  let scheme, dp =
    Schemes.Switchv2p_scheme.make_with_dataplane topo ~total_cache_slots:slots
  in
  let net = Netsim.Network.create topo ~scheme in
  let last_start =
    List.fold_left
      (fun acc (f : Netcore.Flow.t) -> max acc (Time_ns.to_ns f.Netcore.Flow.start))
      0 flows
  in
  let half = Time_ns.of_ns (last_start / 2) in
  let wiped = Array.append (Topo.Topology.spines topo) (Topo.Topology.cores topo) in
  Netsim.Network.install_faults net
    {
      Fault.seed = 0;
      specs =
        Fault.sort_specs
          (Array.map
             (fun sw -> { Fault.at = half; action = Fault.Switch_fail sw })
             wiped);
    };
  (* Windowed hit-rate probes measure the time until the fabric has
     re-taught itself: recovery = first post-failure window whose hit
     rate is within 0.05 of the undisturbed run's. *)
  let m = Netsim.Network.metrics net in
  let eng = Netsim.Network.engine net in
  let window = Time_ns.of_ns (max 1 (last_start / 40)) in
  let recovered_at = ref None in
  let last_gw = ref 0 and last_sent = ref 0 in
  let rec probe () =
    let gw = Netsim.Metrics.gateway_packets m in
    let sent = Netsim.Metrics.packets_sent m in
    let dgw = gw - !last_gw and dsent = sent - !last_sent in
    last_gw := gw;
    last_sent := sent;
    let now = Dessim.Engine.now eng in
    (if now > Time_ns.to_ns half && !recovered_at = None && dsent > 0 then
       let w_hit = 1.0 -. (float_of_int dgw /. float_of_int dsent) in
       if w_hit >= reference.Runner.hit_rate -. 0.05 then
         recovered_at := Some now);
    Dessim.Engine.schedule_after eng ~delay:window probe
  in
  Dessim.Engine.schedule_after eng ~delay:window probe;
  Netsim.Network.run net flows ~migrations:[] ~until;
  let recovered =
    Array.fold_left
      (fun acc sw ->
        acc + Switchv2p.Cache.occupancy (Switchv2p.Dataplane.cache dp ~switch:sw))
      0 wiped
  in
  {
    flows_started = Netsim.Metrics.flows_started m;
    flows_completed = Netsim.Metrics.flows_completed m;
    hit_before = reference.Runner.hit_rate;
    hit_with_failure = Netsim.Metrics.hit_rate m;
    recovered_occupancy = recovered;
    recovery_time_s =
      Option.map
        (fun at -> Time_ns.to_sec (Time_ns.of_ns (at - Time_ns.to_ns half)))
        !recovered_at;
  }

let print t =
  Report.table
    ~title:"Resilience: spine+core cache wipe at mid-trace (Hadoop)"
    ~header:[ "metric"; "value" ]
    [
      [ "flows completed"; Printf.sprintf "%d / %d" t.flows_completed t.flows_started ];
      [ "hit rate, undisturbed"; Report.fpct t.hit_before ];
      [ "hit rate, with failure"; Report.fpct t.hit_with_failure ];
      [ "entries relearned by end"; string_of_int t.recovered_occupancy ];
      [
        "hit-rate recovery time";
        (match t.recovery_time_s with
        | Some s -> Printf.sprintf "%.1f us" (s *. 1e6)
        | None -> "not within horizon");
      ];
    ]
