module Spec = Netsim.Scenario

type row = { variant : string; hit : float; fct_x : float; fpl_x : float }
type t = { rows : row list }

let variants =
  [
    ("full", Switchv2p.Config.default);
    ("no learning packets", Switchv2p.Config.make ~learning_packets:false ());
    ("no spillover", Switchv2p.Config.make ~spillover:false ());
    ("no promotion", Switchv2p.Config.make ~promotion:false ());
    ("no source learning", Switchv2p.Config.make ~source_learning:false ());
    ("ToR-only cache", Switchv2p.Config.make ~tor_only:true ());
  ]

(* One scenario: the NoCache baseline plus every config variant as a
   labeled SwitchV2P alternative (labels contain spaces — the spec
   grammar's label-consumes-the-rest-of-line rule exists for these). *)
let scenario ?(scale = `Small) ?(cache_pct = 50) () =
  Spec.make ~name:"ablation"
    ~topo:(Spec.preset `FT8 scale)
    ~streams:[ Spec.stream Spec.Hadoop ]
    (Spec.scheme ~label:"NoCache" Spec.Nocache
    :: List.map
         (fun (variant, config) ->
           Spec.scheme ~label:variant
             (Spec.switchv2p ~config (Spec.Pct cache_pct)))
         variants)

let run ?scale ?cache_pct () =
  let spec = scenario ?scale ?cache_pct () in
  match Parallel.map (Scenario.tasks spec) with
  | [] -> assert false
  | base :: results ->
      let rows =
        List.map2
          (fun (variant, _) (r : Runner.result) ->
            {
              variant;
              hit = r.Runner.hit_rate;
              fct_x =
                Runner.improvement ~baseline:base.Runner.mean_fct
                  ~v:r.Runner.mean_fct;
              fpl_x =
                Runner.improvement ~baseline:base.Runner.mean_fpl
                  ~v:r.Runner.mean_fpl;
            })
          variants results
      in
      { rows }

let print t =
  Report.table ~title:"Ablation: SwitchV2P feature contributions (Hadoop)"
    ~header:[ "variant"; "hit rate"; "FCT x"; "FPL x" ]
    (List.map
       (fun r ->
         [ r.variant; Report.fpct r.hit; Report.fx r.fct_x; Report.fx r.fpl_x ])
       t.rows)
