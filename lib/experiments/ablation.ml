type row = { variant : string; hit : float; fct_x : float; fpl_x : float }
type t = { rows : row list }

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let spec = Setup.spec_ft8 scale in
  let flows = Setup.hadoop_trace (Setup.pooled spec) in
  let until = Setup.horizon flows in
  let task name mk_scheme =
    ( "ablation/" ^ name,
      fun () ->
        let s = Setup.pooled spec in
        Runner.run s ~scheme:(mk_scheme s) ~flows ~migrations:[] ~until )
  in
  let variants =
    [
      ("full", Switchv2p.Config.default);
      ("no learning packets", Switchv2p.Config.make ~learning_packets:false ());
      ("no spillover", Switchv2p.Config.make ~spillover:false ());
      ("no promotion", Switchv2p.Config.make ~promotion:false ());
      ("no source learning", Switchv2p.Config.make ~source_learning:false ());
      ("ToR-only cache", Switchv2p.Config.make ~tor_only:true ());
    ]
  in
  let tasks =
    task "NoCache" (fun _ -> Schemes.Baselines.nocache ())
    :: List.map
         (fun (variant, cfg) ->
           task variant (fun s ->
               Schemes.Switchv2p_scheme.make ~config:cfg s.Setup.topo
                 ~total_cache_slots:(Setup.cache_slots s ~pct:cache_pct)))
         variants
  in
  match Parallel.map tasks with
  | [] -> assert false
  | base :: results ->
      let rows =
        List.map2
          (fun (variant, _) (r : Runner.result) ->
            {
              variant;
              hit = r.Runner.hit_rate;
              fct_x =
                Runner.improvement ~baseline:base.Runner.mean_fct
                  ~v:r.Runner.mean_fct;
              fpl_x =
                Runner.improvement ~baseline:base.Runner.mean_fpl
                  ~v:r.Runner.mean_fpl;
            })
          variants results
      in
      { rows }

let print t =
  Report.table ~title:"Ablation: SwitchV2P feature contributions (Hadoop)"
    ~header:[ "variant"; "hit rate"; "FCT x"; "FPL x" ]
    (List.map
       (fun r ->
         [ r.variant; Report.fpct r.hit; Report.fx r.fct_x; Report.fx r.fpl_x ])
       t.rows)
