(** Domain-based worker pool for experiment sweeps.

    The paper's evaluation is a large grid of independent simulation
    runs; this module executes a list of named run thunks across
    [Domain.spawn]ed workers and returns the results in submission
    order. With the per-domain topology discipline of {!Setup.pooled},
    the result list is byte-identical for any worker count.

    Worker count resolution: explicit [?jobs] argument, else the
    [REPRO_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. A count of 1 (or a
    single-task list) degrades gracefully to a plain sequential loop on
    the calling domain — no domains are spawned. *)

(** [default_jobs ()] is the worker count implied by [REPRO_JOBS] /
    [Domain.recommended_domain_count]. *)
val default_jobs : unit -> int

(** [shards ()] is the per-run shard count implied by [REPRO_SHARDS]
    (1 when unset or invalid) — the number of domains one sharded
    simulation occupies ({!Netsim.Parnet}). {!default_jobs} divides
    its worker budget by this. *)
val shards : unit -> int

(** [map ?jobs tasks] runs every [(name, thunk)] task and returns the
    thunk results in submission order. Tasks are claimed from a shared
    atomic cursor, so scheduling is work-conserving; each task's
    wall-clock time is recorded in the process-wide {!counters}. If a
    task raises, the exception is re-raised on the calling domain
    (after all workers drain) with its original backtrace.

    Tasks MUST NOT share mutable state: obtain topologies via
    {!Setup.pooled} and treat everything else a task closes over as
    read-only. *)
val map : ?jobs:int -> (string * (unit -> 'a)) list -> 'a list

(** [map_named ?jobs tasks] is [map] zipped back with the task names. *)
val map_named : ?jobs:int -> (string * (unit -> 'a)) list -> (string * 'a) list

(** Cumulative per-process accounting across [map] calls, for the
    bench harness's sweep report. [busy_seconds] is the sum of
    per-task wall times — [busy_seconds /. elapsed] estimates the
    effective speedup over a sequential run. *)
type counters = { tasks : int; busy_seconds : float; max_jobs : int }

val reset_counters : unit -> unit
val counters : unit -> counters
