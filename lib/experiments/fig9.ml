type point = { gateways : int; fct_x : float; fpl_x : float; drops : int }

type t = {
  gateway_counts : int list;
  series : (string * point array) list;
}

module Spec = Netsim.Scenario

let scheme_shape sl =
  [
    ("NoCache", Spec.Nocache);
    ("LocalLearning", Spec.Locallearning sl);
    ("GwCache", Spec.Gwcache sl);
    ("SwitchV2P", Spec.switchv2p sl);
  ]

(* Restricting the gateway fleet is a [Network.config] axis, so each
   gateway count is its own scenario over the shared topology and
   flows (one scheme list per scenario). *)
let scenario ?(scale = `Small) ?(cache_pct = 50) ~gateways () =
  Spec.make
    ~name:(Printf.sprintf "fig9@%dgw" gateways)
    ~topo:(Spec.preset `FT8 scale)
    ~streams:[ Spec.stream Spec.Hadoop ]
    ~gateways_used:gateways
    (List.map
       (fun (label, kind) -> Spec.scheme ~label kind)
       (scheme_shape (Spec.Pct cache_pct)))

let gateway_counts_of total_gw =
  List.sort_uniq compare
    (List.filter
       (fun k -> k >= 1)
       [ total_gw; total_gw / 2; total_gw / 4; max 1 (total_gw / 10) ])
  |> List.rev

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let setup = Setup.pooled (Setup.spec_ft8 scale) in
  let total_gw = Array.length (Topo.Topology.gateways setup.Setup.topo) in
  let gateway_counts = gateway_counts_of total_gw in
  let specs =
    List.map (fun k -> (k, scenario ~scale ~cache_pct ~gateways:k ())) gateway_counts
  in
  let task_of k spec s =
    ( Printf.sprintf "fig9/%s@%dgw" (Scenario.label spec s) k,
      fun () -> Scenario.run_scheme spec s )
  in
  (* Baseline: NoCache with the full gateway fleet, then every
     (scheme, gateway count) pair — all independent runs. *)
  let base_spec = scenario ~scale ~cache_pct ~gateways:total_gw () in
  let tasks =
    ("fig9/base", fun () -> Scenario.run_scheme base_spec (List.hd base_spec.Spec.schemes))
    :: List.concat_map
         (fun (name, _) ->
           List.map
             (fun (k, spec) ->
               let s =
                 List.find
                   (fun s -> Scenario.label spec s = name)
                   spec.Spec.schemes
               in
               task_of k spec s)
             specs)
         (scheme_shape (Spec.Pct cache_pct))
  in
  match Parallel.map tasks with
  | [] -> assert false
  | base :: rest ->
      let point k (r : Runner.result) =
        {
          gateways = k;
          fct_x =
            Runner.improvement ~baseline:base.Runner.mean_fct
              ~v:r.Runner.mean_fct;
          fpl_x =
            Runner.improvement ~baseline:base.Runner.mean_fpl
              ~v:r.Runner.mean_fpl;
          drops = r.Runner.packets_dropped;
        }
      in
      let n_counts = List.length gateway_counts in
      let rec chunk schemes rest =
        match schemes with
        | [] ->
            assert (rest = []);
            []
        | (name, _) :: tl ->
            let rs = List.filteri (fun i _ -> i < n_counts) rest in
            let rest = List.filteri (fun i _ -> i >= n_counts) rest in
            (name, Array.of_list (List.map2 point gateway_counts rs))
            :: chunk tl rest
      in
      { gateway_counts; series = chunk (scheme_shape (Spec.Pct cache_pct)) rest }

let print t =
  let header =
    "scheme"
    :: List.map (fun k -> string_of_int k ^ "gw") t.gateway_counts
  in
  let metric title f =
    let rows =
      List.map
        (fun (scheme, points) ->
          scheme :: Array.to_list (Array.map f points))
        t.series
    in
    Report.table ~title:("Fig 9: " ^ title ^ " vs number of gateways") ~header
      rows
  in
  metric "FCT improvement (vs NoCache, all gateways)" (fun p ->
      Report.fx p.fct_x);
  metric "first-packet latency improvement" (fun p -> Report.fx p.fpl_x);
  metric "dropped packets" (fun p -> Report.fint p.drops)
