type point = { gateways : int; fct_x : float; fpl_x : float; drops : int }

type t = {
  gateway_counts : int list;
  series : (string * point array) list;
}

let run ?(scale = `Small) ?(cache_pct = 50) () =
  let spec = Setup.spec_ft8 scale in
  let setup = Setup.pooled spec in
  let flows = Setup.hadoop_trace setup in
  let until = Setup.horizon flows in
  let total_gw = Array.length (Topo.Topology.gateways setup.Setup.topo) in
  let gateway_counts =
    List.sort_uniq compare
      (List.filter
         (fun k -> k >= 1)
         [ total_gw; total_gw / 2; total_gw / 4; max 1 (total_gw / 10) ])
    |> List.rev
  in
  let task ~name ~k mk_scheme =
    ( Printf.sprintf "fig9/%s@%dgw" name k,
      fun () ->
        let s = Setup.pooled spec in
        let config =
          { Netsim.Network.default_config with gateways_used = Some k }
        in
        Runner.run ~net_config:config s
          ~scheme:(mk_scheme s.Setup.topo (Setup.cache_slots s ~pct:cache_pct))
          ~flows ~migrations:[] ~until )
  in
  let schemes =
    [
      ("NoCache", fun _ _ -> Schemes.Baselines.nocache ());
      ( "LocalLearning",
        fun topo slots -> Schemes.Baselines.locallearning ~topo ~total_slots:slots );
      ("GwCache", fun topo slots -> Schemes.Baselines.gwcache ~topo ~total_slots:slots);
      ( "SwitchV2P",
        fun topo slots -> Schemes.Switchv2p_scheme.make topo ~total_cache_slots:slots );
    ]
  in
  (* Baseline: NoCache with the full gateway fleet, then every
     (scheme, gateway count) pair — all independent runs. *)
  let tasks =
    task ~name:"base" ~k:total_gw (fun _ _ -> Schemes.Baselines.nocache ())
    :: List.concat_map
         (fun (name, mk) ->
           List.map (fun k -> task ~name ~k mk) gateway_counts)
         schemes
  in
  match Parallel.map tasks with
  | [] -> assert false
  | base :: rest ->
      let point k (r : Runner.result) =
        {
          gateways = k;
          fct_x =
            Runner.improvement ~baseline:base.Runner.mean_fct
              ~v:r.Runner.mean_fct;
          fpl_x =
            Runner.improvement ~baseline:base.Runner.mean_fpl
              ~v:r.Runner.mean_fpl;
          drops = r.Runner.packets_dropped;
        }
      in
      let n_counts = List.length gateway_counts in
      let rec chunk schemes rest =
        match schemes with
        | [] ->
            assert (rest = []);
            []
        | (name, _) :: tl ->
            let rs = List.filteri (fun i _ -> i < n_counts) rest in
            let rest = List.filteri (fun i _ -> i >= n_counts) rest in
            (name, Array.of_list (List.map2 point gateway_counts rs))
            :: chunk tl rest
      in
      { gateway_counts; series = chunk schemes rest }

let print t =
  let header =
    "scheme"
    :: List.map (fun k -> string_of_int k ^ "gw") t.gateway_counts
  in
  let metric title f =
    let rows =
      List.map
        (fun (scheme, points) ->
          scheme :: Array.to_list (Array.map f points))
        t.series
    in
    Report.table ~title:("Fig 9: " ^ title ^ " vs number of gateways") ~header
      rows
  in
  metric "FCT improvement (vs NoCache, all gateways)" (fun p ->
      Report.fx p.fct_x);
  metric "first-packet latency improvement" (fun p -> Report.fx p.fpl_x);
  metric "dropped packets" (fun p -> Report.fint p.drops)
