module Spec = Netsim.Scenario

type row = {
  config : string;
  tenant_a_hit : float;
  tenant_b_hit : float;
  tenant_a_fct : float;
  overall_hit : float;
}

type t = { rows : row list }

let tenant_b_id_base = 1_000_000

(* Tenants are interleaved by VIP parity — both VPCs have VMs on every
   server, as colocated tenants do. The spec's [Parity p] streams
   generate over [0, half) and stretch onto even (tenant A) or odd
   (tenant B) VIPs.

   Tenant A: steady, reuse-heavy workload. Tenant B: aggressive churn
   — an order of magnitude more flows than its fair share of traffic
   (near-uniform Zipf: no reuse, maximal churn), constantly rotating
   destinations. In a shared cache its insertions evict tenant A's
   entries on every hash collision; a 50/50 partition caps the
   damage. *)
let scenario ?(scale = `Small) ?(cache_pct = 100) ?shares name =
  Spec.make
    ~name:("multitenant/" ^ name)
    ~topo:(Spec.preset `FT8 scale)
    ~streams:
      [
        Spec.stream ~rate:4.0 ~load:0.15 ~vips:(Spec.Parity 0) Spec.Hadoop;
        Spec.stream ~rate:40.0 ~zipf_alpha:0.01 ~vips:(Spec.Parity 1)
          ~seed_delta:1 ~id_base:tenant_b_id_base Spec.Microbursts;
      ]
    ~classify:Spec.Vip_parity
    [
      Spec.scheme ~label:"SwitchV2P"
        (Spec.switchv2p ?shares (Spec.Pct cache_pct));
    ]

let run ?(scale = `Small) ?(cache_pct = 100) () =
  let configs =
    [
      ("shared", None);
      ("partitioned 50/50", Some [| 1.0; 1.0 |]);
      ("partitioned 90/10", Some [| 9.0; 1.0 |]);
    ]
  in
  let results =
    Parallel.map
      (List.concat_map
         (fun (name, shares) ->
           Scenario.tasks (scenario ~scale ~cache_pct ?shares name))
         configs)
  in
  (* Tenant A's FCT: recomputing over its flows only via a per-class
     proxy is not tracked; use the class hit rate (the decisive
     isolation signal) and the global mean FCT for context. *)
  let rows =
    List.map2
      (fun (name, _) (r : Runner.result) ->
        let class_hit c =
          Option.value ~default:0.0 (List.assoc_opt c r.Runner.class_hit_rates)
        in
        {
          config = name;
          tenant_a_hit = class_hit 0;
          tenant_b_hit = class_hit 1;
          tenant_a_fct = r.Runner.mean_fct;
          overall_hit = r.Runner.hit_rate;
        })
      configs results
  in
  { rows }

let print t =
  Report.table
    ~title:
      "Multitenant partitions: tenant A (steady) vs tenant B (churn); the \
       operator policy caps B's footprint"
    ~header:
      [ "config"; "tenant-A hit"; "tenant-B hit"; "overall hit"; "mean FCT" ]
    (List.map
       (fun r ->
         [
           r.config;
           Report.fpct r.tenant_a_hit;
           Report.fpct r.tenant_b_hit;
           Report.fpct r.overall_hit;
           Report.fus r.tenant_a_fct;
         ])
       t.rows)
