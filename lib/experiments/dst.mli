(** Deterministic simulation testing (DST) for failure/churn scenarios.

    [run_one ~seed ~scheme ()] generates a random fault plan from the
    seed ({!Netsim.Faultplan.generate}), runs a fixed small FatTree
    workload of reliable flows under it, and checks four invariants:

    + {b packet conservation} — every injected packet is delivered,
      dropped (by kind/site), consumed at a switch, or still in flight
      at the horizon;
    + {b no stale completion} — after quiescence, a flow's receiver is
      done iff it accepted exactly the flow's packet count of distinct
      sequence numbers (never more);
    + {b liveness} — all faults heal before the horizon, so every flow
      completes;
    + {b bounded occupancy} — no switch cache ever holds more entries
      than its slot budget.

    Everything is derived from the single seed (fault plan, runtime
    fault RNG, flow workload), so a failing seed replays
    byte-identically: [transcript] of two runs with equal (seed,
    scheme) are equal strings, and {!replay_command} prints the CLI
    incantation to reproduce one outside the test suite. *)

type outcome = {
  seed : int;
  scheme : string;
  plan : string;  (** the generated plan, {!Dessim.Fault.to_string} form *)
  transcript : string;  (** deterministic run summary (byte-identical replay) *)
  failures : (string * string) list;
      (** (invariant, detail) for every violated invariant; [] = pass *)
}

(** The schemes the harness knows how to build (and, where the scheme
    caches, how to inspect occupancy):
    ["switchv2p"; "nocache"; "direct"; "locallearning"; "gwcache"]. *)
val all_schemes : string list

(** Subset exercised by [dune runtest] (3 schemes for speed). *)
val default_schemes : string list

(** [sched] selects the engine backend for the run ([None] defers to
    {!Dessim.Engine.default_sched}); transcripts are byte-identical
    across backends, which the test suite checks differentially.
    [shards > 1] executes the same seed as a domain-sharded run
    ({!Netsim.Parnet}) and checks the same invariants — conservation
    gains the cross-shard mailbox term, per-flow transport state is
    read from the flow's home shard. Sharded transcripts are
    deterministic for a fixed shard count but differ from single-shard
    transcripts (a different, equally valid, event interleaving). *)
val run_one :
  ?sched:Dessim.Engine.sched ->
  ?shards:int ->
  seed:int ->
  scheme:string ->
  unit ->
  outcome

(** Churn DST: a {!Workloads.Container_churn} episode (kind, rate and
    batch size derived from the seed) replaces the random fault plan.
    Conservation, stale-delivery and cache-occupancy invariants apply
    unchanged; every scheduled churn batch must fire
    ([churn-accounting]); completion-by-horizon is {e not} required
    (a remap can leave a retransmission tail past the horizon), but
    every flow must start and transport/metrics completion counters
    must agree. *)
val run_churn :
  ?sched:Dessim.Engine.sched -> ?scheme:string -> seed:int -> unit -> outcome

(** [run_seeds ~schemes ~seeds ()] — the cartesian product, in order. *)
val run_seeds :
  ?sched:Dessim.Engine.sched ->
  ?shards:int ->
  schemes:string list ->
  seeds:int list ->
  unit ->
  outcome list

(** [failed outcomes] — outcomes with at least one violated invariant. *)
val failed : outcome list -> outcome list

(** [replay_command ~seed ~scheme] — a shell command that reruns this
    exact (seed, scheme) run and prints its transcript. *)
val replay_command : seed:int -> scheme:string -> string

(** [pp_failure ppf outcome] — human-readable failure report: seed,
    scheme, violated invariants, and the replay command. *)
val pp_failure : Format.formatter -> outcome -> unit
