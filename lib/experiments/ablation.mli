(** Ablation of SwitchV2P's design features (DESIGN.md §4): learning
    packets, spillover, promotion, source learning, and the ToR-only
    memory allocation mentioned in §4 of the paper. Hadoop trace. *)

type row = {
  variant : string;
  hit : float;
  fct_x : float;
  fpl_x : float;
}

type t = { rows : row list }

(** The ablation as one {!Netsim.Scenario} spec: the NoCache baseline
    plus each feature-toggled SwitchV2P config as a labeled scheme
    alternative; {!run} executes it. *)
val scenario : ?scale:Setup.scale -> ?cache_pct:int -> unit -> Netsim.Scenario.t

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t
val print : t -> unit
