(* Domain-based executor for experiment sweeps.

   Every figure/table of the paper is a list of *independent*
   simulation runs (scheme x cache size x workload). [map] executes
   such a list on a fixed-size pool of domains and returns the results
   in submission order, so sweep output is byte-identical whether it
   ran on 1 worker or N.

   Domain-safety rule: a task must not close over mutable state shared
   with other tasks. In particular topologies carry per-run link queue
   state — tasks obtain theirs through [Setup.pooled], which keeps one
   topology per (spec, domain). *)

type counters = { tasks : int; busy_seconds : float; max_jobs : int }

let lock = Mutex.create ()
let c_tasks = ref 0
let c_busy = ref 0.0
let c_jobs = ref 1

let reset_counters () =
  Mutex.lock lock;
  c_tasks := 0;
  c_busy := 0.0;
  c_jobs := 1;
  Mutex.unlock lock

let counters () =
  Mutex.lock lock;
  let c = { tasks = !c_tasks; busy_seconds = !c_busy; max_jobs = !c_jobs } in
  Mutex.unlock lock;
  c

let note_task seconds =
  Mutex.lock lock;
  incr c_tasks;
  c_busy := !c_busy +. seconds;
  Mutex.unlock lock

let note_jobs jobs =
  Mutex.lock lock;
  if jobs > !c_jobs then c_jobs := jobs;
  Mutex.unlock lock

(* Shards per run (REPRO_SHARDS): how many domains a single sharded
   simulation occupies (see Netsim.Parnet). The sweep executor divides
   its worker budget by this so sweeps of sharded runs keep the total
   domain count roughly constant. *)
let shards () =
  match Sys.getenv_opt "REPRO_SHARDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> 1

let default_jobs () =
  let base =
    match Sys.getenv_opt "REPRO_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> j
        | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (base / shards ())

let map ?jobs (tasks : (string * (unit -> 'a)) list) : 'a list =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let jobs =
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    min j (max n 1)
  in
  note_jobs jobs;
  let results :
      ('a, exn * Printexc.raw_backtrace) Result.t option array =
    Array.make n None
  in
  let run_one i =
    let _name, f = arr.(i) in
    let t0 = Unix.gettimeofday () in
    let r =
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    note_task (Unix.gettimeofday () -. t0);
    results.(i) <- Some r
  in
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      run_one i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i < n then run_one i else continue := false
      done
    in
    (* The calling domain is worker number [jobs]. *)
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let map_named ?jobs tasks =
  List.map2 (fun (name, _) v -> (name, v)) tasks (map ?jobs tasks)
