type row = { trace : string; stats : Workloads.Trace_stats.t }
type t = { rows : row list }

let run ?(scale = `Small) () =
  let kinds =
    [
      Fig5.Hadoop; Fig5.Websearch; Fig5.Alibaba; Fig5.Microbursts; Fig5.Video;
    ]
  in
  (* No simulation here, but trace generation + analysis of five
     workloads still parallelizes cleanly. *)
  let task kind =
    ( "datasets/" ^ Fig5.trace_name kind,
      fun () ->
        let spec =
          match kind with
          | Fig5.Alibaba -> Setup.spec_ft16 scale
          | _ -> Setup.spec_ft8 scale
        in
        let setup = Setup.pooled spec in
        let flows =
          match kind with
          | Fig5.Hadoop -> Setup.hadoop_trace setup
          | Fig5.Websearch -> Setup.websearch_trace setup
          | Fig5.Alibaba -> Setup.alibaba_trace setup
          | Fig5.Microbursts -> Setup.microbursts_trace setup
          | Fig5.Video -> Setup.video_trace setup
        in
        Workloads.Trace_stats.analyze flows )
  in
  let rows =
    List.map2
      (fun kind stats -> { trace = Fig5.trace_name kind; stats })
      kinds
      (Parallel.map (List.map task kinds))
  in
  { rows }

let print t =
  Report.table ~title:"Datasets: address-reuse characteristics (paper §5)"
    ~header:
      [
        "trace";
        "flows";
        "dsts";
        ">=2 flows";
        ">=10 flows";
        "reuse";
        "reuse dist";
        "mean size";
      ]
    (List.map
       (fun r ->
         let s = r.stats in
         [
           r.trace;
           string_of_int s.Workloads.Trace_stats.flows;
           string_of_int s.Workloads.Trace_stats.distinct_destinations;
           string_of_int s.Workloads.Trace_stats.destinations_with_2_flows;
           string_of_int s.Workloads.Trace_stats.destinations_with_10_flows;
           Report.fpct (Workloads.Trace_stats.reuse_fraction s);
           Printf.sprintf "%.2fms"
             (s.Workloads.Trace_stats.mean_reuse_distance *. 1e3);
           Printf.sprintf "%.0fB" s.Workloads.Trace_stats.mean_flow_bytes;
         ])
       t.rows)
