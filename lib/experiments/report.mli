(** Plain-text table rendering for experiment output, with optional
    CSV capture for external plotting. *)

(** [table ~title ~header rows] prints an aligned table to stdout.
    When a CSV directory is set (see {!set_csv_dir}), the table is
    also written to [<dir>/<slugified-title>.csv]. *)
val table : title:string -> header:string list -> string list list -> unit

(** [set_csv_dir dir] — every subsequent {!table} call also writes a
    CSV file into [dir] (created if missing); [None] disables. *)
val set_csv_dir : string option -> unit

(** [set_telemetry_dir dir] — every subsequent named {!Runner.run}
    call collects structured telemetry and writes
    [<dir>/<slug>.json]; [None] (the default) disables collection
    entirely. *)
val set_telemetry_dir : string option -> unit

val telemetry_dir : unit -> string option

(** [ensure_dir dir] creates [dir] if missing (single level). *)
val ensure_dir : string -> unit

(** [git_rev ()] — the checkout's commit id for run manifests, or
    ["unknown"]. *)
val git_rev : unit -> string

(** [csv ~header rows] renders CSV text (fields with commas or quotes
    are quoted). *)
val csv : header:string list -> string list list -> string

(** [slug title] — the file-name-safe form used for CSV capture. *)
val slug : string -> string

(** Formatting helpers. *)

val fx : float -> string
(** improvement factor, e.g. ["3.21x"] *)

val fpct : float -> string
(** percentage with one decimal, e.g. ["97.3%"] *)

val fus : float -> string
(** seconds rendered as microseconds, e.g. ["41.2us"] *)

val fint : int -> string
