module Spec = Netsim.Scenario

type t = {
  setup : Setup.t;
  results : (string * Runner.result) list;
  gateway_pod : int;
}

let scenario ?(scale = `Small) ?(cache_pct = 50) () =
  let sl = Spec.Pct cache_pct in
  Spec.make ~name:"fig7_8"
    ~topo:(Spec.preset `FT8 scale)
    ~streams:[ Spec.stream Spec.Hadoop ]
    [
      Spec.scheme ~label:"NoCache" Spec.Nocache;
      Spec.scheme ~label:"LocalLearning" (Spec.Locallearning sl);
      Spec.scheme ~label:"GwCache" (Spec.Gwcache sl);
      Spec.scheme ~label:"SwitchV2P" (Spec.switchv2p sl);
      Spec.scheme ~label:"Direct" Spec.Direct;
    ]

let run ?scale ?cache_pct () =
  let spec = scenario ?scale ?cache_pct () in
  let setup = Scenario.realize spec in
  let results =
    List.map2
      (fun s r -> (Scenario.label spec s, r))
      spec.Spec.schemes
      (Parallel.map (Scenario.tasks spec))
  in
  let gateway_pod =
    match (Topo.Topology.params setup.Setup.topo).Topo.Params.gateway_pods with
    | p :: _ -> p
    | [] -> assert false
  in
  { setup; results; gateway_pod }

let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1e6)

(* Figure 8 orders a pod's switches as: spines, regular ToRs, gateway
   ToR last. *)
let pod_switch_order topo pod =
  let params = Topo.Topology.params topo in
  let spines =
    List.init params.Topo.Params.spines_per_pod (fun group ->
        Topo.Topology.spine_id topo ~pod ~group)
  in
  let tors =
    List.init params.Topo.Params.racks_per_pod (fun rack ->
        Topo.Topology.tor_id topo ~pod ~rack)
  in
  let regular, gateway =
    List.partition
      (fun sw -> Topo.Topology.role topo sw = Topo.Node.Regular_tor)
      tors
  in
  spines @ regular @ gateway

let print t =
  let topo = t.setup.Setup.topo in
  let pods = (Topo.Topology.params topo).Topo.Params.pods in
  let gw_pods = (Topo.Topology.params topo).Topo.Params.gateway_pods in
  let header =
    "scheme"
    :: List.init pods (fun p ->
           let tag = if List.mem p gw_pods then "*" else "" in
           "pod" ^ string_of_int (p + 1) ^ tag)
  in
  let rows =
    List.map
      (fun (name, (r : Runner.result)) ->
        name
        :: Array.to_list (Array.map (fun (_, b) -> mb b) r.Runner.bytes_by_pod))
      t.results
  in
  Report.table ~title:"Fig 7: processed MB per pod (* = gateway pod)" ~header
    rows;
  let order = pod_switch_order topo t.gateway_pod in
  let label sw =
    match Topo.Topology.role topo sw with
    | Topo.Node.Regular_spine | Topo.Node.Gateway_spine -> "spine"
    | Topo.Node.Regular_tor -> "tor"
    | Topo.Node.Gateway_tor -> "gw-tor"
    | Topo.Node.Core_switch -> "core"
  in
  let header8 =
    "scheme" :: List.map (fun sw -> label sw ^ string_of_int sw) order
  in
  let rows8 =
    List.map
      (fun (name, (r : Runner.result)) ->
        let by_switch =
          Array.fold_left
            (fun acc (sw, b) -> (sw, b) :: acc)
            [] r.Runner.bytes_by_switch
        in
        name
        :: List.map
             (fun sw ->
               match List.assoc_opt sw by_switch with
               | Some b -> mb b
               | None -> "0")
             order)
      t.results
  in
  Report.table
    ~title:
      (Printf.sprintf "Fig 8: processed MB per switch in gateway pod %d"
         (t.gateway_pod + 1))
    ~header:header8 rows8;
  (* §5.3 summary: bandwidth overhead vs Direct and packet stretch. *)
  let direct_bytes =
    match List.assoc_opt "Direct" t.results with
    | Some r ->
        Array.fold_left (fun acc (_, b) -> acc + b) 0 r.Runner.bytes_by_pod
    | None -> 0
  in
  let rows_sum =
    List.map
      (fun (name, (r : Runner.result)) ->
        let total =
          Array.fold_left (fun acc (_, b) -> acc + b) 0 r.Runner.bytes_by_pod
        in
        [
          name;
          mb total;
          (if direct_bytes > 0 then
             Printf.sprintf "%.2fx"
               (float_of_int total /. float_of_int direct_bytes)
           else "-");
          Printf.sprintf "%.2f" r.Runner.stretch;
        ])
      t.results
  in
  Report.table ~title:"§5.3: total processed bytes and packet stretch"
    ~header:[ "scheme"; "total MB"; "vs Direct"; "stretch" ]
    rows_sum
