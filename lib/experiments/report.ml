let csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let telemetry_dir_ref = ref None

let set_telemetry_dir dir = telemetry_dir_ref := dir
let telemetry_dir () = !telemetry_dir_ref

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Best-effort commit id for run manifests; "unknown" outside a git
   checkout (e.g. a release tarball). *)
let git_rev () =
  let read_line path =
    if Sys.file_exists path then begin
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> try Some (String.trim (input_line ic)) with End_of_file -> None)
    end
    else None
  in
  let rec find_git dir depth =
    if depth > 6 then None
    else
      let candidate = Filename.concat dir ".git" in
      if Sys.file_exists candidate then Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some git -> (
      match read_line (Filename.concat git "HEAD") with
      | None -> "unknown"
      | Some head ->
          if String.length head > 5 && String.sub head 0 5 = "ref: " then
            let ref_path = String.sub head 5 (String.length head - 5) in
            Option.value
              (read_line (Filename.concat git ref_path))
              ~default:"unknown"
          else head)

let slug title =
  let b = Buffer.create (String.length title) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
          Buffer.add_char b c;
          last_dash := false
      | 'A' .. 'Z' ->
          Buffer.add_char b (Char.lowercase_ascii c);
          last_dash := false
      | _ ->
          if not !last_dash then begin
            Buffer.add_char b '-';
            last_dash := true
          end)
    title;
  let s = Buffer.contents b in
  if String.length s > 0 && s.[String.length s - 1] = '-' then
    String.sub s 0 (String.length s - 1)
  else s

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let csv ~header rows =
  String.concat "\n"
    (List.map
       (fun row -> String.concat "," (List.map csv_field row))
       (header :: rows))
  ^ "\n"

let maybe_write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      ensure_dir dir;
      let path = Filename.concat dir (slug title ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (csv ~header rows))

let fx v = Printf.sprintf "%.2fx" v
let fpct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let fus v = Printf.sprintf "%.1fus" (v *. 1e6)
let fint = string_of_int

let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          Printf.sprintf "%-*s" w cell)
        row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_newline ();
  print_endline ("== " ^ title ^ " ==");
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout;
  maybe_write_csv ~title ~header rows
