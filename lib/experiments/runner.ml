module Time_ns = Dessim.Time_ns
module Telemetry = Dessim.Telemetry
module Json = Dessim.Telemetry.Json

type result = {
  scheme : string;
  hit_rate : float;
  mean_fct : float;
  mean_fpl : float;
  mean_pkt_latency : float;
  gw_packets : int;
  packets_sent : int;
  packets_dropped : int;
  drops_by_kind : (string * int) list;
  drops_by_site : (string * int) list;
  misdelivered : int;
  flows_started : int;
  flows_completed : int;
  stretch : float;
  layer_hits : int * int * int * int * int;
  fp_layer_hits : int * int * int * int * int;
  last_misdelivered_arrival : Time_ns.t option;
  reordering_events : int;
  extra : (string * float) list;
  class_hit_rates : (int * float) list;
  bytes_by_pod : (int * int) array;
  bytes_by_switch : (int * int) array;
}

let manifest_of (setup : Setup.t) ~scheme_name ~until =
  let params = Topo.Topology.params setup.Setup.topo in
  Json.Obj
    [
      ("scheme", Json.Str scheme_name);
      ("seed", Json.Int setup.Setup.seed);
      ("num_vms", Json.Int setup.Setup.num_vms);
      ("horizon_s", Json.Float (Time_ns.to_sec until));
      ("git_rev", Json.Str (Report.git_rev ()));
      ( "topology",
        Json.Obj
          [
            ("pods", Json.Int params.Topo.Params.pods);
            ("racks_per_pod", Json.Int params.Topo.Params.racks_per_pod);
            ("spines_per_pod", Json.Int params.Topo.Params.spines_per_pod);
            ("hosts_per_rack", Json.Int params.Topo.Params.hosts_per_rack);
            ("vms_per_host", Json.Int params.Topo.Params.vms_per_host);
          ] );
    ]

let counts_json kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let results_json (r : result) =
  let core, spine, tor, gw, host = r.layer_hits in
  Json.Obj
    [
      ("hit_rate", Json.Float r.hit_rate);
      ("mean_fct_s", Json.Float r.mean_fct);
      ("mean_first_packet_latency_s", Json.Float r.mean_fpl);
      ("mean_packet_latency_s", Json.Float r.mean_pkt_latency);
      ("packets_sent", Json.Int r.packets_sent);
      ("gateway_packets", Json.Int r.gw_packets);
      ("packets_dropped", Json.Int r.packets_dropped);
      ("misdelivered", Json.Int r.misdelivered);
      ("flows_started", Json.Int r.flows_started);
      ("flows_completed", Json.Int r.flows_completed);
      ("reordering_events", Json.Int r.reordering_events);
      ("mean_stretch", Json.Float r.stretch);
      ( "layer_hits",
        counts_json
          [
            ("core", core);
            ("spine", spine);
            ("tor", tor);
            ("gateway", gw);
            ("host", host);
          ] );
      ( "scheme_stats",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.extra) );
    ]

let run ?net_config ?report_name ?faults (setup : Setup.t) ~scheme ~flows
    ~migrations ~until =
  let tel, net_config =
    match (report_name, Report.telemetry_dir ()) with
    | Some _, Some _ ->
        let tel = Telemetry.create () in
        let cfg =
          Option.value net_config ~default:Netsim.Network.default_config
        in
        (tel, Some { cfg with Netsim.Network.telemetry = tel })
    | _ -> (Telemetry.disabled, net_config)
  in
  let net = Netsim.Network.create ?config:net_config setup.Setup.topo ~scheme in
  Option.iter (Netsim.Network.install_faults net) faults;
  Netsim.Network.run net flows ~migrations ~until;
  let m = Netsim.Network.metrics net in
  let topo = setup.Setup.topo in
  let pods = (Topo.Topology.params topo).Topo.Params.pods in
  let result =
    {
      scheme = scheme.Netsim.Scheme.name;
      hit_rate = Netsim.Metrics.hit_rate m;
      mean_fct = Netsim.Metrics.mean_fct m;
      mean_fpl = Netsim.Metrics.mean_first_packet_latency m;
      mean_pkt_latency = Netsim.Metrics.mean_packet_latency m;
      gw_packets = Netsim.Metrics.gateway_packets m;
      packets_sent = Netsim.Metrics.packets_sent m;
      packets_dropped = Netsim.Metrics.packets_dropped m;
      drops_by_kind = Netsim.Metrics.drops_by_kind m;
      drops_by_site = Netsim.Metrics.drops_by_site m;
      misdelivered = Netsim.Metrics.misdelivered_packets m;
      flows_started = Netsim.Metrics.flows_started m;
      flows_completed = Netsim.Metrics.flows_completed m;
      stretch = Netsim.Metrics.mean_stretch m;
      layer_hits = Netsim.Metrics.layer_hits m;
      fp_layer_hits = Netsim.Metrics.first_packet_layer_hits m;
      last_misdelivered_arrival = Netsim.Metrics.last_misdelivered_arrival m;
      reordering_events =
        Netsim.Transport.reordering_events (Netsim.Network.transport net);
      extra = scheme.Netsim.Scheme.stats ();
      class_hit_rates =
        List.map (fun c -> (c, Netsim.Metrics.class_hit_rate m c))
          (Netsim.Metrics.classes m);
      bytes_by_pod =
        Array.init pods (fun pod -> (pod, Netsim.Metrics.bytes_of_pod m pod));
      bytes_by_switch =
        Array.map
          (fun sw -> (sw, Netsim.Metrics.bytes_of_switch m sw))
          (Topo.Topology.switches topo);
    }
  in
  (match (report_name, Report.telemetry_dir ()) with
  | Some name, Some dir when Telemetry.is_enabled tel ->
      Report.ensure_dir dir;
      let doc =
        Telemetry.to_json tel
          ~manifest:(manifest_of setup ~scheme_name:result.scheme ~until)
          ~extra:
            [
              ("results", results_json result);
              ("drops_by_kind", counts_json result.drops_by_kind);
              ("drops_by_site", counts_json result.drops_by_site);
            ]
      in
      Telemetry.write ~path:(Filename.concat dir (Report.slug name ^ ".json")) doc
  | _ -> ());
  result

(* Sharded variant: same trace, executed as [shards] lock-step domains
   over one logical simulation (Netsim.Parnet). Telemetry reports are
   not supported here; [extra] scheme stats are per-shard and not
   generically mergeable, so they are omitted. *)
let run_sharded ?net_config ?faults ~shards (setup : Setup.t) ~make_scheme
    ~flows ~migrations ~until =
  let scheme_name = ref "" in
  let make_scheme ~shard =
    let s = make_scheme ~shard in
    if shard = 0 then scheme_name := s.Netsim.Scheme.name;
    s
  in
  let par =
    Netsim.Parnet.run ?config:net_config ?faults ~shards setup.Setup.topo
      ~make_scheme ~flows ~migrations ~until
  in
  let m = Netsim.Parnet.metrics par in
  let topo = setup.Setup.topo in
  let pods = (Topo.Topology.params topo).Topo.Params.pods in
  let result =
    {
      scheme = !scheme_name;
      hit_rate = Netsim.Metrics.hit_rate m;
      mean_fct = Netsim.Metrics.mean_fct m;
      mean_fpl = Netsim.Metrics.mean_first_packet_latency m;
      mean_pkt_latency = Netsim.Metrics.mean_packet_latency m;
      gw_packets = Netsim.Metrics.gateway_packets m;
      packets_sent = Netsim.Metrics.packets_sent m;
      packets_dropped = Netsim.Metrics.packets_dropped m;
      drops_by_kind = Netsim.Metrics.drops_by_kind m;
      drops_by_site = Netsim.Metrics.drops_by_site m;
      misdelivered = Netsim.Metrics.misdelivered_packets m;
      flows_started = Netsim.Metrics.flows_started m;
      flows_completed = Netsim.Metrics.flows_completed m;
      stretch = Netsim.Metrics.mean_stretch m;
      layer_hits = Netsim.Metrics.layer_hits m;
      fp_layer_hits = Netsim.Metrics.first_packet_layer_hits m;
      last_misdelivered_arrival = Netsim.Metrics.last_misdelivered_arrival m;
      reordering_events = Netsim.Parnet.reordering_events par;
      extra = [];
      class_hit_rates =
        List.map (fun c -> (c, Netsim.Metrics.class_hit_rate m c))
          (Netsim.Metrics.classes m);
      bytes_by_pod =
        Array.init pods (fun pod -> (pod, Netsim.Metrics.bytes_of_pod m pod));
      bytes_by_switch =
        Array.map
          (fun sw -> (sw, Netsim.Metrics.bytes_of_switch m sw))
          (Topo.Topology.switches topo);
    }
  in
  (par, result)

let improvement ~baseline ~v =
  if baseline <= 0.0 || v <= 0.0 then 1.0 else baseline /. v
