(** Figure 9: application performance with a shrinking gateway fleet
    (Hadoop, 50% cache). SwitchV2P should hold its FCT and first-packet
    latency with an order of magnitude fewer gateways, while NoCache
    and LocalLearning degrade. *)

type point = {
  gateways : int;
  fct_x : float;  (** improvement over NoCache-with-all-gateways *)
  fpl_x : float;
  drops : int;
}

type t = {
  gateway_counts : int list;
  series : (string * point array) list;
}

(** One gateway-count point of the figure as a {!Netsim.Scenario} spec
    ([gateways] restricts the fleet via the net config); {!run} sweeps
    these specs over the fleet-size axis. *)
val scenario :
  ?scale:Setup.scale ->
  ?cache_pct:int ->
  gateways:int ->
  unit ->
  Netsim.Scenario.t

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t
val print : t -> unit
