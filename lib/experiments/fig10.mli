(** Figure 10: topology scaling — vary the pod count while keeping the
    total server and VM population fixed (more pods = smaller racks).
    SwitchV2P should improve or hold as the topology grows;
    LocalLearning struggles to place learned entries in large
    topologies; GwCache stays flat. *)

type point = {
  pods : int;
  fct_x : float;  (** improvement over NoCache on the same topology *)
  hit : float;
}

type t = { series : (string * point array) list; pod_counts : int list }

(** One topology-size point as a {!Netsim.Scenario} spec over a custom
    parameter set; {!run} sweeps these specs over the pod-count axis. *)
val scenario :
  ?cache_pct:int ->
  ?total_hosts:int ->
  pods:int ->
  racks:int ->
  hosts_per_rack:int ->
  unit ->
  Netsim.Scenario.t

val run : ?cache_pct:int -> ?total_hosts:int -> unit -> t
val print : t -> unit
