module Time_ns = Dessim.Time_ns
module Vip = Netcore.Addr.Vip
module Flow = Netcore.Flow

type row = {
  variant : string;
  gateway_pkt_share : float;
  latency_x : float;
  last_misdelivery_us : float;
  misdelivered_x : float;
  invalidation_packets : int;
}

type t = { rows : row list }

let packet_bytes = 128
let packets_per_sender = 1000

(* Senders on distinct physical servers, all targeting [dst_vip]. *)
let incast_flows setup ~senders ~dst_vip ~duration =
  let params = Topo.Topology.params setup.Setup.topo in
  let vms_per_host = params.Topo.Params.vms_per_host in
  let num_hosts = Array.length (Topo.Topology.hosts setup.Setup.topo) in
  let dst_host_index = Vip.to_int dst_vip / vms_per_host in
  let sender_hosts =
    List.filter (fun h -> h <> dst_host_index) (List.init num_hosts Fun.id)
  in
  let rate_bps =
    float_of_int (packets_per_sender * packet_bytes * 8)
    /. Time_ns.to_sec duration
  in
  List.filteri (fun i _ -> i < senders) sender_hosts
  |> List.mapi (fun id host_index ->
         Flow.make ~pkt_bytes:packet_bytes ~id
           ~src_vip:(Vip.of_int (host_index * vms_per_host))
           ~dst_vip
           ~size_bytes:(packets_per_sender * packet_bytes)
           ~start:Time_ns.zero
           (Flow.Udp { rate_bps }))

let run ?(scale = `Small) ?(cache_pct = 50) ?(senders = 64) () =
  let spec = Setup.spec_ft8 scale in
  let setup = Setup.pooled spec in
  let topo = setup.Setup.topo in
  let hosts = Topo.Topology.hosts topo in
  let senders = min senders (Array.length hosts - 1) in
  let duration = Time_ns.of_ms 1 in
  let dst_vip = Vip.of_int 0 in
  (* Migrate to a host in a different rack of the same pod. *)
  let old_host = hosts.(0) in
  let new_host =
    let old_tor = Topo.Topology.tor_of topo old_host in
    match
      Array.to_list hosts
      |> List.find_opt (fun h -> Topo.Topology.tor_of topo h <> old_tor)
    with
    | Some h -> h
    | None -> invalid_arg "Tab4.run: topology too small for migration"
  in
  let flows = incast_flows setup ~senders ~dst_vip ~duration in
  let migrations =
    [
      {
        Netsim.Network.at = Time_ns.of_us 500;
        vip = dst_vip;
        to_host = new_host;
      };
    ]
  in
  let until = Time_ns.add duration (Time_ns.of_ms 2) in
  let task name mk_scheme =
    let full_name = "tab4/" ^ name in
    ( full_name,
      fun () ->
        let s = Setup.pooled spec in
        Runner.run ~report_name:full_name s ~scheme:(mk_scheme s) ~flows
          ~migrations ~until )
  in
  let v2p cfg s =
    Schemes.Switchv2p_scheme.make ~config:cfg s.Setup.topo
      ~total_cache_slots:(Setup.cache_slots s ~pct:cache_pct)
  in
  let variants =
    [
      ("NoCache", fun _ -> Schemes.Baselines.nocache ());
      ("OnDemand", fun _ -> Schemes.Baselines.ondemand ());
      ( "SwitchV2P w/o invalidations",
        v2p (Switchv2p.Config.make ~invalidations:false ()) );
      ( "SwitchV2P w/o timestamp vector",
        v2p (Switchv2p.Config.make ~ts_vector:false ()) );
      ("SwitchV2P w/ timestamp vector", v2p Switchv2p.Config.default);
    ]
  in
  let runs =
    List.map2
      (fun (name, _) r -> (name, r))
      variants
      (Parallel.map (List.map (fun (name, mk) -> task name mk) variants))
  in
  let base =
    match runs with
    | (_, b) :: _ -> b
    | [] -> assert false
  in
  let base_latency = base.Runner.mean_pkt_latency in
  let base_misdelivered = max 1 base.Runner.misdelivered in
  let rows =
    List.map
      (fun (variant, (r : Runner.result)) ->
        {
          variant;
          gateway_pkt_share =
            (if r.Runner.packets_sent = 0 then 0.0
             else
               float_of_int r.Runner.gw_packets
               /. float_of_int r.Runner.packets_sent);
          latency_x =
            (if base_latency <= 0.0 then 1.0
             else r.Runner.mean_pkt_latency /. base_latency);
          last_misdelivery_us =
            (match r.Runner.last_misdelivered_arrival with
            | Some ts -> Time_ns.to_us ts
            | None -> 0.0);
          misdelivered_x =
            float_of_int r.Runner.misdelivered
            /. float_of_int base_misdelivered;
          invalidation_packets =
            (match List.assoc_opt "invalidation_packets" r.Runner.extra with
            | Some v -> int_of_float v
            | None -> 0);
        })
      runs
  in
  { rows }

let print t =
  Report.table ~title:"Table 4: VM migration under incast (normalized by NoCache)"
    ~header:
      [
        "variant";
        "gw pkts";
        "avg latency";
        "last misdeliv [us]";
        "misdelivered";
        "inval pkts";
      ]
    (List.map
       (fun r ->
         [
           r.variant;
           Report.fpct r.gateway_pkt_share;
           Report.fx r.latency_x;
           Printf.sprintf "%.0f" r.last_misdelivery_us;
           Report.fx r.misdelivered_x;
           Report.fint r.invalidation_packets;
         ])
       t.rows)
