(** Run entry points for {!Netsim.Scenario} specs.

    [Netsim.Scenario] is the pure data layer (spec type, textual form,
    validation, flow/fault realization); this module closes the loop
    with the scheme library: it turns a spec's {!Netsim.Scenario.scheme_spec}
    alternatives into {!Netsim.Scheme.t} values and drives
    {!Runner.run} (or {!Runner.run_sharded}, when the spec asks for
    more than one shard).

    A spec's [schemes] list is a sweep axis: {!tasks} yields one named
    thunk per scheme over the shared topology/workload, at exactly the
    {!Parallel.map} granularity the experiment sweeps use, and {!run}
    executes them. Results are byte-identical to hand-written
    [Runner] calls with the same inputs — that is the point. *)

(** The {!Setup.spec} a scenario's topology realizes to (pooled,
    domain-local). *)
val setup_spec : Netsim.Scenario.t -> Setup.spec

val realize : Netsim.Scenario.t -> Setup.t

(** Construct one scheme alternative against the realized topology.
    [Switchv2p] share vectors become VIP-parity cache partitions. *)
val build_scheme :
  Netsim.Scenario.t -> Setup.t -> Netsim.Scenario.scheme_spec -> Netsim.Scheme.t

val label : Netsim.Scenario.t -> Netsim.Scenario.scheme_spec -> string

(** ["<scenario name>/<scheme label>"] — the task and telemetry report
    name. *)
val task_name : Netsim.Scenario.t -> Netsim.Scenario.scheme_spec -> string

(** The spec's shard count, with [Shards_auto] resolved via
    {!Parallel.shards} ([REPRO_SHARDS]). *)
val shards_of : Netsim.Scenario.t -> int

(** [run_scheme ?report_name spec s] — one scheme alternative, end to
    end: realize topology and flows, resolve the horizon, install the
    fault plan (with any container-churn episode compiled in), run
    unsharded or sharded per the spec. *)
val run_scheme :
  ?report_name:string ->
  Netsim.Scenario.t ->
  Netsim.Scenario.scheme_spec ->
  Runner.result

(** One named thunk per scheme alternative, for {!Parallel.map}. *)
val tasks : Netsim.Scenario.t -> (string * (unit -> Runner.result)) list

(** Execute every alternative via the worker pool; results in scheme
    order, named {!task_name}. *)
val run : Netsim.Scenario.t -> (string * Runner.result) list

(** Parse, validate and run a committed scenario file. *)
val run_file :
  string ->
  ( Netsim.Scenario.t * (string * Runner.result) list,
    Netsim.Scenario.error )
  result
