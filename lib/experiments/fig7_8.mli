(** Figures 7 and 8: processed bytes per pod (network heatmap) and per
    switch inside a gateway pod, plus the §5.3 bandwidth-overhead and
    packet-stretch summary. Hadoop trace, 50% cache. *)

type t = {
  setup : Setup.t;
  results : (string * Runner.result) list;  (** per scheme *)
  gateway_pod : int;  (** the pod detailed in Figure 8 *)
}

(** The whole figure as one {!Netsim.Scenario} spec (five scheme
    alternatives over the Hadoop FT8 workload); {!run} executes it. *)
val scenario :
  ?scale:Setup.scale -> ?cache_pct:int -> unit -> Netsim.Scenario.t

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t

val print : t -> unit
