(** Switch-failure resilience (the §2 claim: SwitchV2P's caching is
    opportunistic, so losing a switch's cache state never affects
    forwarding correctness — it only costs hit rate until the traffic
    re-teaches the fabric).

    A steady Hadoop workload runs while a declarative
    {!Dessim.Fault.plan} of [Switch_fail] actions wipes every spine
    and core cache mid-trace; we report hit rates before/after the
    failure, the time the fabric needs to re-teach itself, and verify
    every flow still completes. *)

type t = {
  flows_started : int;
  flows_completed : int;
  hit_before : float;  (** hit rate of the first (pre-failure) run *)
  hit_with_failure : float;  (** whole-run hit rate with the mid-trace wipe *)
  recovered_occupancy : int;
      (** cache entries relearned by the end of the disturbed run *)
  recovery_time_s : float option;
      (** time from the wipe to the first probe window whose hit rate
          is back within 0.05 of the undisturbed run's; [None] if that
          never happens before the horizon *)
}

(** The undisturbed reference as a {!Netsim.Scenario} spec. *)
val reference_scenario :
  ?scale:Setup.scale -> ?cache_pct:int -> unit -> Netsim.Scenario.t

(** The disturbed variant: same spec plus a literal fault plan wiping
    every spine and core cache at mid-trace, committed as data so a
    scenario file replays the exact same wipe. *)
val disturbed_scenario :
  ?scale:Setup.scale -> ?cache_pct:int -> unit -> Netsim.Scenario.t

val run : ?scale:Setup.scale -> ?cache_pct:int -> unit -> t
val print : t -> unit
