(** Cache-geometry frontier: how do alternative cache organizations —
    d-left hashing, set-associative LRU, a TinyLFU admission front end
    — trade hit rate against {e actual} SRAM bits as workload locality
    varies?

    A per-ToR destination reference stream is derived from the
    Jain-style tunable-locality trace ({!Workloads.Locality_gen}; each
    flow contributes one reference per data packet at its sender's
    ToR) and replayed through each geometry at each cache size. Every
    point is costed through the {!P4model.Resources} per-stage bit
    decomposition, so the frontier's x-axis is tags + values +
    replacement/sketch metadata in bits, not slot counts. *)

type point = {
  geometry : string;
      (** "direct", "dleft2", "dleft4", "2way-lru", "4way-lru",
          "direct+tinylfu", "dleft4+tinylfu" *)
  locality : float;  (** the generator knob, in [0,1] *)
  cache_pct : int;  (** cache size as % of the VIP space *)
  slots : int;
      (** per-ToR lines actually used (rounded down to a multiple of
          the way count) *)
  sram_bits : int;  (** {!P4model.Resources.geometry_bits} at [slots] *)
  refs : int;
  hits : int;
  hit_rate : float;
}

type t = {
  geometries : string list;
  localities : float list;
  cache_pcts : int list;
  points : point list;
      (** organizations that do not fit a per-ToR budget (e.g. 4 ways
          in 2 lines) are omitted *)
}

val default_geometries : string list
val default_localities : float list
val default_cache_pcts : int list

val run :
  ?scale:Setup.scale ->
  ?geometries:string list ->
  ?localities:float list ->
  ?cache_pcts:int list ->
  unit ->
  t

(** [spec ()] — one sweep point as a declarative {!Netsim.Scenario}
    spec (validates by construction): a [Locality] stream (knob in the
    [zipf_alpha] field) driving a SwitchV2P scheme whose
    {!Switchv2p.Config} selects the geometry. *)
val spec :
  ?scale:Setup.scale ->
  ?locality:float ->
  ?cache_pct:int ->
  ?geometry:Switchv2p.Config.geometry ->
  ?tinylfu:bool ->
  unit ->
  Netsim.Scenario.t

val print : t -> unit
